(* citus_shell: an interactive SQL shell over an in-process Citus cluster.

     dune exec bin/citus_shell.exe            # coordinator + 2 workers
     dune exec bin/citus_shell.exe -- 4       # coordinator + 4 workers

   Meta-commands:
     \shards           shard placements
     \tables           Citus tables
     \explain <query>  distributed plan without executing
     \maintenance      run the maintenance daemon once
     \partition <node> cut a node off the network (failure injection)
     \heal <node>      reconnect a partitioned node
     \prepared         prepared statements in this session
     \q                quit

   Everything else is SQL, including the Citus UDFs and the prepared
   statement lifecycle (served from the distributed plan cache):
     SELECT create_distributed_table('t', 'col');
     SELECT create_reference_table('d');
     SELECT rebalance_table_shards();
     PREPARE get AS SELECT * FROM t WHERE col = $1;
     EXECUTE get(42);

   SQL goes through [Citus.Session] — the typed prepared-statement
   surface — rather than the engine-internal [Instance.exec]. *)

let print_result (r : Engine.Instance.result) =
  match r.Engine.Instance.rows with
  | [] ->
    Printf.printf "%s %d\n" r.Engine.Instance.tag r.Engine.Instance.affected
  | rows ->
    let headers =
      match r.Engine.Instance.columns with
      | [] -> List.init (Array.length (List.hd rows)) (fun i -> Printf.sprintf "col%d" i)
      | cs -> cs
    in
    let cells =
      List.map (fun row -> Array.to_list (Array.map Datum.to_display row)) rows
    in
    let widths =
      List.mapi
        (fun i h ->
          List.fold_left
            (fun w r -> max w (String.length (Option.value ~default:"" (List.nth_opt r i))))
            (String.length h) cells)
        headers
    in
    let pad w s = s ^ String.make (max 0 (w - String.length s)) ' ' in
    let line cells =
      print_endline
        (" " ^ String.concat " | " (List.map2 pad widths cells))
    in
    line headers;
    print_endline
      ("-" ^ String.concat "-+-" (List.map (fun w -> String.make w '-') widths));
    List.iter line cells;
    Printf.printf "(%d rows)\n" (List.length rows)

let () =
  let workers =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 2
  in
  let cluster = Cluster.Topology.create ~workers () in
  let citus = Citus.Api.install cluster in
  let session = Citus.Api.connect citus in
  let st = Citus.Api.coordinator_state citus in
  Printf.printf
    "citus-ocaml shell — coordinator + %d workers, 32 shards per table\n\
     \\q quits; \\shards, \\tables, \\explain <sql>, \\maintenance, \
     \\partition <node>, \\heal <node>\n\n"
    workers;
  let rec loop () =
    print_string "citus=# ";
    match read_line () with
    | exception End_of_file -> print_newline ()
    | "" -> loop ()
    | {|\q|} -> ()
    | {|\shards|} ->
      List.iter
        (fun (dt : Citus.Metadata.dist_table) ->
          List.iter
            (fun (sh : Citus.Metadata.shard) ->
              Printf.printf "  %-24s [%11ld .. %11ld] on %s\n"
                (Citus.Metadata.shard_name sh)
                sh.Citus.Metadata.min_hash sh.Citus.Metadata.max_hash
                (String.concat ","
                   (Citus.Metadata.placements citus.Citus.Api.metadata
                      sh.Citus.Metadata.shard_id)))
            (Citus.Metadata.shards_of citus.Citus.Api.metadata
               dt.Citus.Metadata.dt_name))
        (Citus.Metadata.all_tables citus.Citus.Api.metadata);
      loop ()
    | {|\tables|} ->
      List.iter
        (fun (dt : Citus.Metadata.dist_table) ->
          Printf.printf "  %-20s %s%s\n" dt.Citus.Metadata.dt_name
            (match dt.Citus.Metadata.kind with
             | Citus.Metadata.Distributed -> "distributed"
             | Citus.Metadata.Reference -> "reference")
            (match dt.Citus.Metadata.dist_column with
             | Some c -> " by " ^ c
             | None -> ""))
        (Citus.Metadata.all_tables citus.Citus.Api.metadata);
      loop ()
    | line when String.length line > 11 && String.sub line 0 11 = {|\partition |} ->
      let node = String.sub line 11 (String.length line - 11) in
      (match Cluster.Topology.find_node cluster node with
       | _ ->
         Citus.State.partition_node st node;
         Printf.printf "%s partitioned from the network\n" node
       | exception Invalid_argument m -> Printf.printf "%s\n" m);
      loop ()
    | line when String.length line > 6 && String.sub line 0 6 = {|\heal |} ->
      let node = String.sub line 6 (String.length line - 6) in
      (match Cluster.Topology.find_node cluster node with
       | _ ->
         Citus.State.heal_node st node;
         Printf.printf "%s reconnected\n" node
       | exception Invalid_argument m -> Printf.printf "%s\n" m);
      loop ()
    | {|\prepared|} ->
      (match Citus.Session.prepared_names session with
       | [] -> print_endline "  (none)"
       | names -> List.iter (Printf.printf "  %s\n") names);
      loop ()
    | {|\maintenance|} ->
      Citus.Api.maintenance citus;
      print_endline "maintenance daemon ran (recovery, deadlock check, autovacuum)";
      loop ()
    | line when String.length line > 9 && String.sub line 0 9 = {|\explain |} ->
      let sql = String.sub line 9 (String.length line - 9) in
      (try print_string (Citus.Explain.explain st sql)
       with e -> Printf.printf "error: %s\n" (Printexc.to_string e));
      loop ()
    | sql ->
      (try print_result (Citus.Session.exec session sql) with
       | Engine.Instance.Session_error m -> Printf.printf "ERROR: %s\n" m
       | Sqlfront.Parser.Parse_error m -> Printf.printf "syntax error: %s\n" m
       | Engine.Executor.Would_block _ ->
         print_endline "statement would block on a lock; retry after the holder commits"
       | e -> Printf.printf "error: %s\n" (Printexc.to_string e));
      loop ()
  in
  loop ()
