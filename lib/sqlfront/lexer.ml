type token =
  | Ident of string
  | Keyword of string
  | Int_lit of int
  | Float_lit of float
  | String_lit of string
  | Param_tok of int
  | Lparen
  | Rparen
  | Comma
  | Semicolon
  | Star
  | Dot
  | Op of string
  | Eof

exception Lex_error of string

let keywords =
  [
    "SELECT"; "FROM"; "WHERE"; "GROUP"; "BY"; "HAVING"; "ORDER"; "LIMIT";
    "OFFSET"; "ASC"; "DESC"; "DISTINCT"; "AS"; "AND"; "OR"; "NOT"; "IS";
    "NULL"; "TRUE"; "FALSE"; "IN"; "BETWEEN"; "LIKE"; "ILIKE"; "EXISTS";
    "JOIN"; "INNER"; "LEFT"; "OUTER"; "CROSS"; "ON"; "INSERT"; "INTO";
    "VALUES"; "UPDATE"; "SET"; "DELETE"; "CREATE"; "TABLE"; "INDEX"; "DROP";
    "ALTER"; "ADD"; "COLUMN"; "PRIMARY"; "KEY"; "DEFAULT"; "USING";
    "TRUNCATE"; "COPY"; "STDIN"; "BEGIN"; "COMMIT"; "ROLLBACK"; "ABORT";
    "PREPARE"; "PREPARED"; "TRANSACTION"; "EXECUTE"; "DEALLOCATE"; "VACUUM";
    "CALL"; "IF"; "CASE";
    "WHEN"; "THEN"; "ELSE"; "END"; "CAST"; "COUNT"; "SUM"; "AVG"; "MIN";
    "MAX"; "CONFLICT"; "DO"; "NOTHING"; "COLUMNAR"; "GIN"; "BTREE"; "WITH";
    "RECURSIVE";
  ]

let is_keyword s = List.mem (String.uppercase_ascii s) keywords

let is_ident_start c =
  match c with 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false

let is_ident_char c =
  match c with
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true
  | _ -> false

let is_digit c = match c with '0' .. '9' -> true | _ -> false

let tokenize src =
  let n = String.length src in
  let pos = ref 0 in
  let out = ref [] in
  let emit t = out := t :: !out in
  let peek k = if !pos + k < n then Some src.[!pos + k] else None in
  let fail msg = raise (Lex_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  while !pos < n do
    let c = src.[!pos] in
    match c with
    | ' ' | '\t' | '\n' | '\r' -> incr pos
    | '-' when peek 1 = Some '-' ->
      (* line comment *)
      while !pos < n && src.[!pos] <> '\n' do incr pos done
    | '(' -> emit Lparen; incr pos
    | ')' -> emit Rparen; incr pos
    | ',' -> emit Comma; incr pos
    | ';' -> emit Semicolon; incr pos
    | '*' -> emit Star; incr pos
    | '.' when not (match peek 1 with Some d -> is_digit d | None -> false) ->
      emit Dot; incr pos
    | '\'' ->
      (* string literal with '' escaping *)
      incr pos;
      let buf = Buffer.create 16 in
      let rec go () =
        if !pos >= n then fail "unterminated string"
        else if src.[!pos] = '\'' then
          if peek 1 = Some '\'' then begin
            Buffer.add_char buf '\'';
            pos := !pos + 2;
            go ()
          end
          else incr pos
        else begin
          Buffer.add_char buf src.[!pos];
          incr pos;
          go ()
        end
      in
      go ();
      emit (String_lit (Buffer.contents buf))
    | '"' ->
      incr pos;
      let start = !pos in
      while !pos < n && src.[!pos] <> '"' do incr pos done;
      if !pos >= n then fail "unterminated quoted identifier";
      emit (Ident (String.sub src start (!pos - start)));
      incr pos
    | '$' ->
      incr pos;
      let start = !pos in
      while !pos < n && is_digit src.[!pos] do incr pos done;
      if !pos = start then fail "bad parameter";
      emit (Param_tok (int_of_string (String.sub src start (!pos - start))))
    | c when is_digit c || (c = '.' && (match peek 1 with Some d -> is_digit d | None -> false)) ->
      let start = !pos in
      let seen_dot = ref false in
      let seen_exp = ref false in
      let rec go () =
        if !pos < n then
          match src.[!pos] with
          | '0' .. '9' -> incr pos; go ()
          | '.' when not !seen_dot && not !seen_exp ->
            seen_dot := true; incr pos; go ()
          | 'e' | 'E' when not !seen_exp ->
            seen_exp := true;
            incr pos;
            (match peek 0 with
             | Some ('+' | '-') -> incr pos
             | _ -> ());
            go ()
          | _ -> ()
      in
      go ();
      let text = String.sub src start (!pos - start) in
      if !seen_dot || !seen_exp then emit (Float_lit (float_of_string text))
      else emit (Int_lit (int_of_string text))
    | c when is_ident_start c ->
      let start = !pos in
      while !pos < n && is_ident_char src.[!pos] do incr pos done;
      let word = String.sub src start (!pos - start) in
      if is_keyword word then emit (Keyword (String.uppercase_ascii word))
      else emit (Ident (String.lowercase_ascii word))
    | _ ->
      (* multi-character operators, longest first *)
      let try_ops = [ "->>"; "->"; "::"; "<="; ">="; "<>"; "!="; "||"; "="; "<"; ">"; "+"; "-"; "/"; "%" ] in
      let rec attempt = function
        | [] -> fail (Printf.sprintf "unexpected character '%c'" c)
        | op :: rest ->
          let len = String.length op in
          if !pos + len <= n && String.sub src !pos len = op then begin
            pos := !pos + len;
            emit (Op (if op = "!=" then "<>" else op))
          end
          else attempt rest
      in
      attempt try_ops
  done;
  List.rev (Eof :: !out)

let token_to_string = function
  | Ident s -> Printf.sprintf "identifier %S" s
  | Keyword s -> s
  | Int_lit i -> string_of_int i
  | Float_lit f -> string_of_float f
  | String_lit s -> Printf.sprintf "'%s'" s
  | Param_tok i -> Printf.sprintf "$%d" i
  | Lparen -> "("
  | Rparen -> ")"
  | Comma -> ","
  | Semicolon -> ";"
  | Star -> "*"
  | Dot -> "."
  | Op s -> s
  | Eof -> "<eof>"
