(** Abstract syntax of the SQL dialect.

    The dialect is the PostgreSQL subset the four workload patterns need:
    full SELECT with joins / subqueries / grouping / ordering, DML,
    DDL, COPY, transaction control including the 2PC verbs, and CALL for
    delegated stored procedures (§3.8). The Citus layer rewrites these
    trees (shard name substitution, aggregate decomposition) and deparses
    them back to SQL text to ship to workers. *)

type ty = Datum.ty

type binop = Add | Sub | Mul | Div | Mod | Concat

type cmpop = Eq | Ne | Lt | Le | Gt | Ge

type expr =
  | Const of Datum.t
  | Column of string option * string  (** optional qualifier *)
  | Param of int  (** [$1] is [Param 1] *)
  | And of expr * expr
  | Or of expr * expr
  | Not of expr
  | Cmp of cmpop * expr * expr
  | Bin of binop * expr * expr
  | Neg of expr
  | Is_null of expr * bool  (** true = IS NULL, false = IS NOT NULL *)
  | In_list of expr * expr list * bool  (** negated? *)
  | Between of expr * expr * expr
  | Like of { subject : expr; pattern : expr; ci : bool; negated : bool }
  | Json_get of expr * expr * bool  (** [->] = false, [->>] = true *)
  | Cast of expr * ty
  | Case of (expr * expr) list * expr option
  | Func of string * expr list
  | Agg of agg
  | Exists of select * bool  (** negated? *)
  | In_subquery of expr * select * bool  (** negated? *)
  | Scalar_subquery of select

and agg = {
  agg_name : string;  (** count | sum | avg | min | max *)
  agg_arg : expr option;  (** [None] = COUNT star *)
  agg_distinct : bool;
}

and projection =
  | Star
  | Star_of of string
  | Proj of expr * string option  (** expression with optional alias *)

and from_item =
  | Table of { name : string; alias : string option }
  | Subselect of select * string
  | Join of {
      left : from_item;
      right : from_item;
      kind : join_kind;
      cond : expr option;  (** None = CROSS JOIN *)
    }

and join_kind = Inner | Left_outer

and select = {
  distinct : bool;
  projections : projection list;
  from : from_item list;  (** comma-separated items = cross join *)
  where : expr option;
  group_by : expr list;
  having : expr option;
  order_by : (expr * order_dir) list;
  limit : expr option;
  offset : expr option;
}

and order_dir = Asc | Desc

type index_method = Btree | Gin_trgm

type insert_source = Values of expr list list | Query of select

type column_def = {
  col_name : string;
  col_ty : ty;
  col_default : expr option;
  col_not_null : bool;
}

type statement =
  | Select_stmt of select
  | Insert of {
      table : string;
      columns : string list option;
      source : insert_source;
      on_conflict_do_nothing : bool;
    }
  | Update of { table : string; sets : (string * expr) list; where : expr option }
  | Delete of { table : string; where : expr option }
  | Create_table of {
      name : string;
      columns : column_def list;
      primary_key : string list;
      if_not_exists : bool;
      using_columnar : bool;
    }
  | Create_index of {
      name : string;
      table : string;
      using : index_method;
      key_columns : string list;  (** for Btree *)
      key_expr : expr option;  (** for Gin_trgm over an expression *)
      if_not_exists : bool;
    }
  | Drop_table of { name : string; if_exists : bool }
  | Alter_table_add_column of { table : string; column : column_def }
  | Truncate of string list
  | Copy_from of { table : string; columns : string list option }
  | Begin_txn
  | Commit_txn
  | Rollback_txn
  | Prepare_transaction of string
  | Commit_prepared of string
  | Rollback_prepared of string
  | Vacuum of string option
  | Call of { proc : string; args : expr list }
  | Prepare_stmt of { pname : string; pstmt : statement }
      (** [PREPARE name AS statement]: session-scoped named statement,
          parameter placeholders left unbound *)
  | Execute_stmt of { ename : string; eargs : expr list }
      (** [EXECUTE name(args)]: run a prepared statement with arguments *)
  | Deallocate_stmt of string option  (** [None] = DEALLOCATE ALL *)

(** Structural helpers used across planners. *)

let rec fold_expr (f : 'a -> expr -> 'a) (acc : 'a) (e : expr) : 'a =
  let acc = f acc e in
  match e with
  | Const _ | Column _ | Param _ -> acc
  | And (a, b) | Or (a, b) | Cmp (_, a, b) | Bin (_, a, b) | Json_get (a, b, _)
    ->
    fold_expr f (fold_expr f acc a) b
  | Not a | Neg a | Is_null (a, _) | Cast (a, _) -> fold_expr f acc a
  | In_list (a, items, _) -> List.fold_left (fold_expr f) (fold_expr f acc a) items
  | Between (a, lo, hi) ->
    fold_expr f (fold_expr f (fold_expr f acc a) lo) hi
  | Like { subject; pattern; _ } -> fold_expr f (fold_expr f acc subject) pattern
  | Case (branches, else_) ->
    let acc =
      List.fold_left
        (fun acc (c, v) -> fold_expr f (fold_expr f acc c) v)
        acc branches
    in
    (match else_ with Some e -> fold_expr f acc e | None -> acc)
  | Func (_, args) -> List.fold_left (fold_expr f) acc args
  | Agg { agg_arg; _ } ->
    (match agg_arg with Some a -> fold_expr f acc a | None -> acc)
  | In_subquery (a, _, _) -> fold_expr f acc a
  | Exists _ | Scalar_subquery _ -> acc

(** [map_expr f e] rewrites bottom-up; [f] sees each rebuilt node. *)
let rec map_expr (f : expr -> expr) (e : expr) : expr =
  let r = map_expr f in
  let rebuilt =
    match e with
    | Const _ | Column _ | Param _ -> e
    | And (a, b) -> And (r a, r b)
    | Or (a, b) -> Or (r a, r b)
    | Not a -> Not (r a)
    | Cmp (op, a, b) -> Cmp (op, r a, r b)
    | Bin (op, a, b) -> Bin (op, r a, r b)
    | Neg a -> Neg (r a)
    | Is_null (a, p) -> Is_null (r a, p)
    | In_list (a, items, neg) -> In_list (r a, List.map r items, neg)
    | Between (a, lo, hi) -> Between (r a, r lo, r hi)
    | Like l -> Like { l with subject = r l.subject; pattern = r l.pattern }
    | Json_get (a, b, text) -> Json_get (r a, r b, text)
    | Cast (a, ty) -> Cast (r a, ty)
    | Case (branches, else_) ->
      Case
        ( List.map (fun (c, v) -> (r c, r v)) branches,
          Option.map r else_ )
    | Func (name, args) -> Func (name, List.map r args)
    | Agg a -> Agg { a with agg_arg = Option.map r a.agg_arg }
    | Exists _ | In_subquery _ | Scalar_subquery _ -> e
  in
  f rebuilt

(** Conjuncts of a WHERE clause: [a AND b AND c] -> [a; b; c]. *)
let rec conjuncts = function
  | And (a, b) -> conjuncts a @ conjuncts b
  | e -> [ e ]

let conjoin = function
  | [] -> None
  | e :: rest -> Some (List.fold_left (fun acc c -> And (acc, c)) e rest)

(** All table names referenced in a FROM tree (not subquery internals). *)
let rec from_tables = function
  | Table { name; _ } -> [ name ]
  | Subselect _ -> []
  | Join { left; right; _ } -> from_tables left @ from_tables right

let contains_aggregate e =
  fold_expr (fun acc n -> acc || match n with Agg _ -> true | _ -> false) false e

(** Map [f] over every expression in a select, including nested FROM
    subselects (used for parameter binding and shard-name rewriting). *)
let rec map_select_exprs (f : expr -> expr) (s : select) : select =
  let me e = map_expr f e in
  {
    s with
    projections =
      List.map
        (function
          | Star -> Star
          | Star_of q -> Star_of q
          | Proj (e, a) -> Proj (me e, a))
        s.projections;
    from = List.map (map_from_item_exprs f) s.from;
    where = Option.map me s.where;
    group_by = List.map me s.group_by;
    having = Option.map me s.having;
    order_by = List.map (fun (e, d) -> (me e, d)) s.order_by;
    limit = Option.map me s.limit;
    offset = Option.map me s.offset;
  }

and map_from_item_exprs f = function
  | Table t -> Table t
  | Subselect (sel, alias) -> Subselect (map_select_exprs f sel, alias)
  | Join { left; right; kind; cond } ->
    Join
      {
        left = map_from_item_exprs f left;
        right = map_from_item_exprs f right;
        kind;
        cond = Option.map (map_expr f) cond;
      }

let map_statement_exprs (f : expr -> expr) (st : statement) : statement =
  let me e = map_expr f e in
  match st with
  | Select_stmt s -> Select_stmt (map_select_exprs f s)
  | Insert i ->
    let source =
      match i.source with
      | Values tuples -> Values (List.map (List.map me) tuples)
      | Query s -> Query (map_select_exprs f s)
    in
    Insert { i with source }
  | Update u ->
    Update
      {
        u with
        sets = List.map (fun (c, e) -> (c, me e)) u.sets;
        where = Option.map me u.where;
      }
  | Delete d -> Delete { d with where = Option.map me d.where }
  | Call c -> Call { c with args = List.map me c.args }
  | Execute_stmt e -> Execute_stmt { e with eargs = List.map me e.eargs }
  | Create_table _ | Create_index _ | Drop_table _ | Alter_table_add_column _
  | Truncate _ | Copy_from _ | Begin_txn | Commit_txn | Rollback_txn
  | Prepare_transaction _ | Commit_prepared _ | Rollback_prepared _ | Vacuum _
  (* a stored prepared statement keeps its placeholders until EXECUTE *)
  | Prepare_stmt _ | Deallocate_stmt _ ->
    st

exception Unbound_param of int
(** [$n] had no binding. Raised with the parameter index so executor
    layers can attach the statement name and surface a typed error
    instead of a bare [Invalid_argument]. *)

(** Substitute [$n] parameters with constants. Raises {!Unbound_param}
    when the list is too short for some [$n] in the tree. *)
let bind_params (params : Datum.t list) (st : statement) : statement =
  map_statement_exprs
    (function
      | Param i ->
        (match List.nth_opt params (i - 1) with
         | Some d -> Const d
         | None -> raise (Unbound_param i))
      | e -> e)
    st

(** Highest [$n] referenced anywhere in the statement (0 = none). *)
let max_param (st : statement) : int =
  let m = ref 0 in
  ignore
    (map_statement_exprs
       (function
         | Param i as e ->
           if i > !m then m := i;
           e
         | e -> e)
       st);
  !m

(** Rename table references (FROM items, DML targets) via [f] — the core
    mechanism of shard-name rewriting in the Citus planners. *)
let rec rename_tables_from f = function
  | Table { name; alias } ->
    (* keep the original name visible as the alias so column qualifiers
       keep resolving after the rename *)
    let alias = Some (Option.value ~default:name alias) in
    Table { name = f name; alias }
  | Subselect (sel, a) -> Subselect (rename_tables_select f sel, a)
  | Join { left; right; kind; cond } ->
    Join
      { left = rename_tables_from f left;
        right = rename_tables_from f right;
        kind;
        cond }

and rename_tables_select f (s : select) : select =
  let in_expr e =
    map_expr
      (function
        | Exists (sel, n) -> Exists (rename_tables_select f sel, n)
        | In_subquery (e, sel, n) -> In_subquery (e, rename_tables_select f sel, n)
        | Scalar_subquery sel -> Scalar_subquery (rename_tables_select f sel)
        | e -> e)
      e
  in
  {
    s with
    from = List.map (rename_tables_from f) s.from;
    where = Option.map in_expr s.where;
    having = Option.map in_expr s.having;
    projections =
      List.map
        (function
          | Star -> Star
          | Star_of q -> Star_of q
          | Proj (e, a) -> Proj (in_expr e, a))
        s.projections;
  }

let rename_in_expr f e =
  map_expr
    (function
      | Exists (sel, n) -> Exists (rename_tables_select f sel, n)
      | In_subquery (e, sel, n) -> In_subquery (e, rename_tables_select f sel, n)
      | Scalar_subquery sel -> Scalar_subquery (rename_tables_select f sel)
      | e -> e)
    e

let rename_tables_statement f (st : statement) : statement =
  match st with
  | Select_stmt s -> Select_stmt (rename_tables_select f s)
  | Insert i ->
    let source =
      match i.source with
      | Values v -> Values v
      | Query s -> Query (rename_tables_select f s)
    in
    Insert { i with table = f i.table; source }
  | Update u ->
    Update
      { u with table = f u.table; where = Option.map (rename_in_expr f) u.where }
  | Delete d ->
    Delete
      { table = f d.table; where = Option.map (rename_in_expr f) d.where }
  | Copy_from c -> Copy_from { c with table = f c.table }
  | Truncate ts -> Truncate (List.map f ts)
  | Create_index ci -> Create_index { ci with table = f ci.table }
  | _ -> st
