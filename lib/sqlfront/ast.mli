(** Abstract syntax of the SQL dialect.

    The dialect is the PostgreSQL subset the four workload patterns need:
    full SELECT with joins / subqueries / grouping / ordering, DML,
    DDL, COPY, transaction control including the 2PC verbs, and CALL for
    delegated stored procedures (§3.8). The Citus layer rewrites these
    trees (shard name substitution, aggregate decomposition) and deparses
    them back to SQL text to ship to workers — {!Deparse.statement} is the
    only sanctioned SQL printer (lint rule L1). *)

type ty = Datum.ty

type binop = Add | Sub | Mul | Div | Mod | Concat

type cmpop = Eq | Ne | Lt | Le | Gt | Ge

type expr =
  | Const of Datum.t
  | Column of string option * string  (** optional qualifier *)
  | Param of int  (** [$1] is [Param 1] *)
  | And of expr * expr
  | Or of expr * expr
  | Not of expr
  | Cmp of cmpop * expr * expr
  | Bin of binop * expr * expr
  | Neg of expr
  | Is_null of expr * bool  (** true = IS NULL, false = IS NOT NULL *)
  | In_list of expr * expr list * bool  (** negated? *)
  | Between of expr * expr * expr
  | Like of { subject : expr; pattern : expr; ci : bool; negated : bool }
  | Json_get of expr * expr * bool  (** [->] = false, [->>] = true *)
  | Cast of expr * ty
  | Case of (expr * expr) list * expr option
  | Func of string * expr list
  | Agg of agg
  | Exists of select * bool  (** negated? *)
  | In_subquery of expr * select * bool  (** negated? *)
  | Scalar_subquery of select

and agg = {
  agg_name : string;  (** count | sum | avg | min | max *)
  agg_arg : expr option;  (** [None] = COUNT star *)
  agg_distinct : bool;
}

and projection =
  | Star
  | Star_of of string
  | Proj of expr * string option  (** expression with optional alias *)

and from_item =
  | Table of { name : string; alias : string option }
  | Subselect of select * string
  | Join of {
      left : from_item;
      right : from_item;
      kind : join_kind;
      cond : expr option;  (** None = CROSS JOIN *)
    }

and join_kind = Inner | Left_outer

and select = {
  distinct : bool;
  projections : projection list;
  from : from_item list;  (** comma-separated items = cross join *)
  where : expr option;
  group_by : expr list;
  having : expr option;
  order_by : (expr * order_dir) list;
  limit : expr option;
  offset : expr option;
}

and order_dir = Asc | Desc

type index_method = Btree | Gin_trgm

type insert_source = Values of expr list list | Query of select

type column_def = {
  col_name : string;
  col_ty : ty;
  col_default : expr option;
  col_not_null : bool;
}

type statement =
  | Select_stmt of select
  | Insert of {
      table : string;
      columns : string list option;
      source : insert_source;
      on_conflict_do_nothing : bool;
    }
  | Update of { table : string; sets : (string * expr) list; where : expr option }
  | Delete of { table : string; where : expr option }
  | Create_table of {
      name : string;
      columns : column_def list;
      primary_key : string list;
      if_not_exists : bool;
      using_columnar : bool;
    }
  | Create_index of {
      name : string;
      table : string;
      using : index_method;
      key_columns : string list;  (** for Btree *)
      key_expr : expr option;  (** for Gin_trgm over an expression *)
      if_not_exists : bool;
    }
  | Drop_table of { name : string; if_exists : bool }
  | Alter_table_add_column of { table : string; column : column_def }
  | Truncate of string list
  | Copy_from of { table : string; columns : string list option }
  | Begin_txn
  | Commit_txn
  | Rollback_txn
  | Prepare_transaction of string  (** the payload is the gid *)
  | Commit_prepared of string
  | Rollback_prepared of string
  | Vacuum of string option
  | Call of { proc : string; args : expr list }
  | Prepare_stmt of { pname : string; pstmt : statement }
      (** [PREPARE name AS statement]: session-scoped named statement,
          parameter placeholders left unbound *)
  | Execute_stmt of { ename : string; eargs : expr list }
      (** [EXECUTE name(args)]: run a prepared statement with arguments *)
  | Deallocate_stmt of string option  (** [None] = DEALLOCATE ALL *)

(** {2 Structural helpers used across planners} *)

(** Pre-order fold over an expression tree (subquery selects are not
    descended; [In_subquery]'s needle expression is). *)
val fold_expr : ('a -> expr -> 'a) -> 'a -> expr -> 'a

(** [map_expr f e] rewrites bottom-up; [f] sees each rebuilt node.
    Subquery selects are left untouched. *)
val map_expr : (expr -> expr) -> expr -> expr

(** Conjuncts of a WHERE clause: [a AND b AND c] -> [a; b; c]. *)
val conjuncts : expr -> expr list

(** Inverse of {!conjuncts}; [None] for the empty list. *)
val conjoin : expr list -> expr option

(** All table names referenced in a FROM tree (not subquery internals). *)
val from_tables : from_item -> string list

val contains_aggregate : expr -> bool

(** Map [f] over every expression in a select, including nested FROM
    subselects (used for parameter binding and shard-name rewriting). *)
val map_select_exprs : (expr -> expr) -> select -> select

val map_from_item_exprs : (expr -> expr) -> from_item -> from_item

val map_statement_exprs : (expr -> expr) -> statement -> statement

exception Unbound_param of int
(** A [$n] placeholder had no binding. Carries the parameter index so
    executor layers can attach the statement name and surface a typed
    error (see [Citus.Exec]) instead of a bare [Invalid_argument]. *)

(** Substitute [$n] parameters with constants. Raises {!Unbound_param}
    when the statement references a parameter with no value. *)
val bind_params : Datum.t list -> statement -> statement

(** Highest [$n] referenced anywhere in the statement (0 = none). *)
val max_param : statement -> int

(** {2 Table renaming}

    Rename table references (FROM items, DML targets) via a function — the
    core mechanism of shard-name rewriting in the Citus planners. The
    original name is kept visible as an alias so column qualifiers keep
    resolving after the rename. *)

val rename_tables_from : (string -> string) -> from_item -> from_item

val rename_tables_select : (string -> string) -> select -> select

val rename_in_expr : (string -> string) -> expr -> expr

val rename_tables_statement : (string -> string) -> statement -> statement
