exception Parse_error of string

open Ast

type state = { tokens : Lexer.token array; mutable pos : int }

let fail st msg =
  let tok =
    if st.pos < Array.length st.tokens then
      Lexer.token_to_string st.tokens.(st.pos)
    else "<past end>"
  in
  raise (Parse_error (Printf.sprintf "%s (at token %d: %s)" msg st.pos tok))

let peek st =
  if st.pos < Array.length st.tokens then st.tokens.(st.pos) else Lexer.Eof

let peek2 st =
  if st.pos + 1 < Array.length st.tokens then st.tokens.(st.pos + 1)
  else Lexer.Eof

let advance st = st.pos <- st.pos + 1

let eat st tok =
  if peek st = tok then advance st
  else fail st (Printf.sprintf "expected %s" (Lexer.token_to_string tok))

let accept st tok = if peek st = tok then (advance st; true) else false

let kw st k = accept st (Lexer.Keyword k)

let expect_kw st k = eat st (Lexer.Keyword k)

(* Keywords that PostgreSQL treats as unreserved: they may appear wherever
   an identifier is expected (e.g. a column named "key"). *)
let unreserved =
  [ "KEY"; "COLUMN"; "INDEX"; "DO"; "NOTHING"; "STDIN"; "TRANSACTION";
    "PREPARED"; "BTREE"; "GIN"; "COLUMNAR"; "BY"; "EXECUTE"; "DEALLOCATE" ]

let ident_of_token = function
  | Lexer.Ident s -> Some s
  | Lexer.Keyword k when List.mem k unreserved -> Some (String.lowercase_ascii k)
  | _ -> None

let expect_ident st =
  match ident_of_token (peek st) with
  | Some s -> advance st; s
  | None -> fail st "expected identifier"

let expect_string st =
  match peek st with
  | Lexer.String_lit s -> advance st; s
  | _ -> fail st "expected string literal"

(* Type names: single identifier, or "double precision" / "timestamp with(out) time zone". *)
let parse_type_name st =
  let first = expect_ident st in
  match first with
  | "double" ->
    (match peek st with
     | Lexer.Ident "precision" -> advance st; "double precision"
     | _ -> "double")
  | "timestamp" ->
    (match peek st with
     | Lexer.Ident ("with" | "without") ->
       advance st;
       let _time = expect_ident st in
       let _zone = expect_ident st in
       "timestamp"
     | _ -> "timestamp")
  | "character" ->
    (match peek st with
     | Lexer.Ident "varying" -> advance st; "varchar"
     | _ -> "char")
  | t -> t

(* "date" has no datum type: casts to date become a text-truncation
   function, which is what the analytics workloads need. *)
let cast_expr e ty_name =
  match String.lowercase_ascii ty_name with
  | "date" -> Func ("sql_date", [ e ])
  | name -> Cast (e, Datum.ty_of_name name)

let agg_keywords = [ "COUNT"; "SUM"; "AVG"; "MIN"; "MAX" ]

let rec parse_expr st = parse_or st

and parse_or st =
  let left = parse_and st in
  if kw st "OR" then Or (left, parse_or st) else left

and parse_and st =
  let left = parse_not st in
  if kw st "AND" then And (left, parse_and st) else left

and parse_not st =
  if kw st "NOT" then Not (parse_not st) else parse_predicate st

and parse_predicate st =
  let left = parse_additive st in
  let rec loop left =
    match peek st with
    | Lexer.Op (("=" | "<>" | "<" | "<=" | ">" | ">=") as op) ->
      advance st;
      let right = parse_additive st in
      let cmp =
        match op with
        | "=" -> Eq
        | "<>" -> Ne
        | "<" -> Lt
        | "<=" -> Le
        | ">" -> Gt
        | ">=" -> Ge
        | _ -> assert false
      in
      loop (Cmp (cmp, left, right))
    | Lexer.Keyword "IS" ->
      advance st;
      let negated = kw st "NOT" in
      expect_kw st "NULL";
      loop (Is_null (left, not negated))
    | Lexer.Keyword "BETWEEN" ->
      advance st;
      let lo = parse_additive st in
      expect_kw st "AND";
      let hi = parse_additive st in
      loop (Between (left, lo, hi))
    | Lexer.Keyword "IN" -> loop (parse_in st left false)
    | Lexer.Keyword "LIKE" ->
      advance st;
      let pattern = parse_additive st in
      loop (Like { subject = left; pattern; ci = false; negated = false })
    | Lexer.Keyword "ILIKE" ->
      advance st;
      let pattern = parse_additive st in
      loop (Like { subject = left; pattern; ci = true; negated = false })
    | Lexer.Keyword "NOT" -> begin
      match peek2 st with
      | Lexer.Keyword "IN" ->
        advance st;
        loop (parse_in st left true)
      | Lexer.Keyword "LIKE" ->
        advance st;
        advance st;
        let pattern = parse_additive st in
        loop (Like { subject = left; pattern; ci = false; negated = true })
      | Lexer.Keyword "ILIKE" ->
        advance st;
        advance st;
        let pattern = parse_additive st in
        loop (Like { subject = left; pattern; ci = true; negated = true })
      | _ -> left
    end
    | _ -> left
  in
  loop left

and parse_in st left negated =
  expect_kw st "IN";
  eat st Lexer.Lparen;
  match peek st with
  | Lexer.Keyword "SELECT" ->
    let sel = parse_select_body st in
    eat st Lexer.Rparen;
    In_subquery (left, sel, negated)
  | _ ->
    let rec items acc =
      let e = parse_expr st in
      if accept st Lexer.Comma then items (e :: acc)
      else begin
        eat st Lexer.Rparen;
        List.rev (e :: acc)
      end
    in
    In_list (left, items [], negated)

and parse_additive st =
  let left = parse_multiplicative st in
  let rec loop left =
    match peek st with
    | Lexer.Op "+" -> advance st; loop (Bin (Add, left, parse_multiplicative st))
    | Lexer.Op "-" -> advance st; loop (Bin (Sub, left, parse_multiplicative st))
    | Lexer.Op "||" -> advance st; loop (Bin (Concat, left, parse_multiplicative st))
    | _ -> left
  in
  loop left

and parse_multiplicative st =
  let left = parse_unary st in
  let rec loop left =
    match peek st with
    | Lexer.Star -> advance st; loop (Bin (Mul, left, parse_unary st))
    | Lexer.Op "/" -> advance st; loop (Bin (Div, left, parse_unary st))
    | Lexer.Op "%" -> advance st; loop (Bin (Mod, left, parse_unary st))
    | _ -> left
  in
  loop left

and parse_unary st =
  match peek st with
  | Lexer.Op "-" ->
    advance st;
    (* fold negated numeric literals so they round-trip as constants *)
    (match parse_unary st with
     | Const (Datum.Int i) -> Const (Datum.Int (-i))
     | Const (Datum.Float f) -> Const (Datum.Float (-.f))
     | e -> Neg e)
  | Lexer.Op "+" -> advance st; parse_unary st
  | _ -> parse_postfix st

and parse_postfix st =
  let e = parse_primary st in
  let rec loop e =
    match peek st with
    | Lexer.Op "::" ->
      advance st;
      let ty = parse_type_name st in
      loop (cast_expr e ty)
    | Lexer.Op "->" ->
      advance st;
      loop (Json_get (e, parse_primary st, false))
    | Lexer.Op "->>" ->
      advance st;
      loop (Json_get (e, parse_primary st, true))
    | _ -> e
  in
  loop e

and parse_primary st =
  match peek st with
  | Lexer.Int_lit i -> advance st; Const (Datum.Int i)
  | Lexer.Float_lit f -> advance st; Const (Datum.Float f)
  | Lexer.String_lit s -> advance st; Const (Datum.Text s)
  | Lexer.Param_tok i -> advance st; Param i
  | Lexer.Keyword "NULL" -> advance st; Const Datum.Null
  | Lexer.Keyword "TRUE" -> advance st; Const (Datum.Bool true)
  | Lexer.Keyword "FALSE" -> advance st; Const (Datum.Bool false)
  | Lexer.Keyword "CASE" -> parse_case st
  | Lexer.Keyword "CAST" ->
    advance st;
    eat st Lexer.Lparen;
    let e = parse_expr st in
    expect_kw st "AS";
    let ty = parse_type_name st in
    eat st Lexer.Rparen;
    cast_expr e ty
  | Lexer.Keyword "EXISTS" ->
    advance st;
    eat st Lexer.Lparen;
    let sel = parse_select_body st in
    eat st Lexer.Rparen;
    Exists (sel, false)
  | Lexer.Keyword "NOT" when peek2 st = Lexer.Keyword "EXISTS" ->
    advance st;
    advance st;
    eat st Lexer.Lparen;
    let sel = parse_select_body st in
    eat st Lexer.Rparen;
    Exists (sel, true)
  | Lexer.Keyword k when List.mem k agg_keywords ->
    advance st;
    eat st Lexer.Lparen;
    let name = String.lowercase_ascii k in
    if peek st = Lexer.Star then begin
      advance st;
      eat st Lexer.Rparen;
      if name <> "count" then fail st "only COUNT(*) takes *";
      Agg { agg_name = "count"; agg_arg = None; agg_distinct = false }
    end
    else begin
      let distinct = kw st "DISTINCT" in
      let arg = parse_expr st in
      eat st Lexer.Rparen;
      Agg { agg_name = name; agg_arg = Some arg; agg_distinct = distinct }
    end
  | Lexer.Lparen ->
    advance st;
    (match peek st with
     | Lexer.Keyword "SELECT" ->
       let sel = parse_select_body st in
       eat st Lexer.Rparen;
       Scalar_subquery sel
     | _ ->
       let e = parse_expr st in
       eat st Lexer.Rparen;
       e)
  | tok when ident_of_token tok <> None -> begin
    let name = Option.get (ident_of_token tok) in
    match peek2 st with
    | Lexer.Lparen ->
      advance st;
      advance st;
      if accept st Lexer.Rparen then Func (name, [])
      else begin
        let rec args acc =
          let e = parse_expr st in
          if accept st Lexer.Comma then args (e :: acc)
          else begin
            eat st Lexer.Rparen;
            List.rev (e :: acc)
          end
        in
        Func (name, args [])
      end
    | Lexer.Dot ->
      advance st;
      advance st;
      let col = expect_ident st in
      Column (Some name, col)
    | _ ->
      advance st;
      Column (None, name)
  end
  | _ -> fail st "expected expression"

and parse_case st =
  expect_kw st "CASE";
  let rec branches acc =
    if kw st "WHEN" then begin
      let cond = parse_expr st in
      expect_kw st "THEN";
      let value = parse_expr st in
      branches ((cond, value) :: acc)
    end
    else List.rev acc
  in
  let bs = branches [] in
  let else_ = if kw st "ELSE" then Some (parse_expr st) else None in
  expect_kw st "END";
  Case (bs, else_)

(* --- SELECT --- *)

and parse_projection st =
  match peek st with
  | Lexer.Star -> advance st; Ast.Star
  | Lexer.Ident name
    when peek2 st = Lexer.Dot
         && (match
               (if st.pos + 2 < Array.length st.tokens then
                  st.tokens.(st.pos + 2)
                else Lexer.Eof)
             with
            | Lexer.Star -> true
            | _ -> false) ->
    advance st;
    advance st;
    advance st;
    Star_of name
  | _ ->
    let e = parse_expr st in
    let alias =
      if kw st "AS" then Some (expect_ident st)
      else
        match peek st with
        | Lexer.Ident a
          when not (List.mem (String.uppercase_ascii a) Lexer.keywords) ->
          advance st;
          Some a
        | _ -> None
    in
    Proj (e, alias)

and parse_base_from_item st =
  match peek st with
  | Lexer.Lparen ->
    advance st;
    (match peek st with
     | Lexer.Keyword "SELECT" ->
       let sel = parse_select_body st in
       eat st Lexer.Rparen;
       ignore (kw st "AS");
       let alias = expect_ident st in
       Subselect (sel, alias)
     | _ ->
       let item = parse_from_item st in
       eat st Lexer.Rparen;
       item)
  | _ ->
    let name = expect_ident st in
    let alias =
      if kw st "AS" then Some (expect_ident st)
      else
        match peek st with
        | Lexer.Ident a -> advance st; Some a
        | _ -> None
    in
    Table { name; alias }

and parse_from_item st =
  let left = parse_base_from_item st in
  let rec joins left =
    match peek st with
    | Lexer.Keyword "JOIN" ->
      advance st;
      let right = parse_base_from_item st in
      expect_kw st "ON";
      let cond = parse_expr st in
      joins (Join { left; right; kind = Inner; cond = Some cond })
    | Lexer.Keyword "INNER" when peek2 st = Lexer.Keyword "JOIN" ->
      advance st;
      advance st;
      let right = parse_base_from_item st in
      expect_kw st "ON";
      let cond = parse_expr st in
      joins (Join { left; right; kind = Inner; cond = Some cond })
    | Lexer.Keyword "LEFT" ->
      advance st;
      ignore (kw st "OUTER");
      expect_kw st "JOIN";
      let right = parse_base_from_item st in
      expect_kw st "ON";
      let cond = parse_expr st in
      joins (Join { left; right; kind = Left_outer; cond = Some cond })
    | Lexer.Keyword "CROSS" ->
      advance st;
      expect_kw st "JOIN";
      let right = parse_base_from_item st in
      joins (Join { left; right; kind = Inner; cond = None })
    | _ -> left
  in
  joins left

(* WITH name AS (select), ... desugars into subselects: every FROM
   reference to a CTE name becomes an inline derived table. Recursive CTEs
   are rejected (unsupported, as in the paper's §7). *)
and parse_select_body st =
  if kw st "WITH" then begin
    if kw st "RECURSIVE" then fail st "recursive CTEs are not supported";
    let rec parse_ctes acc =
      let name = expect_ident st in
      expect_kw st "AS";
      eat st Lexer.Lparen;
      let cte = parse_select_body st in
      eat st Lexer.Rparen;
      let acc = (name, cte) :: acc in
      if accept st Lexer.Comma then parse_ctes acc else List.rev acc
    in
    let ctes = parse_ctes [] in
    let body = parse_select_body st in
    substitute_ctes ctes body
  end
  else parse_select_plain st

and substitute_ctes ctes (sel : Ast.select) : Ast.select =
  let rec in_from = function
    | Ast.Table { name; alias } as item ->
      (match List.assoc_opt name ctes with
       | Some cte ->
         Ast.Subselect (cte, Option.value ~default:name alias)
       | None -> item)
    | Ast.Subselect (s, a) -> Ast.Subselect (in_select s, a)
    | Ast.Join { left; right; kind; cond } ->
      Ast.Join { left = in_from left; right = in_from right; kind; cond }
  and in_select s =
    let in_expr e =
      Ast.map_expr
        (fun n ->
          match n with
          | Ast.Exists (sub, neg) -> Ast.Exists (in_select sub, neg)
          | Ast.In_subquery (e, sub, neg) -> Ast.In_subquery (e, in_select sub, neg)
          | Ast.Scalar_subquery sub -> Ast.Scalar_subquery (in_select sub)
          | n -> n)
        e
    in
    {
      s with
      Ast.from = List.map in_from s.Ast.from;
      where = Option.map in_expr s.Ast.where;
      having = Option.map in_expr s.Ast.having;
      projections =
        List.map
          (function
            | Ast.Proj (e, a) -> Ast.Proj (in_expr e, a)
            | p -> p)
          s.Ast.projections;
    }
  in
  in_select sel

and parse_select_plain st =
  expect_kw st "SELECT";
  let distinct = kw st "DISTINCT" in
  let rec projections acc =
    let p = parse_projection st in
    if accept st Lexer.Comma then projections (p :: acc)
    else List.rev (p :: acc)
  in
  let projections = projections [] in
  let from =
    if kw st "FROM" then begin
      let rec items acc =
        let item = parse_from_item st in
        if accept st Lexer.Comma then items (item :: acc)
        else List.rev (item :: acc)
      in
      items []
    end
    else []
  in
  let where = if kw st "WHERE" then Some (parse_expr st) else None in
  let group_by =
    if kw st "GROUP" then begin
      expect_kw st "BY";
      let rec exprs acc =
        let e = parse_expr st in
        if accept st Lexer.Comma then exprs (e :: acc)
        else List.rev (e :: acc)
      in
      exprs []
    end
    else []
  in
  let having = if kw st "HAVING" then Some (parse_expr st) else None in
  let order_by =
    if kw st "ORDER" then begin
      expect_kw st "BY";
      let rec exprs acc =
        let e = parse_expr st in
        let dir =
          if kw st "DESC" then Desc
          else begin
            ignore (kw st "ASC");
            Asc
          end
        in
        if accept st Lexer.Comma then exprs ((e, dir) :: acc)
        else List.rev ((e, dir) :: acc)
      in
      exprs []
    end
    else []
  in
  let limit = if kw st "LIMIT" then Some (parse_expr st) else None in
  let offset = if kw st "OFFSET" then Some (parse_expr st) else None in
  { distinct; projections; from; where; group_by; having; order_by; limit; offset }

(* --- statements --- *)

let parse_column_def st =
  let col_name = expect_ident st in
  let ty = parse_type_name st in
  let col_ty = Datum.ty_of_name ty in
  let primary = ref false in
  let not_null = ref false in
  let default = ref None in
  let rec options () =
    if kw st "PRIMARY" then begin
      expect_kw st "KEY";
      primary := true;
      options ()
    end
    else if kw st "NOT" then begin
      expect_kw st "NULL";
      not_null := true;
      options ()
    end
    else if kw st "DEFAULT" then begin
      default := Some (parse_expr st);
      options ()
    end
  in
  options ();
  ({ col_name; col_ty; col_default = !default; col_not_null = !not_null }, !primary)

let parse_create_table st =
  let if_not_exists =
    if kw st "IF" then begin
      expect_kw st "NOT";
      expect_kw st "EXISTS";
      true
    end
    else false
  in
  let name = expect_ident st in
  eat st Lexer.Lparen;
  let columns = ref [] in
  let primary_key = ref [] in
  let rec defs () =
    (if kw st "PRIMARY" then begin
       expect_kw st "KEY";
       eat st Lexer.Lparen;
       let rec cols acc =
         let c = expect_ident st in
         if accept st Lexer.Comma then cols (c :: acc)
         else begin
           eat st Lexer.Rparen;
           List.rev (c :: acc)
         end
       in
       primary_key := cols []
     end
     else begin
       let def, is_pk = parse_column_def st in
       columns := def :: !columns;
       if is_pk then primary_key := [ def.col_name ]
     end);
    if accept st Lexer.Comma then defs () else eat st Lexer.Rparen
  in
  defs ();
  let using_columnar =
    if kw st "USING" then begin
      expect_kw st "COLUMNAR";
      true
    end
    else false
  in
  Create_table
    {
      name;
      columns = List.rev !columns;
      primary_key = !primary_key;
      if_not_exists;
      using_columnar;
    }

let parse_create_index st =
  let if_not_exists =
    if kw st "IF" then begin
      expect_kw st "NOT";
      expect_kw st "EXISTS";
      true
    end
    else false
  in
  let name = expect_ident st in
  expect_kw st "ON";
  let table = expect_ident st in
  let using =
    if kw st "USING" then
      if kw st "GIN" then Gin_trgm
      else if kw st "BTREE" then Btree
      else fail st "expected GIN or BTREE"
    else Btree
  in
  eat st Lexer.Lparen;
  (* Either a column list, or a parenthesized expression with an optional
     operator class: ((expr) gin_trgm_ops) *)
  match peek st with
  | Lexer.Lparen ->
    advance st;
    let e = parse_expr st in
    eat st Lexer.Rparen;
    (match peek st with
     | Lexer.Ident _ -> advance st (* operator class, e.g. gin_trgm_ops *)
     | _ -> ());
    eat st Lexer.Rparen;
    Create_index
      { name; table; using; key_columns = []; key_expr = Some e; if_not_exists }
  | _ ->
    let rec cols acc =
      let c = expect_ident st in
      if accept st Lexer.Comma then cols (c :: acc)
      else begin
        eat st Lexer.Rparen;
        List.rev (c :: acc)
      end
    in
    Create_index
      { name; table; using; key_columns = cols []; key_expr = None; if_not_exists }

let parse_insert st =
  expect_kw st "INTO";
  let table = expect_ident st in
  let columns =
    if peek st = Lexer.Lparen then begin
      advance st;
      let rec cols acc =
        let c = expect_ident st in
        if accept st Lexer.Comma then cols (c :: acc)
        else begin
          eat st Lexer.Rparen;
          List.rev (c :: acc)
        end
      in
      Some (cols [])
    end
    else None
  in
  let source =
    if kw st "VALUES" then begin
      let rec tuples acc =
        eat st Lexer.Lparen;
        let rec exprs acc =
          let e = parse_expr st in
          if accept st Lexer.Comma then exprs (e :: acc)
          else begin
            eat st Lexer.Rparen;
            List.rev (e :: acc)
          end
        in
        let tuple = exprs [] in
        if accept st Lexer.Comma then tuples (tuple :: acc)
        else List.rev (tuple :: acc)
      in
      Values (tuples [])
    end
    else Query (parse_select_body st)
  in
  let on_conflict_do_nothing =
    if kw st "ON" then begin
      expect_kw st "CONFLICT";
      expect_kw st "DO";
      expect_kw st "NOTHING";
      true
    end
    else false
  in
  Insert { table; columns; source; on_conflict_do_nothing }

let rec parse_statement_body st =
  match peek st with
  | Lexer.Keyword "SELECT" | Lexer.Keyword "WITH" ->
    Select_stmt (parse_select_body st)
  | Lexer.Keyword "INSERT" -> advance st; parse_insert st
  | Lexer.Keyword "UPDATE" ->
    advance st;
    let table = expect_ident st in
    expect_kw st "SET";
    let rec sets acc =
      let col = expect_ident st in
      eat st (Lexer.Op "=");
      let e = parse_expr st in
      if accept st Lexer.Comma then sets ((col, e) :: acc)
      else List.rev ((col, e) :: acc)
    in
    let sets = sets [] in
    let where = if kw st "WHERE" then Some (parse_expr st) else None in
    Update { table; sets; where }
  | Lexer.Keyword "DELETE" ->
    advance st;
    expect_kw st "FROM";
    let table = expect_ident st in
    let where = if kw st "WHERE" then Some (parse_expr st) else None in
    Delete { table; where }
  | Lexer.Keyword "CREATE" ->
    advance st;
    if kw st "TABLE" then parse_create_table st
    else if kw st "INDEX" then parse_create_index st
    else fail st "expected TABLE or INDEX after CREATE"
  | Lexer.Keyword "DROP" ->
    advance st;
    expect_kw st "TABLE";
    let if_exists =
      if kw st "IF" then begin
        expect_kw st "EXISTS";
        true
      end
      else false
    in
    let name = expect_ident st in
    Drop_table { name; if_exists }
  | Lexer.Keyword "ALTER" ->
    advance st;
    expect_kw st "TABLE";
    let table = expect_ident st in
    expect_kw st "ADD";
    ignore (kw st "COLUMN");
    let def, _pk = parse_column_def st in
    Alter_table_add_column { table; column = def }
  | Lexer.Keyword "TRUNCATE" ->
    advance st;
    ignore (kw st "TABLE");
    let rec names acc =
      let n = expect_ident st in
      if accept st Lexer.Comma then names (n :: acc) else List.rev (n :: acc)
    in
    Truncate (names [])
  | Lexer.Keyword "COPY" ->
    advance st;
    let table = expect_ident st in
    let columns =
      if peek st = Lexer.Lparen then begin
        advance st;
        let rec cols acc =
          let c = expect_ident st in
          if accept st Lexer.Comma then cols (c :: acc)
          else begin
            eat st Lexer.Rparen;
            List.rev (c :: acc)
          end
        in
        Some (cols [])
      end
      else None
    in
    expect_kw st "FROM";
    expect_kw st "STDIN";
    Copy_from { table; columns }
  | Lexer.Keyword "BEGIN" -> advance st; Begin_txn
  | Lexer.Keyword "COMMIT" ->
    advance st;
    if kw st "PREPARED" then Commit_prepared (expect_string st) else Commit_txn
  | Lexer.Keyword ("ROLLBACK" | "ABORT") ->
    advance st;
    if kw st "PREPARED" then Rollback_prepared (expect_string st)
    else Rollback_txn
  | Lexer.Keyword "PREPARE" ->
    advance st;
    if kw st "TRANSACTION" then Prepare_transaction (expect_string st)
    else begin
      (* PREPARE name AS statement *)
      let pname = expect_ident st in
      expect_kw st "AS";
      Prepare_stmt { pname; pstmt = parse_statement_body st }
    end
  | Lexer.Keyword "EXECUTE" ->
    advance st;
    let ename = expect_ident st in
    let eargs =
      if accept st Lexer.Lparen then begin
        if accept st Lexer.Rparen then []
        else begin
          let rec args acc =
            let e = parse_expr st in
            if accept st Lexer.Comma then args (e :: acc)
            else begin
              eat st Lexer.Rparen;
              List.rev (e :: acc)
            end
          in
          args []
        end
      end
      else []
    in
    Execute_stmt { ename; eargs }
  | Lexer.Keyword "DEALLOCATE" ->
    advance st;
    ignore (kw st "PREPARE");
    (match ident_of_token (peek st) with
     | Some "all" -> advance st; Deallocate_stmt None
     | Some n -> advance st; Deallocate_stmt (Some n)
     | None -> fail st "expected a prepared statement name or ALL")
  | Lexer.Keyword "VACUUM" ->
    advance st;
    (match peek st with
     | Lexer.Ident t -> advance st; Vacuum (Some t)
     | _ -> Vacuum None)
  | Lexer.Keyword "CALL" ->
    advance st;
    let proc = expect_ident st in
    eat st Lexer.Lparen;
    if accept st Lexer.Rparen then Call { proc; args = [] }
    else begin
      let rec args acc =
        let e = parse_expr st in
        if accept st Lexer.Comma then args (e :: acc)
        else begin
          eat st Lexer.Rparen;
          List.rev (e :: acc)
        end
      in
      Call { proc; args = args [] }
    end
  | _ -> fail st "expected a statement"

let finish st v =
  ignore (accept st Lexer.Semicolon);
  if peek st <> Lexer.Eof then fail st "trailing input after statement";
  v

let with_state src f =
  let tokens = Array.of_list (Lexer.tokenize src) in
  let st = { tokens; pos = 0 } in
  f st

let parse_statement src =
  try with_state src (fun st -> finish st (parse_statement_body st))
  with Lexer.Lex_error m -> raise (Parse_error m)

let parse_select src =
  try with_state src (fun st -> finish st (parse_select_body st))
  with Lexer.Lex_error m -> raise (Parse_error m)

let parse_expression src =
  try with_state src (fun st -> finish st (parse_expr st))
  with Lexer.Lex_error m -> raise (Parse_error m)
