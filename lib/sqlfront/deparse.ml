open Ast

let binop_text = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"
  | Concat -> "||"

let cmpop_text = function
  | Eq -> "="
  | Ne -> "<>"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let ty_text (ty : Datum.ty) =
  match ty with
  | Datum.TBool -> "boolean"
  | Datum.TInt -> "bigint"
  | Datum.TFloat -> "double precision"
  | Datum.TText -> "text"
  | Datum.TJson -> "jsonb"
  | Datum.TTimestamp -> "timestamp"

(* Everything below parenthesizes children aggressively: the goal is a
   faithful round trip, not minimal output. *)
let rec expr (e : Ast.expr) : string =
  match e with
  | Const d -> Datum.to_sql_literal d
  | Column (None, c) -> c
  | Column (Some q, c) -> q ^ "." ^ c
  | Param i -> Printf.sprintf "$%d" i
  | And (a, b) -> Printf.sprintf "(%s AND %s)" (expr a) (expr b)
  | Or (a, b) -> Printf.sprintf "(%s OR %s)" (expr a) (expr b)
  | Not a -> Printf.sprintf "(NOT %s)" (expr a)
  | Cmp (op, a, b) ->
    Printf.sprintf "(%s %s %s)" (expr a) (cmpop_text op) (expr b)
  | Bin (op, a, b) ->
    Printf.sprintf "(%s %s %s)" (expr a) (binop_text op) (expr b)
  | Neg a -> Printf.sprintf "(- %s)" (expr a)
  | Is_null (a, positive) ->
    Printf.sprintf "(%s IS %sNULL)" (expr a) (if positive then "" else "NOT ")
  | In_list (a, items, negated) ->
    Printf.sprintf "(%s %sIN (%s))" (expr a)
      (if negated then "NOT " else "")
      (String.concat ", " (List.map expr items))
  | Between (a, lo, hi) ->
    Printf.sprintf "(%s BETWEEN %s AND %s)" (expr a) (expr lo) (expr hi)
  | Like { subject; pattern; ci; negated } ->
    Printf.sprintf "(%s %s%s %s)" (expr subject)
      (if negated then "NOT " else "")
      (if ci then "ILIKE" else "LIKE")
      (expr pattern)
  | Json_get (a, b, as_text) ->
    Printf.sprintf "(%s %s %s)" (expr a) (if as_text then "->>" else "->") (expr b)
  | Cast (a, ty) -> Printf.sprintf "(%s)::%s" (expr a) (ty_text ty)
  | Case (branches, else_) ->
    let b =
      List.map
        (fun (c, v) -> Printf.sprintf "WHEN %s THEN %s" (expr c) (expr v))
        branches
    in
    let e =
      match else_ with Some v -> Printf.sprintf " ELSE %s" (expr v) | None -> ""
    in
    Printf.sprintf "(CASE %s%s END)" (String.concat " " b) e
  | Func (name, args) ->
    Printf.sprintf "%s(%s)" name (String.concat ", " (List.map expr args))
  | Agg { agg_name; agg_arg = None; _ } ->
    Printf.sprintf "%s(*)" agg_name
  | Agg { agg_name; agg_arg = Some a; agg_distinct } ->
    Printf.sprintf "%s(%s%s)" agg_name
      (if agg_distinct then "DISTINCT " else "")
      (expr a)
  | Exists (sel, negated) ->
    Printf.sprintf "(%sEXISTS (%s))" (if negated then "NOT " else "") (select sel)
  | In_subquery (a, sel, negated) ->
    Printf.sprintf "(%s %sIN (%s))" (expr a)
      (if negated then "NOT " else "")
      (select sel)
  | Scalar_subquery sel -> Printf.sprintf "(%s)" (select sel)

and projection = function
  | Star -> "*"
  | Star_of t -> t ^ ".*"
  | Proj (e, None) -> expr e
  | Proj (e, Some a) -> Printf.sprintf "%s AS %s" (expr e) a

and from_item = function
  | Table { name; alias = None } -> name
  | Table { name; alias = Some a } -> Printf.sprintf "%s AS %s" name a
  | Subselect (sel, alias) -> Printf.sprintf "(%s) AS %s" (select sel) alias
  | Join { left; right; kind; cond } ->
    let right_text =
      match right with
      | Join _ -> Printf.sprintf "(%s)" (from_item right)
      | Table _ | Subselect _ -> from_item right
    in
    (match cond with
     | None -> Printf.sprintf "%s CROSS JOIN %s" (from_item left) right_text
     | Some c ->
       let kw = match kind with Inner -> "JOIN" | Left_outer -> "LEFT JOIN" in
       Printf.sprintf "%s %s %s ON %s" (from_item left) kw right_text (expr c))

and select (s : Ast.select) : string =
  let buf = Buffer.create 128 in
  Buffer.add_string buf "SELECT ";
  if s.distinct then Buffer.add_string buf "DISTINCT ";
  Buffer.add_string buf
    (String.concat ", " (List.map projection s.projections));
  if s.from <> [] then begin
    Buffer.add_string buf " FROM ";
    Buffer.add_string buf (String.concat ", " (List.map from_item s.from))
  end;
  (match s.where with
   | Some w -> Buffer.add_string buf (" WHERE " ^ expr w)
   | None -> ());
  if s.group_by <> [] then
    Buffer.add_string buf
      (" GROUP BY " ^ String.concat ", " (List.map expr s.group_by));
  (match s.having with
   | Some h -> Buffer.add_string buf (" HAVING " ^ expr h)
   | None -> ());
  if s.order_by <> [] then begin
    let item (e, dir) =
      expr e ^ (match dir with Asc -> " ASC" | Desc -> " DESC")
    in
    Buffer.add_string buf
      (" ORDER BY " ^ String.concat ", " (List.map item s.order_by))
  end;
  (match s.limit with
   | Some l -> Buffer.add_string buf (" LIMIT " ^ expr l)
   | None -> ());
  (match s.offset with
   | Some o -> Buffer.add_string buf (" OFFSET " ^ expr o)
   | None -> ());
  Buffer.contents buf

let column_def (c : column_def) =
  let parts =
    [ c.col_name; ty_text c.col_ty ]
    @ (if c.col_not_null then [ "NOT NULL" ] else [])
    @
    match c.col_default with
    | Some e -> [ "DEFAULT " ^ expr e ]
    | None -> []
  in
  String.concat " " parts

let rec statement (st : Ast.statement) : string =
  match st with
  | Select_stmt s -> select s
  | Insert { table; columns; source; on_conflict_do_nothing } ->
    let cols =
      match columns with
      | Some cs -> Printf.sprintf " (%s)" (String.concat ", " cs)
      | None -> ""
    in
    let src =
      match source with
      | Values tuples ->
        "VALUES "
        ^ String.concat ", "
            (List.map
               (fun t ->
                 Printf.sprintf "(%s)" (String.concat ", " (List.map expr t)))
               tuples)
      | Query s -> select s
    in
    Printf.sprintf "INSERT INTO %s%s %s%s" table cols src
      (if on_conflict_do_nothing then " ON CONFLICT DO NOTHING" else "")
  | Update { table; sets; where } ->
    let sets_text =
      String.concat ", "
        (List.map (fun (c, e) -> Printf.sprintf "%s = %s" c (expr e)) sets)
    in
    let where_text =
      match where with Some w -> " WHERE " ^ expr w | None -> ""
    in
    Printf.sprintf "UPDATE %s SET %s%s" table sets_text where_text
  | Delete { table; where } ->
    let where_text =
      match where with Some w -> " WHERE " ^ expr w | None -> ""
    in
    Printf.sprintf "DELETE FROM %s%s" table where_text
  | Create_table { name; columns; primary_key; if_not_exists; using_columnar }
    ->
    let defs = List.map column_def columns in
    let pk =
      match primary_key with
      | [] -> []
      | cols -> [ Printf.sprintf "PRIMARY KEY (%s)" (String.concat ", " cols) ]
    in
    Printf.sprintf "CREATE TABLE %s%s (%s)%s"
      (if if_not_exists then "IF NOT EXISTS " else "")
      name
      (String.concat ", " (defs @ pk))
      (if using_columnar then " USING COLUMNAR" else "")
  | Create_index { name; table; using; key_columns; key_expr; if_not_exists }
    ->
    let using_text =
      match using with Btree -> " USING BTREE" | Gin_trgm -> " USING GIN"
    in
    let keys =
      match key_expr with
      | Some e -> Printf.sprintf "(%s)" (expr e)
      | None -> String.concat ", " key_columns
    in
    Printf.sprintf "CREATE INDEX %s%s ON %s%s (%s)"
      (if if_not_exists then "IF NOT EXISTS " else "")
      name table using_text keys
  | Drop_table { name; if_exists } ->
    Printf.sprintf "DROP TABLE %s%s" (if if_exists then "IF EXISTS " else "") name
  | Alter_table_add_column { table; column } ->
    Printf.sprintf "ALTER TABLE %s ADD COLUMN %s" table (column_def column)
  | Truncate tables -> "TRUNCATE " ^ String.concat ", " tables
  | Copy_from { table; columns } ->
    let cols =
      match columns with
      | Some cs -> Printf.sprintf " (%s)" (String.concat ", " cs)
      | None -> ""
    in
    Printf.sprintf "COPY %s%s FROM STDIN" table cols
  | Begin_txn -> "BEGIN"
  | Commit_txn -> "COMMIT"
  | Rollback_txn -> "ROLLBACK"
  (* gids print as text literals (quoted, '' escaping): a hostile gid can
     never escape the string and re-parse as SQL *)
  | Prepare_transaction gid ->
    "PREPARE TRANSACTION " ^ Datum.to_sql_literal (Datum.Text gid)
  | Commit_prepared gid ->
    "COMMIT PREPARED " ^ Datum.to_sql_literal (Datum.Text gid)
  | Rollback_prepared gid ->
    "ROLLBACK PREPARED " ^ Datum.to_sql_literal (Datum.Text gid)
  | Vacuum None -> "VACUUM"
  | Vacuum (Some t) -> "VACUUM " ^ t
  | Call { proc; args } ->
    Printf.sprintf "CALL %s(%s)" proc (String.concat ", " (List.map expr args))
  | Prepare_stmt { pname; pstmt } ->
    Printf.sprintf "PREPARE %s AS %s" pname (statement pstmt)
  | Execute_stmt { ename; eargs = [] } -> "EXECUTE " ^ ename
  | Execute_stmt { ename; eargs } ->
    Printf.sprintf "EXECUTE %s(%s)" ename
      (String.concat ", " (List.map expr eargs))
  | Deallocate_stmt None -> "DEALLOCATE ALL"
  | Deallocate_stmt (Some n) -> "DEALLOCATE " ^ n
