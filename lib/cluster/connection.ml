type t = {
  cluster : Topology.t;
  conn_node : Topology.node;
  origin : string option;  (** node name of the connecting side *)
  sess : Engine.Instance.session;
}

exception Node_unavailable of { node : string; reason : string }

exception Timed_out of { node : string; deadline : float }

let unavailable node reason = raise (Node_unavailable { node; reason })

let origin_name t = Option.value ~default:"client" t.origin

let open_ ?origin (cluster : Topology.t) (node : Topology.node) =
  Topology.fault_tick cluster;
  let to_ = node.Topology.node_name in
  let metrics = Topology.metrics cluster in
  (match cluster.Topology.fault with
   | None -> ()
   | Some f ->
     let from_ = Option.value ~default:"client" origin in
     (match Sim.Fault.check_connect f ~from_ ~to_ with
      | Sim.Fault.Deliver -> ()
      | Sim.Fault.Unreachable r
      | Sim.Fault.Drop_request r
      | Sim.Fault.Drop_reply r ->
        Obs.Metrics.inc metrics Obs.Metric_names.net_connect_failed;
        unavailable to_ r));
  Obs.Metrics.inc metrics (Obs.Metric_names.net_connect_to to_);
  cluster.Topology.net.connections_opened <-
    cluster.Topology.net.connections_opened + 1;
  { cluster; conn_node = node; origin; sess = Engine.Instance.connect node.instance }

let node t = t.conn_node

let session t = t.sess

let count_round_trip t =
  t.cluster.Topology.net.round_trips <- t.cluster.Topology.net.round_trips + 1;
  let cross =
    match t.origin with
    | Some o -> not (String.equal o t.conn_node.Topology.node_name)
    | None -> true
  in
  if cross then
    t.cluster.Topology.net.cross_round_trips <-
      t.cluster.Topology.net.cross_round_trips + 1

(* One faulty round trip: consult the plan before running [run], fire
   armed crash-after-statement triggers after. On [Drop_reply] (and on
   armed crashes that lose the reply) the statement {e does} execute —
   only the caller's view of it fails, which is exactly the ambiguity
   2PC recovery has to resolve. *)
let round_trip t ~sql run =
  count_round_trip t;
  Topology.fault_tick t.cluster;
  let node_name = t.conn_node.Topology.node_name in
  let metrics = Topology.metrics t.cluster in
  match t.cluster.Topology.fault with
  | None -> run ()
  | Some f ->
    (match
       Sim.Fault.check_round_trip f ~from_:(origin_name t) ~to_:node_name ~sql
     with
     | Sim.Fault.Deliver -> ()
     | Sim.Fault.Unreachable r | Sim.Fault.Drop_request r ->
       Obs.Metrics.inc metrics Obs.Metric_names.net_round_trip_lost;
       unavailable node_name r
     | Sim.Fault.Drop_reply r ->
       (* the request got through: execute, then lose the reply (even an
          error reply is lost, hence the catch-all) *)
       Obs.Metrics.inc metrics Obs.Metric_names.net_reply_lost;
       (try ignore (run ()) with _ -> ());
       unavailable node_name r);
    if not (Engine.Instance.session_alive t.sess) then
      unavailable node_name "session died in a node crash";
    let result = run () in
    (match Sim.Fault.after_statement f ~node:node_name ~sql with
     | `Proceed -> result
     | `Crashed lose_reply ->
       if lose_reply then
         unavailable node_name "node crashed executing the statement"
       else result)

(* Split submit/await round trip. The whole statement — fault-plan
   consultation, execution, armed crash triggers — happens at the submit
   point ([exec_async]); the handle carries the outcome plus the virtual
   time at which the reply arrives ([h_ready_at], priced by the fault
   plan's latency model). This pins every [Sim.Fault] RNG draw to the
   submission order, so scheduler interleavings of the awaits cannot
   shift the deterministic fault stream — a "slow" node is simply one
   whose replies are ready far in the future. *)
type handle = {
  h_conn : t;
  h_ready_at : float;  (** absolute virtual time the reply lands *)
  h_result : (Engine.Instance.result, exn) result;
  h_reply_ts : Txn.Hlc.timestamp option;
      (** destination HLC stamp on the reply, merged into the origin's
          clock when the reply is awaited *)
}

let exec_async t sql =
  let latency =
    match t.cluster.Topology.fault with
    | None -> 0.0
    | Some f ->
      Sim.Fault.round_trip_latency f ~to_:t.conn_node.Topology.node_name
  in
  let ready_at = Sim.Clock.now t.cluster.Topology.clock +. latency in
  (* HLC piggyback: the request carries the origin's send stamp, the
     destination merges it before executing (so any commit it stamps
     dominates everything the origin has seen), and the reply carries a
     stamp drawn after execution. Drop_request never reaches the
     destination; a dropped reply executes but loses the stamp along
     with the result. *)
  let origin_hlc = Topology.hlc t.cluster (origin_name t) in
  let dest_hlc = Topology.hlc t.cluster t.conn_node.Topology.node_name in
  let req_ts = Txn.Hlc.now origin_hlc in
  let reply_ts = ref None in
  let run () =
    ignore (Txn.Hlc.observe dest_hlc req_ts : Txn.Hlc.timestamp);
    let r = Engine.Instance.exec t.sess sql in
    reply_ts := Some (Txn.Hlc.now dest_hlc);
    r
  in
  match round_trip t ~sql run with
  | r ->
    t.cluster.Topology.net.rows_shipped <-
      t.cluster.Topology.net.rows_shipped + List.length r.Engine.Instance.rows;
    { h_conn = t; h_ready_at = ready_at; h_result = Ok r; h_reply_ts = !reply_ts }
  | exception e ->
    { h_conn = t; h_ready_at = ready_at; h_result = Error e; h_reply_ts = None }

let exec_ast_async t stmt = exec_async t (Sqlfront.Deparse.statement stmt)

(* Let the reply's virtual time pass: as a fiber sleep when a scheduler
   is driving the cluster (other fibers keep running — this is what lets
   a statement on a healthy node overtake one stuck behind a stall), as
   a plain clock advance otherwise. *)
let wait_until cluster ~until_ =
  let now = Sim.Clock.now cluster.Topology.clock in
  if until_ > now then begin
    (match Topology.running_sched cluster with
     | Some sched -> (Sim.Sched.sleep_until sched until_ [@lint.blocking])
     | None -> Sim.Clock.advance cluster.Topology.clock (until_ -. now));
    Topology.fault_tick cluster
  end

let ready_at h = h.h_ready_at

let await ?deadline h =
  let cluster = h.h_conn.cluster in
  (match deadline with
   | Some dl when h.h_ready_at > dl ->
     (* the reply will not land in time: wait out the deadline itself,
        then report the typed timeout — the statement may well have
        executed remotely, exactly the ambiguity a lost reply has *)
     wait_until cluster ~until_:dl;
     Obs.Metrics.inc (Topology.metrics cluster) Obs.Metric_names.net_await_timed_out;
     raise
       (Timed_out { node = h.h_conn.conn_node.Topology.node_name; deadline = dl })
   | _ -> wait_until cluster ~until_:h.h_ready_at);
  (match h.h_reply_ts with
   | Some ts ->
     ignore
       (Txn.Hlc.observe (Topology.hlc cluster (origin_name h.h_conn)) ts
         : Txn.Hlc.timestamp)
   | None -> ());
  match h.h_result with Ok r -> r | Error e -> raise e

(* Submit and walk away: the outcome (and its latency) is deliberately
   dropped. For best-effort cleanup — a ROLLBACK posted at a stalled
   node must not make the cancelling statement wait out the stall. *)
let post t text = ignore (exec_async t text : handle)

(* Dual-mode boundary, like [Exec.on_conn_exn]: [await] picks fiber
   sleep or clock advance depending on whether a scheduler is driving
   the cluster, so [exec]/[exec_ast] serve both fiber code and the
   setup / DDL / maintenance paths that run without one. Statement-path
   code wants [Exec] (deadline + breaker accounting) instead. *)
let exec t text = await (exec_async t text) [@@lint.blocking]

let exec_ast t stmt = exec t (Sqlfront.Deparse.statement stmt)
[@@lint.blocking]

let copy t ~table ~columns lines =
  let sql = Printf.sprintf "COPY %s FROM STDIN" table in
  let n =
    round_trip t ~sql (fun () ->
        Engine.Instance.copy_in t.sess ~table ~columns lines)
  in
  t.cluster.Topology.net.rows_shipped <-
    t.cluster.Topology.net.rows_shipped + List.length lines;
  n

let in_transaction t = Engine.Instance.in_transaction t.sess

let backend_xid t = Engine.Instance.current_xid t.sess

(* Out-of-band session channels for the distributed-snapshot protocol.
   These ride "inside" the next round trip rather than paying one of
   their own — the wire format would carry them as message headers. *)

let set_read_mode t m = Engine.Instance.set_read_mode t.sess m

let read_mode t = Engine.Instance.read_mode t.sess

let set_next_commit_ts t ts =
  Engine.Instance.set_pending_commit_ts t.sess (Some ts)
