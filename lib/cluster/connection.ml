type t = {
  cluster : Topology.t;
  conn_node : Topology.node;
  origin : string option;  (** node name of the connecting side *)
  sess : Engine.Instance.session;
}

exception Node_unavailable of { node : string; reason : string }

let unavailable node reason = raise (Node_unavailable { node; reason })

let origin_name t = Option.value ~default:"client" t.origin

let open_ ?origin (cluster : Topology.t) (node : Topology.node) =
  Topology.fault_tick cluster;
  let to_ = node.Topology.node_name in
  let metrics = Topology.metrics cluster in
  (match cluster.Topology.fault with
   | None -> ()
   | Some f ->
     let from_ = Option.value ~default:"client" origin in
     (match Sim.Fault.check_connect f ~from_ ~to_ with
      | Sim.Fault.Deliver -> ()
      | Sim.Fault.Unreachable r
      | Sim.Fault.Drop_request r
      | Sim.Fault.Drop_reply r ->
        Obs.Metrics.inc metrics "net.connect_failed";
        unavailable to_ r));
  Obs.Metrics.inc metrics ("net.connect_to." ^ to_);
  cluster.Topology.net.connections_opened <-
    cluster.Topology.net.connections_opened + 1;
  { cluster; conn_node = node; origin; sess = Engine.Instance.connect node.instance }

let node t = t.conn_node

let session t = t.sess

let count_round_trip t =
  t.cluster.Topology.net.round_trips <- t.cluster.Topology.net.round_trips + 1;
  let cross =
    match t.origin with
    | Some o -> not (String.equal o t.conn_node.Topology.node_name)
    | None -> true
  in
  if cross then
    t.cluster.Topology.net.cross_round_trips <-
      t.cluster.Topology.net.cross_round_trips + 1

(* One faulty round trip: consult the plan before running [run], fire
   armed crash-after-statement triggers after. On [Drop_reply] (and on
   armed crashes that lose the reply) the statement {e does} execute —
   only the caller's view of it fails, which is exactly the ambiguity
   2PC recovery has to resolve. *)
let round_trip t ~sql run =
  count_round_trip t;
  Topology.fault_tick t.cluster;
  let node_name = t.conn_node.Topology.node_name in
  let metrics = Topology.metrics t.cluster in
  match t.cluster.Topology.fault with
  | None -> run ()
  | Some f ->
    (match
       Sim.Fault.check_round_trip f ~from_:(origin_name t) ~to_:node_name ~sql
     with
     | Sim.Fault.Deliver -> ()
     | Sim.Fault.Unreachable r | Sim.Fault.Drop_request r ->
       Obs.Metrics.inc metrics "net.round_trip_lost";
       unavailable node_name r
     | Sim.Fault.Drop_reply r ->
       (* the request got through: execute, then lose the reply (even an
          error reply is lost, hence the catch-all) *)
       Obs.Metrics.inc metrics "net.reply_lost";
       (try ignore (run ()) with _ -> ());
       unavailable node_name r);
    if not (Engine.Instance.session_alive t.sess) then
      unavailable node_name "session died in a node crash";
    let result = run () in
    (match Sim.Fault.after_statement f ~node:node_name ~sql with
     | `Proceed -> result
     | `Crashed lose_reply ->
       if lose_reply then
         unavailable node_name "node crashed executing the statement"
       else result)

let exec t sql =
  let r = round_trip t ~sql (fun () -> Engine.Instance.exec t.sess sql) in
  t.cluster.Topology.net.rows_shipped <-
    t.cluster.Topology.net.rows_shipped + List.length r.Engine.Instance.rows;
  r

(* Split submit/await round trip. The whole statement — fault-plan
   consultation, execution, armed crash triggers — happens at the submit
   point ([exec_async]); the handle only carries the outcome. This pins
   every [Sim.Fault] RNG draw to the submission order, so scheduler
   interleavings of the awaits cannot shift the deterministic fault
   stream. *)
type handle = { h_result : (Engine.Instance.result, exn) result }

let exec_async t sql =
  match exec t sql with
  | r -> { h_result = Ok r }
  | exception e -> { h_result = Error e }

let exec_ast_async t stmt = exec_async t (Sqlfront.Deparse.statement stmt)

let await h = match h.h_result with Ok r -> r | Error e -> raise e

let exec_ast t stmt = exec t (Sqlfront.Deparse.statement stmt)

let copy t ~table ~columns lines =
  let sql = Printf.sprintf "COPY %s FROM STDIN" table in
  let n =
    round_trip t ~sql (fun () ->
        Engine.Instance.copy_in t.sess ~table ~columns lines)
  in
  t.cluster.Topology.net.rows_shipped <-
    t.cluster.Topology.net.rows_shipped + List.length lines;
  n

let in_transaction t = Engine.Instance.in_transaction t.sess

let backend_xid t = Engine.Instance.current_xid t.sess
