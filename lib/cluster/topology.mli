(** Simulated cluster: named MiniPG nodes plus a network model.

    Every node runs a full {!Engine.Instance.t}. The "network" is
    in-process: a {!Connection.t} wraps a session on a remote node and
    counts round trips and connection establishments, which the benchmark
    harness prices via {!Sim.Cost}. A shared virtual {!Sim.Clock.t} drives
    time-based behavior (slow-start, deadlock polling). *)

(** Whether a node may plan distributed queries and open 2PC. The
    bootstrap node starts as [Coordinator]; workers start as [Worker]
    and are promoted by metadata sync (Citus MX: any synced node can
    coordinate). *)
type role = Coordinator | Worker

type node = {
  node_name : string;
  instance : Engine.Instance.t;
  spec : Sim.Cost.node_spec;
  mutable role : role;
}

type net_stats = {
  mutable round_trips : int;
  mutable cross_round_trips : int;
      (** round trips whose endpoints are different nodes: these pay the
          network latency; a coordinator talking to its own shards does
          not *)
  mutable connections_opened : int;
  mutable rows_shipped : int;  (** rows moved between nodes *)
}

type t = {
  coordinator : node;
  workers : node list;  (** empty = single-node cluster (Citus 0+1) *)
  clock : Sim.Clock.t;
  rtt : float;
  net : net_stats;
  fault : Sim.Fault.t option;
      (** fault-injection plan; [None] = perfect network, nothing fails *)
  mutable sched_seed : int option;
      (** seed for {!Sim.Sched} ready-queue tiebreaks: [None] (default)
          is strict round-robin; chaos tests set a seed to fuzz fiber
          interleavings deterministically *)
  mutable running_sched : Sim.Sched.t option;
      (** the scheduler currently driving this cluster (set by
          [Citus.State.with_sched] for its dynamic extent); lets
          {!Connection.await} pass injected latency as a fiber sleep *)
  retry_rng : Random.State.t;
      (** topology-owned jitter stream for retry backoff, seeded from
          [fault_seed]; see {!retry_jitter} *)
  obs : Obs.t;
      (** cluster-wide observability: one metrics registry (always on,
          with every node's meter folded in) and one trace sink
          (disabled until someone turns it on) *)
  hlcs : (string, Txn.Hlc.t) Hashtbl.t;
      (** per-node hybrid logical clocks (plus ["client"]); access via
          {!hlc} *)
}

(** [create ~workers:n ()] builds a coordinator plus [n] workers.
    [buffer_pages] applies per node. [fault_seed] attaches a
    {!Sim.Fault.t} (sharing this cluster's clock, all nodes registered)
    so connections consult it on every round trip. [sched_seed] seeds
    the cooperative scheduler's ready-queue tiebreaks. *)
val create :
  ?buffer_pages:int ->
  ?spec:Sim.Cost.node_spec ->
  ?rtt:float ->
  ?fault_seed:int ->
  ?sched_seed:int ->
  workers:int ->
  unit ->
  t

val fault : t -> Sim.Fault.t option

(** [hlc t name] is the hybrid logical clock of node [name] (or
    ["client"]), created on first use. Its physical component reads the
    shared virtual clock through the node's injected skew
    ({!Sim.Fault.skewed_now}); {!Connection} piggybacks these stamps on
    every round trip, and each node's {!Txn.Manager} stamps commits
    with its own. The clock state deliberately survives node crashes. *)
val hlc : t -> string -> Txn.Hlc.t

val obs : t -> Obs.t

val metrics : t -> Obs.Metrics.t

val trace : t -> Obs.Trace.t

(** Timestamp thunk reading the shared virtual clock — what every
    {!Obs.Trace.with_span} in this cluster passes as [~now]. *)
val now : t -> unit -> float

(** Fire scheduled fault events that are due at the current virtual
    time. Called by {!Connection} before each connect / round trip. *)
val fault_tick : t -> unit

(** [with_running_sched t sched f] marks [sched] as the cluster's
    ambient scheduler for the extent of [f] (restoring the previous one
    after — nesting is fine). While set, {!Connection.await} sleeps the
    calling fiber through injected latency instead of advancing the
    global clock. *)
val with_running_sched : t -> Sim.Sched.t -> (unit -> 'a) -> 'a

val running_sched : t -> Sim.Sched.t option

(** One jitter draw in [0, 1) from the topology's own seeded stream —
    for spreading retry backoffs so storms against a recovering node
    don't synchronize. Deterministic per [fault_seed]. *)
val retry_jitter : t -> float

(** Node liveness / directed-route health per the fault plan (always
    [true] without one). [route_up] requires the destination alive and
    both link directions intact. *)
val node_up : t -> string -> bool

val route_up : t -> from_:string -> to_:string -> bool

(** Nodes that store shards: the workers, or the coordinator alone when
    there are none (the paper's "coordinator also acts as worker"). *)
val data_nodes : t -> node list

val all_nodes : t -> node list

val find_node : t -> string -> node

val set_role : node -> role -> unit

(** Nodes whose current role is [Coordinator], in topology order
    (bootstrap coordinator first). *)
val coordinators : t -> node list

(** Copy of the network counters (for before/after diffs). *)
val net_snapshot : t -> net_stats

val net_diff : after:net_stats -> before:net_stats -> net_stats
