(** A coordinator-held connection to one node.

    Statements travel as SQL text (the Citus planners deparse rewritten
    ASTs and the remote node re-parses), and every call counts one network
    round trip. Opening a connection has a cost too — the adaptive
    executor's slow-start exists precisely to manage it (§3.6.1). *)

type t

(** Raised instead of a generic failure when the fault plan says the
    target cannot be talked to: the node is down, the route is
    partitioned, a round trip was dropped, or the session died in a
    crash. Distinguishable so {!Health} records an infrastructure
    failure rather than misclassifying it as a statement error. On a
    dropped {e reply} the statement did execute remotely. *)
exception Node_unavailable of { node : string; reason : string }

(** Raised by {!await} when the handle's reply cannot land before the
    caller's deadline (absolute virtual time). The statement may have
    executed remotely — a timeout has exactly the ambiguity of a lost
    reply, and callers must treat it that way. *)
exception Timed_out of { node : string; deadline : float }

(** [open_ cluster node] establishes a connection (counted). A connection
    from the coordinator to itself still counts round trips, but they are
    not {e cross}-node round trips when [origin] names the same node — only
    cross traffic pays network latency in the simulation. With a fault
    plan attached, raises {!Node_unavailable} when the node is down or
    the connect path is cut. *)
val open_ : ?origin:string -> Topology.t -> Topology.node -> t

val node : t -> Topology.node

val session : t -> Engine.Instance.session

(** The pending outcome of a submitted statement. *)
type handle

(** [exec_async t sql] submits SQL text remotely: one round trip, result
    rows shipped back (counted in [rows_shipped]). The {e entire} round
    trip — fault-plan draws, remote execution, armed crash triggers —
    happens at the submit point; the handle carries the outcome plus the
    virtual time the reply lands (per the fault plan's latency model and
    any active stall — 0 extra without one). Fault streams therefore
    depend only on submission order, never on how concurrent awaits
    interleave.

    Call sites above the Citus layer should prefer [Citus.Exec], which
    adds partition/injection checks and circuit-breaker accounting and
    returns typed results. *)
val exec_async : t -> string -> handle

(** Deparse and submit a statement AST. *)
val exec_ast_async : t -> Sqlfront.Ast.statement -> handle

(** Absolute virtual time at which the handle's reply arrives. *)
val ready_at : handle -> float

(** Collect the outcome: let the reply's virtual time pass (a fiber
    sleep under [Citus.State.with_sched], a clock advance otherwise),
    then return the result — re-raising whatever the round trip raised
    ({!Engine.Executor.Would_block}, parse errors, {!Node_unavailable}
    when the fault plan killed it, ...). With [?deadline] (absolute
    virtual time), waits only until the deadline and raises {!Timed_out}
    when the reply would land later. *)
val await : ?deadline:float -> handle -> Engine.Instance.result

(** Submit and discard the outcome — best-effort cleanup (a ROLLBACK
    posted to a stalled node) that must not wait out the reply. The
    statement still executes remotely and pays its fault-plan draws. *)
val post : t -> string -> unit

(** Deparse and execute a statement AST ([await] of {!exec_ast_async}). *)
val exec_ast : t -> Sqlfront.Ast.statement -> Engine.Instance.result

(** COPY a batch of data lines; one round trip per call. *)
val copy : t -> table:string -> columns:string list option -> string list -> int

(** True if the connection's session holds an open transaction block. *)
val in_transaction : t -> bool

(** Worker-side xid of the connection's open transaction, if any. *)
val backend_xid : t -> int option

(** {2 Distributed-snapshot channels}

    Every round trip already piggybacks HLC stamps: the request carries
    the origin's send stamp (merged into the destination clock before
    the statement runs), and an awaited reply merges the destination's
    post-execution stamp back into the origin. The calls below set the
    remaining out-of-band session state — in a wire protocol they would
    be message headers, so none of them costs a round trip. *)

(** Set how reads on this connection's session resolve distributed
    visibility (see {!Txn.Snapshot.read_mode}). Callers set it just
    before dispatching a read and reset it after. *)
val set_read_mode : t -> Txn.Snapshot.read_mode -> unit

val read_mode : t -> Txn.Snapshot.read_mode

(** Arm the coordinator-assigned commit timestamp for the next
    [COMMIT PREPARED] executed on this connection — the visibility
    fence that makes a distributed transaction appear at one HLC time
    on every participant. *)
val set_next_commit_ts : t -> Txn.Hlc.timestamp -> unit
