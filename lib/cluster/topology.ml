type role = Coordinator | Worker

type node = {
  node_name : string;
  instance : Engine.Instance.t;
  spec : Sim.Cost.node_spec;
  mutable role : role;
}

type net_stats = {
  mutable round_trips : int;
  mutable cross_round_trips : int;  (** round trips that leave the node *)
  mutable connections_opened : int;
  mutable rows_shipped : int;
}

type t = {
  coordinator : node;
  workers : node list;
  clock : Sim.Clock.t;
  rtt : float;
  net : net_stats;
  fault : Sim.Fault.t option;
  mutable sched_seed : int option;
      (** seeds {!Sim.Sched} ready-queue tiebreaks (chaos fuzzing);
          [None] = strict round-robin *)
  mutable running_sched : Sim.Sched.t option;
      (** the cooperative scheduler currently driving this cluster, set
          for the dynamic extent of [Citus.State.with_sched]: lets
          {!Connection} pass injected latency as fiber sleeps instead of
          global clock advances *)
  retry_rng : Random.State.t;
      (** topology-owned stream for retry-backoff jitter; deterministic
          per [fault_seed] and untouched by the fault plan's own draws *)
  obs : Obs.t;  (** cluster-wide metrics registry + trace sink *)
  hlcs : (string, Txn.Hlc.t) Hashtbl.t;
      (** one hybrid logical clock per node (plus ["client"]), physical
          component = virtual clock + the node's injected skew;
          {!Connection} piggybacks these on every round trip *)
}

(* Each node's HLC reads the shared virtual clock through its own skew
   lens; a skewed node believes a different "now" and the logical
   component has to absorb the difference. Created on first use — the
   clocks are independent, so creation order is immaterial. *)
let hlc t name =
  match Hashtbl.find_opt t.hlcs name with
  | Some h -> h
  | None ->
    let physical () =
      match t.fault with
      | Some f -> Sim.Fault.skewed_now f name
      | None -> Sim.Clock.now t.clock
    in
    let h = Txn.Hlc.create ~physical () in
    Hashtbl.add t.hlcs name h;
    h

let create ?(buffer_pages = 100_000) ?(spec = Sim.Cost.default_spec)
    ?(rtt = Sim.Cost.default_rtt) ?fault_seed ?sched_seed ~workers () =
  let obs = Obs.create () in
  let make name seed role =
    {
      node_name = name;
      instance = Engine.Instance.create ~seed ~buffer_pages ~obs ~name ();
      spec;
      role;
    }
  in
  let coordinator = make "coordinator" 1 Coordinator in
  let workers =
    List.init workers (fun i ->
        make (Printf.sprintf "worker%d" (i + 1)) (i + 2) Worker)
  in
  let clock = Sim.Clock.create () in
  let fault =
    match fault_seed with
    | None -> None
    | Some seed ->
      let f = Sim.Fault.create ~seed ~clock () in
      List.iter
        (fun n -> Sim.Fault.register_node f ~name:n.node_name n.instance)
        (coordinator :: workers);
      Some f
  in
  let net =
    {
      round_trips = 0;
      cross_round_trips = 0;
      connections_opened = 0;
      rows_shipped = 0;
    }
  in
  (* Network stats fold into snapshots next to the per-node meters. *)
  Obs.Metrics.register_probe obs.Obs.metrics Obs.Metric_names.net_probe_prefix (fun () ->
      [
        ("round_trips", net.round_trips);
        ("cross_round_trips", net.cross_round_trips);
        ("connections_opened", net.connections_opened);
        ("rows_shipped", net.rows_shipped);
      ]);
  let t =
    {
      coordinator;
      workers;
      clock;
      rtt;
      net;
      fault;
      sched_seed;
      running_sched = None;
      retry_rng =
        Random.State.make [| 0x7177; Option.value ~default:0 fault_seed |];
      obs;
      hlcs = Hashtbl.create 8;
    }
  in
  (* Install each node's HLC into its transaction manager so every
     commit is stamped with cluster time. The clock object lives here,
     outside the node, so its state survives a node crash — modeling a
     recovering node that waits out clock uncertainty before issuing
     timestamps. *)
  List.iter
    (fun n -> Engine.Instance.set_hlc n.instance (hlc t n.node_name))
    (coordinator :: workers);
  t

let obs t = t.obs

let metrics t = t.obs.Obs.metrics

let trace t = t.obs.Obs.trace

(* [now t] is the thunk every span in this cluster uses as its
   timestamp source: the shared virtual clock. *)
let now t () = Sim.Clock.now t.clock

let fault t = t.fault

(* Fire any scheduled faults whose virtual time has come. *)
let fault_tick t =
  match t.fault with None -> () | Some f -> Sim.Fault.tick f

(* Scope the ambient scheduler: set for the extent of [f], restore the
   previous one after (with_sched nests). *)
let with_running_sched t sched f =
  let prev = t.running_sched in
  t.running_sched <- Some sched;
  Fun.protect ~finally:(fun () -> t.running_sched <- prev) f

let running_sched t = t.running_sched

(* One bounded jitter draw in [0, 1): callers scale a backoff by e.g.
   [1.0 +. 0.5 *. retry_jitter t] so synchronized retry storms against a
   recovering node spread out, deterministically per seed. *)
let retry_jitter t = Random.State.float t.retry_rng 1.0

let node_up t name =
  match t.fault with None -> true | Some f -> Sim.Fault.node_up f name

(* Both the request and the reply path must be intact, and the
   destination must be alive. [from_] is a node name or ["client"]. *)
let route_up t ~from_ ~to_ =
  match t.fault with
  | None -> true
  | Some f ->
    Sim.Fault.node_up f to_
    && Sim.Fault.link_up f ~from_ ~to_
    && Sim.Fault.link_up f ~from_:to_ ~to_:from_

let data_nodes t = match t.workers with [] -> [ t.coordinator ] | ws -> ws

let all_nodes t = t.coordinator :: t.workers

let set_role n role = n.role <- role

(* Nodes allowed to plan queries and open 2PC. The bootstrap
   coordinator always qualifies; workers join once metadata sync
   promotes them (Citus MX). *)
let coordinators t =
  List.filter (fun n -> n.role = Coordinator) (all_nodes t)

let find_node t name =
  match List.find_opt (fun n -> String.equal n.node_name name) (all_nodes t) with
  | Some n -> n
  | None -> invalid_arg (Printf.sprintf "no node named %s" name)

let net_snapshot t =
  {
    round_trips = t.net.round_trips;
    cross_round_trips = t.net.cross_round_trips;
    connections_opened = t.net.connections_opened;
    rows_shipped = t.net.rows_shipped;
  }

let net_diff ~after ~before =
  {
    round_trips = after.round_trips - before.round_trips;
    cross_round_trips = after.cross_round_trips - before.cross_round_trips;
    connections_opened = after.connections_opened - before.connections_opened;
    rows_shipped = after.rows_shipped - before.rows_shipped;
  }
