type xid = int

type tuple = {
  mutable xmin : xid;
  mutable xmax : xid;  (** 0 = never deleted *)
  mutable data : Datum.t array option;  (** None once vacuumed *)
}

type t = {
  heap_name : string;
  rpp : int;
  mutable slots : tuple array;
  mutable used : int;  (** slots.(0 .. used-1) have been allocated *)
  mutable freelist : int list;  (** reclaimed slots available for reuse *)
  mutable dead : int;
}

let create ~name ?(rows_per_page = 64) () =
  {
    heap_name = name;
    rpp = rows_per_page;
    slots = Array.init 16 (fun _ -> { xmin = 0; xmax = 0; data = None });
    used = 0;
    freelist = [];
    dead = 0;
  }

let name t = t.heap_name

let rows_per_page t = t.rpp

let grow t =
  let cap = Array.length t.slots in
  if t.used >= cap then begin
    let bigger =
      Array.init (cap * 2) (fun i ->
          if i < cap then t.slots.(i)
          else { xmin = 0; xmax = 0; data = None })
    in
    t.slots <- bigger
  end

let insert t ~xid row =
  match t.freelist with
  | tid :: rest ->
    t.freelist <- rest;
    let s = t.slots.(tid) in
    s.xmin <- xid;
    s.xmax <- 0;
    s.data <- Some row;
    tid
  | [] ->
    grow t;
    let tid = t.used in
    t.used <- tid + 1;
    t.slots.(tid) <- { xmin = xid; xmax = 0; data = Some row };
    tid

(* Place a tuple version at an exact slot (WAL replay: the log records
   the tid each version originally occupied, and index entries reference
   tids, so replay must reproduce the layout exactly). *)
let insert_at t ~tid ~xid row =
  if tid < 0 then invalid_arg "Heap.insert_at: negative tid";
  while tid >= Array.length t.slots do
    let cap = Array.length t.slots in
    let bigger =
      Array.init (cap * 2) (fun i ->
          if i < cap then t.slots.(i)
          else { xmin = 0; xmax = 0; data = None })
    in
    t.slots <- bigger
  done;
  if tid >= t.used then t.used <- tid + 1;
  t.freelist <- List.filter (fun f -> f <> tid) t.freelist;
  let s = t.slots.(tid) in
  s.xmin <- xid;
  s.xmax <- 0;
  s.data <- Some row

let delete t ~xid ~tid =
  if tid < 0 || tid >= t.used then false
  else
    let s = t.slots.(tid) in
    match s.data with
    | None -> false
    | Some _ ->
      s.xmax <- xid;
      true

let header t ~tid =
  if tid < 0 || tid >= t.used then None
  else
    let s = t.slots.(tid) in
    match s.data with None -> None | Some _ -> Some (s.xmin, s.xmax)

let version_visible ~status ~snapshot ~my_xid ~xmin ~xmax =
  let mine x = match my_xid with Some m -> x = m | None -> false in
  let insert_visible =
    if mine xmin then true
    else
      status xmin = Txn.Manager.Committed && Txn.Snapshot.sees snapshot xmin
  in
  if not insert_visible then false
  else if xmax = 0 then true
  else if mine xmax then false
  else
    not
      (status xmax = Txn.Manager.Committed && Txn.Snapshot.sees snapshot xmax)

let touch_page pool t tid =
  match pool with
  | None -> ()
  | Some pool ->
    ignore
      (Buffer_pool.access pool
         { Buffer_pool.relation = t.heap_name; page_no = tid / t.rpp })

let fetch ?pool t ~tid ~status ~snapshot ~my_xid =
  if tid < 0 || tid >= t.used then None
  else begin
    touch_page pool t tid;
    let s = t.slots.(tid) in
    match s.data with
    | None -> None
    | Some row ->
      if version_visible ~status ~snapshot ~my_xid ~xmin:s.xmin ~xmax:s.xmax
      then Some row
      else None
  end

let scan ?pool t ~status ~snapshot ~my_xid ~f =
  let last_page = ref (-1) in
  for tid = 0 to t.used - 1 do
    let page = tid / t.rpp in
    if page <> !last_page then begin
      last_page := page;
      touch_page pool t tid
    end;
    let s = t.slots.(tid) in
    match s.data with
    | None -> ()
    | Some row ->
      if version_visible ~status ~snapshot ~my_xid ~xmin:s.xmin ~xmax:s.xmax
      then f tid row
  done

(* Visit every stored version regardless of visibility (index rebuild
   after crash recovery). *)
let scan_physical t ~f =
  for tid = 0 to t.used - 1 do
    let s = t.slots.(tid) in
    match s.data with
    | None -> ()
    | Some row -> f tid (s.xmin, s.xmax) row
  done

let vacuum ?on_reclaim t ~oldest ~status =
  let reclaimed = ref 0 in
  for tid = 0 to t.used - 1 do
    let s = t.slots.(tid) in
    match s.data with
    | None -> ()
    | Some row ->
      let insert_aborted = status s.xmin = Txn.Manager.Aborted in
      let delete_final =
        s.xmax <> 0
        && status s.xmax = Txn.Manager.Committed
        && s.xmax < oldest
      in
      if insert_aborted || delete_final then begin
        (match on_reclaim with Some f -> f tid row | None -> ());
        s.data <- None;
        s.xmin <- 0;
        s.xmax <- 0;
        t.freelist <- tid :: t.freelist;
        incr reclaimed
      end
  done;
  t.dead <- max 0 (t.dead - !reclaimed);
  !reclaimed

let live_estimate t = t.used - List.length t.freelist

let dead_estimate t =
  (* Count versions with a deleter set; cheap approximation used by the
     autovacuum trigger. *)
  let n = ref 0 in
  for tid = 0 to t.used - 1 do
    let s = t.slots.(tid) in
    if s.data <> None && s.xmax <> 0 then incr n
  done;
  !n

let page_count t = (t.used + t.rpp - 1) / t.rpp

let clear t =
  t.slots <- Array.init 16 (fun _ -> { xmin = 0; xmax = 0; data = None });
  t.used <- 0;
  t.freelist <- [];
  t.dead <- 0

(* Rewrite every stored row (schema changes); headers are preserved. *)
let transform t f =
  for tid = 0 to t.used - 1 do
    let s = t.slots.(tid) in
    match s.data with None -> () | Some row -> s.data <- Some (f row)
  done
