(** MVCC heap storage, PostgreSQL-style.

    Tuples carry [xmin]/[xmax] transaction ids; visibility is decided
    against a snapshot plus the commit log, so aborted work disappears
    without physical undo. Updates insert a new version and mark the old
    one deleted; VACUUM reclaims versions no active snapshot can see and
    puts their slots on a freelist (this matters for the high-performance
    CRUD workload, §2.3: auto-vacuum keeping up is part of the model).

    Tuples are grouped into fixed-size logical pages; scans and fetches
    report page touches to an optional {!Buffer_pool.t} for I/O
    accounting. *)

type xid = int

type t

(** [create ~name ~rows_per_page ()] creates an empty heap. *)
val create : name:string -> ?rows_per_page:int -> unit -> t

val name : t -> string

(** Insert a new tuple version owned by [xid]; returns its tuple id. *)
val insert : t -> xid:xid -> Datum.t array -> int

(** Mark tuple [tid] deleted by [xid]. Any previous aborted deleter is
    overwritten. Returns [false] if the slot is empty/reclaimed. *)
val delete : t -> xid:xid -> tid:int -> bool

(** [insert_at t ~tid ~xid row] places a version at exactly slot [tid],
    growing the heap as needed (WAL replay must reproduce tids because
    index entries and later WAL records reference them). *)
val insert_at : t -> tid:int -> xid:xid -> Datum.t array -> unit

(** Visit every physically stored version, visible or not, as
    [f tid (xmin, xmax) row] (index rebuild during crash recovery). *)
val scan_physical : t -> f:(int -> xid * xid -> Datum.t array -> unit) -> unit

(** Raw tuple header access (for write-conflict checks and the vacuum /
    rebalancer machinery). *)
val header : t -> tid:int -> (xid * xid) option
(** (xmin, xmax); xmax = 0 means never deleted. *)

(** [fetch t ~tid ...] returns the tuple data if the version is visible.
    Touches the containing page in [pool] if given. *)
val fetch :
  ?pool:Buffer_pool.t ->
  t ->
  tid:int ->
  status:(xid -> Txn.Manager.status) ->
  snapshot:Txn.Snapshot.t ->
  my_xid:xid option ->
  Datum.t array option

(** Visibility of an arbitrary (xmin, xmax) pair under a snapshot; exposed
    for index-only paths and tests. *)
val version_visible :
  status:(xid -> Txn.Manager.status) ->
  snapshot:Txn.Snapshot.t ->
  my_xid:xid option ->
  xmin:xid ->
  xmax:xid ->
  bool

(** Sequential scan over visible tuples in tid order. Each page is touched
    once in [pool]. *)
val scan :
  ?pool:Buffer_pool.t ->
  t ->
  status:(xid -> Txn.Manager.status) ->
  snapshot:Txn.Snapshot.t ->
  my_xid:xid option ->
  f:(int -> Datum.t array -> unit) ->
  unit

(** Reclaim dead versions: those whose xmin aborted, or whose xmax
    committed before [oldest] (no snapshot can still see them). Returns the
    number of reclaimed slots. [on_reclaim] is called with each reclaimed
    (tid, row) before the slot is wiped, so callers can drop index
    entries. *)
val vacuum :
  ?on_reclaim:(int -> Datum.t array -> unit) ->
  t ->
  oldest:xid ->
  status:(xid -> Txn.Manager.status) ->
  int

val live_estimate : t -> int
(** Slots currently holding a version (live or not-yet-vacuumed dead). *)

val dead_estimate : t -> int

val page_count : t -> int

val rows_per_page : t -> int

(** Remove all rows (TRUNCATE). *)
val clear : t -> unit

(** Rewrite every stored row in place (ALTER TABLE ADD COLUMN). *)
val transform : t -> (Datum.t array -> Datum.t array) -> unit
