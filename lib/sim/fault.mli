(** Deterministic fault-injection plan for a simulated cluster.

    One [Fault.t] is shared by a whole cluster (see
    [Cluster.Topology.create ~fault_seed]). Every connection
    establishment and round trip consults it; all randomness comes from
    one seeded [Random.State.t] and all timing from the cluster's
    virtual {!Clock.t}, so a chaos run is a pure function of its seed:
    re-running with the same seed reproduces the same crashes,
    partitions and drops in the same order ({!trace} lets tests assert
    that bit-for-bit).

    Fault taxonomy:
    - {b node crash}: the node's epoch is bumped — every open session
      dies and in-memory state is lost; a restart replays the WAL
      ({!Engine.Instance.crash} / {!Engine.Instance.recover_from_wal}).
    - {b asymmetric partition}: a directed (from, to) link is cut;
      traffic the other way may still flow. ["*"] is a wildcard end,
      and a client with no node name connects as ["client"].
    - {b per-round-trip drop}: each request/reply is lost with a
      configured probability (a lost reply means the statement {e did}
      execute — the caller just never learns).
    - {b crash-after-statement}: a one-shot trigger that crashes a node
      right after it executes a matching statement — this is how a
      worker dies between [PREPARE TRANSACTION] and [COMMIT PREPARED].

    With no faults configured every check returns [Deliver] and draws
    from the RNG anyway, keeping the random stream identical whether or
    not a given round trip was at risk. *)

type t

(** What happens to one network interaction. *)
type verdict =
  | Deliver
  | Unreachable of string  (** node down or connect-path cut; nothing ran *)
  | Drop_request of string  (** request lost in flight; nothing ran *)
  | Drop_reply of string
      (** reply lost: the statement executed remotely, but the caller
          must treat the round trip as failed *)

val create : ?seed:int -> clock:Clock.t -> unit -> t

val seed : t -> int

(** {2 Node registry} *)

(** Nodes must be registered so crash/restart can reach their engine. *)
val register_node : t -> name:string -> Engine.Instance.t -> unit

val node_up : t -> string -> bool

(** Observers, called with the node name after the fact (the cluster
    layer uses these to purge pooled connections on a crash). *)
val on_crash : t -> (string -> unit) -> unit

val on_restart : t -> (string -> unit) -> unit

(** {2 Immediate faults} *)

val crash_now : t -> string -> unit

(** Replays the WAL and marks the node up again; no-op if not down. *)
val restart_now : t -> string -> unit

(** Cut / restore one directed link. Ends are node names, ["client"]
    (a connection with no origin node) or ["*"] (wildcard). *)
val partition_link : t -> from_:string -> to_:string -> unit

val heal_link : t -> from_:string -> to_:string -> unit

val link_up : t -> from_:string -> to_:string -> bool

val heal_all_links : t -> unit

(** Set loss probabilities for requests and replies, either for one
    [?node] (as destination) or as the cluster-wide default. *)
val set_drop_rate : ?node:string -> t -> request:float -> reply:float -> unit

(** Arm a one-shot crash: the next statement on [node] whose SQL
    contains [matching] (case-sensitive substring) executes, then the
    node crashes. With [lose_reply] (default [false]) the caller also
    never sees the statement's success. *)
val arm_crash_after :
  t -> node:string -> matching:string -> ?lose_reply:bool -> unit -> unit

(** {2 Gray failures: latency, stalls, suspension hazard}

    Unlike crashes and drops, gray faults never make anything {e fail} —
    they only make it {e slow}. Each round trip to a destination pays a
    seeded latency draw (uniform in [mean ± jitter], clamped at 0) plus,
    while the destination is stalled, a per-round-trip surcharge. All
    draws come from dedicated RNG streams, so enabling latency injection
    never shifts the crash/drop verdict stream of the same seed. *)

(** Set the round-trip latency distribution, per destination [?node] or
    as the cluster-wide default. Defaults to (0, 0): no injected time. *)
val set_latency : ?node:string -> t -> mean:float -> jitter:float -> unit

(** Brownout: every round trip to [node] pays [extra] additional seconds
    until [duration] from now has elapsed. The node stays up — statements
    still execute — it is merely slow; deadlines and hedging are the only
    defenses. *)
val stall_node : t -> node:string -> extra:float -> duration:float -> unit

(** Extra seconds per round trip currently charged against [node]
    (0.0 when not stalled). *)
val stalled_extra : t -> string -> float

val node_stalled : t -> string -> bool

(** {2 Clock skew}

    Skew never fails or delays anything by itself: it only bends what a
    node {e believes} the time is. The HLC layer (see
    [Cluster.Topology]) reads {!skewed_now} as its physical component,
    so skew stresses exactly the hybrid-logical-clock machinery — a
    skewed node issues timestamps from the future or the past, and the
    logical component must absorb it. *)

(** [set_clock_skew t ~node ~offset ~drift] makes [node]'s physical
    clock read [true_now + offset + drift * elapsed_since_set]. *)
val set_clock_skew : t -> node:string -> offset:float -> drift:float -> unit

val clear_clock_skew : t -> node:string -> unit

(** Current skew in seconds charged against [node] (0.0 when none). *)
val node_skew : t -> string -> float

(** [node]'s view of the current time: virtual clock plus skew. *)
val skewed_now : t -> string -> float

(** With probability [p], a fiber suspension point on any node takes an
    extra [stall] virtual seconds — scheduler-level jitter that shifts
    interleavings without failing anything. Draws are burnt at every
    suspension point regardless of [p]. *)
val set_suspension_hazard : t -> p:float -> stall:float -> unit

(** One suspension-point draw for [node]; returns the micro-stall to
    apply (usually 0.0). Wired into [Sim.Sched]'s [on_suspend] by
    [Citus.State.with_sched]. *)
val at_suspension : t -> node:string -> float

(** One latency draw for a round trip to [to_]: distribution sample plus
    any active stall surcharge. Always burns exactly one draw. *)
val round_trip_latency : t -> to_:string -> float

(** {2 Scheduled faults (virtual time)} *)

(** [schedule_crash t ~at node] crashes [node] when the clock reaches
    [at]; with [down_for] a restart is scheduled [down_for] later. *)
val schedule_crash : t -> at:float -> ?down_for:float -> string -> unit

val schedule_partition :
  ?heal_after:float -> t -> at:float -> from_:string -> to_:string -> unit

(** [schedule_stall t ~at ~extra ~duration node] brownouts [node] from
    [at] until [at +. duration]. *)
val schedule_stall :
  t -> at:float -> extra:float -> duration:float -> string -> unit

(** [schedule_skew t ~at ~offset ~drift node] starts skewing [node]'s
    clock when the virtual clock reaches [at]. *)
val schedule_skew :
  t -> at:float -> offset:float -> drift:float -> string -> unit

(** Fire every scheduled event whose time has come (called by the
    cluster layer before each connect / round trip). *)
val tick : t -> unit

(** {2 Consultation points (called by [Cluster.Connection])} *)

val check_connect : t -> from_:string -> to_:string -> verdict

(** Consult before executing one statement on [to_]. Always draws the
    same number of random values regardless of configuration. *)
val check_round_trip : t -> from_:string -> to_:string -> sql:string -> verdict

(** Consult after a statement ran on [node]: fires an armed
    crash-after-statement trigger. [`Crashed lose_reply] means the node
    just crashed; with [lose_reply = true] the caller must discard the
    result and report failure. *)
val after_statement :
  t -> node:string -> sql:string -> [ `Proceed | `Crashed of bool ]

(** {2 Quiescence} *)

(** End the storm so invariants can be checked: cancel scheduled events,
    heal all links, zero all drop rates and latency distributions, clear
    stalls, clock skews and the suspension hazard, disarm triggers, and
    restart every down node (replaying WALs). *)
val quiesce : t -> unit

(** Every fault event so far, oldest first, timestamped with virtual
    time — equal traces mean equal fault schedules. *)
val trace : t -> string list
