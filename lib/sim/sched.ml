(* Deterministic cooperative scheduler over the virtual clock.

   Fibers are one-shot effect-handler continuations. Everything is
   single-threaded: a fiber runs until it performs a scheduling effect
   (spawn/await/sleep/yield/wait), at which point control returns to the
   run loop, which picks the next runnable fiber. The clock only advances
   when no fiber is runnable — it jumps to the earliest sleeper, firing
   [on_advance] (the fault-plan tick) so scheduled crashes and partitions
   interleave with fibers at their virtual times.

   Determinism: ready queues are per-node FIFOs visited in first-seen
   node order. Unseeded, the picker is a strict round-robin over those
   queues; with a seed, the next queue is drawn from a [Random.State]
   owned by this scheduler, so a chaos seed can fuzz interleavings while
   same-seed runs stay bit-identical. The fault plan's own RNG is never
   touched by scheduling decisions.

   Cancellation: [cancel] marks a fiber (and, transitively, its spawned
   children) cancel-requested. Delivery is cooperative and happens at
   suspension points: a suspended fiber is discontinued with {!Cancelled}
   immediately; a running one the next time it suspends. Delivery is
   one-shot — once a fiber has seen [Cancelled], its later suspension
   points behave normally, so [Fun.protect] cleanup handlers can still
   sleep, await and broadcast on the way out. A fiber that failed with
   [Cancelled] never re-raises at the end of [run] even when unawaited:
   cancellation is a demanded outcome, not a lost error. *)

type task = unit -> unit

type cond = { mutable cw : (string * task) list }

type t = {
  clock : Clock.t;
  rng : Random.State.t option;
  on_advance : unit -> unit;
  on_suspend : node:string -> float;
      (* fault hook fired at every suspension point; returns extra
         virtual delay (a micro-stall) applied to sleeps and yields *)
  mutable queues : (string * task Queue.t) list;  (* first-seen order *)
  mutable rr : int;  (* round-robin cursor (unseeded mode) *)
  mutable sleepers : (float * int * string * task) list;  (* sorted (wake, seq) *)
  mutable seq : int;
  mutable live : int;  (* fibers spawned and not yet finished *)
  mutable failed : (int * exn * (unit -> bool)) list;
      (* (fid, error, was-it-awaited?) — unawaited failures re-raise at
         the end of [run] instead of vanishing *)
  mutable next_fid : int;
}

exception Cancelled

exception Timed_out

type 'a fiber_state =
  | Running of (('a, exn) result -> unit) list  (* pending awaiters *)
  | Done of ('a, exn) result

type 'a fiber = {
  fid : int;
  f_node : string;
  mutable state : 'a fiber_state;
  mutable observed : bool;
  mutable cancel_requested : bool;
  mutable cancel_delivered : bool;
  mutable cancel_wake : (unit -> unit) option;
      (* installed while suspended at an interruptible point; firing it
         discontinues the fiber with [Cancelled] *)
  mutable children : packed list;
}

and packed = P : 'a fiber -> packed

type _ Effect.t +=
  | Spawn_eff : t * string * (unit -> 'a) -> 'a fiber Effect.t
  | Await_eff : t * 'a fiber * float option -> ('a, exn) result Effect.t
      (* optional absolute deadline: resolves [Error Timed_out] *)
  | Await_any_eff : t * 'a fiber list -> (int * ('a, exn) result) Effect.t
  | Sleep_eff : t * float -> unit Effect.t  (* absolute wake time *)
  | Yield_eff : t -> unit Effect.t
  | Wait_eff : t * cond -> unit Effect.t
  | Timed_wait_eff : t * cond * float -> unit Effect.t  (* absolute deadline *)

let enqueue t node task =
  let q =
    match List.assoc_opt node t.queues with
    | Some q -> q
    | None ->
      let q = Queue.create () in
      t.queues <- t.queues @ [ (node, q) ];
      q
  in
  Queue.push task q

let add_sleeper t ~wake ~node task =
  let seq = t.seq in
  t.seq <- seq + 1;
  let rec insert = function
    | [] -> [ (wake, seq, node, task) ]
    | ((w, s, _, _) as hd) :: tl ->
      if wake < w || (wake = w && seq < s) then (wake, seq, node, task) :: hd :: tl
      else hd :: insert tl
  in
  t.sleepers <- insert t.sleepers

(* Move every sleeper whose wake time has come (the clock may also have
   been advanced directly, e.g. by retry backoff) onto its ready queue. *)
let release_due t =
  let now = Clock.now t.clock in
  let due, rest = List.partition (fun (w, _, _, _) -> w <= now) t.sleepers in
  t.sleepers <- rest;
  List.iter (fun (_, _, node, task) -> enqueue t node task) due

let pick t =
  let qs = Array.of_list t.queues in
  let n = Array.length qs in
  if n = 0 then None
  else
    match t.rng with
    | None ->
      let rec scan i =
        if i >= n then None
        else
          let idx = (t.rr + i) mod n in
          let _, q = qs.(idx) in
          if Queue.is_empty q then scan (i + 1)
          else begin
            t.rr <- (idx + 1) mod n;
            Some (Queue.pop q)
          end
      in
      scan 0
    | Some rng ->
      let nonempty =
        List.filter (fun (_, q) -> not (Queue.is_empty q)) (Array.to_list qs)
      in
      (match nonempty with
       | [] -> None
       | _ ->
         let _, q = List.nth nonempty (Random.State.int rng (List.length nonempty)) in
         Some (Queue.pop q))

let finish (type a) t (fib : a fiber) (r : (a, exn) result) =
  (match fib.state with
   | Done _ -> assert false (* fibers finish exactly once *)
   | Running waiters ->
     fib.state <- Done r;
     List.iter (fun w -> w r) (List.rev waiters));
  (match r with
   | Error Cancelled -> ()  (* a demanded cancellation is not a lost error *)
   | Error e -> t.failed <- (fib.fid, e, (fun () -> fib.observed)) :: t.failed
   | Ok _ -> ());
  t.live <- t.live - 1

(* Mark a fiber and its spawned children cancel-requested; wake any that
   are suspended at an interruptible point so the request is delivered
   promptly instead of at their next voluntary suspension. *)
let rec cancel_fiber : 'a. 'a fiber -> unit =
  fun (type a) (fib : a fiber) ->
   match fib.state with
   | Done _ -> ()
   | Running _ ->
     if not fib.cancel_requested then begin
       fib.cancel_requested <- true;
       List.iter (fun (P c) -> cancel_fiber c) fib.children;
       match fib.cancel_wake with
       | Some wake ->
         fib.cancel_wake <- None;
         wake ()
       | None -> ()
     end

(* The cancellation race at one suspension point. If a cancel is already
   pending, deliver it now (enqueue the discontinue) and return [None] —
   the caller must not install its waiters. Otherwise return [Some guard];
   every resumption path is wrapped in [guard f x]: the first to actually
   run wins, later ones degenerate to no-ops, and a [cancel] arriving
   while suspended fires the installed [cancel_wake] which discontinues
   the fiber with {!Cancelled} through the same one-shot gate. *)
let with_cancel t (fib : _ fiber) ~discontinue =
  if fib.cancel_requested && not fib.cancel_delivered then begin
    fib.cancel_delivered <- true;
    enqueue t fib.f_node (fun () -> discontinue Cancelled);
    None
  end
  else begin
    let fired = ref false in
    fib.cancel_wake <-
      Some
        (fun () ->
          enqueue t fib.f_node (fun () ->
              if not !fired then begin
                fired := true;
                fib.cancel_wake <- None;
                fib.cancel_delivered <- true;
                discontinue Cancelled
              end));
    Some
      (fun f x ->
        if not !fired then begin
          fired := true;
          fib.cancel_wake <- None;
          f x
        end)
  end

let rec spawn_fiber : 'a. t -> string -> (unit -> 'a) -> 'a fiber =
  fun (type a) t node (f : unit -> a) : a fiber ->
   let fib =
     {
       fid = t.next_fid;
       f_node = node;
       state = Running [];
       observed = false;
       cancel_requested = false;
       cancel_delivered = false;
       cancel_wake = None;
       children = [];
     }
   in
   t.next_fid <- t.next_fid + 1;
   t.live <- t.live + 1;
   enqueue t node (fun () ->
       (* cancelled before its first slice: never runs, so a hedged
          loser that lost before starting has no side effects at all *)
       if fib.cancel_requested then begin
         fib.cancel_delivered <- true;
         finish t fib (Error Cancelled)
       end
       else exec_fiber t fib f);
   fib

and exec_fiber : 'a. t -> 'a fiber -> (unit -> 'a) -> unit =
  fun (type a) t (fib : a fiber) (f : unit -> a) ->
   Effect.Deep.match_with f ()
     {
       retc = (fun v -> finish t fib (Ok v));
       exnc = (fun e -> finish t fib (Error e));
       effc =
         (fun (type b) (eff : b Effect.t) ->
           match eff with
           | Yield_eff s when s == t ->
             Some
               (fun (k : (b, unit) Effect.Deep.continuation) ->
                 let extra = t.on_suspend ~node:fib.f_node in
                 match
                   with_cancel t fib ~discontinue:(fun e ->
                       Effect.Deep.discontinue k e)
                 with
                 | None -> ()
                 | Some guard ->
                   let resume () = guard (Effect.Deep.continue k) () in
                   if extra > 0.0 then
                     add_sleeper t
                       ~wake:(Clock.now t.clock +. extra)
                       ~node:fib.f_node resume
                   else enqueue t fib.f_node resume)
           | Sleep_eff (s, wake) when s == t ->
             Some
               (fun (k : (b, unit) Effect.Deep.continuation) ->
                 let extra = t.on_suspend ~node:fib.f_node in
                 match
                   with_cancel t fib ~discontinue:(fun e ->
                       Effect.Deep.discontinue k e)
                 with
                 | None -> ()
                 | Some guard ->
                   add_sleeper t ~wake:(wake +. extra) ~node:fib.f_node
                     (fun () -> guard (Effect.Deep.continue k) ()))
           | Wait_eff (s, c) when s == t ->
             Some
               (fun (k : (b, unit) Effect.Deep.continuation) ->
                 ignore (t.on_suspend ~node:fib.f_node : float);
                 match
                   with_cancel t fib ~discontinue:(fun e ->
                       Effect.Deep.discontinue k e)
                 with
                 | None -> ()
                 | Some guard ->
                   c.cw <-
                     c.cw
                     @ [ (fib.f_node, fun () -> guard (Effect.Deep.continue k) ()) ])
           | Timed_wait_eff (s, c, until) when s == t ->
             Some
               (fun (k : (b, unit) Effect.Deep.continuation) ->
                 (* race a broadcast against the deadline: whichever fires
                    first resumes the fiber; the loser degenerates to a
                    no-op (a stale sleeper entry is released and dropped,
                    a stale waiter entry is drained by a later broadcast) *)
                 ignore (t.on_suspend ~node:fib.f_node : float);
                 match
                   with_cancel t fib ~discontinue:(fun e ->
                       Effect.Deep.discontinue k e)
                 with
                 | None -> ()
                 | Some guard ->
                   let resume () = guard (Effect.Deep.continue k) () in
                   c.cw <- c.cw @ [ (fib.f_node, resume) ];
                   add_sleeper t ~wake:until ~node:fib.f_node resume)
           | Await_eff (s, target, deadline) when s == t ->
             Some
               (fun (k : (b, unit) Effect.Deep.continuation) ->
                 ignore (t.on_suspend ~node:fib.f_node : float);
                 target.observed <- true;
                 match
                   with_cancel t fib ~discontinue:(fun e ->
                       Effect.Deep.discontinue k e)
                 with
                 | None -> ()
                 | Some guard ->
                   let resume r =
                     enqueue t fib.f_node (fun () ->
                         guard (Effect.Deep.continue k) r)
                   in
                   (match target.state with
                    | Done r -> resume r
                    | Running ws -> target.state <- Running (resume :: ws));
                   (match deadline with
                    | None -> ()
                    | Some dl ->
                      add_sleeper t ~wake:dl ~node:fib.f_node (fun () ->
                          guard (Effect.Deep.continue k) (Error Timed_out))))
           | Await_any_eff (s, targets) when s == t ->
             Some
               (fun (k : (b, unit) Effect.Deep.continuation) ->
                 ignore (t.on_suspend ~node:fib.f_node : float);
                 List.iter (fun f -> f.observed <- true) targets;
                 match
                   with_cancel t fib ~discontinue:(fun e ->
                       Effect.Deep.discontinue k e)
                 with
                 | None -> ()
                 | Some guard ->
                   let resume i r =
                     enqueue t fib.f_node (fun () ->
                         guard (Effect.Deep.continue k) (i, r))
                   in
                   let rec first i = function
                     | [] -> None
                     | f :: tl ->
                       (match f.state with
                        | Done r -> Some (i, r)
                        | Running _ -> first (i + 1) tl)
                   in
                   (match first 0 targets with
                    | Some (i, r) -> resume i r
                    | None ->
                      List.iteri
                        (fun i f ->
                          match f.state with
                          | Done _ -> assert false
                          | Running ws ->
                            f.state <- Running ((fun r -> resume i r) :: ws))
                        targets))
           | Spawn_eff (s, node, g) when s == t ->
             Some
               (fun (k : (b, unit) Effect.Deep.continuation) ->
                 let child = spawn_fiber t node g in
                 fib.children <- P child :: fib.children;
                 (* a parent already marked for cancellation (but still
                    pre-delivery) must not spawn uncancellable work;
                    post-delivery spawns are cleanup and run freely *)
                 if fib.cancel_requested && not fib.cancel_delivered then
                   cancel_fiber child;
                 Effect.Deep.continue k child)
           | _ -> None (* foreign effect (e.g. a nested scheduler): forward *));
     }

let drive t =
  let rec loop () =
    release_due t;
    match pick t with
    | Some task ->
      task ();
      loop ()
    | None ->
      if t.live > 0 then begin
        match t.sleepers with
        | [] ->
          failwith
            "Sim.Sched: stuck — live fibers but no runnable task and no \
             sleeper (await cycle, or a cond nobody broadcasts)"
        | (wake, _, _, _) :: _ ->
          let now = Clock.now t.clock in
          if wake > now then Clock.advance t.clock (wake -. now);
          t.on_advance ();
          loop ()
      end
  in
  loop ()

let run ?seed ?(on_advance = fun () -> ()) ?(on_suspend = fun ~node:_ -> 0.0)
    ~clock f =
  let t =
    {
      clock;
      rng = Option.map (fun s -> Random.State.make [| s; 0x5c4ed |]) seed;
      on_advance;
      on_suspend;
      queues = [];
      rr = 0;
      sleepers = [];
      seq = 0;
      live = 0;
      failed = [];
      next_fid = 1;
    }
  in
  let main = spawn_fiber t "main" (fun () -> f t) in
  main.observed <- true;
  drive t;
  let result =
    match main.state with
    | Done r -> r
    | Running _ -> assert false (* drive returns only when live = 0 *)
  in
  match result with
  | Error e -> raise e
  | Ok v -> (
    (* a failed fiber nobody awaited must not vanish silently *)
    let unobserved = List.filter (fun (_, _, obs) -> not (obs ())) t.failed in
    match
      List.sort (fun (a, _, _) (b, _, _) -> Int.compare a b) unobserved
    with
    | (_, e, _) :: _ -> raise e
    | [] -> v)

let spawn t ?(node = "main") f = Effect.perform (Spawn_eff (t, node, f))

let await_result t ?deadline fib =
  Effect.perform (Await_eff (t, fib, deadline))

let await t ?deadline fib =
  match await_result t ?deadline fib with Ok v -> v | Error e -> raise e

let await_any t fibs =
  if fibs = [] then invalid_arg "Sim.Sched.await_any: empty fiber list";
  Effect.perform (Await_any_eff (t, fibs))

let join_all t fibs =
  let results = List.map (fun fib -> await_result t fib) fibs in
  List.map (function Ok v -> v | Error e -> raise e) results

let cancel _t fib = cancel_fiber fib

let is_done fib = match fib.state with Done _ -> true | Running _ -> false

let live_count t = t.live

let yield t = Effect.perform (Yield_eff t)

let now t = Clock.now t.clock

let sleep_until t wake = Effect.perform (Sleep_eff (t, wake))

let sleep t d = if d > 0.0 then sleep_until t (Clock.now t.clock +. d)

let make_cond () = { cw = [] }

let wait t c = Effect.perform (Wait_eff (t, c))

let timed_wait t c ~until = Effect.perform (Timed_wait_eff (t, c, until))

let broadcast t c =
  let ws = c.cw in
  c.cw <- [];
  List.iter (fun (node, task) -> enqueue t node task) ws
