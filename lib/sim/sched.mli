(** Deterministic cooperative scheduler over the virtual clock.

    Fibers are cooperatively scheduled, single-threaded coroutines (OCaml
    effect handlers — no OS threads, no preemption). A fiber runs until it
    spawns, awaits, sleeps, yields or waits on a {!cond}; the scheduler
    then picks the next runnable fiber from per-node FIFO ready queues.
    The virtual clock advances {e only} when nothing is runnable, jumping
    to the earliest sleeping fiber and firing [on_advance] first — which
    is how scheduled faults ({!Fault.tick}) interleave with in-flight
    fibers at deterministic virtual times.

    Scheduling order is bit-reproducible: unseeded, ready queues are
    visited in strict round-robin over first-seen node order; with
    [seed], the next non-empty queue is drawn from a scheduler-owned
    [Random.State], so chaos tests can fuzz interleavings per seed
    without perturbing the fault plan's own RNG stream.

    All operations except {!run} must be called from inside a fiber of
    the same scheduler (they perform effects handled by {!run}); calling
    them elsewhere raises [Effect.Unhandled]. Nested [run]s are legal —
    inner-scheduler effects resolve against the inner run loop, anything
    else is forwarded outward. *)

type t

(** A spawned computation. Results (or exceptions) are delivered through
    {!await} / {!await_result}; a failed fiber that is never awaited
    re-raises its exception when {!run} finishes (failures cannot be
    silently dropped). *)
type 'a fiber

(** FIFO wait queue for resource guards (connection-pool slots): {!wait}
    suspends the calling fiber, {!broadcast} makes every waiter runnable
    again (each re-checks its predicate and may wait again). *)
type cond

(** [run ?seed ?on_advance ~clock f] drives [f] — the main fiber — plus
    everything it spawns, until {e all} fibers have finished, then
    returns [f]'s result. Re-raises the main fiber's exception, or the
    first unawaited fiber failure. [on_advance] runs after every clock
    jump (wire the cluster's fault tick here). Raises [Failure] when
    live fibers remain but nothing is runnable or sleeping. *)
val run : ?seed:int -> ?on_advance:(unit -> unit) -> clock:Clock.t -> (t -> 'a) -> 'a

(** Start a fiber on [node]'s ready queue (default ["main"]). The caller
    keeps running; the child gets its first slice when the caller next
    suspends. *)
val spawn : t -> ?node:string -> (unit -> 'a) -> 'a fiber

(** Suspend until the fiber finishes; return its value or re-raise its
    exception. *)
val await : t -> 'a fiber -> 'a

(** Like {!await} but returns the failure instead of raising — for
    fan-outs that must collect every outcome before deciding (2PC). *)
val await_result : t -> 'a fiber -> ('a, exn) result

(** Await every fiber (all complete even if some fail), then return the
    values — or re-raise the first failure in list order. *)
val join_all : t -> 'a fiber list -> 'a list

(** Go to the back of the caller's ready queue. *)
val yield : t -> unit

(** Current virtual time (the shared clock). *)
val now : t -> float

(** Suspend for [d] virtual seconds (no-op when [d <= 0]). The clock
    advances only once no fiber is runnable. *)
val sleep : t -> float -> unit

(** Suspend until an absolute virtual time (no-op when already past). *)
val sleep_until : t -> float -> unit

val make_cond : unit -> cond

val wait : t -> cond -> unit

(** Like {!wait}, but also wakes when the clock reaches the absolute
    time [until] even if nobody broadcasts — for waiters racing a freed
    resource against a deadline (the executor's slow-start ramp gates).
    Callers re-check their predicate on wake-up either way. *)
val timed_wait : t -> cond -> until:float -> unit

val broadcast : t -> cond -> unit
