(** Deterministic cooperative scheduler over the virtual clock.

    Fibers are cooperatively scheduled, single-threaded coroutines (OCaml
    effect handlers — no OS threads, no preemption). A fiber runs until it
    spawns, awaits, sleeps, yields or waits on a {!cond}; the scheduler
    then picks the next runnable fiber from per-node FIFO ready queues.
    The virtual clock advances {e only} when nothing is runnable, jumping
    to the earliest sleeping fiber and firing [on_advance] first — which
    is how scheduled faults ({!Fault.tick}) interleave with in-flight
    fibers at deterministic virtual times.

    Scheduling order is bit-reproducible: unseeded, ready queues are
    visited in strict round-robin over first-seen node order; with
    [seed], the next non-empty queue is drawn from a scheduler-owned
    [Random.State], so chaos tests can fuzz interleavings per seed
    without perturbing the fault plan's own RNG stream.

    All operations except {!run} must be called from inside a fiber of
    the same scheduler (they perform effects handled by {!run}); calling
    them elsewhere raises [Effect.Unhandled]. Nested [run]s are legal —
    inner-scheduler effects resolve against the inner run loop, anything
    else is forwarded outward. *)

type t

(** A spawned computation. Results (or exceptions) are delivered through
    {!await} / {!await_result}; a failed fiber that is never awaited
    re-raises its exception when {!run} finishes (failures cannot be
    silently dropped) — except {!Cancelled}, which is a demanded
    outcome, never a lost error. *)
type 'a fiber

(** FIFO wait queue for resource guards (connection-pool slots): {!wait}
    suspends the calling fiber, {!broadcast} makes every waiter runnable
    again (each re-checks its predicate and may wait again). *)
type cond

(** Raised {e inside} a fiber when a {!cancel} is delivered at one of its
    suspension points. Delivery is one-shot: after the fiber has seen
    [Cancelled] once, later suspension points behave normally, so
    [Fun.protect] cleanup can still sleep, await and broadcast. *)
exception Cancelled

(** Resolved by {!await} / {!await_result} when the [?deadline] passes
    before the awaited fiber finishes. The target fiber keeps running —
    the caller decides whether to {!cancel} it. *)
exception Timed_out

(** [run ?seed ?on_advance ?on_suspend ~clock f] drives [f] — the main
    fiber — plus everything it spawns, until {e all} fibers have
    finished, then returns [f]'s result. Re-raises the main fiber's
    exception, or the first unawaited fiber failure. [on_advance] runs
    after every clock jump (wire the cluster's fault tick here).
    [on_suspend ~node] fires at every fiber suspension point — the
    fault plan's gray-failure hook — and returns extra virtual delay
    (a micro-stall) applied to sleeps and yields on that node; the
    default returns [0.0]. Raises [Failure] when live fibers remain but
    nothing is runnable or sleeping. *)
val run :
  ?seed:int ->
  ?on_advance:(unit -> unit) ->
  ?on_suspend:(node:string -> float) ->
  clock:Clock.t ->
  (t -> 'a) ->
  'a

(** Start a fiber on [node]'s ready queue (default ["main"]). The caller
    keeps running; the child gets its first slice when the caller next
    suspends. A child spawned by a cancel-requested parent (before the
    cancellation was delivered) starts out cancelled. *)
val spawn : t -> ?node:string -> (unit -> 'a) -> 'a fiber

(** Suspend until the fiber finishes; return its value or re-raise its
    exception. With [?deadline] (absolute virtual time), raises
    {!Timed_out} once the clock reaches it — the target fiber is {e not}
    cancelled implicitly. *)
val await : t -> ?deadline:float -> 'a fiber -> 'a

(** Like {!await} but returns the failure instead of raising — for
    fan-outs that must collect every outcome before deciding (2PC).
    A passed [?deadline] resolves [Error Timed_out]. *)
val await_result : t -> ?deadline:float -> 'a fiber -> ('a, exn) result

(** Suspend until the {e first} of the fibers finishes; return its index
    (list position) and result. The hedged-read race: award the winner,
    then {!cancel} the losers. Raises [Invalid_argument] on []. *)
val await_any : t -> 'a fiber list -> int * ('a, exn) result

(** Await every fiber (all complete even if some fail), then return the
    values — or re-raise the first failure in list order. *)
val join_all : t -> 'a fiber list -> 'a list

(** Request cancellation of a fiber and, transitively, every fiber it
    spawned. Suspended fibers are discontinued with {!Cancelled}
    promptly; running ones at their next suspension point; finished ones
    are left alone. Idempotent. Cancellation is cooperative — the fiber
    observes [Cancelled] as an exception and its [Fun.protect] cleanup
    runs normally. *)
val cancel : t -> 'a fiber -> unit

(** Has the fiber finished (in any way)? Non-blocking. *)
val is_done : 'a fiber -> bool

(** Fibers spawned and not yet finished — the leak check: from the main
    fiber with everything joined, this is exactly 1. *)
val live_count : t -> int

(** Go to the back of the caller's ready queue. *)
val yield : t -> unit

(** Current virtual time (the shared clock). *)
val now : t -> float

(** Suspend for [d] virtual seconds (no-op when [d <= 0]). The clock
    advances only once no fiber is runnable. *)
val sleep : t -> float -> unit

(** Suspend until an absolute virtual time (no-op when already past). *)
val sleep_until : t -> float -> unit

val make_cond : unit -> cond

val wait : t -> cond -> unit

(** Like {!wait}, but also wakes when the clock reaches the absolute
    time [until] even if nobody broadcasts — for waiters racing a freed
    resource against a deadline (the executor's slow-start ramp gates).
    Callers re-check their predicate on wake-up either way. *)
val timed_wait : t -> cond -> until:float -> unit

val broadcast : t -> cond -> unit
