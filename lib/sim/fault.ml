type verdict =
  | Deliver
  | Unreachable of string
  | Drop_request of string
  | Drop_reply of string

type armed = { matching : string; lose_reply : bool }

type event =
  | Ev_crash of { node : string; down_for : float option }
  | Ev_restart of string
  | Ev_partition of { from_ : string; to_ : string; heal_after : float option }
  | Ev_heal of { from_ : string; to_ : string }
  | Ev_stall of { node : string; extra : float; duration : float }
  | Ev_skew of { node : string; offset : float; drift : float }

type t = {
  fault_seed : int;
  rng : Random.State.t;
  lat_rng : Random.State.t;
      (** latency draws live on their own stream so turning injection on
          or off never shifts the crash/drop verdict stream *)
  susp_rng : Random.State.t;  (** suspension-hazard draws, ditto *)
  clock : Clock.t;
  nodes : (string, Engine.Instance.t) Hashtbl.t;
  down : (string, unit) Hashtbl.t;
  cut_links : (string * string, unit) Hashtbl.t;  (** directed (from, to) *)
  drop : (string, float * float) Hashtbl.t;  (** per-destination override *)
  mutable default_drop : float * float;  (** (request, reply) *)
  latency : (string, float * float) Hashtbl.t;
      (** per-destination (mean, jitter) round-trip latency override *)
  mutable default_latency : float * float;  (** (mean, jitter) *)
  stalls : (string, float * float) Hashtbl.t;
      (** node -> (stalled until, extra seconds per round trip) *)
  skews : (string, float * float * float) Hashtbl.t;
      (** node -> (offset, drift, since): the node's physical clock reads
          [now + offset + drift * (now - since)] *)
  mutable susp_hazard : float * float;  (** (probability, micro-stall) *)
  armed : (string, armed) Hashtbl.t;
  mutable pending : (float * int * event) list;  (** sorted by (time, seq) *)
  mutable next_seq : int;
  mutable crash_obs : (string -> unit) list;
  mutable restart_obs : (string -> unit) list;
  mutable events : string list;  (** trace, newest first *)
}

let create ?(seed = 0) ~clock () =
  {
    fault_seed = seed;
    rng = Random.State.make [| 0x5eed; seed |];
    lat_rng = Random.State.make [| 0x1a7e; seed |];
    susp_rng = Random.State.make [| 0x5105; seed |];
    clock;
    nodes = Hashtbl.create 8;
    down = Hashtbl.create 4;
    cut_links = Hashtbl.create 8;
    drop = Hashtbl.create 4;
    default_drop = (0.0, 0.0);
    latency = Hashtbl.create 4;
    default_latency = (0.0, 0.0);
    stalls = Hashtbl.create 4;
    skews = Hashtbl.create 4;
    susp_hazard = (0.0, 0.0);
    armed = Hashtbl.create 4;
    pending = [];
    next_seq = 0;
    crash_obs = [];
    restart_obs = [];
    events = [];
  }

let seed t = t.fault_seed

let note t fmt =
  Printf.ksprintf
    (fun m ->
      t.events <- Printf.sprintf "%8.3f %s" (Clock.now t.clock) m :: t.events)
    fmt

let trace t = List.rev t.events

let register_node t ~name inst = Hashtbl.replace t.nodes name inst

let node_up t name = not (Hashtbl.mem t.down name)

let on_crash t f = t.crash_obs <- t.crash_obs @ [ f ]
let on_restart t f = t.restart_obs <- t.restart_obs @ [ f ]

let crash_now t name =
  if node_up t name then begin
    Hashtbl.replace t.down name ();
    (match Hashtbl.find_opt t.nodes name with
     | Some inst -> Engine.Instance.crash inst
     | None -> ());
    note t "crash %s" name;
    List.iter (fun f -> f name) t.crash_obs
  end

let restart_now t name =
  if not (node_up t name) then begin
    Hashtbl.remove t.down name;
    (match Hashtbl.find_opt t.nodes name with
     | Some inst -> Engine.Instance.recover_from_wal inst
     | None -> ());
    note t "restart %s (wal replayed)" name;
    List.iter (fun f -> f name) t.restart_obs
  end

let partition_link t ~from_ ~to_ =
  if not (Hashtbl.mem t.cut_links (from_, to_)) then begin
    Hashtbl.replace t.cut_links (from_, to_) ();
    note t "partition %s->%s" from_ to_
  end

let heal_link t ~from_ ~to_ =
  if Hashtbl.mem t.cut_links (from_, to_) then begin
    Hashtbl.remove t.cut_links (from_, to_);
    note t "heal %s->%s" from_ to_
  end

let link_up t ~from_ ~to_ =
  not
    (Hashtbl.mem t.cut_links (from_, to_)
    || Hashtbl.mem t.cut_links (from_, "*")
    || Hashtbl.mem t.cut_links ("*", to_))

let heal_all_links t =
  if Hashtbl.length t.cut_links > 0 then begin
    Hashtbl.reset t.cut_links;
    note t "heal all links"
  end

let set_drop_rate ?node t ~request ~reply =
  (match node with
   | Some n -> Hashtbl.replace t.drop n (request, reply)
   | None -> t.default_drop <- (request, reply));
  note t "drop-rate %s req=%.2f reply=%.2f"
    (Option.value ~default:"*" node)
    request reply

(* --- gray failures: latency, stalls, suspension hazard --- *)

let set_latency ?node t ~mean ~jitter =
  (match node with
   | Some n -> Hashtbl.replace t.latency n (mean, jitter)
   | None -> t.default_latency <- (mean, jitter));
  note t "latency %s mean=%.3f jitter=%.3f"
    (Option.value ~default:"*" node)
    mean jitter

let stall_now t ~node ~extra ~until_ =
  Hashtbl.replace t.stalls node (until_, extra);
  note t "stall %s +%.3fs/rt until %.3f" node extra until_

let stall_node t ~node ~extra ~duration =
  stall_now t ~node ~extra ~until_:(Clock.now t.clock +. duration)

let stalled_extra t node =
  match Hashtbl.find_opt t.stalls node with
  | Some (until_, extra) when Clock.now t.clock < until_ -> extra
  | _ -> 0.0

let node_stalled t node = stalled_extra t node > 0.0

(* --- clock skew --- *)

let set_clock_skew t ~node ~offset ~drift =
  Hashtbl.replace t.skews node (offset, drift, Clock.now t.clock);
  note t "clock-skew %s offset=%+.3fs drift=%+.6f" node offset drift

let clear_clock_skew t ~node =
  if Hashtbl.mem t.skews node then begin
    Hashtbl.remove t.skews node;
    note t "clock-skew %s cleared" node
  end

let node_skew t node =
  match Hashtbl.find_opt t.skews node with
  | Some (offset, drift, since) ->
    offset +. (drift *. (Clock.now t.clock -. since))
  | None -> 0.0

let skewed_now t node = Clock.now t.clock +. node_skew t node

let set_suspension_hazard t ~p ~stall =
  t.susp_hazard <- (p, stall);
  note t "suspension hazard p=%.3f stall=%.3fs" p stall

let at_suspension t ~node =
  (* Always burn exactly one draw so the hazard stream depends only on
     the sequence of suspension points, never on the configuration. *)
  let u = Random.State.float t.susp_rng 1.0 in
  let p, d = t.susp_hazard in
  if p > 0.0 && u < p then begin
    note t "suspension stall %s +%.3fs" node d;
    d
  end
  else 0.0

let round_trip_latency t ~to_ =
  (* One draw, always burnt, for the same stream-stability reason. *)
  let u = Random.State.float t.lat_rng 1.0 in
  let mean, jitter =
    match Hashtbl.find_opt t.latency to_ with
    | Some l -> l
    | None -> t.default_latency
  in
  let base = mean +. (jitter *. ((2.0 *. u) -. 1.0)) in
  let base = if base < 0.0 then 0.0 else base in
  base +. stalled_extra t to_

let arm_crash_after t ~node ~matching ?(lose_reply = false) () =
  Hashtbl.replace t.armed node { matching; lose_reply };
  note t "arm crash-after %s matching %S%s" node matching
    (if lose_reply then " (reply lost)" else "")

(* --- scheduled events --- *)

let enqueue t ~at ev =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  t.pending <-
    List.sort
      (fun (ta, sa, _) (tb, sb, _) -> compare (ta, sa) (tb, sb))
      ((at, seq, ev) :: t.pending)

let schedule_crash t ~at ?down_for node =
  enqueue t ~at (Ev_crash { node; down_for })

let schedule_partition ?heal_after t ~at ~from_ ~to_ =
  enqueue t ~at (Ev_partition { from_; to_; heal_after })

let schedule_stall t ~at ~extra ~duration node =
  enqueue t ~at (Ev_stall { node; extra; duration })

let schedule_skew t ~at ~offset ~drift node =
  enqueue t ~at (Ev_skew { node; offset; drift })

let fire t at = function
  | Ev_crash { node; down_for } ->
    crash_now t node;
    (match down_for with
     | Some d -> enqueue t ~at:(at +. d) (Ev_restart node)
     | None -> ())
  | Ev_restart node -> restart_now t node
  | Ev_partition { from_; to_; heal_after } ->
    partition_link t ~from_ ~to_;
    (match heal_after with
     | Some d -> enqueue t ~at:(at +. d) (Ev_heal { from_; to_ })
     | None -> ())
  | Ev_heal { from_; to_ } -> heal_link t ~from_ ~to_
  | Ev_stall { node; extra; duration } ->
    stall_now t ~node ~extra ~until_:(at +. duration)
  | Ev_skew { node; offset; drift } -> set_clock_skew t ~node ~offset ~drift

let rec tick t =
  match t.pending with
  | (at, _, ev) :: rest when at <= Clock.now t.clock ->
    t.pending <- rest;
    fire t at ev;
    tick t
  | _ -> ()

(* --- consultation --- *)

let check_connect t ~from_ ~to_ =
  if not (node_up t to_) then
    Unreachable (Printf.sprintf "node %s is down" to_)
  else if not (link_up t ~from_ ~to_) then
    Unreachable (Printf.sprintf "network partition %s->%s" from_ to_)
  else if not (link_up t ~from_:to_ ~to_:from_) then
    Unreachable (Printf.sprintf "network partition %s->%s" to_ from_)
  else Deliver

let drop_rates t node =
  match Hashtbl.find_opt t.drop node with
  | Some r -> r
  | None -> t.default_drop

let check_round_trip t ~from_ ~to_ ~sql =
  ignore sql;
  (* Always burn exactly two draws so the random stream does not depend
     on which faults happen to be active. *)
  let r_req = Random.State.float t.rng 1.0 in
  let r_reply = Random.State.float t.rng 1.0 in
  let req_rate, reply_rate = drop_rates t to_ in
  if not (node_up t to_) then
    Unreachable (Printf.sprintf "node %s is down" to_)
  else if not (link_up t ~from_ ~to_) then
    Drop_request (Printf.sprintf "network partition %s->%s" from_ to_)
  else if r_req < req_rate then begin
    note t "drop request %s->%s" from_ to_;
    Drop_request (Printf.sprintf "request %s->%s lost" from_ to_)
  end
  else if not (link_up t ~from_:to_ ~to_:from_) then
    Drop_reply (Printf.sprintf "network partition %s->%s" to_ from_)
  else if r_reply < reply_rate then begin
    note t "drop reply %s->%s" to_ from_;
    Drop_reply (Printf.sprintf "reply %s->%s lost" to_ from_)
  end
  else Deliver

let contains_substring s sub =
  let ls = String.length s and lsub = String.length sub in
  lsub = 0
  ||
  let rec at i =
    i + lsub <= ls && (String.sub s i lsub = sub || at (i + 1))
  in
  at 0

let after_statement t ~node ~sql =
  match Hashtbl.find_opt t.armed node with
  | Some { matching; lose_reply } when contains_substring sql matching ->
    Hashtbl.remove t.armed node;
    note t "armed crash fires on %s after %S" node matching;
    crash_now t node;
    `Crashed lose_reply
  | _ -> `Proceed

let quiesce t =
  t.pending <- [];
  heal_all_links t;
  t.default_drop <- (0.0, 0.0);
  Hashtbl.reset t.drop;
  t.default_latency <- (0.0, 0.0);
  Hashtbl.reset t.latency;
  Hashtbl.reset t.stalls;
  Hashtbl.reset t.skews;
  t.susp_hazard <- (0.0, 0.0);
  Hashtbl.reset t.armed;
  let downed = Hashtbl.fold (fun n () acc -> n :: acc) t.down [] in
  List.iter (restart_now t) (List.sort compare downed);
  note t "quiesce"
