(** The tiered distributed query planners of §3.5.

    For each statement that references a Citus table, [plan] tries the
    planners from lowest to highest overhead:

    + {b fast path} — simple CRUD on one distributed table with an
      equality filter (or VALUES) on the distribution column;
    + {b router} — an arbitrarily complex query whose distributed tables
      are co-located and all filtered to the same distribution value, so
      the whole query can be rewritten to one set of co-located shards;
    + {b logical pushdown} — multi-shard SELECT whose join tree is fully
      pushdownable: per-shard-group tasks with decomposed aggregates plus
      a coordinator merge query;
    + parallel DML for multi-shard writes.

    Queries that need the logical join-order planner (non-co-located
    joins) raise {!Unsupported} here and are handled by {!Join_order}. *)

exception Unsupported of string

(** Citus tables referenced anywhere in a statement. *)
val citus_tables : Metadata.t -> Sqlfront.Ast.statement -> string list

(** Which planner produced a plan (for tests and EXPLAIN-style output). *)
type tier = Tier_fast_path | Tier_router | Tier_pushdown | Tier_dml | Tier_reference

val tier_name : tier -> string

(** Metric/tag-safe identifier ([fast_path], [router], [pushdown],
    [dml], [reference]); the [planner.tier.<slug>] counter namespace
    also holds [join_order], counted by the {!Api} fallback. *)
val tier_slug : tier -> string

(** [plan meta ~catalog ~local_name stmt] produces a distributed plan.
    [catalog] is the local node's catalog (used to expand [*] projections
    from the schema of the converted local table); [local_name] is the node
    running the planner (reference-table reads route there). [node_ok]
    steers placement choice for reads away from unhealthy nodes (circuit
    breaker open); the first active placement is used when every candidate
    fails the predicate. Raises {!Unsupported} when no tier applies.

    When [obs] is given the chosen tier is counted
    ([planner.tier.<name>]) and, with tracing enabled, planning runs
    inside a ["plan"] span tagged with the tier; [now] supplies the
    virtual clock for span timestamps (defaults to a constant 0). *)
val plan :
  ?obs:Obs.t ->
  ?now:(unit -> float) ->
  ?node_ok:(string -> bool) ->
  Metadata.t ->
  catalog:Engine.Catalog.t ->
  local_name:string ->
  Sqlfront.Ast.statement ->
  Plan.t * tier

(** Internal entry point reused by INSERT..SELECT: plan a SELECT for
    pushdown execution. Raises {!Unsupported} if the select cannot be
    fully pushed down. *)
val plan_pushdown_select :
  ?node_ok:(string -> bool) ->
  Metadata.t ->
  catalog:Engine.Catalog.t ->
  Sqlfront.Ast.select ->
  Plan.task list * Plan.merge

(** True when the select's distributed tables are co-located and the query
    groups/joins on the distribution column so that INSERT..SELECT can run
    entirely co-located (strategy 1 of §3.8). *)
val select_is_colocated_with :
  Metadata.t -> dest:string -> dest_dist_col_position:int option ->
  Sqlfront.Ast.select -> bool

(** Build the per-shard task select and merge query for a select, without
    co-location validation — {!Join_order} reuses this after it has
    re-partitioned or broadcast the non-co-located relations. *)
val pushdown_parts :
  Metadata.t ->
  catalog:Engine.Catalog.t ->
  Sqlfront.Ast.select ->
  Sqlfront.Ast.select * Plan.merge

(** Placeholder relation name in merge queries; {!Dist_executor} renames
    it to a unique transient relation per execution. *)
val intermediate_relation : string

(** Rewrite every Citus table name to the shard of group [group_index];
    reference tables go to their (single) shard name. *)
val rewrite_to_group :
  Metadata.t -> group_index:int -> Sqlfront.Ast.statement -> Sqlfront.Ast.statement

(** {2 Shape analysis for the distributed plan cache}

    A prepared statement's stored AST (parameters unbound) is a {e query
    shape}. [analyze_shape] decides whether its plan can be memoized
    with shard pruning deferred to bind time: the statement must be
    single-group for {e any} value of the routing parameter — every
    referenced table a co-located Citus table, every distributed table
    filtered by equality on its distribution column against the same
    [$k] (or the same constant), or a single-row INSERT whose
    distribution-column position holds [$k] / a constant. The cache then
    stores one pre-rewritten statement per shard group; at EXECUTE time
    the bound value hashes to a group index and placements are looked up
    fresh. Shapes that fail analysis take the cache's bypass path
    (re-planned per EXECUTE) — conservatism costs latency, never
    correctness. *)

type dist_key =
  | Key_param of int  (** routing value is [$k] of the EXECUTE arguments *)
  | Key_const of Datum.t  (** routing value is baked into the shape *)

type shape = {
  sh_anchor : string;  (** distributed table whose shards drive pruning *)
  sh_tier : tier;  (** [Tier_fast_path] or [Tier_router] *)
  sh_key : dist_key;
}

val analyze_shape :
  Metadata.t ->
  catalog:Engine.Catalog.t ->
  Sqlfront.Ast.statement ->
  shape option
