open Sqlfront

type strategy = Colocated | Repartition | Pull

let strategy_name = function
  | Colocated -> "co-located"
  | Repartition -> "re-partition"
  | Pull -> "pull to coordinator"

let err fmt =
  Printf.ksprintf (fun m -> raise (Engine.Instance.Session_error m)) fmt

let local_catalog (t : State.t) =
  Engine.Instance.catalog t.State.local.Cluster.Topology.instance

let column_list (t : State.t) table columns =
  match columns with
  | Some cols -> cols
  | None ->
    (match Engine.Catalog.find_table_opt (local_catalog t) table with
     | Some tbl ->
       List.map
         (fun (c : Ast.column_def) -> c.col_name)
         tbl.Engine.Catalog.columns
     | None -> err "relation %s does not exist" table)

(* Insert materialized rows into a distributed destination, grouped by
   target shard — shared by the re-partition and pull strategies. *)
let route_rows (t : State.t) session ~table ~cols ~dist_pos ~dist_ty
    ~on_conflict rows =
  let by_shard : (int, Datum.t array list ref) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (row : Datum.t array) ->
      if Array.length row <> List.length cols then
        err "INSERT..SELECT produced %d columns, expected %d"
          (Array.length row) (List.length cols);
      let v =
        try Datum.cast row.(dist_pos) dist_ty
        with Datum.Cast_error m -> err "%s" m
      in
      if Datum.is_null v then err "the distribution column cannot be NULL";
      let shard = Metadata.shard_for_value t.State.metadata ~table v in
      let bucket =
        match Hashtbl.find_opt by_shard shard.Metadata.shard_id with
        | Some b -> b
        | None ->
          let b = ref [] in
          Hashtbl.replace by_shard shard.Metadata.shard_id b;
          b
      in
      bucket := row :: !bucket)
    rows;
  let tasks =
    Hashtbl.fold
      (fun shard_id bucket acc ->
        let shard =
          List.find
            (fun (s : Metadata.shard) -> s.Metadata.shard_id = shard_id)
            (Metadata.shards_of t.State.metadata table)
        in
        let tuples =
          List.rev_map
            (fun row -> List.map (fun d -> Ast.Const d) (Array.to_list row))
            !bucket
        in
        {
          Plan.task_node = Metadata.placement t.State.metadata shard_id;
          task_stmt =
            Ast.Insert
              {
                table = Metadata.shard_name shard;
                columns = Some cols;
                source = Ast.Values tuples;
                on_conflict_do_nothing = on_conflict;
              };
          task_group = shard.Metadata.index_in_colocation;
          task_shard = shard_id;
        }
        :: acc)
      by_shard []
  in
  let results, _report = Adaptive_executor.execute t session tasks in
  List.fold_left (fun acc r -> acc + r.Engine.Instance.affected) 0 results

(* Run the source SELECT through whatever distributed (or local) path
   applies and return its rows. *)
let materialize_select (t : State.t) session select =
  let meta = t.State.metadata in
  let catalog = local_catalog t in
  let stmt = Ast.Select_stmt select in
  if Planner.citus_tables meta stmt = [] then begin
    let ctx = Engine.Instance.make_ctx session in
    snd (Engine.Executor.run_select ctx select)
  end
  else begin
    let plan, _tier =
      Planner.plan meta ~catalog
        ~local_name:t.State.local.Cluster.Topology.node_name stmt
    in
    let result, _report = Dist_executor.execute t session plan in
    result.Engine.Instance.rows
  end

let trivial_master (merge : Plan.merge) =
  let m = merge.Plan.master in
  m.Ast.group_by = [] && m.Ast.having = None && (not m.Ast.distinct)
  && m.Ast.limit = None && m.Ast.offset = None

let execute (t : State.t) session ~table ~columns ~select ~on_conflict_do_nothing
    =
  let meta = t.State.metadata in
  let catalog = local_catalog t in
  let cols = column_list t table columns in
  let dml_result affected =
    { Engine.Instance.columns = []; rows = []; affected; tag = "INSERT" }
  in
  match Metadata.find meta table with
  | None -> err "%s is not a Citus table" table
  | Some { Metadata.kind = Metadata.Reference; _ } ->
    (* pull, then write to every replica (the executor expands the task) *)
    let rows = materialize_select t session select in
    let shard =
      match Metadata.shards_of meta table with
      | s :: _ -> s
      | [] -> err "reference table %s has no shard" table
    in
    let tuples =
      List.map
        (fun (row : Datum.t array) ->
          List.map (fun d -> Ast.Const d) (Array.to_list row))
        rows
    in
    let affected =
      if tuples = [] then 0
      else begin
        let tasks =
          [
            {
              Plan.task_node = Metadata.placement meta shard.Metadata.shard_id;
              task_stmt =
                Ast.Insert
                  {
                    table = Metadata.shard_name shard;
                    columns = Some cols;
                    source = Ast.Values tuples;
                    on_conflict_do_nothing;
                  };
              task_group = -1;
              task_shard = shard.Metadata.shard_id;
            };
          ]
        in
        match Adaptive_executor.execute t session tasks with
        | [ r ], _ -> r.Engine.Instance.affected
        | _ -> assert false (* one task, one result *)
      end
    in
    (dml_result affected, Pull)
  | Some { Metadata.kind = Metadata.Distributed; dist_column = Some dc; _ } ->
    let dist_pos =
      match List.find_index (String.equal dc) cols with
      | Some i -> i
      | None ->
        err "INSERT into %s must include the distribution column %s" table dc
    in
    let dist_ty =
      match Engine.Catalog.find_table_opt catalog table with
      | Some tbl ->
        (Engine.Catalog.column_tys tbl).(Engine.Catalog.column_index tbl dc)
      | None -> Datum.TInt
    in
    if
      Planner.select_is_colocated_with meta ~dest:table
        ~dest_dist_col_position:(Some dist_pos) select
    then begin
      (* strategy 1: fully parallel, shard-local INSERT..SELECT *)
      let source_tables =
        List.filter (Metadata.is_citus_table meta)
          (Planner.citus_tables meta (Ast.Select_stmt select))
      in
      let groups =
        Metadata.shard_groups meta ~tables:(table :: source_tables)
      in
      let dest_shards = Metadata.shards_of meta table in
      let tasks =
        List.map
          (fun (group_index, node, _) ->
            let dest_shard =
              List.find
                (fun (s : Metadata.shard) ->
                  s.index_in_colocation = group_index)
                dest_shards
            in
            let rewritten =
              match
                Planner.rewrite_to_group meta ~group_index
                  (Ast.Select_stmt select)
              with
              | Ast.Select_stmt s -> s
              | _ -> assert false
            in
            {
              Plan.task_node = node;
              task_stmt =
                Ast.Insert
                  {
                    table = Metadata.shard_name dest_shard;
                    columns = Some cols;
                    source = Ast.Query rewritten;
                    on_conflict_do_nothing;
                  };
              task_group = group_index;
              task_shard = dest_shard.Metadata.shard_id;
            })
          groups
      in
      let results, _ = Adaptive_executor.execute t session tasks in
      let affected =
        List.fold_left (fun acc r -> acc + r.Engine.Instance.affected) 0 results
      in
      (dml_result affected, Colocated)
    end
    else begin
      (* strategy 2 (re-partition) when pushdownable with a trivial merge,
         else strategy 3 (pull) *)
      match Planner.plan_pushdown_select meta ~catalog select with
      | tasks, merge when trivial_master merge ->
        let results, _ = Adaptive_executor.execute t session tasks in
        let rows = List.concat_map (fun r -> r.Engine.Instance.rows) results in
        (* task rows include only projected columns (c0..cn) in select
           order; extra sort columns are trailing and dropped *)
        let want = List.length cols in
        let rows =
          List.map
            (fun (row : Datum.t array) ->
              if Array.length row > want then Array.sub row 0 want else row)
            rows
        in
        let affected =
          route_rows t session ~table ~cols ~dist_pos ~dist_ty
            ~on_conflict:on_conflict_do_nothing rows
        in
        (dml_result affected, Repartition)
      | _tasks, _merge ->
        let rows = materialize_select t session select in
        let affected =
          route_rows t session ~table ~cols ~dist_pos ~dist_ty
            ~on_conflict:on_conflict_do_nothing rows
        in
        (dml_result affected, Pull)
      | exception Planner.Unsupported _ ->
        let rows = materialize_select t session select in
        let affected =
          route_rows t session ~table ~cols ~dist_pos ~dist_ty
            ~on_conflict:on_conflict_do_nothing rows
        in
        (dml_result affected, Pull)
    end
  | Some { Metadata.kind = Metadata.Distributed; dist_column = None; _ } ->
    err "distributed table %s has no distribution column" table
