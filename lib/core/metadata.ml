type kind = Distributed | Reference

type dist_table = {
  dt_name : string;
  dist_column : string option;
  dist_column_ty : Datum.ty option;
  colocation_id : int;
  kind : kind;
}

type shard = {
  shard_id : int;
  shard_of : string;
  min_hash : int32;
  max_hash : int32;
  index_in_colocation : int;
}

type placement_state = Active | Inactive

type placement = { pl_node : string; mutable pl_state : placement_state }

type t = {
  shard_count : int;
  mutable tables : dist_table list;
  mutable shards : shard list;
  (* shard_id -> placements (node + health state, Citus shardstate 1/3) *)
  placement_tbl : (int, placement list) Hashtbl.t;
  mutable next_shard_id : int;
  mutable next_colocation_id : int;
  mutable version : int;
      (* monotonic metadata version: bumped by every mutation that can
         invalidate a cached distributed plan (DDL, placement changes,
         shard splits). The plan cache revalidates against it. *)
}

exception Not_distributed of string

(* Catalog lookups that fail indicate corrupted or inconsistent metadata
   (an unknown shard id, a shard with every replica lost), not a node
   failure: a typed exception keeps the two failure classes separate so
   executors never retry a catalog bug against another replica. *)
exception Catalog_error of string

let catalog_error fmt = Printf.ksprintf (fun m -> raise (Catalog_error m)) fmt

let create ?(shard_count = 32) () =
  {
    shard_count;
    tables = [];
    shards = [];
    placement_tbl = Hashtbl.create 64;
    next_shard_id = 102008;
    next_colocation_id = 1;
    version = 0;
  }

let default_shard_count t = t.shard_count

let version t = t.version

let bump_version t = t.version <- t.version + 1

let find t name =
  List.find_opt (fun dt -> String.equal dt.dt_name name) t.tables

let is_citus_table t name = find t name <> None

let all_tables t = t.tables

let fresh_shard_id t =
  let id = t.next_shard_id in
  t.next_shard_id <- id + 1;
  id

(* Divide the int32 hash space into [n] contiguous ranges, PostgreSQL/Citus
   style: range i covers [min + i*step, min + (i+1)*step - 1], with the last
   range absorbing the remainder. *)
let hash_ranges n =
  let span = Int64.sub (Int64.of_int32 Int32.max_int) (Int64.of_int32 Int32.min_int) in
  let step = Int64.div (Int64.add span 1L) (Int64.of_int n) in
  List.init n (fun i ->
      let lo =
        Int64.add (Int64.of_int32 Int32.min_int) (Int64.mul step (Int64.of_int i))
      in
      let hi =
        if i = n - 1 then Int64.of_int32 Int32.max_int
        else Int64.sub (Int64.add lo step) 1L
      in
      (Int64.to_int32 lo, Int64.to_int32 hi))

let active_pl = List.filter (fun p -> p.pl_state = Active)

let fresh_copies pls =
  List.map (fun p -> { pl_node = p.pl_node; pl_state = p.pl_state }) pls

let all_placements t shard_id =
  match Hashtbl.find_opt t.placement_tbl shard_id with
  | Some pls -> pls
  | None -> catalog_error "no placements for shard %d" shard_id

let placements t shard_id =
  match active_pl (all_placements t shard_id) with
  | [] -> catalog_error "shard %d has no active placement" shard_id
  | pls -> List.map (fun p -> p.pl_node) pls

let placement t shard_id =
  match placements t shard_id with
  | node :: _ -> node
  | [] -> catalog_error "shard %d has no active placement" shard_id

let register_distributed ?(replication_factor = 1) t ~table ~column ~ty
    ~colocate_with ~nodes =
  if find t table <> None then
    invalid_arg (Printf.sprintf "table %s is already distributed" table);
  if nodes = [] then invalid_arg "no nodes to place shards on";
  if replication_factor < 1 then invalid_arg "replication_factor must be >= 1";
  match colocate_with with
  | Some other ->
    let other_dt =
      match find t other with
      | Some dt when dt.kind = Distributed -> dt
      | Some _ -> invalid_arg (other ^ " is not a distributed table")
      | None -> raise (Not_distributed other)
    in
    let other_shards =
      List.filter (fun s -> String.equal s.shard_of other) t.shards
      |> List.sort (fun a b -> Int32.compare a.min_hash b.min_hash)
    in
    let dt =
      {
        dt_name = table;
        dist_column = Some column;
        dist_column_ty = Some ty;
        colocation_id = other_dt.colocation_id;
        kind = Distributed;
      }
    in
    t.tables <- t.tables @ [ dt ];
    let new_shards =
      List.map
        (fun (os : shard) ->
          let s =
            {
              shard_id = fresh_shard_id t;
              shard_of = table;
              min_hash = os.min_hash;
              max_hash = os.max_hash;
              index_in_colocation = os.index_in_colocation;
            }
          in
          (* colocated shards get their own placement records (health is
             tracked per placement), on the same nodes in the same state *)
          Hashtbl.replace t.placement_tbl s.shard_id
            (fresh_copies (all_placements t os.shard_id));
          s)
        other_shards
    in
    t.shards <- t.shards @ new_shards;
    bump_version t;
    new_shards
  | None ->
    let colocation_id = t.next_colocation_id in
    t.next_colocation_id <- colocation_id + 1;
    let dt =
      {
        dt_name = table;
        dist_column = Some column;
        dist_column_ty = Some ty;
        colocation_id;
        kind = Distributed;
      }
    in
    t.tables <- t.tables @ [ dt ];
    let node_array = Array.of_list nodes in
    let n_nodes = Array.length node_array in
    let rf = min replication_factor n_nodes in
    let new_shards =
      List.mapi
        (fun i (lo, hi) ->
          let s =
            {
              shard_id = fresh_shard_id t;
              shard_of = table;
              min_hash = lo;
              max_hash = hi;
              index_in_colocation = i;
            }
          in
          (* round-robin placement, §3.3.1; with statement-based
             replication, each shard also lands on the next rf-1 nodes *)
          Hashtbl.replace t.placement_tbl s.shard_id
            (List.init rf (fun k ->
                 { pl_node = node_array.((i + k) mod n_nodes);
                   pl_state = Active }));
          s)
        (hash_ranges t.shard_count)
    in
    t.shards <- t.shards @ new_shards;
    bump_version t;
    new_shards

let register_reference t ~table ~nodes =
  if find t table <> None then
    invalid_arg (Printf.sprintf "table %s is already distributed" table);
  let colocation_id = 0 in
  let dt =
    {
      dt_name = table;
      dist_column = None;
      dist_column_ty = None;
      colocation_id;
      kind = Reference;
    }
  in
  t.tables <- t.tables @ [ dt ];
  let s =
    {
      shard_id = fresh_shard_id t;
      shard_of = table;
      min_hash = Int32.min_int;
      max_hash = Int32.max_int;
      index_in_colocation = 0;
    }
  in
  Hashtbl.replace t.placement_tbl s.shard_id
    (List.map (fun n -> { pl_node = n; pl_state = Active }) nodes);
  t.shards <- t.shards @ [ s ];
  bump_version t;
  s

let drop_table t name =
  t.tables <- List.filter (fun dt -> not (String.equal dt.dt_name name)) t.tables;
  let dropped, kept =
    List.partition (fun s -> String.equal s.shard_of name) t.shards
  in
  List.iter (fun s -> Hashtbl.remove t.placement_tbl s.shard_id) dropped;
  t.shards <- kept;
  bump_version t

let shards_of t name =
  if find t name = None then raise (Not_distributed name);
  List.filter (fun s -> String.equal s.shard_of name) t.shards
  |> List.sort (fun a b -> Int32.compare a.min_hash b.min_hash)

let shard_for_value t ~table value =
  let h = Datum.hash32 value in
  let shards = shards_of t table in
  match
    List.find_opt
      (fun s -> Int32.compare h s.min_hash >= 0 && Int32.compare h s.max_hash <= 0)
      shards
  with
  | Some s -> s
  | None -> invalid_arg "hash value outside all shard ranges"

let shard_name s = Printf.sprintf "%s_%d" s.shard_of s.shard_id

let placement_state_of t ~shard_id ~node =
  List.find_opt (fun p -> String.equal p.pl_node node) (all_placements t shard_id)
  |> Option.map (fun p -> p.pl_state)

let mark_placement t ~shard_id ~node state =
  match
    List.find_opt (fun p -> String.equal p.pl_node node)
      (all_placements t shard_id)
  with
  | Some p ->
    p.pl_state <- state;
    bump_version t
  | None ->
    invalid_arg
      (Printf.sprintf "shard %d has no placement on %s" shard_id node)

let shard_by_id t shard_id =
  List.find_opt (fun s -> s.shard_id = shard_id) t.shards

(* Shards that must stay aligned with [shard]: the same group index in
   every other table of its colocation group (reference shards stand
   alone). *)
let colocated_shards t (shard : shard) =
  match find t shard.shard_of with
  | Some { kind = Reference; _ } | None -> [ shard ]
  | Some owner ->
    List.filter_map
      (fun dt ->
        if dt.kind = Distributed && dt.colocation_id = owner.colocation_id
        then
          List.find_opt
            (fun s ->
              s.index_in_colocation = shard.index_in_colocation
              && String.equal s.shard_of dt.dt_name)
            t.shards
        else None)
      t.tables

let inactive_placements t =
  List.concat_map
    (fun s ->
      match Hashtbl.find_opt t.placement_tbl s.shard_id with
      | None -> []
      | Some pls ->
        List.filter_map
          (fun p -> if p.pl_state = Inactive then Some (s, p.pl_node) else None)
          pls)
    t.shards

let update_placement t ~shard_id ~from_node ~to_node =
  Hashtbl.replace t.placement_tbl shard_id
    (List.map
       (fun p ->
         if String.equal p.pl_node from_node then
           { pl_node = to_node; pl_state = Active }
         else p)
       (all_placements t shard_id));
  bump_version t

let add_placement t ~shard_id ~node =
  let pls = all_placements t shard_id in
  if not (List.exists (fun p -> String.equal p.pl_node node) pls) then begin
    Hashtbl.replace t.placement_tbl shard_id
      (pls @ [ { pl_node = node; pl_state = Active } ]);
    bump_version t
  end

let colocated t names =
  let ids =
    List.filter_map
      (fun n ->
        match find t n with
        | Some { kind = Reference; _ } -> None (* compatible with anything *)
        | Some dt -> Some dt.colocation_id
        | None -> None)
      names
  in
  match List.sort_uniq Int.compare ids with [] | [ _ ] -> true | _ -> false

(* Pick the node serving a shard: the first active placement whose node
   passes [node_ok] (a health predicate), else the first active one. *)
let select_placement ?node_ok t shard_id =
  (* [placements] raises Catalog_error rather than return [], so the
     match below is total without a partial List.hd *)
  match placements t shard_id with
  | [] -> catalog_error "shard %d has no active placement" shard_id
  | first :: _ as nodes ->
    (match node_ok with
     | None -> first
     | Some ok ->
       (match List.find_opt ok nodes with Some n -> n | None -> first))

let shard_groups ?node_ok t ~tables =
  let dist_tables =
    List.filter
      (fun n ->
        match find t n with Some { kind = Distributed; _ } -> true | _ -> false)
      tables
  in
  match dist_tables with
  | [] -> []
  | anchor :: _ ->
    let anchor_shards = shards_of t anchor in
    List.map
      (fun (a : shard) ->
        let members =
          List.map
            (fun tbl ->
              let s =
                List.find
                  (fun (s : shard) ->
                    s.index_in_colocation = a.index_in_colocation)
                  (shards_of t tbl)
              in
              (tbl, s))
            dist_tables
        in
        (a.index_in_colocation, select_placement ?node_ok t a.shard_id, members))
      anchor_shards

let nodes_in_use t =
  Hashtbl.fold
    (fun _ pls acc -> List.map (fun p -> p.pl_node) pls @ acc)
    t.placement_tbl []
  |> List.sort_uniq String.compare

let shards_on_node t node =
  List.filter
    (fun s ->
      (match find t s.shard_of with
       | Some { kind = Distributed; _ } -> true
       | _ -> false)
      && List.exists
           (fun p -> String.equal p.pl_node node)
           (all_placements t s.shard_id))
    t.shards

(* --- shard splitting (tenant isolation) --- *)

let replace_shard t ~shard_id ~ranges =
  let old =
    match List.find_opt (fun s -> s.shard_id = shard_id) t.shards with
    | Some s -> s
    | None -> invalid_arg (Printf.sprintf "no shard %d" shard_id)
  in
  let pls = all_placements t shard_id in
  let news =
    List.map
      (fun (lo, hi) ->
        let s =
          {
            shard_id = fresh_shard_id t;
            shard_of = old.shard_of;
            min_hash = lo;
            max_hash = hi;
            index_in_colocation = old.index_in_colocation (* renumbered below *);
          }
        in
        Hashtbl.replace t.placement_tbl s.shard_id (fresh_copies pls);
        s)
      ranges
  in
  Hashtbl.remove t.placement_tbl shard_id;
  t.shards <-
    List.filter (fun s -> s.shard_id <> shard_id) t.shards @ news;
  bump_version t;
  news

(* Reassign index_in_colocation consistently across every table of a
   colocation group after a split: shards are numbered by range order,
   which is identical for all tables in the group. *)
let renumber_colocation t ~colocation_id =
  let tables =
    List.filter
      (fun dt -> dt.kind = Distributed && dt.colocation_id = colocation_id)
      t.tables
  in
  List.iter
    (fun dt ->
      let shards =
        List.filter (fun s -> String.equal s.shard_of dt.dt_name) t.shards
        |> List.sort (fun a b -> Int32.compare a.min_hash b.min_hash)
      in
      let renumbered =
        List.mapi (fun i s -> { s with index_in_colocation = i }) shards
      in
      t.shards <-
        List.filter (fun s -> not (String.equal s.shard_of dt.dt_name)) t.shards
        @ renumbered)
    tables;
  bump_version t
