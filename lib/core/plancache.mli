(** The distributed plan cache (PR 9's tentpole): stop re-planning the
    OLTP hot path.

    Citus' production OLTP workloads are dominated by prepared
    statements whose shape never changes — only the bound distribution
    value does. Re-running the tiered planner (table discovery,
    co-location checks, shard pruning, per-shard rewrite + deparse) on
    every EXECUTE is pure overhead. This cache memoizes, per {e query
    shape} (the normalized AST with parameters unbound, keyed by its
    deparse), the planner-tier decision and a pruned-shard skeleton: one
    pre-rewritten statement (and its deparse string) per shard group.
    Only the two bind-time steps remain on the hot path: hash the bound
    routing value to a group index, and pick a fresh placement for that
    group's anchor shard.

    {b Invalidation is correctness-critical.} Every entry records
    {!Metadata.version} at build time; {!find} discards an entry whose
    version no longer matches ([Stale]), so DDL, shard moves,
    rebalancing, replication-factor changes and tenant isolation — all
    of which bump the version — force a re-plan. Placements are {e
    never} cached: the executing node is selected at bind time, so a
    placement flip (repair, failover) between EXECUTEs is picked up even
    without a rebuild. A stale cached deparse must revalidate, never
    execute.

    The cache is bounded LRU ([citus.plan_cache_size], default 128;
    [0] disables caching entirely). Per-shape call statistics survive
    eviction and feed [citus_stat_statements()].

    This module is the pure data structure: no metrics, no planning.
    Shape analysis is {!Planner.analyze_shape}; skeleton construction,
    cached dispatch and the [plancache.*] metric emission live in
    [Api]. *)

type group_plan = {
  gp_shard : int;  (** anchor shard id of this group *)
  gp_stmt : Sqlfront.Ast.statement;
      (** shape rewritten to this group's shard names, params unbound *)
  gp_sql : string;  (** cached per-shard deparse of [gp_stmt] *)
}

type entry = {
  e_key : string;  (** normalized shape text (deparse, params unbound) *)
  e_shape : Planner.shape;
  e_version : int;  (** {!Metadata.version} when the skeleton was built *)
  e_groups : (int * group_plan) list;  (** group index -> skeleton *)
  mutable e_tick : int;  (** LRU recency stamp *)
}

(** Per-shape call accounting for [citus_stat_statements()]; kept
    separately from {!entry} so eviction does not erase history. *)
type stat = {
  st_fingerprint : string;  (** stable 8-hex shape id *)
  mutable st_tier : string;
      (** planner tier slug once cached; ["-"] until first build *)
  mutable st_calls : int;
  mutable st_hits : int;
  mutable st_builds : int;  (** cache fills: initial plans + revalidations *)
  mutable st_bypass : int;  (** EXECUTEs re-planned per call (uncacheable) *)
}

type t

val create : unit -> t

(** Stable 8-hex fingerprint of a shape key (deterministic across runs). *)
val fingerprint : string -> string

(** Shapes currently cached (the [plancache.entries] gauge). *)
val size : t -> int

type lookup =
  | Hit of entry  (** valid skeleton; LRU recency bumped *)
  | Stale  (** entry existed but its metadata version moved: removed *)
  | Miss

val find : t -> key:string -> version:int -> lookup

(** Insert under the LRU bound; evicts least-recently-used entries past
    [max_size] and returns how many were dropped. [max_size <= 0] stores
    nothing. *)
val store : t -> max_size:int -> entry -> int

(** The (created-on-demand) statistics record of a shape. *)
val stat : t -> key:string -> stat

(** All shape statistics, sorted by shape text — the deterministic row
    order of [citus_stat_statements()]. *)
val stats : t -> (string * stat) list
