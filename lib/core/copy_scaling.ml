let err fmt =
  Printf.ksprintf (fun m -> raise (Engine.Instance.Session_error m)) fmt

(* Per-node batch dispatch through the session's pools, inside the
   transaction if one is open (so COPY participates in 2PC). *)
let connection_to (t : State.t) st session node_name =
  let node = Cluster.Topology.find_node t.State.cluster node_name in
  let conn =
    match State.pool_of st node_name with
    | conn :: _ -> conn
    | [] ->
      (match State.checkout t st ~force:true node with
       | Some c -> c
       | None -> assert false)
  in
  if Engine.Instance.in_transaction session
     && not (List.memq conn st.State.txn_conns)
  then begin
    ignore (Exec.on_conn_exn t conn "BEGIN");
    st.State.txn_conns <- conn :: st.State.txn_conns
  end;
  conn

(* Ship one batch to every active replica of [shard]. A replica that fails
   is marked Inactive — together with its colocated siblings — as long as
   at least one replica took the batch; with no survivors the COPY fails. *)
let copy_replicated (t : State.t) st session ~(shard : Metadata.shard)
    ~shard_table ~columns lines =
  let nodes = Metadata.placements t.State.metadata shard.Metadata.shard_id in
  let copied = ref None and failed = ref [] in
  List.iter
    (fun node ->
      try
        if not (State.reachable t node) then
          raise (State.Network_error (node ^ " is unreachable"));
        let conn = connection_to t st session node in
        if Engine.Instance.in_transaction session then begin
          (* later statements in this transaction must find the
             uncommitted rows: record shard-group affinity (§3.6.1) *)
          let key = (node, shard.Metadata.index_in_colocation) in
          if not (List.mem_assoc key st.State.affinity) then
            st.State.affinity <- (key, conn) :: st.State.affinity
        end;
        let n = Cluster.Connection.copy conn ~table:shard_table ~columns lines in
        Health.record_success t.State.health node;
        if !copied = None then copied := Some n
      with State.Network_error _ | Cluster.Connection.Node_unavailable _ ->
        Health.record_failure t.State.health node;
        failed := node :: !failed)
    nodes;
  match !copied with
  | None ->
    raise
      (State.Network_error
         (Printf.sprintf "no replica of shard %d reachable during COPY"
            shard.Metadata.shard_id))
  | Some n ->
    List.iter
      (fun node ->
        Adaptive_executor.mark_placement_lost t
          ~shard_id:shard.Metadata.shard_id ~node)
      !failed;
    n

let copy_hook (t : State.t) session ~table ~columns lines =
  match Metadata.find t.State.metadata table with
  | None -> None
  | Some dt ->
    let st = State.session_state t session in
    let local = t.State.local.Cluster.Topology.instance in
    let catalog = Engine.Instance.catalog local in
    let tbl =
      match Engine.Catalog.find_table_opt catalog table with
      | Some tbl -> tbl
      | None -> err "relation %s does not exist" table
    in
    (* coordinator-side parse cost: this is the serial part *)
    Engine.Meter.add_copy_rows (Engine.Instance.meter local)
      (List.length lines);
    (match dt.Metadata.kind with
     | Metadata.Reference ->
       let shard =
         match Metadata.shards_of t.State.metadata table with
         | s :: _ -> s
         | [] -> err "reference table %s has no shard" table
       in
       let shard_table = Metadata.shard_name shard in
       let n =
         copy_replicated t st session ~shard ~shard_table ~columns lines
       in
       Some n
     | Metadata.Distributed ->
       let dist_col =
         match dt.Metadata.dist_column with
         | Some c -> c
         | None -> err "relation %s has no distribution column" table
       in
       let col_list =
         match columns with
         | Some cols -> cols
         | None ->
           List.map
             (fun (c : Sqlfront.Ast.column_def) -> c.col_name)
             tbl.Engine.Catalog.columns
       in
       let dist_pos =
         match List.find_index (String.equal dist_col) col_list with
         | Some i -> i
         | None -> err "COPY into %s must include the distribution column" table
       in
       let dist_ty =
         (Engine.Catalog.column_tys tbl).(Engine.Catalog.column_index tbl dist_col)
       in
       (* route each line to its shard *)
       let batches : (int, string list ref) Hashtbl.t = Hashtbl.create 16 in
       List.iter
         (fun line ->
           let fields = String.split_on_char '\t' line in
           let field =
             match List.nth_opt fields dist_pos with
             | Some f -> f
             | None -> err "COPY row is missing the distribution column"
           in
           let v =
             try Datum.of_csv_field dist_ty field
             with Datum.Cast_error m -> err "COPY: %s" m
           in
           if Datum.is_null v then
             err "the distribution column cannot be NULL";
           let shard = Metadata.shard_for_value t.State.metadata ~table v in
           let batch =
             match Hashtbl.find_opt batches shard.Metadata.shard_id with
             | Some b -> b
             | None ->
               let b = ref [] in
               Hashtbl.replace batches shard.Metadata.shard_id b;
               b
           in
           batch := line :: !batch)
         lines;
       let total = ref 0 in
       Hashtbl.iter
         (fun shard_id batch ->
           let shard =
             List.find
               (fun (s : Metadata.shard) -> s.Metadata.shard_id = shard_id)
               (Metadata.shards_of t.State.metadata table)
           in
           total :=
             !total
             + copy_replicated t st session ~shard
                 ~shard_table:(Metadata.shard_name shard)
                 ~columns (List.rev !batch))
         batches;
       Some !total)
