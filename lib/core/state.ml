type consistency = Eventual | Read_your_writes | Snapshot

let consistency_of_string = function
  | "eventual" -> Some Eventual
  | "read_your_writes" -> Some Read_your_writes
  | "snapshot" -> Some Snapshot
  | _ -> None

let consistency_to_string = function
  | Eventual -> "eventual"
  | Read_your_writes -> "read_your_writes"
  | Snapshot -> "snapshot"

type config = {
  mutable pool_size_per_node : int;
  mutable shared_connection_limit : int;
  mutable slow_start_interval : float;
  mutable max_parallel_moves : int;
  mutable binary_protocol : bool;
  mutable statement_timeout : float;
  mutable hedge_threshold : float;
  mutable move_timeout : float;
      (** per-shard-move deadline for the rebalancer (seconds of virtual
          time; 0 = unbounded) *)
  mutable consistency : consistency;
      (** distributed read consistency level (citus.consistency) *)
  mutable plan_cache_size : int;
      (** LRU bound on cached prepared-statement plan shapes
          (citus.plan_cache_size; 0 disables the cache) *)
}

type session_state = {
  skey : string * int;
  mutable pools : (string * Cluster.Connection.t list) list;
  mutable affinity : ((string * int) * Cluster.Connection.t) list;
  mutable txn_conns : Cluster.Connection.t list;
  mutable prepared : (Cluster.Connection.t * string) list;
  mutable dist_xids : (string * int) list;
  mutable commit_hlc : Txn.Hlc.timestamp option;
      (** distributed commit timestamp assigned after a successful
          PREPARE phase; stamped onto every COMMIT PREPARED fan-out *)
}

type t = {
  cluster : Cluster.Topology.t;
  metadata : Metadata.t;
  metasync : Metasync.t;
  local : Cluster.Topology.node;
  config : config;
  health : Health.t;
  sessions : ((string * int), session_state) Hashtbl.t;
  shared_counters : (string, int ref) Hashtbl.t;
  registry : ((string * int), string * int) Hashtbl.t;
  mutable partitioned : string list;
  mutable injected_failures : (string * string) list;
  mutable next_gid_seq : int;
}

exception Network_error of string

exception Txn_replica_lost of string

let default_config () =
  {
    pool_size_per_node = 16;
    shared_connection_limit = 100;
    slow_start_interval = 0.010;
    max_parallel_moves = 4;
    binary_protocol = true;
    statement_timeout = 0.0;
    hedge_threshold = 0.0;
    move_timeout = 0.0;
    consistency = Eventual;
    plan_cache_size = 128;
  }

let create ~cluster ~metadata ~metasync ~local ~registry =
  {
    cluster;
    metadata;
    metasync;
    local;
    config = default_config ();
    health =
      Health.create
        ~metrics:(Cluster.Topology.metrics cluster)
        ~clock:cluster.Cluster.Topology.clock ();
    sessions = Hashtbl.create 64;
    shared_counters = Hashtbl.create 8;
    registry;
    partitioned = [];
    injected_failures = [];
    next_gid_seq = 1;
  }

let session_state t (s : Engine.Instance.session) =
  let key =
    ( Engine.Instance.name (Engine.Instance.session_instance s),
      Engine.Instance.session_id s )
  in
  match Hashtbl.find_opt t.sessions key with
  | Some st -> st
  | None ->
    let st =
      {
        skey = key;
        pools = [];
        affinity = [];
        txn_conns = [];
        prepared = [];
        dist_xids = [];
        commit_hlc = None;
      }
    in
    Hashtbl.replace t.sessions key st;
    st

let counter t node =
  match Hashtbl.find_opt t.shared_counters node with
  | Some r -> r
  | None ->
    let r = ref 0 in
    Hashtbl.replace t.shared_counters node r;
    r

let shared_count t node = !(counter t node)

let pool_of st node =
  Option.value ~default:[] (List.assoc_opt node st.pools)

let set_pool st node conns =
  st.pools <- (node, conns) :: List.remove_assoc node st.pools

(* Open one more connection to [node] if the per-session pool size and the
   cluster-wide shared limit allow it ([force] bypasses both, for the first
   connection a statement cannot do without). *)
let checkout t st ?(force = false) (node : Cluster.Topology.node) =
  let name = node.Cluster.Topology.node_name in
  let existing = pool_of st name in
  let cnt = counter t name in
  let can_open =
    force
    || (List.length existing < t.config.pool_size_per_node
        && !cnt < t.config.shared_connection_limit)
  in
  if can_open then begin
    let conn =
      Cluster.Connection.open_
        ~origin:t.local.Cluster.Topology.node_name t.cluster node
    in
    incr cnt;
    set_pool st name (existing @ [ conn ]);
    Some conn
  end
  else None

let check_reachable t node_name =
  if List.mem node_name t.partitioned then
    raise (Network_error (Printf.sprintf "node %s is unreachable" node_name))

let check_injected t node sql =
  List.iter
    (fun (n, pattern) ->
      if
        String.equal n node
        && Engine.Expr_eval.like_match ~pattern:("%" ^ pattern ^ "%") ~ci:false
             sql
      then
        raise
          (Network_error
             (Printf.sprintf "injected failure on %s for %S" node pattern)))
    t.injected_failures

let node_available t node = Health.available t.health node

(* One cooperative-scheduler run wired to this cluster: ready-queue
   tiebreaks come from the topology's [sched_seed] and every virtual
   clock jump fires the fault plan's tick, so scheduled crashes and
   partitions land between fiber slices at their virtual times. For the
   run's extent the scheduler is also the cluster's ambient one
   ([Topology.with_running_sched]) — [Connection.await] passes injected
   latency as fiber sleeps — and every fiber suspension point draws from
   the fault plan's suspension hazard. *)
let with_sched t f =
  Sim.Sched.run
    ?seed:t.cluster.Cluster.Topology.sched_seed
    ~on_advance:(fun () -> Cluster.Topology.fault_tick t.cluster)
    ~on_suspend:(fun ~node ->
      match t.cluster.Cluster.Topology.fault with
      | Some fault -> Sim.Fault.at_suspension fault ~node
      | None -> 0.0)
    ~clock:t.cluster.Cluster.Topology.clock
    (fun sched ->
      Cluster.Topology.with_running_sched t.cluster sched (fun () -> f sched))

(* Bounded retry for transient network errors against one node. Waits the
   breaker's current backoff on the simulated clock between attempts —
   stretched by a bounded draw from the topology's jitter stream (up to
   +50%) so concurrent retriers against a recovering node spread out
   instead of stampeding in lockstep; still deterministic per seed. *)
let with_retry ?(attempts = 3) t ~node f =
  let rec go n =
    try f ()
    with (Network_error _ | Cluster.Connection.Node_unavailable _) as e ->
      if n <= 1 then raise e
      else begin
        Sim.Clock.advance t.cluster.Cluster.Topology.clock
          (Health.retry_backoff t.health node
          *. (1.0 +. (0.5 *. Cluster.Topology.retry_jitter t.cluster)));
        go (n - 1)
      end
  in
  go (max 1 attempts)

(* Per-node gid namespaces (MX): the coordinating node's name is baked
   into the gid, so any node can tell from a prepared transaction alone
   which coordinator's commit records decide it. Node names
   ("coordinator", "workerN", …) contain no underscores, keeping the
   4-component split unambiguous. *)
let fresh_gid t ~coord_xid =
  let seq = t.next_gid_seq in
  t.next_gid_seq <- seq + 1;
  Printf.sprintf "citus_%s_%d_%d" t.local.Cluster.Topology.node_name coord_xid
    seq

let parse_gid gid =
  match String.split_on_char '_' gid with
  | [ "citus"; node; xid; _seq ] ->
    (match int_of_string_opt xid with
     | Some x -> Some (node, x)
     | None -> None)
  | _ -> None

let inject_failure t ~node ~matching =
  t.injected_failures <- (node, matching) :: t.injected_failures

let clear_failures t = t.injected_failures <- []

let partition_node t name =
  if not (List.mem name t.partitioned) then t.partitioned <- name :: t.partitioned

let heal_node t name =
  t.partitioned <- List.filter (fun n -> not (String.equal n name)) t.partitioned

let reachable t name =
  (not (List.mem name t.partitioned))
  && Cluster.Topology.route_up t.cluster
       ~from_:t.local.Cluster.Topology.node_name ~to_:name

let reset_sessions t =
  Hashtbl.reset t.sessions;
  Hashtbl.reset t.shared_counters

(* A node crashed: its pooled connections are dead, drop them and give
   their slots back to the shared counters. Connections recorded in
   [txn_conns] / [affinity] are deliberately kept — they belong to an
   in-flight distributed transaction, and silently forgetting a
   participant would let the survivors commit without it. The dead
   connection fails the next statement instead, aborting the transaction
   the honest way. *)
let purge_node_conns t name =
  Hashtbl.iter
    (fun _ st ->
      match List.assoc_opt name st.pools with
      | None | Some [] -> ()
      | Some conns ->
        st.pools <- List.remove_assoc name st.pools;
        let cnt = counter t name in
        cnt := max 0 (!cnt - List.length conns))
    t.sessions

(* Leak accounting for the chaos invariants: once every statement has
   completed (or timed out and been cancelled) and all transactions have
   resolved, no session may still pin transaction connections or hold
   un-committed prepared pairs. Pooled idle connections are fine — pools
   exist to be reused. *)
let leaked_txn_conns t =
  Hashtbl.fold
    (fun _ st acc -> acc + List.length st.txn_conns)
    t.sessions 0

let leaked_prepared t =
  Hashtbl.fold (fun _ st acc -> acc + List.length st.prepared) t.sessions 0

(* This extension's own node crashed: every worker holding an open
   transaction for one of our sessions sees its client vanish and rolls
   back server-side (prepared transactions are detached from sessions
   and survive untouched). Then all session bookkeeping dies with us. *)
let crash_local_sessions t =
  Hashtbl.iter
    (fun _ st ->
      List.iter
        (fun conn ->
          Engine.Instance.abort_session (Cluster.Connection.session conn))
        st.txn_conns)
    t.sessions;
  reset_sessions t
