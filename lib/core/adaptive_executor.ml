open Sqlfront

type report = {
  makespan : float;
  connections_used : (string * int) list;
  round_trips : int;
  serial_time : float;
}

let is_write (stmt : Ast.statement) =
  match stmt with
  | Ast.Insert _ | Ast.Update _ | Ast.Delete _ | Ast.Create_index _
  | Ast.Truncate _ | Ast.Alter_table_add_column _ | Ast.Drop_table _
  | Ast.Copy_from _ ->
    true
  | _ -> false

(* Greedy list scheduling of task durations over connections that open at
   k * slow_start (slow start, §3.6.1). Effective connections = those that
   received at least one task. *)
let simulate_timeline ~durations ~slow_start ~max_conns =
  match durations with
  | [] -> (0.0, 0)
  | _ ->
    let n_conns = max 1 (min max_conns (List.length durations)) in
    let next_free =
      Array.init n_conns (fun k -> float_of_int k *. slow_start)
    in
    let used = Array.make n_conns false in
    List.iter
      (fun d ->
        (* earliest-available connection *)
        let best = ref 0 in
        for k = 1 to n_conns - 1 do
          if next_free.(k) < next_free.(!best) then best := k
        done;
        used.(!best) <- true;
        next_free.(!best) <- next_free.(!best) +. d)
      durations;
    (* only connections that ran a task count towards the makespan: an
       unused ramp slot is never actually opened *)
    let makespan = ref 0.0 and effective = ref 0 in
    Array.iteri
      (fun k u ->
        if u then begin
          incr effective;
          if next_free.(k) > !makespan then makespan := next_free.(k)
        end)
      used;
    (!makespan, !effective)

(* Measure the resource demand of running [f] on [node]: meter + buffer
   pool diffs converted to solo elapsed seconds. *)
let measured (node : Cluster.Topology.node) f =
  let inst = node.Cluster.Topology.instance in
  let meter_before = Engine.Meter.read (Engine.Instance.meter inst) in
  let pool_stats_before = Storage.Buffer_pool.stats (Engine.Instance.buffer_pool inst) in
  let result = f () in
  let meter_after = Engine.Meter.read (Engine.Instance.meter inst) in
  let pool_stats_after = Storage.Buffer_pool.stats (Engine.Instance.buffer_pool inst) in
  let meter = Engine.Meter.diff ~after:meter_after ~before:meter_before in
  let misses =
    pool_stats_after.Storage.Buffer_pool.misses
    - pool_stats_before.Storage.Buffer_pool.misses
  in
  let demand =
    Sim.Cost.demand_of ~spec:node.Cluster.Topology.spec ~meter ~misses
  in
  let duration =
    Sim.Cost.solo_elapsed ~spec:node.Cluster.Topology.spec ~parallelism:1 demand
  in
  (result, duration)

let register_backend st_state (t : State.t) conn coord_session =
  match Cluster.Connection.backend_xid conn with
  | Some worker_xid ->
    let node = (Cluster.Connection.node conn).Cluster.Topology.node_name in
    let coord_node =
      Engine.Instance.name (Engine.Instance.session_instance coord_session)
    in
    (match Engine.Instance.current_xid coord_session with
     | Some coord_xid ->
       Hashtbl.replace t.State.registry (node, worker_xid)
         (coord_node, coord_xid);
       st_state.State.dist_xids <-
         (node, worker_xid) :: st_state.State.dist_xids
     | None -> ())
  | None -> ()

(* Pick / open the connection for a task bound to [node_name].

   Affinity is keyed (node, shard-group): inside a transaction, the same
   shard group on the same node always reuses the same connection, so
   uncommitted writes and locks stay visible to later statements. A read
   may additionally reuse a group connection on {e another} replica
   ([exact] = false): after a failover, the replica holding the
   transaction's uncommitted writes is the one that must serve it. *)
let connection_for (t : State.t) st ~in_txn ~exact ~assigned ~node_name
    ~task_group =
  let affinity_exact =
    if task_group >= 0 then
      List.assoc_opt (node_name, task_group) st.State.affinity
    else None
  in
  let affinity_any_replica =
    if in_txn && (not exact) && task_group >= 0 then
      List.find_map
        (fun ((_, g), c) -> if g = task_group then Some c else None)
        st.State.affinity
    else None
  in
  match affinity_exact, affinity_any_replica with
  | Some conn, _ | None, Some conn ->
    Obs.Metrics.inc (Cluster.Topology.metrics t.State.cluster)
      "exec.conn_affinity_reuse";
    conn
  | None, None ->
    let node = Cluster.Topology.find_node t.State.cluster node_name in
    let pool = State.pool_of st node_name in
    (* least-loaded existing connection, else try to open one *)
    let load c =
      List.length (List.filter (fun c' -> c' == c) assigned)
    in
    let pick_existing () =
      match pool with
      | [] -> None
      | first :: rest ->
        Some
          (List.fold_left
             (fun best c -> if load c < load best then c else best)
             first rest)
    in
    let opened fresh =
      (* the slow-start ramp shows up here: each statement may open at
         most a handful of new connections per node, metered so the
         ramp is visible in [citus_stat_counters()] *)
      Obs.Metrics.inc (Cluster.Topology.metrics t.State.cluster)
        "exec.conn_opened";
      fresh
    in
    (match pick_existing () with
     | Some c when load c = 0 -> c
     | maybe_busy ->
       (match State.checkout t st node with
        | Some fresh -> opened fresh
        | None ->
          (match maybe_busy with
           | Some c -> c
           | None -> (
             (* must have at least one connection; a forced checkout
                always opens one *)
             match State.checkout t st ~force:true node with
             | Some fresh -> opened fresh
             | None -> assert false))))

(* Active replicas that can serve [task], planned node first, circuit-open
   nodes last. Falls back to the planned node when the shard is unknown or
   has lost every active placement. *)
let replica_nodes (t : State.t) (task : Plan.task) =
  let fallback = [ task.Plan.task_node ] in
  if task.Plan.task_shard < 0 then fallback
  else
    match Metadata.placements t.State.metadata task.Plan.task_shard with
    | exception Metadata.Catalog_error _ -> fallback
    | nodes ->
      let score n =
        (if State.node_available t n then 0 else 2)
        + if String.equal n task.Plan.task_node then 0 else 1
      in
      List.stable_sort (fun a b -> Int.compare (score a) (score b)) nodes

exception Txn_replica_lost of string

(* A replicated write lost one replica: mark that placement — and its
   colocated siblings on the same node, so router planning stays aligned —
   Inactive until the repair daemon re-copies them. *)
let mark_placement_lost (t : State.t) ~shard_id ~node =
  let meta = t.State.metadata in
  match Metadata.shard_by_id meta shard_id with
  | None -> ()
  | Some shard ->
    List.iter
      (fun (s : Metadata.shard) ->
        match
          Metadata.placement_state_of meta ~shard_id:s.Metadata.shard_id ~node
        with
        | Some Metadata.Active ->
          Metadata.mark_placement meta ~shard_id:s.Metadata.shard_id ~node
            Metadata.Inactive
        | _ -> ())
      (Metadata.colocated_shards meta shard)

(* Withdrawing a failed connection from a transaction discards EVERY
   write the transaction made through it — the rollback (or the crash
   that killed it) undoes them all, not only the failing statement's.
   Any shard group pinned to the connection is therefore stale on that
   node: mark each one Inactive so reads stop landing there until the
   repair daemon re-copies it. A group with no other active replica
   cannot be repaired — committing would silently lose its writes — so
   that aborts the whole transaction ({!Txn_replica_lost}). *)
let withdraw_txn_conn (t : State.t) st conn ~node =
  st.State.txn_conns <- List.filter (fun c -> c != conn) st.State.txn_conns;
  (try ignore (Cluster.Connection.exec conn "ROLLBACK")
   with _ ->
     (* the node just failed; the rollback failing too is expected,
        but count it rather than lose it *)
     Health.record_ignored t.State.health node);
  let groups =
    List.filter_map
      (fun ((n, g), c) ->
        if c == conn && String.equal n node && g >= 0 then Some g else None)
      st.State.affinity
  in
  st.State.affinity <- List.filter (fun (_, c) -> c != conn) st.State.affinity;
  let fatal = ref false in
  if groups <> [] then
    List.iter
      (fun (dt : Metadata.dist_table) ->
        match Metadata.shards_of t.State.metadata dt.Metadata.dt_name with
        | exception Metadata.Not_distributed _ -> ()
        | shards ->
          List.iter
            (fun (s : Metadata.shard) ->
              if
                List.mem s.Metadata.index_in_colocation groups
                && Metadata.placement_state_of t.State.metadata
                     ~shard_id:s.Metadata.shard_id ~node
                   = Some Metadata.Active
              then
                if
                  List.exists
                    (fun n -> not (String.equal n node))
                    (try
                       Metadata.placements t.State.metadata
                         s.Metadata.shard_id
                     with Metadata.Catalog_error _ -> [])
                then mark_placement_lost t ~shard_id:s.Metadata.shard_id ~node
                else fatal := true)
            shards)
      (Metadata.all_tables t.State.metadata);
  if !fatal then raise (Txn_replica_lost node)

let execute (t : State.t) coord_session (tasks : Plan.task list) =
  let st = State.session_state t coord_session in
  let explicit = Engine.Instance.in_transaction coord_session in
  let net_before = Cluster.Topology.net_snapshot t.State.cluster in
  let assigned : Cluster.Connection.t list ref = ref [] in
  let node_durations : (string, float list ref) Hashtbl.t = Hashtbl.create 8 in
  let record_duration node_name duration =
    let durs =
      match Hashtbl.find_opt node_durations node_name with
      | Some r -> r
      | None ->
        let r = ref [] in
        Hashtbl.replace node_durations node_name r;
        r
    in
    durs := duration :: !durs
  in
  (* One attempt of [task] on [node_name]. On Network_error the connection
     is withdrawn from the coordinator transaction (its writes are lost;
     committing the survivors must not touch it) before re-raising. *)
  let run_on (task : Plan.task) node_name =
    let write = is_write task.Plan.task_stmt in
    let needs_txn_block = explicit || write in
    let conn =
      connection_for t st ~in_txn:needs_txn_block ~exact:write
        ~assigned:!assigned ~node_name ~task_group:task.Plan.task_group
    in
    assigned := conn :: !assigned;
    let node = Cluster.Connection.node conn in
    try
      if needs_txn_block && not (List.memq conn st.State.txn_conns) then begin
        ignore (State.exec_on t conn "BEGIN");
        st.State.txn_conns <- conn :: st.State.txn_conns;
        register_backend st t conn coord_session
      end;
      let result, duration =
        (* the fragment span's duration is the cost-model's solo elapsed
           time, not a clock diff: the virtual clock does not advance
           during execution, the duration is what the timeline scheduler
           prices the fragment at *)
        Obs.Trace.with_span
          (Cluster.Topology.trace t.State.cluster)
          ~now:(Cluster.Topology.now t.State.cluster)
          ~node:node.Cluster.Topology.node_name ~kind:"fragment"
          ~tags:
            [
              ("shard", string_of_int task.Plan.task_shard);
              ("group", string_of_int task.Plan.task_group);
            ]
          (fun sp ->
            let result, duration =
              measured node (fun () ->
                  State.exec_ast_on t conn task.Plan.task_stmt)
            in
            Obs.Trace.set_duration sp duration;
            (result, duration))
      in
      Obs.Metrics.observe
        (Cluster.Topology.metrics t.State.cluster)
        "exec.fragment_seconds" duration;
      record_duration node.Cluster.Topology.node_name duration;
      if needs_txn_block && task.Plan.task_group >= 0 then begin
        let key = (node.Cluster.Topology.node_name, task.Plan.task_group) in
        if not (List.mem_assoc key st.State.affinity) then
          st.State.affinity <- (key, conn) :: st.State.affinity
      end;
      result
    with
      (State.Network_error _ | Cluster.Connection.Node_unavailable _) as e ->
      if List.memq conn st.State.txn_conns then
        withdraw_txn_conn t st conn ~node:node.Cluster.Topology.node_name;
      raise e
  in
  let exec_task (task : Plan.task) =
    let candidates = replica_nodes t task in
    if is_write task.Plan.task_stmt && List.length candidates > 1 then begin
      (* statement-based replication (§3.3): the write runs on every
         active replica; replicas that fail are marked Inactive as long as
         at least one replica took the write *)
      let successes = ref [] and failed = ref [] and last_err = ref None in
      List.iter
        (fun node_name ->
          match run_on task node_name with
          | r -> successes := r :: !successes
          | exception
              ((State.Network_error _ | Cluster.Connection.Node_unavailable _)
               as e) ->
            failed := node_name :: !failed;
            last_err := Some e)
        candidates;
      match List.rev !successes, !last_err with
      | [], Some e -> raise e
      | [], None -> assert false (* no success implies a recorded error *)
      | r :: _, _ ->
        List.iter
          (fun node ->
            mark_placement_lost t ~shard_id:task.Plan.task_shard ~node)
          !failed;
        r
    end
    else if (not (is_write task.Plan.task_stmt)) && not explicit then begin
      (* read failover: outside an explicit transaction a lost replica is
         transparent — try the next one; the last candidate gets bounded
         retries with clock backoff *)
      let rec try_nodes = function
        | [] -> assert false
        | [ node_name ] ->
          State.with_retry t ~node:node_name (fun () -> run_on task node_name)
        | node_name :: rest ->
          (match run_on task node_name with
           | r -> r
           | exception
               (State.Network_error _ | Cluster.Connection.Node_unavailable _)
             ->
             try_nodes rest)
      in
      try_nodes candidates
    end
    else
      (* replica_nodes never returns []: it falls back to the planned node *)
      match candidates with
      | [] -> assert false
      | node_name :: _ ->
        if not explicit then
          (* single-placement write: bounded retries, no failover target *)
          State.with_retry t ~node:node_name (fun () -> run_on task node_name)
        else
          (* inside an explicit transaction: one attempt on the planned
             node; failing over mid-transaction would lose uncommitted
             state *)
          run_on task node_name
  in
  let results = List.map exec_task tasks in
  let net_after = Cluster.Topology.net_snapshot t.State.cluster in
  let net = Cluster.Topology.net_diff ~after:net_after ~before:net_before in
  let per_node =
    Hashtbl.fold (fun node durs acc -> (node, List.rev !durs) :: acc)
      node_durations []
  in
  let timelines =
    List.map
      (fun (node, durations) ->
        let makespan, conns =
          simulate_timeline ~durations
            ~slow_start:t.State.config.State.slow_start_interval
            ~max_conns:
              (min t.State.config.State.pool_size_per_node
                 t.State.config.State.shared_connection_limit)
        in
        (node, makespan, conns, List.fold_left ( +. ) 0.0 durations))
      per_node
  in
  let report =
    {
      makespan =
        List.fold_left (fun acc (_, m, _, _) -> Float.max acc m) 0.0 timelines;
      connections_used = List.map (fun (n, _, c, _) -> (n, c)) timelines;
      round_trips = net.Cluster.Topology.round_trips;
      serial_time =
        List.fold_left (fun acc (_, _, _, s) -> acc +. s) 0.0 timelines;
    }
  in
  let m = Cluster.Topology.metrics t.State.cluster in
  Obs.Metrics.inc m ~by:(List.length tasks) "exec.tasks";
  Obs.Metrics.observe m "exec.makespan_seconds" report.makespan;
  List.iter
    (fun (_, c) -> Obs.Metrics.observe m "exec.connections_per_statement"
        (float_of_int c))
    report.connections_used;
  (results, report)
