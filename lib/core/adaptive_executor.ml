open Sqlfront

type report = {
  makespan : float;
  connections_used : (string * int) list;
  conn_opened_at : (string * float list) list;
  round_trips : int;
  serial_time : float;
  node_serial : (string * float) list;
}

let is_write (stmt : Ast.statement) =
  match stmt with
  | Ast.Insert _ | Ast.Update _ | Ast.Delete _ | Ast.Create_index _
  | Ast.Truncate _ | Ast.Alter_table_add_column _ | Ast.Drop_table _
  | Ast.Copy_from _ ->
    true
  | _ -> false

(* Measure the resource demand of running [f] on [node]: meter + buffer
   pool diffs converted to solo elapsed seconds. The computation itself
   is instantaneous on the virtual clock; the executor then {e sleeps}
   its fiber for this duration, which is what advances the clock and
   makes fragment concurrency observable. *)
let measured (node : Cluster.Topology.node) f =
  let inst = node.Cluster.Topology.instance in
  let meter_before = Engine.Meter.read (Engine.Instance.meter inst) in
  let pool_stats_before = Storage.Buffer_pool.stats (Engine.Instance.buffer_pool inst) in
  let result = f () in
  let meter_after = Engine.Meter.read (Engine.Instance.meter inst) in
  let pool_stats_after = Storage.Buffer_pool.stats (Engine.Instance.buffer_pool inst) in
  let meter = Engine.Meter.diff ~after:meter_after ~before:meter_before in
  let misses =
    pool_stats_after.Storage.Buffer_pool.misses
    - pool_stats_before.Storage.Buffer_pool.misses
  in
  let demand =
    Sim.Cost.demand_of ~spec:node.Cluster.Topology.spec ~meter ~misses
  in
  let duration =
    Sim.Cost.solo_elapsed ~spec:node.Cluster.Topology.spec ~parallelism:1 demand
  in
  (result, duration)

let register_backend st_state (t : State.t) conn coord_session =
  match Cluster.Connection.backend_xid conn with
  | Some worker_xid ->
    let node = (Cluster.Connection.node conn).Cluster.Topology.node_name in
    let coord_node =
      Engine.Instance.name (Engine.Instance.session_instance coord_session)
    in
    (match Engine.Instance.current_xid coord_session with
     | Some coord_xid ->
       Hashtbl.replace t.State.registry (node, worker_xid)
         (coord_node, coord_xid);
       st_state.State.dist_xids <-
         (node, worker_xid) :: st_state.State.dist_xids
     | None -> ())
  | None -> ()

(* Active replicas that can serve [task], planned node first, circuit-open
   nodes last. Falls back to the planned node when the shard is unknown or
   has lost every active placement. *)
let replica_nodes (t : State.t) (task : Plan.task) =
  let fallback = [ task.Plan.task_node ] in
  if task.Plan.task_shard < 0 then fallback
  else
    match Metadata.placements t.State.metadata task.Plan.task_shard with
    | exception Metadata.Catalog_error _ -> fallback
    | nodes ->
      let score n =
        (if State.node_available t n then 0 else 2)
        + if String.equal n task.Plan.task_node then 0 else 1
      in
      List.stable_sort (fun a b -> Int.compare (score a) (score b)) nodes

(* A replicated write lost one replica: mark that placement — and its
   colocated siblings on the same node, so router planning stays aligned —
   Inactive until the repair daemon re-copies them. *)
let mark_placement_lost (t : State.t) ~shard_id ~node =
  let meta = t.State.metadata in
  match Metadata.shard_by_id meta shard_id with
  | None -> ()
  | Some shard ->
    List.iter
      (fun (s : Metadata.shard) ->
        match
          Metadata.placement_state_of meta ~shard_id:s.Metadata.shard_id ~node
        with
        | Some Metadata.Active ->
          Metasync.mark_placement t.State.metasync
            ~shard_id:s.Metadata.shard_id ~node Metadata.Inactive
        | _ -> ())
      (Metadata.colocated_shards meta shard)

(* Withdrawing a failed connection from a transaction discards EVERY
   write the transaction made through it — the rollback (or the crash
   that killed it) undoes them all, not only the failing statement's.
   Any shard group pinned to the connection is therefore stale on that
   node: mark each one Inactive so reads stop landing there until the
   repair daemon re-copies it. A group with no other active replica
   cannot be repaired — committing would silently lose its writes — so
   that aborts the whole transaction ({!State.Txn_replica_lost}). *)
let withdraw_txn_conn (t : State.t) st conn ~node =
  st.State.txn_conns <- List.filter (fun c -> c != conn) st.State.txn_conns;
  (* post, never await: the node just failed, and a gray failure there
     would make the withdrawal wait out the very stall the failover is
     escaping. The outcome is irrelevant — the writes are discarded
     whether the ROLLBACK lands or the crash already undid them — but
     count the fire-and-forget so monitoring sees the withdrawal. *)
  Exec.post_on_conn conn "ROLLBACK";
  Health.record_ignored t.State.health node;
  let groups =
    List.filter_map
      (fun ((n, g), c) ->
        if c == conn && String.equal n node && g >= 0 then Some g else None)
      st.State.affinity
  in
  st.State.affinity <- List.filter (fun (_, c) -> c != conn) st.State.affinity;
  let fatal = ref false in
  if groups <> [] then
    List.iter
      (fun (dt : Metadata.dist_table) ->
        match Metadata.shards_of t.State.metadata dt.Metadata.dt_name with
        | exception Metadata.Not_distributed _ -> ()
        | shards ->
          List.iter
            (fun (s : Metadata.shard) ->
              if
                List.mem s.Metadata.index_in_colocation groups
                && Metadata.placement_state_of t.State.metadata
                     ~shard_id:s.Metadata.shard_id ~node
                   = Some Metadata.Active
              then
                if
                  List.exists
                    (fun n -> not (String.equal n node))
                    (try
                       Metadata.placements t.State.metadata
                         s.Metadata.shard_id
                     with Metadata.Catalog_error _ -> [])
                then mark_placement_lost t ~shard_id:s.Metadata.shard_id ~node
                else fatal := true)
            shards)
      (Metadata.all_tables t.State.metadata);
  if !fatal then raise (State.Txn_replica_lost node)

(* Per-statement, per-node pool accounting for the cooperative
   scheduler: which connections are running a fragment right now, how
   many slow-start ramp slots the statement has committed to, and the
   virtual times at which it actually opened new connections. *)
type stmt_pool = {
  sp_node : Cluster.Topology.node;
  mutable sp_busy : Cluster.Connection.t list;
  mutable sp_ramp : int;
  mutable sp_opened_at : float list;  (* reverse order *)
  mutable sp_used : Cluster.Connection.t list;
  sp_cond : Sim.Sched.cond;
}

let execute (t : State.t) coord_session (tasks : Plan.task list) =
  let st = State.session_state t coord_session in
  let explicit = Engine.Instance.in_transaction coord_session in
  let net_before = Cluster.Topology.net_snapshot t.State.cluster in
  let m = Cluster.Topology.metrics t.State.cluster in
  let trace = Cluster.Topology.trace t.State.cluster in
  let clock = t.State.cluster.Cluster.Topology.clock in
  let started_at = Sim.Clock.now clock in
  (* statement_timeout: one absolute deadline for the whole statement,
     computed up front and threaded through every fragment await and
     modeled-cost sleep — the statement completes or fails typed within
     deadline + one suspension of virtual time *)
  let deadline =
    let timeout = t.State.config.State.statement_timeout in
    if timeout > 0.0 then Some (started_at +. timeout) else None
  in
  let hedge_threshold = t.State.config.State.hedge_threshold in
  (* Distributed read consistency (citus.consistency): one snapshot
     token per statement, computed before any fragment runs and carried
     by every read dispatch — so a scatter-gather read observes one
     cluster-wide cut instead of each fragment taking its own. Writes
     always run at [Latest]; their visibility is governed by 2PC commit
     timestamps, not by the reader's mode. *)
  let snapshot_mode =
    match t.State.config.State.consistency with
    | State.Eventual -> None
    | State.Read_your_writes -> Some Txn.Snapshot.Resolving
    | State.Snapshot ->
      Some
        (Txn.Snapshot.At
           (Txn.Hlc.now
              (Cluster.Topology.hlc t.State.cluster
                 t.State.local.Cluster.Topology.node_name)))
  in
  let multi_fragment = match tasks with _ :: _ :: _ -> true | _ -> false in
  (match snapshot_mode with
   | Some _
     when List.exists
            (fun (task : Plan.task) -> not (is_write task.Plan.task_stmt))
            tasks ->
     Obs.Metrics.inc m Obs.Metric_names.snapshot_reads
   | _ -> ());
  (* fragment spans are created from interleaved fibers: the parent is
     captured here, before any fiber exists, never from the open-span
     stack another fiber may be mutating *)
  let parent_span = Obs.Trace.current trace in
  let slow_start = t.State.config.State.slow_start_interval in
  let pools : (string, stmt_pool) Hashtbl.t = Hashtbl.create 8 in
  let pool_for node_name =
    match Hashtbl.find_opt pools node_name with
    | Some p -> p
    | None ->
      let p =
        {
          sp_node = Cluster.Topology.find_node t.State.cluster node_name;
          sp_busy = [];
          sp_ramp = 0;
          sp_opened_at = [];
          sp_used = [];
          sp_cond = Sim.Sched.make_cond ();
        }
      in
      Hashtbl.replace pools node_name p;
      p
  in
  let node_durations : (string, float ref) Hashtbl.t = Hashtbl.create 8 in
  let record_duration node d =
    match Hashtbl.find_opt node_durations node with
    | Some r -> r := !r +. d
    | None -> Hashtbl.replace node_durations node (ref d)
  in
  (* Pick / open the connection for a task bound to [node_name] — the
     §3.6.1 pool discipline, enforced against genuinely concurrent
     fibers.

     Affinity is keyed (node, shard-group): inside a transaction, the
     same shard group on the same node always reuses the same
     connection, so uncommitted writes and locks stay visible to later
     statements. A read may additionally reuse a group connection on
     {e another} replica ([exact] = false): after a failover, the
     replica holding the transaction's uncommitted writes is the one
     that must serve it.

     A connection already running another fiber's fragment is busy; the
     fiber waits for a release instead of interleaving two statements on
     one connection. New connections open at
     [started_at + k * slow_start_interval] on the virtual clock (slow
     start, §3.6.1): the k-th ramp slot sleeps until its gate before the
     checkout, so the ramp is a real timeline, not a reconstruction. *)
  let acquire sched ~in_txn ~exact ~node_name ~task_group =
    let pool = pool_for node_name in
    let take conn =
      pool.sp_busy <- conn :: pool.sp_busy;
      if not (List.memq conn pool.sp_used) then
        pool.sp_used <- conn :: pool.sp_used;
      conn
    in
    let open_new ~forced =
      let fresh =
        match State.checkout t st ~force:forced pool.sp_node with
        | Some fresh -> Some fresh
        | None -> None
      in
      match fresh with
      | Some fresh ->
        Obs.Metrics.inc m Obs.Metric_names.exec_conn_opened;
        pool.sp_opened_at <- Sim.Clock.now clock :: pool.sp_opened_at;
        Some (take fresh)
      | None -> None
    in
    let rec go () =
      let affinity_exact =
        if task_group >= 0 then
          List.assoc_opt (node_name, task_group) st.State.affinity
        else None
      in
      let affinity_any_replica =
        if in_txn && (not exact) && task_group >= 0 then
          List.find_map
            (fun ((_, g), c) -> if g = task_group then Some c else None)
            st.State.affinity
        else None
      in
      match affinity_exact, affinity_any_replica with
      | Some conn, _ | None, Some conn ->
        if List.memq conn pool.sp_busy then begin
          (* pinned to a connection another fiber holds: wait for it *)
          Sim.Sched.wait sched pool.sp_cond;
          go ()
        end
        else begin
          Obs.Metrics.inc m Obs.Metric_names.exec_conn_affinity_reuse;
          take conn
        end
      | None, None -> (
        let existing = State.pool_of st node_name in
        let free =
          List.filter (fun c -> not (List.memq c pool.sp_busy)) existing
        in
        match free with
        | conn :: _ -> take conn
        | [] ->
          let within_limits =
            List.length existing < t.State.config.State.pool_size_per_node
            && State.shared_count t node_name
               < t.State.config.State.shared_connection_limit
          in
          if within_limits then begin
            (* the k-th new connection may open at its ramp gate; until
               then, race the gate against a connection freed by another
               fiber — whichever comes first. The slot count only grows
               when a connection actually opens, so a statement drained
               by its existing connections never ramps further. *)
            let gate =
              started_at +. (float_of_int pool.sp_ramp *. slow_start)
            in
            if Sim.Clock.now clock >= gate then begin
              pool.sp_ramp <- pool.sp_ramp + 1;
              match open_new ~forced:false with
              | Some conn -> conn
              | None ->
                (* raced to a limit since the check above *)
                Sim.Sched.wait sched pool.sp_cond;
                go ()
            end
            else begin
              Sim.Sched.timed_wait sched pool.sp_cond ~until:gate;
              go ()
            end
          end
          else if existing = [] then begin
            (* a statement cannot do without at least one connection;
               a forced checkout always opens one *)
            match open_new ~forced:true with
            | Some conn -> conn
            | None -> assert false
          end
          else begin
            (* at the limit and every connection busy: wait for one *)
            Sim.Sched.wait sched pool.sp_cond;
            go ()
          end)
    in
    go ()
  in
  let release sched ~node_name conn =
    let pool = pool_for node_name in
    pool.sp_busy <- List.filter (fun c -> not (c == conn)) pool.sp_busy;
    Sim.Sched.broadcast sched pool.sp_cond
  in
  (* One attempt of [task] on [node_name]. On Network_error the connection
     is withdrawn from the coordinator transaction (its writes are lost;
     committing the survivors must not touch it) before re-raising. A
     read that lands in a 2PC in-doubt window ([Txn.Manager.In_doubt])
     first tries to resolve the prepared transaction from the
     coordinator's commit records, then re-reads — backing off on the
     virtual clock, bounded by the statement deadline. *)
  let run_on sched (task : Plan.task) node_name =
    let write = is_write task.Plan.task_stmt in
    let snapshot = if write then None else snapshot_mode in
    let needs_txn_block = explicit || write in
    let conn =
      acquire sched ~in_txn:needs_txn_block ~exact:write ~node_name
        ~task_group:task.Plan.task_group
    in
    let node = Cluster.Connection.node conn in
    Fun.protect
      ~finally:(fun () -> release sched ~node_name conn)
      (fun () ->
        (* Pool hygiene: a checkout whose last known backend status (the
           ReadyForQuery byte every client tracks) says "in a transaction
           block" — but which is not part of THIS session's transaction —
           is an orphan: a failed statement's fire-and-forget ROLLBACK
           never landed. Reset it before use, or a read fragment would
           run inside the orphan and see its uncommitted writes as its
           own ([my_xid]), tearing the snapshot. *)
        if
          Cluster.Connection.in_transaction conn
          && not (List.memq conn st.State.txn_conns)
        then begin
          Obs.Metrics.inc m Obs.Metric_names.exec_stale_txn_resets;
          try ignore (Exec.on_conn_exn ?deadline t conn "ROLLBACK")
          with _ ->
            Health.record_ignored t.State.health node.Cluster.Topology.node_name
        end;
        let rec attempt backoff =
        try
          if needs_txn_block && not (List.memq conn st.State.txn_conns) then begin
            (* Register before the round trip's outcome is known: a BEGIN
               whose reply is late (Timed_out) or lost (Drop_reply) still
               executed on the worker, and an unregistered connection
               sitting in a transaction block would go back to the pool
               dirty — failing every later statement on it with "already
               in a transaction block". Registration guarantees the
               session's COMMIT/ROLLBACK fan-out (or the Network_error
               withdrawal below) sweeps it whatever the BEGIN's fate;
               [register_backend] is a no-op if the BEGIN never ran. *)
            st.State.txn_conns <- conn :: st.State.txn_conns;
            Fun.protect
              ~finally:(fun () -> register_backend st t conn coord_session)
              (fun () -> ignore (Exec.on_conn_exn ?deadline t conn "BEGIN"))
          end;
          let result, duration =
            Obs.Trace.with_span_parent trace ~parent:parent_span
              ~now:(Cluster.Topology.now t.State.cluster)
              ~node:node.Cluster.Topology.node_name ~kind:"fragment"
              ~tags:
                ([
                   ("shard", string_of_int task.Plan.task_shard);
                   ("group", string_of_int task.Plan.task_group);
                 ]
                @
                match snapshot with
                | Some mode ->
                  [
                    ( "snapshot",
                      Format.asprintf "%a" Txn.Snapshot.pp_read_mode mode );
                  ]
                | None -> [])
              (fun _sp ->
                let result, duration =
                  measured node (fun () ->
                      Exec.ast_on_conn_exn ?deadline ?snapshot t conn
                        task.Plan.task_stmt)
                in
                (* occupy the connection for the fragment's modeled cost:
                   this sleep advances the virtual clock, so the span's
                   start/end and the statement's makespan are genuine
                   measurements *)
                (match deadline with
                 | Some dl when Sim.Clock.now clock +. duration > dl ->
                   (* the modeled cost overruns the statement deadline:
                      occupy the connection up to the deadline, then
                      cancel the statement PostgreSQL-style — slow, not
                      dead, so the breaker's latency trip is fed rather
                      than its failure counter *)
                   Sim.Sched.sleep_until sched dl;
                   Health.record_slow t.State.health
                     node.Cluster.Topology.node_name;
                   raise
                     (Cluster.Connection.Timed_out
                        { node = node.Cluster.Topology.node_name;
                          deadline = dl })
                 | _ -> Sim.Sched.sleep sched duration);
                (result, duration))
          in
          Obs.Metrics.observe m Obs.Metric_names.exec_fragment_seconds duration;
          record_duration node.Cluster.Topology.node_name duration;
          if needs_txn_block && task.Plan.task_group >= 0 then begin
            let key = (node.Cluster.Topology.node_name, task.Plan.task_group) in
            if not (List.mem_assoc key st.State.affinity) then
              st.State.affinity <- (key, conn) :: st.State.affinity
          end;
          result
        with
        | (State.Network_error _ | Cluster.Connection.Node_unavailable _) as e
          ->
          if List.memq conn st.State.txn_conns then
            withdraw_txn_conn t st conn ~node:node.Cluster.Topology.node_name;
          raise e
        | Cluster.Connection.Timed_out _ as e ->
          (* deadline expiry is a statement abort, not a connection
             failure: the connection stays healthy (its reply merely
             arrives late) and goes back to the pool via [release] *)
          Obs.Metrics.inc m Obs.Metric_names.exec_timeouts;
          raise e
        | Txn.Manager.In_doubt { gid; xid = _ } ->
          (* the fragment read into a 2PC in-doubt window: a prepared
             transaction whose outcome this snapshot must know. Resolve
             it Percolator-style from the coordinator's commit records;
             if the 2PC is genuinely still in flight, back off (letting
             the committing fibers run) and re-read. *)
          Obs.Metrics.inc m Obs.Metric_names.snapshot_indoubt_waits;
          (match Twopc.resolve_in_doubt t conn ~gid with
           | `Resolved -> ()
           | `Pending -> (
             match deadline with
             | Some dl when Sim.Clock.now clock +. backoff > dl ->
               (* still unresolved at the statement deadline: slow, not
                  dead — same typed cancellation as a late reply *)
               Sim.Sched.sleep_until sched dl;
               Health.record_slow t.State.health
                 node.Cluster.Topology.node_name;
               Obs.Metrics.inc m Obs.Metric_names.exec_timeouts;
               raise
                 (Cluster.Connection.Timed_out
                    { node = node.Cluster.Topology.node_name; deadline = dl })
             | _ -> Sim.Sched.sleep sched backoff));
          Obs.Metrics.inc m Obs.Metric_names.snapshot_read_retries;
          attempt (Float.min (backoff *. 2.0) 0.016)
        in
        attempt 0.001)
  in
  let exec_task sched (task : Plan.task) =
    let candidates = replica_nodes t task in
    if is_write task.Plan.task_stmt && List.length candidates > 1 then begin
      (* statement-based replication (§3.3): the write runs on every
         active replica; replicas that fail are marked Inactive as long as
         at least one replica took the write *)
      let successes = ref [] and failed = ref [] and last_err = ref None in
      List.iter
        (fun node_name ->
          match run_on sched task node_name with
          | r -> successes := r :: !successes
          | exception
              ((State.Network_error _ | Cluster.Connection.Node_unavailable _)
               as e) ->
            failed := node_name :: !failed;
            last_err := Some e)
        candidates;
      match List.rev !successes, !last_err with
      | [], Some e -> raise e
      | [], None -> assert false (* no success implies a recorded error *)
      | r :: _, _ ->
        List.iter
          (fun node ->
            mark_placement_lost t ~shard_id:task.Plan.task_shard ~node)
          !failed;
        r
    end
    else if (not (is_write task.Plan.task_stmt)) && not explicit then begin
      (* read failover: outside an explicit transaction a lost replica is
         transparent — try the next one; the last candidate gets bounded
         retries with clock backoff *)
      let rec try_nodes = function
        | [] -> assert false
        | [ node_name ] ->
          State.with_retry t ~node:node_name (fun () ->
              run_on sched task node_name)
        | node_name :: rest ->
          (match run_on sched task node_name with
           | r -> r
           | exception
               (State.Network_error _ | Cluster.Connection.Node_unavailable _)
             ->
             try_nodes rest)
      in
      match candidates with
      | primary :: (secondary :: _ as rest) when hedge_threshold > 0.0 ->
        (* hedged read: give the preferred replica [hedge_threshold] of
           exclusive virtual time; if it has neither answered nor failed
           by then it is slow, not dead — launch the same read on the
           next replica and let the first response win. Only reads
           hedge: duplicating one has no side effects. The loser is
           cancelled and drained, so its connection is back in the pool
           before the statement returns. *)
        let attempt node_name =
          Sim.Sched.spawn sched ~node:node_name (fun () ->
              run_on sched task node_name)
        in
        let f1 = attempt primary in
        let hedge_at =
          let h = Sim.Clock.now clock +. hedge_threshold in
          match deadline with Some dl -> Float.min h dl | None -> h
        in
        (match Sim.Sched.await_result sched ~deadline:hedge_at f1 with
         | Ok r -> r
         | Error Sim.Sched.Timed_out ->
           Obs.Metrics.inc m Obs.Metric_names.exec_hedged_reads;
           if multi_fragment then
             Obs.Metrics.inc m Obs.Metric_names.snapshot_hedged_fragments;
           Health.record_slow t.State.health primary;
           let f2 = attempt secondary in
           let idx, first = Sim.Sched.await_any sched [ f1; f2 ] in
           let other = if idx = 0 then f2 else f1 in
           (match first with
            | Ok r ->
              (* first response wins; cancelling and draining the loser
                 runs its cleanup (connection release) to completion
                 inside this statement *)
              Sim.Sched.cancel sched other;
              (* bounded: the loser was just cancelled, so it completes
                 at its next suspension point; a ?deadline here would
                 abandon it mid-cleanup instead *)
              ignore (Sim.Sched.await_result sched other [@lint.unbounded]);
              if idx = 1 then begin
                Obs.Metrics.inc m Obs.Metric_names.exec_hedge_wins;
                if multi_fragment then
                  Obs.Metrics.inc m
                    Obs.Metric_names.snapshot_fragment_hedge_wins
              end;
              r
            | Error _ ->
              (* the first finisher failed; fall back to whatever the
                 surviving attempt produces — bounded: every round trip
                 inside the attempt already carries the statement
                 deadline threaded through run_on *)
              (match Sim.Sched.await_result sched other [@lint.unbounded] with
               | Ok r ->
                 if idx = 0 then begin
                   Obs.Metrics.inc m Obs.Metric_names.exec_hedge_wins;
                   if multi_fragment then
                     Obs.Metrics.inc m
                       Obs.Metric_names.snapshot_fragment_hedge_wins
                 end;
                 r
               | Error e -> raise e))
         | Error
             (State.Network_error _ | Cluster.Connection.Node_unavailable _)
           ->
           (* hard failure before the hedge fired: ordinary failover *)
           try_nodes rest
         | Error e -> raise e)
      | _ -> try_nodes candidates
    end
    else
      (* replica_nodes never returns []: it falls back to the planned node *)
      match candidates with
      | [] -> assert false
      | node_name :: _ ->
        if not explicit then
          (* single-placement write: bounded retries, no failover target *)
          State.with_retry t ~node:node_name (fun () ->
              run_on sched task node_name)
        else
          (* inside an explicit transaction: one attempt on the planned
             node; failing over mid-transaction would lose uncommitted
             state *)
          run_on sched task node_name
  in
  (* Tasks that pin the same transaction-affine (node, shard-group) key
     must not race to establish the affinity connection: chain them into
     one fiber, in plan order. Everything else gets its own fiber. *)
  let chain_key (task : Plan.task) =
    if (explicit || is_write task.Plan.task_stmt) && task.Plan.task_group >= 0
    then Some (task.Plan.task_node, task.Plan.task_group)
    else None
  in
  let units =
    let chains : (string * int, (int * Plan.task) list ref) Hashtbl.t =
      Hashtbl.create 8
    in
    List.rev
      (List.fold_left
         (fun acc (i, task) ->
           match chain_key task with
           | None -> ref [ (i, task) ] :: acc
           | Some key -> (
             match Hashtbl.find_opt chains key with
             | Some r ->
               r := (i, task) :: !r;
               acc
             | None ->
               let r = ref [ (i, task) ] in
               Hashtbl.replace chains key r;
               r :: acc))
         []
         (List.mapi (fun i task -> (i, task)) tasks))
  in
  let results =
    match tasks with
    | [] -> []
    | _ ->
      let collected =
        State.with_sched t (fun sched ->
            let fibers =
              List.filter_map
                (fun unit_ref ->
                  match List.rev !unit_ref with
                  | [] -> None
                  | ((_, first) : int * Plan.task) :: _ as unit_tasks ->
                    Some
                      (Sim.Sched.spawn sched ~node:first.Plan.task_node
                         (fun () ->
                           List.map
                             (fun (i, task) -> (i, exec_task sched task))
                             unit_tasks)))
                units
            in
            List.concat (Sim.Sched.join_all sched fibers))
      in
      List.map snd
        (List.sort (fun (a, _) (b, _) -> Int.compare a b) collected)
  in
  let net_after = Cluster.Topology.net_snapshot t.State.cluster in
  let net = Cluster.Topology.net_diff ~after:net_after ~before:net_before in
  let by_node = fun (a, _) (b, _) -> String.compare a b in
  let node_serial =
    List.sort by_node
      (Hashtbl.fold (fun node r acc -> (node, !r) :: acc) node_durations [])
  in
  let report =
    {
      makespan = Sim.Clock.now clock -. started_at;
      connections_used =
        List.sort by_node
          (Hashtbl.fold
             (fun node p acc ->
               match List.length p.sp_used with
               | 0 -> acc
               | n -> (node, n) :: acc)
             pools []);
      conn_opened_at =
        List.sort by_node
          (Hashtbl.fold
             (fun node p acc ->
               match p.sp_opened_at with
               | [] -> acc
               | l -> (node, List.rev l) :: acc)
             pools []);
      round_trips = net.Cluster.Topology.round_trips;
      serial_time = List.fold_left (fun acc (_, s) -> acc +. s) 0.0 node_serial;
      node_serial;
    }
  in
  Obs.Metrics.inc m ~by:(List.length tasks) Obs.Metric_names.exec_tasks;
  Obs.Metrics.observe m Obs.Metric_names.exec_makespan_seconds report.makespan;
  List.iter
    (fun (_, c) ->
      Obs.Metrics.observe m Obs.Metric_names.exec_connections_per_statement (float_of_int c))
    report.connections_used;
  (results, report)
