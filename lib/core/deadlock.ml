type vertex =
  | Dist_txn of string * int
  | Local_txn of string * int

let vertex_to_string = function
  | Dist_txn (n, x) -> Printf.sprintf "dist:%s/%d" n x
  | Local_txn (n, x) -> Printf.sprintf "local:%s/%d" n x

let vertex_of (t : State.t) node xid =
  match Hashtbl.find_opt t.State.registry (node, xid) with
  | Some (coord_node, coord_xid) -> Dist_txn (coord_node, coord_xid)
  | None -> Local_txn (node, xid)

let gather_edges (t : State.t) =
  List.concat_map
    (fun (node : Cluster.Topology.node) ->
      let name = node.Cluster.Topology.node_name in
      if not (State.reachable t name) then []
      else begin
        (* polling a node for its lock graph costs a round trip *)
        t.State.cluster.Cluster.Topology.net.Cluster.Topology.round_trips <-
          t.State.cluster.Cluster.Topology.net.Cluster.Topology.round_trips + 1;
        let mgr = Engine.Instance.txn_manager node.Cluster.Topology.instance in
        Txn.Lock.wait_edges (Txn.Manager.locks mgr)
        |> List.filter_map (fun (waiter, holder) ->
               let v1 = vertex_of t name waiter in
               let v2 = vertex_of t name holder in
               (* merging collapses self-edges within one distributed txn *)
               if v1 = v2 then None else Some (v1, v2))
      end)
    (Cluster.Topology.all_nodes t.State.cluster)

let find_cycle edges =
  let successors v =
    List.filter_map (fun (a, b) -> if a = v then Some b else None) edges
  in
  let starts = List.sort_uniq compare (List.map fst edges) in
  let rec dfs path v =
    if List.mem v path then
      (* path holds most-recent first: the cycle is everything from the
         head down to (and including) the previous occurrence of v *)
      let rec upto acc = function
        | [] -> acc
        | x :: rest -> if x = v then x :: acc else upto (x :: acc) rest
      in
      Some (upto [] path)
    else
      let rec try_successors = function
        | [] -> None
        | s :: rest ->
          (match dfs (v :: path) s with
           | Some c -> Some c
           | None -> try_successors rest)
      in
      try_successors (successors v)
  in
  List.find_map (fun s -> dfs [] s) starts

let cancel (t : State.t) victim =
  match victim with
  | Local_txn _ -> ()
  | Dist_txn (coord_node, coord_xid) ->
    (* abort the member worker transactions *)
    Hashtbl.iter
      (fun (node, wxid) (cn, cx) ->
        if String.equal cn coord_node && cx = coord_xid then begin
          let n = Cluster.Topology.find_node t.State.cluster node in
          let mgr = Engine.Instance.txn_manager n.Cluster.Topology.instance in
          if Txn.Manager.is_active mgr wxid then Txn.Manager.abort mgr wxid
        end)
      t.State.registry;
    (* abort the coordinator-side transaction; its session will observe the
       abort on its next statement *)
    let n = Cluster.Topology.find_node t.State.cluster coord_node in
    let mgr = Engine.Instance.txn_manager n.Cluster.Topology.instance in
    if Txn.Manager.is_active mgr coord_xid then Txn.Manager.abort mgr coord_xid

let detect_and_cancel (t : State.t) =
  let metrics = Cluster.Topology.metrics t.State.cluster in
  Obs.Metrics.inc metrics Obs.Metric_names.deadlock_rounds;
  Obs.Trace.with_span
    (Cluster.Topology.trace t.State.cluster)
    ~now:(Cluster.Topology.now t.State.cluster)
    ~node:t.State.local.Cluster.Topology.node_name ~kind:"deadlock.round"
  @@ fun sp ->
  let edges = gather_edges t in
  Obs.Trace.add_tag sp "edges" (string_of_int (List.length edges));
  match find_cycle edges with
  | None -> None
  | Some cycle ->
    Obs.Metrics.inc metrics Obs.Metric_names.deadlock_cycles_found;
    let dist_members =
      List.filter_map
        (function Dist_txn (n, x) -> Some (Dist_txn (n, x), x) | Local_txn _ -> None)
        cycle
    in
    (match dist_members with
     | [] -> None
     | first :: rest ->
       (* the youngest distributed transaction has the largest xid *)
       let victim, _ =
         List.fold_left
           (fun (bv, bx) (v, x) -> if x > bx then (v, x) else (bv, bx))
           first rest
       in
       cancel t victim;
       Obs.Metrics.inc metrics Obs.Metric_names.deadlock_cancelled;
       Obs.Trace.add_tag sp "victim" (vertex_to_string victim);
       Some victim)
