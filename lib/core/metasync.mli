(** The metadata-sync layer (Citus MX): replicates the distributed
    catalog to every metadata-synced node so any node can plan
    fast-path/router queries and open 2PC as a coordinator.

    Every catalog mutation must flow through the sanctioned mutators
    below (lint rule L16 flags direct {!Metadata} writes outside this
    module): each one applies to the origin catalog and to every synced
    replica in the same order, keeping the replicas bit-identical —
    shard ids, colocation ids and {!Metadata.version} advance in
    lockstep, so worker-local planning routes like the coordinator and
    the shared plan cache invalidates cluster-wide on every DDL or
    placement change. An op log replays the full history into nodes
    that attach after tables were already distributed. *)

type t

(** [create ~metrics origin] wraps the bootstrap coordinator's catalog.
    Sync writes count against [Obs.Metric_names.mx_metadata_syncs]. *)
val create : metrics:Obs.Metrics.t -> Metadata.t -> t

val origin : t -> Metadata.t

(** [attach t node] creates (or returns) [node]'s catalog replica,
    replaying the op log to catch it up. *)
val attach : t -> string -> Metadata.t

val replica : t -> string -> Metadata.t option

val synced_nodes : t -> string list

(** {2 Sanctioned catalog mutators}

    Same signatures and results as their {!Metadata} counterparts
    (results come from the origin catalog); each call is propagated to
    every synced replica and logged for late joiners. *)

val register_distributed :
  ?replication_factor:int ->
  t ->
  table:string ->
  column:string ->
  ty:Datum.ty ->
  colocate_with:string option ->
  nodes:string list ->
  Metadata.shard list

val register_reference :
  t -> table:string -> nodes:string list -> Metadata.shard

val drop_table : t -> string -> unit

val mark_placement :
  t -> shard_id:int -> node:string -> Metadata.placement_state -> unit

val update_placement :
  t -> shard_id:int -> from_node:string -> to_node:string -> unit

val add_placement : t -> shard_id:int -> node:string -> unit

val replace_shard :
  t -> shard_id:int -> ranges:(int32 * int32) list -> Metadata.shard list

val renumber_colocation : t -> colocation_id:int -> unit

val bump_version : t -> unit
