let commit_records_table = "pg_dist_transaction"

let metrics (t : State.t) = Cluster.Topology.metrics t.State.cluster

(* All 2PC spans carry the coordinator's node name: phases run there,
   fanning out over connections whose statements trace on the workers. *)
let span (t : State.t) ~kind ?tags f =
  Obs.Trace.with_span
    (Cluster.Topology.trace t.State.cluster)
    ~now:(Cluster.Topology.now t.State.cluster)
    ~node:t.State.local.Cluster.Topology.node_name ~kind ?tags f

let admin_session (t : State.t) =
  Engine.Instance.connect t.State.local.Cluster.Topology.instance

let node_name conn = (Cluster.Connection.node conn).Cluster.Topology.node_name

let ensure_commit_records_table (t : State.t) =
  let s = admin_session t in
  ignore
    (Engine.Instance.exec_ast s
       (Sqlfront.Ast.Create_table
          {
            name = commit_records_table;
            columns =
              [
                {
                  Sqlfront.Ast.col_name = "gid";
                  col_ty = Datum.TText;
                  col_default = None;
                  col_not_null = false;
                };
                {
                  (* participant node: a record may only be collected
                     once this node confirms the gid is resolved *)
                  Sqlfront.Ast.col_name = "node";
                  col_ty = Datum.TText;
                  col_default = None;
                  col_not_null = false;
                };
                {
                  (* coordinator-assigned HLC commit timestamp: recovery
                     re-stamps a deferred COMMIT PREPARED at exactly
                     this time, so the visibility fence survives every
                     failure of the commit fan-out *)
                  Sqlfront.Ast.col_name = "ts";
                  col_ty = Datum.TText;
                  col_default = None;
                  col_not_null = false;
                };
              ];
            primary_key = [];
            if_not_exists = true;
            using_columnar = false;
          }))

let insert_commit_records (t : State.t) coord_session ~ts records =
  (* inside the coordinator's own transaction: durable iff it commits *)
  let ctx = Engine.Instance.make_ctx coord_session in
  let ts_text = Txn.Hlc.to_string ts in
  ignore
    (Engine.Executor.run_insert ctx ~table:commit_records_table ~columns:None
       ~source:
         (Sqlfront.Ast.Values
            (List.map
               (fun (gid, node) ->
                 [
                   Sqlfront.Ast.Const (Datum.Text gid);
                   Sqlfront.Ast.Const (Datum.Text node);
                   Sqlfront.Ast.Const (Datum.Text ts_text);
                 ])
               records))
       ~on_conflict_do_nothing:false);
  ignore t

(* MX: a gid's commit records live on its {e origin} coordinator — the
   node named in the gid, which ran the 2PC and wrote the records in its
   local commit transaction. [origin_node] resolves that node when it is
   safe to consult: always for the local node, and for a foreign
   coordinator only while it is reachable (reading a crashed node's
   table would leak durability the network cannot provide — recovery
   leaves those gids pending until the origin returns). *)
let origin_node (t : State.t) origin =
  if String.equal origin t.State.local.Cluster.Topology.node_name then
    Some t.State.local
  else if State.reachable t origin then
    match Cluster.Topology.find_node t.State.cluster origin with
    | node -> Some node
    | exception Invalid_argument _ -> None
  else None

let node_session (node : Cluster.Topology.node) =
  Engine.Instance.connect node.Cluster.Topology.instance

let delete_record_in s gid =
  (* pre-built txn AST nodes: this runs on the commit path of every
     multi-shard write, so it must not parse ("BEGIN" strings included) *)
  ignore (Engine.Instance.exec_ast s Sqlfront.Ast.Begin_txn);
  let ctx = Engine.Instance.make_ctx s in
  (try
     ignore
       (Engine.Executor.run_delete ctx ~table:commit_records_table
          ~where:
            (Some
               (Sqlfront.Ast.Cmp
                  ( Sqlfront.Ast.Eq,
                    Sqlfront.Ast.Column (None, "gid"),
                    Sqlfront.Ast.Const (Datum.Text gid) ))))
   with e ->
     ignore (Engine.Instance.exec_ast s Sqlfront.Ast.Rollback_txn);
     raise e);
  ignore (Engine.Instance.exec_ast s Sqlfront.Ast.Commit_txn)

(* direct executor call: commit-record maintenance is lightweight, not a
   full planned statement *)
let delete_commit_record (t : State.t) gid = delete_record_in (admin_session t) gid

(* Gids reach this query verbatim; going through the executor with a
   [Datum.Text] constant keeps a hostile gid from escaping the string
   literal (no SQL re-parse of interpolated input). *)
let record_exists_in s gid =
  let ctx = Engine.Instance.make_ctx s in
  let _, rows =
    Engine.Executor.run_select ctx
      {
        Sqlfront.Ast.distinct = false;
        projections =
          [ Sqlfront.Ast.Proj (Sqlfront.Ast.Column (None, "gid"), None) ];
        from =
          [ Sqlfront.Ast.Table { name = commit_records_table; alias = None } ];
        where =
          Some
            (Sqlfront.Ast.Cmp
               ( Sqlfront.Ast.Eq,
                 Sqlfront.Ast.Column (None, "gid"),
                 Sqlfront.Ast.Const (Datum.Text gid) ));
        group_by = [];
        having = None;
        order_by = [];
        limit = None;
        offset = None;
      }
  in
  rows <> []

(* The commit record's HLC timestamp (any participant's row — they all
   carry the same stamp). [None] when no record is visible, or for
   legacy rows without one. *)
let record_ts_in s gid =
  let ctx = Engine.Instance.make_ctx s in
  let _, rows =
    Engine.Executor.run_select ctx
      {
        Sqlfront.Ast.distinct = false;
        projections =
          [ Sqlfront.Ast.Proj (Sqlfront.Ast.Column (None, "ts"), None) ];
        from =
          [ Sqlfront.Ast.Table { name = commit_records_table; alias = None } ];
        where =
          Some
            (Sqlfront.Ast.Cmp
               ( Sqlfront.Ast.Eq,
                 Sqlfront.Ast.Column (None, "gid"),
                 Sqlfront.Ast.Const (Datum.Text gid) ));
        group_by = [];
        having = None;
        order_by = [];
        limit = None;
        offset = None;
      }
  in
  match rows with
  | [| Datum.Text ts |] :: _ -> Txn.Hlc.of_string ts
  | _ -> None

let commit_record_count (t : State.t) =
  let s = admin_session t in
  let ctx = Engine.Instance.make_ctx s in
  let _, rows =
    Engine.Executor.run_select ctx
      {
        Sqlfront.Ast.distinct = false;
        projections =
          [
            Sqlfront.Ast.Proj
              ( Sqlfront.Ast.Agg
                  { agg_name = "count"; agg_arg = None; agg_distinct = false },
                None );
          ];
        from =
          [ Sqlfront.Ast.Table { name = commit_records_table; alias = None } ];
        where = None;
        group_by = [];
        having = None;
        order_by = [];
        limit = None;
        offset = None;
      }
  in
  match rows with
  | [ [| Datum.Int n |] ] -> n
  | _ -> 0

let cleanup_session_txn_state (t : State.t) (st : State.session_state) =
  List.iter
    (fun key -> Hashtbl.remove t.State.registry key)
    st.State.dist_xids;
  st.State.dist_xids <- [];
  st.State.txn_conns <- [];
  st.State.prepared <- [];
  st.State.affinity <- [];
  st.State.commit_hlc <- None

(* The commit machinery runs as its own statement: each phase gets a
   fresh [statement_timeout] deadline (when the knob is set), so a
   stalled participant bounds PREPARE / COMMIT PREPARED instead of
   hanging the coordinator. *)
let phase_deadline (t : State.t) =
  let timeout = t.State.config.State.statement_timeout in
  if timeout > 0.0 then
    Some (Sim.Clock.now t.State.cluster.Cluster.Topology.clock +. timeout)
  else None

let pre_commit (t : State.t) coord_session =
  let st = State.session_state t coord_session in
  (* MX accounting: this distributed transaction is being coordinated by
     a node other than the bootstrap coordinator *)
  if
    st.State.txn_conns <> []
    && not
         (String.equal t.State.local.Cluster.Topology.node_name
            t.State.cluster.Cluster.Topology.coordinator
              .Cluster.Topology.node_name)
  then Obs.Metrics.inc (metrics t) Obs.Metric_names.mx_worker_coordinated_txns;
  match st.State.txn_conns with
  | [] -> ()
  | [ conn ] ->
    (* single-node transaction: delegate the commit (§3.7.1) *)
    Obs.Metrics.inc (metrics t) Obs.Metric_names.twopc_delegated_commits;
    ignore (Exec.on_conn_exn t conn "COMMIT")
  | conns ->
    (* two-phase commit (§3.7.2) *)
    let coord_xid =
      match Engine.Instance.current_xid coord_session with
      | Some x -> x
      | None -> invalid_arg "pre_commit outside a transaction"
    in
    Obs.Metrics.inc (metrics t) Obs.Metric_names.twopc_started;
    let deadline = phase_deadline t in
    let prepared = ref [] in
    (try
       span t ~kind:"2pc.prepare"
         ~tags:[ ("participants", string_of_int (List.length conns)) ]
         (fun _sp ->
           (* gids are assigned in connection order before any fiber runs,
              so the gid sequence is independent of fiber interleaving *)
           let with_gids =
             List.map (fun conn -> (conn, State.fresh_gid t ~coord_xid)) conns
           in
           (* fan PREPARE TRANSACTION out to every participant as its own
              fiber; unlike the old sequential loop, a failing participant
              no longer prevents the others from preparing — the cleanup
              below rolls back whatever did prepare *)
           let outcomes =
             State.with_sched t (fun sched ->
                 let fibers =
                   List.map
                     (fun (conn, gid) ->
                       Sim.Sched.spawn sched ~node:(node_name conn)
                         (fun () ->
                           ignore
                             (Exec.ast_on_conn_exn ?deadline t conn
                                (Sqlfront.Ast.Prepare_transaction gid));
                           (conn, gid)))
                     with_gids
                 in
                 (* bounded: each fiber's every round trip carries the
                    phase ?deadline above; a ?deadline on the join would
                    abandon a still-running fiber, whose failure then
                    re-raises at scheduler exit *)
                 List.map
                   (fun f -> Sim.Sched.await_result sched f [@lint.unbounded])
                   fibers)
           in
           List.iter
             (function
               | Ok pair -> prepared := pair :: !prepared
               | Error _ -> ())
             outcomes;
           match
             List.find_map
               (function Error e -> Some e | Ok _ -> None)
               outcomes
           with
           | Some e -> raise e
           | None -> ())
     with e ->
       Obs.Metrics.inc (metrics t) Obs.Metric_names.twopc_prepare_failed;
       (* a prepare failed: roll back everything and abort the coordinator.
          Cleanup is best effort — the node may be the one that just
          failed — but swallowed errors are counted, never invisible.
          After a deadline expiry the rollbacks are {e posted}
          fire-and-forget: the coordinator must not wait out the very
          stall that expired the deadline, and recovery resolves any
          rollback a stalled node never applied (a prepared transaction
          with no commit record is rolled back by the next pass). *)
       let posted =
         match e with Cluster.Connection.Timed_out _ -> true | _ -> false
       in
       let cleanup conn stmt =
         if posted then
           try Exec.post_on_conn conn (Sqlfront.Deparse.statement stmt)
           with _ -> Health.record_ignored t.State.health (node_name conn)
         else
           try ignore (Exec.ast_on_conn_exn t conn stmt)
           with _ -> Health.record_ignored t.State.health (node_name conn)
       in
       List.iter
         (fun (conn, gid) ->
           cleanup conn (Sqlfront.Ast.Rollback_prepared gid))
         !prepared;
       List.iter
         (fun conn ->
           if not (List.mem_assq conn !prepared) then
             cleanup conn Sqlfront.Ast.Rollback_txn)
         conns;
       st.State.prepared <- [];
       raise e);
    st.State.prepared <- !prepared;
    (* The distributed commit timestamp, drawn from the coordinator's
       HLC only after every PREPARE reply has been merged into it — so
       it dominates each participant's prepare stamp, and a reader whose
       snapshot predates any prepare can prove the commit is newer. *)
    let commit_ts =
      Txn.Hlc.now
        (Cluster.Topology.hlc t.State.cluster
           t.State.local.Cluster.Topology.node_name)
    in
    st.State.commit_hlc <- Some commit_ts;
    (* durable commit records, in the same local transaction *)
    insert_commit_records t coord_session ~ts:commit_ts
      (List.map (fun (conn, gid) -> (gid, node_name conn)) !prepared)

let post_commit (t : State.t) coord_session =
  let st = State.session_state t coord_session in
  (match st.State.prepared with
   | [] -> ()
   | prepared ->
     span t ~kind:"2pc.commit"
       ~tags:[ ("participants", string_of_int (List.length prepared)) ]
       (fun _sp ->
         (* fan COMMIT PREPARED out to every participant as its own fiber,
            each bounded by the phase deadline — a stuck COMMIT PREPARED
            degrades to the deferred-commit path (the outcome is unknown
            exactly as for a lost reply; the commit record survives and
            recovery commits the prepared transaction later). Best
            effort; commit records are cleaned up lazily by the
            maintenance daemon, off the hot path. *)
         let deadline = phase_deadline t in
         let commit_ts = st.State.commit_hlc in
         let outcomes =
           State.with_sched t (fun sched ->
               let fibers =
                 List.map
                   (fun (conn, gid) ->
                     Sim.Sched.spawn sched ~node:(node_name conn)
                       (fun () ->
                         (* visibility fence: every participant commits
                            at the same coordinator-assigned timestamp *)
                         (match commit_ts with
                          | Some ts -> Cluster.Connection.set_next_commit_ts conn ts
                          | None -> ());
                         ignore
                           (Exec.ast_on_conn_exn ?deadline t conn
                              (Sqlfront.Ast.Commit_prepared gid))))
                   prepared
               in
               (* bounded: each fiber's COMMIT PREPARED carries the phase
                  ?deadline; joining without one cannot outwait it *)
               List.map
                 (fun f -> Sim.Sched.await_result sched f [@lint.unbounded])
                 fibers)
         in
         (* metrics / breaker accounting in participant list order, not
            completion order, so same-seed runs render identically *)
         List.iter2
           (fun (conn, _gid) outcome ->
             match outcome with
             | Ok () -> Obs.Metrics.inc (metrics t) Obs.Metric_names.twopc_committed
             | Error _ ->
               (* count it: tests and monitoring can assert recovery later
                  resolved exactly these *)
               Obs.Metrics.inc (metrics t) Obs.Metric_names.twopc_commit_deferred;
               Health.record_failed_commit t.State.health (node_name conn))
           prepared outcomes));
  cleanup_session_txn_state t st

let on_abort (t : State.t) coord_session =
  let st = State.session_state t coord_session in
  if st.State.txn_conns <> [] then
    Obs.Metrics.inc (metrics t) Obs.Metric_names.twopc_aborted;
  let node_stalled node =
    match Cluster.Topology.fault t.State.cluster with
    | Some f -> Sim.Fault.node_stalled f node
    | None -> false
  in
  let rollback conn stmt =
    let node = node_name conn in
    if node_stalled node then
      (* an abort triggered by a statement timeout must not wait out the
         very stall it is escaping: post the rollback and let recovery
         resolve anything the stalled node loses *)
      try Exec.post_on_conn conn (Sqlfront.Deparse.statement stmt)
      with _ -> Health.record_ignored t.State.health node
    else
      try ignore (Exec.ast_on_conn_exn t conn stmt)
      with _ -> Health.record_ignored t.State.health node
  in
  List.iter
    (fun conn ->
      match List.assq_opt conn st.State.prepared with
      | Some gid ->
        (* prepared but the coordinator aborted before its commit record
           became visible: roll it back *)
        rollback conn (Sqlfront.Ast.Rollback_prepared gid)
      | None -> rollback conn Sqlfront.Ast.Rollback_txn)
    st.State.txn_conns;
  cleanup_session_txn_state t st

let all_commit_records (t : State.t) =
  let s = admin_session t in
  let ctx = Engine.Instance.make_ctx s in
  let _, rows =
    Engine.Executor.run_select ctx
      {
        Sqlfront.Ast.distinct = false;
        projections =
          [
            Sqlfront.Ast.Proj (Sqlfront.Ast.Column (None, "gid"), None);
            Sqlfront.Ast.Proj (Sqlfront.Ast.Column (None, "node"), None);
          ];
        from =
          [ Sqlfront.Ast.Table { name = commit_records_table; alias = None } ];
        where = None;
        group_by = [];
        having = None;
        order_by = [];
        limit = None;
        offset = None;
      }
  in
  List.filter_map
    (fun row ->
      match row with
      | [| Datum.Text gid; Datum.Text node |] -> Some (gid, node)
      | _ -> None)
    rows

(* Garbage-collect commit records that have served their purpose: only
   once the record's own participant is reachable {e and} no longer lists
   the gid as prepared is it provably resolved. An unreachable or crashed
   participant keeps its record — its WAL may still hold a prepared
   transaction that recovery must commit after the node comes back, and
   deleting the record early would make recovery roll it back instead
   (an atomicity violation). Safe to re-run mid-partition any number of
   times. *)
let gc_resolved_records (t : State.t) =
  List.iter
    (fun (gid, node) ->
      if State.reachable t node then begin
        let mgr =
          Engine.Instance.txn_manager
            (Cluster.Topology.find_node t.State.cluster node)
              .Cluster.Topology.instance
        in
        if not (List.mem_assoc gid (Txn.Manager.prepared_transactions mgr))
        then delete_commit_record t gid
      end)
    (all_commit_records t)

(* §3.7.2, MX flavor: compare each node's pending prepared transactions
   against the {e origin} coordinator's commit records — the node named
   in the gid, not necessarily us. A visible record means that
   coordinator committed, so the prepared transaction must commit at the
   recorded timestamp; a missing record for an ended origin transaction
   means it must abort. Any coordinator's recovery pass can therefore
   resolve any namespace whose origin it can consult; gids whose origin
   is crashed or unreachable stay in doubt until it returns. Resolution
   runs over real connections, so an injected fault can kill any step —
   every step is therefore idempotent and simply retried by the next
   pass. *)
let recover (t : State.t) =
  span t ~kind:"2pc.recover" @@ fun recover_sp ->
  let committed = ref 0 and rolled_back = ref 0 in
  let local_name = t.State.local.Cluster.Topology.node_name in
  List.iter
    (fun (node : Cluster.Topology.node) ->
      let name = node.Cluster.Topology.node_name in
      if State.reachable t name then begin
        match
          Cluster.Connection.open_ ~origin:local_name t.State.cluster node
        with
        | exception Cluster.Connection.Node_unavailable _ ->
          (* raced with a fresh crash/partition; next pass retries *)
          Health.record_failure t.State.health name
        | conn ->
          (* polling the node's pg_prepared_xacts costs a round trip and
             is itself subject to faults *)
          (match Exec.on_conn_exn t conn "SELECT 1" with
           | _ ->
             let mgr =
               Engine.Instance.txn_manager node.Cluster.Topology.instance
             in
             List.iter
               (fun (gid, _xid) ->
                 match State.parse_gid gid with
                 | None -> ()
                 | Some (origin, coord_xid) ->
                   (match origin_node t origin with
                    | None ->
                      (* origin coordinator crashed or unreachable: its
                         commit records decide this gid, so it stays in
                         doubt until the origin is back *)
                      ()
                    | Some onode ->
                      let os = node_session onode in
                      let foreign = not (String.equal origin local_name) in
                      let resolved () =
                        if foreign then
                          Obs.Metrics.inc (metrics t)
                            Obs.Metric_names.mx_foreign_gids_resolved
                      in
                      if record_exists_in os gid then begin
                        (* deferred commit: re-stamp at the recorded
                           timestamp, so late resolution lands at the
                           same instant the live fan-out would have *)
                        (match record_ts_in os gid with
                         | Some ts ->
                           Cluster.Connection.set_next_commit_ts conn ts
                         | None -> ());
                        match
                          Exec.ast_on_conn_exn t conn
                            (Sqlfront.Ast.Commit_prepared gid)
                        with
                        | _ ->
                          delete_record_in os gid;
                          resolved ();
                          incr committed
                        | exception _ ->
                          (* lost round trip or fresh crash; the commit
                             record survives, so a later pass retries *)
                          Health.record_ignored t.State.health name
                      end
                      else begin
                        let origin_mgr =
                          Engine.Instance.txn_manager
                            onode.Cluster.Topology.instance
                        in
                        if not (Txn.Manager.is_active origin_mgr coord_xid)
                        then begin
                          match
                            Exec.ast_on_conn_exn t conn
                              (Sqlfront.Ast.Rollback_prepared gid)
                          with
                          | _ ->
                            resolved ();
                            incr rolled_back
                          | exception _ ->
                            Health.record_ignored t.State.health name
                        end
                      end))
               (Txn.Manager.prepared_transactions mgr)
           | exception _ ->
             (* poll lost; Exec already recorded the failure *)
             Health.record_ignored t.State.health name)
      end)
    (Cluster.Topology.all_nodes t.State.cluster);
  gc_resolved_records t;
  Obs.Metrics.inc (metrics t) Obs.Metric_names.twopc_recover_passes;
  if !committed > 0 then
    Obs.Metrics.inc (metrics t) ~by:!committed Obs.Metric_names.twopc_recover_committed;
  if !rolled_back > 0 then
    Obs.Metrics.inc (metrics t) ~by:!rolled_back Obs.Metric_names.twopc_recover_rolled_back;
  Obs.Trace.add_tag recover_sp "committed" (string_of_int !committed);
  Obs.Trace.add_tag recover_sp "rolled_back" (string_of_int !rolled_back);
  (!committed, !rolled_back)

(* Read-triggered resolution of one in-doubt gid: a snapshot reader that
   hit the window between PREPARE and COMMIT PREPARED consults the
   {e origin} coordinator's commit records instead of waiting for the
   next maintenance pass — any coordinator's gid, not just our own (MX).
   A visible record means the distributed transaction committed — finish
   it here at its recorded timestamp; no record with the origin
   transaction ended means it aborted — roll it back; otherwise the 2PC
   is still in flight (or its origin unreachable) and the reader must
   wait. Every step is idempotent and best effort, exactly like
   [recover]. *)
let resolve_in_doubt (t : State.t) conn ~gid =
  match State.parse_gid gid with
  | None -> `Pending
  | Some (origin, coord_xid) -> (
    match origin_node t origin with
    | None ->
      (* the deciding coordinator is crashed or unreachable: wait *)
      `Pending
    | Some onode -> (
      let os = node_session onode in
      let commit () =
        (try
           ignore
             ((Exec.ast_on_conn_exn t conn (Sqlfront.Ast.Commit_prepared gid))
              [@lint.latest])
         with _ -> Health.record_ignored t.State.health (node_name conn));
        Obs.Metrics.inc (metrics t) Obs.Metric_names.snapshot_indoubt_commits;
        `Resolved
      in
      match record_ts_in os gid with
      | Some ts ->
        Cluster.Connection.set_next_commit_ts conn ts;
        commit ()
      | None when record_exists_in os gid ->
        (* record present but stampless (should not happen): still commit *)
        commit ()
      | None ->
        let origin_mgr =
          Engine.Instance.txn_manager onode.Cluster.Topology.instance
        in
        if Txn.Manager.is_active origin_mgr coord_xid then
          (* commit records not yet durable: the writer is still between
             PREPARE and its coordinator-local commit *)
          `Pending
        else begin
          (* the origin transaction ended without leaving a commit
             record: the distributed transaction aborted *)
          (try
             ignore
               ((Exec.ast_on_conn_exn t conn
                   (Sqlfront.Ast.Rollback_prepared gid))
                [@lint.latest])
           with _ -> Health.record_ignored t.State.health (node_name conn));
          Obs.Metrics.inc (metrics t)
            Obs.Metric_names.snapshot_indoubt_rollbacks;
          `Resolved
        end))
