open Sqlfront

exception Unsupported of string

let unsupported fmt = Printf.ksprintf (fun m -> raise (Unsupported m)) fmt

type move =
  | Broadcast of { table : string; rows : int }
  | Repartition of { table : string; rows : int }

type decision = { anchor : string; moves : move list; est_shipped : int }

let broadcast_threshold = ref 10_000

let temp_seq = ref 0

(* --- query shape analysis --- *)

(* (table, alias) pairs of the base relations; subselects containing
   distributed tables are out of scope for this planner. *)
let rec base_relations meta = function
  | Ast.Table { name; alias } -> [ (name, Option.value ~default:name alias) ]
  | Ast.Join { left; right; _ } ->
    base_relations meta left @ base_relations meta right
  | Ast.Subselect (sub, _) ->
    let inner =
      List.concat_map (base_relations meta) sub.Ast.from
      |> List.filter (fun (n, _) ->
             match Metadata.find meta n with
             | Some { Metadata.kind = Metadata.Distributed; _ } -> true
             | _ -> false)
    in
    if inner <> [] then
      unsupported
        "subqueries under non-co-located joins are not supported";
    []

let rec conjuncts_of_select (sel : Ast.select) =
  let level = match sel.where with Some w -> Ast.conjuncts w | None -> [] in
  let rec from_item = function
    | Ast.Table _ -> []
    | Ast.Subselect (s, _) -> conjuncts_of_select s
    | Ast.Join { left; right; cond; _ } ->
      (match cond with Some c -> Ast.conjuncts c | None -> [])
      @ from_item left @ from_item right
  in
  level @ List.concat_map from_item sel.from

let column_matches alias col (q, c) =
  String.equal col c
  && match q with None -> false | Some q -> String.equal q alias

(* is there an equality between (a_alias, a_col) and any column of b? *)
let equi_join_column conjs ~a_alias ~a_col ~b_alias =
  List.find_map
    (fun conj ->
      match conj with
      | Ast.Cmp (Ast.Eq, Ast.Column (q1, c1), Ast.Column (q2, c2)) ->
        if
          column_matches a_alias a_col (q1, c1)
          && (match q2 with Some q -> String.equal q b_alias | None -> false)
        then Some c2
        else if
          column_matches a_alias a_col (q2, c2)
          && (match q1 with Some q -> String.equal q b_alias | None -> false)
        then Some c1
        else None
      | _ -> None)
    conjs

let dist_column meta table =
  match Metadata.find meta table with
  | Some { Metadata.dist_column = Some dc; _ } -> dc
  | _ -> unsupported "%s has no distribution column" table

(* --- row estimation --- *)

let estimate_rows (t : State.t) session table =
  let catalog =
    Engine.Instance.catalog t.State.local.Cluster.Topology.instance
  in
  (* built as an AST, not interpolated SQL text: [table] comes from the
     catalog, but going through the printer/parser would still be the only
     place in the tree where identifiers reach a parser as a string *)
  let sel =
    {
      Ast.distinct = false;
      projections =
        [
          Ast.Proj
            ( Ast.Agg { agg_name = "count"; agg_arg = None; agg_distinct = false },
              None );
        ];
      from = [ Ast.Table { name = table; alias = None } ];
      where = None;
      group_by = [];
      having = None;
      order_by = [];
      limit = None;
      offset = None;
    }
  in
  match
    Planner.plan t.State.metadata ~catalog
      ~local_name:t.State.local.Cluster.Topology.node_name
      (Ast.Select_stmt sel)
  with
  | plan, _ ->
    let result, _ = Dist_executor.execute t session plan in
    (match result.Engine.Instance.rows with
     | [ [| Datum.Int n |] ] -> n
     | _ -> 0)
  | exception Planner.Unsupported m -> unsupported "%s" m

(* --- planning --- *)

type classification =
  | Free  (** co-located with the anchor and joined on the dist column *)
  | Move_repartition of string  (** join column of the moved table *)
  | Move_broadcast

let classify (t : State.t) conjs ~anchor ~anchor_alias ~table ~alias ~rows =
  let meta = t.State.metadata in
  let a_dc = dist_column meta anchor in
  let b_dc = dist_column meta table in
  let joined_on_both_dist =
    match equi_join_column conjs ~a_alias:anchor_alias ~a_col:a_dc ~b_alias:alias with
    | Some c -> String.equal c b_dc
    | None -> false
  in
  if Metadata.colocated meta [ anchor; table ] && joined_on_both_dist then
    Some Free
  else
    match equi_join_column conjs ~a_alias:anchor_alias ~a_col:a_dc ~b_alias:alias with
    | Some join_col -> Some (Move_repartition join_col)
    | None -> if rows <= !broadcast_threshold then Some Move_broadcast else None

let choose_anchor (t : State.t) conjs dists rows_of =
  let meta = t.State.metadata in
  let num_nodes = List.length (Metadata.nodes_in_use meta) in
  let candidates =
    List.filter_map
      (fun (anchor, anchor_alias) ->
        let others = List.filter (fun (n, _) -> n <> anchor) dists in
        let classified =
          List.map
            (fun (table, alias) ->
              let rows = rows_of table in
              match
                classify t conjs ~anchor ~anchor_alias ~table ~alias ~rows
              with
              | Some c -> Some (table, alias, rows, c)
              | None -> None)
            others
        in
        let classified = List.filter_map Fun.id classified in
        (* any [None] classification disqualifies this anchor *)
        if List.compare_lengths classified others <> 0 then None
        else begin
          let cost =
            List.fold_left
              (fun acc (_, _, rows, c) ->
                match c with
                | Free -> acc
                | Move_repartition _ -> acc + rows
                | Move_broadcast -> acc + (rows * max 1 num_nodes))
              0 classified
          in
          Some ((anchor, anchor_alias), classified, cost)
        end)
      dists
  in
  match candidates with
  | [] ->
    unsupported
      "no feasible join order: non-co-located tables are too large to \
       broadcast and do not join on a distribution column"
  | first :: rest ->
    List.fold_left
      (fun ((_, _, bc) as best) ((_, _, c) as cand) ->
        if c < bc then cand else best)
      first rest

(* Decision without data movement (EXPLAIN): runs only the count()
   estimates. *)
let decide (t : State.t) session (sel : Ast.select) =
  let meta = t.State.metadata in
  let relations = List.concat_map (base_relations meta) sel.from in
  let dists =
    List.filter
      (fun (n, _) ->
        match Metadata.find meta n with
        | Some { Metadata.kind = Metadata.Distributed; _ } -> true
        | _ -> false)
      relations
  in
  if List.length dists < 2 then
    unsupported "join-order planning needs at least two distributed tables";
  let conjs = conjuncts_of_select sel in
  let row_cache = Hashtbl.create 8 in
  let rows_of table =
    match Hashtbl.find_opt row_cache table with
    | Some n -> n
    | None ->
      let n = estimate_rows t session table in
      Hashtbl.replace row_cache table n;
      n
  in
  let (anchor, _), classified, est_shipped =
    choose_anchor t conjs dists rows_of
  in
  let moves =
    List.map
      (fun (table, _, rows, cls) ->
        match cls with
        | Free -> Broadcast { table; rows = 0 } (* placeholder, filtered below *)
        | Move_repartition _ -> Repartition { table; rows }
        | Move_broadcast -> Broadcast { table; rows })
      (List.filter (fun (_, _, _, c) -> c <> Free) classified)
  in
  { anchor; moves; est_shipped }

(* --- data movement --- *)

let materialize (t : State.t) session ~table ~alias conjs =
  (* single-table distributed select with the qualified filters pushed in *)
  let pushed =
    List.filter
      (fun conj ->
        let only_this = ref true in
        ignore
          (Ast.fold_expr
             (fun () n ->
               match n with
               | Ast.Column (Some q, _) when String.equal q alias -> ()
               | Ast.Column _ -> only_this := false
               | Ast.Exists _ | Ast.In_subquery _ | Ast.Scalar_subquery _ ->
                 only_this := false
               | _ -> ())
             () conj);
        !only_this)
      conjs
  in
  let sel =
    {
      Ast.distinct = false;
      projections = [ Ast.Star ];
      from = [ Ast.Table { name = table; alias = Some alias } ];
      where = Ast.conjoin pushed;
      group_by = [];
      having = None;
      order_by = [];
      limit = None;
      offset = None;
    }
  in
  let catalog =
    Engine.Instance.catalog t.State.local.Cluster.Topology.instance
  in
  let plan, _ =
    Planner.plan t.State.metadata ~catalog
      ~local_name:t.State.local.Cluster.Topology.node_name
      (Ast.Select_stmt sel)
  in
  let result, _ = Dist_executor.execute t session plan in
  result.Engine.Instance.rows

let create_temp_table (t : State.t) ~node ~name ~src_table =
  let catalog =
    Engine.Instance.catalog t.State.local.Cluster.Topology.instance
  in
  let src =
    match Engine.Catalog.find_table_opt catalog src_table with
    | Some tbl -> tbl
    | None -> unsupported "relation %s does not exist" src_table
  in
  let conn =
    Cluster.Connection.open_
      ~origin:t.State.local.Cluster.Topology.node_name t.State.cluster
      (Cluster.Topology.find_node t.State.cluster node)
  in
  ignore
    (Cluster.Connection.exec_ast conn
       (Ast.Create_table
          {
            name;
            columns = src.Engine.Catalog.columns;
            primary_key = [];
            if_not_exists = false;
            using_columnar = false;
          }));
  conn

let insert_rows_via (t : State.t) conn ~table rows =
  if rows <> [] then begin
    t.State.cluster.Cluster.Topology.net.Cluster.Topology.rows_shipped <-
      t.State.cluster.Cluster.Topology.net.Cluster.Topology.rows_shipped
      + List.length rows;
    let tuples =
      List.map
        (fun (row : Datum.t array) ->
          List.map (fun d -> Ast.Const d) (Array.to_list row))
        rows
    in
    ignore
      (Cluster.Connection.exec_ast conn
         (Ast.Insert
            {
              table;
              columns = None;
              source = Ast.Values tuples;
              on_conflict_do_nothing = false;
            }))
  end

let drop_temp conn name =
  try
    ignore
      (Cluster.Connection.exec_ast conn
         (Ast.Drop_table { name; if_exists = true }))
  with _ -> ()

(* --- execution --- *)

let execute (t : State.t) session (sel : Ast.select) =
  let meta = t.State.metadata in
  let relations = List.concat_map (base_relations meta) sel.from in
  let dists =
    List.filter
      (fun (n, _) ->
        match Metadata.find meta n with
        | Some { Metadata.kind = Metadata.Distributed; _ } -> true
        | _ -> false)
      relations
  in
  if List.length dists < 2 then
    unsupported "join-order planning needs at least two distributed tables";
  let conjs = conjuncts_of_select sel in
  let row_cache = Hashtbl.create 8 in
  let rows_of table =
    match Hashtbl.find_opt row_cache table with
    | Some n -> n
    | None ->
      let n = estimate_rows t session table in
      Hashtbl.replace row_cache table n;
      n
  in
  let (anchor, _anchor_alias), classified, est_shipped =
    choose_anchor t conjs dists rows_of
  in
  incr temp_seq;
  let seq = !temp_seq in
  let anchor_shards = Metadata.shards_of meta anchor in
  let anchor_groups = Metadata.shard_groups meta ~tables:[ anchor ] in
  let cleanup = ref [] in
  let moves = ref [] in
  (* broadcast_map: table -> temp name; repart_map: table -> group -> name *)
  let bcast_map = Hashtbl.create 4 in
  let repart_map = Hashtbl.create 4 in
  Fun.protect
    ~finally:(fun () -> List.iter (fun (conn, name) -> drop_temp conn name) !cleanup)
    (fun () ->
      List.iter
        (fun (table, alias, rows, cls) ->
          match cls with
          | Free -> ()
          | Move_broadcast ->
            let data = materialize t session ~table ~alias conjs in
            let name = Printf.sprintf "citus_bcast_%d_%s" seq table in
            let nodes =
              List.sort_uniq String.compare (List.map (fun (_, n, _) -> n) anchor_groups)
            in
            List.iter
              (fun node ->
                let conn = create_temp_table t ~node ~name ~src_table:table in
                insert_rows_via t conn ~table:name data;
                cleanup := (conn, name) :: !cleanup)
              nodes;
            Hashtbl.replace bcast_map table name;
            moves := Broadcast { table; rows } :: !moves
          | Move_repartition join_col ->
            let data = materialize t session ~table ~alias conjs in
            let catalog =
              Engine.Instance.catalog t.State.local.Cluster.Topology.instance
            in
            let tbl =
              match Engine.Catalog.find_table_opt catalog table with
              | Some tbl -> tbl
              | None -> unsupported "relation %s does not exist" table
            in
            let pos = Engine.Catalog.column_index tbl join_col in
            (* bucket rows into the anchor's hash ranges *)
            let buckets = Hashtbl.create 16 in
            List.iter
              (fun (row : Datum.t array) ->
                let v = row.(pos) in
                if not (Datum.is_null v) then begin
                  let h = Datum.hash32 v in
                  match
                    List.find_opt
                      (fun (s : Metadata.shard) ->
                        Int32.compare h s.min_hash >= 0
                        && Int32.compare h s.max_hash <= 0)
                      anchor_shards
                  with
                  | Some shard ->
                    let gi = shard.Metadata.index_in_colocation in
                    let b =
                      match Hashtbl.find_opt buckets gi with
                      | Some b -> b
                      | None ->
                        let b = ref [] in
                        Hashtbl.replace buckets gi b;
                        b
                    in
                    b := row :: !b
                  | None -> ()
                end)
              data;
            let frag_names = Hashtbl.create 16 in
            List.iter
              (fun (gi, node, _) ->
                let name =
                  Printf.sprintf "citus_repart_%d_%s_%d" seq table gi
                in
                let conn = create_temp_table t ~node ~name ~src_table:table in
                let rows =
                  match Hashtbl.find_opt buckets gi with
                  | Some b -> List.rev !b
                  | None -> []
                in
                insert_rows_via t conn ~table:name rows;
                cleanup := (conn, name) :: !cleanup;
                Hashtbl.replace frag_names gi name)
              anchor_groups;
            Hashtbl.replace repart_map table frag_names;
            moves := Repartition { table; rows } :: !moves)
        classified;
      (* build the pushdown parts and per-group tasks with a combined
         rename: moved tables to their temp/fragment relations, everything
         else to the group's shards *)
      let catalog =
        Engine.Instance.catalog t.State.local.Cluster.Topology.instance
      in
      let task_select, merge =
        try Planner.pushdown_parts meta ~catalog sel
        with Planner.Unsupported m -> unsupported "%s" m
      in
      let tasks =
        List.map
          (fun (gi, node, _members) ->
            let rename name =
              match Hashtbl.find_opt bcast_map name with
              | Some temp -> temp
              | None ->
                (match Hashtbl.find_opt repart_map name with
                 | Some frags -> (
                   match Hashtbl.find_opt frags gi with
                   | Some frag -> frag
                   | None ->
                     unsupported "no fragment of %s for shard group %d" name gi)
                 | None ->
                   (match Metadata.find meta name with
                    | Some { Metadata.kind = Metadata.Reference; _ } ->
                      (match Metadata.shards_of meta name with
                       | [ sh ] -> Metadata.shard_name sh
                       | _ -> name)
                    | Some { Metadata.kind = Metadata.Distributed; _ } ->
                      let sh =
                        List.find
                          (fun (s : Metadata.shard) ->
                            s.index_in_colocation = gi)
                          (Metadata.shards_of meta name)
                      in
                      Metadata.shard_name sh
                    | None -> name))
            in
            {
              Plan.task_node = node;
              task_stmt =
                Ast.rename_tables_statement rename
                  (Ast.Select_stmt task_select);
              task_group = gi;
              (* the task reads node-local repartition/broadcast fragments:
                 it cannot fail over to another replica of the anchor shard *)
              task_shard = -1;
            })
          anchor_groups
      in
      let result, report =
        Dist_executor.execute t session
          (Plan.Multi_shard_select { tasks; merge })
      in
      (result, { anchor; moves = List.rev !moves; est_shipped }, report))
