(** Distributed transactions (§3.7).

    Transactions touching one worker are delegated to it (plain COMMIT).
    Transactions touching several nodes run two-phase commit: at
    pre-commit, every participating connection gets [PREPARE TRANSACTION
    'citus_<node-name>_<xid>_<seq>'] — the gid namespace of whichever
    node is coordinating (MX: any metadata-synced node can) — and a
    commit record is inserted into that node's local
    [pg_dist_transaction] table inside the coordinator's own transaction
    — so the records become durable exactly when the coordinator commit
    does. After local commit, [COMMIT PREPARED] is sent on a best-effort
    basis; {!recover} (run from the maintenance daemon on every node)
    finishes the job after failures by comparing each node's pending
    prepared transactions against the {e origin} coordinator's commit
    records — scanning every namespace, not just its own. *)

val commit_records_table : string

(** Create [pg_dist_transaction] on the local node if missing. *)
val ensure_commit_records_table : State.t -> unit

(** Transaction callbacks to register on the local instance. *)
val pre_commit : State.t -> Engine.Instance.session -> unit

val post_commit : State.t -> Engine.Instance.session -> unit

val on_abort : State.t -> Engine.Instance.session -> unit

(** 2PC recovery pass: resolve prepared transactions left behind by
    failures, in {e every} gid namespace — each gid is decided by its
    origin coordinator's commit records (consulted remotely for foreign
    namespaces while the origin is reachable; an unreachable origin
    leaves its gids in doubt until it returns). Returns
    (committed, rolled back) counts. *)
val recover : State.t -> int * int

(** Number of commit records currently stored (tests/monitoring). *)
val commit_record_count : State.t -> int

(** [resolve_in_doubt t conn ~gid] resolves one in-doubt prepared
    transaction encountered by a reader on [conn]'s node, consulting the
    {e origin} coordinator's commit records (any namespace): record
    visible → [COMMIT PREPARED] at its recorded HLC timestamp; no record
    and the origin transaction ended → [ROLLBACK PREPARED]; otherwise
    [`Pending] — the 2PC is still in flight (or its origin unreachable)
    and the reader should back off and retry. Idempotent and best
    effort, like {!recover}. *)
val resolve_in_doubt :
  State.t -> Cluster.Connection.t -> gid:string -> [ `Resolved | `Pending ]
