(** Citus distributed-table metadata: the pg_dist_* catalogs (§3.3).

    Distributed tables are hash-partitioned on a distribution column into
    shards owning contiguous int32 hash ranges. Co-located tables share a
    colocation group: same shard count, same ranges, aligned placements, so
    relational operations on the distribution column never cross nodes.
    Reference tables have a single shard placed on every node. *)

type kind = Distributed | Reference

type dist_table = {
  dt_name : string;
  dist_column : string option;  (** [None] for reference tables *)
  dist_column_ty : Datum.ty option;
  colocation_id : int;
  kind : kind;
}

type shard = {
  shard_id : int;
  shard_of : string;  (** logical table name *)
  min_hash : int32;
  max_hash : int32;  (** inclusive *)
  index_in_colocation : int;  (** position among the table's shards *)
}

(** Placement health, mirroring Citus shardstate 1 (active) / 3
    (inactive): an [Inactive] placement missed a replicated write and must
    not serve reads until the repair daemon re-copies it. *)
type placement_state = Active | Inactive

type placement = { pl_node : string; mutable pl_state : placement_state }

type t

val create : ?shard_count:int -> unit -> t

val default_shard_count : t -> int

(** {2 Metadata version}

    A monotonic counter bumped by every mutation that can invalidate a
    cached distributed plan: table registration and drop, placement
    moves / additions / health flips, shard splits and renumbering.
    Layers that change placement-relevant state outside this module
    (schema DDL, replication-factor knob) call {!bump_version}
    explicitly. The plan cache records the version at plan time and
    revalidates on mismatch — a stale cached deparse must never run. *)

val version : t -> int

val bump_version : t -> unit

(** {2 Registration} *)

exception Not_distributed of string

(** Inconsistent catalog state: an unknown shard id, or a shard whose
    every replica is lost. Typed so executors can tell a metadata bug
    from a node failure (the former must never be retried on another
    replica). *)
exception Catalog_error of string

(** [register_distributed t ~table ~column ~ty ~colocate_with ~nodes]
    creates shard metadata and round-robin placements over [nodes]; with
    [replication_factor] > 1 each shard is additionally placed on the next
    rf-1 nodes (statement-based replication, capped at the node count).
    With [colocate_with], ranges and placements are copied from the other
    table so the shards align. Returns the new shards in range order. *)
val register_distributed :
  ?replication_factor:int ->
  t ->
  table:string ->
  column:string ->
  ty:Datum.ty ->
  colocate_with:string option ->
  nodes:string list ->
  shard list

(** Reference table: one shard placed on every node. *)
val register_reference : t -> table:string -> nodes:string list -> shard

val drop_table : t -> string -> unit

(** {2 Lookup} *)

val find : t -> string -> dist_table option

val is_citus_table : t -> string -> bool

val all_tables : t -> dist_table list

val shards_of : t -> string -> shard list
(** In hash-range order. Raises {!Not_distributed} for unknown tables. *)

(** The shard of [table] owning [value]'s hash. *)
val shard_for_value : t -> table:string -> Datum.t -> shard

(** Physical table name of a shard on its node ("orders_102008"). *)
val shard_name : shard -> string

(** Nodes holding an {e active} placement of a shard. Raises
    {!Catalog_error} if none is active (every replica lost). *)
val placements : t -> int -> string list

val placement : t -> int -> string
(** First active placement of a shard. Raises {!Catalog_error} if none. *)

(** Every placement record of a shard, regardless of state. Raises
    {!Catalog_error} for an unknown shard id. *)
val all_placements : t -> int -> placement list

val placement_state_of :
  t -> shard_id:int -> node:string -> placement_state option

(** Flip a placement's health state (write failure marks it [Inactive];
    shard repair marks it [Active] again). *)
val mark_placement : t -> shard_id:int -> node:string -> placement_state -> unit

val shard_by_id : t -> int -> shard option

(** The shards colocated with [shard] (same group index across its
    colocation group, itself included); a reference shard stands alone. *)
val colocated_shards : t -> shard -> shard list

(** Every [Inactive] placement, as (shard, node) pairs — the repair
    daemon's work list. *)
val inactive_placements : t -> (shard * string) list

(** Pick the serving node for a shard: first active placement passing
    [node_ok], else the first active one. *)
val select_placement : ?node_ok:(string -> bool) -> t -> int -> string

(** Move a shard's placement (rebalancer); the moved placement is Active. *)
val update_placement : t -> shard_id:int -> from_node:string -> to_node:string -> unit

(** Add an Active placement (reference table on a new node). *)
val add_placement : t -> shard_id:int -> node:string -> unit

(** Do all these tables belong to one colocation group (reference tables
    are compatible with anything)? *)
val colocated : t -> string list -> bool

(** Shard groups of a colocation id: for group index [i], the i-th shard of
    every distributed table in the group lives on the same node.
    Returns (group_index, node, (table, shard) list) per group; the node is
    chosen with {!select_placement}. *)
val shard_groups :
  ?node_ok:(string -> bool) ->
  t -> tables:string list -> (int * string * (string * shard) list) list

(** All nodes appearing in placements. *)
val nodes_in_use : t -> string list

(** Shards placed on a node (distributed tables only). *)
val shards_on_node : t -> string -> shard list

(** {2 Shard splitting (tenant isolation, §2.1)} *)

(** Replace one shard with new shards covering [ranges] (placements
    inherited). The caller moves the data and must call
    {!renumber_colocation} afterwards. *)
val replace_shard :
  t -> shard_id:int -> ranges:(int32 * int32) list -> shard list

(** Re-assign group indexes by range order across every table of the
    colocation group (ranges are identical within a group, so this keeps
    co-location intact). *)
val renumber_colocation : t -> colocation_id:int -> unit
