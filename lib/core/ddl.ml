open Sqlfront

let shard_tasks (t : State.t) table ~make_stmt =
  List.map
    (fun (s : Metadata.shard) ->
      {
        Plan.task_node = Metadata.placement t.State.metadata s.Metadata.shard_id;
        task_stmt = make_stmt s;
        task_group = s.Metadata.index_in_colocation;
        task_shard = s.Metadata.shard_id;
      })
    (Metadata.shards_of t.State.metadata table)

(* Reference tables: one task; the executor replicates DDL writes across
   every active placement of the reference shard. *)
let replica_tasks (t : State.t) table ~make_stmt =
  let shard =
    match Metadata.shards_of t.State.metadata table with
    | s :: _ -> s
    | [] ->
      raise
        (Metadata.Catalog_error
           (Printf.sprintf "reference table %s has no shard" table))
  in
  [
    {
      Plan.task_node = Metadata.placement t.State.metadata shard.Metadata.shard_id;
      task_stmt = make_stmt shard;
      task_group = -1;
      task_shard = shard.Metadata.shard_id;
    };
  ]

let tasks_for (t : State.t) table ~make_stmt =
  match Metadata.find t.State.metadata table with
  | Some { Metadata.kind = Metadata.Reference; _ } ->
    replica_tasks t table ~make_stmt
  | _ -> shard_tasks t table ~make_stmt

let run_tasks (t : State.t) session tasks =
  let results, _report = Adaptive_executor.execute t session tasks in
  List.fold_left (fun acc r -> acc + r.Engine.Instance.affected) 0 results

let utility_hook (t : State.t) session (stmt : Ast.statement) =
  let meta = t.State.metadata in
  let citus = Planner.citus_tables meta stmt in
  if citus = [] then None
  else
    let apply_local () = Engine.Instance.exec_utility_local session stmt in
    match stmt with
    | Ast.Create_index ci ->
      (* local schema copy first, then one index per shard. Schema DDL
         lives outside [Metadata], so it must bump the metadata version
         by hand — through the sync layer, so every node's cached
         prepared-statement plans revalidate. *)
      Metasync.bump_version t.State.metasync;
      let local = apply_local () in
      let make_stmt (s : Metadata.shard) =
        Ast.Create_index
          {
            ci with
            name = Printf.sprintf "%s_%d" ci.name s.Metadata.shard_id;
            table = Metadata.shard_name s;
          }
      in
      ignore (run_tasks t session (tasks_for t ci.table ~make_stmt));
      Some local
    | Ast.Alter_table_add_column a ->
      (* schema DDL: bump by hand, as for CREATE INDEX *)
      Metasync.bump_version t.State.metasync;
      let local = apply_local () in
      let make_stmt (s : Metadata.shard) =
        Ast.Alter_table_add_column { a with table = Metadata.shard_name s }
      in
      ignore (run_tasks t session (tasks_for t a.table ~make_stmt));
      Some local
    | Ast.Truncate tables ->
      let citus_tables, local_tables =
        List.partition (Metadata.is_citus_table meta) tables
      in
      if local_tables <> [] then
        ignore (Engine.Instance.exec_utility_local session (Ast.Truncate local_tables));
      List.iter
        (fun table ->
          (* also empty the coordinator's schema copy *)
          ignore
            (Engine.Instance.exec_utility_local session (Ast.Truncate [ table ]));
          let make_stmt (s : Metadata.shard) =
            Ast.Truncate [ Metadata.shard_name s ]
          in
          ignore (run_tasks t session (tasks_for t table ~make_stmt)))
        citus_tables;
      Some
        { Engine.Instance.columns = []; rows = []; affected = 0; tag = "TRUNCATE" }
    | Ast.Drop_table { name; if_exists } ->
      let make_stmt (s : Metadata.shard) =
        Ast.Drop_table { name = Metadata.shard_name s; if_exists = true }
      in
      ignore (run_tasks t session (tasks_for t name ~make_stmt));
      Metasync.drop_table t.State.metasync name;
      Some (Engine.Instance.exec_utility_local session
              (Ast.Drop_table { name; if_exists }))
    | Ast.Vacuum (Some table) ->
      let make_stmt (s : Metadata.shard) =
        Ast.Vacuum (Some (Metadata.shard_name s))
      in
      let affected = run_tasks t session (tasks_for t table ~make_stmt) in
      Some
        { Engine.Instance.columns = []; rows = []; affected; tag = "VACUUM" }
    | _ -> None
