type policy =
  | By_shard_count
  | By_size
  | Custom of (node:string -> shards:Metadata.shard list -> float)

type move = {
  moved_shards : int list;
  from_node : string;
  to_node : string;
  rows_copied : int;
  catchup_records : int;
}

exception Move_blocked of int list

let err fmt =
  Printf.ksprintf (fun m -> raise (Engine.Instance.Session_error m)) fmt

(* Copy one shard's data from [src] node to [dst] node following the
   logical-replication protocol: snapshot copy while writes continue, then
   WAL catch-up under a brief write lock. [finish_metadata] runs inside the
   cutover window (after the destination commit, before the lock release);
   [drop_source] removes the source copy — a move does, a repair keeps the
   source serving. Returns (rows copied, catchup records).

   [?deadline] (absolute virtual time) bounds the destination round
   trips — the only points where a stalled destination can wedge the
   copy; everything after them is direct heap work that consumes no
   virtual time. Every await sits {e before} the first source mutation
   and before the metadata flip, so a deadline expiry abandons the copy
   cleanly: the partial destination table is dropped (fencing off any
   rows the stalled node did take) and {!Cluster.Connection.Timed_out}
   propagates to the caller with the source untouched. *)
let copy_shard_to (t : State.t) (shard : Metadata.shard) ~from_node ~to_node
    ~drop_source ?deadline ~finish_metadata () =
  let src_node = Cluster.Topology.find_node t.State.cluster from_node in
  let dst_node = Cluster.Topology.find_node t.State.cluster to_node in
  let src_inst = src_node.Cluster.Topology.instance in
  let dst_inst = dst_node.Cluster.Topology.instance in
  let shard_table = Metadata.shard_name shard in
  let src_catalog = Engine.Instance.catalog src_inst in
  let src_tbl =
    match Engine.Catalog.find_table_opt src_catalog shard_table with
    | Some tbl -> tbl
    | None -> err "shard %s missing on %s" shard_table from_node
  in
  let src_heap =
    match src_tbl.Engine.Catalog.store with
    | Engine.Catalog.Heap_store h -> h
    | Engine.Catalog.Columnar_store _ ->
      err "columnar shards cannot be rebalanced online"
  in
  (* 1. create the target shard with the same schema and indexes; a repair
     may find a stale copy from before the placement went inactive *)
  let dst_conn =
    Cluster.Connection.open_
      ~origin:t.State.local.Cluster.Topology.node_name t.State.cluster dst_node
  in
  (match
     Engine.Catalog.find_table_opt (Engine.Instance.catalog dst_inst)
       shard_table
   with
   | Some _ ->
     Engine.Catalog.drop_table (Engine.Instance.catalog dst_inst) shard_table
   | None -> ());
  let dst_ddl stmt =
    try
      (Cluster.Connection.(
         await ?deadline (exec_ast_async dst_conn stmt))
       [@lint.blocking])
    with Cluster.Connection.Timed_out _ as e ->
      (* the destination stalled past the move deadline: fence off the
         partial copy so nothing can ever read it, then abandon *)
      (match
         Engine.Catalog.find_table_opt (Engine.Instance.catalog dst_inst)
           shard_table
       with
       | Some _ ->
         Engine.Catalog.drop_table (Engine.Instance.catalog dst_inst)
           shard_table
       | None -> ());
      raise e
  in
  ignore
    (dst_ddl
       (Sqlfront.Ast.Create_table
          {
            name = shard_table;
            columns = src_tbl.Engine.Catalog.columns;
            primary_key = src_tbl.Engine.Catalog.primary_key;
            if_not_exists = false;
            using_columnar = false;
          }));
  List.iter
    (fun (idx : Engine.Catalog.index) ->
      if
        not
          (String.equal idx.Engine.Catalog.idx_name (shard_table ^ "_pkey"))
      then
        let stmt =
          match idx.Engine.Catalog.kind with
          | Engine.Catalog.Btree_index { columns; _ } ->
            Sqlfront.Ast.Create_index
              {
                name = idx.Engine.Catalog.idx_name ^ "_moved";
                table = shard_table;
                using = Sqlfront.Ast.Btree;
                key_columns = columns;
                key_expr = None;
                if_not_exists = false;
              }
          | Engine.Catalog.Gin_index { expr; _ } ->
            Sqlfront.Ast.Create_index
              {
                name = idx.Engine.Catalog.idx_name ^ "_moved";
                table = shard_table;
                using = Sqlfront.Ast.Gin_trgm;
                key_columns = [];
                key_expr = Some expr;
                if_not_exists = false;
              }
        in
        ignore (dst_ddl stmt))
    src_tbl.Engine.Catalog.indexes;
  let dst_catalog = Engine.Instance.catalog dst_inst in
  let dst_tbl = Engine.Catalog.find_table dst_catalog shard_table in
  let dst_heap =
    match dst_tbl.Engine.Catalog.store with
    | Engine.Catalog.Heap_store h -> h
    | Engine.Catalog.Columnar_store _ -> assert false
  in
  let src_mgr = Engine.Instance.txn_manager src_inst in
  let dst_mgr = Engine.Instance.txn_manager dst_inst in
  (* The copy writes the destination heap directly, below the executor, so
     it must WAL-log each mutation itself: crash recovery replays the
     destination WAL from scratch, and un-logged rows would vanish on
     restart (worse, their tids could be re-assigned to later, logged
     rows, corrupting the redo chain). The Truncate marker fences off any
     records a stale pre-repair copy left in the destination WAL. *)
  let log_dst record =
    ignore (Txn.Wal.append (Txn.Manager.wal dst_mgr) record)
  in
  log_dst (Txn.Wal.Truncate shard_table);
  (* 2. record the WAL position, then copy a snapshot while writes continue *)
  let lsn0 = Txn.Wal.current_lsn (Txn.Manager.wal src_mgr) in
  let snapshot = Txn.Manager.take_snapshot src_mgr in
  let dst_session = Engine.Instance.connect dst_inst in
  let dst_ctx0 = Engine.Instance.make_ctx dst_session in
  let apply_xid = Txn.Manager.begin_txn dst_mgr in
  let dst_ctx = { dst_ctx0 with Engine.Executor.xid = Some apply_xid } in
  let tid_map : (int, int) Hashtbl.t = Hashtbl.create 256 in
  let rows_copied = ref 0 in
  Storage.Heap.scan src_heap
    ~status:(Txn.Manager.status src_mgr)
    ~snapshot ~my_xid:None
    ~f:(fun src_tid row ->
      let dst_tid = Storage.Heap.insert dst_heap ~xid:apply_xid row in
      log_dst
        (Txn.Wal.Insert
           { xid = apply_xid; table = shard_table; tid = dst_tid; row });
      Engine.Executor.index_insert dst_ctx dst_tbl dst_tid row;
      Hashtbl.replace tid_map src_tid dst_tid;
      incr rows_copied);
  t.State.cluster.Cluster.Topology.net.Cluster.Topology.rows_shipped <-
    t.State.cluster.Cluster.Topology.net.Cluster.Topology.rows_shipped
    + !rows_copied;
  (* 3. block writes to the source shard: the brief cutover window *)
  let lock_xid = Txn.Manager.begin_txn src_mgr in
  (match
     Txn.Lock.acquire (Txn.Manager.locks src_mgr) ~owner:lock_xid
       (Txn.Lock.Table shard_table) Txn.Lock.Access_exclusive
   with
   | Txn.Lock.Granted -> ()
   | Txn.Lock.Blocked holders ->
     Txn.Manager.abort src_mgr lock_xid;
     Txn.Manager.abort dst_mgr apply_xid;
     Engine.Catalog.drop_table dst_catalog shard_table;
     raise (Move_blocked holders));
  (* 4. apply the WAL delta; every xid in it has finished by now *)
  let catchup = ref 0 in
  let committed xid = Txn.Manager.status src_mgr xid = Txn.Manager.Committed in
  List.iter
    (fun (_lsn, record) ->
      match record with
      | Txn.Wal.Insert { xid; table; tid; row }
        when String.equal table shard_table && committed xid
             && not (Hashtbl.mem tid_map tid) ->
        let dst_tid = Storage.Heap.insert dst_heap ~xid:apply_xid row in
        log_dst
          (Txn.Wal.Insert
             { xid = apply_xid; table = shard_table; tid = dst_tid; row });
        Engine.Executor.index_insert dst_ctx dst_tbl dst_tid row;
        Hashtbl.replace tid_map tid dst_tid;
        incr catchup
      | Txn.Wal.Update { xid; table; old_tid; new_tid; row }
        when String.equal table shard_table && committed xid ->
        (match Hashtbl.find_opt tid_map old_tid with
         | Some dst_old ->
           ignore (Storage.Heap.delete dst_heap ~xid:apply_xid ~tid:dst_old);
           log_dst
             (Txn.Wal.Delete
                { xid = apply_xid; table = shard_table; tid = dst_old });
           Hashtbl.remove tid_map old_tid
         | None -> ());
        if not (Hashtbl.mem tid_map new_tid) then begin
          let dst_tid = Storage.Heap.insert dst_heap ~xid:apply_xid row in
          log_dst
            (Txn.Wal.Insert
               { xid = apply_xid; table = shard_table; tid = dst_tid; row });
          Engine.Executor.index_insert dst_ctx dst_tbl dst_tid row;
          Hashtbl.replace tid_map new_tid dst_tid
        end;
        incr catchup
      | Txn.Wal.Delete { xid; table; tid }
        when String.equal table shard_table && committed xid ->
        (match Hashtbl.find_opt tid_map tid with
         | Some dst_tid ->
           ignore (Storage.Heap.delete dst_heap ~xid:apply_xid ~tid:dst_tid);
           log_dst
             (Txn.Wal.Delete
                { xid = apply_xid; table = shard_table; tid = dst_tid });
           Hashtbl.remove tid_map tid;
           incr catchup
         | None -> ())
      | _ -> ())
    (Txn.Wal.records ~from:(lsn0 + 1) (Txn.Manager.wal src_mgr));
  Txn.Manager.commit dst_mgr apply_xid;
  (* 5. flip metadata, optionally drop the source, release the lock *)
  finish_metadata ();
  if drop_source then Engine.Catalog.drop_table src_catalog shard_table;
  Txn.Manager.commit src_mgr lock_xid;
  (!rows_copied, !catchup)

(* Move = copy + metadata flip + source drop. *)
let move_one ?deadline (t : State.t) (shard : Metadata.shard) ~from_node
    ~to_node =
  copy_shard_to t shard ~from_node ~to_node ~drop_source:true ?deadline
    ~finish_metadata:(fun () ->
      Metasync.update_placement t.State.metasync
        ~shard_id:shard.Metadata.shard_id ~from_node ~to_node)
    ()

(* A move destination must not already hold a placement of any shard in
   the colocation group. copy_shard_to treats a pre-existing destination
   table as a stale repair artifact and drops it before copying — if
   that table were a live replica, a move aborted at the cutover lock
   (Move_blocked) would leave an Active placement with no backing table.
   The metadata flip would also file two placements under one node. Real
   Citus rejects such moves the same way. *)
let group_placeable (t : State.t) (shard : Metadata.shard) ~to_node =
  List.for_all
    (fun (s : Metadata.shard) ->
      Metadata.placement_state_of t.State.metadata
        ~shard_id:s.Metadata.shard_id ~node:to_node
      = None)
    (Metadata.colocated_shards t.State.metadata shard)

let move_shard_group ?sched (t : State.t) ~shard_id ~to_node =
  let meta = t.State.metadata in
  let shard =
    match
      List.find_opt
        (fun (s : Metadata.shard) -> s.Metadata.shard_id = shard_id)
        (List.concat_map
           (fun (dt : Metadata.dist_table) ->
             match dt.Metadata.kind with
             | Metadata.Distributed -> Metadata.shards_of meta dt.Metadata.dt_name
             | Metadata.Reference -> [])
           (Metadata.all_tables meta))
    with
    | Some s -> s
    | None -> err "no shard %d" shard_id
  in
  let from_node = Metadata.placement meta shard_id in
  if String.equal from_node to_node then
    { moved_shards = []; from_node; to_node; rows_copied = 0; catchup_records = 0 }
  else begin
    if not (group_placeable t shard ~to_node) then
      err "shard %d already has a placement on %s" shard_id to_node;
    let m = Cluster.Topology.metrics t.State.cluster in
    let trace = Cluster.Topology.trace t.State.cluster in
    Obs.Metrics.inc m Obs.Metric_names.rebalance_moves_started;
    (* the parent is read off the span stack here, not inside the span
       body: concurrent batched moves run as fibers and must not push on
       the shared stack, or interleaved moves would mis-parent *)
    Obs.Trace.with_span_parent trace
      ~parent:(Obs.Trace.current trace)
      ~now:(Cluster.Topology.now t.State.cluster)
      ~node:t.State.local.Cluster.Topology.node_name ~kind:"rebalance.move"
      ~tags:
        [
          ("shard", string_of_int shard_id);
          ("from", from_node);
          ("to", to_node);
        ]
    @@ fun sp ->
    let group = Metadata.colocated_shards meta shard in
    let rows = ref 0 and catchup = ref 0 in
    (* citus.move_timeout: one absolute deadline for the whole group
       move, bounding every destination round trip inside the copies.
       On expiry the in-flight shard copy has already fenced itself off
       (source untouched, partial destination dropped); siblings that
       had fully cut over are copied {e back} — the copy-back reads the
       moved heap directly and its round trips go to the original
       source node, which is not the one stalling — so an abandoned
       move never leaves a colocation group split across two nodes. *)
    let deadline =
      let mt = t.State.config.State.move_timeout in
      if mt > 0.0 then Some (Cluster.Topology.now t.State.cluster () +. mt)
      else None
    in
    (try
       List.iter
         (fun (s : Metadata.shard) ->
           let r, c = move_one ?deadline t s ~from_node ~to_node in
           rows := !rows + r;
           catchup := !catchup + c)
         group
     with Cluster.Connection.Timed_out _ as e ->
       Obs.Metrics.inc m Obs.Metric_names.rebalance_move_timeouts;
       Obs.Trace.add_tag sp "timed_out" "true";
       List.iter
         (fun (s : Metadata.shard) ->
           if
             Metadata.placement_state_of meta ~shard_id:s.Metadata.shard_id
               ~node:to_node
             = Some Metadata.Active
           then
             ignore (move_one t s ~from_node:to_node ~to_node:from_node))
         group;
       raise e);
    (* under the cooperative scheduler a move occupies virtual time
       proportional to the data it shipped, so batched moves genuinely
       overlap on the clock instead of completing instantaneously *)
    (match sched with
     | Some sched ->
       Sim.Sched.sleep sched
         (0.001 +. (1e-6 *. float_of_int (!rows + !catchup)))
     | None -> ());
    Obs.Metrics.inc m Obs.Metric_names.rebalance_moves_completed;
    Obs.Metrics.inc m ~by:!rows Obs.Metric_names.rebalance_rows_copied;
    Obs.Metrics.inc m ~by:!catchup Obs.Metric_names.rebalance_catchup_records;
    Obs.Trace.add_tag sp "rows_copied" (string_of_int !rows);
    {
      moved_shards = List.map (fun (s : Metadata.shard) -> s.Metadata.shard_id) group;
      from_node;
      to_node;
      rows_copied = !rows;
      catchup_records = !catchup;
    }
  end

(* --- self-healing shard repair --- *)

(* Re-copy the Inactive placement of [shard_id] on [node] from a healthy
   (active, reachable) replica, then mark it Active again. *)
let repair_placement (t : State.t) ~shard_id ~node =
  let meta = t.State.metadata in
  let shard =
    match Metadata.shard_by_id meta shard_id with
    | Some s -> s
    | None -> err "no shard %d" shard_id
  in
  let source =
    match
      List.find_opt (State.reachable t) (Metadata.placements meta shard_id)
    with
    | Some n -> n
    | None -> err "shard %d has no reachable active placement" shard_id
  in
  copy_shard_to t shard ~from_node:source ~to_node:node ~drop_source:false
    ~finish_metadata:(fun () ->
      Metasync.mark_placement t.State.metasync ~shard_id ~node Metadata.Active)
    ()

(* Maintenance pass: walk every Inactive placement and repair the ones on
   reachable nodes. Skips (rather than fails on) placements whose repair is
   blocked or whose replicas are all unreachable. Returns how many
   placements came back. *)
let repair_inactive (t : State.t) =
  let repaired = ref 0 in
  List.iter
    (fun ((shard : Metadata.shard), node) ->
      if State.reachable t node then
        match repair_placement t ~shard_id:shard.Metadata.shard_id ~node with
        | _ -> incr repaired
        | exception _ ->
          Obs.Metrics.inc
            (Cluster.Topology.metrics t.State.cluster)
            Obs.Metric_names.rebalance_repairs_failed)
    (Metadata.inactive_placements t.State.metadata);
  if !repaired > 0 then
    Obs.Metrics.inc
      (Cluster.Topology.metrics t.State.cluster)
      ~by:!repaired Obs.Metric_names.rebalance_placements_repaired;
  !repaired

let distribution (t : State.t) =
  let meta = t.State.metadata in
  let nodes = Metadata.nodes_in_use meta in
  List.map (fun n -> (n, List.length (Metadata.shards_on_node meta n))) nodes

let shard_rows (t : State.t) (s : Metadata.shard) node =
  let inst = (Cluster.Topology.find_node t.State.cluster node).instance in
  match
    Engine.Catalog.find_table_opt (Engine.Instance.catalog inst)
      (Metadata.shard_name s)
  with
  | Some { Engine.Catalog.store = Engine.Catalog.Heap_store h; _ } ->
    Storage.Heap.live_estimate h
  | _ -> 0

let node_cost (t : State.t) policy node =
  let shards = Metadata.shards_on_node t.State.metadata node in
  match policy with
  | By_shard_count -> float_of_int (List.length shards)
  | By_size ->
    float_of_int
      (List.fold_left (fun acc s -> acc + shard_rows t s node) 0 shards)
  | Custom f -> f ~node ~shards

let rebalance ?(policy = By_shard_count) (t : State.t) =
  (* nodes to balance over: all active data nodes (from metadata use +
     any node the caller activated) *)
  let nodes =
    List.sort_uniq String.compare
      (Metadata.nodes_in_use t.State.metadata
      @ List.map
          (fun (n : Cluster.Topology.node) -> n.Cluster.Topology.node_name)
          (Cluster.Topology.data_nodes t.State.cluster))
  in
  let moves = ref [] in
  let continue = ref true in
  let guard = ref 0 in
  (* [Custom] cost functions are opaque per-node aggregates: one group's
     contribution cannot be subtracted virtually, so batches degrade to
     size 1 (re-measure after every move, exactly the old behaviour) *)
  let batch_limit =
    match policy with
    | Custom _ -> 1
    | By_shard_count | By_size ->
      max 1 t.State.config.State.max_parallel_moves
  in
  let group_cost (head : Metadata.shard) ~on_node =
    let group = Metadata.colocated_shards t.State.metadata head in
    match policy with
    | By_shard_count -> float_of_int (List.length group)
    | By_size ->
      float_of_int
        (List.fold_left (fun acc s -> acc + shard_rows t s on_node) 0 group)
    | Custom _ -> 1.0
  in
  while !continue && !guard < 1000 do
    incr guard;
    (* Plan a batch of up to [max_parallel_moves] group moves against a
       virtually updated cost table — each planned move debits its group
       cost from the source and credits the destination — then execute
       the whole batch concurrently. Distinct groups touch distinct
       shard tables and metadata rows, so batched moves cannot conflict
       on the cutover locks. *)
    let costs = ref (List.map (fun n -> (n, node_cost t policy n)) nodes) in
    let batch = ref [] in
    let scheduled_shards = ref [] in
    let planning = ref true in
    while !planning && List.length !batch < batch_limit do
      let busiest, bc =
        List.fold_left
          (fun (bn, bv) (n, v) -> if v > bv then (n, v) else (bn, bv))
          ("", neg_infinity) !costs
      in
      let idlest, ic =
        List.fold_left
          (fun (bn, bv) (n, v) -> if v < bv then (n, v) else (bn, bv))
          ("", infinity) !costs
      in
      (* moving one shard group changes each side by roughly one group's
         cost; stop when the gap cannot be improved *)
      let candidates = Metadata.shards_on_node t.State.metadata busiest in
      (* only consider one shard per colocation group index *)
      let group_heads =
        List.sort_uniq
          (fun (a : Metadata.shard) b ->
            Int.compare a.Metadata.index_in_colocation
              b.Metadata.index_in_colocation)
          candidates
      in
      (* with replication > 1 the idlest node may already hold a replica
         of a candidate group; those groups cannot move there. Groups
         already scheduled in this batch stay where planning put them. *)
      let movable =
        List.filter
          (fun s ->
            group_placeable t s ~to_node:idlest
            && not
                 (List.exists
                    (fun (g : Metadata.shard) ->
                      List.mem g.Metadata.shard_id !scheduled_shards)
                    (Metadata.colocated_shards t.State.metadata s)))
          group_heads
      in
      match movable with
      | head :: _ when bc -. ic > 1.0 && not (String.equal busiest idlest) ->
        let gc = group_cost head ~on_node:busiest in
        batch := (head.Metadata.shard_id, idlest) :: !batch;
        scheduled_shards :=
          List.map
            (fun (s : Metadata.shard) -> s.Metadata.shard_id)
            (Metadata.colocated_shards t.State.metadata head)
          @ !scheduled_shards;
        costs :=
          List.map
            (fun (n, v) ->
              if String.equal n busiest then (n, v -. gc)
              else if String.equal n idlest then (n, v +. gc)
              else (n, v))
            !costs
      | _ -> planning := false
    done;
    match List.rev !batch with
    | [] -> continue := false
    | batch_moves ->
      let executed =
        State.with_sched t (fun sched ->
            let fibers =
              List.map
                (fun (shard_id, to_node) ->
                  Sim.Sched.spawn sched ~node:to_node (fun () ->
                      (* a move abandoned at its deadline rolled itself
                         back and counted the timeout; the rest of the
                         batch — and the next planning round — proceed *)
                      try Some (move_shard_group ~sched t ~shard_id ~to_node)
                      with Cluster.Connection.Timed_out _ -> None))
                batch_moves
            in
            Sim.Sched.join_all sched fibers)
      in
      let abandoned = List.for_all Option.is_none executed in
      List.iter
        (fun mv -> moves := mv :: !moves)
        (List.filter_map Fun.id executed);
      (* every planned move timed out: stop instead of re-planning the
         same doomed batch against an unchanged distribution forever *)
      if abandoned then continue := false
  done;
  List.rev !moves
