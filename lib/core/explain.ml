let task_line (t : Plan.task) =
  let tables =
    match t.Plan.task_stmt with
    | Sqlfront.Ast.Select_stmt s ->
      String.concat ", "
        (List.concat_map Sqlfront.Ast.from_tables s.Sqlfront.Ast.from)
    | Sqlfront.Ast.Insert { table; _ }
    | Sqlfront.Ast.Update { table; _ }
    | Sqlfront.Ast.Delete { table; _ } ->
      table
    | _ -> "?"
  in
  Printf.sprintf "  Task on %s (group %d): %s" t.Plan.task_node
    t.Plan.task_group tables

let explain (t : State.t) sql =
  let stmt = Sqlfront.Parser.parse_statement sql in
  let meta = t.State.metadata in
  let catalog =
    Engine.Instance.catalog t.State.local.Cluster.Topology.instance
  in
  if Planner.citus_tables meta stmt = [] then
    "Local execution (no Citus tables)"
  else
    match
      Planner.plan meta ~catalog
        ~local_name:t.State.local.Cluster.Topology.node_name stmt
    with
    | plan, tier ->
      let buf = Buffer.create 256 in
      Buffer.add_string buf
        (Printf.sprintf "Distributed plan via %s planner\n"
           (Planner.tier_name tier));
      let tasks = Plan.tasks_of plan in
      Buffer.add_string buf
        (Printf.sprintf "Tasks: %d\n" (List.length tasks));
      List.iteri
        (fun i task ->
          if i < 4 then begin
            Buffer.add_string buf (task_line task);
            Buffer.add_char buf '\n'
          end)
        tasks;
      if List.length tasks > 4 then
        Buffer.add_string buf
          (Printf.sprintf "  ... and %d more tasks\n" (List.length tasks - 4));
      (match plan with
       | Plan.Multi_shard_select { merge; _ } ->
         Buffer.add_string buf
           (Printf.sprintf "Merge step on coordinator: %s\n"
              (Sqlfront.Deparse.select merge.Plan.master))
       | _ -> ());
      Buffer.contents buf
    | exception Planner.Unsupported m ->
      (match stmt with
       | Sqlfront.Ast.Select_stmt sel ->
         (* describe the join-order decision (estimates only) *)
         let session =
           Engine.Instance.connect t.State.local.Cluster.Topology.instance
         in
         (try
            let d = Join_order.decide t session sel in
            let moves =
              List.map
                (function
                  | Join_order.Broadcast { table; rows } ->
                    Printf.sprintf "  Broadcast %s (%d rows) to all anchor nodes"
                      table rows
                  | Join_order.Repartition { table; rows } ->
                    Printf.sprintf
                      "  Re-partition %s (%d rows) into %s's shard ranges" table
                      rows d.Join_order.anchor)
                d.Join_order.moves
            in
            String.concat "\n"
              (Printf.sprintf "Distributed plan via logical join-order planner"
               :: Printf.sprintf "Anchor relation: %s" d.Join_order.anchor
               :: moves
              @ [ Printf.sprintf "Estimated rows shipped: %d" d.Join_order.est_shipped; "" ])
          with Join_order.Unsupported m2 ->
            Printf.sprintf "Unsupported for distributed execution: %s" m2)
       | _ -> Printf.sprintf "Unsupported for distributed execution: %s" m)

(* EXPLAIN ANALYZE: actually run the query on a fresh session with
   tracing forced on, then render the span subtree it produced. The
   previous sink state is restored even if execution raises; the [mark]
   scopes the tree to exactly this query's spans, so the output is
   bit-identical across same-seed runs. *)
let explain_analyze (st : State.t) sql =
  let trace = Cluster.Topology.trace st.State.cluster in
  let was = Obs.Trace.enabled trace in
  Obs.Trace.set_enabled trace true;
  let mark = Obs.Trace.mark trace in
  Fun.protect
    ~finally:(fun () -> Obs.Trace.set_enabled trace was)
    (fun () ->
      let session =
        Engine.Instance.connect st.State.local.Cluster.Topology.instance
      in
      ignore (Engine.Instance.exec session sql));
  match Obs.Trace.render_tree (Obs.Trace.spans_since trace mark) with
  | [] -> "no spans recorded"
  | lines -> String.concat "\n" lines
