(* The one documented execution boundary.

   Three overlapping entry points grew up under this layer: a
   breaker-feeding State wrapper, raw [Cluster.Connection] calls (no
   health accounting) and the [Adaptive_executor]/[Dist_executor]
   runners — each reporting infrastructure failures as a different
   exception. This module now owns the per-connection primitives: the
   [_exn] forms are the raising internals (network simulation guards +
   circuit-breaker accounting over [Connection.exec_async]); the typed
   forms wrap them into [Ok _ | Error of exec_error] for callers above
   the Citus layer. The executors themselves sit {e above} this module
   and build on the [_exn] forms.

   Deliberately NOT mapped to [Error]:
   - [Engine.Executor.Would_block] — a retryable lock-wait signal, part
     of normal control flow (see [Api.exec_with_retries]);
   - [Engine.Instance.Session_error] — a statement-level error that must
     abort the enclosing transaction through the engine's own path. *)

type exec_error =
  | Node_unavailable of { node : string; reason : string }
      (* fault-injection layer rejected the round trip *)
  | Network_error of string
      (* partition or crash observed mid-statement *)
  | Txn_replica_lost of string
      (* sole replica of in-transaction writes is gone; must abort *)
  | Catalog_error of string
      (* no active placement / unknown shard *)
  | Timed_out of { node : string }
      (* statement deadline expired waiting on the node — a gray
         failure: the node is alive, the statement may have executed *)
  | Bind_error of { stmt_name : string; param : int }
      (* EXECUTE did not supply a value for parameter $n of the
         prepared statement *)

exception Bind_failure of { stmt_name : string; param : int }

let error_message = function
  | Node_unavailable { node; reason } ->
    Printf.sprintf "node %s unavailable: %s" node reason
  | Network_error m -> m
  | Txn_replica_lost node ->
    Printf.sprintf
      "node %s failed holding the only replica of data this transaction \
       wrote; aborting to preserve atomicity"
      node
  | Catalog_error m -> m
  | Timed_out { node } ->
    Printf.sprintf
      "canceling statement due to statement timeout: node %s did not answer \
       before the deadline"
      node
  | Bind_error { stmt_name; param } ->
    Printf.sprintf "no value for parameter $%d in prepared statement %s" param
      stmt_name

let wrap f =
  match f () with
  | v -> Ok v
  | exception Cluster.Connection.Node_unavailable { node; reason } ->
    Error (Node_unavailable { node; reason })
  | exception Cluster.Connection.Timed_out { node; _ } ->
    Error (Timed_out { node })
  | exception State.Network_error m -> Error (Network_error m)
  | exception State.Txn_replica_lost node -> Error (Txn_replica_lost node)
  | exception Metadata.Catalog_error m -> Error (Catalog_error m)
  | exception Bind_failure { stmt_name; param } ->
    Error (Bind_error { stmt_name; param })

(* Execute on a connection, simulating the network: partition and
   injected-failure checks up front, then the split submit/await round
   trip (bounded by [?deadline], absolute virtual time). Every
   infrastructure-fault outcome feeds the node's circuit breaker;
   statement errors do not; a deadline expiry feeds the breaker's
   latency-aware trip signal instead of the failure one. [?snapshot]
   pins the remote session's read visibility for just this statement —
   a per-request header, not connection state, so an interleaved
   statement from another code path never inherits it. *)
let on_conn_exn ?deadline ?snapshot (t : State.t) conn sql =
  let node = (Cluster.Connection.node conn).Cluster.Topology.node_name in
  let run () =
    try
      State.check_reachable t node;
      State.check_injected t node sql;
      let r =
        (Cluster.Connection.(await ?deadline (exec_async conn sql))
         [@lint.blocking])
        (* boundary primitive: runs both under a scheduler (executor
           fibers) and outside one (setup, maintenance) — Connection.await
           falls back to a clock advance when no scheduler is ambient *)
      in
      Health.record_success t.State.health node;
      r
    with
    | (State.Network_error _ | Cluster.Connection.Node_unavailable _) as e ->
      (* both are infrastructure faults, not statement errors: they feed
         the breaker and stay distinguishable for the executors *)
      Health.record_failure t.State.health node;
      raise e
    | Cluster.Connection.Timed_out _ as e ->
      (* slow, not dead: sheds load via the breaker without ever counting
         toward failover's consecutive-failure bookkeeping *)
      Health.record_slow t.State.health node;
      raise e
  in
  match snapshot with
  | None -> run ()
  | Some mode ->
    let saved = Cluster.Connection.read_mode conn in
    Cluster.Connection.set_read_mode conn mode;
    Fun.protect
      ~finally:(fun () -> Cluster.Connection.set_read_mode conn saved)
      run

let ast_on_conn_exn ?deadline ?snapshot t conn stmt =
  on_conn_exn ?deadline ?snapshot t conn (Sqlfront.Deparse.statement stmt)

(* Raw round trip: no partition check, no breaker accounting — for
   best-effort cleanup (ROLLBACK on a connection that just failed) and
   shard-local plumbing whose failures the caller counts itself. *)
let raw_on_conn_exn conn sql =
  (Cluster.Connection.(await (exec_async conn sql)) [@lint.blocking])

(* Fire-and-forget cleanup: submit, never wait for the reply. The only
   safe way to ROLLBACK at a node that may be stalled — a cancelling
   statement must not wait out the very stall it is escaping. *)
let post_on_conn conn sql = Cluster.Connection.post conn sql

let on_conn ?deadline ?snapshot st conn sql =
  wrap (fun () -> on_conn_exn ?deadline ?snapshot st conn sql)

let ast_on_conn ?deadline ?snapshot st conn stmt =
  wrap (fun () -> ast_on_conn_exn ?deadline ?snapshot st conn stmt)

let raw_on_conn conn sql = wrap (fun () -> raw_on_conn_exn conn sql)
