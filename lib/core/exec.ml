(* The one documented execution boundary.

   Three overlapping entry points grew up under this layer: a
   breaker-feeding State wrapper, raw [Cluster.Connection] calls (no
   health accounting) and the [Adaptive_executor]/[Dist_executor]
   runners — each reporting infrastructure failures as a different
   exception. This module now owns the per-connection primitives: the
   [_exn] forms are the raising internals (network simulation guards +
   circuit-breaker accounting over [Connection.exec_async]); the typed
   forms wrap them into [Ok _ | Error of exec_error] for callers above
   the Citus layer. The executors themselves sit {e above} this module
   and build on the [_exn] forms.

   Deliberately NOT mapped to [Error]:
   - [Engine.Executor.Would_block] — a retryable lock-wait signal, part
     of normal control flow (see [Api.exec_with_retries]);
   - [Engine.Instance.Session_error] — a statement-level error that must
     abort the enclosing transaction through the engine's own path. *)

type exec_error =
  | Node_unavailable of { node : string; reason : string }
      (* fault-injection layer rejected the round trip *)
  | Network_error of string
      (* partition or crash observed mid-statement *)
  | Txn_replica_lost of string
      (* sole replica of in-transaction writes is gone; must abort *)
  | Catalog_error of string
      (* no active placement / unknown shard *)

let error_message = function
  | Node_unavailable { node; reason } ->
    Printf.sprintf "node %s unavailable: %s" node reason
  | Network_error m -> m
  | Txn_replica_lost node ->
    Printf.sprintf
      "node %s failed holding the only replica of data this transaction \
       wrote; aborting to preserve atomicity"
      node
  | Catalog_error m -> m

let wrap f =
  match f () with
  | v -> Ok v
  | exception Cluster.Connection.Node_unavailable { node; reason } ->
    Error (Node_unavailable { node; reason })
  | exception State.Network_error m -> Error (Network_error m)
  | exception State.Txn_replica_lost node -> Error (Txn_replica_lost node)
  | exception Metadata.Catalog_error m -> Error (Catalog_error m)

(* Execute on a connection, simulating the network: partition and
   injected-failure checks up front, then the split submit/await round
   trip. Every infrastructure-fault outcome feeds the node's circuit
   breaker; statement errors do not. *)
let on_conn_exn (t : State.t) conn sql =
  let node = (Cluster.Connection.node conn).Cluster.Topology.node_name in
  try
    State.check_reachable t node;
    State.check_injected t node sql;
    let r = Cluster.Connection.(await (exec_async conn sql)) in
    Health.record_success t.State.health node;
    r
  with (State.Network_error _ | Cluster.Connection.Node_unavailable _) as e ->
    (* both are infrastructure faults, not statement errors: they feed
       the breaker and stay distinguishable for the executors *)
    Health.record_failure t.State.health node;
    raise e

let ast_on_conn_exn t conn stmt =
  on_conn_exn t conn (Sqlfront.Deparse.statement stmt)

(* Raw round trip: no partition check, no breaker accounting — for
   best-effort cleanup (ROLLBACK on a connection that just failed) and
   shard-local plumbing whose failures the caller counts itself. *)
let raw_on_conn_exn conn sql = Cluster.Connection.(await (exec_async conn sql))

let on_conn st conn sql = wrap (fun () -> on_conn_exn st conn sql)

let ast_on_conn st conn stmt = wrap (fun () -> ast_on_conn_exn st conn stmt)

let raw_on_conn conn sql = wrap (fun () -> raw_on_conn_exn conn sql)
