(* The one documented execution boundary.

   Three overlapping entry points grew up under this layer:
   [State.exec_on] (breaker-feeding, partition-aware), raw
   [Cluster.Connection.exec] (no health accounting) and the
   [Adaptive_executor]/[Dist_executor] runners — each reporting
   infrastructure failures as a different exception. Callers above the
   Citus layer should come through here instead: every function returns
   [Ok _ | Error of exec_error] with the failure cause as a structured
   variant, never an infrastructure exception.

   Deliberately NOT mapped to [Error]:
   - [Engine.Executor.Would_block] — a retryable lock-wait signal, part
     of normal control flow (see [Api.exec_with_retries]);
   - [Engine.Instance.Session_error] — a statement-level error that must
     abort the enclosing transaction through the engine's own path. *)

type exec_error =
  | Node_unavailable of { node : string; reason : string }
      (* fault-injection layer rejected the round trip *)
  | Network_error of string
      (* partition or crash observed mid-statement *)
  | Txn_replica_lost of string
      (* sole replica of in-transaction writes is gone; must abort *)
  | Catalog_error of string
      (* no active placement / unknown shard *)

let error_message = function
  | Node_unavailable { node; reason } ->
    Printf.sprintf "node %s unavailable: %s" node reason
  | Network_error m -> m
  | Txn_replica_lost node ->
    Printf.sprintf
      "node %s failed holding the only replica of data this transaction \
       wrote; aborting to preserve atomicity"
      node
  | Catalog_error m -> m

let wrap f =
  match f () with
  | v -> Ok v
  | exception Cluster.Connection.Node_unavailable { node; reason } ->
    Error (Node_unavailable { node; reason })
  | exception State.Network_error m -> Error (Network_error m)
  | exception Adaptive_executor.Txn_replica_lost node ->
    Error (Txn_replica_lost node)
  | exception Metadata.Catalog_error m -> Error (Catalog_error m)

let on_conn st conn sql = wrap (fun () -> State.exec_on st conn sql)

let ast_on_conn st conn stmt = wrap (fun () -> State.exec_ast_on st conn stmt)

let raw_on_conn conn sql = wrap (fun () -> Cluster.Connection.exec conn sql)

let run_tasks st session tasks =
  wrap (fun () -> Adaptive_executor.execute st session tasks)

let run_plan st session plan =
  wrap (fun () -> Dist_executor.execute st session plan)
