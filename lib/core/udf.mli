(** Typed signature combinators for the [citus_*] UDF surface.

    A UDF is declared with a signature instead of a hand-written
    [match args] block:

    {[
      Udf.(register inst "citus_move_shard_placement"
             (int "shard_id" @-> text "to_node" @-> returning nothing)
             (fun session shard_id to_node () -> ...))
    ]}

    The combinator arity- and type-checks the datum arguments, passes
    decoded OCaml values to the implementation, encodes the typed return
    value back to a datum, and renders the one uniform usage error
    ([ERROR: citus_fn(sig)]) from the signature itself on any mismatch —
    the error text can never drift from the declared signature.

    Implementations take a final [unit] argument, applied only after the
    whole argument list has validated: a usage error never half-runs a
    UDF. *)

(** A named, typed parameter. *)
type 'a arg

val int : string -> int arg
val text : string -> string arg

(** Accepts any datum unchanged (distribution-column values). *)
val value : string -> Datum.t arg

(** Typed return value, encoded back to a datum. *)
type _ ret

val nothing : unit ret
val int_result : int ret

(** [Some n] encodes as an int, [None] as SQL NULL. *)
val int_or_null : int option ret

val text_result : string ret

(** A JSON document (introspection views). *)
val rows : Json.t ret

(** A full signature: zero or more parameters then a return type. *)
type _ spec

val returning : 'r ret -> (unit -> 'r) spec

(** Required parameter. *)
val ( @-> ) : 'a arg -> 'b spec -> ('a -> 'b) spec

(** Trailing optional parameter: decodes to [None] when absent. *)
val ( @?-> ) : 'a arg -> 'b spec -> ('a option -> 'b) spec

(** [signature name spec] renders ["name(a int, b text [, c text])"] —
    the text used in usage errors. *)
val signature : string -> 'f spec -> string

(** Type-check [args] against [spec] and run the implementation.
    Raises [Engine.Instance.Session_error] with the uniform usage
    message on arity or type mismatch. Exposed for tests. *)
val apply : string -> 'f spec -> 'f -> Datum.t list -> Datum.t

(** Register a typed UDF on an engine instance. [Invalid_argument] from
    the implementation (metadata-level misuse) is re-raised as a clean
    session error. *)
val register :
  Engine.Instance.t ->
  string ->
  'f spec ->
  (Engine.Instance.session -> 'f) ->
  unit
