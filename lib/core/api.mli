(** The Citus extension entry point.

    [install] loads the extension into a cluster's coordinator: it
    registers the planner / utility / COPY hooks, the transaction
    callbacks, the maintenance daemon (2PC recovery + distributed deadlock
    detection), and the user-facing UDFs:

    - [SELECT create_distributed_table('t', 'col')]
    - [SELECT create_distributed_table('t', 'col', 'colocate_with_table')]
    - [SELECT create_reference_table('t')]
    - [SELECT create_distributed_function('proc', arg_position, 'table')]
    - [SELECT citus_add_node('worker5')]
    - [SELECT rebalance_table_shards()]

    [enable_metadata_sync] installs the same hooks on every active worker
    sharing the same metadata, turning each worker into a coordinator for
    the queries it receives (§3.2.1); clients then load-balance with
    {!connect_via}. *)

type t = {
  cluster : Cluster.Topology.t;
  metadata : Metadata.t;
      (** the bootstrap coordinator's catalog — the metasync origin *)
  metasync : Metasync.t;
      (** metadata-sync layer: every catalog mutation flows through it and
          fans out to all node replicas in lockstep (MX, §3.2.1) *)
  registry : ((string * int), string * int) Hashtbl.t;
  mutable states : State.t list;  (** one per node running the extension *)
  mutable active_data_nodes : string list;
  mutable replication_factor : int;
      (** placements per shard for subsequently created distributed tables
          (citus.shard_replication_factor); capped at the node count *)
  procedures : (string, int * string) Hashtbl.t;
      (** delegated procedures: name -> (1-based dist arg position, table) *)
  plancache : Plancache.t;
      (** cluster-wide distributed plan cache, validated against
          {!Metadata.version} at every cached EXECUTE *)
}

(** Install on the coordinator. [active_workers] limits initial shard
    placement to the first n workers (the rest join via [citus_add_node]).
    [shard_count] defaults to 32. *)
val install :
  ?shard_count:int -> ?active_workers:int -> Cluster.Topology.t -> t

val coordinator_state : t -> State.t

(** Session on the coordinator (the normal client entry point). *)
val connect : t -> Engine.Instance.session

(** Session on an arbitrary node — requires metadata sync for that node to
    plan distributed queries itself. *)
val connect_via : t -> Cluster.Topology.node -> Engine.Instance.session

(** Turn every active worker into a coordinator (§3.2.1). *)
val enable_metadata_sync : t -> unit

(** Run every node's maintenance daemon once (autovacuum, local deadlock
    detection, 2PC recovery, distributed deadlock detection). *)
val maintenance : t -> unit

(** Direct API equivalents of the UDFs (used by OCaml callers). *)
val create_distributed_table :
  t -> table:string -> column:string -> ?colocate_with:string -> unit -> unit

val create_reference_table : t -> table:string -> unit

val create_distributed_function :
  t -> proc:string -> arg_position:int -> table:string -> unit

(** Replication factor for tables created afterwards (also available as
    [SELECT citus_set_replication_factor(n)]). *)
val set_replication_factor : t -> int -> unit

(** Cluster health snapshot: per-node breaker/failure stats and the
    current Inactive placements (also available as
    [SELECT citus_health_report()], which returns JSON). *)
val health_report :
  t -> Health.node_report list * (Metadata.shard * string) list

(** Withdraw the session transaction's pending lock-wait registrations —
    on its own node and on every worker its distributed transaction
    reached — so an abandoned waiter never feeds stale edges to the
    distributed deadlock detector. Called automatically when
    {!exec_with_retries} gives up; idempotent. *)
val cancel_lock_waits : t -> Engine.Instance.session -> unit

(** Execute, retrying on {!Engine.Executor.Would_block} with a maintenance
    tick and a deterministic {!Sim.Clock} backoff between attempts (the
    deadlock detector may abort a cycle member, releasing the lock); the
    backoff carries a bounded seeded jitter draw so contending retriers
    de-synchronize. On final give-up the pending lock waits are withdrawn
    ({!cancel_lock_waits}) before the conflict propagates.
    Re-raises after [attempts]. *)
val exec_with_retries :
  t -> Engine.Instance.session -> ?attempts:int -> string ->
  Engine.Instance.result

(** Like {!exec_with_retries}, also returning how many attempts the
    statement took (1 = no conflict). *)
val exec_with_retries_report :
  t -> Engine.Instance.session -> ?attempts:int -> string ->
  Engine.Instance.result * int

(** State of the node a session is connected to (for tests). *)
val state_for : t -> Engine.Instance.session -> State.t
