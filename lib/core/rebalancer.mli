(** The shard rebalancer (§3.4).

    A shard move mimics logical replication: a snapshot of the source shard
    is copied to the target while reads and writes continue; then writes
    are blocked briefly (an [Access_exclusive] lock on the source shard),
    the WAL delta accumulated since the copy started is applied to the
    target, metadata flips to the new placement, and the source shard is
    dropped. Co-located shards (same group index, other tables of the
    colocation group) move together so co-location is preserved.

    Policies: [By_shard_count] evens out the number of shards per node
    (the default), [By_size] evens out row counts. Users can supply a
    custom [cost] function, mirroring the SQL-definable policies of the
    real rebalancer. *)

type policy =
  | By_shard_count
  | By_size
  | Custom of (node:string -> shards:Metadata.shard list -> float)
      (** cost of a node given its shards; the rebalancer moves shards
          from the costliest node to the cheapest *)

type move = {
  moved_shards : int list;  (** shard ids moved together (colocated) *)
  from_node : string;
  to_node : string;
  rows_copied : int;
  catchup_records : int;  (** WAL records applied during the blocked window *)
}

exception Move_blocked of int list
(** A writer still holds locks on the shard; retry after it finishes. *)

(** Move one shard group (the shard and its co-located siblings). When
    [sched] is given — the rebalancer batching moves — the move also
    occupies virtual time proportional to the rows it shipped, so
    concurrent moves overlap on the clock. *)
val move_shard_group :
  ?sched:Sim.Sched.t -> State.t -> shard_id:int -> to_node:string -> move

(** Rebalance until the policy is satisfied; returns the moves performed.
    Each round plans up to [config.max_parallel_moves] non-conflicting
    group moves against a virtually updated cost table and executes the
    batch as concurrent {!Sim.Sched} fibers ([Custom] policies plan one
    move at a time — their cost is an opaque per-node aggregate). *)
val rebalance : ?policy:policy -> State.t -> move list

(** Re-copy the Inactive placement of a shard on [node] from a healthy
    active replica (same snapshot + WAL catch-up machinery as a move, but
    the source placement keeps serving) and mark it Active. Returns
    (rows copied, catchup records). *)
val repair_placement : State.t -> shard_id:int -> node:string -> int * int

(** Self-healing maintenance pass: repair every Inactive placement whose
    node is reachable; skips the ones that are blocked or sourceless.
    Returns the number of placements repaired. *)
val repair_inactive : State.t -> int

(** Shards per node (for tests and the rebalance report). *)
val distribution : State.t -> (string * int) list
