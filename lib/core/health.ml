type breaker = Closed | Open | Half_open

let breaker_name = function
  | Closed -> "closed"
  | Open -> "open"
  | Half_open -> "half-open"

type node_stats = {
  mutable consecutive_failures : int;
  mutable failures : int;
  mutable successes : int;
  mutable failed_commits : int;
  mutable ignored_errors : int;
  mutable slow_events : int;
  mutable consecutive_slow : int;
  mutable breaker : breaker;
  mutable opened_at : float;
  mutable backoff : float;
}

type t = {
  clock : Sim.Clock.t;
  nodes : (string, node_stats) Hashtbl.t;
  metrics : Obs.Metrics.t option;
  mutable failure_threshold : int;
  mutable slow_threshold : int;
  mutable base_backoff : float;
  mutable max_backoff : float;
}

let create ?(failure_threshold = 3) ?(slow_threshold = 3) ?(base_backoff = 1.0)
    ?(max_backoff = 30.0) ?metrics ~clock () =
  {
    clock;
    nodes = Hashtbl.create 8;
    metrics;
    failure_threshold;
    slow_threshold;
    base_backoff;
    max_backoff;
  }

(* Breaker transition accounting: counters per edge of the state
   machine, plus a gauge of currently-tripped breakers (Half_open still
   counts as tripped — only a successful probe closes it). The chaos
   invariants check the gauge returns to zero and never goes negative. *)
let note_transition t ~from_ ~to_ =
  match t.metrics with
  | None -> ()
  | Some m ->
    if from_ <> to_ then begin
      Obs.Metrics.inc m
        (Obs.Metric_names.breaker_transition ~from_:(breaker_name from_)
           ~to_:(breaker_name to_));
      (match from_, to_ with
       | Closed, (Open | Half_open) -> Obs.Metrics.gauge_add m Obs.Metric_names.breaker_tripped 1.0
       | (Open | Half_open), Closed -> Obs.Metrics.gauge_add m Obs.Metric_names.breaker_tripped (-1.0)
       | _ -> ())
    end

let stats t node =
  match Hashtbl.find_opt t.nodes node with
  | Some s -> s
  | None ->
    let s =
      {
        consecutive_failures = 0;
        failures = 0;
        successes = 0;
        failed_commits = 0;
        ignored_errors = 0;
        slow_events = 0;
        consecutive_slow = 0;
        breaker = Closed;
        opened_at = 0.0;
        backoff = t.base_backoff;
      }
    in
    Hashtbl.replace t.nodes node s;
    s

(* Resolve the time-dependent part of the state machine: an Open breaker
   becomes Half_open once its backoff has elapsed, letting one probe
   through. *)
let breaker_state t node =
  let s = stats t node in
  (match s.breaker with
   | Open when Sim.Clock.now t.clock -. s.opened_at >= s.backoff ->
     s.breaker <- Half_open;
     note_transition t ~from_:Open ~to_:Half_open
   | _ -> ());
  s.breaker

let record_success t node =
  let s = stats t node in
  s.successes <- s.successes + 1;
  s.consecutive_failures <- 0;
  s.consecutive_slow <- 0;
  note_transition t ~from_:s.breaker ~to_:Closed;
  s.breaker <- Closed;
  s.backoff <- t.base_backoff

let record_failure t node =
  let s = stats t node in
  s.failures <- s.failures + 1;
  s.consecutive_failures <- s.consecutive_failures + 1;
  match breaker_state t node with
  | Half_open ->
    (* the probe failed: re-open with a doubled backoff *)
    s.breaker <- Open;
    s.opened_at <- Sim.Clock.now t.clock;
    s.backoff <- Float.min t.max_backoff (s.backoff *. 2.0);
    note_transition t ~from_:Half_open ~to_:Open
  | Closed when s.consecutive_failures >= t.failure_threshold ->
    s.breaker <- Open;
    s.opened_at <- Sim.Clock.now t.clock;
    note_transition t ~from_:Closed ~to_:Open
  | _ -> ()

(* Gray failure: the node answered, just far too late (a statement
   deadline expired against it). Distinct from [record_failure] in every
   consequence that matters: it never counts as a hard failure — so
   failover logic keyed on [consecutive_failures] / placement-marking
   never treats the node as dead — but enough consecutive slow events
   still trip the breaker [Open], shedding load until the backoff gives
   the node a chance to catch up. *)
let record_slow t node =
  let s = stats t node in
  s.slow_events <- s.slow_events + 1;
  s.consecutive_slow <- s.consecutive_slow + 1;
  (match t.metrics with
   | Some m -> Obs.Metrics.inc m Obs.Metric_names.health_slow_events
   | None -> ());
  match breaker_state t node with
  | Half_open ->
    s.breaker <- Open;
    s.opened_at <- Sim.Clock.now t.clock;
    s.backoff <- Float.min t.max_backoff (s.backoff *. 2.0);
    note_transition t ~from_:Half_open ~to_:Open;
    (match t.metrics with
     | Some m -> Obs.Metrics.inc m Obs.Metric_names.breaker_tripped_slow
     | None -> ())
  | Closed when s.consecutive_slow >= t.slow_threshold ->
    s.breaker <- Open;
    s.opened_at <- Sim.Clock.now t.clock;
    note_transition t ~from_:Closed ~to_:Open;
    (match t.metrics with
     | Some m -> Obs.Metrics.inc m Obs.Metric_names.breaker_tripped_slow
     | None -> ())
  | _ -> ()

let slow_events t node = (stats t node).slow_events

let record_failed_commit t node =
  let s = stats t node in
  s.failed_commits <- s.failed_commits + 1

let failed_commits t node = (stats t node).failed_commits

(* Best-effort cleanup (ROLLBACK on a node already failing) deliberately
   tolerates errors, but never silently: the count keeps swallowed
   exceptions visible to monitoring and tests. *)
let record_ignored t node =
  let s = stats t node in
  s.ignored_errors <- s.ignored_errors + 1

let ignored_errors t node = (stats t node).ignored_errors

let available t node = breaker_state t node <> Open

let retry_backoff t node = (stats t node).backoff

type node_report = {
  nr_node : string;
  nr_breaker : breaker;
  nr_consecutive_failures : int;
  nr_failures : int;
  nr_successes : int;
  nr_failed_commits : int;
  nr_ignored_errors : int;
  nr_slow_events : int;
}

let report t =
  Hashtbl.fold
    (fun node s acc ->
      {
        nr_node = node;
        nr_breaker = breaker_state t node;
        nr_consecutive_failures = s.consecutive_failures;
        nr_failures = s.failures;
        nr_successes = s.successes;
        nr_failed_commits = s.failed_commits;
        nr_ignored_errors = s.ignored_errors;
        nr_slow_events = s.slow_events;
      }
      :: acc)
    t.nodes []
  |> List.sort (fun a b -> String.compare a.nr_node b.nr_node)
