(* The metadata-sync layer (Citus MX, §2 "any node"): every catalog
   mutation flows through here, and is applied to the origin catalog
   plus one full replica per metadata-synced node, in the same order
   everywhere. Replicas stay bit-identical because [Metadata]'s id
   sequences (shard ids, colocation ids, version) advance in lockstep
   under an identical op order — so a worker planning a fast-path query
   against its own replica routes to exactly the shards the bootstrap
   coordinator would, and [Metadata.version] moves identically on every
   node, invalidating the shared plan cache cluster-wide.

   Late attach replays the op log, modeling the initial catalog dump a
   real `citus_activate_node` ships before streaming deltas.

   Lint rule L16 enforces the discipline: outside this module (and
   [Metadata] itself), no code may call a catalog mutator directly. *)

type t = {
  origin : Metadata.t;
  mutable replicas : (string * Metadata.t) list;
      (* node name -> synced replica (the origin node is not listed) *)
  mutable log : (Metadata.t -> unit) list;  (* newest first *)
  metrics : Obs.Metrics.t;
}

let create ~metrics origin = { origin; replicas = []; log = []; metrics }

let origin t = t.origin

let replica t node = List.assoc_opt node t.replicas

let synced_nodes t = List.map fst t.replicas

(* Run one sanctioned mutation everywhere: origin first (its result is
   the caller's), then each synced replica, then append to the op log
   for nodes that attach later. *)
let apply t op =
  let r = op t.origin in
  List.iter
    (fun (_, m) ->
      ignore (op m);
      Obs.Metrics.inc t.metrics Obs.Metric_names.mx_metadata_syncs)
    t.replicas;
  t.log <- (fun m -> ignore (op m)) :: t.log;
  r

let attach t node =
  match List.assoc_opt node t.replicas with
  | Some m -> m
  | None ->
    let m =
      Metadata.create ~shard_count:(Metadata.default_shard_count t.origin) ()
    in
    let ops = List.rev t.log in
    List.iter (fun op -> op m) ops;
    if ops <> [] then
      Obs.Metrics.inc ~by:(List.length ops) t.metrics
        Obs.Metric_names.mx_metadata_syncs;
    t.replicas <- t.replicas @ [ (node, m) ];
    m

(* --- the sanctioned catalog mutators --- *)

let register_distributed ?replication_factor t ~table ~column ~ty ~colocate_with
    ~nodes =
  apply t (fun m ->
      Metadata.register_distributed ?replication_factor m ~table ~column ~ty
        ~colocate_with ~nodes)

let register_reference t ~table ~nodes =
  apply t (fun m -> Metadata.register_reference m ~table ~nodes)

let drop_table t name = apply t (fun m -> Metadata.drop_table m name)

let mark_placement t ~shard_id ~node state =
  apply t (fun m -> Metadata.mark_placement m ~shard_id ~node state)

let update_placement t ~shard_id ~from_node ~to_node =
  apply t (fun m -> Metadata.update_placement m ~shard_id ~from_node ~to_node)

let add_placement t ~shard_id ~node =
  apply t (fun m -> Metadata.add_placement m ~shard_id ~node)

let replace_shard t ~shard_id ~ranges =
  apply t (fun m -> Metadata.replace_shard m ~shard_id ~ranges)

let renumber_colocation t ~colocation_id =
  apply t (fun m -> Metadata.renumber_colocation m ~colocation_id)

let bump_version t = apply t Metadata.bump_version
