(* Typed signature combinators for citus_* UDFs.

   Every UDF used to be registered as [Datum.t list -> Datum.t] with its
   own ad-hoc [match args] block and hand-rolled error string. A
   signature built from these combinators does the arity and type
   checking once, applies the (now fully typed) implementation, and — on
   any mismatch — raises the one uniform error rendered from the
   signature itself, e.g.

     ERROR: citus_move_shard_placement(shard_id int, to_node text)

   so the message can never drift from the actual signature. *)

type 'a arg = {
  aname : string;
  aty : string;
  decode : Datum.t -> 'a option;
}

let int aname =
  { aname; aty = "int"; decode = (function Datum.Int n -> Some n | _ -> None) }

let text aname =
  {
    aname;
    aty = "text";
    decode = (function Datum.Text s -> Some s | _ -> None);
  }

(* any datum: distribution-column values keep their engine type *)
let value aname = { aname; aty = "value"; decode = (fun d -> Some d) }

type _ ret =
  | Unit : unit ret
  | Int_result : int ret
  | Int_or_null : int option ret
  | Text_result : string ret
  | Rows : Json.t ret

let nothing = Unit
let int_result = Int_result
let int_or_null = Int_or_null
let text_result = Text_result
let rows = Rows

(* [Returning] closes the spec with [unit -> 'r], not ['r]: partial
   application of a curried implementation is effect-free, so delaying
   the final [()] until the whole argument list has validated means a
   usage error can never half-run a UDF (e.g. a zero-argument
   rebalance called with spurious arguments). *)
type _ spec =
  | Returning : 'r ret -> (unit -> 'r) spec
  | Required : 'a arg * 'b spec -> ('a -> 'b) spec
  | Optional : 'a arg * 'b spec -> ('a option -> 'b) spec

let returning r = Returning r
let ( @-> ) a s = Required (a, s)
let ( @?-> ) a s = Optional (a, s)

let signature name spec =
  let rec go : type f. f spec -> string list * string list = function
    | Returning _ -> ([], [])
    | Required (a, rest) ->
      let req, opt = go rest in
      ((a.aname ^ " " ^ a.aty) :: req, opt)
    | Optional (a, rest) ->
      let req, opt = go rest in
      (req, (a.aname ^ " " ^ a.aty) :: opt)
  in
  let req, opt = go spec in
  let opt_str = String.concat "" (List.map (fun o -> " [, " ^ o ^ "]") opt) in
  Printf.sprintf "%s(%s%s)" name (String.concat ", " req) opt_str

let encode : type r. r ret -> r -> Datum.t =
 fun ret v ->
  match ret with
  | Unit -> Datum.Null
  | Int_result -> Datum.Int v
  | Int_or_null -> (
    match v with Some n -> Datum.Int n | None -> Datum.Null)
  | Text_result -> Datum.Text v
  | Rows -> Datum.Json v

(* The payload is the bare signature: clients prepend "ERROR: " when
   printing a Session_error, exactly as psql does. *)
let usage_error name spec =
  raise (Engine.Instance.Session_error (signature name spec))

(* Walk the spec and the argument list together, consuming one datum per
   parameter; [f] accumulates the partial application. Trailing optional
   parameters absorb an absent argument as [None]. Anything else —
   wrong arity, wrong type — is the one uniform usage error. *)
let apply name spec impl args =
  let rec go : type f. f spec -> f -> Datum.t list -> Datum.t =
   fun s f rest ->
    match (s, rest) with
    | Returning r, [] -> encode r (f ())
    | Returning _, _ :: _ -> usage_error name spec
    | Required (a, s'), d :: rest' -> (
      match a.decode d with
      | Some v -> go s' (f v) rest'
      | None -> usage_error name spec)
    | Required _, [] -> usage_error name spec
    | Optional (a, s'), d :: rest' -> (
      match a.decode d with
      | Some v -> go s' (f (Some v)) rest'
      | None -> usage_error name spec)
    | Optional (_, s'), [] -> go s' (f None) []
  in
  go spec impl args

let register inst name spec impl =
  Engine.Instance.register_udf inst name (fun session args ->
      (* metadata-level misuse surfaces as a clean session error *)
      try apply name spec (impl session) args
      with Invalid_argument m ->
        raise (Engine.Instance.Session_error m))
