(** Distributed query plans (§3.5).

    A plan is a set of tasks — statements bound to shards on specific
    nodes — plus an optional coordinator-side merge step. The planners in
    {!Planner} produce these; {!Dist_executor} runs them through the
    adaptive executor. *)

type task = {
  task_node : string;  (** target node name *)
  task_stmt : Sqlfront.Ast.statement;  (** already shard-rewritten *)
  task_group : int;  (** shard-group index; -1 when not shard-bound *)
  task_shard : int;
      (** anchor shard id, or -1 when not shard-bound. Lets the executor
          find the other replicas of the shard: reads fail over to them,
          writes are replicated across them (statement-based replication). *)
}

(** Coordinator merge step for multi-shard SELECTs: collected task rows are
    materialized into an intermediate relation and [master] runs over it. *)
type merge = {
  master : Sqlfront.Ast.select;
  intermediate_columns : string list;
}

type t =
  | Fast_path of task
      (** single-shard CRUD; distribution value extracted directly *)
  | Router of task
      (** arbitrary single-shard-group query *)
  | Multi_shard_select of { tasks : task list; merge : merge }
      (** logical pushdown: parallel tasks + coordinator merge *)
  | Multi_shard_dml of { tasks : task list }
      (** parallel distributed DML (UPDATE/DELETE/INSERT split by shard) *)
  | Reference_write of task
      (** write to a reference table: the executor replicates the single
          task across every active replica of the reference shard *)

(** Human-readable planner tier, as surfaced by EXPLAIN-style output. *)
val planner_name : t -> string

(** Every task of a plan, in execution order. *)
val tasks_of : t -> task list
