open Sqlfront

type t = {
  cluster : Cluster.Topology.t;
  metadata : Metadata.t;
      (** the bootstrap coordinator's catalog — the metasync origin;
          each installed node reads its own replica via
          [State.metadata] *)
  metasync : Metasync.t;
      (** the metadata-sync layer: every catalog mutation is applied to
          all node replicas in lockstep (MX) *)
  registry : ((string * int), string * int) Hashtbl.t;
  mutable states : State.t list;
  mutable active_data_nodes : string list;
  mutable replication_factor : int;
  procedures : (string, int * string) Hashtbl.t;
  plancache : Plancache.t;
      (** cluster-wide distributed plan cache: shared across every node
          the extension is installed on, validated against
          {!Metadata.version} — replicas bump versions in lockstep, so
          one entry is valid or stale everywhere at once *)
}

let err fmt =
  Printf.ksprintf (fun m -> raise (Engine.Instance.Session_error m)) fmt

let coordinator_state t =
  match t.states with
  | st :: _ -> st
  | [] -> err "the Citus extension is not installed anywhere"

let state_for t session =
  let name = Engine.Instance.name (Engine.Instance.session_instance session) in
  match
    List.find_opt
      (fun (st : State.t) ->
        String.equal st.State.local.Cluster.Topology.node_name name)
      t.states
  with
  | Some st -> st
  | None -> err "the Citus extension is not installed on node %s" name

(* --- shard DDL helpers --- *)

(* [origin] is the node running the DDL — with MX any coordinator, not
   necessarily the bootstrap one. *)
let admin_conn t ~origin node_name =
  Cluster.Connection.open_ ~origin t.cluster
    (Cluster.Topology.find_node t.cluster node_name)

let table_def_of catalog name =
  match Engine.Catalog.find_table_opt catalog name with
  | Some tbl -> tbl
  | None -> err "relation %s does not exist" name

let create_shard_table ~conn ~(src : Engine.Catalog.table) ~shard_table =
  let columnar =
    match src.Engine.Catalog.store with
    | Engine.Catalog.Columnar_store _ -> true
    | Engine.Catalog.Heap_store _ -> false
  in
  ignore
    (Cluster.Connection.exec_ast conn
       (Ast.Create_table
          {
            name = shard_table;
            columns = src.Engine.Catalog.columns;
            primary_key = src.Engine.Catalog.primary_key;
            if_not_exists = false;
            using_columnar = columnar;
          }));
  (* secondary indexes (the pkey index is implicit in CREATE TABLE) *)
  List.iter
    (fun (idx : Engine.Catalog.index) ->
      if not (String.equal idx.Engine.Catalog.idx_name
                (src.Engine.Catalog.tbl_name ^ "_pkey"))
      then
        let stmt =
          match idx.Engine.Catalog.kind with
          | Engine.Catalog.Btree_index { columns; _ } ->
            Ast.Create_index
              {
                name = idx.Engine.Catalog.idx_name ^ "_" ^ shard_table;
                table = shard_table;
                using = Ast.Btree;
                key_columns = columns;
                key_expr = None;
                if_not_exists = false;
              }
          | Engine.Catalog.Gin_index { expr; _ } ->
            Ast.Create_index
              {
                name = idx.Engine.Catalog.idx_name ^ "_" ^ shard_table;
                table = shard_table;
                using = Ast.Gin_trgm;
                key_columns = [];
                key_expr = Some expr;
                if_not_exists = false;
              }
        in
        ignore (Cluster.Connection.exec_ast conn stmt))
    src.Engine.Catalog.indexes

(* Move existing rows of the (about-to-be-converted) local table into the
   new shards, then empty the local copy. *)
let move_local_rows t session ~table ~(dt_kind : Metadata.kind) ~conns =
  let ctx = Engine.Instance.make_ctx session in
  let _cols, rows =
    Engine.Executor.run_select ctx
      {
        Ast.distinct = false;
        projections = [ Ast.Star ];
        from = [ Ast.Table { name = table; alias = None } ];
        where = None;
        group_by = [];
        having = None;
        order_by = [];
        limit = None;
        offset = None;
      }
  in
  if rows <> [] then begin
    let insert_into conn shard_table tuples =
      ignore
        (Cluster.Connection.exec_ast conn
           (Ast.Insert
              {
                table = shard_table;
                columns = None;
                source = Ast.Values tuples;
                on_conflict_do_nothing = false;
              }))
    in
    let tuple_of row = List.map (fun d -> Ast.Const d) (Array.to_list row) in
    let conn_for node =
      match List.assoc_opt node conns with
      | Some c -> c
      | None -> err "no admin connection open to node %s" node
    in
    match dt_kind with
    | Metadata.Reference ->
      let shard =
        match Metadata.shards_of t.metadata table with
        | s :: _ -> s
        | [] -> err "reference table %s has no shard" table
      in
      let tuples = List.map tuple_of rows in
      List.iter
        (fun node ->
          insert_into (conn_for node) (Metadata.shard_name shard) tuples)
        (Metadata.placements t.metadata shard.Metadata.shard_id)
    | Metadata.Distributed ->
      let dt =
        match Metadata.find t.metadata table with
        | Some dt -> dt
        | None -> err "relation %s is not distributed" table
      in
      let dc =
        match dt.Metadata.dist_column with
        | Some c -> c
        | None -> err "relation %s has no distribution column" table
      in
      let catalog =
        Engine.Instance.catalog (Engine.Instance.session_instance session)
      in
      let tbl = table_def_of catalog table in
      let pos = Engine.Catalog.column_index tbl dc in
      let by_shard = Hashtbl.create 16 in
      List.iter
        (fun (row : Datum.t array) ->
          let shard = Metadata.shard_for_value t.metadata ~table row.(pos) in
          let b =
            match Hashtbl.find_opt by_shard shard.Metadata.shard_id with
            | Some b -> b
            | None ->
              let b = ref [] in
              Hashtbl.replace by_shard shard.Metadata.shard_id b;
              b
          in
          b := tuple_of row :: !b)
        rows;
      Hashtbl.iter
        (fun shard_id tuples ->
          let shard =
            List.find
              (fun (s : Metadata.shard) -> s.Metadata.shard_id = shard_id)
              (Metadata.shards_of t.metadata table)
          in
          List.iter
            (fun node ->
              insert_into (conn_for node) (Metadata.shard_name shard)
                (List.rev !tuples))
            (Metadata.placements t.metadata shard_id))
        by_shard
  end;
  ignore (Engine.Instance.exec_utility_local session (Ast.Truncate [ table ]))

(* MX metadata sync ships "shell" copies of the logical tables to the
   workers, so worker-side planning and DDL can resolve them. Shells hold
   schema only — the data lives in the shards. *)
let create_shell_table t ~(node : Cluster.Topology.node) ~table_name =
  let coord_catalog =
    Engine.Instance.catalog
      t.cluster.Cluster.Topology.coordinator.Cluster.Topology.instance
  in
  match Engine.Catalog.find_table_opt coord_catalog table_name with
  | None -> ()
  | Some src ->
    let cat = Engine.Instance.catalog node.Cluster.Topology.instance in
    if Engine.Catalog.find_table_opt cat table_name = None then begin
      let columnar =
        match src.Engine.Catalog.store with
        | Engine.Catalog.Columnar_store _ -> true
        | Engine.Catalog.Heap_store _ -> false
      in
      ignore
        (Engine.Catalog.add_table cat ~name:table_name
           ~columns:src.Engine.Catalog.columns
           ~primary_key:src.Engine.Catalog.primary_key ~columnar)
    end

let sync_shells_to_installed_nodes t =
  List.iter
    (fun (st : State.t) ->
      let node = st.State.local in
      if
        not
          (String.equal node.Cluster.Topology.node_name
             t.cluster.Cluster.Topology.coordinator.Cluster.Topology.node_name)
      then
        List.iter
          (fun (dt : Metadata.dist_table) ->
            create_shell_table t ~node ~table_name:dt.Metadata.dt_name)
          (Metadata.all_tables t.metadata))
    t.states

(* --- UDF implementations --- *)

let do_create_distributed_table t session ~table ~column ~colocate_with =
  let inst = Engine.Instance.session_instance session in
  let origin = Engine.Instance.name inst in
  let catalog = Engine.Instance.catalog inst in
  let tbl = table_def_of catalog table in
  let dist_ty =
    (Engine.Catalog.column_tys tbl).(Engine.Catalog.column_index tbl column)
  in
  let shards =
    Metasync.register_distributed t.metasync
      ~replication_factor:t.replication_factor ~table ~column ~ty:dist_ty
      ~colocate_with ~nodes:t.active_data_nodes
  in
  (* physical shard tables, one per placement (all replicas) *)
  let node_names =
    List.sort_uniq String.compare
      (List.concat_map
         (fun (s : Metadata.shard) ->
           Metadata.placements t.metadata s.Metadata.shard_id)
         shards)
  in
  let conns = List.map (fun n -> (n, admin_conn t ~origin n)) node_names in
  let conn_for node =
    match List.assoc_opt node conns with
    | Some c -> c
    | None -> err "no admin connection open to node %s" node
  in
  List.iter
    (fun (s : Metadata.shard) ->
      List.iter
        (fun node ->
          create_shard_table ~conn:(conn_for node) ~src:tbl
            ~shard_table:(Metadata.shard_name s))
        (Metadata.placements t.metadata s.Metadata.shard_id))
    shards;
  move_local_rows t session ~table ~dt_kind:Metadata.Distributed ~conns;
  sync_shells_to_installed_nodes t

let do_create_reference_table t session ~table =
  let inst = Engine.Instance.session_instance session in
  let origin = Engine.Instance.name inst in
  let catalog = Engine.Instance.catalog inst in
  let tbl = table_def_of catalog table in
  let nodes =
    List.sort_uniq String.compare
      (t.cluster.Cluster.Topology.coordinator.Cluster.Topology.node_name
       :: t.active_data_nodes)
  in
  let shard = Metasync.register_reference t.metasync ~table ~nodes in
  let conns = List.map (fun n -> (n, admin_conn t ~origin n)) nodes in
  List.iter
    (fun (node, conn) ->
      ignore node;
      create_shard_table ~conn ~src:tbl ~shard_table:(Metadata.shard_name shard))
    conns;
  move_local_rows t session ~table ~dt_kind:Metadata.Reference ~conns;
  sync_shells_to_installed_nodes t

(* --- prepared-statement dispatch helpers --- *)

(* Bind EXECUTE arguments into a statement shape, surfacing a missing
   parameter as the typed [Exec.Bind_error] instead of the parser
   layer's bare exception. *)
let bind_shape ~name values stmt =
  try Ast.bind_params values stmt
  with Ast.Unbound_param i ->
    raise (Exec.Bind_failure { stmt_name = name; param = i })

(* Eager plan skeleton: one pre-rewritten statement (and its deparse)
   per shard group of the anchor table, parameters left unbound. *)
let build_entry meta ~key ~version ~stmt (sh : Planner.shape) :
    Plancache.entry =
  let groups =
    List.map
      (fun (s : Metadata.shard) ->
        let g = s.Metadata.index_in_colocation in
        let gp_stmt = Planner.rewrite_to_group meta ~group_index:g stmt in
        ( g,
          {
            Plancache.gp_shard = s.Metadata.shard_id;
            gp_stmt;
            gp_sql = Deparse.statement gp_stmt;
          } ))
      (Metadata.shards_of meta sh.Planner.sh_anchor)
  in
  {
    Plancache.e_key = key;
    e_shape = sh;
    e_version = version;
    e_groups = groups;
    e_tick = 0;
  }

(* Bind-time dispatch of a cached skeleton: hash the routing value to a
   shard group, bind the parameters into that group's pre-rewritten
   statement and select a fresh placement — the only two steps planning
   left for EXECUTE time (placements are never cached, so repair and
   failover are picked up without a rebuild). Raises within
   [Exec.wrap]'s vocabulary. *)
let dispatch_entry (st : State.t) session ~name ~values ~shape_stmt
    (entry : Plancache.entry) =
  let meta = st.State.metadata in
  let sh = entry.Plancache.e_shape in
  let value =
    match sh.Planner.sh_key with
    | Planner.Key_const v -> v
    | Planner.Key_param k ->
      (match List.nth_opt values (k - 1) with
       | Some v -> v
       | None -> raise (Exec.Bind_failure { stmt_name = name; param = k }))
  in
  (match shape_stmt with
   | Ast.Insert _ when Datum.is_null value ->
     err "the distribution column value must be a non-null constant"
   | _ -> ());
  let shard = Metadata.shard_for_value meta ~table:sh.Planner.sh_anchor value in
  let g = shard.Metadata.index_in_colocation in
  match List.assoc_opt g entry.Plancache.e_groups with
  | None ->
    (* group space changed without a version bump: never execute a
       skeleton the catalog has outgrown *)
    raise
      (Metadata.Catalog_error
         (Printf.sprintf "plan cache skeleton of %s has no shard group %d"
            name g))
  | Some gp ->
    let bound = bind_shape ~name values gp.Plancache.gp_stmt in
    let node =
      Metadata.select_placement ~node_ok:(State.node_available st) meta
        gp.Plancache.gp_shard
    in
    let task =
      {
        Plan.task_node = node;
        task_stmt = bound;
        task_group = g;
        task_shard = gp.Plancache.gp_shard;
      }
    in
    let plan =
      match sh.Planner.sh_tier with
      | Planner.Tier_fast_path -> Plan.Fast_path task
      | _ -> Plan.Router task
    in
    fst (Dist_executor.execute st session plan)

(* --- planner hook --- *)

let delegate_call (t : t) (st : State.t) session proc args =
  match Hashtbl.find_opt t.procedures proc with
  | None -> None
  | Some (arg_position, table) ->
    let ctx = Engine.Instance.make_ctx session in
    let values =
      List.map
        (fun e -> Engine.Expr_eval.compile [] ctx.Engine.Executor.env e [||])
        args
    in
    (match List.nth_opt values (arg_position - 1) with
     | None -> err "CALL %s: no argument %d" proc arg_position
     | Some v ->
       let shard = Metadata.shard_for_value t.metadata ~table v in
       let node = Metadata.placement t.metadata shard.Metadata.shard_id in
       if String.equal node st.State.local.Cluster.Topology.node_name then
         None (* local: run the procedure here *)
       else begin
         let sst = State.session_state st session in
         let conn =
           match State.pool_of sst node with
           | c :: _ -> c
           | [] -> (
             match
               State.checkout st sst ~force:true
                 (Cluster.Topology.find_node t.cluster node)
             with
             | Some c -> c
             | None -> assert false (* forced checkout always opens *))
         in
         let stmt = Ast.Call { proc; args } in
         Some (Exec.ast_on_conn_exn st conn stmt)
       end)

let rec planner_hook (t : t) (st : State.t) session (stmt : Ast.statement) :
    Engine.Instance.result option =
  match stmt with
  | Ast.Execute_stmt { ename; eargs } ->
    execute_prepared t st session ~name:ename ~args:eargs
  | Ast.Call { proc; args } -> delegate_call t st session proc args
  | _ ->
    let citus = Planner.citus_tables t.metadata stmt in
    if citus = [] then None
    else begin
      let catalog =
        Engine.Instance.catalog st.State.local.Cluster.Topology.instance
      in
      let run () =
        match stmt with
        | Ast.Insert { table; columns; source = Ast.Query select;
                       on_conflict_do_nothing }
          when Metadata.is_citus_table t.metadata table ->
          let result, _strategy =
            Insert_select.execute st session ~table ~columns ~select
              ~on_conflict_do_nothing
          in
          result
        | _ ->
          (match
             (* steer reads away from nodes whose circuit breaker is
                open — planning uses health, not raw reachability, which
                a real system cannot observe *)
             Planner.plan ~obs:(Cluster.Topology.obs t.cluster)
               ~now:(Cluster.Topology.now t.cluster)
               ~node_ok:(State.node_available st) t.metadata ~catalog
               ~local_name:st.State.local.Cluster.Topology.node_name stmt
           with
           | plan, _tier -> fst (Dist_executor.execute st session plan)
           | exception Planner.Unsupported first_error ->
             (* last tier: the logical join-order planner for
                non-co-located joins. The tiered planner's "plan" span
                closed tierless when it raised, so the fallback opens its
                own, and only counts the tier once it succeeds. *)
             (match stmt with
              | Ast.Select_stmt sel ->
                (try
                   Obs.Trace.with_span (Cluster.Topology.trace t.cluster)
                     ~now:(Cluster.Topology.now t.cluster)
                     ~node:st.State.local.Cluster.Topology.node_name
                     ~kind:"plan"
                     ~tags:[ ("tier", "join_order") ]
                     (fun _sp ->
                       let result, _decision, _report =
                         Join_order.execute st session sel
                       in
                       Obs.Metrics.inc
                         (Cluster.Topology.metrics t.cluster)
                         Obs.Metric_names.planner_tier_join_order;
                       result)
                 with Join_order.Unsupported _ -> err "%s" first_error)
              | _ -> err "%s" first_error))
      in
      (* infrastructure failures arrive as typed [Exec.exec_error]s and
         fail the statement cleanly, so the session aborts/retries like
         on any other error *)
      match Exec.wrap run with
      | Ok result -> Some result
      | Error e -> err "%s" (Exec.error_message e)
      | exception Planner.Unsupported m -> err "%s" m
    end

(* EXECUTE of a prepared statement — the cached-dispatch entry point
   (lint rule L15 roots its no-reparse reachability check here: nothing
   on this path may call Parser.parse*; the shape was parsed once at
   PREPARE). Returns [None] for shapes the engine should run locally. *)
and execute_prepared (t : t) (st : State.t) session ~name ~args :
    Engine.Instance.result option =
  let shape, values = Engine.Instance.resolve_execute session ~name ~args in
  if Planner.citus_tables t.metadata shape = [] then
    match shape with
    | Ast.Call _ ->
      (* distributed procedures reference no table, so the [] check
         cannot rule them out: delegation inspects the bound CALL; a
         plain local procedure falls through to the engine *)
      (match Exec.wrap (fun () -> bind_shape ~name values shape) with
       | Ok bound -> planner_hook t st session bound
       | Error e -> err "%s" (Exec.error_message e))
    | _ -> None (* local statement: the engine binds and executes *)
  else Some (cached_execute t st session ~name ~values shape)

(* The distributed-plan-cache hot path. Cache key: the deparse of the
   stored shape (params unbound). A valid entry skips planning entirely;
   a stale one (metadata version moved) revalidates; an uncacheable
   shape binds and takes the full planner per call. *)
and cached_execute (t : t) (st : State.t) session ~name ~values shape :
    Engine.Instance.result =
  let metrics = Cluster.Topology.metrics t.cluster in
  let now = Cluster.Topology.now t.cluster in
  (* resource accounting is ours, not [Instance.exec]'s: a hit costs a
     bound execute (bind + hash), a build or a bypass costs a routed
     statement (planning, the parse already paid at PREPARE) *)
  let meter = Engine.Instance.meter st.State.local.Cluster.Topology.instance in
  let key = Deparse.statement shape in
  let stat = Plancache.stat t.plancache ~key in
  let t0 = now () in
  stat.Plancache.st_calls <- stat.Plancache.st_calls + 1;
  let finish result =
    let dt = now () -. t0 in
    Obs.Metrics.observe metrics Obs.Metric_names.plancache_exec_seconds dt;
    Obs.Metrics.observe metrics
      (Obs.Metric_names.plancache_shape_seconds stat.Plancache.st_fingerprint)
      dt;
    result
  in
  let bypass () =
    (* uncacheable shape (or cache disabled): bind, then the full
       planner — identical semantics to executing the bound statement *)
    Obs.Metrics.inc metrics Obs.Metric_names.plancache_bypass;
    stat.Plancache.st_bypass <- stat.Plancache.st_bypass + 1;
    Engine.Meter.add_routed_statement meter;
    match Exec.wrap (fun () -> bind_shape ~name values shape) with
    | Error e -> err "%s" (Exec.error_message e)
    | Ok bound ->
      (match planner_hook t st session bound with
       | Some r -> r
       | None -> err "cannot execute prepared statement %s" name)
  in
  let dispatch entry =
    match
      Exec.wrap (fun () ->
          dispatch_entry st session ~name ~values ~shape_stmt:shape entry)
    with
    | Ok r -> r
    | Error e -> err "%s" (Exec.error_message e)
  in
  let max_size = st.State.config.State.plan_cache_size in
  if max_size <= 0 then finish (bypass ())
  else begin
    let version = Metadata.version t.metadata in
    match Plancache.find t.plancache ~key ~version with
    | Plancache.Hit entry ->
      Obs.Metrics.inc metrics Obs.Metric_names.plancache_hits;
      stat.Plancache.st_hits <- stat.Plancache.st_hits + 1;
      Engine.Meter.add_bound_execute meter;
      finish (dispatch entry)
    | (Plancache.Stale | Plancache.Miss) as missed ->
      (match missed with
       | Plancache.Stale ->
         Obs.Metrics.inc metrics Obs.Metric_names.plancache_invalidations
       | _ -> ());
      let catalog =
        Engine.Instance.catalog st.State.local.Cluster.Topology.instance
      in
      (match Planner.analyze_shape t.metadata ~catalog shape with
       | None -> finish (bypass ())
       | Some sh ->
         Obs.Metrics.inc metrics Obs.Metric_names.plancache_misses;
         Obs.Metrics.inc metrics
           (Obs.Metric_names.planner_tier (Planner.tier_slug sh.Planner.sh_tier));
         stat.Plancache.st_builds <- stat.Plancache.st_builds + 1;
         stat.Plancache.st_tier <- Planner.tier_slug sh.Planner.sh_tier;
         Engine.Meter.add_routed_statement meter;
         let entry = build_entry t.metadata ~key ~version ~stmt:shape sh in
         let evicted = Plancache.store t.plancache ~max_size entry in
         if evicted > 0 then
           Obs.Metrics.inc ~by:evicted metrics
             Obs.Metric_names.plancache_evictions;
         Obs.Metrics.gauge_set metrics Obs.Metric_names.plancache_entries
           (float_of_int (Plancache.size t.plancache));
         finish (dispatch entry))
  end

(* --- extension installation --- *)

let rec install_on_node t (node : Cluster.Topology.node) =
  let node_name = node.Cluster.Topology.node_name in
  (* each node reads its own catalog replica (MX); the bootstrap
     coordinator's is the metasync origin, everyone else attaches a
     replica caught up from the op log *)
  let metadata =
    if
      String.equal node_name
        t.cluster.Cluster.Topology.coordinator.Cluster.Topology.node_name
    then t.metadata
    else Metasync.attach t.metasync node_name
  in
  let st =
    State.create ~cluster:t.cluster ~metadata ~metasync:t.metasync ~local:node
      ~registry:t.registry
  in
  t.states <- t.states @ [ st ];
  let inst = node.Cluster.Topology.instance in
  Twopc.ensure_commit_records_table st;
  (* fault-plan observers: when a remote node crashes its pooled
     connections are dead; when *this* node crashes, workers abort the
     transactions whose client just vanished and all session state dies *)
  (match Cluster.Topology.fault t.cluster with
   | None -> ()
   | Some f ->
     Sim.Fault.on_crash f (fun crashed ->
         if String.equal crashed node.Cluster.Topology.node_name then
           State.crash_local_sessions st
         else State.purge_node_conns st crashed));
  Engine.Instance.set_planner_hook inst (fun session stmt ->
      planner_hook t st session stmt);
  Engine.Instance.set_utility_hook inst (fun session stmt ->
      Ddl.utility_hook st session stmt);
  Engine.Instance.set_copy_hook inst (fun session ~table ~columns lines ->
      Copy_scaling.copy_hook st session ~table ~columns lines);
  Engine.Instance.on_pre_commit inst (fun session -> Twopc.pre_commit st session);
  Engine.Instance.on_post_commit inst (fun session ->
      Twopc.post_commit st session);
  Engine.Instance.on_abort inst (fun session -> Twopc.on_abort st session);
  Engine.Instance.add_maintenance inst (fun _ -> ignore (Twopc.recover st));
  (* coordinator duties, gated on the node's {e current} role so a
     worker promoted by metadata sync picks them up on its next tick:
     deadlock detection merges every node's wait edges into one global
     graph (concurrent coordinators each run the same merged check — the
     first to see a cycle cancels the victim, later rounds find the
     graph already broken), and placement repair self-heals Inactive
     placements from healthy replicas *)
  Engine.Instance.add_maintenance inst (fun _ ->
      if node.Cluster.Topology.role = Cluster.Topology.Coordinator then
        ignore (Deadlock.detect_and_cancel st));
  Engine.Instance.add_maintenance inst (fun _ ->
      if node.Cluster.Topology.role = Cluster.Topology.Coordinator then
        ignore (Rebalancer.repair_inactive st));
  (* UDFs — all declared through the typed signature combinators in
     {!Udf}; each usage error is rendered from the signature itself. *)
  Udf.register inst "create_distributed_table"
    Udf.(
      text "table" @-> text "column" @-> text "colocate_with"
      @?-> returning nothing)
    (fun session table column colocate_with () ->
      do_create_distributed_table t session ~table ~column ~colocate_with);
  Udf.register inst "create_reference_table"
    Udf.(text "table" @-> returning nothing)
    (fun session table () -> do_create_reference_table t session ~table);
  Udf.register inst "create_distributed_function"
    Udf.(
      text "proc" @-> int "arg_position" @-> text "table"
      @-> returning nothing)
    (fun _session proc pos table () ->
      Hashtbl.replace t.procedures proc (pos, table));
  Udf.register inst "isolate_tenant_to_new_shard"
    Udf.(text "table" @-> value "tenant" @-> returning int_or_null)
    (fun _session table value () ->
      match Tenant.isolate_tenant st ~table ~value with
      | id :: _ -> Some id
      | [] -> None);
  Udf.register inst "citus_create_restore_point"
    Udf.(text "name" @-> returning nothing)
    (fun _session name () -> Backup.create_restore_point st name);
  Udf.register inst "citus_shards"
    Udf.(returning rows)
    (fun _session () ->
      (* introspection: the pg_dist metadata as a JSON document *)
      let shards =
        List.concat_map
          (fun (dt : Metadata.dist_table) ->
            List.map
              (fun (sh : Metadata.shard) ->
                Json.Obj
                  [
                    ("shard", Json.Str (Metadata.shard_name sh));
                    ("table", Json.Str sh.Metadata.shard_of);
                    ("min_hash", Json.Num (Int32.to_float sh.Metadata.min_hash));
                    ("max_hash", Json.Num (Int32.to_float sh.Metadata.max_hash));
                    ( "nodes",
                      Json.Arr
                        (List.map
                           (fun n -> Json.Str n)
                           (Metadata.placements t.metadata sh.Metadata.shard_id))
                    );
                  ])
              (Metadata.shards_of t.metadata dt.Metadata.dt_name))
          (Metadata.all_tables t.metadata)
      in
      Json.Arr shards);
  Udf.register inst "citus_tables"
    Udf.(returning rows)
    (fun _session () ->
      let tables =
        List.map
          (fun (dt : Metadata.dist_table) ->
            Json.Obj
              [
                ("table", Json.Str dt.Metadata.dt_name);
                ( "kind",
                  Json.Str
                    (match dt.Metadata.kind with
                     | Metadata.Distributed -> "distributed"
                     | Metadata.Reference -> "reference") );
                ( "distribution_column",
                  match dt.Metadata.dist_column with
                  | Some c -> Json.Str c
                  | None -> Json.Null );
                ("colocation_id", Json.Num (float_of_int dt.Metadata.colocation_id));
                ( "shard_count",
                  Json.Num
                    (float_of_int
                       (List.length (Metadata.shards_of t.metadata dt.Metadata.dt_name)))
                );
              ])
          (Metadata.all_tables t.metadata)
      in
      Json.Arr tables);
  Udf.register inst "citus_explain"
    Udf.(text "query" @-> text "mode" @?-> returning text_result)
    (fun _session q mode () ->
      match mode with
      | None | Some "plan" -> Explain.explain st q
      | Some "analyze" -> Explain.explain_analyze st q
      | Some other ->
        err "citus_explain: unknown mode '%s' (expected 'plan' or 'analyze')"
          other);
  Udf.register inst "rebalance_table_shards"
    Udf.(returning int_result)
    (fun _session () -> List.length (Rebalancer.rebalance st));
  Udf.register inst "citus_move_shard_placement"
    Udf.(int "shard_id" @-> text "to_node" @-> returning nothing)
    (fun _session shard_id to_node () ->
      ignore (Rebalancer.move_shard_group st ~shard_id ~to_node));
  Udf.register inst "citus_set_replication_factor"
    Udf.(int "factor" @-> returning nothing)
    (fun _session n () ->
      if n < 1 then err "replication factor must be >= 1";
      t.replication_factor <- n;
      (* future registrations place differently: cached plans revalidate *)
      Metasync.bump_version t.metasync);
  Udf.register inst "citus_enable_metadata_sync"
    Udf.(returning text_result)
    (fun _session () ->
      enable_metadata_sync t;
      Printf.sprintf "metadata synced to %d nodes"
        (List.length (Cluster.Topology.data_nodes t.cluster)));
  (* the engine has no SET/GUC machinery, so runtime knobs flow through
     a UDF instead; the value propagates to every metadata-synced node's
     extension state (MX: a knob set anywhere applies cluster-wide,
     like a synced ALTER SYSTEM), not just the node that ran it *)
  Udf.register inst "citus_set_config"
    Udf.(text "name" @-> text "value" @-> returning text_result)
    (fun _session name value () ->
      if String.equal name "enable_metadata_sync" then begin
        (* not a per-node State.config field: flipping it on replicates
           the catalog and promotes the workers, cluster-wide by nature *)
        (match String.lowercase_ascii value with
         | "on" | "true" | "1" -> enable_metadata_sync t
         | "off" | "false" | "0" ->
           err
             "citus_set_config: metadata sync cannot be disabled — workers \
              already hold catalog replicas and coordinate transactions"
         | _ ->
           err "citus_set_config: enable_metadata_sync expects on|off, got '%s'"
             value);
        Printf.sprintf "%s = %s" name value
      end
      else
      let float_knob set =
        match float_of_string_opt value with
        | Some v when v >= 0.0 -> fun cfg -> set cfg v
        | _ ->
          err "citus_set_config: %s expects a non-negative number, got '%s'"
            name value
      in
      let int_knob set =
        match int_of_string_opt value with
        | Some v when v > 0 -> fun cfg -> set cfg v
        | _ ->
          err "citus_set_config: %s expects a positive integer, got '%s'" name
            value
      in
      (* validate once, {e then} apply everywhere: a bad value must not
         leave the cluster half-updated *)
      let apply : State.config -> unit =
        match name with
        | "statement_timeout" ->
          float_knob (fun cfg v -> cfg.State.statement_timeout <- v)
        | "hedge_threshold" ->
          float_knob (fun cfg v -> cfg.State.hedge_threshold <- v)
        | "slow_start_interval" ->
          float_knob (fun cfg v -> cfg.State.slow_start_interval <- v)
        | "pool_size_per_node" ->
          int_knob (fun cfg v -> cfg.State.pool_size_per_node <- v)
        | "shared_connection_limit" ->
          int_knob (fun cfg v -> cfg.State.shared_connection_limit <- v)
        | "max_parallel_moves" ->
          int_knob (fun cfg v -> cfg.State.max_parallel_moves <- v)
        | "move_timeout" ->
          float_knob (fun cfg v -> cfg.State.move_timeout <- v)
        | "consistency" ->
          (match State.consistency_of_string value with
           | Some c -> fun cfg -> cfg.State.consistency <- c
           | None ->
             err
               "citus_set_config: consistency expects \
                eventual|read_your_writes|snapshot, got '%s'"
               value)
        | "plan_cache_size" ->
          (* 0 legitimately disables the cache, so int_knob (positive
             only) does not fit *)
          (match int_of_string_opt value with
           | Some v when v >= 0 -> fun cfg -> cfg.State.plan_cache_size <- v
           | _ ->
             err
               "citus_set_config: plan_cache_size expects a non-negative \
                integer, got '%s'"
               value)
        | other -> err "citus_set_config: unknown setting '%s'" other
      in
      List.iter (fun (other : State.t) -> apply other.State.config) t.states;
      let remote = List.length t.states - 1 in
      if remote > 0 then
        Obs.Metrics.inc ~by:remote
          (Cluster.Topology.metrics t.cluster)
          Obs.Metric_names.mx_config_syncs;
      Printf.sprintf "%s = %s" name value);
  Udf.register inst "citus_health_report"
    Udf.(returning rows)
    (fun _session () ->
      let nodes =
        List.map
          (fun (r : Health.node_report) ->
            Json.Obj
              [
                ("node", Json.Str r.Health.nr_node);
                ("breaker", Json.Str (Health.breaker_name r.Health.nr_breaker));
                ("failures", Json.Num (float_of_int r.Health.nr_failures));
                ("successes", Json.Num (float_of_int r.Health.nr_successes));
                ( "failed_commits",
                  Json.Num (float_of_int r.Health.nr_failed_commits) );
                ( "ignored_errors",
                  Json.Num (float_of_int r.Health.nr_ignored_errors) );
              ])
          (Health.report st.State.health)
      in
      let inactive =
        List.map
          (fun ((sh : Metadata.shard), node) ->
            Json.Obj
              [
                ("shard", Json.Str (Metadata.shard_name sh));
                ("node", Json.Str node);
              ])
          (Metadata.inactive_placements t.metadata)
      in
      Json.Obj
        [
          ("nodes", Json.Arr nodes);
          ("inactive_placements", Json.Arr inactive);
        ]);
  Udf.register inst "citus_add_node"
    Udf.(text "name" @-> returning nothing)
    (fun _session name () ->
      ignore (Cluster.Topology.find_node t.cluster name);
      if not (List.mem name t.active_data_nodes) then begin
           t.active_data_nodes <- t.active_data_nodes @ [ name ];
           (* replicate reference tables to the new node *)
           List.iter
             (fun (dt : Metadata.dist_table) ->
               if dt.Metadata.kind = Metadata.Reference then begin
                 let shard =
                   match Metadata.shards_of t.metadata dt.Metadata.dt_name with
                   | s :: _ -> s
                   | [] ->
                     err "reference table %s has no shard" dt.Metadata.dt_name
                 in
                 let catalog = Engine.Instance.catalog inst in
                 let tbl = table_def_of catalog dt.Metadata.dt_name in
                 let conn =
                   admin_conn t ~origin:(Engine.Instance.name inst) name
                 in
                 create_shard_table ~conn ~src:tbl
                   ~shard_table:(Metadata.shard_name shard);
                 (* copy current contents from the local replica *)
                 let local_rows =
                   (Engine.Instance.exec
                      (Engine.Instance.connect inst)
                      (Printf.sprintf "SELECT * FROM %s"
                         (Metadata.shard_name shard)))
                     .Engine.Instance.rows
                 in
                 if local_rows <> [] then begin
                   let tuples =
                     List.map
                       (fun (row : Datum.t array) ->
                         List.map (fun d -> Ast.Const d) (Array.to_list row))
                       local_rows
                   in
                   ignore
                     (Cluster.Connection.exec_ast conn
                        (Ast.Insert
                           {
                             table = Metadata.shard_name shard;
                             columns = None;
                             source = Ast.Values tuples;
                             on_conflict_do_nothing = false;
                           }))
                 end;
                 Metasync.add_placement t.metasync
                   ~shard_id:shard.Metadata.shard_id ~node:name
               end)
             (Metadata.all_tables t.metadata)
      end);
  (* observability surface *)
  Udf.register inst "citus_set_tracing"
    Udf.(text "mode" @-> returning nothing)
    (fun _session mode () ->
      match mode with
      | "on" -> Obs.Trace.set_enabled (Cluster.Topology.trace t.cluster) true
      | "off" -> Obs.Trace.set_enabled (Cluster.Topology.trace t.cluster) false
      | other -> err "citus_set_tracing: unknown mode '%s' (expected 'on' or 'off')" other);
  Udf.register inst "citus_stat_activity"
    Udf.(returning rows)
    (fun _session () ->
      (* what the whole cluster is doing right now: the open spans of
         every node, outermost first (includes the statement span of
         this very call when tracing is on). The view answers
         identically from any metadata-synced node — the trace sink is
         cluster-wide — and each row is tagged with the coordinator
         that opened the span (fragments and 2PC phases span on their
         coordinating node). *)
      let trace = Cluster.Topology.trace t.cluster in
      let spans =
        List.map
          (fun (sp : Obs.Trace.span) ->
            Json.Obj
              [
                ("id", Json.Num (float_of_int sp.Obs.Trace.id));
                ("kind", Json.Str sp.Obs.Trace.kind);
                ("node", Json.Str sp.Obs.Trace.node);
                ("coordinator", Json.Str sp.Obs.Trace.node);
                ("start", Json.Num sp.Obs.Trace.start);
                ( "tags",
                  Json.Obj
                    (List.map
                       (fun (k, v) -> (k, Json.Str v))
                       (List.sort compare sp.Obs.Trace.tags)) );
              ])
          (Obs.Trace.open_spans trace)
      in
      Json.Obj
        [
          ("origin", Json.Str node_name);
          ( "coordinators",
            Json.Arr
              (List.map
                 (fun (n : Cluster.Topology.node) ->
                   Json.Str n.Cluster.Topology.node_name)
                 (Cluster.Topology.coordinators t.cluster)) );
          ("tracing_enabled", Json.Bool (Obs.Trace.enabled trace));
          ("spans_started", Json.Num (float_of_int (Obs.Trace.started trace)));
          ("spans_finished", Json.Num (float_of_int (Obs.Trace.finished trace)));
          ("active", Json.Arr spans);
        ]);
  Udf.register inst "citus_stat_counters"
    Udf.(returning rows)
    (fun _session () ->
      (* cluster-wide aggregation: the metrics registry folds every
         node's series, so the same totals answer from any coordinator;
         [origin] records which one served this call *)
      let snap = Obs.Metrics.snapshot (Cluster.Topology.metrics t.cluster) in
      Json.Obj
        [
          ("origin", Json.Str node_name);
          ( "counters",
            Json.Obj
              (List.map
                 (fun (k, v) -> (k, Json.Num (float_of_int v)))
                 snap.Obs.Metrics.s_counters) );
          ( "gauges",
            Json.Obj
              (List.map (fun (k, v) -> (k, Json.Num v)) snap.Obs.Metrics.s_gauges)
          );
          ( "histograms",
            Json.Obj
              (List.map
                 (fun (k, (h : Obs.Metrics.hist_summary)) ->
                   ( k,
                     Json.Obj
                       [
                         ("count", Json.Num (float_of_int h.Obs.Metrics.count));
                         ("sum", Json.Num h.Obs.Metrics.sum);
                         ("p50", Json.Num h.Obs.Metrics.p50);
                         ("p95", Json.Num h.Obs.Metrics.p95);
                         ("max", Json.Num h.Obs.Metrics.max);
                       ] ))
                 snap.Obs.Metrics.s_histograms) );
        ]);
  Udf.register inst "citus_stat_statements"
    Udf.(returning rows)
    (fun _session () ->
      (* per-shape prepared-statement accounting: calls, cache traffic
         and timing (from the plancache.shape_seconds.* histograms),
         sorted by shape text so the output is deterministic *)
      let snap = Obs.Metrics.snapshot (Cluster.Topology.metrics t.cluster) in
      let rows =
        List.map
          (fun (key, (s : Plancache.stat)) ->
            let mean, p95 =
              match
                List.assoc_opt
                  (Obs.Metric_names.plancache_shape_seconds
                     s.Plancache.st_fingerprint)
                  snap.Obs.Metrics.s_histograms
              with
              | Some h when h.Obs.Metrics.count > 0 ->
                ( h.Obs.Metrics.sum /. float_of_int h.Obs.Metrics.count,
                  h.Obs.Metrics.p95 )
              | _ -> (0.0, 0.0)
            in
            Json.Obj
              [
                ("query", Json.Str key);
                ("fingerprint", Json.Str s.Plancache.st_fingerprint);
                ("tier", Json.Str s.Plancache.st_tier);
                ("calls", Json.Num (float_of_int s.Plancache.st_calls));
                ("cache_hits", Json.Num (float_of_int s.Plancache.st_hits));
                ("cache_misses", Json.Num (float_of_int s.Plancache.st_builds));
                ("bypass", Json.Num (float_of_int s.Plancache.st_bypass));
                ("mean_exec_seconds", Json.Num mean);
                ("p95_exec_seconds", Json.Num p95);
              ])
          (Plancache.stats t.plancache)
      in
      Json.Arr rows)

and enable_metadata_sync t =
  List.iter
    (fun (node : Cluster.Topology.node) ->
      let installed =
        List.exists
          (fun (st : State.t) ->
            String.equal st.State.local.Cluster.Topology.node_name
              node.Cluster.Topology.node_name)
          t.states
      in
      if not installed then install_on_node t node;
      (* promote: a metadata-synced node plans and coordinates like the
         bootstrap coordinator — including running the coordinator-only
         maintenance passes (deadlock detection, placement repair),
         which are gated on the role at tick time *)
      Cluster.Topology.set_role node Cluster.Topology.Coordinator)
    (Cluster.Topology.data_nodes t.cluster);
  sync_shells_to_installed_nodes t

let install ?(shard_count = 32) ?active_workers cluster =
  let metadata = Metadata.create ~shard_count () in
  let data =
    List.map
      (fun (n : Cluster.Topology.node) -> n.Cluster.Topology.node_name)
      (Cluster.Topology.data_nodes cluster)
  in
  let active =
    match active_workers with
    | Some n -> List.filteri (fun i _ -> i < n) data
    | None -> data
  in
  let t =
    {
      cluster;
      metadata;
      metasync =
        Metasync.create ~metrics:(Cluster.Topology.metrics cluster) metadata;
      registry = Hashtbl.create 64;
      states = [];
      active_data_nodes = active;
      replication_factor = 1;
      procedures = Hashtbl.create 8;
      plancache = Plancache.create ();
    }
  in
  install_on_node t cluster.Cluster.Topology.coordinator;
  t

let connect t =
  Engine.Instance.connect
    t.cluster.Cluster.Topology.coordinator.Cluster.Topology.instance

let connect_via _t (node : Cluster.Topology.node) =
  Engine.Instance.connect node.Cluster.Topology.instance

let maintenance t =
  List.iter
    (fun (st : State.t) ->
      let name = st.State.local.Cluster.Topology.node_name in
      (* a crashed node runs no background workers until it restarts *)
      if Cluster.Topology.node_up t.cluster name then
        Engine.Instance.maintenance_tick st.State.local.Cluster.Topology.instance)
    t.states

let create_distributed_table t ~table ~column ?colocate_with () =
  let session = connect t in
  let sql =
    match colocate_with with
    | None ->
      Printf.sprintf "SELECT create_distributed_table('%s', '%s')" table column
    | Some other ->
      Printf.sprintf "SELECT create_distributed_table('%s', '%s', '%s')" table
        column other
  in
  ignore (Engine.Instance.exec session sql)

let create_reference_table t ~table =
  let session = connect t in
  ignore
    (Engine.Instance.exec session
       (Printf.sprintf "SELECT create_reference_table('%s')" table))

let create_distributed_function t ~proc ~arg_position ~table =
  Hashtbl.replace t.procedures proc (arg_position, table)

let set_replication_factor t n =
  if n < 1 then err "replication factor must be >= 1";
  t.replication_factor <- n;
  Metasync.bump_version t.metasync

let health_report t =
  let st = coordinator_state t in
  ( Health.report st.State.health,
    Metadata.inactive_placements t.metadata )

(* A retry loop giving up on a lock conflict abandons its wait: remove
   the pending lock-wait registrations of the session's transaction —
   locally and on every worker its distributed transaction reached — so
   the deadlock detector never chases a waiter that has already left. *)
let cancel_lock_waits t session =
  (match Engine.Instance.current_xid session with
   | Some xid ->
     let mgr =
       Engine.Instance.txn_manager (Engine.Instance.session_instance session)
     in
     Txn.Lock.cancel_wait (Txn.Manager.locks mgr) ~owner:xid
   | None -> ());
  let st = coordinator_state t in
  let sst = State.session_state st session in
  List.iter
    (fun (node, wxid) ->
      let n = Cluster.Topology.find_node t.cluster node in
      let mgr = Engine.Instance.txn_manager n.Cluster.Topology.instance in
      Txn.Lock.cancel_wait (Txn.Manager.locks mgr) ~owner:wxid)
    sst.State.dist_xids

(* Retry a statement that hits lock conflicts, running the maintenance
   daemon between attempts so the deadlock detector can break cycles, and
   waiting a deterministic interval on the simulated clock (a threaded
   client would block on the lock instead). The interval carries a
   bounded, seeded jitter draw (up to +50%) so retriers contending for
   one lock spread out instead of re-colliding in lockstep — still
   bit-reproducible per topology seed. The loop is bounded: after
   [attempts] tries the conflict propagates, with the abandoned lock
   waits withdrawn first. Returns the number of attempts consumed
   alongside the result. *)
let exec_with_retries_report t session ?(attempts = 20) sql =
  let attempts = max 1 attempts in
  let rec go n =
    match Engine.Instance.exec session sql with
    | r -> (r, attempts - n + 1)
    | exception (Engine.Executor.Would_block _ as e) ->
      if n > 1 then begin
        maintenance t;
        Sim.Clock.advance t.cluster.Cluster.Topology.clock
          (0.05 *. (1.0 +. (0.5 *. Cluster.Topology.retry_jitter t.cluster)));
        go (n - 1)
      end
      else begin
        cancel_lock_waits t session;
        raise e
      end
  in
  go attempts

let exec_with_retries t session ?attempts sql =
  fst (exec_with_retries_report t session ?attempts sql)
