(* Typed client surface over a coordinator session.

   The prepared-statement lifecycle used to require hand-assembling SQL
   text ("EXECUTE s(1, 'x')") or calling the engine-internal
   [Instance.exec_params], which re-parses and re-plans every call.
   This module is the supported path: [prepare] parses once, [execute]
   ships typed datums straight to the plan-cache dispatch in [Api]
   without any string round trip, so the OLTP hot path never touches
   the parser. *)

open Sqlfront

type t = Engine.Instance.session

let exec session sql = Engine.Instance.exec session sql

let prepare session ~name sql =
  (* the one sanctioned parse: statement birth, not the execute path *)
  let stmt = Parser.parse_statement sql in
  ignore
    (Engine.Instance.exec_ast session (Ast.Prepare_stmt { pname = name; pstmt = stmt }))

let execute session name datums =
  (* no SQL text is built: constants carry the datums, so the cached
     dispatch binds them without quoting/unquoting round trips *)
  let eargs = List.map (fun d -> Ast.Const d) datums in
  Engine.Instance.exec_ast session (Ast.Execute_stmt { ename = name; eargs })

let deallocate session name =
  ignore (Engine.Instance.exec_ast session (Ast.Deallocate_stmt (Some name)))

let deallocate_all session =
  ignore (Engine.Instance.exec_ast session (Ast.Deallocate_stmt None))

let prepared_names = Engine.Instance.prepared_names
