(** Runtime state of the Citus extension on one node.

    Holds the metadata reference, per-(coordinator-)session connection
    pools with shard affinity, the cluster-wide shared connection counters
    the adaptive executor respects (§3.6.1), the distributed-transaction
    bookkeeping that 2PC and the distributed deadlock detector consume
    (§3.7), and a network-partition switch used for failure-injection
    tests. *)

(** Distributed read consistency level (the [citus.consistency] knob):
    - [Eventual]: plain per-node MVCC; a multi-node read can observe a
      distributed transaction on some nodes and not others (torn read).
    - [Read_your_writes]: reads block on in-doubt (prepared)
      transactions until their 2PC outcome resolves, so an acknowledged
      distributed commit is never half-visible — but two fragments may
      still disagree about transactions committed {e while} the read
      runs.
    - [Snapshot]: every fragment of a multi-shard read runs at one HLC
      snapshot timestamp — cross-node reads are never torn. *)
type consistency = Eventual | Read_your_writes | Snapshot

val consistency_of_string : string -> consistency option

val consistency_to_string : consistency -> string

type config = {
  mutable pool_size_per_node : int;
      (** max connections one session opens to one worker *)
  mutable shared_connection_limit : int;
      (** cluster-wide cap of connections to one worker across sessions *)
  mutable slow_start_interval : float;  (** seconds; paper: 10ms *)
  mutable max_parallel_moves : int;
      (** rebalancer: shard-group moves allowed in flight at once *)
  mutable binary_protocol : bool;  (** placeholder knob, always true *)
  mutable statement_timeout : float;
      (** seconds of virtual time a distributed statement may run before
          failing with a typed timeout; [0.0] (default) disables — the
          [statement_timeout] GUC of the paper's production story *)
  mutable hedge_threshold : float;
      (** seconds a read may wait on one replica before the executor
          hedges it on another replica (first response wins, loser
          cancelled); applies per fragment, so each slow fragment of a
          multi-shard scatter-gather read hedges independently — writes
          never hedge; [0.0] (default) disables hedging *)
  mutable move_timeout : float;
      (** seconds of virtual time one rebalancer shard move may take
          before it is abandoned (copy fenced off, destination dropped);
          [0.0] (default) disables — a stalled destination then wedges
          the move slot for the stall's duration *)
  mutable consistency : consistency;
      (** distributed read consistency level; default [Eventual] *)
  mutable plan_cache_size : int;
      (** LRU bound on cached prepared-statement plan shapes
          ([citus.plan_cache_size]); [0] disables the distributed plan
          cache — every EXECUTE then re-plans; default 128 *)
}

type session_state = {
  skey : string * int;  (** (node name, session id) *)
  mutable pools : (string * Cluster.Connection.t list) list;
      (** per target node, open connections *)
  mutable affinity : ((string * int) * Cluster.Connection.t) list;
      (** (node, shard-group index) -> connection, §3.6.1: a transaction
          pins each shard group replica to one connection *)
  mutable txn_conns : Cluster.Connection.t list;
      (** connections with an open BEGIN for the current coordinator txn *)
  mutable prepared : (Cluster.Connection.t * string) list;
      (** prepared (conn, gid) pairs awaiting COMMIT PREPARED *)
  mutable dist_xids : (string * int) list;
      (** (node, backend xid) members of the current distributed txn *)
  mutable commit_hlc : Txn.Hlc.timestamp option;
      (** coordinator-assigned HLC commit timestamp of the current
          distributed transaction, drawn after every participant
          prepared; [Twopc.post_commit] stamps it onto each COMMIT
          PREPARED so the transaction becomes visible at one timestamp
          cluster-wide *)
}

type t = {
  cluster : Cluster.Topology.t;
  metadata : Metadata.t;
      (** this node's catalog replica — reads are node-local (MX);
          writes must go through [metasync] (lint rule L16) *)
  metasync : Metasync.t;
      (** the metadata-sync layer every catalog mutation flows through,
          keeping all node replicas (and the plan-cache-invalidating
          {!Metadata.version}) in lockstep *)
  local : Cluster.Topology.node;  (** node this extension instance runs on *)
  config : config;
  health : Health.t;
      (** per-node circuit breakers fed by [Exec.on_conn]; the planner
          and executors consult it for placement preference and retry
          backoff *)
  sessions : ((string * int), session_state) Hashtbl.t;
  shared_counters : (string, int ref) Hashtbl.t;
  registry : ((string * int), string * int) Hashtbl.t;
      (** (worker node, backend xid) -> (coordinator node, coordinator xid):
          which distributed transaction a worker transaction belongs to.
          Shared cluster-wide; the distributed deadlock detector merges
          per-node wait edges through it (§3.7.3). *)
  mutable partitioned : string list;  (** unreachable nodes (failure injection) *)
  mutable injected_failures : (string * string) list;
      (** (node, SQL substring) pairs: matching statements fail with
          {!Network_error} — lets tests break 2PC at exact points *)
  mutable next_gid_seq : int;
}

exception Network_error of string

(** A transaction connection failed and one of the shard groups it had
    written has no other active replica: the transaction cannot continue
    without silently losing those writes, so it must abort. Carries the
    node name. Raised by the adaptive executor, mapped to a typed error
    by [Exec.wrap]. *)
exception Txn_replica_lost of string

val create :
  cluster:Cluster.Topology.t ->
  metadata:Metadata.t ->
  metasync:Metasync.t ->
  local:Cluster.Topology.node ->
  registry:((string * int), string * int) Hashtbl.t ->
  t

val default_config : unit -> config

(** Session bookkeeping, created on demand. *)
val session_state : t -> Engine.Instance.session -> session_state

(** Connections currently counted against a worker's shared limit. *)
val shared_count : t -> string -> int

(** [checkout t st node] opens one more connection to [node] and adds it
    to the session pool, if the per-session pool size and the cluster-wide
    shared limit allow; [force] bypasses the limits (the first connection a
    statement cannot do without). Returns [None] when at a limit. *)
val checkout :
  t -> session_state -> ?force:bool -> Cluster.Topology.node -> Cluster.Connection.t option

(** All pool connections of the session to [node]. *)
val pool_of : session_state -> string -> Cluster.Connection.t list

(** Network-simulation guards, used by [Exec]'s raising primitives:
    [check_reachable] raises {!Network_error} when the node is
    partitioned away; [check_injected] raises it when the statement
    matches an {!inject_failure} pattern for the node. *)
val check_reachable : t -> string -> unit

val check_injected : t -> string -> string -> unit

(** [with_sched t f] runs [f] under a {!Sim.Sched} wired to this
    cluster: the topology's [sched_seed] orders ready-queue tiebreaks
    and every virtual-clock jump fires {!Cluster.Topology.fault_tick},
    so scheduled faults interleave with fibers at their virtual times.
    For the run's extent the scheduler is the cluster's ambient one
    (injected latency passes as fiber sleeps) and each suspension point
    draws from the fault plan's suspension hazard. *)
val with_sched : t -> (Sim.Sched.t -> 'a) -> 'a

(** [false] while the node's circuit breaker is open. *)
val node_available : t -> string -> bool

(** [with_retry t ~node f] runs [f], retrying up to [attempts] times on
    {!Network_error} / {!Cluster.Connection.Node_unavailable} with the
    breaker's backoff — stretched by a bounded, seeded jitter draw
    ({!Cluster.Topology.retry_jitter}) so retry storms de-synchronize —
    advanced on the simulated clock between attempts. Re-raises after
    the last attempt. *)
val with_retry : ?attempts:int -> t -> node:string -> (unit -> 'a) -> 'a

(** Fresh global transaction identifier in this node's namespace:
    citus_<node-name>_<xid>_<seq> (MX: every coordinating node mints
    gids independently; the name identifies whose commit records decide
    the transaction). *)
val fresh_gid : t -> coord_xid:int -> string

(** Parse a gid back into (coordinating node name, coordinator xid). *)
val parse_gid : string -> (string * int) option

(** Fail statements containing [matching] sent to [node] (tests: break a
    2PC between PREPARE and COMMIT PREPARED, etc.). *)
val inject_failure : t -> node:string -> matching:string -> unit

val clear_failures : t -> unit

(** Sever / restore connectivity to a node (tests, §3.7.2 recovery). *)
val partition_node : t -> string -> unit

val heal_node : t -> string -> unit

(** Reachability of [name] from this node: not partitioned away by
    {!partition_node} and, when the cluster has a fault plan attached,
    alive with both link directions intact
    ({!Cluster.Topology.route_up}). *)
val reachable : t -> string -> bool

(** Drop all session pools (used when simulating coordinator restart). *)
val reset_sessions : t -> unit

(** [purge_node_conns t node] drops pooled connections to a crashed
    node and releases their shared-counter slots. Transaction-pinned
    connections ([txn_conns] / [affinity]) are kept so in-flight
    distributed transactions fail visibly instead of silently losing a
    participant. *)
val purge_node_conns : t -> string -> unit

(** This node crashed: abort worker-side transactions whose client
    sessions just died (prepared ones survive), then drop all session
    bookkeeping. *)
val crash_local_sessions : t -> unit

(** Leak accounting for the chaos invariants: connections still pinned
    to a transaction, and (conn, gid) pairs still awaiting COMMIT
    PREPARED, summed across sessions. Both must be zero once every
    statement has completed or been cancelled and all transactions have
    resolved. *)
val leaked_txn_conns : t -> int

val leaked_prepared : t -> int
