(** The adaptive executor (§3.6.1).

    Runs a distributed plan's tasks over per-session connection pools,
    respecting:

    - {b connection affinity}: inside a transaction, the same shard group
      on the same node always reuses the same connection, so uncommitted
      writes and locks stay visible to later statements;
    - {b replication and failover}: a write whose shard has several active
      placements runs on every replica (statement-based replication, §3.3);
      replicas that fail are marked {!Metadata.Inactive} as long as one
      succeeded. A read failing with {!State.Network_error} outside an
      explicit transaction fails over to the next active replica;
    - {b transaction blocks}: writes (and any statement inside an explicit
      coordinator transaction) run inside [BEGIN] on the worker connection;
      commit happens later through {!Twopc}'s transaction callbacks;
    - {b the shared connection limit}: new connections are only opened
      while the cluster-wide per-worker count is below the limit;
    - {b slow start}: since this harness has no OS threads, parallelism is
      simulated — tasks execute sequentially and their measured durations
      feed a deterministic timeline (one connection at t=0, one more every
      [slow_start_interval]) whose makespan and effective connection counts
      are returned in the {!report}. *)

type report = {
  makespan : float;
      (** simulated parallel elapsed time across nodes (excludes network) *)
  connections_used : (string * int) list;
      (** effective connections per node (after slow start) *)
  round_trips : int;  (** network round trips incurred by the tasks *)
  serial_time : float;  (** sum of all task durations (1-connection time) *)
}

(** A transaction connection failed and one of the shard groups it had
    written has no other active replica: the transaction cannot continue
    without silently losing those writes, so it must abort. Carries the
    node name. *)
exception Txn_replica_lost of string

(** Mark the placement of [shard_id] on [node] — plus its colocated
    siblings on that node — {!Metadata.Inactive}. Used when a replicated
    write or COPY loses one replica but survives on another. *)
val mark_placement_lost : State.t -> shard_id:int -> node:string -> unit

(** Execute tasks in a deterministic order; returns per-task results
    (aligned with the input order) and the timing report. Raises whatever
    task execution raises ({!Engine.Executor.Would_block},
    {!State.Network_error}, ...). *)
val execute :
  State.t ->
  Engine.Instance.session ->
  Plan.task list ->
  Engine.Instance.result list * report

(** Pure timeline simulation, exposed for unit tests: given task durations
    per node and the slow-start interval, the resulting (makespan,
    effective connections). [max_conns] caps the ramp-up. *)
val simulate_timeline :
  durations:float list ->
  slow_start:float ->
  max_conns:int ->
  float * int
