(** The adaptive executor (§3.6.1).

    Runs a distributed plan's tasks as concurrent {!Sim.Sched} fibers
    over per-session connection pools, respecting:

    - {b connection affinity}: inside a transaction, the same shard group
      on the same node always reuses the same connection, so uncommitted
      writes and locks stay visible to later statements. Tasks that pin
      the same (node, shard-group) key are chained into one fiber in
      plan order, so the affinity connection is established exactly once;
    - {b replication and failover}: a write whose shard has several active
      placements runs on every replica (statement-based replication, §3.3);
      replicas that fail are marked {!Metadata.Inactive} as long as one
      succeeded. A read failing with {!State.Network_error} outside an
      explicit transaction fails over to the next active replica;
    - {b transaction blocks}: writes (and any statement inside an explicit
      coordinator transaction) run inside [BEGIN] on the worker connection;
      commit happens later through {!Twopc}'s transaction callbacks;
    - {b the shared connection limit}: new connections are only opened
      while the cluster-wide per-worker count is below the limit;
    - {b slow start}: the k-th connection a statement opens to a node
      becomes available at [k * slow_start_interval] on the virtual
      clock — the opening fiber sleeps until its ramp gate. Each fragment
      then occupies its connection for its modeled duration (a virtual
      sleep), so the statement's makespan is {e measured} off the clock,
      not reconstructed afterwards. *)

type report = {
  makespan : float;
      (** virtual-clock elapsed from dispatch to last fragment completion *)
  connections_used : (string * int) list;
      (** per node, connections that ran at least one fragment *)
  conn_opened_at : (string * float list) list;
      (** per node, virtual times at which this statement opened {e new}
          connections — the slow-start ramp, in open order *)
  round_trips : int;  (** network round trips incurred by the tasks *)
  serial_time : float;  (** sum of all fragment durations (1-connection time) *)
  node_serial : (string * float) list;
      (** per node, sum of fragment durations — the per-node serial floor
          the concurrent makespan is compared against *)
}

(** Mark the placement of [shard_id] on [node] — plus its colocated
    siblings on that node — {!Metadata.Inactive}. Used when a replicated
    write or COPY loses one replica but survives on another. *)
val mark_placement_lost : State.t -> shard_id:int -> node:string -> unit

(** Execute tasks concurrently under {!State.with_sched}; returns
    per-task results (aligned with the input order) and the timing
    report. Raises whatever task execution raises
    ({!Engine.Executor.Would_block}, {!State.Network_error},
    {!State.Txn_replica_lost}, ...). *)
val execute :
  State.t ->
  Engine.Instance.session ->
  Plan.task list ->
  Engine.Instance.result list * report
