let intermediate_seq = ref 0

let infer_column_types ncols (rows : Datum.t array list) =
  Array.init ncols (fun i ->
      let rec first_type = function
        | [] -> Datum.TText
        | (row : Datum.t array) :: rest ->
          (match Datum.type_of row.(i) with
           | Some ty -> ty
           | None -> first_type rest)
      in
      first_type rows)

(* Materialize collected rows and run the master query over them. *)
let run_merge (t : State.t) coord_session (merge : Plan.merge)
    (rows : Datum.t array list) : Engine.Instance.result =
  let inst = t.State.local.Cluster.Topology.instance in
  let catalog = Engine.Instance.catalog inst in
  incr intermediate_seq;
  let rel = Printf.sprintf "citus_intermediate_%d" !intermediate_seq in
  let ncols = List.length merge.Plan.intermediate_columns in
  let tys = infer_column_types ncols rows in
  let columns =
    List.mapi
      (fun i name ->
        {
          Sqlfront.Ast.col_name = name;
          col_ty = tys.(i);
          col_default = None;
          col_not_null = false;
        })
      merge.Plan.intermediate_columns
  in
  let table =
    Engine.Catalog.add_table catalog ~name:rel ~columns ~primary_key:[]
      ~columnar:false
  in
  let ctx0 = Engine.Instance.make_ctx coord_session in
  (* direct callers may be outside a transaction: give the merge step an
     internal one so the transient rows have an owner *)
  let mgr = Engine.Instance.txn_manager inst in
  let own_xid, finish =
    match ctx0.Engine.Executor.xid with
    | Some _ -> (ctx0.Engine.Executor.xid, fun ok -> ignore ok)
    | None ->
      let x = Txn.Manager.begin_txn mgr in
      ( Some x,
        fun ok ->
          if ok then Txn.Manager.commit mgr x else Txn.Manager.abort mgr x )
  in
  (* the merge runs under a scratch meter: its cost is charged explicitly
     as merge_rows so the simulation can treat it as a serial phase *)
  let scratch = Engine.Meter.create () in
  let ctx =
    { ctx0 with Engine.Executor.xid = own_xid; meter = scratch }
  in
  Engine.Meter.add_merge_rows (Engine.Instance.meter inst) (List.length rows);
  Fun.protect
    ~finally:(fun () -> Engine.Catalog.drop_table catalog rel)
    (fun () ->
      (* materialize like a tuplestore: plain heap appends, no WAL, no
         indexes — collected rows are transient (one unit of CPU each) *)
      (try
         let heap =
           match table.Engine.Catalog.store with
           | Engine.Catalog.Heap_store h -> h
           | Engine.Catalog.Columnar_store _ -> assert false
         in
         let xid = Option.get ctx.Engine.Executor.xid in
         List.iter
           (fun row -> ignore (Storage.Heap.insert heap ~xid row))
           rows
       with e ->
         finish false;
         raise e);
      let master =
        Sqlfront.Ast.rename_tables_select
          (fun name ->
            if String.equal name Planner.intermediate_relation then rel
            else name)
          merge.Plan.master
      in
      let columns, out_rows =
        try Engine.Executor.run_select ctx master
        with e ->
          finish false;
          raise e
      in
      finish true;
      {
        Engine.Instance.columns;
        rows = out_rows;
        affected = List.length out_rows;
        tag = "SELECT";
      })

(* Adaptive_executor.execute returns exactly one result per task, so a
   single-task plan always yields a singleton list. *)
let sole_result = function [ r ] -> r | _ -> assert false

let execute (t : State.t) coord_session (plan : Plan.t) =
  match plan with
  | Plan.Fast_path task | Plan.Router task ->
    let results, report =
      Adaptive_executor.execute t coord_session [ task ]
    in
    (sole_result results, report)
  | Plan.Multi_shard_select { tasks; merge } ->
    let results, report = Adaptive_executor.execute t coord_session tasks in
    let rows = List.concat_map (fun r -> r.Engine.Instance.rows) results in
    (run_merge t coord_session merge rows, report)
  | Plan.Multi_shard_dml { tasks } ->
    let results, report = Adaptive_executor.execute t coord_session tasks in
    let affected =
      List.fold_left (fun acc r -> acc + r.Engine.Instance.affected) 0 results
    in
    let tag =
      match results with r :: _ -> r.Engine.Instance.tag | [] -> "UPDATE"
    in
    ({ Engine.Instance.columns = []; rows = []; affected; tag }, report)
  | Plan.Reference_write task ->
    (* one task; the executor replicates it across the reference shard's
       active placements and reports the first replica's result *)
    let results, report =
      Adaptive_executor.execute t coord_session [ task ]
    in
    (sole_result results, report)
