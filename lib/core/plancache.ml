(* The distributed plan cache: query shape -> memoized plan skeleton.
   See the .mli for the design; this module is the data structure only —
   shape analysis lives in [Planner], skeleton construction and cached
   dispatch in [Api], which also emits the plancache.* metrics. *)

open Sqlfront

type group_plan = {
  gp_shard : int;  (** anchor shard id of this group *)
  gp_stmt : Ast.statement;  (** shape rewritten to this group's shard names *)
  gp_sql : string;  (** cached deparse of [gp_stmt] (params unbound) *)
}

type entry = {
  e_key : string;
  e_shape : Planner.shape;
  e_version : int;
  e_groups : (int * group_plan) list;
  mutable e_tick : int;
}

type stat = {
  st_fingerprint : string;
  mutable st_tier : string;
  mutable st_calls : int;
  mutable st_hits : int;
  mutable st_builds : int;
  mutable st_bypass : int;
}

type t = {
  entries : (string, entry) Hashtbl.t;
  stat_tbl : (string, stat) Hashtbl.t;
  mutable tick : int;  (** LRU clock: bumped on every hit and store *)
}

let create () =
  { entries = Hashtbl.create 32; stat_tbl = Hashtbl.create 32; tick = 0 }

(* Stable 8-hex shape id: [Hashtbl.hash] of the normalized shape text is
   deterministic across runs, and bounds the plancache.shape_seconds.*
   metric family to the set of distinct prepared shapes. *)
let fingerprint key = Printf.sprintf "%08x" (Hashtbl.hash key)

let size t = Hashtbl.length t.entries

type lookup = Hit of entry | Stale | Miss

let find t ~key ~version =
  match Hashtbl.find_opt t.entries key with
  | None -> Miss
  | Some e when e.e_version <> version ->
    (* the metadata moved underneath the skeleton: a stale cached
       deparse must never execute — discard, caller re-plans *)
    Hashtbl.remove t.entries key;
    Stale
  | Some e ->
    t.tick <- t.tick + 1;
    e.e_tick <- t.tick;
    Hit e

let store t ~max_size entry =
  if max_size <= 0 then 0
  else begin
    t.tick <- t.tick + 1;
    entry.e_tick <- t.tick;
    Hashtbl.replace t.entries entry.e_key entry;
    let evicted = ref 0 in
    while Hashtbl.length t.entries > max_size do
      let victim =
        Hashtbl.fold
          (fun _ e acc ->
            match acc with
            | Some b when b.e_tick <= e.e_tick -> acc
            | _ -> Some e)
          t.entries None
      in
      match victim with
      | Some v ->
        Hashtbl.remove t.entries v.e_key;
        incr evicted
      | None -> ()
    done;
    !evicted
  end

let stat t ~key =
  match Hashtbl.find_opt t.stat_tbl key with
  | Some s -> s
  | None ->
    let s =
      {
        st_fingerprint = fingerprint key;
        st_tier = "-";
        st_calls = 0;
        st_hits = 0;
        st_builds = 0;
        st_bypass = 0;
      }
    in
    Hashtbl.replace t.stat_tbl key s;
    s

let stats t =
  Hashtbl.fold (fun k s acc -> (k, s) :: acc) t.stat_tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
