(** Per-node health tracking: a circuit breaker over the simulated clock.

    Every network operation reports success or failure here. A node whose
    consecutive failures reach the threshold trips its breaker [Open]: the
    planner stops preferring its placements and the executors stop probing
    it until the backoff elapses, at which point the breaker turns
    [Half_open] and lets a single probe through — success closes it,
    failure re-opens it with a doubled backoff (capped). All timing uses
    {!Sim.Clock}, so tests stay deterministic.

    The tracker also counts best-effort [COMMIT PREPARED] failures
    ({!record_failed_commit}), which the 2PC recovery daemon later
    resolves; the count lets tests and the health report observe that
    recovery actually had work to do. *)

type breaker = Closed | Open | Half_open

val breaker_name : breaker -> string

type node_stats = {
  mutable consecutive_failures : int;
  mutable failures : int;  (** total network errors *)
  mutable successes : int;  (** total completed operations *)
  mutable failed_commits : int;
      (** best-effort COMMIT PREPARED sends that failed *)
  mutable ignored_errors : int;
      (** exceptions swallowed by best-effort cleanup (e.g. ROLLBACK on an
          already-failing node), counted so they stay observable *)
  mutable slow_events : int;
      (** total deadline expiries against this node — gray failures: the
          node answered, just too late *)
  mutable consecutive_slow : int;
  mutable breaker : breaker;
  mutable opened_at : float;  (** clock time the breaker last opened *)
  mutable backoff : float;  (** current open-interval / retry backoff *)
}

type t = {
  clock : Sim.Clock.t;
  nodes : (string, node_stats) Hashtbl.t;
  metrics : Obs.Metrics.t option;
      (** when present, breaker transitions count into the registry
          ([breaker.<from>_to_<to>]) and [breaker.tripped] gauges the
          currently-open breakers *)
  mutable failure_threshold : int;
      (** consecutive failures that trip the breaker *)
  mutable slow_threshold : int;
      (** consecutive slow events (deadline expiries) that trip it *)
  mutable base_backoff : float;  (** seconds *)
  mutable max_backoff : float;
}

val create :
  ?failure_threshold:int ->
  ?slow_threshold:int ->
  ?base_backoff:float ->
  ?max_backoff:float ->
  ?metrics:Obs.Metrics.t ->
  clock:Sim.Clock.t ->
  unit ->
  t

(** Stats for a node, created zeroed on first touch. *)
val stats : t -> string -> node_stats

(** Current breaker state; resolves [Open] to [Half_open] when the
    backoff has elapsed on the clock. *)
val breaker_state : t -> string -> breaker

val record_success : t -> string -> unit

val record_failure : t -> string -> unit

(** The latency-aware trip signal: a statement deadline expired against
    this node, but nothing {e failed} — the node is alive, just slow.
    Never counts toward [consecutive_failures] (so nothing marks the
    node or its placements dead); enough consecutive slow events still
    trip the breaker [Open] so a browned-out node sheds load until its
    backoff elapses. Counted into [health.slow_events] and, on a trip,
    [breaker.tripped_slow]. *)
val record_slow : t -> string -> unit

val slow_events : t -> string -> int

val record_failed_commit : t -> string -> unit

val failed_commits : t -> string -> int

(** Record an exception that best-effort cleanup deliberately swallowed;
    the per-node count keeps it visible to monitoring and tests (lint rule
    L5 requires every catch-all in the 2PC/health/deadlock paths to either
    re-raise or record). *)
val record_ignored : t -> string -> unit

val ignored_errors : t -> string -> int

(** [false] only while the breaker is [Open] (within its backoff):
    half-open nodes accept a probe. *)
val available : t -> string -> bool

(** Suggested wait before the next retry against this node. *)
val retry_backoff : t -> string -> float

type node_report = {
  nr_node : string;
  nr_breaker : breaker;
  nr_consecutive_failures : int;
  nr_failures : int;
  nr_successes : int;
  nr_failed_commits : int;
  nr_ignored_errors : int;
  nr_slow_events : int;
}

(** Snapshot of every tracked node, sorted by name. *)
val report : t -> node_report list
