let err fmt =
  Printf.ksprintf (fun m -> raise (Engine.Instance.Session_error m)) fmt

(* hash ranges around the tenant: [min, h-1], [h, h], [h+1, max], with
   empty subranges dropped *)
let split_ranges ~min_hash ~max_hash h =
  let before =
    if Int32.compare min_hash h < 0 then [ (min_hash, Int32.pred h) ] else []
  in
  let after =
    if Int32.compare h max_hash < 0 then [ (Int32.succ h, max_hash) ] else []
  in
  before @ [ (h, h) ] @ after

let isolate_tenant (t : State.t) ~table ~value =
  let meta = t.State.metadata in
  let dt =
    match Metadata.find meta table with
    | Some ({ Metadata.kind = Metadata.Distributed; _ } as dt) -> dt
    | Some _ -> err "%s is a reference table; tenants live in distributed tables" table
    | None -> err "%s is not a distributed table" table
  in
  let h = Datum.hash32 value in
  let anchor = Metadata.shard_for_value meta ~table value in
  if Int32.equal anchor.Metadata.min_hash h && Int32.equal anchor.Metadata.max_hash h
  then
    (* already isolated *)
    [ anchor.Metadata.shard_id ]
  else begin
    let group_index = anchor.Metadata.index_in_colocation in
    let group_tables =
      List.filter
        (fun (d : Metadata.dist_table) ->
          d.Metadata.kind = Metadata.Distributed
          && d.Metadata.colocation_id = dt.Metadata.colocation_id)
        (Metadata.all_tables meta)
      (* the requested table first, so the returned ids line up *)
      |> List.sort (fun (a : Metadata.dist_table) b ->
             compare
               (not (String.equal a.Metadata.dt_name table))
               (not (String.equal b.Metadata.dt_name table)))
    in
    let catalog =
      Engine.Instance.catalog t.State.local.Cluster.Topology.instance
    in
    let tenant_ids =
      List.map
        (fun (gt : Metadata.dist_table) ->
          let gt_name = gt.Metadata.dt_name in
          let old_shard =
            List.find
              (fun (s : Metadata.shard) ->
                s.Metadata.index_in_colocation = group_index)
              (Metadata.shards_of meta gt_name)
          in
          let node = Metadata.placement meta old_shard.Metadata.shard_id in
          let ranges =
            split_ranges ~min_hash:old_shard.Metadata.min_hash
              ~max_hash:old_shard.Metadata.max_hash h
          in
          let news =
            Metasync.replace_shard t.State.metasync
              ~shard_id:old_shard.Metadata.shard_id ~ranges
          in
          (* physical tables on the same node *)
          let conn =
            Cluster.Connection.open_
              ~origin:t.State.local.Cluster.Topology.node_name t.State.cluster
              (Cluster.Topology.find_node t.State.cluster node)
          in
          let src =
            match Engine.Catalog.find_table_opt catalog gt_name with
            | Some tbl -> tbl
            | None -> err "no schema for %s on the coordinator" gt_name
          in
          List.iter
            (fun (s : Metadata.shard) ->
              ignore
                (Cluster.Connection.exec_ast conn
                   (Sqlfront.Ast.Create_table
                      {
                        name = Metadata.shard_name s;
                        columns = src.Engine.Catalog.columns;
                        primary_key = src.Engine.Catalog.primary_key;
                        if_not_exists = false;
                        using_columnar = false;
                      })))
            news;
          (* move the rows by hash of this table's distribution column *)
          let dist_col =
            match gt.Metadata.dist_column with
            | Some c -> c
            | None -> err "%s has no distribution column" gt_name
          in
          let pos = Engine.Catalog.column_index src dist_col in
          (* [@lint.sql_static]: the only interpolant is Metadata.shard_name,
             an internally generated "<table>_<id>" identifier — never
             client input *)
          let rows =
            (Exec.raw_on_conn_exn conn
               (Printf.sprintf "SELECT * FROM %s"
                  (Metadata.shard_name old_shard)) [@lint.sql_static])
              .Engine.Instance.rows
          in
          List.iter
            (fun (s : Metadata.shard) ->
              let mine (row : Datum.t array) =
                let hv = Datum.hash32 row.(pos) in
                Int32.compare hv s.Metadata.min_hash >= 0
                && Int32.compare hv s.Metadata.max_hash <= 0
              in
              let bucket = List.filter mine rows in
              if bucket <> [] then
                ignore
                  (Cluster.Connection.exec_ast conn
                     (Sqlfront.Ast.Insert
                        {
                          table = Metadata.shard_name s;
                          columns = None;
                          source =
                            Sqlfront.Ast.Values
                              (List.map
                                 (fun row ->
                                   List.map
                                     (fun d -> Sqlfront.Ast.Const d)
                                     (Array.to_list row))
                                 bucket);
                          on_conflict_do_nothing = false;
                        })))
            news;
          ignore
            (Cluster.Connection.exec_ast conn
               (Sqlfront.Ast.Drop_table
                  { name = Metadata.shard_name old_shard; if_exists = false }));
          (* the single-value shard is the tenant's *)
          (List.find
             (fun (s : Metadata.shard) ->
               Int32.equal s.Metadata.min_hash h && Int32.equal s.Metadata.max_hash h)
             news)
            .Metadata.shard_id)
        group_tables
    in
    Metasync.renumber_colocation t.State.metasync
      ~colocation_id:dt.Metadata.colocation_id;
    tenant_ids
  end

let isolate_tenant_to_node (t : State.t) ~table ~value ~to_node =
  match isolate_tenant t ~table ~value with
  | [] -> err "nothing isolated"
  | shard_id :: _ -> Rebalancer.move_shard_group t ~shard_id ~to_node
