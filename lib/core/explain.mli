(** EXPLAIN-style description of distributed plans.

    Renders which planner tier handled a statement, the task fan-out with
    target nodes and shards, and the merge step — the textual equivalent of
    Figure 4's planning examples. Used by tests to pin planner behavior and
    by users to understand routing. *)

(** [explain state ~catalog sql] plans (without executing) and renders the
    distributed plan. Falls back to describing join-order handling or
    local execution. *)
val explain : State.t -> string -> string

(** [explain_analyze state sql] executes the query on a fresh session
    with span tracing forced on and renders the resulting span tree —
    planner tier, per-fragment placement and virtual-clock timings.
    The sink's previous enabled state is restored afterwards, even if
    execution raises. Backs [citus_explain(query, 'analyze')]. *)
val explain_analyze : State.t -> string -> string
