open Sqlfront

exception Unsupported of string

let unsupported fmt = Printf.ksprintf (fun m -> raise (Unsupported m)) fmt

type tier = Tier_fast_path | Tier_router | Tier_pushdown | Tier_dml | Tier_reference

let tier_name = function
  | Tier_fast_path -> "fast path"
  | Tier_router -> "router"
  | Tier_pushdown -> "logical pushdown"
  | Tier_dml -> "parallel DML"
  | Tier_reference -> "reference write"

(* metric/tag-safe identifier; the join-order fallback in Api uses
   "join_order" in the same namespace *)
let tier_slug = function
  | Tier_fast_path -> "fast_path"
  | Tier_router -> "router"
  | Tier_pushdown -> "pushdown"
  | Tier_dml -> "dml"
  | Tier_reference -> "reference"

(* --- discovery: citus tables and aliases --- *)

let rec tables_in_from_item acc = function
  | Ast.Table { name; alias } ->
    (name, Option.value ~default:name alias) :: acc
  | Ast.Subselect (sel, _) -> tables_in_select acc sel
  | Ast.Join { left; right; _ } ->
    tables_in_from_item (tables_in_from_item acc left) right

and tables_in_select acc (sel : Ast.select) =
  let acc = List.fold_left tables_in_from_item acc sel.from in
  let in_expr acc e =
    Ast.fold_expr
      (fun acc n ->
        match n with
        | Ast.Exists (s, _) | Ast.Scalar_subquery s | Ast.In_subquery (_, s, _)
          ->
          tables_in_select acc s
        | _ -> acc)
      acc e
  in
  let acc = match sel.where with Some w -> in_expr acc w | None -> acc in
  let acc = match sel.having with Some h -> in_expr acc h | None -> acc in
  List.fold_left
    (fun acc p -> match p with Ast.Proj (e, _) -> in_expr acc e | _ -> acc)
    acc sel.projections

(* (table name, alias) pairs for every referenced relation *)
let tables_in_statement (stmt : Ast.statement) : (string * string) list =
  match stmt with
  | Ast.Select_stmt sel -> tables_in_select [] sel
  | Ast.Insert { table; source; _ } ->
    let acc = [ (table, table) ] in
    (match source with
     | Ast.Values _ -> acc
     | Ast.Query sel -> tables_in_select acc sel)
  | Ast.Update { table; where; _ } | Ast.Delete { table; where } ->
    let acc = [ (table, table) ] in
    (match where with
     | Some w ->
       Ast.fold_expr
         (fun acc n ->
           match n with
           | Ast.Exists (s, _) | Ast.Scalar_subquery s
           | Ast.In_subquery (_, s, _) ->
             tables_in_select acc s
           | _ -> acc)
         acc w
     | None -> acc)
  | Ast.Create_index { table; _ } -> [ (table, table) ]
  | Ast.Copy_from { table; _ } -> [ (table, table) ]
  | Ast.Truncate ts -> List.map (fun t -> (t, t)) ts
  | Ast.Drop_table { name; _ } -> [ (name, name) ]
  | Ast.Alter_table_add_column { table; _ } -> [ (table, table) ]
  | Ast.Vacuum (Some t) -> [ (t, t) ]
  | _ -> []

let citus_tables meta stmt =
  tables_in_statement stmt
  |> List.map fst
  |> List.filter (Metadata.is_citus_table meta)
  |> List.sort_uniq String.compare

let dist_tables_of meta names =
  List.filter
    (fun n ->
      match Metadata.find meta n with
      | Some { Metadata.kind = Metadata.Distributed; _ } -> true
      | _ -> false)
    names

(* --- distribution column filters --- *)

(* Aliases under which each citus table appears in the statement. *)
let alias_map meta stmt =
  tables_in_statement stmt
  |> List.filter (fun (t, _) -> Metadata.is_citus_table meta t)

(* Constant equality filters on distribution columns: returns
   (table, value) pairs. A conjunct [w_id = 5] with no qualifier matches
   every distributed table whose distribution column is named w_id. *)
let rec conjuncts_of_select (sel : Ast.select) =
  let level = match sel.where with Some w -> Ast.conjuncts w | None -> [] in
  let rec from_item_conjs = function
    | Ast.Table _ -> []
    | Ast.Subselect (s, _) -> conjuncts_of_select s
    | Ast.Join { left; right; cond; _ } ->
      (match cond with Some c -> Ast.conjuncts c | None -> [])
      @ from_item_conjs left @ from_item_conjs right
  in
  level @ List.concat_map from_item_conjs sel.from

let conjuncts_of_statement = function
  | Ast.Select_stmt sel -> conjuncts_of_select sel
  | Ast.Insert { source = Ast.Query sel; _ } -> conjuncts_of_select sel
  | Ast.Update { where; _ } | Ast.Delete { where; _ } ->
    (match where with Some w -> Ast.conjuncts w | None -> [])
  | _ -> []

let is_constant e =
  match e with
  | Ast.Const _ -> true
  | _ ->
    (* no column refs anywhere *)
    Ast.fold_expr
      (fun ok n -> ok && match n with Ast.Column _ -> false | _ -> true)
      true e

let eval_const e =
  match e with
  | Ast.Const d -> Some d
  | _ when is_constant e ->
    (try
       let env =
         {
           Engine.Expr_eval.rng = Random.State.make [| 0 |];
           now = 0.0;
           subquery = (fun _ -> []);
         }
       in
       Some (Engine.Expr_eval.compile [] env e [||])
     with _ -> None)
  | _ -> None

let dist_filters meta stmt : (string * Datum.t) list =
  let aliases = alias_map meta stmt in
  let conjs = conjuncts_of_statement stmt in
  let match_column q c =
    List.filter_map
      (fun (table, alias) ->
        match Metadata.find meta table with
        | Some { Metadata.dist_column = Some dc; _ } when String.equal dc c ->
          (match q with
           | None -> Some table
           | Some q when String.equal q alias || String.equal q table ->
             Some table
           | Some _ -> None)
        | _ -> None)
      aliases
  in
  List.concat_map
    (fun conj ->
      match conj with
      | Ast.Cmp (Ast.Eq, Ast.Column (q, c), rhs) -> (
        match eval_const rhs with
        | Some v -> List.map (fun t -> (t, v)) (match_column q c)
        | None -> [])
      | Ast.Cmp (Ast.Eq, lhs, Ast.Column (q, c)) -> (
        match eval_const lhs with
        | Some v -> List.map (fun t -> (t, v)) (match_column q c)
        | None -> [])
      | _ -> [])
    conjs

(* Shard pruning: conjuncts of the form [dist_col = const] or
   [dist_col IN (consts)] restrict which shard groups a multi-shard plan
   must visit. Returns [None] when any distributed table is unconstrained
   (all groups), otherwise the set of group indexes. *)
let pruned_groups meta stmt : int list option =
  let aliases = alias_map meta stmt in
  let conjs = conjuncts_of_statement stmt in
  let match_column q c =
    List.filter_map
      (fun (table, alias) ->
        match Metadata.find meta table with
        | Some { Metadata.dist_column = Some dc; _ } when String.equal dc c ->
          (match q with
           | None -> Some table
           | Some q when String.equal q alias || String.equal q table ->
             Some table
           | Some _ -> None)
        | _ -> None)
      aliases
  in
  let groups_of table v =
    (Metadata.shard_for_value meta ~table v).Metadata.index_in_colocation
  in
  (* per distributed table: Some groups when a constraint exists *)
  let constraints : (string, int list) Hashtbl.t = Hashtbl.create 4 in
  let add table gs =
    let existing = Option.value ~default:gs (Hashtbl.find_opt constraints table) in
    (* multiple constraints on the same table intersect *)
    Hashtbl.replace constraints table
      (List.filter (fun g -> List.mem g gs) existing)
  in
  List.iter
    (fun conj ->
      match conj with
      | Ast.Cmp (Ast.Eq, Ast.Column (q, c), rhs) when eval_const rhs <> None ->
        (match eval_const rhs with
         | Some v when not (Datum.is_null v) ->
           List.iter (fun t -> add t [ groups_of t v ]) (match_column q c)
         | _ -> ())
      | Ast.Cmp (Ast.Eq, lhs, Ast.Column (q, c)) when eval_const lhs <> None ->
        (match eval_const lhs with
         | Some v when not (Datum.is_null v) ->
           List.iter (fun t -> add t [ groups_of t v ]) (match_column q c)
         | _ -> ())
      | Ast.In_list (Ast.Column (q, c), items, false) ->
        let values = List.filter_map eval_const items in
        if List.length values = List.length items
           && List.for_all (fun v -> not (Datum.is_null v)) values
        then
          List.iter
            (fun t ->
              add t
                (List.sort_uniq Int.compare (List.map (groups_of t) values)))
            (match_column q c)
      | _ -> ())
    conjs;
  let dists =
    dist_tables_of meta (List.sort_uniq String.compare (List.map fst aliases))
  in
  let per_table =
    List.filter_map (fun t -> Hashtbl.find_opt constraints t) dists
  in
  (* an unconstrained distributed table (missing from [constraints]) means
     all groups must be visited *)
  if List.compare_lengths per_table dists <> 0 then None
  else
    (* co-located tables share the group space: intersect *)
    match per_table with
    | [] -> None
    | first :: rest ->
      Some
        (List.fold_left
           (fun acc gs -> List.filter (fun g -> List.mem g gs) acc)
           first rest)

(* --- shard rewriting --- *)

let rewrite_to_group meta ~group_index stmt =
  let rename name =
    match Metadata.find meta name with
    | None -> name
    | Some { Metadata.kind = Metadata.Reference; _ } ->
      (match Metadata.shards_of meta name with
       | [ s ] -> Metadata.shard_name s
       | _ -> name)
    | Some { Metadata.kind = Metadata.Distributed; _ } ->
      let shard =
        List.find
          (fun (s : Metadata.shard) -> s.index_in_colocation = group_index)
          (Metadata.shards_of meta name)
      in
      Metadata.shard_name shard
  in
  Ast.rename_tables_statement rename stmt

let rewrite_reference_only meta stmt =
  let rename name =
    match Metadata.find meta name with
    | Some { Metadata.kind = Metadata.Reference; _ } ->
      (match Metadata.shards_of meta name with
       | [ s ] -> Metadata.shard_name s
       | _ -> name)
    | _ -> name
  in
  Ast.rename_tables_statement rename stmt

(* --- fast path --- *)

(* Simple CRUD on one distributed table: single-table SELECT / UPDATE /
   DELETE, no subqueries — the statement shapes the fast path (and the
   plan cache's fast tier) accepts. Returns the target table. *)
let fast_path_target (stmt : Ast.statement) : string option =
  let simple_select sel =
    match sel.Ast.from with
    | [ Ast.Table { name; _ } ] ->
      let no_subqueries =
        conjuncts_of_select sel
        |> List.for_all (fun c ->
               Ast.fold_expr
                 (fun ok n ->
                   ok
                   && match n with
                      | Ast.Exists _ | Ast.In_subquery _ | Ast.Scalar_subquery _
                        -> false
                      | _ -> true)
                 true c)
      in
      if no_subqueries then Some name else None
    | _ -> None
  in
  match stmt with
  | Ast.Select_stmt sel -> simple_select sel
  | Ast.Update { table; _ } | Ast.Delete { table; _ } -> Some table
  | _ -> None

(* Fast path proper: the distribution-column value must be a constant. *)
let try_fast_path ?node_ok meta stmt : Plan.task option =
  match fast_path_target stmt with
  | None -> None
  | Some table ->
    (match Metadata.find meta table with
     | Some { Metadata.kind = Metadata.Distributed; _ } ->
       (match List.assoc_opt table (dist_filters meta stmt) with
        | Some value ->
          let shard = Metadata.shard_for_value meta ~table value in
          let node = Metadata.select_placement ?node_ok meta shard.Metadata.shard_id in
          let stmt' =
            rewrite_to_group meta ~group_index:shard.Metadata.index_in_colocation
              stmt
          in
          Some
            {
              Plan.task_node = node;
              task_stmt = stmt';
              task_group = shard.Metadata.index_in_colocation;
              task_shard = shard.Metadata.shard_id;
            }
        | None -> None)
     | _ -> None)

(* --- router --- *)

let try_router ?node_ok meta ~local_name stmt : Plan.task option =
  let names = citus_tables meta stmt in
  let dists = dist_tables_of meta names in
  if not (Metadata.colocated meta names) then None
  else
    match dists with
    | [] ->
      (* reference/local only: route locally (replica on every node) *)
      (match stmt with
       | Ast.Select_stmt _ ->
         Some
           {
             Plan.task_node = local_name;
             task_stmt = rewrite_reference_only meta stmt;
             task_group = -1;
             task_shard = -1;
           }
       | _ -> None)
    | _ ->
      let filters = dist_filters meta stmt in
      let group_of table value =
        let shard = Metadata.shard_for_value meta ~table value in
        shard.Metadata.index_in_colocation
      in
      let groups =
        List.filter_map
          (fun t ->
            match List.assoc_opt t filters with
            | Some v -> Some (group_of t v)
            | None -> None)
          dists
      in
      if List.length groups <> List.length dists then None
      else
        (match List.sort_uniq Int.compare groups, dists with
         | [ g ], anchor :: _ ->
           let shard =
             List.find
               (fun (s : Metadata.shard) -> s.index_in_colocation = g)
               (Metadata.shards_of meta anchor)
           in
           let node = Metadata.select_placement ?node_ok meta shard.Metadata.shard_id in
           Some
             {
               Plan.task_node = node;
               task_stmt = rewrite_to_group meta ~group_index:g stmt;
               task_group = g;
               task_shard = shard.Metadata.shard_id;
             }
         | _, _ -> None)

(* --- shape analysis for the distributed plan cache --- *)

type dist_key = Key_param of int | Key_const of Datum.t

type shape = {
  sh_anchor : string;  (** distributed table whose shards drive pruning *)
  sh_tier : tier;  (** [Tier_fast_path] or [Tier_router] *)
  sh_key : dist_key;  (** where the routing value comes from at bind time *)
}

let key_equal a b =
  match a, b with
  | Key_param i, Key_param j -> i = j
  | Key_const u, Key_const v -> u = v
  | Key_param _, Key_const _ | Key_const _, Key_param _ -> false

(* Like [dist_filters], but the comparand may be an unbound parameter:
   (table, key) pairs for conjuncts [dist_col = $k] / [dist_col = const]. *)
let dist_key_filters meta stmt : (string * dist_key) list =
  let aliases = alias_map meta stmt in
  let conjs = conjuncts_of_statement stmt in
  let match_column q c =
    List.filter_map
      (fun (table, alias) ->
        match Metadata.find meta table with
        | Some { Metadata.dist_column = Some dc; _ } when String.equal dc c ->
          (match q with
           | None -> Some table
           | Some q when String.equal q alias || String.equal q table ->
             Some table
           | Some _ -> None)
        | _ -> None)
      aliases
  in
  let key_of e =
    match e with
    | Ast.Param k -> Some (Key_param k)
    | _ ->
      (match eval_const e with
       | Some v when not (Datum.is_null v) -> Some (Key_const v)
       | _ -> None)
  in
  List.concat_map
    (fun conj ->
      match conj with
      | Ast.Cmp (Ast.Eq, Ast.Column (q, c), rhs) -> (
        match key_of rhs with
        | Some k -> List.map (fun t -> (t, k)) (match_column q c)
        | None -> [])
      | Ast.Cmp (Ast.Eq, lhs, Ast.Column (q, c)) -> (
        match key_of lhs with
        | Some k -> List.map (fun t -> (t, k)) (match_column q c)
        | None -> [])
      | _ -> [])
    conjs

(* Can this (normalized, params unbound) statement's plan be cached with
   shard pruning deferred to bind time? Yes iff the plan is single-group
   whichever value the routing parameter takes: every referenced table is
   a co-located Citus table and every distributed table carries an
   equality filter on its distribution column against the {e same}
   parameter (or the same constant). Anything else — multi-shard,
   reference-only, local tables, multi-row inserts — re-plans per
   EXECUTE (the cache's bypass path), so being conservative here costs
   latency, never correctness. *)
let analyze_shape meta ~catalog (stmt : Ast.statement) : shape option =
  match stmt with
  | Ast.Insert { table; columns; source = Ast.Values [ tuple ]; _ } ->
    (match Metadata.find meta table with
     | Some
         {
           Metadata.kind = Metadata.Distributed;
           dist_column = Some dist_col;
           _;
         } ->
       let dist_pos =
         match columns with
         | Some cols -> List.find_index (String.equal dist_col) cols
         | None ->
           (match Engine.Catalog.find_table_opt catalog table with
            | Some tbl ->
              List.find_index
                (fun (c : Ast.column_def) -> String.equal c.col_name dist_col)
                tbl.Engine.Catalog.columns
            | None -> None)
       in
       (match Option.bind dist_pos (List.nth_opt tuple) with
        | Some (Ast.Param k) ->
          Some { sh_anchor = table; sh_tier = Tier_fast_path; sh_key = Key_param k }
        | Some e ->
          (match eval_const e with
           | Some v when not (Datum.is_null v) ->
             Some
               { sh_anchor = table; sh_tier = Tier_fast_path; sh_key = Key_const v }
           | _ -> None)
        | None -> None)
     | _ -> None)
  | Ast.Select_stmt _ | Ast.Update _ | Ast.Delete _ ->
    let names =
      List.sort_uniq String.compare (List.map fst (tables_in_statement stmt))
    in
    (match dist_tables_of meta names with
     | [] -> None
     | anchor :: _ as dists ->
       if
         (not (List.for_all (Metadata.is_citus_table meta) names))
         || not (Metadata.colocated meta names)
       then None
       else begin
         let filters = dist_key_filters meta stmt in
         let keys = List.filter_map (fun t -> List.assoc_opt t filters) dists in
         match keys with
         | k :: rest
           when List.compare_lengths keys dists = 0
                && List.for_all (key_equal k) rest ->
           let tier =
             match fast_path_target stmt with
             | Some t when String.equal t anchor -> Tier_fast_path
             | _ -> Tier_router
           in
           Some { sh_anchor = anchor; sh_tier = tier; sh_key = k }
         | _ -> None
       end)
  | _ -> None

(* --- pushdown validation --- *)

(* Distributed base tables (with aliases) at one select level, not
   descending into subselects. *)
let rec level_dist_tables meta = function
  | Ast.Table { name; alias } ->
    (match Metadata.find meta name with
     | Some { Metadata.kind = Metadata.Distributed; dist_column = Some dc; _ } ->
       [ (name, Option.value ~default:name alias, dc) ]
     | _ -> [])
  | Ast.Subselect _ -> []
  | Ast.Join { left; right; _ } ->
    level_dist_tables meta left @ level_dist_tables meta right

let column_matches_dist (q, c) (table, alias, dc) =
  String.equal c dc
  &&
  match q with
  | None -> true
  | Some q -> String.equal q alias || String.equal q table

(* Somewhere in [conjs] there is an equality between the dist columns of
   [t1] and [t2]. *)
let joined_on_dist_col conjs t1 t2 =
  List.exists
    (fun conj ->
      match conj with
      | Ast.Cmp (Ast.Eq, Ast.Column (q1, c1), Ast.Column (q2, c2)) ->
        (column_matches_dist (q1, c1) t1 && column_matches_dist (q2, c2) t2)
        || (column_matches_dist (q1, c1) t2 && column_matches_dist (q2, c2) t1)
      | _ -> false)
    conjs

let rec select_has_agg (sel : Ast.select) =
  List.exists
    (function Ast.Proj (e, _) -> Ast.contains_aggregate e | _ -> false)
    sel.projections
  ||
  match sel.having with Some h -> Ast.contains_aggregate h | None -> false

and validate_pushdown_level meta ~is_top (sel : Ast.select) =
  let dists = List.concat_map (level_dist_tables meta) sel.from in
  let conjs = conjuncts_of_select sel in
  (* pairwise co-located join check *)
  let rec pairs = function
    | [] | [ _ ] -> ()
    | t1 :: rest ->
      List.iter
        (fun t2 ->
          if not (joined_on_dist_col conjs t1 t2) then
            unsupported
              "complex joins between distributed tables %s and %s are only \
               supported when joined on their distribution columns"
              (match t1 with n, _, _ -> n)
              (match t2 with n, _, _ -> n))
        rest;
      pairs rest
  in
  pairs dists;
  (* scalar subqueries on distributed tables inside expressions are not
     pushdownable *)
  let check_expr e =
    Ast.fold_expr
      (fun () n ->
        match n with
        | Ast.Exists (s, _) | Ast.Scalar_subquery s | Ast.In_subquery (_, s, _)
          ->
          if dist_tables_of meta (List.map fst (tables_in_select [] s)) <> []
          then
            unsupported
              "subqueries on distributed tables in expressions are not \
               supported in multi-shard queries"
        | _ -> ())
      () e
  in
  (match sel.where with Some w -> check_expr w | None -> ());
  (* recurse into FROM subselects with their own rules *)
  let rec check_item = function
    | Ast.Table _ -> ()
    | Ast.Join { left; right; _ } -> check_item left; check_item right
    | Ast.Subselect (sub, _) ->
      let sub_dists = List.concat_map (level_dist_tables meta) sub.from in
      if sub_dists <> [] then begin
        if sub.limit <> None || sub.offset <> None || sub.distinct then
          unsupported
            "LIMIT/OFFSET/DISTINCT in subqueries on distributed tables \
             require a merge step";
        if sub.group_by <> [] then begin
          let groups_on_dist =
            List.exists
              (fun g ->
                match g with
                | Ast.Column (q, c) ->
                  List.exists (column_matches_dist (q, c)) sub_dists
                | _ -> false)
              sub.group_by
          in
          if not (groups_on_dist) then
            unsupported
              "GROUP BY in a subquery on distributed tables must include \
               the distribution column"
        end
        else if select_has_agg sub then
          unsupported
            "aggregates in a subquery on distributed tables require a merge \
             step"
      end;
      validate_pushdown_level meta ~is_top:false sub
  in
  List.iter check_item sel.from;
  ignore is_top

(* --- pushdown construction --- *)

let intermediate_relation = "citus_intermediate"

(* Expand * / t.* projections using the coordinator's catalog copy. *)
let expand_stars ~catalog (sel : Ast.select) =
  let star_cols want_alias =
    List.concat_map
      (fun item ->
        match item with
        | Ast.Table { name; alias } ->
          let a = Option.value ~default:name alias in
          if want_alias = None || want_alias = Some a then
            (match Engine.Catalog.find_table_opt catalog name with
             | Some tbl ->
               List.map
                 (fun (c : Ast.column_def) ->
                   Ast.Proj (Ast.Column (Some a, c.col_name), None))
                 tbl.Engine.Catalog.columns
             | None -> unsupported "cannot expand * for unknown table %s" name)
          else []
        | Ast.Join _ | Ast.Subselect _ ->
          if want_alias = None then
            unsupported "* projections over joins/subqueries are not supported \
                         in multi-shard queries"
          else [])
      sel.from
  in
  let projections =
    List.concat_map
      (fun p ->
        match p with
        | Ast.Star -> star_cols None
        | Ast.Star_of a -> star_cols (Some a)
        | Ast.Proj _ -> [ p ])
      sel.projections
  in
  { sel with projections }

(* ordinal / alias substitution, mirroring the executor *)
let substitute_refs projections e =
  let e =
    match e with
    | Ast.Const (Datum.Int k) ->
      (match List.nth_opt projections (k - 1) with
       | Some (Ast.Proj (pe, _)) -> pe
       | _ -> e)
    | _ -> e
  in
  match e with
  | Ast.Column (None, name) ->
    (match
       List.find_map
         (function
           | Ast.Proj (pe, Some a) when String.equal a name -> Some pe
           | _ -> None)
         projections
     with
     | Some pe -> pe
     | None -> e)
  | _ -> e

let collect_aggs exprs =
  let acc = ref [] in
  List.iter
    (fun e ->
      Ast.fold_expr
        (fun () n ->
          match n with
          | Ast.Agg a -> if not (List.mem a !acc) then acc := a :: !acc
          | _ -> ())
        () e)
    exprs;
  List.rev !acc

(* Replace group-key expressions / aggregates with references into the
   intermediate relation, top-down. *)
let rec substitute_master group_keys agg_master e =
  match List.find_index (fun g -> g = e) group_keys with
  | Some i -> Ast.Column (None, Printf.sprintf "g%d" i)
  | None ->
    (match e with
     | Ast.Agg a ->
       (match List.assoc_opt a agg_master with
        | Some master_expr -> master_expr
        | None -> unsupported "aggregate not decomposed")
     | _ ->
       (match e with
        | Ast.Const _ | Ast.Column _ | Ast.Param _ -> e
        | _ -> sub_children group_keys agg_master e))

and sub_children group_keys agg_master e =
  (* rebuild one level, substituting group keys in children first *)
  let s e = substitute_master group_keys agg_master e in
  match e with
  | Ast.And (a, b) -> Ast.And (s a, s b)
  | Ast.Or (a, b) -> Ast.Or (s a, s b)
  | Ast.Not a -> Ast.Not (s a)
  | Ast.Cmp (op, a, b) -> Ast.Cmp (op, s a, s b)
  | Ast.Bin (op, a, b) -> Ast.Bin (op, s a, s b)
  | Ast.Neg a -> Ast.Neg (s a)
  | Ast.Is_null (a, p) -> Ast.Is_null (s a, p)
  | Ast.In_list (a, items, n) -> Ast.In_list (s a, List.map s items, n)
  | Ast.Between (a, lo, hi) -> Ast.Between (s a, s lo, s hi)
  | Ast.Like l -> Ast.Like { l with subject = s l.subject; pattern = s l.pattern }
  | Ast.Json_get (a, b, t) -> Ast.Json_get (s a, s b, t)
  | Ast.Cast (a, ty) -> Ast.Cast (s a, ty)
  | Ast.Case (branches, else_) ->
    Ast.Case (List.map (fun (c, v) -> (s c, s v)) branches, Option.map s else_)
  | Ast.Func (name, args) -> Ast.Func (name, List.map s args)
  | Ast.Const _ | Ast.Column _ | Ast.Param _ | Ast.Agg _ | Ast.Exists _
  | Ast.In_subquery _ | Ast.Scalar_subquery _ ->
    e

(* group-by contains a bare distribution column of some distributed table *)
let group_by_contains_dist meta sel =
  let dists = List.concat_map (level_dist_tables meta) sel.Ast.from in
  List.exists
    (fun g ->
      match g with
      | Ast.Column (q, c) -> List.exists (column_matches_dist (q, c)) dists
      | _ -> false)
    sel.Ast.group_by

let build_pushdown meta ~catalog (sel0 : Ast.select) :
    Ast.select * Plan.merge =
  let sel = expand_stars ~catalog sel0 in
  let group_keys =
    List.map (fun g -> substitute_refs sel.projections g) sel.group_by
  in
  let order_by =
    List.map (fun (e, d) -> (substitute_refs sel.projections e, d)) sel.order_by
  in
  let proj_exprs =
    List.map (function Ast.Proj (e, _) -> e | _ -> assert false)
      sel.projections
  in
  let proj_aliases =
    List.map (function Ast.Proj (_, a) -> a | _ -> assert false)
      sel.projections
  in
  let having = sel.having in
  let output_exprs =
    proj_exprs
    @ (match having with Some h -> [ h ] | None -> [])
    @ List.map fst order_by
  in
  let aggs = collect_aggs output_exprs in
  let grouped = group_keys <> [] || aggs <> [] in
  let dist_grouped = group_by_contains_dist meta sel in
  if sel.distinct && grouped && not dist_grouped then
    unsupported "SELECT DISTINCT with aggregates requires grouping by the \
                 distribution column";
  List.iter
    (fun (a : Ast.agg) ->
      if a.agg_distinct && not dist_grouped then
        unsupported
          "aggregate (DISTINCT ...) is only supported when grouping by the \
           distribution column";
      if not (List.mem a.agg_name [ "count"; "sum"; "avg"; "min"; "max" ]) then
        unsupported "aggregate %s cannot be distributed" a.agg_name)
    aggs;
  if grouped then begin
    (* worker projections: group keys g0.. + partials p<j>_<part> *)
    let key_projs =
      List.mapi
        (fun i g -> Ast.Proj (g, Some (Printf.sprintf "g%d" i)))
        group_keys
    in
    let partials_and_master =
      List.mapi
        (fun j (a : Ast.agg) ->
          let pname suffix = Printf.sprintf "p%d%s" j suffix in
          let col suffix = Ast.Column (None, pname suffix) in
          let agg name arg =
            Ast.Agg { agg_name = name; agg_arg = arg; agg_distinct = false }
          in
          if a.agg_distinct then
            (* shard-local groups are disjoint: ship the final value *)
            ( [ Ast.Proj (Ast.Agg a, Some (pname "")) ],
              (a, agg "max" (Some (col ""))) )
          else
            match a.agg_name with
            | "count" ->
              ( [ Ast.Proj (Ast.Agg a, Some (pname "")) ],
                (a, agg "sum" (Some (col ""))) )
            | "sum" ->
              ( [ Ast.Proj (Ast.Agg a, Some (pname "")) ],
                (a, agg "sum" (Some (col ""))) )
            | "min" ->
              ( [ Ast.Proj (Ast.Agg a, Some (pname "")) ],
                (a, agg "min" (Some (col ""))) )
            | "max" ->
              ( [ Ast.Proj (Ast.Agg a, Some (pname "")) ],
                (a, agg "max" (Some (col ""))) )
            | "avg" ->
              ( [
                  Ast.Proj
                    ( Ast.Agg { a with agg_name = "sum" },
                      Some (pname "_s") );
                  Ast.Proj
                    ( Ast.Agg { a with agg_name = "count" },
                      Some (pname "_c") );
                ],
                ( a,
                  Ast.Bin
                    ( Ast.Div,
                      Ast.Cast (agg "sum" (Some (col "_s")), Datum.TFloat),
                      Ast.Cast (agg "sum" (Some (col "_c")), Datum.TFloat) ) )
              )
            | other -> unsupported "aggregate %s cannot be distributed" other)
        aggs
    in
    let partial_projs = List.concat_map fst partials_and_master in
    let agg_master = List.map snd partials_and_master in
    (* When the GROUP BY contains the distribution column, groups are
       shard-local and per-task aggregates are final — ORDER BY + LIMIT can
       be pushed into the tasks, so each shard ships only its top rows
       (crucial for high-cardinality groupings like TPC-H Q18). *)
    let pushed_order_limit =
      if not dist_grouped then None
      else
        let const_limit e =
          match eval_const e with Some (Datum.Int i) -> Some i | _ -> None
        in
        match sel.limit with
        | None -> None
        | Some l ->
          (match const_limit l, Option.map const_limit sel.offset with
           | Some li, (None | Some (Some _)) ->
             let oi =
               match sel.offset with
               | None -> 0
               | Some o -> Option.value ~default:0 (const_limit o)
             in
             (* map each order expression to a task-side column *)
             let map_order e =
               match List.find_index (fun g -> g = e) group_keys with
               | Some i -> Some (Ast.Column (None, Printf.sprintf "g%d" i))
               | None ->
                 (match e with
                  | Ast.Agg a when not a.Ast.agg_distinct ->
                    (match List.find_index (fun a' -> a' = a) aggs with
                     | Some j when List.mem a.Ast.agg_name [ "count"; "sum"; "min"; "max" ]
                       ->
                       Some (Ast.Column (None, Printf.sprintf "p%d" j))
                     | _ -> None)
                  | _ -> None)
             in
             let mapped =
               List.filter_map
                 (fun (e, d) ->
                   match map_order e with Some m -> Some (m, d) | None -> None)
                 order_by
             in
             (* only push down when every order key mapped *)
             if order_by <> [] && List.compare_lengths mapped order_by = 0
             then Some (mapped, Ast.Const (Datum.Int (li + oi)))
             else None
           | _ -> None)
    in
    let task_select =
      {
        sel with
        distinct = false;
        projections = key_projs @ partial_projs;
        group_by = group_keys;
        having = None;
        order_by =
          (match pushed_order_limit with Some (ob, _) -> ob | None -> []);
        limit =
          (match pushed_order_limit with Some (_, l) -> Some l | None -> None);
        offset = None;
      }
    in
    let sub = substitute_master group_keys agg_master in
    let master_projections =
      List.map2 (fun e a -> Ast.Proj (sub e, a)) proj_exprs proj_aliases
    in
    let master =
      {
        Ast.distinct = sel.distinct;
        projections = master_projections;
        from = [ Ast.Table { name = intermediate_relation; alias = None } ];
        where = None;
        group_by = List.mapi (fun i _ -> Ast.Column (None, Printf.sprintf "g%d" i)) group_keys;
        having = Option.map sub having;
        order_by = List.map (fun (e, d) -> (sub e, d)) order_by;
        limit = sel.limit;
        offset = sel.offset;
      }
    in
    let intermediate_columns =
      List.mapi (fun i _ -> Printf.sprintf "g%d" i) group_keys
      @ List.concat_map
          (fun (projs, _) ->
            List.map
              (function Ast.Proj (_, Some a) -> a | _ -> assert false)
              projs)
          partials_and_master
    in
    (task_select, { Plan.master; intermediate_columns })
  end
  else begin
    (* no aggregation: ship projected rows, re-sort / limit on the master *)
    let col_names = List.mapi (fun i _ -> Printf.sprintf "c%d" i) proj_exprs in
    (* sort keys not already projected get extra columns *)
    let extra_sort =
      List.filteri
        (fun _ (e, _) -> not (List.mem e proj_exprs))
        order_by
    in
    let extra_names =
      List.mapi (fun k _ -> Printf.sprintf "s%d" k) extra_sort
    in
    let task_projs =
      List.map2 (fun e n -> Ast.Proj (e, Some n)) proj_exprs col_names
      @ List.map2 (fun (e, _) n -> Ast.Proj (e, Some n)) extra_sort extra_names
    in
    let pushed_limit =
      match sel.limit, sel.offset with
      | Some l, Some o ->
        (match eval_const l, eval_const o with
         | Some (Datum.Int li), Some (Datum.Int oi) ->
           Some (Ast.Const (Datum.Int (li + oi)))
         | _ -> None)
      | Some l, None -> Some l
      | None, _ -> None
    in
    let subst_order e =
      match List.find_index (fun p -> p = e) proj_exprs with
      | Some i -> Ast.Column (None, List.nth col_names i)
      | None ->
        (match List.find_index (fun (se, _) -> se = e) extra_sort with
         | Some k -> Ast.Column (None, List.nth extra_names k)
         | None -> unsupported "ORDER BY expression not available for merge")
    in
    let task_select =
      {
        sel with
        projections = task_projs;
        order_by;
        limit = pushed_limit;
        offset = None;
      }
    in
    (* keep the user-visible output names: explicit alias, else the
       original column name *)
    let display_aliases =
      List.map2
        (fun e a ->
          match a with
          | Some _ -> a
          | None ->
            (match e with Ast.Column (_, name) -> Some name | _ -> None))
        proj_exprs proj_aliases
    in
    let master =
      {
        Ast.distinct = sel.distinct;
        projections =
          List.map2
            (fun n a -> Ast.Proj (Ast.Column (None, n), a))
            col_names display_aliases;
        from = [ Ast.Table { name = intermediate_relation; alias = None } ];
        where = None;
        group_by = [];
        having = None;
        order_by = List.map (fun (e, d) -> (subst_order e, d)) order_by;
        limit = sel.limit;
        offset = sel.offset;
      }
    in
    (task_select, { Plan.master; intermediate_columns = col_names @ extra_names })
  end

let pushdown_parts meta ~catalog sel = build_pushdown meta ~catalog sel

let pushdown_tasks ?only_groups ?node_ok meta task_select names =
  let groups = Metadata.shard_groups ?node_ok meta ~tables:names in
  let groups =
    match only_groups with
    | None -> groups
    | Some keep -> List.filter (fun (gi, _, _) -> List.mem gi keep) groups
  in
  List.map
    (fun (group_index, node, members) ->
      {
        Plan.task_node = node;
        task_stmt =
          rewrite_to_group meta ~group_index (Ast.Select_stmt task_select);
        task_group = group_index;
        task_shard =
          (match members with
           | (_, (s : Metadata.shard)) :: _ -> s.Metadata.shard_id
           | [] -> -1);
      })
    groups

let plan_pushdown_select ?node_ok meta ~catalog (sel : Ast.select) =
  let names = List.map fst (tables_in_select [] sel) in
  let citus_names =
    List.filter (Metadata.is_citus_table meta) (List.sort_uniq String.compare names)
  in
  if not (Metadata.colocated meta citus_names) then
    unsupported
      "complex joins between non-co-located distributed tables require the \
       join-order planner";
  if dist_tables_of meta citus_names = [] then
    unsupported "no distributed tables in pushdown select";
  validate_pushdown_level meta ~is_top:true sel;
  let task_select, merge = build_pushdown meta ~catalog sel in
  let only_groups = pruned_groups meta (Ast.Select_stmt sel) in
  (pushdown_tasks ?only_groups ?node_ok meta task_select citus_names, merge)

(* --- colocated INSERT..SELECT test (§3.8, strategy 1) --- *)

let select_is_colocated_with meta ~dest ~dest_dist_col_position sel =
  match Metadata.find meta dest, dest_dist_col_position with
  | Some { Metadata.kind = Metadata.Distributed; _ }, Some pos ->
    let names = List.map fst (tables_in_select [] sel) in
    let citus_names = List.sort_uniq String.compare names in
    Metadata.colocated meta (dest :: citus_names)
    && (match validate_pushdown_level meta ~is_top:true sel with
        | () -> true
        | exception Unsupported _ -> false)
    && (* the projection feeding the dest distribution column must be a
          source distribution column *)
    (match List.nth_opt sel.projections pos with
     | Some (Ast.Proj (Ast.Column (q, c), _)) ->
       let dists = List.concat_map (level_dist_tables meta) sel.from in
       List.exists (column_matches_dist (q, c)) dists
     | _ -> false)
  | _ -> false

(* --- DML --- *)

let plan_insert_values meta ~catalog stmt table columns tuples on_conflict =
  let dt =
    match Metadata.find meta table with
    | Some dt -> dt
    | None -> assert false
  in
  match dt.Metadata.kind with
  | Metadata.Reference ->
    let shard_id =
      match Metadata.shards_of meta table with
      | s :: _ -> s.Metadata.shard_id
      | [] -> unsupported "reference table %s has no shard" table
    in
    let renamed = rewrite_reference_only meta stmt in
    (Plan.Reference_write
       {
         Plan.task_node = Metadata.placement meta shard_id;
         task_stmt = renamed;
         task_group = -1;
         task_shard = shard_id;
       },
     Tier_reference)
  | Metadata.Distributed ->
    let dist_col =
      match dt.Metadata.dist_column with
      | Some c -> c
      | None -> unsupported "%s has no distribution column" table
    in
    (* position of the distribution column among the insert columns *)
    let dist_pos =
      match columns with
      | Some cols ->
        (match List.find_index (String.equal dist_col) cols with
         | Some i -> i
         | None ->
           unsupported "INSERT into %s must set the distribution column %s"
             table dist_col)
      | None ->
        (* full-width VALUES: positions follow the catalog column order *)
        (match Engine.Catalog.find_table_opt catalog table with
         | Some tbl ->
           (match
              List.find_index
                (fun (c : Sqlfront.Ast.column_def) ->
                  String.equal c.col_name dist_col)
                tbl.Engine.Catalog.columns
            with
            | Some i -> i
            | None ->
              unsupported "table %s has no column %s" table dist_col)
         | None -> unsupported "no schema for %s on this node" table)
    in
    (* group rows by target shard *)
    let by_shard = Hashtbl.create 8 in
    List.iter
      (fun tuple ->
        let v =
          match List.nth_opt tuple dist_pos with
          | Some e ->
            (match eval_const e with
             | Some d when not (Datum.is_null d) -> d
             | _ ->
               unsupported
                 "the distribution column value must be a non-null constant")
          | None -> unsupported "row is missing the distribution column"
        in
        let shard = Metadata.shard_for_value meta ~table v in
        let existing =
          Option.value ~default:[]
            (Hashtbl.find_opt by_shard shard.Metadata.shard_id)
        in
        Hashtbl.replace by_shard shard.Metadata.shard_id (tuple :: existing))
      tuples;
    let tasks =
      Hashtbl.fold
        (fun shard_id rows acc ->
          let shard =
            List.find
              (fun (s : Metadata.shard) -> s.shard_id = shard_id)
              (Metadata.shards_of meta table)
          in
          let stmt =
            Ast.Insert
              {
                table = Metadata.shard_name shard;
                columns;
                source = Ast.Values (List.rev rows);
                on_conflict_do_nothing = on_conflict;
              }
          in
          {
            Plan.task_node = Metadata.placement meta shard_id;
            task_stmt = stmt;
            task_group = shard.Metadata.index_in_colocation;
            task_shard = shard_id;
          }
          :: acc)
        by_shard []
    in
    (match tasks with
     | [ t ] -> (Plan.Fast_path t, Tier_fast_path)
     | ts -> (Plan.Multi_shard_dml { tasks = ts }, Tier_dml))

let plan_multi_shard_dml meta stmt table =
  let dt =
    match Metadata.find meta table with
    | Some dt -> dt
    | None -> unsupported "%s is not a Citus table" table
  in
  match dt.Metadata.kind with
  | Metadata.Reference ->
    let shard_id =
      match Metadata.shards_of meta table with
      | s :: _ -> s.Metadata.shard_id
      | [] -> unsupported "reference table %s has no shard" table
    in
    let renamed = rewrite_reference_only meta stmt in
    (Plan.Reference_write
       {
         Plan.task_node = Metadata.placement meta shard_id;
         task_stmt = renamed;
         task_group = -1;
         task_shard = shard_id;
       },
     Tier_reference)
  | Metadata.Distributed ->
    (* every shard gets the rewritten statement, minus pruned groups *)
    let only_groups = pruned_groups meta stmt in
    let shards =
      match only_groups with
      | None -> Metadata.shards_of meta table
      | Some keep ->
        List.filter
          (fun (s : Metadata.shard) -> List.mem s.index_in_colocation keep)
          (Metadata.shards_of meta table)
    in
    let tasks =
      List.map
        (fun (s : Metadata.shard) ->
          {
            Plan.task_node = Metadata.placement meta s.shard_id;
            task_stmt = rewrite_to_group meta ~group_index:s.index_in_colocation stmt;
            task_group = s.index_in_colocation;
            task_shard = s.shard_id;
          })
        shards
    in
    (Plan.Multi_shard_dml { tasks }, Tier_dml)

(* --- entry point --- *)

let plan_untraced ?node_ok meta ~catalog ~local_name stmt : Plan.t * tier =
  match try_fast_path ?node_ok meta stmt with
  | Some task -> (Plan.Fast_path task, Tier_fast_path)
  | None ->
    (match try_router ?node_ok meta ~local_name stmt with
     | Some task -> (Plan.Router task, Tier_router)
     | None ->
       (match stmt with
        | Ast.Select_stmt sel ->
          let tasks, merge = plan_pushdown_select ?node_ok meta ~catalog sel in
          (Plan.Multi_shard_select { tasks; merge }, Tier_pushdown)
        | Ast.Insert { table; columns; source = Ast.Values tuples;
                       on_conflict_do_nothing } ->
          plan_insert_values meta ~catalog stmt table columns tuples
            on_conflict_do_nothing
        | Ast.Update { table; sets; _ } ->
          let dt = Metadata.find meta table in
          (match dt with
           | Some { Metadata.dist_column = Some dc; _ }
             when List.mem_assoc dc sets ->
             unsupported "modifying the distribution column is not supported"
           | _ -> ());
          plan_multi_shard_dml meta stmt table
        | Ast.Delete { table; _ } -> plan_multi_shard_dml meta stmt table
        | _ ->
          unsupported "statement cannot be planned by the distributed planner"))

(* The tier chosen is the planner's key observable: counted always
   (planner.tier.<name>), and recorded as a "plan" span when tracing.
   [now] supplies the virtual clock (the planner itself has no topology
   reference); both default off for callers outside a cluster. *)
let plan ?obs ?now ?node_ok meta ~catalog ~local_name stmt : Plan.t * tier =
  match (obs : Obs.t option) with
  | None -> plan_untraced ?node_ok meta ~catalog ~local_name stmt
  | Some o ->
    let now = match now with Some f -> f | None -> fun () -> 0.0 in
    Obs.Trace.with_span o.Obs.trace ~now ~node:local_name ~kind:"plan"
      (fun sp ->
        let ((_, tier) as planned) =
          plan_untraced ?node_ok meta ~catalog ~local_name stmt
        in
        Obs.Metrics.inc o.Obs.metrics (Obs.Metric_names.planner_tier (tier_slug tier));
        Obs.Trace.add_tag sp "tier" (tier_slug tier);
        planned)
