(** Typed prepared-statement surface over a coordinator session.

    The supported client API for the OLTP hot path: [prepare] once,
    then [execute] with typed {!Datum.t} arguments. Unlike the
    deprecated [Engine.Instance.exec_params] (which re-parses and
    re-plans on every call), [execute] hands an [EXECUTE] AST node
    directly to the coordinator, where the distributed plan cache
    ({!Plancache}) reuses the memoized per-shard plan and only re-prunes
    the target shard from the bound distribution value.

    A session's prepared statements are session-local state
    (PostgreSQL semantics); the plan cache behind them is cluster-wide
    and survives the session. *)

type t = Engine.Instance.session

(** Parse [sql] once and register it under [name]. Raises
    [Engine.Instance.Session_error] if [name] is already prepared or
    the statement kind is not preparable (only SELECT / INSERT /
    UPDATE / DELETE / CALL are). *)
val prepare : t -> name:string -> string -> unit

(** Run prepared statement [name] with positional arguments bound to
    [$1..$n]. A missing parameter surfaces as the typed
    {!Exec.Bind_error} message (parameter index + statement name), not
    a bare [Invalid_argument]. *)
val execute : t -> string -> Datum.t list -> Engine.Instance.result

(** Drop one prepared statement. Raises on unknown names. *)
val deallocate : t -> string -> unit

(** [DEALLOCATE ALL]. *)
val deallocate_all : t -> unit

(** Names currently prepared in this session, sorted. *)
val prepared_names : t -> string list

(** Plain one-shot SQL, for completeness — same as
    [Engine.Instance.exec]. *)
val exec : t -> string -> Engine.Instance.result
