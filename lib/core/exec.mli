(** Unified typed execution boundary.

    The historical entry points — {!State.exec_on} (breaker-feeding),
    raw {!Cluster.Connection.exec} (no health accounting) and the
    {!Adaptive_executor}/{!Dist_executor} runners — each surface
    infrastructure failures as a different exception. This module is the
    one documented boundary: every function returns
    [Ok result | Error of exec_error] with the cause as a structured
    variant. The old names remain as the (deprecated) exception-raising
    internals; new call sites should come through here.

    Two exceptions intentionally still propagate, because they are
    control flow rather than infrastructure failures:
    {!Engine.Executor.Would_block} (retryable lock wait) and
    [Engine.Instance.Session_error] (statement error that must abort the
    transaction through the engine's own path). *)

type exec_error =
  | Node_unavailable of { node : string; reason : string }
      (** the fault-injection layer rejected the round trip *)
  | Network_error of string
      (** partition or crash observed mid-statement *)
  | Txn_replica_lost of string
      (** the sole replica of in-transaction writes is gone; abort *)
  | Catalog_error of string  (** no active placement / unknown shard *)

(** Human-readable rendering, used for session error messages. *)
val error_message : exec_error -> string

(** Run any thunk, mapping the four infrastructure exceptions to
    [Error]. Building block for the wrappers below. *)
val wrap : (unit -> 'a) -> ('a, exec_error) result

(** {!State.exec_on} with a typed result: simulates the network and
    feeds the node's circuit breaker. *)
val on_conn :
  State.t ->
  Cluster.Connection.t ->
  string ->
  (Engine.Instance.result, exec_error) result

val ast_on_conn :
  State.t ->
  Cluster.Connection.t ->
  Sqlfront.Ast.statement ->
  (Engine.Instance.result, exec_error) result

(** Raw {!Cluster.Connection.exec} (no breaker accounting) with a typed
    result. Prefer {!on_conn} when a {!State.t} is at hand. *)
val raw_on_conn :
  Cluster.Connection.t ->
  string ->
  (Engine.Instance.result, exec_error) result

(** {!Adaptive_executor.execute} with a typed result. *)
val run_tasks :
  State.t ->
  Engine.Instance.session ->
  Plan.task list ->
  (Engine.Instance.result list * Adaptive_executor.report, exec_error) result

(** {!Dist_executor.execute} with a typed result. *)
val run_plan :
  State.t ->
  Engine.Instance.session ->
  Plan.t ->
  (Engine.Instance.result * Adaptive_executor.report, exec_error) result
