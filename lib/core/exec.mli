(** Unified typed execution boundary.

    Every per-connection statement the Citus layer sends goes through
    here. The [_exn] forms are the raising primitives — partition /
    injected-failure guards plus circuit-breaker accounting over
    {!Cluster.Connection.exec_async} — used by the executors and by
    engine-internal code whose control flow is exceptions (2PC cleanup
    paths). The typed forms return [Ok result | Error of exec_error]
    with the failure cause as a structured variant, for callers above
    the Citus layer.

    Two exceptions intentionally still propagate everywhere, because
    they are control flow rather than infrastructure failures:
    {!Engine.Executor.Would_block} (retryable lock wait) and
    [Engine.Instance.Session_error] (statement error that must abort the
    transaction through the engine's own path). *)

type exec_error =
  | Node_unavailable of { node : string; reason : string }
      (** the fault-injection layer rejected the round trip *)
  | Network_error of string
      (** partition or crash observed mid-statement *)
  | Txn_replica_lost of string
      (** the sole replica of in-transaction writes is gone; abort *)
  | Catalog_error of string  (** no active placement / unknown shard *)
  | Timed_out of { node : string }
      (** the statement deadline expired waiting on the node — a gray
          failure: the node is alive and the statement {e may} have
          executed remotely (same ambiguity as a lost reply) *)
  | Bind_error of { stmt_name : string; param : int }
      (** EXECUTE supplied no value for parameter [$param] of prepared
          statement [stmt_name] — a client protocol error, typed so the
          prepared-statement dispatch can report the exact parameter
          instead of a bare [Invalid_argument] *)

(** Raised by the prepared-statement bind step; {!wrap} maps it to
    [Error (Bind_error _)]. *)
exception Bind_failure of { stmt_name : string; param : int }

(** Human-readable rendering, used for session error messages. *)
val error_message : exec_error -> string

(** Run any thunk, mapping the infrastructure exceptions (including
    {!Cluster.Connection.Timed_out}) to [Error]. Building block for the
    typed wrappers; also what the planner hook wraps whole plan
    executions in. *)
val wrap : (unit -> 'a) -> ('a, exec_error) result

(** Execute on a connection, simulating the network: raises
    {!State.Network_error} if the target node is partitioned away or an
    injected failure matches, lets {!Cluster.Connection.Node_unavailable}
    from the fault layer through unchanged, and feeds every
    infrastructure-fault outcome (but no statement error) into the
    node's circuit breaker. [?deadline] (absolute virtual time) bounds
    the await: expiry raises {!Cluster.Connection.Timed_out} and feeds
    {!Health.record_slow} — the latency-aware trip — instead of the
    hard-failure path. [?snapshot] pins the remote session's read
    visibility ({!Txn.Snapshot.read_mode}) for just this statement —
    set before the round trip and restored after, like a per-request
    header — so every fragment of a multi-shard read observes the same
    HLC snapshot and an interleaved statement never inherits it. *)
val on_conn_exn :
  ?deadline:float ->
  ?snapshot:Txn.Snapshot.read_mode ->
  State.t ->
  Cluster.Connection.t ->
  string ->
  Engine.Instance.result

(** Deparse and {!on_conn_exn}. *)
val ast_on_conn_exn :
  ?deadline:float ->
  ?snapshot:Txn.Snapshot.read_mode ->
  State.t ->
  Cluster.Connection.t ->
  Sqlfront.Ast.statement ->
  Engine.Instance.result

(** Raw round trip: no partition guard, no breaker accounting — for
    best-effort cleanup on connections that may be mid-failure and for
    shard-local plumbing that counts its own failures. Prefer
    {!on_conn_exn} when a {!State.t} is at hand. *)
val raw_on_conn_exn : Cluster.Connection.t -> string -> Engine.Instance.result

(** Submit and never await: fire-and-forget cleanup (ROLLBACK posted at
    a node that may be stalled — waiting for its reply would mean
    waiting out the very stall the caller is escaping). The statement
    still executes remotely; its outcome is dropped. *)
val post_on_conn : Cluster.Connection.t -> string -> unit

(** Typed forms of the above. *)
val on_conn :
  ?deadline:float ->
  ?snapshot:Txn.Snapshot.read_mode ->
  State.t ->
  Cluster.Connection.t ->
  string ->
  (Engine.Instance.result, exec_error) result

val ast_on_conn :
  ?deadline:float ->
  ?snapshot:Txn.Snapshot.read_mode ->
  State.t ->
  Cluster.Connection.t ->
  Sqlfront.Ast.statement ->
  (Engine.Instance.result, exec_error) result

val raw_on_conn :
  Cluster.Connection.t ->
  string ->
  (Engine.Instance.result, exec_error) result
