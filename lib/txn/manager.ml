type xid = int

type status = In_progress | Committed | Aborted

exception No_such_prepared of string

type t = {
  mutable next_xid : xid;
  clog : (xid, status) Hashtbl.t;
  mutable running : xid list;  (** begun, not yet finished or prepared *)
  prepared : (string, xid) Hashtbl.t;
  wal : Wal.t;
  locks : Lock.t;
}

let create () =
  {
    next_xid = 1;
    clog = Hashtbl.create 256;
    running = [];
    prepared = Hashtbl.create 16;
    wal = Wal.create ();
    locks = Lock.create ();
  }

let wal t = t.wal

let locks t = t.locks

let begin_txn t =
  let xid = t.next_xid in
  t.next_xid <- xid + 1;
  Hashtbl.replace t.clog xid In_progress;
  t.running <- xid :: t.running;
  ignore (Wal.append t.wal (Wal.Begin xid));
  xid

let status t xid =
  match Hashtbl.find_opt t.clog xid with
  | Some s -> s
  | None -> Aborted (* unknown xids are treated as crashed, hence aborted *)

let is_active t xid = status t xid = In_progress

let active_xids t =
  let prepared = Hashtbl.fold (fun _ xid acc -> xid :: acc) t.prepared [] in
  List.sort_uniq Int.compare (t.running @ prepared)

let take_snapshot t =
  let active = active_xids t in
  let xmin = match active with [] -> t.next_xid | x :: _ -> x in
  { Snapshot.xmin; xmax = t.next_xid; active }

let check_running t xid =
  if not (List.mem xid t.running) then
    invalid_arg (Printf.sprintf "xid %d is not a running transaction" xid)

let finish t xid st record =
  check_running t xid;
  ignore (Wal.append t.wal record);
  Hashtbl.replace t.clog xid st;
  t.running <- List.filter (fun x -> x <> xid) t.running;
  Lock.release_all t.locks ~owner:xid

let commit t xid = finish t xid Committed (Wal.Commit xid)

let abort t xid = finish t xid Aborted (Wal.Abort xid)

let prepare t xid ~gid =
  check_running t xid;
  if Hashtbl.mem t.prepared gid then
    invalid_arg (Printf.sprintf "prepared transaction %S already exists" gid);
  ignore (Wal.append t.wal (Wal.Prepare { xid; gid }));
  (* Detach from the session: no longer "running" but still in progress,
     and its locks stay held. *)
  t.running <- List.filter (fun x -> x <> xid) t.running;
  Hashtbl.replace t.prepared gid xid

let take_prepared t gid =
  match Hashtbl.find_opt t.prepared gid with
  | Some xid -> Hashtbl.remove t.prepared gid; xid
  | None -> raise (No_such_prepared gid)

let commit_prepared t ~gid =
  let xid = take_prepared t gid in
  ignore (Wal.append t.wal (Wal.Commit_prepared { xid; gid }));
  Hashtbl.replace t.clog xid Committed;
  Lock.release_all t.locks ~owner:xid

let rollback_prepared t ~gid =
  let xid = take_prepared t gid in
  ignore (Wal.append t.wal (Wal.Rollback_prepared { xid; gid }));
  Hashtbl.replace t.clog xid Aborted;
  Lock.release_all t.locks ~owner:xid

(* Rebuild all in-memory transaction state from the WAL after a crash.
   The WAL itself is the only durable structure; clog, running set,
   prepared table and locks are reconstructed. Transactions that were
   running (Begin without a matching Commit/Abort/Prepare) simply vanish:
   they are not entered into the clog, and [status] reports unknown xids
   as Aborted, which is exactly PostgreSQL's crashed-transaction
   semantics. Prepared transactions survive with their xid in progress;
   their row locks are not reacquired here (the engine-level recovery
   re-locks nothing — with no running sessions there is nobody to
   conflict with until new sessions start, and new writers conflict on
   tuple xmax instead). *)
let crash_recover t =
  Hashtbl.reset t.clog;
  Hashtbl.reset t.prepared;
  t.running <- [];
  Lock.reset t.locks;
  let max_xid = ref 0 in
  let see_xid x = if x > !max_xid then max_xid := x in
  let apply (_, record) =
    match record with
    | Wal.Begin xid -> see_xid xid
    | Wal.Insert { xid; _ } | Wal.Update { xid; _ } | Wal.Delete { xid; _ } ->
      see_xid xid
    | Wal.Commit xid ->
      see_xid xid;
      Hashtbl.replace t.clog xid Committed
    | Wal.Abort xid ->
      see_xid xid;
      Hashtbl.replace t.clog xid Aborted
    | Wal.Prepare { xid; gid } ->
      see_xid xid;
      Hashtbl.replace t.clog xid In_progress;
      Hashtbl.replace t.prepared gid xid
    | Wal.Commit_prepared { xid; gid } ->
      see_xid xid;
      Hashtbl.remove t.prepared gid;
      Hashtbl.replace t.clog xid Committed
    | Wal.Rollback_prepared { xid; gid } ->
      see_xid xid;
      Hashtbl.remove t.prepared gid;
      Hashtbl.replace t.clog xid Aborted
    | Wal.Truncate _ | Wal.Restore_point _ | Wal.Checkpoint -> ()
  in
  List.iter apply (Wal.records t.wal);
  t.next_xid <- !max_xid + 1

let prepared_transactions t =
  Hashtbl.fold (fun gid xid acc -> (gid, xid) :: acc) t.prepared []

let oldest_active_xid t =
  match active_xids t with [] -> t.next_xid | x :: _ -> x
