type xid = int

type status = In_progress | Committed | Aborted

exception No_such_prepared of string

exception In_doubt of { gid : string; xid : xid }
(** raised by timestamp-based visibility when a scan hits a prepared
    transaction that may commit at or before the read timestamp *)

type t = {
  mutable next_xid : xid;
  clog : (xid, status) Hashtbl.t;
  mutable running : xid list;  (** begun, not yet finished or prepared *)
  prepared : (string, xid) Hashtbl.t;
  commit_ts : (xid, Hlc.timestamp) Hashtbl.t;
      (** HLC commit timestamp of every committed xid (WAL-durable) *)
  prepare_ts : (xid, Hlc.timestamp) Hashtbl.t;
      (** HLC stamp taken at PREPARE: a lower bound on the eventual
          commit timestamp, pruning which readers must block *)
  mutable hlc : Hlc.t;
      (** this node's clock; a pure logical clock until the cluster
          layer installs one wired to the simulated physical clock *)
  wal : Wal.t;
  locks : Lock.t;
}

let create () =
  {
    next_xid = 1;
    clog = Hashtbl.create 256;
    running = [];
    prepared = Hashtbl.create 16;
    commit_ts = Hashtbl.create 256;
    prepare_ts = Hashtbl.create 16;
    hlc = Hlc.create ~physical:(fun () -> 0.0) ();
    wal = Wal.create ();
    locks = Lock.create ();
  }

let set_hlc t hlc = t.hlc <- hlc
let hlc t = t.hlc

let wal t = t.wal

let locks t = t.locks

let begin_txn t =
  let xid = t.next_xid in
  t.next_xid <- xid + 1;
  Hashtbl.replace t.clog xid In_progress;
  t.running <- xid :: t.running;
  ignore (Wal.append t.wal (Wal.Begin xid));
  xid

let status t xid =
  match Hashtbl.find_opt t.clog xid with
  | Some s -> s
  | None -> Aborted (* unknown xids are treated as crashed, hence aborted *)

let is_active t xid = status t xid = In_progress

let active_xids t =
  let prepared = Hashtbl.fold (fun _ xid acc -> xid :: acc) t.prepared [] in
  List.sort_uniq Int.compare (t.running @ prepared)

let take_snapshot t =
  let active = active_xids t in
  let xmin = match active with [] -> t.next_xid | x :: _ -> x in
  { Snapshot.xmin; xmax = t.next_xid; active }

let check_running t xid =
  if not (List.mem xid t.running) then
    invalid_arg (Printf.sprintf "xid %d is not a running transaction" xid)

let finish t xid st record =
  check_running t xid;
  ignore (Wal.append t.wal record);
  Hashtbl.replace t.clog xid st;
  t.running <- List.filter (fun x -> x <> xid) t.running;
  Lock.release_all t.locks ~owner:xid

(* Every commit gets an HLC stamp, WAL-logged right after the commit
   record so snapshot visibility survives a crash. *)
let stamp_commit t xid ts =
  Hashtbl.replace t.commit_ts xid ts;
  ignore (Wal.append t.wal (Wal.Commit_ts { xid; ts }))

let commit t xid =
  finish t xid Committed (Wal.Commit xid);
  stamp_commit t xid (Hlc.now t.hlc)

let abort t xid = finish t xid Aborted (Wal.Abort xid)

let prepare t xid ~gid =
  check_running t xid;
  if Hashtbl.mem t.prepared gid then
    invalid_arg (Printf.sprintf "prepared transaction %S already exists" gid);
  ignore (Wal.append t.wal (Wal.Prepare { xid; gid }));
  (* Detach from the session: no longer "running" but still in progress,
     and its locks stay held. *)
  t.running <- List.filter (fun x -> x <> xid) t.running;
  Hashtbl.replace t.prepared gid xid;
  (* The eventual commit timestamp is assigned at the coordinator after
     this PREPARE's reply lands, so it must exceed this stamp: readers
     at an older snapshot need not block on us. *)
  Hashtbl.replace t.prepare_ts xid (Hlc.now t.hlc)

let take_prepared t gid =
  match Hashtbl.find_opt t.prepared gid with
  | Some xid -> Hashtbl.remove t.prepared gid; xid
  | None -> raise (No_such_prepared gid)

let commit_prepared ?ts t ~gid =
  let xid = take_prepared t gid in
  ignore (Wal.append t.wal (Wal.Commit_prepared { xid; gid }));
  Hashtbl.replace t.clog xid Committed;
  let ts =
    match ts with
    | Some ts ->
      (* coordinator-assigned distributed commit timestamp: merge it so
         this node's clock can never re-issue anything at or below it *)
      ignore (Hlc.observe t.hlc ts);
      ts
    | None -> Hlc.now t.hlc
  in
  stamp_commit t xid ts;
  Hashtbl.remove t.prepare_ts xid;
  Lock.release_all t.locks ~owner:xid

let rollback_prepared t ~gid =
  let xid = take_prepared t gid in
  ignore (Wal.append t.wal (Wal.Rollback_prepared { xid; gid }));
  Hashtbl.replace t.clog xid Aborted;
  Hashtbl.remove t.prepare_ts xid;
  Lock.release_all t.locks ~owner:xid

(* Rebuild all in-memory transaction state from the WAL after a crash.
   The WAL itself is the only durable structure; clog, running set,
   prepared table and locks are reconstructed. Transactions that were
   running (Begin without a matching Commit/Abort/Prepare) simply vanish:
   they are not entered into the clog, and [status] reports unknown xids
   as Aborted, which is exactly PostgreSQL's crashed-transaction
   semantics. Prepared transactions survive with their xid in progress;
   their row locks are not reacquired here (the engine-level recovery
   re-locks nothing — with no running sessions there is nobody to
   conflict with until new sessions start, and new writers conflict on
   tuple xmax instead). *)
let crash_recover t =
  Hashtbl.reset t.clog;
  Hashtbl.reset t.prepared;
  Hashtbl.reset t.commit_ts;
  (* prepare stamps are volatile: a prepared transaction recovered from
     the WAL has no known lower bound on its commit timestamp, so every
     snapshot reader conservatively treats it as in-doubt *)
  Hashtbl.reset t.prepare_ts;
  t.running <- [];
  Lock.reset t.locks;
  let max_xid = ref 0 in
  let see_xid x = if x > !max_xid then max_xid := x in
  let apply (_, record) =
    match record with
    | Wal.Begin xid -> see_xid xid
    | Wal.Insert { xid; _ } | Wal.Update { xid; _ } | Wal.Delete { xid; _ } ->
      see_xid xid
    | Wal.Commit xid ->
      see_xid xid;
      Hashtbl.replace t.clog xid Committed
    | Wal.Abort xid ->
      see_xid xid;
      Hashtbl.replace t.clog xid Aborted
    | Wal.Prepare { xid; gid } ->
      see_xid xid;
      Hashtbl.replace t.clog xid In_progress;
      Hashtbl.replace t.prepared gid xid
    | Wal.Commit_prepared { xid; gid } ->
      see_xid xid;
      Hashtbl.remove t.prepared gid;
      Hashtbl.replace t.clog xid Committed
    | Wal.Rollback_prepared { xid; gid } ->
      see_xid xid;
      Hashtbl.remove t.prepared gid;
      Hashtbl.replace t.clog xid Aborted
    | Wal.Commit_ts { xid; ts } ->
      see_xid xid;
      Hashtbl.replace t.commit_ts xid ts
    | Wal.Truncate _ | Wal.Restore_point _ | Wal.Checkpoint -> ()
  in
  List.iter apply (Wal.records t.wal);
  t.next_xid <- !max_xid + 1

let prepared_transactions t =
  Hashtbl.fold (fun gid xid acc -> (gid, xid) :: acc) t.prepared []

(* --- timestamp-based visibility (distributed snapshots) --- *)

let commit_ts_of t xid = Hashtbl.find_opt t.commit_ts xid

let prepared_gid_of t xid =
  Hashtbl.fold
    (fun gid x acc -> if x = xid then Some gid else acc)
    t.prepared None

let xid_in_doubt t ~ts xid =
  match prepared_gid_of t xid with
  | None -> None
  | Some gid -> (
    match Hashtbl.find_opt t.prepare_ts xid with
    | Some pts when Hlc.compare_ts pts ts > 0 ->
      (* prepared after the snapshot: its commit timestamp will exceed
         [ts], so this reader can safely skip it *)
      None
    | _ -> Some gid)

let status_at t ~ts xid =
  match status t xid with
  | Committed -> (
    match Hashtbl.find_opt t.commit_ts xid with
    | Some cts when Hlc.compare_ts cts ts > 0 ->
      (* committed, but after this reader's snapshot *)
      In_progress
    | _ -> Committed)
  | In_progress -> (
    match xid_in_doubt t ~ts xid with
    | Some gid -> raise (In_doubt { gid; xid })
    | None -> In_progress)
  | Aborted -> Aborted

let status_resolving t xid =
  match status t xid with
  | In_progress -> (
    match prepared_gid_of t xid with
    | Some gid -> raise (In_doubt { gid; xid })
    | None -> In_progress)
  | st -> st

let oldest_active_xid t =
  match active_xids t with [] -> t.next_xid | x :: _ -> x
