type xid = int

type target = Table of string | Row of string * int

type mode = Access_share | Row_exclusive | Access_exclusive | Row_lock

type outcome = Granted | Blocked of xid list

let conflicts a b =
  match a, b with
  | Access_exclusive, _ | _, Access_exclusive -> true
  | Row_lock, Row_lock -> true
  | (Access_share | Row_exclusive | Row_lock), _ -> false

type t = {
  (* target -> holders: (owner, mode) list *)
  held : (target, (xid * mode) list) Hashtbl.t;
  (* owner -> pending blocked request *)
  waiting : (xid, target * mode) Hashtbl.t;
}

let create () = { held = Hashtbl.create 64; waiting = Hashtbl.create 16 }

let holders t target = Option.value ~default:[] (Hashtbl.find_opt t.held target)

let acquire t ~owner target mode =
  let current = holders t target in
  if List.exists (fun (o, m) -> o = owner && m = mode) current then begin
    Hashtbl.remove t.waiting owner;
    Granted
  end
  else begin
    let conflicting =
      List.filter (fun (o, m) -> o <> owner && conflicts mode m) current
    in
    match conflicting with
    | [] ->
      Hashtbl.remove t.waiting owner;
      Hashtbl.replace t.held target ((owner, mode) :: current);
      Granted
    | _ ->
      Hashtbl.replace t.waiting owner (target, mode);
      Blocked (List.map fst conflicting)
  end

let cancel_wait t ~owner = Hashtbl.remove t.waiting owner

let reset t =
  Hashtbl.reset t.held;
  Hashtbl.reset t.waiting

let release_all t ~owner =
  Hashtbl.remove t.waiting owner;
  let updates =
    Hashtbl.fold
      (fun target holders acc ->
        if List.exists (fun (o, _) -> o = owner) holders then
          (target, List.filter (fun (o, _) -> o <> owner) holders) :: acc
        else acc)
      t.held []
  in
  let apply (target, remaining) =
    if remaining = [] then Hashtbl.remove t.held target
    else Hashtbl.replace t.held target remaining
  in
  List.iter apply updates

let wait_edges t =
  Hashtbl.fold
    (fun waiter (target, mode) acc ->
      let conflicting =
        List.filter
          (fun (o, m) -> o <> waiter && conflicts mode m)
          (holders t target)
      in
      List.fold_left (fun acc (holder, _) -> (waiter, holder) :: acc) acc
        conflicting)
    t.waiting []

let held_by t owner =
  Hashtbl.fold
    (fun target holders acc ->
      List.fold_left
        (fun acc (o, m) -> if o = owner then (target, m) :: acc else acc)
        acc holders)
    t.held []

(* Cycle search over the wait-for graph: depth-first from each waiter,
   following waiter->holder edges. Returns the nodes of the first cycle. *)
let detect_deadlock t =
  let edges = wait_edges t in
  let successors x = List.filter_map (fun (w, h) -> if w = x then Some h else None) edges in
  let rec dfs path visited x =
    if List.mem x path then Some (x :: path)
    else if List.mem x visited then None
    else
      let rec try_succ = function
        | [] -> None
        | s :: rest ->
          (match dfs (x :: path) visited s with
           | Some cycle -> Some cycle
           | None -> try_succ rest)
      in
      try_succ (successors x)
  in
  let starts = List.sort_uniq Int.compare (List.map fst edges) in
  let rec scan visited = function
    | [] -> None
    | s :: rest ->
      (match dfs [] visited s with
       | Some cycle ->
         (* Trim the path prefix that leads into the cycle: keep from the
            first occurrence of the repeated node. *)
         let repeated = List.hd cycle in
         let rec keep_until acc = function
           | [] -> acc
           | x :: rest ->
             if x = repeated && acc <> [] then List.rev (x :: acc)
             else keep_until (x :: acc) rest
         in
         let members = keep_until [] cycle in
         Some (List.sort_uniq Int.compare members)
       | None -> scan (s :: visited) rest)
  in
  scan [] starts
