(** Logical write-ahead log.

    Every data-modifying operation appends a record before the change is
    considered durable. The log supports the two capabilities the paper
    relies on (§3.7.2, §3.9): prepared-transaction state that survives a
    restart, and consistent restore points across a cluster. Replay is
    performed by the engine's recovery routine. *)

type lsn = int

type record =
  | Begin of int  (** xid *)
  | Insert of { xid : int; table : string; tid : int; row : Datum.t array }
  | Update of {
      xid : int;
      table : string;
      old_tid : int;
      new_tid : int;
      row : Datum.t array;
    }
  | Delete of { xid : int; table : string; tid : int }
  | Commit of int
  | Abort of int
  | Prepare of { xid : int; gid : string }
  | Commit_prepared of { xid : int; gid : string }
  | Rollback_prepared of { xid : int; gid : string }
  | Commit_ts of { xid : int; ts : Hlc.timestamp }
      (** HLC commit timestamp, appended right after the commit record;
          distributed snapshot visibility is rebuilt from these *)
  | Truncate of string  (** table name; TRUNCATE is not MVCC, logged as-is *)
  | Restore_point of string
  | Checkpoint

type t

val create : unit -> t

(** [append t record] appends and returns the record's LSN. *)
val append : t -> record -> lsn

val current_lsn : t -> lsn

(** Records in LSN order, optionally from [from] (inclusive) up to [upto]
    (exclusive). Used by recovery replay and by the logical-replication
    simulation of the shard rebalancer. *)
val records : ?from:lsn -> ?upto:lsn -> t -> (lsn * record) list

(** [find_restore_point t name] is the LSN of the restore point record. *)
val find_restore_point : t -> string -> lsn option

val size : t -> int
