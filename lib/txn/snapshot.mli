(** MVCC snapshots, as in PostgreSQL.

    A snapshot captures which transactions were in progress at the moment it
    was taken. Combined with the commit log it decides tuple visibility. *)

type xid = int

type t = {
  xmin : xid;  (** all xids below this are finished *)
  xmax : xid;  (** first xid not yet assigned when the snapshot was taken *)
  active : xid list;  (** xids in [xmin, xmax) that were still running *)
}

(** [sees t xid] is true when transaction [xid]'s effects are potentially
    visible to this snapshot (it finished before the snapshot was taken).
    The caller still has to check the commit log: an aborted transaction is
    "seen" here but its tuples are dead. *)
val sees : t -> xid -> bool

val pp : Format.formatter -> t -> unit

(** How a session resolves {e distributed} visibility, on top of the
    xid snapshot above (which always governs local concurrency):

    - [Latest]: plain local MVCC. Prepared (in-doubt) transactions read
      as invisible — a cross-node read can be torn.
    - [Resolving]: latest, but an in-doubt transaction blocks the read
      until its 2PC outcome is resolved ([Manager.status_resolving]).
      Gives read-your-writes across nodes.
    - [At ts]: visibility frozen at HLC timestamp [ts]
      ([Manager.status_at]): commits after [ts] are invisible, in-doubt
      transactions that might commit at or before [ts] block. One [ts]
      carried to every fragment of a multi-shard read yields a
      consistent distributed snapshot. *)
type read_mode = Latest | Resolving | At of Hlc.timestamp

val pp_read_mode : Format.formatter -> read_mode -> unit
