(** Lock manager: table-level and row-level locks with a wait-for graph.

    Mirrors the subset of PostgreSQL's lock machinery that Citus relies on:
    writes take row locks, DDL takes [Access_exclusive] table locks, and the
    wait-for graph edges feed both local deadlock detection and the
    distributed deadlock detector of the Citus layer (§3.7.3).

    There are no OS threads in this system: [acquire] never blocks. A
    conflicting request returns [Blocked holders]; the caller records itself
    as waiting (which creates the wait-for edges) and retries after other
    transactions release. *)

type xid = int

type target =
  | Table of string
  | Row of string * int  (** table name, tuple id *)

type mode =
  | Access_share  (** plain reads; only conflicts with [Access_exclusive] *)
  | Row_exclusive  (** DML on a table; conflicts with [Access_exclusive] *)
  | Access_exclusive  (** DDL; conflicts with everything *)
  | Row_lock  (** exclusive lock on one row; conflicts with itself *)

type t

type outcome =
  | Granted
  | Blocked of xid list  (** current conflicting holders *)

val create : unit -> t

(** [acquire t ~owner target mode] grants immediately or reports conflict.
    Re-acquiring a held lock is a no-op ([Granted]). While blocked, the
    request is remembered as a wait (for the wait-for graph) until the next
    [acquire] by [owner] succeeds or [cancel_wait] is called. *)
val acquire : t -> owner:xid -> target -> mode -> outcome

(** Forget a pending blocked request (used when the transaction aborts
    instead of retrying). *)
val cancel_wait : t -> owner:xid -> unit

(** Release every lock held by [owner] and any pending wait. *)
val release_all : t -> owner:xid -> unit

(** Drop all held locks and pending waits (node crash: lock state is
    in-memory only, so it does not survive a restart; prepared
    transactions reacquire theirs during WAL replay). *)
val reset : t -> unit

(** All current wait-for edges (waiter, holder), one per conflicting
    holder. This is what the Citus deadlock detector polls from workers. *)
val wait_edges : t -> (xid * xid) list

(** Locks currently held by a transaction (used by PREPARE TRANSACTION to
    carry locks over into the prepared state). *)
val held_by : t -> xid -> (target * mode) list

(** [detect_deadlock t] looks for a cycle in the wait-for graph and returns
    the members of one cycle if present (local, single-node detection). *)
val detect_deadlock : t -> xid list option
