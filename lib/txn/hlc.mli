(** Hybrid logical clock (Kulkarni et al.): a timestamp that tracks
    physical time when clocks are well-behaved, and falls back to a
    logical counter to preserve causal (happens-before) order when
    they are skewed or stalled.

    The physical component is supplied as a thunk so the same module
    serves both the standalone engine (constant 0 -> pure Lamport
    clock) and the simulated cluster, where each node's thunk reads
    [Sim.Clock] plus its injected skew. *)

type timestamp = { pt : float; lc : int }
(** [pt] physical component, [lc] logical tiebreaker. Ordered
    lexicographically. *)

val zero : timestamp
val compare_ts : timestamp -> timestamp -> int
val ( <= ) : timestamp -> timestamp -> bool
val ( < ) : timestamp -> timestamp -> bool
val max_ts : timestamp -> timestamp -> timestamp
val pp : Format.formatter -> timestamp -> unit
val to_string : timestamp -> string
val of_string : string -> timestamp option

type t
(** One node's clock state: the physical thunk plus the last
    timestamp handed out. *)

val create : physical:(unit -> float) -> unit -> t

val peek : t -> timestamp
(** Last timestamp issued, without advancing the clock. *)

val now : t -> timestamp
(** Local or send event: returns a timestamp strictly greater than
    every timestamp previously issued by this clock, and >= the
    physical clock. *)

val observe : t -> timestamp -> timestamp
(** Receive event: merge a remote timestamp into the local clock.
    The result is strictly greater than both the remote stamp and
    every timestamp previously issued locally. *)
