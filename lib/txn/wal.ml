type lsn = int

type record =
  | Begin of int
  | Insert of { xid : int; table : string; tid : int; row : Datum.t array }
  | Update of {
      xid : int;
      table : string;
      old_tid : int;
      new_tid : int;
      row : Datum.t array;
    }
  | Delete of { xid : int; table : string; tid : int }
  | Commit of int
  | Abort of int
  | Prepare of { xid : int; gid : string }
  | Commit_prepared of { xid : int; gid : string }
  | Rollback_prepared of { xid : int; gid : string }
  | Commit_ts of { xid : int; ts : Hlc.timestamp }
  | Truncate of string
  | Restore_point of string
  | Checkpoint

type t = { mutable entries : (lsn * record) list; mutable next_lsn : lsn }
(* entries kept newest-first; [records] reverses. *)

let create () = { entries = []; next_lsn = 1 }

let append t record =
  let lsn = t.next_lsn in
  t.next_lsn <- lsn + 1;
  t.entries <- (lsn, record) :: t.entries;
  lsn

let current_lsn t = t.next_lsn - 1

let records ?(from = 0) ?upto t =
  let upto = Option.value ~default:t.next_lsn upto in
  List.rev
    (List.filter (fun (lsn, _) -> lsn >= from && lsn < upto) t.entries)

let find_restore_point t name =
  let matches (_, r) =
    match r with Restore_point n -> String.equal n name | _ -> false
  in
  Option.map fst (List.find_opt matches t.entries)

let size t = List.length t.entries
