type xid = int

type t = { xmin : xid; xmax : xid; active : xid list }

let sees t xid =
  if xid >= t.xmax then false
  else if xid < t.xmin then true
  else not (List.mem xid t.active)

type read_mode = Latest | Resolving | At of Hlc.timestamp

let pp_read_mode fmt = function
  | Latest -> Format.pp_print_string fmt "latest"
  | Resolving -> Format.pp_print_string fmt "resolving"
  | At ts -> Format.fprintf fmt "at(%a)" Hlc.pp ts

let pp fmt t =
  Format.fprintf fmt "snapshot{xmin=%d;xmax=%d;active=[%s]}" t.xmin t.xmax
    (String.concat ";" (List.map string_of_int t.active))
