type timestamp = { pt : float; lc : int }

let zero = { pt = 0.0; lc = 0 }

let compare_ts a b =
  let c = Float.compare a.pt b.pt in
  if c <> 0 then c else Int.compare a.lc b.lc

let ( <= ) a b = compare_ts a b <= 0
let ( < ) a b = compare_ts a b < 0
let max_ts a b = if compare_ts a b >= 0 then a else b

let pp fmt t = Format.fprintf fmt "hlc{%.6f.%d}" t.pt t.lc

(* Wire/durable rendering (commit records). The physical part uses hex
   float notation because the round trip must be exact: a decimal
   rendering rounds, and a commit timestamp that parses back even one
   ulp above the original sorts AFTER reader snapshots it should sort
   before, hiding a resolved commit from the very reader that resolved
   it. [pp] stays decimal — it is display-only. *)
let to_string t = Printf.sprintf "%h.%d" t.pt t.lc

let of_string s =
  match String.rindex_opt s '.' with
  | None -> None
  | Some i -> (
      let pt_s = String.sub s 0 i in
      let lc_s = String.sub s (Stdlib.( + ) i 1) (Stdlib.( - ) (String.length s) (Stdlib.( + ) i 1)) in
      match (float_of_string_opt pt_s, int_of_string_opt lc_s) with
      | Some pt, Some lc -> Some { pt; lc }
      | _ -> None)

type t = { physical : unit -> float; mutable last : timestamp }

let create ~physical () = { physical; last = zero }
let peek t = t.last

(* Local/send event: advance past both the physical clock and the last
   emitted timestamp so consecutive draws are strictly increasing even
   when the physical clock stalls or runs backwards (skew injection). *)
let now t =
  let pt = t.physical () in
  let next =
    if Float.compare pt t.last.pt > 0 then { pt; lc = 0 }
    else { t.last with lc = Stdlib.( + ) t.last.lc 1 }
  in
  t.last <- next;
  next

(* Receive event: merge a remote timestamp. The result dominates the
   local clock, the remote stamp, and the local physical time. *)
let observe t remote =
  let pt = t.physical () in
  let next =
    if
      Float.compare pt t.last.pt > 0
      && Float.compare pt remote.pt > 0
    then { pt; lc = 0 }
    else if compare_ts t.last remote >= 0 then
      { t.last with lc = Stdlib.( + ) t.last.lc 1 }
    else { remote with lc = Stdlib.( + ) remote.lc 1 }
  in
  t.last <- next;
  next
