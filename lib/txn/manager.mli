(** Per-node transaction manager: xid assignment, commit log, snapshots,
    locks, WAL, and prepared (2PC) transactions.

    One [Manager.t] exists per database node. The Citus coordinator drives
    worker-side transactions through sessions that ultimately call into
    this module on each node. *)

type xid = int

type status = In_progress | Committed | Aborted

type t

val create : unit -> t

val wal : t -> Wal.t

val locks : t -> Lock.t

(** Start a transaction: assigns an xid, logs [Begin]. *)
val begin_txn : t -> xid

(** Snapshot for a running transaction (or a standalone read). *)
val take_snapshot : t -> Snapshot.t

val status : t -> xid -> status

val is_active : t -> xid -> bool

(** Commit/abort: write the WAL record, flip the clog entry, release
    locks. Raise [Invalid_argument] if the xid is not in progress. *)
val commit : t -> xid -> unit

val abort : t -> xid -> unit

(** {2 Two-phase commit primitives (PREPARE TRANSACTION et al.)} *)

(** [prepare t xid ~gid] detaches the running transaction into the prepared
    state: its locks remain held, its tuples stay in-progress, and the
    prepared record is WAL-logged so it survives restart. *)
val prepare : t -> xid -> gid:string -> unit

(** [commit_prepared ?ts t ~gid] commits a prepared transaction. With
    [?ts] — the coordinator-assigned distributed commit timestamp — the
    commit is stamped at exactly that time on every participant (the
    timestamp is also merged into this node's clock so it can never
    re-issue an equal or earlier stamp); without it, a local stamp is
    drawn. *)
val commit_prepared : ?ts:Hlc.timestamp -> t -> gid:string -> unit

val rollback_prepared : t -> gid:string -> unit

(** Pending prepared transactions as (gid, xid) pairs. The Citus recovery
    daemon compares these against its commit records (§3.7.2). *)
val prepared_transactions : t -> (string * xid) list

(** Rebuild clog / running / prepared / locks from the WAL after a node
    crash. Transactions that were running at crash time disappear (their
    xids read as [Aborted]); prepared transactions survive as
    [In_progress] and stay listed in [prepared_transactions]. The WAL is
    kept as-is. *)
val crash_recover : t -> unit

exception No_such_prepared of string

(** All xids currently in progress (running or prepared). *)
val active_xids : t -> xid list

(** Oldest xid that any snapshot could still need, for vacuum. *)
val oldest_active_xid : t -> xid

(** {2 Hybrid-logical-clock commit timestamps (distributed snapshots)}

    Every commit is stamped with this node's {!Hlc.t} and the stamp is
    WAL-logged ([Wal.Commit_ts]), so timestamp visibility survives a
    crash. The default clock is purely logical; the cluster layer
    installs one whose physical component reads the simulated (possibly
    skewed) node clock. *)

val set_hlc : t -> Hlc.t -> unit

val hlc : t -> Hlc.t

(** HLC commit timestamp of a committed xid ([None] when unknown — an
    aborted or still-running transaction). *)
val commit_ts_of : t -> xid -> Hlc.timestamp option

(** The gid of a prepared (in-doubt) xid, if any. *)
val prepared_gid_of : t -> xid -> string option

(** [xid_in_doubt t ~ts xid] is [Some gid] when [xid] is prepared and
    might yet commit at or before [ts] — a reader at snapshot [ts] must
    not guess. Prepared transactions whose PREPARE stamp already exceeds
    [ts] are excluded: their commit timestamp is provably later. *)
val xid_in_doubt : t -> ts:Hlc.timestamp -> xid -> string option

exception In_doubt of { gid : string; xid : xid }

(** [status_at t ~ts xid] is transaction status as of snapshot [ts]:
    commits stamped after [ts] read as [In_progress] (invisible), and an
    in-doubt xid (per {!xid_in_doubt}) raises {!In_doubt} — the caller
    resolves the 2PC outcome and retries rather than guess. *)
val status_at : t -> ts:Hlc.timestamp -> xid -> status

(** Latest-visibility status that refuses to skip prepared transactions:
    raises {!In_doubt} where {!status} would report [In_progress] for a
    prepared xid. Backs read-your-writes mode — the session's own
    distributed commit may still be in its in-doubt window on a
    participant, and skipping it would un-happen an acknowledged write. *)
val status_resolving : t -> xid -> status
