(** Per-node transaction manager: xid assignment, commit log, snapshots,
    locks, WAL, and prepared (2PC) transactions.

    One [Manager.t] exists per database node. The Citus coordinator drives
    worker-side transactions through sessions that ultimately call into
    this module on each node. *)

type xid = int

type status = In_progress | Committed | Aborted

type t

val create : unit -> t

val wal : t -> Wal.t

val locks : t -> Lock.t

(** Start a transaction: assigns an xid, logs [Begin]. *)
val begin_txn : t -> xid

(** Snapshot for a running transaction (or a standalone read). *)
val take_snapshot : t -> Snapshot.t

val status : t -> xid -> status

val is_active : t -> xid -> bool

(** Commit/abort: write the WAL record, flip the clog entry, release
    locks. Raise [Invalid_argument] if the xid is not in progress. *)
val commit : t -> xid -> unit

val abort : t -> xid -> unit

(** {2 Two-phase commit primitives (PREPARE TRANSACTION et al.)} *)

(** [prepare t xid ~gid] detaches the running transaction into the prepared
    state: its locks remain held, its tuples stay in-progress, and the
    prepared record is WAL-logged so it survives restart. *)
val prepare : t -> xid -> gid:string -> unit

val commit_prepared : t -> gid:string -> unit

val rollback_prepared : t -> gid:string -> unit

(** Pending prepared transactions as (gid, xid) pairs. The Citus recovery
    daemon compares these against its commit records (§3.7.2). *)
val prepared_transactions : t -> (string * xid) list

(** Rebuild clog / running / prepared / locks from the WAL after a node
    crash. Transactions that were running at crash time disappear (their
    xids read as [Aborted]); prepared transactions survive as
    [In_progress] and stay listed in [prepared_transactions]. The WAL is
    kept as-is. *)
val crash_recover : t -> unit

exception No_such_prepared of string

(** All xids currently in progress (running or prepared). *)
val active_xids : t -> xid list

(** Oldest xid that any snapshot could still need, for vacuum. *)
val oldest_active_xid : t -> xid
