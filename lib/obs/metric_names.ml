(* The closed set of series names the cluster can emit; see the .mli
   for the catalogue. Constants are plain strings; families concatenate
   a registered prefix with their parameter. *)

(* engine *)
let engine_maintenance_ticks = "engine.maintenance_ticks"
let engine_probe name = "engine." ^ name

(* networking *)
let net_probe_prefix = "net"
let net_connect_failed = "net.connect_failed"
let net_connect_to node = "net.connect_to." ^ node
let net_round_trip_lost = "net.round_trip_lost"
let net_reply_lost = "net.reply_lost"
let net_await_timed_out = "net.await_timed_out"

(* adaptive executor *)
let exec_tasks = "exec.tasks"
let exec_conn_opened = "exec.conn_opened"
let exec_conn_affinity_reuse = "exec.conn_affinity_reuse"
let exec_connections_per_statement = "exec.connections_per_statement"
let exec_fragment_seconds = "exec.fragment_seconds"
let exec_makespan_seconds = "exec.makespan_seconds"
let exec_timeouts = "exec.timeouts"
let exec_hedged_reads = "exec.hedged_reads"
let exec_hedge_wins = "exec.hedge_wins"
let exec_stale_txn_resets = "exec.stale_txn_resets"

(* planner *)
let planner_tier slug = "planner.tier." ^ slug
let planner_tier_join_order = "planner.tier.join_order"

(* distributed plan cache *)
let plancache_hits = "plancache.hits"
let plancache_misses = "plancache.misses"
let plancache_invalidations = "plancache.invalidations"
let plancache_evictions = "plancache.evictions"
let plancache_bypass = "plancache.bypass"
let plancache_entries = "plancache.entries"
let plancache_exec_seconds = "plancache.exec_seconds"
let plancache_shape_seconds fp = "plancache.shape_seconds." ^ fp

(* 2PC *)
let twopc_started = "twopc.started"
let twopc_delegated_commits = "twopc.delegated_commits"
let twopc_prepare_failed = "twopc.prepare_failed"
let twopc_committed = "twopc.committed"
let twopc_commit_deferred = "twopc.commit_deferred"
let twopc_aborted = "twopc.aborted"
let twopc_recover_passes = "twopc.recover_passes"
let twopc_recover_committed = "twopc.recover_committed"
let twopc_recover_rolled_back = "twopc.recover_rolled_back"

(* distributed snapshot consistency *)
let snapshot_reads = "snapshot.reads"
let snapshot_indoubt_waits = "snapshot.indoubt_waits"
let snapshot_indoubt_commits = "snapshot.indoubt_commits"
let snapshot_indoubt_rollbacks = "snapshot.indoubt_rollbacks"
let snapshot_read_retries = "snapshot.read_retries"
let snapshot_hedged_fragments = "snapshot.hedged_fragments"
let snapshot_fragment_hedge_wins = "snapshot.fragment_hedge_wins"

(* Citus MX: replicated metadata / multi-coordinator *)
let mx_metadata_syncs = "mx.metadata_syncs"
let mx_config_syncs = "mx.config_syncs"
let mx_worker_coordinated_txns = "mx.worker_coordinated_txns"
let mx_foreign_gids_resolved = "mx.foreign_gids_resolved"

(* rebalancer move deadlines *)
let rebalance_move_timeouts = "rebalance.move_timeouts"

(* deadlock detector *)
let deadlock_rounds = "deadlock.rounds"
let deadlock_cycles_found = "deadlock.cycles_found"
let deadlock_cancelled = "deadlock.cancelled"

(* rebalancer *)
let rebalance_moves_started = "rebalance.moves_started"
let rebalance_moves_completed = "rebalance.moves_completed"
let rebalance_rows_copied = "rebalance.rows_copied"
let rebalance_catchup_records = "rebalance.catchup_records"
let rebalance_repairs_failed = "rebalance.repairs_failed"
let rebalance_placements_repaired = "rebalance.placements_repaired"

(* health / circuit breaker *)
let health_slow_events = "health.slow_events"
let breaker_tripped = "breaker.tripped"
let breaker_tripped_slow = "breaker.tripped_slow"
let breaker_transition ~from_ ~to_ = "breaker." ^ from_ ^ "_to_" ^ to_
