(* Metrics registry: named counters, gauges and histograms, plus
   registered probes that fold externally-maintained counter sets (the
   engine meters, the cluster network stats) into every snapshot.

   Everything is deterministic: snapshots sort by name, histograms keep
   exact observations (simulation scale makes that affordable), and no
   ambient time or randomness is consulted — timestamps, where needed,
   are supplied by the caller from the virtual clock. *)

type hist = { mutable observations : float list; mutable hcount : int }

type t = {
  counters : (string, int ref) Hashtbl.t;
  gauges : (string, float ref) Hashtbl.t;
  histograms : (string, hist) Hashtbl.t;
  mutable probes : (string * (unit -> (string * int) list)) list;
}

type hist_summary = {
  count : int;
  sum : float;
  p50 : float;
  p95 : float;
  max : float;
}

type snapshot = {
  s_counters : (string * int) list;
  s_gauges : (string * float) list;
  s_histograms : (string * hist_summary) list;
}

let create () =
  {
    counters = Hashtbl.create 32;
    gauges = Hashtbl.create 8;
    histograms = Hashtbl.create 8;
    probes = [];
  }

let counter t name =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r
  | None ->
      let r = ref 0 in
      Hashtbl.replace t.counters name r;
      r

let inc ?(by = 1) t name =
  let r = counter t name in
  r := !r + by

let counter_value t name =
  match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

let gauge t name =
  match Hashtbl.find_opt t.gauges name with
  | Some r -> r
  | None ->
      let r = ref 0.0 in
      Hashtbl.replace t.gauges name r;
      r

let gauge_add t name v =
  let r = gauge t name in
  r := !r +. v

let gauge_set t name v =
  let r = gauge t name in
  r := v

let gauge_value t name =
  match Hashtbl.find_opt t.gauges name with Some r -> !r | None -> 0.0

let observe t name v =
  let h =
    match Hashtbl.find_opt t.histograms name with
    | Some h -> h
    | None ->
        let h = { observations = []; hcount = 0 } in
        Hashtbl.replace t.histograms name h;
        h
  in
  h.observations <- v :: h.observations;
  h.hcount <- h.hcount + 1

(* [f] is called at snapshot time; its counters appear under
   "<prefix>.<key>". Lets the engine meter and the topology net stats
   keep their compact representations while still showing up in
   [citus_stat_counters()]. *)
let register_probe t prefix f = t.probes <- (prefix, f) :: t.probes

let percentile sorted n p =
  if n = 0 then 0.0
  else
    let idx = int_of_float (ceil (p *. float_of_int n)) - 1 in
    let idx = max 0 (min (n - 1) idx) in
    sorted.(idx)

let summarize h =
  let arr = Array.of_list h.observations in
  Array.sort compare arr;
  let n = Array.length arr in
  {
    count = h.hcount;
    sum = Array.fold_left ( +. ) 0.0 arr;
    p50 = percentile arr n 0.50;
    p95 = percentile arr n 0.95;
    max = (if n = 0 then 0.0 else arr.(n - 1));
  }

let snapshot t =
  let by_name (a, _) (b, _) = String.compare a b in
  let direct =
    Hashtbl.fold (fun name r acc -> (name, !r) :: acc) t.counters []
  in
  let probed =
    List.concat_map
      (fun (prefix, f) ->
        List.map (fun (k, v) -> (prefix ^ "." ^ k, v)) (f ()))
      t.probes
  in
  {
    s_counters = List.sort by_name (direct @ probed);
    s_gauges =
      List.sort by_name
        (Hashtbl.fold (fun name r acc -> (name, !r) :: acc) t.gauges []);
    s_histograms =
      List.sort by_name
        (Hashtbl.fold
           (fun name h acc -> (name, summarize h) :: acc)
           t.histograms []);
  }

let render snap =
  let b = Buffer.create 256 in
  List.iter
    (fun (name, v) -> Buffer.add_string b (Printf.sprintf "%s %d\n" name v))
    snap.s_counters;
  List.iter
    (fun (name, v) ->
      Buffer.add_string b (Printf.sprintf "%s %.6f\n" name v))
    snap.s_gauges;
  List.iter
    (fun (name, s) ->
      Buffer.add_string b
        (Printf.sprintf "%s count=%d sum=%.6f p50=%.6f p95=%.6f max=%.6f\n"
           name s.count s.sum s.p50 s.p95 s.max))
    snap.s_histograms;
  Buffer.contents b
