(** Observability context: one {!Metrics} registry plus one {!Trace}
    sink, shared by every node of a cluster. Metrics are always on;
    tracing starts disabled and costs one branch while it stays so. *)

module Metrics = Metrics
module Metric_names = Metric_names
module Trace = Trace

type t = { metrics : Metrics.t; trace : Trace.t }

val create : unit -> t
