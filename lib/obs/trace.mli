(** Hierarchical span tracing, deterministic under the virtual clock.

    Spans carry sequential ids, an explicit parent (from the nesting
    stack), a kind, the node they ran on, virtual-clock start/duration
    and key/value tags. Timestamps always come from the caller (the
    simulated clock) so same-seed runs yield bit-identical trees.

    The sink starts disabled; in that state {!with_span} is a single
    branch that passes [None] to the body — no allocation, no clock
    read. *)

type span = {
  id : int;
  parent : int option;
  kind : string;
  node : string;
  start : float;
  mutable duration : float;
  mutable tags : (string * string) list;
  mutable closed : bool;
}

type t

val create : unit -> t

val enabled : t -> bool

val set_enabled : t -> bool -> unit

(** Drop all spans and restart ids from 1. *)
val reset : t -> unit

(** Spans ever opened / closed (conservation: equal when quiescent). *)
val started : t -> int

val finished : t -> int

(** Currently-open spans (the [citus_stat_activity()] view). *)
val open_count : t -> int

(** Open spans, outermost first. *)
val open_spans : t -> span list

(** All spans in creation order. *)
val spans : t -> span list

(** Position marker; [spans_since t (mark t)] captures what a later
    operation produced (how [citus_explain(..., 'analyze')] scopes its
    tree). *)
val mark : t -> int

val spans_since : t -> int -> span list

(** [with_span t ~now ~node ~kind f] runs [f] inside a fresh span (or
    with [None] when disabled). The span closes even if [f] raises;
    duration is elapsed virtual time. The parent is the innermost span
    currently open on the nesting stack. *)
val with_span :
  t ->
  now:(unit -> float) ->
  node:string ->
  kind:string ->
  ?tags:(string * string) list ->
  (span option -> 'a) ->
  'a

(** Innermost open span on the nesting stack, if any — capture this
    {e before} spawning fibers and hand it to {!with_span_parent}. *)
val current : t -> span option

(** Like {!with_span} but with an explicit parent and {e no} interaction
    with the nesting stack: concurrent fibers interleave their spans, so
    stack-based parenthood would attribute a fragment to whichever span
    another fiber happened to have open. *)
val with_span_parent :
  t ->
  parent:span option ->
  now:(unit -> float) ->
  node:string ->
  kind:string ->
  ?tags:(string * string) list ->
  (span option -> 'a) ->
  'a

(** The raw halves of {!with_span}, exported for the tracing layer's own
    plumbing. Production code must use {!with_span} /
    {!with_span_parent}, which guarantee span conservation (every open
    gets a close even on exceptions); lint rule L8 flags direct calls
    outside [lib/obs/]. *)
val open_span :
  t ->
  now:(unit -> float) ->
  node:string ->
  kind:string ->
  ?parent:int ->
  ?tags:(string * string) list ->
  unit ->
  span

val close_span : t -> now:(unit -> float) -> span -> unit

(** No-ops on [None] so instrumentation never branches on the sink. *)
val add_tag : span option -> string -> string -> unit

val render_span : span -> string

(** Indented tree, creation order; spans whose parent is outside the
    given list render as roots. *)
val render_tree : span list -> string list
