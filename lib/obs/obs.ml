(* Observability context threaded through the whole stack: one metrics
   registry plus one trace sink per cluster. Metrics are always on
   (plain int/float cells); tracing is opt-in and free when off. *)

module Metrics = Metrics
module Metric_names = Metric_names
module Trace = Trace

type t = { metrics : Metrics.t; trace : Trace.t }

let create () = { metrics = Metrics.create (); trace = Trace.create () }
