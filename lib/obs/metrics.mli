(** Deterministic metrics registry: counters, gauges, exact histograms,
    and snapshot-time probes that fold external counter sets (engine
    meters, network stats) into one namespace.

    No ambient time or randomness — all values originate from the
    simulation, so two same-seed runs produce identical snapshots. *)

type t

type hist_summary = {
  count : int;
  sum : float;
  p50 : float;
  p95 : float;
  max : float;
}

(** Point-in-time view; every list sorted by name for determinism. *)
type snapshot = {
  s_counters : (string * int) list;
  s_gauges : (string * float) list;
  s_histograms : (string * hist_summary) list;
}

val create : unit -> t

(** Monotonic counter increment (creates the counter at 0 on first use). *)
val inc : ?by:int -> t -> string -> unit

val counter_value : t -> string -> int

val gauge_add : t -> string -> float -> unit

val gauge_set : t -> string -> float -> unit

val gauge_value : t -> string -> float

(** Record one observation into the named histogram. *)
val observe : t -> string -> float -> unit

(** [register_probe t prefix f]: at snapshot time [f ()]'s counters are
    folded in under ["<prefix>.<key>"]. *)
val register_probe : t -> string -> (unit -> (string * int) list) -> unit

val snapshot : t -> snapshot

(** Stable one-line-per-metric text form ("name value"), used by
    [citus_stat_counters()] and the determinism checks. *)
val render : snapshot -> string
