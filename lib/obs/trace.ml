(* Hierarchical span tracing (Dapper-style), deterministic under the
   virtual clock.

   Span ids are sequential, parents come from an explicit nesting stack
   (or are passed explicitly by concurrent instrumentation — fibers do
   not nest on the caller's stack), and timestamps are supplied by the
   caller from the simulated clock — never from the OS — so two
   same-seed runs produce bit-identical span trees. Durations are always
   (close time - open time) on the virtual clock: since the cooperative
   scheduler advances the clock through a fragment's modeled execution
   time, elapsed virtual time IS the real measurement.

   When the sink is disabled, [with_span] takes one branch and calls the
   body with [None]: no allocation, no clock read, no id drawn. *)

type span = {
  id : int;
  parent : int option;
  kind : string;
  node : string;
  start : float;
  mutable duration : float;
  mutable tags : (string * string) list;
  mutable closed : bool;
}

type t = {
  mutable enabled : bool;
  mutable spans : span list;  (* reverse creation order *)
  mutable stack : span list;  (* open spans, innermost first *)
  mutable next_id : int;
  mutable started : int;
  mutable finished : int;
}

let create () =
  {
    enabled = false;
    spans = [];
    stack = [];
    next_id = 1;
    started = 0;
    finished = 0;
  }

let enabled t = t.enabled

let set_enabled t v = t.enabled <- v

let reset t =
  t.spans <- [];
  t.stack <- [];
  t.next_id <- 1;
  t.started <- 0;
  t.finished <- 0

let started t = t.started

let finished t = t.finished

let open_count t = List.length t.stack

let open_spans t = List.rev t.stack

let spans t = List.rev t.spans

let spans_since t mark = List.rev (List.filter (fun s -> s.id > mark) t.spans)

let mark t = t.next_id - 1

let add_tag sp k v =
  match sp with Some s -> s.tags <- (k, v) :: s.tags | None -> ()

let current t = match t.stack with [] -> None | sp :: _ -> Some sp

(* The raw open/close halves. [with_span] / [with_span_parent] are the
   sanctioned wrappers (they guarantee conservation even on exceptions);
   lint rule L8 flags any direct call outside this library. *)
let open_span t ~now ~node ~kind ?parent ?(tags = []) () =
  let sp =
    {
      id = t.next_id;
      parent;
      kind;
      node;
      start = now ();
      duration = 0.0;
      tags;
      closed = false;
    }
  in
  t.next_id <- t.next_id + 1;
  t.started <- t.started + 1;
  t.spans <- sp :: t.spans;
  sp

let close_span t ~now sp =
  if not sp.closed then begin
    sp.duration <- now () -. sp.start;
    sp.closed <- true;
    t.finished <- t.finished + 1
  end

let with_span t ~now ~node ~kind ?(tags = []) f =
  if not t.enabled then f None
  else begin
    let parent = match t.stack with [] -> None | p :: _ -> Some p.id in
    let sp = open_span t ~now ~node ~kind ?parent ~tags () in
    t.stack <- sp :: t.stack;
    Fun.protect
      ~finally:(fun () ->
        (match t.stack with
        | s :: rest when s == sp -> t.stack <- rest
        | _ -> t.stack <- List.filter (fun s -> not (s == sp)) t.stack);
        close_span t ~now sp)
      (fun () -> f (Some sp))
  end

(* Concurrent instrumentation: fibers interleave, so the global nesting
   stack cannot say who the parent is — the caller captured it (with
   {!current}) before spawning. The span never touches the stack, so
   simultaneous fibers cannot corrupt each other's nesting. *)
let with_span_parent t ~parent ~now ~node ~kind ?(tags = []) f =
  if not t.enabled then f None
  else begin
    let parent = Option.map (fun p -> p.id) parent in
    let sp = open_span t ~now ~node ~kind ?parent ~tags () in
    Fun.protect ~finally:(fun () -> close_span t ~now sp) (fun () -> f (Some sp))
  end

let render_span s =
  let tags =
    match List.sort compare s.tags with
    | [] -> ""
    | ts ->
        " "
        ^ String.concat " " (List.map (fun (k, v) -> k ^ "=" ^ v) ts)
  in
  Printf.sprintf "%s on %s start=%.6f dur=%.6f%s" s.kind s.node s.start
    s.duration tags

(* Indented tree in creation order; roots are spans whose parent is
   absent from [spans] (so a subtree extracted with [spans_since]
   renders from its own roots). *)
let render_tree spans =
  let ids = List.map (fun s -> s.id) spans in
  let children p =
    List.filter (fun s -> s.parent = Some p.id) spans
  in
  let roots =
    List.filter
      (fun s ->
        match s.parent with None -> true | Some p -> not (List.mem p ids))
      spans
  in
  let rec walk depth s acc =
    let line = String.make (2 * depth) ' ' ^ render_span s in
    List.fold_left
      (fun acc c -> walk (depth + 1) c acc)
      (line :: acc) (children s)
  in
  List.rev (List.fold_left (fun acc r -> walk 0 r acc) [] roots)
