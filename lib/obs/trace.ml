(* Hierarchical span tracing (Dapper-style), deterministic under the
   virtual clock.

   Span ids are sequential, parents come from an explicit nesting stack,
   and timestamps are supplied by the caller from the simulated clock —
   never from the OS — so two same-seed runs produce bit-identical span
   trees. Durations default to (close time - open time) on the virtual
   clock but instrumentation that computes a modeled duration (the
   adaptive executor's cost-derived fragment times) overrides them with
   [set_duration].

   When the sink is disabled, [with_span] takes one branch and calls the
   body with [None]: no allocation, no clock read, no id drawn. *)

type span = {
  id : int;
  parent : int option;
  kind : string;
  node : string;
  start : float;
  mutable duration : float;
  mutable tags : (string * string) list;
  mutable closed : bool;
}

type t = {
  mutable enabled : bool;
  mutable spans : span list;  (* reverse creation order *)
  mutable stack : span list;  (* open spans, innermost first *)
  mutable next_id : int;
  mutable started : int;
  mutable finished : int;
}

let create () =
  {
    enabled = false;
    spans = [];
    stack = [];
    next_id = 1;
    started = 0;
    finished = 0;
  }

let enabled t = t.enabled

let set_enabled t v = t.enabled <- v

let reset t =
  t.spans <- [];
  t.stack <- [];
  t.next_id <- 1;
  t.started <- 0;
  t.finished <- 0

let started t = t.started

let finished t = t.finished

let open_count t = List.length t.stack

let open_spans t = List.rev t.stack

let spans t = List.rev t.spans

let spans_since t mark = List.rev (List.filter (fun s -> s.id > mark) t.spans)

let mark t = t.next_id - 1

let add_tag sp k v =
  match sp with Some s -> s.tags <- (k, v) :: s.tags | None -> ()

let set_duration sp d = match sp with Some s -> s.duration <- d | None -> ()

let with_span t ~now ~node ~kind ?(tags = []) f =
  if not t.enabled then f None
  else begin
    let start = now () in
    let sp =
      {
        id = t.next_id;
        parent = (match t.stack with [] -> None | p :: _ -> Some p.id);
        kind;
        node;
        start;
        duration = 0.0;
        tags;
        closed = false;
      }
    in
    t.next_id <- t.next_id + 1;
    t.started <- t.started + 1;
    t.spans <- sp :: t.spans;
    t.stack <- sp :: t.stack;
    Fun.protect
      ~finally:(fun () ->
        (match t.stack with
        | s :: rest when s == sp -> t.stack <- rest
        | _ -> t.stack <- List.filter (fun s -> not (s == sp)) t.stack);
        if sp.duration = 0.0 then sp.duration <- now () -. sp.start;
        sp.closed <- true;
        t.finished <- t.finished + 1)
      (fun () -> f (Some sp))
  end

let render_span s =
  let tags =
    match List.sort compare s.tags with
    | [] -> ""
    | ts ->
        " "
        ^ String.concat " " (List.map (fun (k, v) -> k ^ "=" ^ v) ts)
  in
  Printf.sprintf "%s on %s start=%.6f dur=%.6f%s" s.kind s.node s.start
    s.duration tags

(* Indented tree in creation order; roots are spans whose parent is
   absent from [spans] (so a subtree extracted with [spans_since]
   renders from its own roots). *)
let render_tree spans =
  let ids = List.map (fun s -> s.id) spans in
  let children p =
    List.filter (fun s -> s.parent = Some p.id) spans
  in
  let roots =
    List.filter
      (fun s ->
        match s.parent with None -> true | Some p -> not (List.mem p ids))
      spans
  in
  let rec walk depth s acc =
    let line = String.make (2 * depth) ' ' ^ render_span s in
    List.fold_left
      (fun acc c -> walk (depth + 1) c acc)
      (line :: acc) (children s)
  in
  List.rev (List.fold_left (fun acc r -> walk 0 r acc) [] roots)
