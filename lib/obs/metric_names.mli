(** The metric-name registry: the closed, documented set of series a
    cluster can emit. Every name handed to {!Metrics} must come from
    here (enforced by lint rule L13), so [citus_stat_counters()]-style
    introspection enumerates a known catalogue and a typo cannot
    silently split a series in two.

    Constants name one series; {e families} ([net_connect_to],
    [planner_tier], …) name a parameterized group whose cardinality is
    bounded by the parameter's domain (node names, planner tiers). *)

(** {2 Engine} *)

val engine_maintenance_ticks : string
(** counter: maintenance-daemon wakeups that ran the tick body *)

val engine_probe : string -> string
(** gauge family (probe): per-instance engine internals registered at
    instance creation, e.g. [engine.<name>] row counts *)

(** {2 Networking} *)

val net_probe_prefix : string
(** probe prefix under which topology registers [net.*] gauges
    (rows shipped, messages in flight) *)

val net_connect_failed : string
(** counter: connection attempts refused (node down / partitioned) *)

val net_connect_to : string -> string
(** counter family: successful connects per destination node,
    [net.connect_to.<node>] *)

val net_round_trip_lost : string
(** counter: requests dropped on the way to the node *)

val net_reply_lost : string
(** counter: replies dropped on the way back — the statement executed,
    the client cannot know (the 2PC ambiguity) *)

val net_await_timed_out : string
(** counter: awaits that hit their deadline before the reply landed *)

(** {2 Adaptive executor} *)

val exec_tasks : string
(** counter: fragment tasks submitted *)

val exec_conn_opened : string
(** counter: worker connections opened *)

val exec_conn_affinity_reuse : string
(** counter: tasks served by an already-open affine connection *)

val exec_connections_per_statement : string
(** histogram: distinct connections one statement used *)

val exec_fragment_seconds : string
(** histogram: per-fragment execution time *)

val exec_makespan_seconds : string
(** histogram: whole-statement makespan *)

val exec_timeouts : string
(** counter: statements that hit statement_timeout *)

val exec_hedged_reads : string
(** counter: hedge attempts fired after the slow-primary threshold *)

val exec_hedge_wins : string
val exec_stale_txn_resets : string
(** counter: hedges where the second attempt answered first *)

(** {2 Planner} *)

val planner_tier : string -> string
(** counter family: statements planned per tier, [planner.tier.<slug>] *)

val planner_tier_join_order : string
(** counter: statements that took the dynamic join-order path *)

(** {2 Distributed plan cache} *)

val plancache_hits : string
(** counter: EXECUTEs served from a valid cached plan skeleton *)

val plancache_misses : string
(** counter: EXECUTEs that planned the shape and filled the cache *)

val plancache_invalidations : string
(** counter: cached entries discarded because the metadata version
    moved underneath them (DDL, shard move, rebalance, replication
    change, tenant isolation) *)

val plancache_evictions : string
(** counter: entries dropped by the LRU bound ([citus.plan_cache_size]) *)

val plancache_bypass : string
(** counter: EXECUTEs of shapes the cache cannot hold (multi-shard,
    reference writes, local tables) — planned per call *)

val plancache_entries : string
(** gauge: shapes currently cached *)

val plancache_exec_seconds : string
(** histogram: end-to-end EXECUTE time through the cached dispatch *)

val plancache_shape_seconds : string -> string
(** histogram family: per-shape EXECUTE time,
    [plancache.shape_seconds.<fingerprint>] — the fingerprint is the
    stable 8-hex-digit shape id reported by [citus_stat_statements()];
    cardinality is bounded by the number of distinct prepared shapes *)

(** {2 Two-phase commit} *)

val twopc_started : string
(** counter: 2PC rounds entered *)

val twopc_delegated_commits : string
(** counter: commits delegated to a worker-local transaction *)

val twopc_prepare_failed : string
(** counter: PREPARE fan-outs that failed and rolled back *)

val twopc_committed : string
(** counter: participants committed in the post-commit phase *)

val twopc_commit_deferred : string
(** counter: participants whose COMMIT PREPARED is deferred to
    recovery (stalled or unreachable at commit time) *)

val twopc_aborted : string
(** counter: 2PC rounds aborted *)

val twopc_recover_passes : string
(** counter: recovery sweeps over the prepared-transaction table *)

val twopc_recover_committed : string
(** counter: prepared transactions recovery committed *)

val twopc_recover_rolled_back : string
(** counter: prepared transactions recovery rolled back *)

(** {2 Distributed snapshot consistency} *)

val snapshot_reads : string
(** counter: multi-fragment reads executed with a snapshot token
    (consistency level read_your_writes or snapshot) *)

val snapshot_indoubt_waits : string
(** counter: reader encounters with an in-doubt (prepared but
    unresolved) distributed transaction *)

val snapshot_indoubt_commits : string
(** counter: in-doubt transactions a reader resolved to COMMIT PREPARED
    from the coordinator's commit record *)

val snapshot_indoubt_rollbacks : string
(** counter: in-doubt transactions a reader resolved to ROLLBACK
    PREPARED (coordinator aborted, no commit record) *)

val snapshot_read_retries : string
(** counter: fragment retries after backing off on a still-pending
    in-doubt transaction *)

val snapshot_hedged_fragments : string
(** counter: multi-shard read fragments hedged on a second replica
    after the slow-primary threshold *)

val snapshot_fragment_hedge_wins : string
(** counter: fragment hedges where the second replica answered first *)

(** {2 Citus MX (replicated metadata, multi-coordinator)} *)

val mx_metadata_syncs : string
(** counter: catalog writes applied to a synced worker replica (one per
    remote replica per sanctioned mutation, including catch-up replay
    when a node first attaches) *)

val mx_config_syncs : string
(** counter: knob values [citus_set_config] propagated to another
    metadata-synced node's extension state *)

val mx_worker_coordinated_txns : string
(** counter: distributed transactions whose 2PC was coordinated by a
    node other than the bootstrap coordinator *)

val mx_foreign_gids_resolved : string
(** counter: prepared transactions from {e another} coordinator's gid
    namespace that a recovery pass resolved by consulting the origin
    node's commit records *)

(** {2 Distributed deadlock detector} *)

val deadlock_rounds : string
(** counter: detector sweeps *)

val deadlock_cycles_found : string
(** counter: wait-for cycles detected *)

val deadlock_cancelled : string
(** counter: victim transactions cancelled to break a cycle *)

(** {2 Shard rebalancer} *)

val rebalance_moves_started : string
(** counter: shard-group moves begun *)

val rebalance_moves_completed : string
(** counter: shard-group moves finished *)

val rebalance_rows_copied : string
(** counter: rows bulk-copied during moves *)

val rebalance_catchup_records : string
(** counter: catch-up records applied after the bulk copy *)

val rebalance_repairs_failed : string
(** counter: placement repairs that raised *)

val rebalance_placements_repaired : string
(** counter: inactive placements re-activated by the repair daemon *)

val rebalance_move_timeouts : string
(** counter: shard-group moves abandoned at their per-move deadline
    ([citus.move_timeout]) *)

(** {2 Health / circuit breaker} *)

val health_slow_events : string
(** counter: statements recorded as slow against a node *)

val breaker_tripped : string
(** gauge: breakers currently open or half-open *)

val breaker_tripped_slow : string
(** counter: breaker trips caused by slowness (gray failure), not
    hard errors *)

val breaker_transition : from_:string -> to_:string -> string
(** counter family: breaker state transitions,
    [breaker.<from>_to_<to>] over closed/open/half_open *)
