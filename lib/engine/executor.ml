open Sqlfront

type ctx = {
  catalog : Catalog.t;
  mgr : Txn.Manager.t;
  pool : Storage.Buffer_pool.t;
  meter : Meter.t;
  snapshot : Txn.Snapshot.t;
  xid : int option;
  vis : (int -> Txn.Manager.status) option;
  env : Expr_eval.env;
}

exception Exec_error of string

exception Would_block of int list

let err fmt = Printf.ksprintf (fun m -> raise (Exec_error m)) fmt

let status ctx =
  match ctx.vis with Some f -> f | None -> Txn.Manager.status ctx.mgr

(* Locks belong to transactions. Reads outside any transaction (internal
   snapshot scans) skip table locks entirely: with MVCC they are safe, and
   there would be no owner to release the lock. *)
let acquire_lock ctx target mode =
  match ctx.xid with
  | None -> ()
  | Some owner ->
    (match Txn.Lock.acquire (Txn.Manager.locks ctx.mgr) ~owner target mode with
     | Txn.Lock.Granted -> ()
     | Txn.Lock.Blocked holders -> raise (Would_block holders))

(* --- schemas --- *)

let table_schema ~alias (table : Catalog.table) : Expr_eval.schema =
  let q = Some (Option.value ~default:table.tbl_name alias) in
  List.map
    (fun (c : Ast.column_def) -> { Expr_eval.rq = q; rname = c.col_name })
    table.columns

let expr_resolvable (schema : Expr_eval.schema) (e : Ast.expr) : bool =
  try
    Ast.fold_expr
      (fun () n ->
        match n with
        | Ast.Column (q, name) -> ignore (Expr_eval.resolve schema q name)
        | _ -> ())
      () e;
    true
  with Expr_eval.Eval_error _ -> false

(* Evaluate an expression that references no columns (a planning-time
   constant). Returns None if it does reference columns. *)
let const_value ctx (e : Ast.expr) : Datum.t option =
  if expr_resolvable [] e then
    match Expr_eval.compile [] ctx.env e [||] with
    | v -> Some v
    | exception Expr_eval.Eval_error _ -> None
  else None

(* --- access paths --- *)

type access_path =
  | Seq
  | Btree_eq of Catalog.index * Datum.t list  (** equality on a key prefix *)
  | Gin_candidates of Catalog.index * string  (** trigram pattern *)

(* Match WHERE conjuncts of the form [col = const] for this table. *)
let equality_bindings ctx schema conjuncts =
  List.filter_map
    (fun conj ->
      match conj with
      | Ast.Cmp (Ast.Eq, Ast.Column (q, name), rhs)
        when expr_resolvable schema (Ast.Column (q, name)) ->
        (match const_value ctx rhs with
         | Some v when not (Datum.is_null v) -> Some (name, v)
         | _ -> None)
      | Ast.Cmp (Ast.Eq, lhs, Ast.Column (q, name))
        when expr_resolvable schema (Ast.Column (q, name)) ->
        (match const_value ctx lhs with
         | Some v when not (Datum.is_null v) -> Some (name, v)
         | _ -> None)
      | _ -> None)
    conjuncts

(* Longest index key prefix covered by equality bindings. *)
let btree_prefix bindings columns =
  let rec go acc = function
    | [] -> List.rev acc
    | col :: rest ->
      (match List.assoc_opt col bindings with
       | Some v -> go (v :: acc) rest
       | None -> List.rev acc)
  in
  go [] columns

let find_gin_pattern (table : Catalog.table) conjuncts =
  List.find_map
    (fun conj ->
      match conj with
      | Ast.Like { subject; pattern = Ast.Const (Datum.Text p); negated = false; _ }
        ->
        (* strip enclosing % wildcards; only simple substring patterns use
           the index, everything else rechecks via seq scan *)
        let core = String.concat "" (String.split_on_char '%' p) in
        if String.contains core '_' || String.length core < 3 then None
        else
          List.find_map
            (fun (idx : Catalog.index) ->
              match idx.kind with
              | Catalog.Gin_index { expr; _ } when expr = subject ->
                Some (idx, core)
              | _ -> None)
            table.indexes
      | _ -> None)
    conjuncts

let choose_access_path ctx (table : Catalog.table) schema conjuncts =
  let bindings = equality_bindings ctx schema conjuncts in
  let best_btree =
    List.fold_left
      (fun best (idx : Catalog.index) ->
        match idx.kind with
        | Catalog.Btree_index { columns; _ } ->
          let prefix = btree_prefix bindings columns in
          (match best with
           | Some (_, p) when List.length p >= List.length prefix -> best
           | _ when prefix = [] -> best
           | _ -> Some (idx, prefix))
        | Catalog.Gin_index _ -> best)
      None table.indexes
  in
  match best_btree with
  | Some (idx, prefix) -> Btree_eq (idx, prefix)
  | None ->
    (match find_gin_pattern table conjuncts with
     | Some (idx, pattern) -> Gin_candidates (idx, pattern)
     | None -> Seq)

(* --- base table scans --- *)

(* Columns of [table] referenced anywhere in the statement, for columnar
   projection pushdown. *)
let referenced_columns (table : Catalog.table) schema exprs =
  let cols = Hashtbl.create 8 in
  List.iter
    (fun e ->
      Ast.fold_expr
        (fun () n ->
          match n with
          | Ast.Column (q, name) ->
            (match Expr_eval.resolve schema q name with
             | i -> Hashtbl.replace cols i ()
             | exception Expr_eval.Eval_error _ -> ())
          | _ -> ())
        () e)
    exprs;
  match Hashtbl.length cols with
  | 0 -> [ 0 ] (* COUNT-star scans still need stripe row counts *)
  | _ -> List.sort Int.compare (Hashtbl.fold (fun i () acc -> i :: acc) cols [])
  |> fun l -> if l = [] then List.init (List.length table.columns) Fun.id else l

(* Scan a base table with pushed-down conjuncts. Returns rows paired with
   their heap tid (None for columnar). The residual filter is NOT applied
   here; the caller compiles the full predicate. *)
let scan_base ctx (table : Catalog.table) ~alias ~conjuncts ~all_exprs :
    (int option * Datum.t array) list =
  acquire_lock ctx (Txn.Lock.Table table.tbl_name) Txn.Lock.Access_share;
  let schema = table_schema ~alias table in
  match table.store with
  | Catalog.Columnar_store col ->
    let columns = referenced_columns table schema all_exprs in
    let out = ref [] in
    (* stripe skipping from range conjuncts on a single column *)
    let stripe_predicate ~mins ~maxs =
      List.for_all
        (fun conj ->
          match conj with
          | Ast.Cmp (op, Ast.Column (q, name), rhs) ->
            (match const_value ctx rhs with
             | Some v when not (Datum.is_null v) ->
               (match Expr_eval.resolve schema q name with
                | i ->
                  let mn = mins.(i) and mx = maxs.(i) in
                  if Datum.is_null mn || Datum.is_null mx then true
                  else
                    (match op with
                     | Ast.Eq -> Datum.compare v mn >= 0 && Datum.compare v mx <= 0
                     | Ast.Lt | Ast.Le -> Datum.compare mn v <= 0
                     | Ast.Gt | Ast.Ge -> Datum.compare mx v >= 0
                     | Ast.Ne -> true)
                | exception Expr_eval.Eval_error _ -> true)
             | _ -> true)
          | _ -> true)
        conjuncts
    in
    Storage.Columnar.scan ~pool:ctx.pool ~stripe_predicate col
      ~status:(status ctx) ~snapshot:ctx.snapshot ~my_xid:ctx.xid ~columns
      ~f:(fun row ->
        Meter.add_scanned ctx.meter 1;
        out := (None, row) :: !out);
    List.rev !out
  | Catalog.Heap_store heap ->
    let fetch tid =
      Meter.add_scanned ctx.meter 1;
      match
        Storage.Heap.fetch ~pool:ctx.pool heap ~tid ~status:(status ctx)
          ~snapshot:ctx.snapshot ~my_xid:ctx.xid
      with
      | Some row -> Some (Some tid, row)
      | None -> None
    in
    (match choose_access_path ctx table schema conjuncts with
     | Btree_eq (idx, prefix) ->
       let tree =
         match idx.kind with
         | Catalog.Btree_index { tree; _ } -> tree
         | Catalog.Gin_index _ -> assert false
       in
       Meter.add_probe ctx.meter 1;
       let entries =
         Storage.Btree.prefix ~pool:ctx.pool tree (Array.of_list prefix)
       in
       List.filter_map (fun (_k, tid) -> fetch tid) entries
     | Gin_candidates (idx, pattern) ->
       let gin =
         match idx.kind with
         | Catalog.Gin_index { gin; _ } -> gin
         | Catalog.Btree_index _ -> assert false
       in
       Meter.add_probe ctx.meter 1;
       (match Storage.Gin.candidates ~pool:ctx.pool gin pattern with
        | Some tids -> List.filter_map fetch tids
        | None ->
          (* pattern too short: fall back to seq scan *)
          let out = ref [] in
          Storage.Heap.scan ~pool:ctx.pool heap ~status:(status ctx)
            ~snapshot:ctx.snapshot ~my_xid:ctx.xid ~f:(fun tid row ->
              Meter.add_scanned ctx.meter 1;
              out := (Some tid, row) :: !out);
          List.rev !out)
     | Seq ->
       let out = ref [] in
       Storage.Heap.scan ~pool:ctx.pool heap ~status:(status ctx)
         ~snapshot:ctx.snapshot ~my_xid:ctx.xid ~f:(fun tid row ->
           Meter.add_scanned ctx.meter 1;
           out := (Some tid, row) :: !out);
       List.rev !out)

(* --- SELECT pipeline --- *)

(* Substitute ordinals (GROUP BY 1 / ORDER BY 2) with projection exprs. *)
let substitute_ordinal projections e =
  match e with
  | Ast.Const (Datum.Int k) ->
    (match List.nth_opt projections (k - 1) with
     | Some (Ast.Proj (pe, _)) -> pe
     | _ -> e)
  | _ -> e

(* Also allow ORDER BY / GROUP BY to reference projection aliases. *)
let substitute_alias projections e =
  match e with
  | Ast.Column (None, name) ->
    (match
       List.find_map
         (function
           | Ast.Proj (pe, Some a) when String.equal a name -> Some pe
           | _ -> None)
         projections
     with
     | Some pe -> pe
     | None -> e)
  | _ -> e

let projection_name i = function
  | Ast.Proj (_, Some alias) -> alias
  | Ast.Proj (Ast.Column (_, name), None) -> name
  | Ast.Proj (Ast.Agg { agg_name; _ }, None) -> agg_name
  | Ast.Proj (Ast.Func (name, _), None) -> name
  | Ast.Proj (_, None) -> Printf.sprintf "column%d" (i + 1)
  | Ast.Star | Ast.Star_of _ -> "*"

(* aggregate computation *)
type agg_state = {
  mutable count : int;
  mutable sum_int : int;
  mutable sum_float : float;
  mutable saw_float : bool;
  mutable min_v : Datum.t;
  mutable max_v : Datum.t;
  mutable distinct_seen : (Datum.t list, unit) Hashtbl.t option;
}

let new_agg_state distinct =
  {
    count = 0;
    sum_int = 0;
    sum_float = 0.0;
    saw_float = false;
    min_v = Datum.Null;
    max_v = Datum.Null;
    distinct_seen = (if distinct then Some (Hashtbl.create 16) else None);
  }

let agg_feed st (v : Datum.t) =
  if not (Datum.is_null v) then begin
    let fresh =
      match st.distinct_seen with
      | None -> true
      | Some seen ->
        if Hashtbl.mem seen [ v ] then false
        else begin
          Hashtbl.replace seen [ v ] ();
          true
        end
    in
    if fresh then begin
      st.count <- st.count + 1;
      (match v with
       | Datum.Int i -> st.sum_int <- st.sum_int + i
       | Datum.Float f ->
         st.saw_float <- true;
         st.sum_float <- st.sum_float +. f
       | _ -> ());
      if Datum.is_null st.min_v || Datum.compare v st.min_v < 0 then
        st.min_v <- v;
      if Datum.is_null st.max_v || Datum.compare v st.max_v > 0 then
        st.max_v <- v
    end
  end

let agg_result name st =
  match name with
  | "count" -> Datum.Int st.count
  | "sum" ->
    if st.count = 0 then Datum.Null
    else if st.saw_float then
      Datum.Float (st.sum_float +. float_of_int st.sum_int)
    else Datum.Int st.sum_int
  | "avg" ->
    if st.count = 0 then Datum.Null
    else
      Datum.Float
        ((st.sum_float +. float_of_int st.sum_int) /. float_of_int st.count)
  | "min" -> st.min_v
  | "max" -> st.max_v
  | other -> err "unsupported aggregate %s" other

(* Replace group-by expressions and aggregates with references into the
   post-aggregation row, top-down. *)
let rec rewrite_post_agg group_exprs agg_exprs e =
  match List.find_index (fun g -> g = e) group_exprs with
  | Some i -> Ast.Column (None, Printf.sprintf "__g%d" i)
  | None ->
    (match List.find_index (fun a -> Ast.Agg a = e) agg_exprs with
     | Some j -> Ast.Column (None, Printf.sprintf "__a%d" j)
     | None ->
       (match e with
        | Ast.Const _ | Ast.Column _ | Ast.Param _ -> e
        | Ast.And (a, b) ->
          Ast.And (rewrite_post_agg group_exprs agg_exprs a,
                   rewrite_post_agg group_exprs agg_exprs b)
        | Ast.Or (a, b) ->
          Ast.Or (rewrite_post_agg group_exprs agg_exprs a,
                  rewrite_post_agg group_exprs agg_exprs b)
        | Ast.Not a -> Ast.Not (rewrite_post_agg group_exprs agg_exprs a)
        | Ast.Cmp (op, a, b) ->
          Ast.Cmp (op, rewrite_post_agg group_exprs agg_exprs a,
                   rewrite_post_agg group_exprs agg_exprs b)
        | Ast.Bin (op, a, b) ->
          Ast.Bin (op, rewrite_post_agg group_exprs agg_exprs a,
                   rewrite_post_agg group_exprs agg_exprs b)
        | Ast.Neg a -> Ast.Neg (rewrite_post_agg group_exprs agg_exprs a)
        | Ast.Is_null (a, p) ->
          Ast.Is_null (rewrite_post_agg group_exprs agg_exprs a, p)
        | Ast.In_list (a, items, n) ->
          Ast.In_list
            ( rewrite_post_agg group_exprs agg_exprs a,
              List.map (rewrite_post_agg group_exprs agg_exprs) items,
              n )
        | Ast.Between (a, lo, hi) ->
          Ast.Between
            ( rewrite_post_agg group_exprs agg_exprs a,
              rewrite_post_agg group_exprs agg_exprs lo,
              rewrite_post_agg group_exprs agg_exprs hi )
        | Ast.Like l ->
          Ast.Like
            {
              l with
              subject = rewrite_post_agg group_exprs agg_exprs l.subject;
              pattern = rewrite_post_agg group_exprs agg_exprs l.pattern;
            }
        | Ast.Json_get (a, b, t) ->
          Ast.Json_get
            ( rewrite_post_agg group_exprs agg_exprs a,
              rewrite_post_agg group_exprs agg_exprs b,
              t )
        | Ast.Cast (a, ty) ->
          Ast.Cast (rewrite_post_agg group_exprs agg_exprs a, ty)
        | Ast.Case (branches, else_) ->
          Ast.Case
            ( List.map
                (fun (c, v) ->
                  ( rewrite_post_agg group_exprs agg_exprs c,
                    rewrite_post_agg group_exprs agg_exprs v ))
                branches,
              Option.map (rewrite_post_agg group_exprs agg_exprs) else_ )
        | Ast.Func (name, args) ->
          Ast.Func (name, List.map (rewrite_post_agg group_exprs agg_exprs) args)
        | Ast.Agg _ -> err "aggregate not in GROUP BY rewrite"
        | Ast.Exists _ | Ast.In_subquery _ | Ast.Scalar_subquery _ -> e))

let collect_aggs exprs =
  let tbl = ref [] in
  List.iter
    (fun e ->
      Ast.fold_expr
        (fun () n ->
          match n with
          | Ast.Agg a -> if not (List.mem a !tbl) then tbl := a :: !tbl
          | _ -> ())
        () e)
    exprs;
  List.rev !tbl

let rec run_select ctx (sel : Ast.select) : string list * Datum.t array list =
  let schema, rows = exec_from_where ctx sel in
  (* expand stars *)
  let projections =
    List.concat_map
      (fun p ->
        match p with
        | Ast.Star ->
          List.map
            (fun (c : Expr_eval.rcol) -> Ast.Proj (Ast.Column (c.rq, c.rname), None))
            schema
        | Ast.Star_of q ->
          let cols =
            List.filter
              (fun (c : Expr_eval.rcol) -> c.rq = Some q)
              schema
          in
          if cols = [] then err "no table %s in FROM" q;
          List.map
            (fun (c : Expr_eval.rcol) -> Ast.Proj (Ast.Column (c.rq, c.rname), None))
            cols
        | Ast.Proj _ -> [ p ])
      sel.projections
  in
  let names = List.mapi projection_name projections in
  let proj_exprs =
    List.map (function Ast.Proj (e, _) -> e | _ -> assert false) projections
  in
  let group_by =
    List.map
      (fun e -> substitute_alias projections (substitute_ordinal projections e))
      sel.group_by
  in
  let order_by =
    List.map
      (fun (e, d) ->
        (substitute_alias projections (substitute_ordinal projections e), d))
      sel.order_by
  in
  let having = sel.having in
  let all_output_exprs =
    proj_exprs
    @ (match having with Some h -> [ h ] | None -> [])
    @ List.map fst order_by
  in
  let aggs = collect_aggs all_output_exprs in
  let grouped = group_by <> [] || aggs <> [] in
  let schema2, rows2, proj_exprs, having, order_by =
    if not grouped then (schema, rows, proj_exprs, having, order_by)
    else begin
      (* compute groups *)
      let key_fns = List.map (Expr_eval.compile schema ctx.env) group_by in
      let agg_arg_fns =
        List.map
          (fun (a : Ast.agg) ->
            match a.agg_arg with
            | Some e -> Some (Expr_eval.compile schema ctx.env e)
            | None -> None)
          aggs
      in
      let groups : (Datum.t list, agg_state list * Datum.t list) Hashtbl.t =
        Hashtbl.create 64
      in
      let group_order = ref [] in
      List.iter
        (fun row ->
          Meter.add_aggregated ctx.meter 1;
          let key = List.map (fun f -> f row) key_fns in
          let states =
            match Hashtbl.find_opt groups key with
            | Some (states, _) -> states
            | None ->
              let states =
                List.map (fun (a : Ast.agg) -> new_agg_state a.agg_distinct) aggs
              in
              Hashtbl.replace groups key (states, key);
              group_order := key :: !group_order;
              states
          in
          List.iteri
            (fun i st ->
              let a = List.nth aggs i in
              match List.nth agg_arg_fns i with
              | Some f -> agg_feed st (f row)
              | None ->
                (* COUNT star counts rows *)
                ignore a;
                st.count <- st.count + 1)
            states)
        rows;
      (* no rows and no GROUP BY: one empty group *)
      if Hashtbl.length groups = 0 && group_by = [] then begin
        let states =
          List.map (fun (a : Ast.agg) -> new_agg_state a.agg_distinct) aggs
        in
        Hashtbl.replace groups [] (states, []);
        group_order := [ [] ]
      end;
      let post_rows =
        List.rev_map
          (fun key ->
            let states =
              match Hashtbl.find_opt groups key with
              | Some (states, _) -> states
              | None -> assert false (* group_order only holds live keys *)
            in
            let agg_values =
              List.mapi
                (fun i st -> agg_result (List.nth aggs i).Ast.agg_name st)
                states
            in
            Array.of_list (key @ agg_values))
          !group_order
      in
      let post_schema =
        List.mapi
          (fun i _ -> { Expr_eval.rq = None; rname = Printf.sprintf "__g%d" i })
          group_by
        @ List.mapi
            (fun j _ -> { Expr_eval.rq = None; rname = Printf.sprintf "__a%d" j })
            aggs
      in
      let rw = rewrite_post_agg group_by aggs in
      ( post_schema,
        post_rows,
        List.map rw proj_exprs,
        Option.map rw having,
        List.map (fun (e, d) -> (rw e, d)) order_by )
    end
  in
  (* HAVING *)
  let rows3 =
    match having with
    | None -> rows2
    | Some h ->
      let f = Expr_eval.compile schema2 ctx.env h in
      List.filter (Expr_eval.eval_bool f) rows2
  in
  (* ORDER BY (before projection, so sort keys can reference input schema) *)
  let rows4 =
    match order_by with
    | [] -> rows3
    | keys ->
      let compiled =
        List.map (fun (e, d) -> (Expr_eval.compile schema2 ctx.env e, d)) keys
      in
      Meter.add_sorted ctx.meter (List.length rows3);
      let cmp a b =
        let rec go = function
          | [] -> 0
          | (f, dir) :: rest ->
            let c = Datum.compare (f a) (f b) in
            let c = match dir with Ast.Asc -> c | Ast.Desc -> -c in
            if c <> 0 then c else go rest
        in
        go compiled
      in
      List.stable_sort cmp rows3
  in
  (* project *)
  let proj_fns = List.map (Expr_eval.compile schema2 ctx.env) proj_exprs in
  let projected =
    List.map (fun row -> Array.of_list (List.map (fun f -> f row) proj_fns)) rows4
  in
  (* DISTINCT *)
  let distinct_rows =
    if not sel.distinct then projected
    else begin
      let seen = Hashtbl.create 64 in
      List.filter
        (fun row ->
          let key = Array.to_list row in
          if Hashtbl.mem seen key then false
          else begin
            Hashtbl.replace seen key ();
            true
          end)
        projected
    end
  in
  (* OFFSET / LIMIT *)
  let int_of_expr what e =
    match const_value ctx e with
    | Some (Datum.Int i) -> i
    | _ -> err "%s must be an integer constant" what
  in
  let with_offset =
    match sel.offset with
    | None -> distinct_rows
    | Some e ->
      let n = int_of_expr "OFFSET" e in
      List.filteri (fun i _ -> i >= n) distinct_rows
  in
  let with_limit =
    match sel.limit with
    | None -> with_offset
    | Some e ->
      let n = int_of_expr "LIMIT" e in
      List.filteri (fun i _ -> i < n) with_offset
  in
  (names, with_limit)

(* FROM + WHERE: returns the joined schema and filtered rows. *)
and exec_from_where ctx (sel : Ast.select) :
    Expr_eval.schema * Datum.t array list =
  let conjuncts = match sel.where with Some w -> Ast.conjuncts w | None -> [] in
  match sel.from with
  | [] ->
    (* SELECT without FROM: one empty row, WHERE may still filter it *)
    let row = [||] in
    let keep =
      List.for_all
        (fun conj ->
          Expr_eval.eval_bool (Expr_eval.compile [] ctx.env conj) row)
        conjuncts
    in
    ([], if keep then [ row ] else [])
  | items ->
    let all_exprs =
      List.filter_map (function Ast.Proj (e, _) -> Some e | _ -> None)
        sel.projections
      @ conjuncts @ sel.group_by
      @ (match sel.having with Some h -> [ h ] | None -> [])
      @ List.map fst sel.order_by
    in
    (* fold FROM items left to right as cross joins *)
    let joined =
      List.fold_left
        (fun acc item ->
          let right = exec_from_item ctx item ~pushdown:true ~conjuncts ~all_exprs in
          match acc with
          | None -> Some right
          | Some left -> Some (join_rel ctx left right Ast.Inner None))
        None items
    in
    let schema, rows = Option.get joined in
    (* apply remaining conjuncts that need the full schema *)
    let rows =
      List.fold_left
        (fun rows conj ->
          let f = Expr_eval.compile schema ctx.env conj in
          List.filter (Expr_eval.eval_bool f) rows)
        rows conjuncts
    in
    (schema, rows)

and exec_from_item ctx item ~pushdown ~conjuncts ~all_exprs :
    Expr_eval.schema * Datum.t array list =
  match item with
  | Ast.Table { name; alias } ->
    let table =
      match Catalog.find_table_opt ctx.catalog name with
      | Some t -> t
      | None -> err "relation %s does not exist" name
    in
    let schema = table_schema ~alias table in
    (* push down conjuncts that only reference this table; disabled under
       the nullable side of an outer join, where filtering early would
       suppress null extension *)
    let local =
      if pushdown then List.filter (expr_resolvable schema) conjuncts else []
    in
    let pairs = scan_base ctx table ~alias ~conjuncts:local ~all_exprs in
    (* apply the pushed-down filter now (cheaper row set for joins) *)
    let rows = List.map snd pairs in
    let rows =
      List.fold_left
        (fun rows conj ->
          let f = Expr_eval.compile schema ctx.env conj in
          List.filter (Expr_eval.eval_bool f) rows)
        rows local
    in
    (schema, rows)
  | Ast.Subselect (inner, alias) ->
    let names, rows = run_select ctx inner in
    let schema =
      List.map (fun n -> { Expr_eval.rq = Some alias; rname = n }) names
    in
    (schema, rows)
  | Ast.Join { left; right; kind; cond } ->
    let l = exec_from_item ctx left ~pushdown ~conjuncts ~all_exprs in
    let right_pushdown = pushdown && kind <> Ast.Left_outer in
    let r = exec_from_item ctx right ~pushdown:right_pushdown ~conjuncts ~all_exprs in
    join_rel ctx l r kind cond

(* Join two relations; uses a hash join when the condition contains an
   equality between one column of each side, otherwise nested loop. *)
and join_rel ctx (lschema, lrows) (rschema, rrows) kind cond :
    Expr_eval.schema * Datum.t array list =
  let schema = lschema @ rschema in
  let combine lr rr = Array.append lr rr in
  let null_right = Array.make (List.length rschema) Datum.Null in
  let cond_conjuncts = match cond with Some c -> Ast.conjuncts c | None -> [] in
  (* find an equi-join conjunct *)
  let equi =
    List.find_map
      (fun conj ->
        match conj with
        | Ast.Cmp (Ast.Eq, a, b) ->
          let try_pair x y =
            if expr_resolvable lschema x && expr_resolvable rschema y
               && (not (expr_resolvable lschema y))
            then Some (x, y)
            else None
          in
          (match try_pair a b with
           | Some p -> Some p
           | None ->
             (match try_pair b a with Some p -> Some p | None -> None))
        | _ -> None)
      cond_conjuncts
  in
  let residual_fns =
    List.map (fun c -> Expr_eval.compile schema ctx.env c) cond_conjuncts
  in
  let residual_ok row = List.for_all (fun f -> Expr_eval.eval_bool f row) residual_fns in
  let out = ref [] in
  (match equi with
   | Some (lkey_e, rkey_e) ->
     let lkey = Expr_eval.compile lschema ctx.env lkey_e in
     let rkey = Expr_eval.compile rschema ctx.env rkey_e in
     let table = Hashtbl.create (List.length rrows) in
     List.iter
       (fun rr ->
         let k = rkey rr in
         if not (Datum.is_null k) then
           Hashtbl.add table (Datum.to_sql_literal k) rr)
       rrows;
     List.iter
       (fun lr ->
         Meter.add_scanned ctx.meter 1;
         let k = lkey lr in
         let matches =
           if Datum.is_null k then []
           else Hashtbl.find_all table (Datum.to_sql_literal k)
         in
         let kept =
           List.filter (fun rr -> residual_ok (combine lr rr)) matches
         in
         match kept, kind with
         | [], Ast.Left_outer -> out := combine lr null_right :: !out
         | [], Ast.Inner -> ()
         | rs, _ ->
           List.iter (fun rr -> out := combine lr rr :: !out) (List.rev rs))
       lrows
   | None ->
     List.iter
       (fun lr ->
         let matched = ref false in
         List.iter
           (fun rr ->
             Meter.add_scanned ctx.meter 1;
             let row = combine lr rr in
             if residual_ok row then begin
               matched := true;
               out := row :: !out
             end)
           rrows;
         if (not !matched) && kind = Ast.Left_outer then
           out := combine lr null_right :: !out)
       lrows);
  (schema, List.rev !out)

(* --- writes --- *)

let require_xid ctx =
  match ctx.xid with
  | Some x -> x
  | None -> err "DML requires a transaction"

let heap_of (table : Catalog.table) =
  match table.store with
  | Catalog.Heap_store h -> Some h
  | Catalog.Columnar_store _ -> None

(* index maintenance for one inserted row *)
let index_insert ctx (table : Catalog.table) tid row =
  let schema = table_schema ~alias:None table in
  List.iter
    (fun (idx : Catalog.index) ->
      match idx.kind with
      | Catalog.Btree_index { columns; tree } ->
        let key =
          Array.of_list
            (List.map (fun c -> row.(Catalog.column_index table c)) columns)
        in
        (* index maintenance reads the leaf page it modifies *)
        ignore (Storage.Btree.find_eq ~pool:ctx.pool tree key);
        Storage.Btree.insert tree key tid;
        Meter.add_index_update ctx.meter 1
      | Catalog.Gin_index { expr; gin } ->
        let v = Expr_eval.compile schema ctx.env expr row in
        (match v with
         | Datum.Null -> ()
         | v ->
           let updates =
             Storage.Gin.add ~pool:ctx.pool gin ~tid (Datum.to_display v)
           in
           Meter.add_index_update ctx.meter updates))
    table.indexes

let index_remove ctx (table : Catalog.table) tid row =
  let schema = table_schema ~alias:None table in
  List.iter
    (fun (idx : Catalog.index) ->
      match idx.kind with
      | Catalog.Btree_index { columns; tree } ->
        let key =
          Array.of_list
            (List.map (fun c -> row.(Catalog.column_index table c)) columns)
        in
        Storage.Btree.remove tree key tid;
        Meter.add_index_update ctx.meter 1
      | Catalog.Gin_index { expr; gin } ->
        let v = Expr_eval.compile schema ctx.env expr row in
        (match v with
         | Datum.Null -> ()
         | v ->
           Storage.Gin.remove gin ~tid (Datum.to_display v);
           Meter.add_index_update ctx.meter 1))
    table.indexes

(* Does a live or in-doubt version with this PK already exist? *)
let pk_conflict ctx (table : Catalog.table) row =
  match table.primary_key with
  | [] -> false
  | pk_cols ->
    let heap =
      match heap_of table with Some h -> h | None -> (* columnar: no pk *) raise Exit
    in
    let key =
      Array.of_list
        (List.map (fun c -> row.(Catalog.column_index table c)) pk_cols)
    in
    let pk_index =
      List.find_map
        (fun (idx : Catalog.index) ->
          match idx.kind with
          | Catalog.Btree_index { columns; tree } when columns = pk_cols ->
            Some tree
          | _ -> None)
        table.indexes
    in
    let candidate_tids =
      match pk_index with
      | Some tree ->
        Meter.add_probe ctx.meter 1;
        Storage.Btree.find_eq ~pool:ctx.pool tree key
      | None -> err "primary key on %s has no index" table.tbl_name
    in
    List.exists
      (fun tid ->
        match Storage.Heap.header heap ~tid with
        | None -> false
        | Some (xmin, xmax) ->
          let mine x = ctx.xid = Some x in
          let insert_alive =
            mine xmin
            || (match status ctx xmin with
                | Txn.Manager.Committed -> true
                | Txn.Manager.In_progress -> true (* pessimistic *)
                | Txn.Manager.Aborted -> false)
          in
          let deleted =
            xmax <> 0
            && (mine xmax
                || status ctx xmax = Txn.Manager.Committed
                || status ctx xmax = Txn.Manager.In_progress)
          in
          insert_alive && not deleted)
      candidate_tids

let check_not_null (table : Catalog.table) row =
  List.iteri
    (fun i (c : Ast.column_def) ->
      if c.col_not_null && Datum.is_null row.(i) then
        err "null value in column %s violates not-null constraint" c.col_name)
    table.columns

let insert_rows ctx ~(table : Catalog.table) rows ~on_conflict_do_nothing =
  let xid = require_xid ctx in
  acquire_lock ctx (Txn.Lock.Table table.tbl_name) Txn.Lock.Row_exclusive;
  match table.store with
  | Catalog.Columnar_store col ->
    List.iter (check_not_null table) rows;
    Storage.Columnar.append col ~xid rows;
    Meter.add_written ctx.meter (List.length rows);
    List.length rows
  | Catalog.Heap_store heap ->
    let inserted = ref 0 in
    List.iter
      (fun row ->
        check_not_null table row;
        let conflict = try pk_conflict ctx table row with Exit -> false in
        if conflict then begin
          if not on_conflict_do_nothing then
            err "duplicate key value violates primary key of %s" table.tbl_name
        end
        else begin
          let tid = Storage.Heap.insert heap ~xid row in
          ignore
            (Storage.Buffer_pool.access ctx.pool
               {
                 Storage.Buffer_pool.relation = table.tbl_name;
                 page_no = tid / Storage.Heap.rows_per_page heap;
               });
          ignore
            (Txn.Wal.append (Txn.Manager.wal ctx.mgr)
               (Txn.Wal.Insert { xid; table = table.tbl_name; tid; row }));
          index_insert ctx table tid row;
          Meter.add_written ctx.meter 1;
          incr inserted
        end)
      rows;
    !inserted

(* Build full-width rows from an INSERT column list + expression tuples. *)
let build_rows ctx (table : Catalog.table) columns exprs_rows =
  let tys = Catalog.column_tys table in
  let ncols = List.length table.columns in
  let positions =
    match columns with
    | None -> List.init ncols Fun.id
    | Some cols -> List.map (Catalog.column_index table) cols
  in
  let defaults =
    Array.of_list
      (List.map
         (fun (c : Ast.column_def) ->
           match c.col_default with
           | Some e -> fun () -> Expr_eval.compile [] ctx.env e [||]
           | None -> fun () -> Datum.Null)
         table.columns)
  in
  List.map
    (fun values ->
      if List.length values <> List.length positions then
        err "INSERT has %d expressions but %d target columns"
          (List.length values) (List.length positions);
      let row = Array.init ncols (fun i -> defaults.(i) ()) in
      List.iter2
        (fun pos (v : Datum.t) ->
          row.(pos) <-
            (try Datum.cast v tys.(pos)
             with Datum.Cast_error m -> raise (Exec_error m)))
        positions values;
      row)
    exprs_rows

let run_insert ctx ~table ~columns ~source ~on_conflict_do_nothing =
  let table =
    match Catalog.find_table_opt ctx.catalog table with
    | Some t -> t
    | None -> err "relation %s does not exist" table
  in
  let value_rows =
    match source with
    | Ast.Values tuples ->
      List.map
        (fun tuple ->
          List.map (fun e -> Expr_eval.compile [] ctx.env e [||]) tuple)
        tuples
    | Ast.Query sel ->
      let _names, rows = run_select ctx sel in
      List.map Array.to_list rows
  in
  let rows = build_rows ctx table columns value_rows in
  insert_rows ctx ~table rows ~on_conflict_do_nothing

let target_rows ctx (table : Catalog.table) where =
  let schema = table_schema ~alias:None table in
  let conjuncts = match where with Some w -> Ast.conjuncts w | None -> [] in
  let all_exprs = conjuncts in
  let pairs = scan_base ctx table ~alias:None ~conjuncts ~all_exprs in
  let filter =
    match where with
    | None -> fun _ -> true
    | Some w -> Expr_eval.eval_bool (Expr_eval.compile schema ctx.env w)
  in
  List.filter (fun (_tid, row) -> filter row) pairs

let run_update ctx ~table ~sets ~where =
  let xid = require_xid ctx in
  let table =
    match Catalog.find_table_opt ctx.catalog table with
    | Some t -> t
    | None -> err "relation %s does not exist" table
  in
  let heap =
    match heap_of table with
    | Some h -> h
    | None -> err "columnar table %s is append-only" table.tbl_name
  in
  acquire_lock ctx (Txn.Lock.Table table.tbl_name) Txn.Lock.Row_exclusive;
  let schema = table_schema ~alias:None table in
  let tys = Catalog.column_tys table in
  let set_fns =
    List.map
      (fun (col, e) ->
        let pos = Catalog.column_index table col in
        (pos, Expr_eval.compile schema ctx.env e))
      sets
  in
  let targets = target_rows ctx table where in
  (* acquire all row locks first so a deadlock surfaces as Would_block *)
  List.iter
    (fun (tid, _) ->
      match tid with
      | Some tid ->
        acquire_lock ctx (Txn.Lock.Row (table.tbl_name, tid)) Txn.Lock.Row_lock
      | None -> ())
    targets;
  let updated = ref 0 in
  List.iter
    (fun (tid, row) ->
      match tid with
      | None -> ()
      | Some tid ->
        (* re-check the version is still the live one, against the TRUE
           transaction state (never a snapshot override: write conflicts
           are about the latest state). A committed deleter means the row
           vanished under us — skip, like the READ COMMITTED recheck. An
           in-progress deleter is a live write-write conflict: normally
           the row lock prevents ever getting here, but a crash-recovered
           prepared transaction wrote this xmax under locks the restart
           discarded — overwriting it would resurrect the row the in-doubt
           transaction deleted, splitting one logical row in two when the
           recovery daemon commits it. Surface the conflict instead. *)
        (match Storage.Heap.header heap ~tid with
         | Some (_, xmax)
           when xmax <> 0 && (not (ctx.xid = Some xmax))
                && Txn.Manager.status ctx.mgr xmax = Txn.Manager.Committed ->
           ()
         | Some (_, xmax)
           when xmax <> 0 && (not (ctx.xid = Some xmax))
                && Txn.Manager.status ctx.mgr xmax = Txn.Manager.In_progress ->
           raise (Would_block [ xmax ])
         | Some _ ->
           let new_row = Array.copy row in
           List.iter
             (fun (pos, f) ->
               new_row.(pos) <-
                 (try Datum.cast (f row) tys.(pos)
                  with Datum.Cast_error m -> raise (Exec_error m)))
             set_fns;
           check_not_null table new_row;
           ignore (Storage.Heap.delete heap ~xid ~tid);
           let new_tid = Storage.Heap.insert heap ~xid new_row in
           ignore
             (Storage.Buffer_pool.access ctx.pool
                {
                  Storage.Buffer_pool.relation = table.tbl_name;
                  page_no = new_tid / Storage.Heap.rows_per_page heap;
                });
           ignore
             (Txn.Wal.append (Txn.Manager.wal ctx.mgr)
                (Txn.Wal.Update
                   {
                     xid;
                     table = table.tbl_name;
                     old_tid = tid;
                     new_tid;
                     row = new_row;
                   }));
           index_insert ctx table new_tid new_row;
           Meter.add_written ctx.meter 1;
           incr updated
         | None -> ()))
    targets;
  !updated

let run_delete ctx ~table ~where =
  let xid = require_xid ctx in
  let table =
    match Catalog.find_table_opt ctx.catalog table with
    | Some t -> t
    | None -> err "relation %s does not exist" table
  in
  let heap =
    match heap_of table with
    | Some h -> h
    | None -> err "columnar table %s is append-only" table.tbl_name
  in
  acquire_lock ctx (Txn.Lock.Table table.tbl_name) Txn.Lock.Row_exclusive;
  let targets = target_rows ctx table where in
  List.iter
    (fun (tid, _) ->
      match tid with
      | Some tid ->
        acquire_lock ctx (Txn.Lock.Row (table.tbl_name, tid)) Txn.Lock.Row_lock
      | None -> ())
    targets;
  let deleted = ref 0 in
  List.iter
    (fun (tid, _row) ->
      match tid with
      | None -> ()
      | Some tid ->
        (* same recheck as run_update: never overwrite a deleter that is
           committed (row already gone) or still in progress (write-write
           conflict — possibly an in-doubt prepared transaction whose
           locks a crash discarded) *)
        (match Storage.Heap.header heap ~tid with
         | Some (_, xmax)
           when xmax <> 0 && (not (ctx.xid = Some xmax))
                && Txn.Manager.status ctx.mgr xmax = Txn.Manager.Committed ->
           ()
         | Some (_, xmax)
           when xmax <> 0 && (not (ctx.xid = Some xmax))
                && Txn.Manager.status ctx.mgr xmax = Txn.Manager.In_progress ->
           raise (Would_block [ xmax ])
         | _ ->
           if Storage.Heap.delete heap ~xid ~tid then begin
             ignore
               (Txn.Wal.append (Txn.Manager.wal ctx.mgr)
                  (Txn.Wal.Delete { xid; table = table.tbl_name; tid }));
             Meter.add_written ctx.meter 1;
             incr deleted
           end))
    targets;
  !deleted
