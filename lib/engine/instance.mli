(** One MiniPG database node: catalog + transactions + sessions + hooks.

    This is the surface the Citus layer plugs into. Statement execution
    mirrors PostgreSQL (§3.1 of the paper):

    - a {b planner hook} may take over SELECT / DML statements,
    - a {b utility hook} may take over DDL / COPY / other commands,
    - {b UDFs} callable as [SELECT my_udf(...)] manipulate extension
      metadata (this is how [create_distributed_table] arrives),
    - {b transaction callbacks} fire at pre-commit / post-commit / abort,
    - a {b maintenance tick} stands in for background workers.

    Sessions never block: a statement that hits a conflicting lock raises
    {!Executor.Would_block}; the caller retries once the holder finishes.
    Each statement runs under a fresh snapshot (READ COMMITTED). *)

type t

type session

type result = {
  columns : string list;
  rows : Datum.t array list;
  affected : int;
  tag : string;  (** command tag, e.g. "SELECT", "INSERT" *)
}

exception Session_error of string

(** [create ~name ~buffer_pages ()] builds a node whose buffer pool holds
    [buffer_pages] logical pages (the memory-fit lever of every benchmark).
    When [obs] is given, every statement runs inside a trace span and the
    node's {!Meter} counters fold into the metrics registry as
    [engine.<name>.<field>]. *)
val create :
  ?seed:int -> ?buffer_pages:int -> ?obs:Obs.t -> name:string -> unit -> t

val name : t -> string

val catalog : t -> Catalog.t

val txn_manager : t -> Txn.Manager.t

val buffer_pool : t -> Storage.Buffer_pool.t

val meter : t -> Meter.t

(** Logical wall clock, advanced by the simulation layer. *)
val now : t -> float

val set_now : t -> float -> unit

(** {2 Sessions} *)

val connect : t -> session

val session_instance : session -> t

val session_id : session -> int

(** A session dies when its node crashes; using a dead session raises
    {!Session_error}. The cluster layer checks this before each round
    trip to raise its own distinguishable error. *)
val session_alive : session -> bool

(** Server-side abort of an open transaction (the client disconnected or
    crashed). No-op on dead sessions and sessions with no open txn. *)
val abort_session : session -> unit

(** Execute one SQL statement. May raise {!Session_error},
    {!Executor.Would_block} (retry later), or parse errors. *)
val exec : session -> string -> result

val exec_ast : session -> Sqlfront.Ast.statement -> result

(** Execute with [$n] parameters bound.

    @deprecated Re-parses and re-plans on every call. Use the typed
    [Citus.Session] surface ([prepare] / [execute]) instead: it keeps the
    shape in the session's prepared-statement registry and lets the
    distributed plan cache skip re-planning on the OLTP hot path. *)
val exec_params : session -> string -> Datum.t list -> result

(** {2 Prepared statements}

    [PREPARE name AS stmt] / [EXECUTE name(args)] / [DEALLOCATE] are
    handled by {!exec_ast} with PostgreSQL semantics: the registry is
    session-scoped, duplicate PREPARE and unknown EXECUTE / DEALLOCATE
    names raise {!Session_error}. Extension hooks see the raw
    [Execute_stmt] node and use {!resolve_execute} to resolve the name
    and evaluate argument expressions (one implementation for hook and
    built-in paths). *)

(** Stored shape for a prepared name, placeholders unbound. *)
val prepared_lookup : session -> string -> Sqlfront.Ast.statement option

(** Names prepared in this session, sorted. *)
val prepared_names : session -> string list

(** Resolve an EXECUTE: stored shape + evaluated argument datums. Raises
    {!Session_error} if the name is unknown. *)
val resolve_execute :
  session ->
  name:string ->
  args:Sqlfront.Ast.expr list ->
  Sqlfront.Ast.statement * Datum.t list

(** Feed COPY data rows (tab-separated text format, [\N] = NULL) into a
    table, inside the session's transaction. *)
val copy_in :
  session -> table:string -> columns:string list option -> string list -> int

(** True while the session is inside an explicit BEGIN block. *)
val in_transaction : session -> bool

(** Transaction id of the session's open transaction, if any. *)
val current_xid : session -> int option

(** {2 Distributed read visibility}

    [read_mode] selects how reads in this session treat distributed
    transactions (see {!Txn.Snapshot.read_mode}); the cluster layer sets
    it around each dispatched statement. [set_pending_commit_ts] arms
    the coordinator-assigned HLC commit timestamp that the next
    [COMMIT PREPARED] on this session will stamp — the out-of-band half
    of the 2PC visibility fence. [set_hlc] installs the node's hybrid
    logical clock into the transaction manager (wired by
    [Cluster.Topology] to the simulated, possibly skewed, node clock). *)

val set_read_mode : session -> Txn.Snapshot.read_mode -> unit

val read_mode : session -> Txn.Snapshot.read_mode

val set_pending_commit_ts : session -> Txn.Hlc.timestamp option -> unit

val set_hlc : t -> Txn.Hlc.t -> unit

(** Run the built-in utility implementation directly, bypassing the
    utility hook (extensions call this to apply DDL locally before
    propagating it). *)
val exec_utility_local : session -> Sqlfront.Ast.statement -> result

(** {2 Extension hooks} *)

val set_planner_hook :
  t -> (session -> Sqlfront.Ast.statement -> result option) -> unit

val set_utility_hook :
  t -> (session -> Sqlfront.Ast.statement -> result option) -> unit

val set_copy_hook :
  t ->
  (session -> table:string -> columns:string list option -> string list -> int option) ->
  unit

val register_udf : t -> string -> (session -> Datum.t list -> Datum.t) -> unit

val on_pre_commit : t -> (session -> unit) -> unit

val on_post_commit : t -> (session -> unit) -> unit

val on_abort : t -> (session -> unit) -> unit

val add_maintenance : t -> (t -> unit) -> unit

(** Run the maintenance daemon once: local deadlock detection (aborts the
    youngest transaction in a cycle), autovacuum, then registered hooks. *)
val maintenance_tick : t -> unit

(** {2 Administration} *)

(** VACUUM one table: reclaim dead versions and drop their index entries. *)
val vacuum_table : t -> string -> int

(** Write a named restore point into the WAL (§3.9). *)
val create_restore_point : t -> string -> unit

(** {2 Crash and recovery}

    [crash] kills the node: every session from the current epoch dies and
    all in-memory state is considered lost (nothing is wiped eagerly —
    the node is simply unusable until recovery, which rebuilds from
    durable state). [recover_from_wal] brings it back: transaction state
    is reconstructed by {!Txn.Manager.crash_recover}, heap contents are
    replayed from the WAL at their original tids, indexes are rebuilt,
    and the buffer pool starts cold. Running (non-prepared) transactions
    vanish; prepared transactions survive with locks released (new
    writers conflict on tuple headers instead). Catalog definitions and
    columnar stripes are modeled as durable. *)

val crash : t -> unit

val recover_from_wal : t -> unit

(** [restart t] = [crash t; recover_from_wal t]. *)
val restart : t -> unit

(** Build an executor context for internal work (used by the Citus layer
    for shard operations that bypass SQL). *)
val make_ctx : session -> Executor.ctx
