(** Single-node query executor.

    Executes parsed statements against the catalog with full MVCC
    semantics. The execution model is "semantic": the SELECT pipeline
    (FROM → WHERE → GROUP/aggregate → HAVING → DISTINCT → ORDER →
    LIMIT/OFFSET → project) is evaluated directly from the AST, with an
    access-path decision per base table (primary-key / secondary B-tree
    lookups, GIN trigram candidate + recheck, columnar projection scans,
    otherwise sequential scan).

    There are no OS threads. When a write conflicts with a lock held by
    another transaction, the statement raises {!Would_block} with the
    holders; the session layer surfaces that to the caller, who retries
    after the holder finishes (or aborts). This is what makes lock waits
    and deadlocks deterministic and testable. *)

type ctx = {
  catalog : Catalog.t;
  mgr : Txn.Manager.t;
  pool : Storage.Buffer_pool.t;
  meter : Meter.t;
  snapshot : Txn.Snapshot.t;
  xid : int option;  (** current transaction for writes / own-write reads *)
  vis : (int -> Txn.Manager.status) option;
      (** visibility override for distributed snapshot reads: replaces
          [Txn.Manager.status] in tuple-visibility checks (it may raise
          [Txn.Manager.In_doubt]); [None] = plain latest MVCC *)
  env : Expr_eval.env;
}

exception Exec_error of string

exception Would_block of int list  (** xids holding conflicting locks *)

(** Column names and rows of a SELECT. *)
val run_select : ctx -> Sqlfront.Ast.select -> string list * Datum.t array list

(** Row-returning DML; all return the number of affected rows and require
    [ctx.xid = Some _]. *)
val run_insert :
  ctx ->
  table:string ->
  columns:string list option ->
  source:Sqlfront.Ast.insert_source ->
  on_conflict_do_nothing:bool ->
  int

val run_update :
  ctx ->
  table:string ->
  sets:(string * Sqlfront.Ast.expr) list ->
  where:Sqlfront.Ast.expr option ->
  int

val run_delete : ctx -> table:string -> where:Sqlfront.Ast.expr option -> int

(** Insert pre-built rows (COPY and replication paths); applies defaults,
    casts, PK checks and index maintenance like a VALUES insert. *)
val insert_rows :
  ctx -> table:Catalog.table -> Datum.t array list -> on_conflict_do_nothing:bool -> int

(** Index maintenance for a single tuple (used by the vacuum path and by
    replication-style row application that bypasses SQL). *)
val index_insert : ctx -> Catalog.table -> int -> Datum.t array -> unit

val index_remove : ctx -> Catalog.table -> int -> Datum.t array -> unit

(** Schema of a base table as the executor exposes it to expressions. *)
val table_schema : alias:string option -> Catalog.table -> Expr_eval.schema
