open Sqlfront

type result = {
  columns : string list;
  rows : Datum.t array list;
  affected : int;
  tag : string;
}

exception Session_error of string

type t = {
  node_name : string;
  catalog : Catalog.t;
  mgr : Txn.Manager.t;
  pool : Storage.Buffer_pool.t;
  meter : Meter.t;
  rng : Random.State.t;
  obs : Obs.t option;  (** shared cluster observability context *)
  mutable clock : float;
  mutable next_session : int;
  mutable epoch : int;  (** bumped on crash: sessions from older epochs are dead *)
  hooks : hooks;
}

and hooks = {
  mutable planner_hook : (session -> Ast.statement -> result option) option;
  mutable utility_hook : (session -> Ast.statement -> result option) option;
  mutable copy_hook :
    (session ->
    table:string ->
    columns:string list option ->
    string list ->
    int option)
    option;
  mutable pre_commit : (session -> unit) list;
  mutable post_commit : (session -> unit) list;
  mutable abort_cbs : (session -> unit) list;
  mutable maintenance : (t -> unit) list;
  udfs : (string, session -> Datum.t list -> Datum.t) Hashtbl.t;
}

and session = {
  inst : t;
  sid : int;
  sess_epoch : int;  (** instance epoch at connect time *)
  mutable xid : int option;
  mutable explicit_block : bool;
  mutable failed : bool;  (** aborted block awaiting ROLLBACK *)
  mutable read_mode : Txn.Snapshot.read_mode;
      (** distributed visibility for reads in this session (set per
          statement by the cluster layer; [Latest] = plain MVCC) *)
  mutable pending_commit_ts : Txn.Hlc.timestamp option;
      (** coordinator-assigned commit timestamp for the next
          COMMIT PREPARED on this session (out-of-band 2PC channel) *)
  prepared : (string, Ast.statement) Hashtbl.t;
      (** session-scoped PREPARE registry: name -> shape with [$n]
          placeholders unbound (PostgreSQL prepared statements) *)
}

let err fmt = Printf.ksprintf (fun m -> raise (Session_error m)) fmt

let create ?(seed = 42) ?(buffer_pages = 100_000) ?obs ~name () =
  let meter = Meter.create () in
  (* Fold this node's work counters into the cluster metrics registry:
     they keep their compact record form here and appear as
     engine.<node>.<field> in every snapshot. *)
  (match obs with
   | Some (o : Obs.t) ->
     Obs.Metrics.register_probe o.Obs.metrics (Obs.Metric_names.engine_probe name) (fun () ->
         Meter.to_assoc (Meter.read meter))
   | None -> ());
  {
    node_name = name;
    catalog = Catalog.create ();
    mgr = Txn.Manager.create ();
    pool = Storage.Buffer_pool.create ~capacity:buffer_pages;
    meter;
    rng = Random.State.make [| seed |];
    obs;
    clock = 0.0;
    next_session = 1;
    epoch = 0;
    hooks =
      {
        planner_hook = None;
        utility_hook = None;
        copy_hook = None;
        pre_commit = [];
        post_commit = [];
        abort_cbs = [];
        maintenance = [];
        udfs = Hashtbl.create 16;
      };
  }

let name t = t.node_name
let catalog t = t.catalog
let txn_manager t = t.mgr
let buffer_pool t = t.pool
let meter t = t.meter
let now t = t.clock
let set_now t f = t.clock <- f

let connect t =
  let sid = t.next_session in
  t.next_session <- sid + 1;
  {
    inst = t;
    sid;
    sess_epoch = t.epoch;
    xid = None;
    explicit_block = false;
    failed = false;
    read_mode = Txn.Snapshot.Latest;
    pending_commit_ts = None;
    prepared = Hashtbl.create 4;
  }

let session_instance s = s.inst
let session_id s = s.sid
let session_alive s = s.sess_epoch = s.inst.epoch
let in_transaction s = s.explicit_block
let current_xid s = s.xid
let set_read_mode s m = s.read_mode <- m
let read_mode s = s.read_mode
let set_pending_commit_ts s ts = s.pending_commit_ts <- ts
let set_hlc t hlc = Txn.Manager.set_hlc t.mgr hlc

(* --- executor context --- *)

let make_ctx (s : session) : Executor.ctx =
  let t = s.inst in
  (* The xid snapshot always governs local concurrency; the [vis]
     override layers distributed visibility on top (commit timestamps,
     in-doubt blocking). [version_visible] consults status before the
     snapshot, so In_doubt fires before a prepared xid could be
     silently skipped. *)
  let vis =
    match s.read_mode with
    | Txn.Snapshot.Latest -> None
    | Txn.Snapshot.Resolving -> Some (Txn.Manager.status_resolving t.mgr)
    | Txn.Snapshot.At ts -> Some (fun xid -> Txn.Manager.status_at t.mgr ~ts xid)
  in
  let rec ctx =
    {
      Executor.catalog = t.catalog;
      mgr = t.mgr;
      pool = t.pool;
      meter = t.meter;
      snapshot = Txn.Manager.take_snapshot t.mgr;
      xid = s.xid;
      vis;
      env =
        {
          Expr_eval.rng = t.rng;
          now = t.clock;
          subquery = (fun sel -> snd (Executor.run_select ctx sel));
        };
    }
  in
  ctx


(* --- transaction lifecycle --- *)

let ensure_txn s =
  match s.xid with
  | Some x ->
    (* the deadlock detector may have aborted us underneath *)
    if not (Txn.Manager.is_active s.inst.mgr x) then begin
      s.xid <- None;
      s.explicit_block <- false;
      s.failed <- false;
      List.iter (fun cb -> cb s) s.inst.hooks.abort_cbs;
      err "current transaction was aborted (deadlock or external abort)"
    end;
    x
  | None ->
    let x = Txn.Manager.begin_txn s.inst.mgr in
    s.xid <- Some x;
    x

let do_commit s =
  match s.xid with
  | None -> ()
  | Some x ->
    if Txn.Manager.is_active s.inst.mgr x then begin
      List.iter (fun cb -> cb s) s.inst.hooks.pre_commit;
      Txn.Manager.commit s.inst.mgr x;
      s.xid <- None;
      s.explicit_block <- false;
      List.iter (fun cb -> cb s) s.inst.hooks.post_commit
    end
    else begin
      s.xid <- None;
      s.explicit_block <- false
    end

let do_abort s =
  (match s.xid with
   | Some x when Txn.Manager.is_active s.inst.mgr x ->
     Txn.Manager.abort s.inst.mgr x
   | _ -> ());
  s.xid <- None;
  s.explicit_block <- false;
  s.failed <- false;
  List.iter (fun cb -> cb s) s.inst.hooks.abort_cbs

let ok_result tag = { columns = []; rows = []; affected = 0; tag }

(* --- COPY --- *)

let split_tab line = String.split_on_char '\t' line

let copy_rows_of_lines (table : Catalog.table) columns lines =
  let tys = Catalog.column_tys table in
  let positions =
    match columns with
    | None -> List.init (List.length table.columns) Fun.id
    | Some cols -> List.map (Catalog.column_index table) cols
  in
  List.map
    (fun line ->
      let fields = split_tab line in
      if List.length fields <> List.length positions then
        err "COPY row has %d fields, expected %d" (List.length fields)
          (List.length positions);
      let row = Array.make (List.length table.columns) Datum.Null in
      List.iter2
        (fun pos field ->
          row.(pos) <-
            (try Datum.of_csv_field tys.(pos) field
             with Datum.Cast_error m -> err "COPY: %s" m))
        positions fields;
      row)
    lines

let copy_in_local s ~table ~columns lines =
  let t = s.inst in
  let tbl =
    match Catalog.find_table_opt t.catalog table with
    | Some tbl -> tbl
    | None -> err "relation %s does not exist" table
  in
  Meter.add_copy_rows t.meter (List.length lines);
  let rows = copy_rows_of_lines tbl columns lines in
  let ctx = make_ctx s in
  Executor.insert_rows ctx ~table:tbl rows ~on_conflict_do_nothing:false

(* --- DDL --- *)

let auto_pk_index (t : t) (table : Catalog.table) =
  match table.primary_key, table.store with
  | [], _ | _, Catalog.Columnar_store _ -> ()
  | pk, Catalog.Heap_store _ ->
    let idx =
      {
        Catalog.idx_name = table.tbl_name ^ "_pkey";
        idx_table = table.tbl_name;
        kind =
          Catalog.Btree_index
            {
              columns = pk;
              tree = Storage.Btree.create ~name:(table.tbl_name ^ "_pkey") ();
            };
      }
    in
    Catalog.add_index t.catalog table idx

let build_index_on_existing s (table : Catalog.table) (idx : Catalog.index) =
  (* index creation scans the current contents *)
  match table.store with
  | Catalog.Columnar_store _ -> err "indexes on columnar tables are not supported"
  | Catalog.Heap_store heap ->
    let ctx = make_ctx s in
    let schema = Executor.table_schema ~alias:None table in
    Storage.Heap.scan heap
      ~status:(Txn.Manager.status s.inst.mgr)
      ~snapshot:ctx.Executor.snapshot ~my_xid:ctx.Executor.xid
      ~f:(fun tid row ->
        match idx.kind with
        | Catalog.Btree_index { columns; tree } ->
          let key =
            Array.of_list
              (List.map (fun c -> row.(Catalog.column_index table c)) columns)
          in
          Storage.Btree.insert tree key tid
        | Catalog.Gin_index { expr; gin } ->
          let v = Expr_eval.compile schema ctx.Executor.env expr row in
          (match v with
           | Datum.Null -> ()
           | v -> ignore (Storage.Gin.add gin ~tid (Datum.to_display v))))

let rec exec_utility s (stmt : Ast.statement) : result =
  let t = s.inst in
  let ctx () = make_ctx s in
  match stmt with
  | Ast.Create_table { name; columns; primary_key; if_not_exists; using_columnar }
    ->
    (match Catalog.find_table_opt t.catalog name with
     | Some _ when if_not_exists -> ok_result "CREATE TABLE"
     | Some _ -> err "relation %s already exists" name
     | None ->
       ignore (ensure_txn s);
       let table =
         Catalog.add_table t.catalog ~name ~columns ~primary_key
           ~columnar:using_columnar
       in
       auto_pk_index t table;
       ok_result "CREATE TABLE")
  | Ast.Create_index { name; table; using; key_columns; key_expr; if_not_exists }
    ->
    let tbl =
      match Catalog.find_table_opt t.catalog table with
      | Some tbl -> tbl
      | None -> err "relation %s does not exist" table
    in
    let exists =
      List.exists (fun (i : Catalog.index) -> i.idx_name = name) tbl.indexes
    in
    if exists then
      if if_not_exists then ok_result "CREATE INDEX"
      else err "index %s already exists" name
    else begin
      ignore (ensure_txn s);
      (match
         Txn.Lock.acquire (Txn.Manager.locks t.mgr)
           ~owner:(Option.get s.xid) (Txn.Lock.Table table)
           Txn.Lock.Access_exclusive
       with
       | Txn.Lock.Granted -> ()
       | Txn.Lock.Blocked holders -> raise (Executor.Would_block holders));
      let kind =
        match using, key_expr with
        | Ast.Gin_trgm, Some expr ->
          Catalog.Gin_index { expr; gin = Storage.Gin.create ~name () }
        | Ast.Gin_trgm, None -> err "GIN index needs an expression key"
        | Ast.Btree, _ ->
          Catalog.Btree_index
            { columns = key_columns; tree = Storage.Btree.create ~name () }
      in
      let idx = { Catalog.idx_name = name; idx_table = table; kind } in
      build_index_on_existing s tbl idx;
      Catalog.add_index t.catalog tbl idx;
      ok_result "CREATE INDEX"
    end
  | Ast.Drop_table { name; if_exists } ->
    (match Catalog.find_table_opt t.catalog name with
     | None when if_exists -> ok_result "DROP TABLE"
     | None -> err "relation %s does not exist" name
     | Some _ ->
       Catalog.drop_table t.catalog name;
       ok_result "DROP TABLE")
  | Ast.Alter_table_add_column { table; column } ->
    let tbl =
      match Catalog.find_table_opt t.catalog table with
      | Some tbl -> tbl
      | None -> err "relation %s does not exist" table
    in
    let default_value =
      match column.col_default with
      | Some e -> Expr_eval.compile [] (ctx ()).Executor.env e [||]
      | None -> Datum.Null
    in
    Catalog.add_column tbl column;
    (match tbl.store with
     | Catalog.Heap_store heap ->
       Storage.Heap.transform heap (fun row ->
           Array.append row [| default_value |])
     | Catalog.Columnar_store _ ->
       err "ALTER on columnar tables is not supported");
    ok_result "ALTER TABLE"
  | Ast.Truncate tables ->
    ignore (ensure_txn s);
    List.iter
      (fun name ->
        let tbl =
          match Catalog.find_table_opt t.catalog name with
          | Some tbl -> tbl
          | None -> err "relation %s does not exist" name
        in
        (match
           Txn.Lock.acquire (Txn.Manager.locks t.mgr)
             ~owner:(Option.get s.xid) (Txn.Lock.Table name)
             Txn.Lock.Access_exclusive
         with
         | Txn.Lock.Granted -> ()
         | Txn.Lock.Blocked holders -> raise (Executor.Would_block holders));
        (match tbl.store with
         | Catalog.Heap_store h ->
           ignore
             (Txn.Wal.append (Txn.Manager.wal t.mgr) (Txn.Wal.Truncate name));
           Storage.Heap.clear h
         | Catalog.Columnar_store c -> Storage.Columnar.clear c);
        List.iter
          (fun (idx : Catalog.index) ->
            match idx.kind with
            | Catalog.Btree_index { tree; _ } -> Storage.Btree.clear tree
            | Catalog.Gin_index { gin; _ } -> Storage.Gin.clear gin)
          tbl.indexes)
      tables;
    ok_result "TRUNCATE"
  | Ast.Vacuum target ->
    let names =
      match target with
      | Some n -> [ n ]
      | None -> Catalog.table_names t.catalog
    in
    let vacuumed = List.fold_left (fun acc n -> acc + vacuum_table t n) 0 names in
    { (ok_result "VACUUM") with affected = vacuumed }
  | _ -> err "not a utility statement"

and vacuum_table t name =
  match Catalog.find_table_opt t.catalog name with
  | None -> 0
  | Some table ->
    (match table.store with
     | Catalog.Columnar_store _ -> 0
     | Catalog.Heap_store heap ->
       (* internal session for index maintenance expressions *)
       let s = connect t in
       let ctx = make_ctx s in
       let reclaimed =
         Storage.Heap.vacuum heap
           ~on_reclaim:(fun tid row -> Executor.index_remove ctx table tid row)
           ~oldest:(Txn.Manager.oldest_active_xid t.mgr)
           ~status:(Txn.Manager.status t.mgr)
       in
       reclaimed)

(* --- statement dispatch --- *)

let is_utility = function
  | Ast.Create_table _ | Ast.Create_index _ | Ast.Drop_table _
  | Ast.Alter_table_add_column _ | Ast.Truncate _ | Ast.Vacuum _ ->
    true
  | _ -> false

(* SELECT udf(...) with no FROM — the extension UDF calling convention. *)
let udf_call (t : t) (stmt : Ast.statement) =
  match stmt with
  | Ast.Select_stmt
      {
        projections = [ Ast.Proj (Ast.Func (name, args), _) ];
        from = [];
        where = None;
        group_by = [];
        having = None;
        order_by = [];
        limit = None;
        offset = None;
        distinct = false;
      }
    -> (
    match Hashtbl.find_opt t.hooks.udfs name with
    | Some udf -> Some (name, udf, args)
    | None -> None)
  | _ -> None

(* Statement cost classes: transaction control is nearly free, the 2PC
   verbs pay for durable transaction state, and anything a hook routes
   elsewhere only costs parse + shard pruning locally. *)
let charge_statement (s : session) (stmt : Ast.statement) =
  let t = s.inst in
  match stmt with
  | Ast.Begin_txn | Ast.Commit_txn | Ast.Rollback_txn
  | Ast.Prepare_stmt _ | Ast.Deallocate_stmt _ ->
    Meter.add_light_statement t.meter
  | Ast.Prepare_transaction _ | Ast.Commit_prepared _ | Ast.Rollback_prepared _
    ->
    Meter.add_twopc_statement t.meter
  | _ -> ()

(* --- prepared statements (session-scoped, PostgreSQL semantics) --- *)

let preparable = function
  | Ast.Select_stmt _ | Ast.Insert _ | Ast.Update _ | Ast.Delete _ | Ast.Call _
    ->
    true
  | _ -> false

let prepare_statement (s : session) ~name (stmt : Ast.statement) =
  if Hashtbl.mem s.prepared name then
    err "prepared statement %s already exists" name;
  if not (preparable stmt) then
    err "PREPARE supports SELECT, INSERT, UPDATE, DELETE and CALL statements";
  Hashtbl.replace s.prepared name stmt

let deallocate_statement (s : session) = function
  | None -> Hashtbl.reset s.prepared
  | Some name ->
    if not (Hashtbl.mem s.prepared name) then
      err "prepared statement %s does not exist" name;
    Hashtbl.remove s.prepared name

let prepared_lookup (s : session) name = Hashtbl.find_opt s.prepared name

let prepared_names (s : session) =
  List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) s.prepared [])

(* Resolve EXECUTE to the stored shape plus evaluated argument datums.
   Hooks call this too, so name resolution and argument evaluation have
   exactly one implementation. *)
let resolve_execute (s : session) ~name ~(args : Ast.expr list) :
    Ast.statement * Datum.t list =
  let stmt =
    match prepared_lookup s name with
    | Some stmt -> stmt
    | None -> err "prepared statement %s does not exist" name
  in
  let values =
    List.map
      (function
        | Ast.Const d -> d
        | e ->
          (* arbitrary constant expressions: evaluate against an empty row *)
          let env =
            {
              Expr_eval.rng = s.inst.rng;
              now = s.inst.clock;
              subquery =
                (fun _ -> err "EXECUTE arguments cannot contain subqueries");
            }
          in
          Expr_eval.compile [] env e [||])
      args
  in
  (stmt, values)

let rec exec_ast_unspanned (s : session) (stmt : Ast.statement) : result =
  let t = s.inst in
  ignore t;
  if not (session_alive s) then
    err "session %d on %s died with the node" s.sid t.node_name;
  charge_statement s stmt;
  if s.failed then begin
    match stmt with
    | Ast.Rollback_txn | Ast.Commit_txn ->
      do_abort s;
      ok_result "ROLLBACK"
    | _ -> err "current transaction is aborted, commands ignored until ROLLBACK"
  end
  else
    match stmt with
    | Ast.Begin_txn ->
      if s.explicit_block then err "already in a transaction block";
      ignore (ensure_txn s);
      s.explicit_block <- true;
      ok_result "BEGIN"
    | Ast.Commit_txn ->
      do_commit s;
      ok_result "COMMIT"
    | Ast.Rollback_txn ->
      do_abort s;
      ok_result "ROLLBACK"
    | Ast.Prepare_transaction gid ->
      (match s.xid with
       | None -> err "PREPARE TRANSACTION requires a transaction block"
       | Some x ->
         Txn.Manager.prepare t.mgr x ~gid;
         s.xid <- None;
         s.explicit_block <- false;
         ok_result "PREPARE TRANSACTION")
    | Ast.Commit_prepared gid ->
      (try
         let ts = s.pending_commit_ts in
         s.pending_commit_ts <- None;
         Txn.Manager.commit_prepared ?ts t.mgr ~gid;
         ok_result "COMMIT PREPARED"
       with Txn.Manager.No_such_prepared g ->
         err "prepared transaction %s does not exist" g)
    | Ast.Rollback_prepared gid ->
      (try
         Txn.Manager.rollback_prepared t.mgr ~gid;
         ok_result "ROLLBACK PREPARED"
       with Txn.Manager.No_such_prepared g ->
         err "prepared transaction %s does not exist" g)
    | Ast.Copy_from { table; columns } ->
      ignore table;
      ignore columns;
      err "COPY FROM STDIN requires copy_in with data"
    | Ast.Prepare_stmt { pname; pstmt } ->
      prepare_statement s ~name:pname pstmt;
      ok_result "PREPARE"
    | Ast.Deallocate_stmt target ->
      deallocate_statement s target;
      ok_result "DEALLOCATE"
    | stmt -> exec_data_stmt s stmt

and exec_data_stmt s stmt =
  let t = s.inst in
  let run () =
    (* UDF interception first: SELECT create_distributed_table(...) *)
    match udf_call t stmt with
    | Some (name, f, args) ->
      Meter.add_statement t.meter;
      ignore (ensure_txn s);
      let ctx = make_ctx s in
      let values =
        List.map (fun e -> Expr_eval.compile [] ctx.Executor.env e [||]) args
      in
      let v = f s values in
      { columns = [ name ]; rows = [ [| v |] ]; affected = 0; tag = "SELECT" }
    | None ->
      if is_utility stmt then begin
        Meter.add_statement t.meter;
        match t.hooks.utility_hook with
        | Some hook ->
          (match hook s stmt with
           | Some r -> r
           | None -> exec_utility s stmt)
        | None -> exec_utility s stmt
      end
      else begin
        (* planner hook; a routed statement only costs the local node its
           parse + shard pruning, the target executes it in full *)
        ignore (ensure_txn s);
        match t.hooks.planner_hook with
        | Some hook ->
          (match hook s stmt with
           | Some r ->
             (match stmt with
              | Ast.Execute_stmt _ ->
                (* the plan-cache dispatch meters itself: a cache hit
                   charges a bound execute, a build/bypass a routed
                   statement *)
                ()
              | _ -> Meter.add_routed_statement t.meter);
             r
           | None ->
             (match stmt with
              | Ast.Execute_stmt _ ->
                (* no parse either way: the AST was stored at PREPARE *)
                Meter.add_light_statement t.meter
              | _ -> Meter.add_statement t.meter);
             exec_builtin s stmt)
        | None ->
          (match stmt with
           | Ast.Execute_stmt _ -> Meter.add_light_statement t.meter
           | _ -> Meter.add_statement t.meter);
          exec_builtin s stmt
      end
  in
  try
    let r = run () in
    if not s.explicit_block then do_commit s;
    r
  with
  | Executor.Would_block _ as e ->
    (* statement can be retried; transaction stays open *)
    raise e
  | Txn.Manager.In_doubt _ as e ->
    (* the read hit a prepared distributed transaction it cannot decide
       about; like Would_block, the caller resolves and retries — the
       transaction stays open *)
    raise e
  | Executor.Exec_error m | Expr_eval.Eval_error m | Session_error m ->
    if s.explicit_block then begin
      s.failed <- true;
      raise (Session_error m)
    end
    else begin
      do_abort s;
      raise (Session_error m)
    end
  | Catalog.No_such_table n ->
    let m = Printf.sprintf "relation %s does not exist" n in
    if s.explicit_block then begin
      s.failed <- true;
      raise (Session_error m)
    end
    else begin
      do_abort s;
      raise (Session_error m)
    end

and exec_builtin s stmt : result =
  let ctx = make_ctx s in
  match stmt with
  | Ast.Select_stmt sel ->
    let columns, rows = Executor.run_select ctx sel in
    { columns; rows; affected = List.length rows; tag = "SELECT" }
  | Ast.Insert { table; columns; source; on_conflict_do_nothing } ->
    let n = Executor.run_insert ctx ~table ~columns ~source ~on_conflict_do_nothing in
    { columns = []; rows = []; affected = n; tag = "INSERT" }
  | Ast.Update { table; sets; where } ->
    let n = Executor.run_update ctx ~table ~sets ~where in
    { columns = []; rows = []; affected = n; tag = "UPDATE" }
  | Ast.Delete { table; where } ->
    let n = Executor.run_delete ctx ~table ~where in
    { columns = []; rows = []; affected = n; tag = "DELETE" }
  | Ast.Call { proc; args } ->
    (* stored procedures are registered as UDFs; CALL is an alternative
       calling convention for them *)
    let t = s.inst in
    (match Hashtbl.find_opt t.hooks.udfs proc with
     | Some f ->
       let values =
         List.map (fun e -> Expr_eval.compile [] ctx.Executor.env e [||]) args
       in
       ignore (f s values);
       ok_result "CALL"
     | None -> err "procedure %s does not exist" proc)
  | Ast.Execute_stmt { ename; eargs } ->
    (* no extension hook claimed it: bind and run the shape locally *)
    let shape, values = resolve_execute s ~name:ename ~args:eargs in
    let bound =
      try Ast.bind_params values shape
      with Ast.Unbound_param i ->
        err "no value for parameter $%d in prepared statement %s" i ename
    in
    exec_builtin s bound
  | _ -> err "unsupported statement"

let exec_utility_local s stmt = exec_utility s stmt

let stmt_kind : Ast.statement -> string = function
  | Ast.Select_stmt _ -> "select"
  | Ast.Insert _ -> "insert"
  | Ast.Update _ -> "update"
  | Ast.Delete _ -> "delete"
  | Ast.Call _ -> "call"
  | Ast.Begin_txn -> "begin"
  | Ast.Commit_txn -> "commit"
  | Ast.Rollback_txn -> "rollback"
  | Ast.Prepare_transaction _ -> "prepare_transaction"
  | Ast.Commit_prepared _ -> "commit_prepared"
  | Ast.Rollback_prepared _ -> "rollback_prepared"
  | Ast.Copy_from _ -> "copy"
  | Ast.Create_table _ -> "create_table"
  | Ast.Create_index _ -> "create_index"
  | Ast.Drop_table _ -> "drop_table"
  | Ast.Alter_table_add_column _ -> "alter_table"
  | Ast.Truncate _ -> "truncate"
  | Ast.Vacuum _ -> "vacuum"
  | Ast.Prepare_stmt _ -> "prepare"
  | Ast.Execute_stmt _ -> "execute"
  | Ast.Deallocate_stmt _ -> "deallocate"

(* Every statement an instance executes — coordinator or worker, client-
   or extension-issued — nests under the shared trace stack. One branch
   when tracing is off. *)
let exec_ast (s : session) (stmt : Ast.statement) : result =
  match s.inst.obs with
  | None -> exec_ast_unspanned s stmt
  | Some o ->
    Obs.Trace.with_span o.Obs.trace
      ~now:(fun () -> s.inst.clock)
      ~node:s.inst.node_name ~kind:"statement"
      ~tags:[ ("stmt", stmt_kind stmt) ]
      (fun _sp -> exec_ast_unspanned s stmt)

let exec s sql = exec_ast s (Parser.parse_statement sql)

let exec_params s sql params =
  let stmt = Parser.parse_statement sql in
  match Ast.bind_params params stmt with
  | bound -> exec_ast s bound
  | exception Ast.Unbound_param i -> err "no value for parameter $%d" i

let copy_in s ~table ~columns lines =
  let t = s.inst in
  if not (session_alive s) then
    err "session %d on %s died with the node" s.sid t.node_name;
  ignore (ensure_txn s);
  let handled =
    match t.hooks.copy_hook with
    | Some hook -> hook s ~table ~columns lines
    | None -> None
  in
  let n =
    match handled with
    | Some n -> n
    | None -> copy_in_local s ~table ~columns lines
  in
  if not s.explicit_block then do_commit s;
  n

(* --- hooks registration --- *)

let set_planner_hook t f = t.hooks.planner_hook <- Some f
let set_utility_hook t f = t.hooks.utility_hook <- Some f
let set_copy_hook t f = t.hooks.copy_hook <- Some f
let register_udf t name f = Hashtbl.replace t.hooks.udfs name f
let on_pre_commit t f = t.hooks.pre_commit <- t.hooks.pre_commit @ [ f ]
let on_post_commit t f = t.hooks.post_commit <- t.hooks.post_commit @ [ f ]
let on_abort t f = t.hooks.abort_cbs <- t.hooks.abort_cbs @ [ f ]
let add_maintenance t f = t.hooks.maintenance <- t.hooks.maintenance @ [ f ]

(* --- maintenance --- *)

let autovacuum_threshold = 50

let maintenance_tick t =
  (match t.obs with
   | Some o -> Obs.Metrics.inc o.Obs.metrics Obs.Metric_names.engine_maintenance_ticks
   | None -> ());
  (* 1. local deadlock detection: abort the youngest transaction in a cycle *)
  (match Txn.Lock.detect_deadlock (Txn.Manager.locks t.mgr) with
   | Some members ->
     let youngest = List.fold_left max 0 members in
     if Txn.Manager.is_active t.mgr youngest then
       Txn.Manager.abort t.mgr youngest
   | None -> ());
  (* 2. autovacuum *)
  List.iter
    (fun name ->
      match Catalog.find_table_opt t.catalog name with
      | Some { store = Catalog.Heap_store heap; _ }
        when Storage.Heap.dead_estimate heap > autovacuum_threshold ->
        ignore (vacuum_table t name)
      | _ -> ())
    (Catalog.table_names t.catalog);
  (* 3. registered daemons (Citus: 2PC recovery, distributed deadlocks) *)
  List.iter (fun f -> f t) t.hooks.maintenance

let create_restore_point t name =
  ignore (Txn.Wal.append (Txn.Manager.wal t.mgr) (Txn.Wal.Restore_point name))

(* --- crash / recovery --- *)

let crash t = t.epoch <- t.epoch + 1

let abort_session s =
  (* Server-side abort: the client vanished (e.g. the coordinator crashed
     mid-transaction), so the node rolls the open transaction back exactly
     as PostgreSQL does when a backend loses its socket. *)
  if session_alive s then do_abort s

(* Replay rows logged before an ALTER TABLE ADD COLUMN are shorter than
   the current schema; pad with NULLs (the engine logs rows as they were
   at write time, and ALTER's backfill is a heap rewrite that is not
   itself WAL-logged in this model). *)
let pad_row (table : Catalog.table) row =
  let want = List.length table.columns in
  let have = Array.length row in
  if have >= want then row
  else Array.append row (Array.make (want - have) Datum.Null)

let recover_from_wal t =
  (* 1. transaction state (clog / prepared / locks) from the WAL *)
  Txn.Manager.crash_recover t.mgr;
  (* 2. wipe volatile storage. Heap contents are rebuilt from the log;
     columnar stores model immutable stripes flushed straight to disk
     (§2.5), so they are treated as durable and left intact. *)
  List.iter
    (fun name ->
      match Catalog.find_table_opt t.catalog name with
      | Some { store = Catalog.Heap_store heap; _ } -> Storage.Heap.clear heap
      | Some { store = Catalog.Columnar_store _; _ } | None -> ())
    (Catalog.table_names t.catalog);
  List.iter
    (fun name ->
      match Catalog.find_table_opt t.catalog name with
      | Some tbl ->
        List.iter
          (fun (idx : Catalog.index) ->
            match idx.kind with
            | Catalog.Btree_index { tree; _ } -> Storage.Btree.clear tree
            | Catalog.Gin_index { gin; _ } -> Storage.Gin.clear gin)
          tbl.indexes
      | None -> ())
    (Catalog.table_names t.catalog);
  (* 3. redo pass: reapply every logged heap change at its original tid
     (tids must be stable because later records and index entries refer
     to them). Visibility still comes from the rebuilt clog, so rows from
     crashed transactions replay but read as aborted. *)
  let heap_of table_name =
    match Catalog.find_table_opt t.catalog table_name with
    | Some ({ store = Catalog.Heap_store heap; _ } as tbl) -> Some (tbl, heap)
    | Some { store = Catalog.Columnar_store _; _ } | None -> None
  in
  List.iter
    (fun (_, record) ->
      match record with
      | Txn.Wal.Insert { xid; table; tid; row } ->
        (match heap_of table with
         | Some (tbl, heap) ->
           Storage.Heap.insert_at heap ~tid ~xid (pad_row tbl row)
         | None -> ())
      | Txn.Wal.Update { xid; table; old_tid; new_tid; row } ->
        (match heap_of table with
         | Some (tbl, heap) ->
           Storage.Heap.insert_at heap ~tid:new_tid ~xid (pad_row tbl row);
           ignore (Storage.Heap.delete heap ~xid ~tid:old_tid)
         | None -> ())
      | Txn.Wal.Delete { xid; table; tid } ->
        (match heap_of table with
         | Some (_, heap) -> ignore (Storage.Heap.delete heap ~xid ~tid)
         | None -> ())
      | Txn.Wal.Truncate table ->
        (match heap_of table with
         | Some (tbl, heap) ->
           Storage.Heap.clear heap;
           List.iter
             (fun (idx : Catalog.index) ->
               match idx.kind with
               | Catalog.Btree_index { tree; _ } -> Storage.Btree.clear tree
               | Catalog.Gin_index { gin; _ } -> Storage.Gin.clear gin)
             tbl.indexes
         | None -> ())
      | Txn.Wal.Begin _ | Txn.Wal.Commit _ | Txn.Wal.Abort _
      | Txn.Wal.Prepare _ | Txn.Wal.Commit_prepared _
      | Txn.Wal.Rollback_prepared _ | Txn.Wal.Commit_ts _
      | Txn.Wal.Restore_point _ | Txn.Wal.Checkpoint -> ())
    (Txn.Wal.records (Txn.Manager.wal t.mgr));
  (* 3b. re-acquire the locks of recovered prepared transactions, as
     PostgreSQL does from its two-phase state files. [crash_recover]
     reset the lock table, but an in-doubt transaction is still live: its
     locks must keep blocking writers until COMMIT/ROLLBACK PREPARED, or
     a post-restart update could overwrite its xmax stamps and split a
     logical row in two when the recovery daemon commits it. The WAL
     records of each still-prepared xid name exactly the tables and tids
     it wrote. Fresh off a reset, every acquisition is granted. *)
  let still_prepared =
    let tbl = Hashtbl.create 8 in
    List.iter
      (fun (_gid, xid) -> Hashtbl.replace tbl xid ())
      (Txn.Manager.prepared_transactions t.mgr);
    tbl
  in
  if Hashtbl.length still_prepared > 0 then begin
    let locks = Txn.Manager.locks t.mgr in
    let relock ~owner table tids =
      (* on a freshly reset lock table these are all granted: row locks
         of distinct prepared transactions never overlap (the lock they
         held before the crash kept their write sets disjoint), and
         Row_exclusive table locks do not conflict with each other *)
      (match
         Txn.Lock.acquire locks ~owner (Txn.Lock.Table table)
           Txn.Lock.Row_exclusive
       with
      | Txn.Lock.Granted -> ()
      | Txn.Lock.Blocked _ -> assert false);
      List.iter
        (fun tid ->
          match
            Txn.Lock.acquire locks ~owner
              (Txn.Lock.Row (table, tid))
              Txn.Lock.Row_lock
          with
          | Txn.Lock.Granted -> ()
          | Txn.Lock.Blocked _ ->
            (* both versions of one row rewritten by the same prepared
               transaction land here twice; re-granting to the same
               owner is idempotent, anything else is impossible on a
               reset lock table *)
            assert false)
        tids
    in
    List.iter
      (fun (_, record) ->
        match record with
        | Txn.Wal.Insert { xid; table; tid; _ }
          when Hashtbl.mem still_prepared xid -> relock ~owner:xid table [ tid ]
        | Txn.Wal.Update { xid; table; old_tid; new_tid; _ }
          when Hashtbl.mem still_prepared xid ->
          relock ~owner:xid table [ old_tid; new_tid ]
        | Txn.Wal.Delete { xid; table; tid }
          when Hashtbl.mem still_prepared xid -> relock ~owner:xid table [ tid ]
        | _ -> ())
      (Txn.Wal.records (Txn.Manager.wal t.mgr))
  end;
  (* 4. rebuild indexes over the recovered heaps (all physical versions,
     as in normal operation; vacuum prunes entries for dead ones later) *)
  let s = connect t in
  let ctx = make_ctx s in
  List.iter
    (fun name ->
      match Catalog.find_table_opt t.catalog name with
      | Some ({ store = Catalog.Heap_store heap; _ } as tbl)
        when tbl.indexes <> [] ->
        Storage.Heap.scan_physical heap ~f:(fun tid _hdr row ->
            Executor.index_insert ctx tbl tid row)
      | _ -> ())
    (Catalog.table_names t.catalog);
  (* 5. cold caches *)
  Storage.Buffer_pool.clear t.pool

let restart t =
  crash t;
  recover_from_wal t
