type snapshot = {
  rows_scanned : int;
  rows_written : int;
  index_probes : int;
  index_updates : int;
  rows_sorted : int;
  rows_aggregated : int;
  statements : int;
  light_statements : int;
  routed_statements : int;
  bound_executes : int;
  twopc_statements : int;
  copy_rows : int;
  merge_rows : int;
}

type t = { mutable s : snapshot }

let zero =
  {
    rows_scanned = 0;
    rows_written = 0;
    index_probes = 0;
    index_updates = 0;
    rows_sorted = 0;
    rows_aggregated = 0;
    statements = 0;
    light_statements = 0;
    routed_statements = 0;
    bound_executes = 0;
    twopc_statements = 0;
    copy_rows = 0;
    merge_rows = 0;
  }

let create () = { s = zero }

let read t = t.s

let diff ~after ~before =
  {
    rows_scanned = after.rows_scanned - before.rows_scanned;
    rows_written = after.rows_written - before.rows_written;
    index_probes = after.index_probes - before.index_probes;
    index_updates = after.index_updates - before.index_updates;
    rows_sorted = after.rows_sorted - before.rows_sorted;
    rows_aggregated = after.rows_aggregated - before.rows_aggregated;
    statements = after.statements - before.statements;
    light_statements = after.light_statements - before.light_statements;
    routed_statements = after.routed_statements - before.routed_statements;
    bound_executes = after.bound_executes - before.bound_executes;
    twopc_statements = after.twopc_statements - before.twopc_statements;
    copy_rows = after.copy_rows - before.copy_rows;
    merge_rows = after.merge_rows - before.merge_rows;
  }

let add_scanned t n = t.s <- { t.s with rows_scanned = t.s.rows_scanned + n }
let add_written t n = t.s <- { t.s with rows_written = t.s.rows_written + n }
let add_probe t n = t.s <- { t.s with index_probes = t.s.index_probes + n }

let add_index_update t n =
  t.s <- { t.s with index_updates = t.s.index_updates + n }

let add_sorted t n = t.s <- { t.s with rows_sorted = t.s.rows_sorted + n }

let add_aggregated t n =
  t.s <- { t.s with rows_aggregated = t.s.rows_aggregated + n }

let add_statement t = t.s <- { t.s with statements = t.s.statements + 1 }

let add_light_statement t =
  t.s <- { t.s with light_statements = t.s.light_statements + 1 }

let add_routed_statement t =
  t.s <- { t.s with routed_statements = t.s.routed_statements + 1 }

let add_bound_execute t =
  t.s <- { t.s with bound_executes = t.s.bound_executes + 1 }

let add_twopc_statement t =
  t.s <- { t.s with twopc_statements = t.s.twopc_statements + 1 }
let add_copy_rows t n = t.s <- { t.s with copy_rows = t.s.copy_rows + n }

let add_merge_rows t n = t.s <- { t.s with merge_rows = t.s.merge_rows + n }

(* Stable field order, for folding into the metrics registry. *)
let to_assoc s =
  [
    ("rows_scanned", s.rows_scanned);
    ("rows_written", s.rows_written);
    ("index_probes", s.index_probes);
    ("index_updates", s.index_updates);
    ("rows_sorted", s.rows_sorted);
    ("rows_aggregated", s.rows_aggregated);
    ("statements", s.statements);
    ("light_statements", s.light_statements);
    ("routed_statements", s.routed_statements);
    ("bound_executes", s.bound_executes);
    ("twopc_statements", s.twopc_statements);
    ("copy_rows", s.copy_rows);
    ("merge_rows", s.merge_rows);
  ]

let merge_row_weight = 0.1

(* Abstract CPU weights, calibrated against Sim.Cost.cpu_unit = 20 µs:
   a planned statement costs ~0.4 ms (parse + plan + executor setup), an
   in-memory tuple operation a few µs, a durable row write ~20 µs, a COPY
   line (JSON parse) ~30 µs. Only ratios matter for the reproduced
   shapes. *)
let total_cpu_units s =
  (0.15 *. float_of_int s.rows_scanned)
  +. (1.0 *. float_of_int s.rows_written)
  +. (0.25 *. float_of_int s.index_probes)
  +. (0.5 *. float_of_int s.index_updates)
  +. (0.1 *. float_of_int s.rows_sorted)
  +. (0.15 *. float_of_int s.rows_aggregated)
  +. (20.0 *. float_of_int s.statements)
  +. (2.0 *. float_of_int s.light_statements)
  +. (3.0 *. float_of_int s.routed_statements)
  +. (1.0 *. float_of_int s.bound_executes)
  +. (5.0 *. float_of_int s.twopc_statements)
  +. (1.5 *. float_of_int s.copy_rows)
  +. (merge_row_weight *. float_of_int s.merge_rows)
