(** Per-node work counters.

    The executor reports logical work here; the simulation layer combines
    these with buffer-pool miss counts and connection round trips to compute
    resource demands. Counters are cumulative; callers snapshot and diff. *)

type t

type snapshot = {
  rows_scanned : int;  (** tuples examined by scans *)
  rows_written : int;  (** tuples inserted / deleted / updated *)
  index_probes : int;  (** B-tree / GIN lookups *)
  index_updates : int;  (** index entry insertions/removals *)
  rows_sorted : int;
  rows_aggregated : int;
  statements : int;
  light_statements : int;
      (** BEGIN/COMMIT/ROLLBACK: much cheaper than a planned statement *)
  routed_statements : int;
      (** statements the extension routed elsewhere: the local node only
          paid parse + shard pruning *)
  bound_executes : int;
      (** EXECUTEs of a prepared statement served from the distributed
          plan cache: the local node only paid parameter binding plus a
          hash — no parse, no planning *)
  twopc_statements : int;
      (** PREPARE TRANSACTION / COMMIT PREPARED / ROLLBACK PREPARED:
          moderately expensive (durable transaction state) *)
  copy_rows : int;  (** rows parsed by COPY (coordinator-side CPU) *)
  merge_rows : int;
      (** partial rows materialized + merged by the coordinator's merge
          step — inherently serial (the CustomScan of Figure 5) *)
}

val create : unit -> t

val read : t -> snapshot

val diff : after:snapshot -> before:snapshot -> snapshot

(** Snapshot as (field, value) pairs in stable declaration order — the
    shape the {!Obs.Metrics} registry folds in via a probe. *)
val to_assoc : snapshot -> (string * int) list

val zero : snapshot

val add_scanned : t -> int -> unit

val add_written : t -> int -> unit

val add_probe : t -> int -> unit

val add_index_update : t -> int -> unit

val add_sorted : t -> int -> unit

val add_aggregated : t -> int -> unit

val add_statement : t -> unit

val add_light_statement : t -> unit

val add_routed_statement : t -> unit

val add_bound_execute : t -> unit

val add_twopc_statement : t -> unit

val add_copy_rows : t -> int -> unit

val add_merge_rows : t -> int -> unit

(** CPU units charged per merged row (used by the simulation layer to
    separate the serial merge phase). *)
val merge_row_weight : float

val total_cpu_units : snapshot -> float
(** Weighted sum of counters in abstract CPU units (used by the sim layer;
    weights documented in the implementation). *)
