(* Observability: trace a query through the planner tiers with
   citus_explain(..., 'analyze'), then read the cluster's counters.

     dune exec examples/observability.exe
*)

let () =
  let cluster = Cluster.Topology.create ~workers:2 () in
  let citus = Citus.Api.install ~shard_count:8 cluster in
  let s = Citus.Api.connect citus in
  let exec sql =
    Printf.printf "citus=# %s\n" sql;
    let r = Engine.Instance.exec s sql in
    List.iter
      (fun row ->
        List.iter
          (fun line -> print_endline ("  " ^ line))
          (String.split_on_char '\n'
             (String.concat " | "
                (Array.to_list (Array.map Datum.to_display row)))))
      r.Engine.Instance.rows;
    r
  in
  ignore (exec "CREATE TABLE events (device_id bigint, at bigint, payload text)");
  ignore (exec "SELECT create_distributed_table('events', 'device_id')");
  ignore
    (exec
       "INSERT INTO events (device_id, at, payload) VALUES (1, 10, 'boot'), \
        (2, 11, 'ping'), (1, 12, 'metric'), (3, 13, 'ping'), (2, 14, 'halt')");
  (* run the query traced and print the span tree: the statement span on
     the coordinator, the plan span tagged with the winning tier, and one
     fragment span per shard task (with the cost model's duration) *)
  ignore
    (exec
       "SELECT citus_explain('SELECT device_id, count(*) FROM events GROUP \
        BY device_id', 'analyze')");
  (* and a single-key query stays on the fast path: one shard, no merge *)
  ignore
    (exec
       "SELECT citus_explain('SELECT count(*) FROM events WHERE device_id = \
        1', 'analyze')");
  (* every subsystem feeds the same counter families *)
  ignore (exec "SELECT citus_stat_counters()")
