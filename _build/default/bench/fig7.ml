(* Figure 7: real-time analytics microbenchmarks on GitHub-archive-style
   JSON events with a GIN trigram index.

   (a) single-session COPY: the coordinator parse is single-threaded, so
       throughput rises from PostgreSQL -> 0+1 -> 4+1 and then flattens;
   (b) dashboard query (ILIKE over the trigram index, GROUP BY day):
       CPU-bound and trivially parallel, so it speeds up even on one node;
   (c) INSERT..SELECT transformation: fully co-located, parallelized per
       shard group (96% runtime reduction at 8+1 in the paper). *)

let load_cfg =
  { Workloads.Gharchive.events = 20000; days = 7; commits_per_event = 3;
    postgres_fraction = 0.2 }

(* data fits in memory (the paper loads 4.4GB into 64GB nodes) *)
let buffer_pages = 200_000

let setups () =
  [
    Workloads.Db.postgres ~buffer_pages ();
    Workloads.Db.citus ~buffer_pages ~workers:0 ();
    Workloads.Db.citus ~buffer_pages ~workers:4 ();
    Workloads.Db.citus ~buffer_pages ~workers:8 ();
  ]

let run_setup db =
  Workloads.Gharchive.setup_schema db;
  (* (a) one day of data through a single COPY session *)
  let n, copy_usage =
    Harness.measure db (fun () -> Workloads.Gharchive.load db load_cfg)
  in
  let copy_s = Harness.copy_elapsed db copy_usage ~rows:n in
  (* (b) dashboard query; discard a first (cache-warming) run as the paper
     does *)
  ignore (Workloads.Db.exec db Workloads.Gharchive.dashboard_query);
  let _, query_usage =
    Harness.measure db (fun () ->
        Workloads.Db.exec db Workloads.Gharchive.dashboard_query)
  in
  let query_s = Harness.parallel_elapsed db query_usage in
  (* (c) commit-extraction INSERT..SELECT *)
  Workloads.Gharchive.create_rollup_table db;
  let _, transform_usage =
    Harness.measure db (fun () ->
        Workloads.Db.exec db Workloads.Gharchive.transformation_query)
  in
  let transform_s = Harness.parallel_elapsed db transform_usage in
  (copy_s, query_s, transform_s)

let run () =
  Report.section
    "Figure 7: real-time analytics microbenchmarks (gharchive JSON + GIN)";
  let results =
    List.map (fun db -> (db.Workloads.Db.label, run_setup db)) (setups ())
  in
  let base f = match results with (_, r) :: _ -> f r | [] -> 1.0 in
  let b_copy = base (fun (a, _, _) -> a) in
  let b_query = base (fun (_, b, _) -> b) in
  let b_tr = base (fun (_, _, c) -> c) in
  Report.table ~title:"(a) COPY one day of events (single session)"
    ~headers:[ "setup"; "elapsed"; "speedup vs postgres" ]
    ~rows:
      (List.map
         (fun (l, (c, _, _)) -> [ l; Report.fmt_s c; Report.fmt_x (b_copy /. c) ])
         results);
  Report.table ~title:"(b) dashboard query (ILIKE '%postgres%' per day)"
    ~headers:[ "setup"; "elapsed"; "speedup vs postgres" ]
    ~rows:
      (List.map
         (fun (l, (_, q, _)) -> [ l; Report.fmt_s q; Report.fmt_x (b_query /. q) ])
         results);
  Report.table ~title:"(c) INSERT..SELECT commit extraction"
    ~headers:[ "setup"; "elapsed"; "speedup"; "runtime reduction" ]
    ~rows:
      (List.map
         (fun (l, (_, _, t)) ->
           [
             l;
             Report.fmt_s t;
             Report.fmt_x (b_tr /. t);
             Printf.sprintf "%.0f%%" ((1.0 -. (t /. b_tr)) *. 100.0);
           ])
         results);
  results
