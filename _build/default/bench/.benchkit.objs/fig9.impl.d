bench/fig9.ml: Harness List Printf Random Report Workloads
