bench/fig6.ml: Harness List Printf Random Report Workloads
