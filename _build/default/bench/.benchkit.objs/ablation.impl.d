bench/ablation.ml: Citus Cluster Engine Float Harness List Printf Random Report Sim Sqlfront Storage Workloads
