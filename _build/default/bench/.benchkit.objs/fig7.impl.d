bench/fig7.ml: Harness List Printf Report Workloads
