bench/tables.ml: Citus List Report
