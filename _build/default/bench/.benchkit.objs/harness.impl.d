bench/harness.ml: Citus Cluster Engine Float List Option Sim Storage String Workloads
