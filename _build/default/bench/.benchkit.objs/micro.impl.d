bench/micro.ml: Analyze Bechamel Benchmark Citus Engine Hashtbl Instance List Measure Printf Report Sqlfront Staged Test Time Toolkit Workloads
