bench/fig8.ml: Harness List Report Workloads
