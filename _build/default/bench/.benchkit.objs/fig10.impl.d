bench/fig10.ml: Citus Cluster Harness List Random Report Workloads
