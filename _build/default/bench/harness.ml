(* Shared measurement machinery for the figure reproductions.

   Workloads execute for real against the engines; this module converts
   metered work (CPU units, buffer-pool misses, cross-node round trips)
   into simulated elapsed time / throughput via Sim.Cost — the documented
   substitution for the paper's Azure testbed. *)

type probe = {
  meters : (string * Engine.Meter.snapshot) list;
  pools : (string * Storage.Buffer_pool.stats) list;
  net : Cluster.Topology.net_stats;
}

let probe (db : Workloads.Db.t) =
  let nodes = Cluster.Topology.all_nodes db.Workloads.Db.cluster in
  {
    meters =
      List.map
        (fun (n : Cluster.Topology.node) ->
          (n.node_name, Engine.Meter.read (Engine.Instance.meter n.instance)))
        nodes;
    pools =
      List.map
        (fun (n : Cluster.Topology.node) ->
          (n.node_name, Storage.Buffer_pool.stats (Engine.Instance.buffer_pool n.instance)))
        nodes;
    net = Cluster.Topology.net_snapshot db.Workloads.Db.cluster;
  }

type usage = {
  per_node : (string * Sim.Cost.node_demand) list;
  node_meters : (string * Engine.Meter.snapshot) list;
  cross_rts : int;
  rows_shipped : int;
  connections : int;
}

let usage (db : Workloads.Db.t) ~before ~after =
  let spec n =
    (Cluster.Topology.find_node db.Workloads.Db.cluster n).Cluster.Topology.spec
  in
  let per_node =
    List.map
      (fun (name, m_after) ->
        let m_before = List.assoc name before.meters in
        let p_after = List.assoc name after.pools in
        let p_before = List.assoc name before.pools in
        let meter = Engine.Meter.diff ~after:m_after ~before:m_before in
        let misses =
          p_after.Storage.Buffer_pool.misses - p_before.Storage.Buffer_pool.misses
        in
        (name, Sim.Cost.demand_of ~spec:(spec name) ~meter ~misses))
      after.meters
  in
  let net = Cluster.Topology.net_diff ~after:after.net ~before:before.net in
  let node_meters =
    List.map
      (fun (name, m_after) ->
        (name, Engine.Meter.diff ~after:m_after ~before:(List.assoc name before.meters)))
      after.meters
  in
  {
    per_node;
    node_meters;
    cross_rts = net.Cluster.Topology.cross_round_trips;
    rows_shipped = net.Cluster.Topology.rows_shipped;
    connections = net.Cluster.Topology.connections_opened;
  }

let measure db f =
  let before = probe db in
  let result = f () in
  let after = probe db in
  (result, usage db ~before ~after)

let coordinator_name (db : Workloads.Db.t) =
  db.Workloads.Db.cluster.Cluster.Topology.coordinator.Cluster.Topology.node_name

let data_node_names (db : Workloads.Db.t) =
  List.map
    (fun (n : Cluster.Topology.node) -> n.Cluster.Topology.node_name)
    (Cluster.Topology.data_nodes db.Workloads.Db.cluster)

let spec_of (db : Workloads.Db.t) =
  db.Workloads.Db.cluster.Cluster.Topology.coordinator.Cluster.Topology.spec

let rtt (db : Workloads.Db.t) = db.Workloads.Db.cluster.Cluster.Topology.rtt

(* Shards of [table] placed on [node] (parallelism available to one
   operation on that node); 1 on the plain-PostgreSQL baseline. *)
let shards_on (db : Workloads.Db.t) node =
  match db.Workloads.Db.citus with
  | None -> 1
  | Some api ->
    max 1
      (List.length (Citus.Metadata.shards_on_node api.Citus.Api.metadata node))

(* --- elapsed-time model for one parallel operation (COPY, a distributed
   query, an INSERT..SELECT): worker phase runs shard-parallel per node,
   the coordinator's own work is serial, cross-node round trips add
   latency. On the baseline everything is serial on one node. --- *)

let parallel_elapsed (db : Workloads.Db.t) (u : usage) =
  let spec = spec_of db in
  match db.Workloads.Db.citus with
  | None ->
    (* single-threaded PostgreSQL execution *)
    List.fold_left
      (fun acc (_, d) -> acc +. d.Sim.Cost.cpu_s +. d.Sim.Cost.io_s)
      0.0 u.per_node
  | Some _ ->
    (* the coordinator merge phase is serial: pull it out of the node's
       parallelizable CPU *)
    let merge_s name =
      match List.assoc_opt name u.node_meters with
      | Some m ->
        Engine.Meter.merge_row_weight
        *. float_of_int m.Engine.Meter.merge_rows
        *. spec.Sim.Cost.cpu_unit
      | None -> 0.0
    in
    let node_time name =
      let d =
        Option.value ~default:Sim.Cost.zero_demand (List.assoc_opt name u.per_node)
      in
      let par = min spec.Sim.Cost.cores (shards_on db name) in
      (Float.max 0.0 (d.Sim.Cost.cpu_s -. merge_s name)
       /. float_of_int (max 1 par))
      +. d.Sim.Cost.io_s
    in
    let worker_phase =
      List.fold_left (fun acc n -> Float.max acc (node_time n)) 0.0
        (data_node_names db)
    in
    let coord = coordinator_name db in
    let coord_extra =
      if List.mem coord (data_node_names db) then 0.0
      else
        let d =
          Option.value ~default:Sim.Cost.zero_demand
            (List.assoc_opt coord u.per_node)
        in
        (* the merge part is charged separately below *)
        Float.max 0.0 (d.Sim.Cost.cpu_s -. merge_s coord) +. d.Sim.Cost.io_s
    in
    (* tasks are dispatched concurrently over the adaptive executor's
       connections, so round trips overlap: latency is the depth of the
       pipeline, not its width *)
    let concurrency =
      List.fold_left
        (fun acc n -> acc + min spec.Sim.Cost.cores (shards_on db n))
        0 (data_node_names db)
      |> max 1
    in
    let net_delay =
      rtt db
      *. Float.max 1.0 (float_of_int u.cross_rts /. float_of_int concurrency)
    in
    let net_delay = if u.cross_rts = 0 then 0.0 else net_delay in
    let merge_phase =
      List.fold_left (fun acc (n, _) -> acc +. merge_s n) 0.0 u.per_node
    in
    worker_phase +. coord_extra +. merge_phase +. net_delay

(* COPY-specific model: the coordinator parse is single-threaded even when
   the coordinator is also a worker (§4.2 / Figure 7a). [rows] is the
   number of lines fed to the one COPY session. *)
let copy_elapsed (db : Workloads.Db.t) (u : usage) ~rows =
  let spec = spec_of db in
  match db.Workloads.Db.citus with
  | None ->
    List.fold_left
      (fun acc (_, d) -> acc +. d.Sim.Cost.cpu_s +. d.Sim.Cost.io_s)
      0.0 u.per_node
  | Some _ ->
    (* weight 1.5 per parsed row matches Engine.Meter.total_cpu_units *)
    let parse_s = 1.5 *. float_of_int rows *. spec.Sim.Cost.cpu_unit in
    let coord = coordinator_name db in
    let node_time name =
      let d =
        Option.value ~default:Sim.Cost.zero_demand (List.assoc_opt name u.per_node)
      in
      let cpu =
        if String.equal name coord then
          Float.max 0.0 (d.Sim.Cost.cpu_s -. parse_s)
        else d.Sim.Cost.cpu_s
      in
      (* local shard COPY streams on the parsing node contend with the
         parse session: only partial parallelism (the paper's own words
         for the 0+1 speedup) *)
      let par =
        if String.equal name coord then min 4 (shards_on db name)
        else min spec.Sim.Cost.cores (shards_on db name)
      in
      (cpu /. float_of_int (max 1 par)) +. d.Sim.Cost.io_s
    in
    let apply_phase =
      List.fold_left (fun acc n -> Float.max acc (node_time n)) 0.0
        (data_node_names db)
    in
    (* per-shard COPY streams run concurrently: batches overlap *)
    let concurrency =
      List.fold_left
        (fun acc n -> acc + min spec.Sim.Cost.cores (shards_on db n))
        0 (data_node_names db)
      |> max 1
    in
    let net_delay =
      if u.cross_rts = 0 then 0.0
      else
        rtt db
        *. Float.max 1.0 (float_of_int u.cross_rts /. float_of_int concurrency)
    in
    Float.max parse_s apply_phase +. net_delay

(* --- closed-workload throughput for transaction benchmarks --- *)

type closed = {
  tps : float;
  response : float;  (** seconds *)
  bottleneck : string;
}

(* [u] is the usage of [n_txns] transactions; the model divides into
   per-transaction demands and applies operational-analysis bounds with
   [clients] concurrent connections. *)
let closed_throughput (db : Workloads.Db.t) (u : usage) ~n_txns ~clients
    ~think_s =
  let spec = spec_of db in
  let n = float_of_int n_txns in
  let centers =
    List.concat_map
      (fun (name, d) ->
        [
          ( name ^ "/cpu",
            {
              Sim.Cost.demand_s = d.Sim.Cost.cpu_s /. n;
              servers = float_of_int spec.Sim.Cost.cores;
            } );
          (name ^ "/disk", { Sim.Cost.demand_s = d.Sim.Cost.io_s /. n; servers = 1.0 });
        ])
      u.per_node
  in
  let delay_s = float_of_int u.cross_rts /. n *. rtt db in
  let r =
    Sim.Cost.closed_throughput ~clients ~think_s ~delay_s
      ~centers:(List.map snd centers)
  in
  {
    tps = r.Sim.Cost.throughput;
    response = r.Sim.Cost.response_s;
    bottleneck =
      (match r.Sim.Cost.bottleneck with
       | Some i -> fst (List.nth centers i)
       | None -> "clients");
  }
