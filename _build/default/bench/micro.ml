(* Real wall-clock microbenchmarks via Bechamel: one Test.make per paper
   table/figure, measuring the engine work that underlies it (the figures
   themselves report simulated cluster time; these measure this
   implementation's actual speed). *)

open Bechamel
open Toolkit

let small_citus () =
  let db = Workloads.Db.citus ~workers:2 ~shard_count:8 () in
  ignore
    (Workloads.Db.exec db
       "CREATE TABLE items (key bigint PRIMARY KEY, val text, qty bigint)");
  (match db.Workloads.Db.citus with
   | Some api ->
     Citus.Api.create_distributed_table api ~table:"items" ~column:"key" ()
   | None -> ());
  for i = 1 to 200 do
    ignore
      (Workloads.Db.exec db
         (Printf.sprintf "INSERT INTO items (key, val, qty) VALUES (%d, 'v', %d)" i
            (i mod 5)))
  done;
  db

let test_table2_capability_matrix =
  Test.make ~name:"table2: capability matrix derivation"
    (Staged.stage (fun () ->
         List.iter
           (fun w ->
             List.iter
               (fun c -> ignore (Citus.Capability.requires w c))
               Citus.Capability.capabilities)
           Citus.Capability.workloads))

let test_fig6_routed_txn =
  let db = small_citus () in
  let i = ref 0 in
  Test.make ~name:"fig6: routed single-key update txn"
    (Staged.stage (fun () ->
         incr i;
         let key = 1 + (!i mod 200) in
         ignore
           (Workloads.Db.exec db
              (Printf.sprintf "UPDATE items SET qty = qty + 1 WHERE key = %d" key))))

let test_fig7_pushdown_agg =
  let db = small_citus () in
  Test.make ~name:"fig7/8: multi-shard aggregate pushdown"
    (Staged.stage (fun () ->
         ignore (Workloads.Db.exec db "SELECT qty, count(*) FROM items GROUP BY qty")))

let test_fig9_2pc_txn =
  let db = small_citus () in
  let i = ref 0 in
  Test.make ~name:"fig9: cross-node 2PC transaction"
    (Staged.stage (fun () ->
         incr i;
         let k1 = 1 + (!i mod 100) and k2 = 101 + (!i mod 100) in
         let s = db.Workloads.Db.session in
         ignore (Engine.Instance.exec s "BEGIN");
         ignore
           (Engine.Instance.exec s
              (Printf.sprintf "UPDATE items SET qty = qty + 1 WHERE key = %d" k1));
         ignore
           (Engine.Instance.exec s
              (Printf.sprintf "UPDATE items SET qty = qty - 1 WHERE key = %d" k2));
         ignore (Engine.Instance.exec s "COMMIT")))

let test_fig10_fastpath_read =
  let db = small_citus () in
  let i = ref 0 in
  Test.make ~name:"fig10: fast-path key lookup"
    (Staged.stage (fun () ->
         incr i;
         let key = 1 + (!i mod 200) in
         ignore
           (Workloads.Db.exec db
              (Printf.sprintf "SELECT * FROM items WHERE key = %d" key))))

let test_parser =
  Test.make ~name:"substrate: parse+deparse round trip"
    (Staged.stage (fun () ->
         let ast =
           Sqlfront.Parser.parse_statement
             "SELECT a, count(*) FROM t JOIN u ON t.k = u.k WHERE t.v > 10 \
              GROUP BY a ORDER BY 2 DESC LIMIT 5"
         in
         ignore (Sqlfront.Parser.parse_statement (Sqlfront.Deparse.statement ast))))

let test_fig7_copy_routing =
  let db = small_citus () in
  (match db.Workloads.Db.citus with
   | Some _ ->
     ignore (Workloads.Db.exec db "CREATE TABLE stream (k bigint, v text)");
     (match db.Workloads.Db.citus with
      | Some api ->
        Citus.Api.create_distributed_table api ~table:"stream" ~column:"k" ()
      | None -> ())
   | None -> ());
  let i = ref 0 in
  Test.make ~name:"fig7a: COPY batch routing (50 rows)"
    (Staged.stage (fun () ->
         incr i;
         let base = !i * 50 in
         let lines =
           List.init 50 (fun j -> Printf.sprintf "%d\tv%d" (base + j) j)
         in
         ignore
           (Engine.Instance.copy_in db.Workloads.Db.session ~table:"stream"
              ~columns:None lines)))

let test_rebalancer_move =
  Test.make ~name:"rebalancer: move a 100-row shard group"
    (Staged.stage (fun () ->
         let db = Workloads.Db.citus ~workers:2 ~shard_count:4 () in
         ignore (Workloads.Db.exec db "CREATE TABLE t (k bigint, v bigint)");
         (match db.Workloads.Db.citus with
          | Some api ->
            Citus.Api.create_distributed_table api ~table:"t" ~column:"k" ();
            let s = db.Workloads.Db.session in
            ignore (Engine.Instance.exec s "BEGIN");
            for i = 1 to 100 do
              ignore
                (Engine.Instance.exec s
                   (Printf.sprintf "INSERT INTO t (k, v) VALUES (%d, %d)" i i))
            done;
            ignore (Engine.Instance.exec s "COMMIT");
            let st = Citus.Api.coordinator_state api in
            let meta = api.Citus.Api.metadata in
            let sh = List.hd (Citus.Metadata.shards_of meta "t") in
            let from = Citus.Metadata.placement meta sh.Citus.Metadata.shard_id in
            let to_node = if from = "worker1" then "worker2" else "worker1" in
            ignore
              (Citus.Rebalancer.move_shard_group st
                 ~shard_id:sh.Citus.Metadata.shard_id ~to_node)
          | None -> ())))

let tests =
  [
    test_table2_capability_matrix;
    test_parser;
    test_fig6_routed_txn;
    test_fig7_pushdown_agg;
    test_fig9_2pc_txn;
    test_fig10_fastpath_read;
    test_fig7_copy_routing;
    test_rebalancer_move;
  ]

let run () =
  Report.section "Bechamel microbenchmarks (real wall-clock of this implementation)";
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true ()
  in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances (Test.make_grouped ~name:"g" [ test ]) in
      let ols =
        Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
      in
      let analyzed = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] -> Report.note "  %-45s %12.0f ns/run" name est
          | _ -> Report.note "  %-45s (no estimate)" name)
        analyzed)
    tests
