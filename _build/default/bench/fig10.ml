(* Figure 10: YCSB workload A (50% reads, 50% updates, uniform keys) on a
   table that exceeds one node's memory.

   The paper runs every worker as a coordinator (metadata syncing) with
   the client load-balancing across nodes, because the single coordinator's
   CPU otherwise bottlenecks. Throughput then scales with the cluster's
   aggregate I/O capacity. Citus 0+1 is slightly below plain PostgreSQL:
   distributed planning overhead with no extra hardware. *)

let cfg = { Workloads.Ycsb.rows = 12_000; fields = 10; field_length = 40 }

let buffer_pages = 220 (* ~a third of the working set on one node *)

let clients = 256

let measured = 600

let run_setup db =
  Workloads.Ycsb.setup db cfg;
  (match db.Workloads.Db.citus with
   | Some api -> Citus.Api.enable_metadata_sync api
   | None -> ());
  (* sessions load-balanced across the data nodes (every node coordinates) *)
  let sessions =
    match db.Workloads.Db.citus with
    | None -> [ db.Workloads.Db.session ]
    | Some api ->
      List.map
        (fun (n : Cluster.Topology.node) -> Citus.Api.connect_via api n)
        (Cluster.Topology.data_nodes db.Workloads.Db.cluster)
  in
  let n_sessions = List.length sessions in
  let rng = Random.State.make [| 23 |] in
  (* warmup: populate the buffer pools to steady state *)
  for i = 1 to 400 do
    ignore (Workloads.Ycsb.run_one (List.nth sessions (i mod n_sessions)) cfg rng)
  done;
  let updates = ref 0 in
  let (), u =
    Harness.measure db (fun () ->
        for i = 1 to measured do
          match
            Workloads.Ycsb.run_one (List.nth sessions (i mod n_sessions)) cfg rng
          with
          | Workloads.Ycsb.Update -> incr updates
          | Workloads.Ycsb.Read -> ()
        done)
  in
  let closed =
    Harness.closed_throughput db u ~n_txns:measured ~clients ~think_s:0.0
  in
  (closed.Harness.tps, closed.Harness.response, closed.Harness.bottleneck)

let setups () =
  [
    Workloads.Db.postgres ~buffer_pages ();
    Workloads.Db.citus ~buffer_pages ~workers:0 ();
    Workloads.Db.citus ~buffer_pages ~workers:4 ();
    Workloads.Db.citus ~buffer_pages ~workers:8 ();
  ]

let run () =
  Report.section
    "Figure 10: YCSB workload A (50/50 read-update, every node a coordinator)";
  let results =
    List.map (fun db -> (db.Workloads.Db.label, run_setup db)) (setups ())
  in
  let baseline = match results with (_, (t, _, _)) :: _ -> t | [] -> 1.0 in
  Report.table ~title:"YCSB workload A (uniform, 256 threads)"
    ~headers:[ "setup"; "ops/s"; "vs postgres"; "update response"; "bottleneck" ]
    ~rows:
      (List.map
         (fun (label, (tps, resp, bn)) ->
           [
             label;
             Report.fmt_rate tps;
             Report.fmt_x (tps /. baseline);
             Report.fmt_ms resp;
             bn;
           ])
         results);
  results
