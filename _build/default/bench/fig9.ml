(* Figure 9 (§4.1.1): distributed transaction overhead.

   Two co-located tables, a two-update transaction with 250 connections.
   Same random key -> both updates are on one node, single-node commit.
   Independent random keys -> usually two nodes, two-phase commit. The
   paper measures a 20-30% penalty that persists as the cluster scales. *)

let cfg = { Workloads.Pgbench.rows = 2000 }

let buffer_pages = 100_000 (* in-memory: isolate the commit-protocol cost *)

let clients = 250

let measured = 300

let run_mode db mode =
  let rng = Random.State.make [| 17 |] in
  let session = db.Workloads.Db.session in
  (* warmup *)
  for _ = 1 to 50 do
    ignore (Workloads.Pgbench.run_one db session cfg mode rng)
  done;
  let crossed = ref 0 in
  let (), u =
    Harness.measure db (fun () ->
        for _ = 1 to measured do
          if Workloads.Pgbench.run_one db session cfg mode rng then incr crossed
        done)
  in
  let closed =
    Harness.closed_throughput db u ~n_txns:measured ~clients ~think_s:0.0
  in
  (closed.Harness.tps, float_of_int !crossed /. float_of_int measured)

let run_setup workers =
  let db = Workloads.Db.citus ~buffer_pages ~workers () in
  Workloads.Pgbench.setup db cfg;
  let same_tps, _ = run_mode db Workloads.Pgbench.Same_key in
  let diff_tps, crossed = run_mode db Workloads.Pgbench.Different_keys in
  (db.Workloads.Db.label, same_tps, diff_tps, crossed)

let run () =
  Report.section
    "Figure 9: two-update transactions, same key (1PC) vs different keys (2PC)";
  let results = List.map run_setup [ 0; 4; 8 ] in
  Report.table
    ~title:"pgbench-style transactions (250 connections)"
    ~headers:
      [ "setup"; "same key tps"; "diff keys tps"; "2PC penalty"; "multi-node txns" ]
    ~rows:
      (List.map
         (fun (label, same, diff, crossed) ->
           [
             label;
             Report.fmt_rate same;
             Report.fmt_rate diff;
             Printf.sprintf "%.0f%%" ((1.0 -. (diff /. same)) *. 100.0);
             Printf.sprintf "%.0f%%" (crossed *. 100.0);
           ])
         results);
  results
