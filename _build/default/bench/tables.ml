(* Tables 1–3 of the paper, regenerated from the capability model in
   Citus.Capability so the matrix stays tied to the code that implements
   each capability. *)

let table1 () =
  Report.table ~title:"Table 1: Scale requirements of workload patterns"
    ~headers:[ "Scale requirements"; "MT"; "RA"; "HC"; "DW" ]
    ~rows:
      (let cells f =
         List.map (fun w -> f (Citus.Capability.scale_requirements w))
           Citus.Capability.workloads
       in
       [
         "Typical query latency" :: cells (fun (l, _, _) -> l);
         "Typical query throughput" :: cells (fun (_, t, _) -> t);
         "Typical data size" :: cells (fun (_, _, s) -> s);
       ])

let table2 () =
  Report.table
    ~title:"Table 2: Workload patterns and required capabilities"
    ~headers:("Feature requirements" :: List.map Citus.Capability.workload_abbrev Citus.Capability.workloads)
    ~rows:
      (List.map
         (fun c ->
           Citus.Capability.capability_name c
           :: List.map
                (fun w ->
                  match Citus.Capability.requires w c with
                  | Citus.Capability.Required -> "Yes"
                  | Citus.Capability.Some_workloads -> "Some"
                  | Citus.Capability.Not_required -> "")
                Citus.Capability.workloads)
         Citus.Capability.capabilities);
  Report.note "Each capability maps to an implementation:";
  List.iter
    (fun c ->
      Report.note "  %-34s -> %s"
        (Citus.Capability.capability_name c)
        (Citus.Capability.implemented_by c))
    Citus.Capability.capabilities

let table3 () =
  Report.table ~title:"Table 3: Benchmarks used for the workload patterns"
    ~headers:[ "Workload"; "Benchmark" ]
    ~rows:
      (List.map
         (fun w ->
           [ Citus.Capability.workload_name w; Citus.Capability.benchmark_for w ])
         Citus.Capability.workloads)

let run () =
  Report.section "Tables 1-3 (workload requirements, capabilities, benchmarks)";
  table1 ();
  table2 ();
  table3 ()
