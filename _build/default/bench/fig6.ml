(* Figure 6: HammerDB TPC-C-based multi-tenant benchmark.

   Paper setup: 500 warehouses (~100GB), 250 virtual users, items as a
   reference table, everything else co-located on the warehouse id,
   procedure calls delegated to the warehouses' nodes. The data set does
   not fit in one node's memory but fits in the 4+1 cluster's, so the
   single server is I/O-bound and Citus 4+1 becomes CPU-bound — the ~13x
   jump. 4 -> 8 nodes scales sublinearly because ~7% of transactions span
   warehouses and pay per-statement round trips.

   Scaled-down reproduction: 32 warehouses, per-node buffer pool sized so
   one node holds ~40% of the working set and four nodes hold all of it. *)

let cfg =
  {
    Workloads.Tpcc.warehouses = 64;
    districts_per_warehouse = 4;
    customers_per_district = 40;
    items = 600;
    remote_txn_fraction = 0.07;
  }

let buffer_pages = 1000

let clients = 250

let think_s = 0.001

let warmup = 500

let measured = 500

let run_setup db =
  Workloads.Tpcc.setup db cfg;
  Workloads.Tpcc.enable_delegation db;
  let rng = Random.State.make [| 42 |] in
  let session = db.Workloads.Db.session in
  for _ = 1 to warmup do
    ignore (Workloads.Tpcc.run_one db session cfg rng)
  done;
  let new_orders = ref 0 and remotes = ref 0 in
  let (), u =
    Harness.measure db (fun () ->
        for _ = 1 to measured do
          let kind, remote = Workloads.Tpcc.run_one db session cfg rng in
          if kind = Workloads.Tpcc.New_order then incr new_orders;
          if remote then incr remotes
        done)
  in
  let closed =
    Harness.closed_throughput db u ~n_txns:measured ~clients ~think_s
  in
  let nopm =
    closed.Harness.tps *. 60.0 *. (float_of_int !new_orders /. float_of_int measured)
  in
  (nopm, closed, float_of_int !remotes /. float_of_int measured)

let setups () =
  [
    Workloads.Db.postgres ~buffer_pages ();
    Workloads.Db.citus ~buffer_pages ~workers:0 ();
    Workloads.Db.citus ~buffer_pages ~workers:4 ();
    Workloads.Db.citus ~buffer_pages ~workers:8 ();
  ]

let run () =
  Report.section "Figure 6: HammerDB TPC-C (multi-tenant), NOPM and response times";
  let results =
    List.map (fun db -> (db.Workloads.Db.label, run_setup db)) (setups ())
  in
  let baseline =
    match results with (_, (nopm, _, _)) :: _ -> nopm | [] -> 1.0
  in
  Report.table ~title:"TPC-C results (250 vusers, 32 scaled warehouses)"
    ~headers:
      [ "setup"; "NOPM"; "vs postgres"; "response time"; "bottleneck"; "remote txns" ]
    ~rows:
      (List.map
         (fun (label, (nopm, closed, remote_frac)) ->
           [
             label;
             Report.fmt_rate nopm;
             Report.fmt_x (nopm /. baseline);
             Report.fmt_ms closed.Harness.response;
             closed.Harness.bottleneck;
             Printf.sprintf "%.1f%%" (remote_frac *. 100.0);
           ])
         results);
  results
