(* Figure 8: data warehousing with queries from TPC-H at a scale where the
   data does not fit one node's memory (paper: SF100 ~ 135GB vs 64GB RAM).
   The single server is I/O-bound; Citus clusters keep everything in
   memory and parallelize scans across cores and nodes, giving one to two
   orders of magnitude on 8 nodes. Reported as queries per hour over a
   single session, like the paper. *)

let cfg = { Workloads.Tpch.lineitem_rows = 30000; distribute_part = false }

(* one node holds ~40% of the heap+index pages; four nodes hold all *)
let buffer_pages = 600

let setups () =
  [
    Workloads.Db.postgres ~buffer_pages ();
    Workloads.Db.citus ~buffer_pages ~workers:0 ();
    Workloads.Db.citus ~buffer_pages ~workers:4 ();
    Workloads.Db.citus ~buffer_pages ~workers:8 ();
  ]

let run_setup db =
  Workloads.Tpch.setup db cfg;
  let per_query =
    List.map
      (fun (name, sql) ->
        let _, u = Harness.measure db (fun () -> Workloads.Db.exec db sql) in
        (name, Harness.parallel_elapsed db u))
      (Workloads.Tpch.queries cfg)
  in
  let total = List.fold_left (fun acc (_, s) -> acc +. s) 0.0 per_query in
  (per_query, total)

let run () =
  Report.section "Figure 8: TPC-H-derived data warehousing (queries per hour)";
  let results =
    List.map (fun db -> (db.Workloads.Db.label, run_setup db)) (setups ())
  in
  let baseline_qph =
    match results with
    | (_, (qs, total)) :: _ -> float_of_int (List.length qs) *. 3600.0 /. total
    | [] -> 1.0
  in
  Report.table ~title:"TPC-H query set over a single session"
    ~headers:[ "setup"; "set elapsed"; "queries/hour"; "vs postgres" ]
    ~rows:
      (List.map
         (fun (label, (qs, total)) ->
           let qph = float_of_int (List.length qs) *. 3600.0 /. total in
           [
             label;
             Report.fmt_s total;
             Report.fmt_rate qph;
             Report.fmt_x (qph /. baseline_qph);
           ])
         results);
  Report.note
    "Mirroring the paper's \"4 of the 22 TPC-H queries are not yet \
     supported\": the following shapes are rejected by the distributed \
     planner:";
  List.iter
    (fun (name, _sql, reason) -> Report.note "  %-46s %s" name reason)
    Workloads.Tpch.unsupported_queries;
  (* per-query detail for the extremes *)
  (match (results, List.rev results) with
   | (_, (pg_queries, _)) :: _, (_, (big_queries, _)) :: _ ->
     Report.table ~title:"per-query elapsed (postgres vs citus-8+1)"
       ~headers:[ "query"; "postgres"; "citus-8+1"; "speedup" ]
       ~rows:
         (List.map2
            (fun (name, pg_s) (_, cz_s) ->
              [ name; Report.fmt_s pg_s; Report.fmt_s cz_s; Report.fmt_x (pg_s /. cz_s) ])
            pg_queries big_queries)
   | _ -> ());
  results
