(* Fixed-width table rendering for the benchmark output. *)

let rule widths =
  "+" ^ String.concat "+" (List.map (fun w -> String.make (w + 2) '-') widths) ^ "+"

let pad w s =
  let n = String.length s in
  if n >= w then s else s ^ String.make (w - n) ' '

let table ~title ~headers ~rows =
  let all = headers :: rows in
  let ncols = List.length headers in
  let widths =
    List.init ncols (fun i ->
        List.fold_left
          (fun acc row ->
            match List.nth_opt row i with
            | Some cell -> max acc (String.length cell)
            | None -> acc)
          0 all)
  in
  Printf.printf "\n%s\n%s\n" title (rule widths);
  let print_row row =
    let cells =
      List.mapi (fun i w -> pad w (Option.value ~default:"" (List.nth_opt row i))) widths
    in
    Printf.printf "| %s |\n" (String.concat " | " cells)
  in
  print_row headers;
  print_endline (rule widths);
  List.iter print_row rows;
  print_endline (rule widths)

let section title =
  let bar = String.make (String.length title + 4) '=' in
  Printf.printf "\n%s\n= %s =\n%s\n" bar title bar

let note fmt = Printf.ksprintf (fun s -> Printf.printf "%s\n" s) fmt

let fmt_rate v =
  if v >= 1_000_000.0 then Printf.sprintf "%.2fM" (v /. 1_000_000.0)
  else if v >= 1000.0 then Printf.sprintf "%.1fk" (v /. 1000.0)
  else Printf.sprintf "%.1f" v

let fmt_ms s = Printf.sprintf "%.2fms" (s *. 1000.0)

let fmt_s s =
  if s >= 1.0 then Printf.sprintf "%.2fs" s else Printf.sprintf "%.1fms" (s *. 1000.0)

let fmt_x v = Printf.sprintf "%.1fx" v
