(* Join-order planner (re-partition / broadcast joins) and shard
   rebalancer tests. *)

let make ?(workers = 2) ?(shard_count = 8) () =
  let cluster = Cluster.Topology.create ~workers () in
  let citus = Citus.Api.install ~shard_count cluster in
  let s = Citus.Api.connect citus in
  (cluster, citus, s)

let exec s sql = Engine.Instance.exec s sql

let one_int s sql =
  match (exec s sql).Engine.Instance.rows with
  | [ [| Datum.Int i |] ] -> i
  | _ -> Alcotest.fail (Printf.sprintf "expected one int from %S" sql)

let check_int s msg expected sql = Alcotest.(check int) msg expected (one_int s sql)

(* lineitem distributed by order_key; part distributed by part_key:
   l JOIN p ON l.part_key = p.part_key is non-co-located. *)
let setup_warehouse s =
  ignore (exec s "CREATE TABLE lineitem (order_key bigint, part_key bigint, qty bigint)");
  ignore (exec s "SELECT create_distributed_table('lineitem', 'order_key')");
  ignore (exec s "CREATE TABLE part (part_key bigint, name text, size bigint)");
  ignore (exec s "SELECT create_distributed_table('part', 'part_key')");
  ignore (exec s "BEGIN");
  for o = 1 to 30 do
    for l = 1 to 2 do
      ignore
        (exec s
           (Printf.sprintf
              "INSERT INTO lineitem (order_key, part_key, qty) VALUES (%d, %d, %d)"
              o (((o + l) mod 10) + 1) l))
    done
  done;
  for p = 1 to 10 do
    ignore
      (exec s
         (Printf.sprintf "INSERT INTO part (part_key, name, size) VALUES (%d, 'p%d', %d)"
            p p (p mod 4)))
  done;
  ignore (exec s "COMMIT")

let test_repartition_join_via_sql () =
  let _, _, s = make () in
  setup_warehouse s;
  (* the join-order planner kicks in transparently behind the hook *)
  check_int s "non-colocated join count" 60
    "SELECT count(*) FROM lineitem JOIN part ON lineitem.part_key = part.part_key";
  check_int s "filtered join" 18
    "SELECT count(*) FROM lineitem JOIN part ON lineitem.part_key = part.part_key \
     WHERE part.size = 2"

let test_join_order_decision () =
  let _, citus, s = make () in
  setup_warehouse s;
  let st = Citus.Api.coordinator_state citus in
  let sel =
    Sqlfront.Parser.parse_select
      "SELECT count(*) FROM lineitem JOIN part ON lineitem.part_key = part.part_key"
  in
  let result, decision, _report = Citus.Join_order.execute st s sel in
  (match result.Engine.Instance.rows with
   | [ [| Datum.Int 60 |] ] -> ()
   | _ -> Alcotest.fail "wrong result");
  (* part (10 rows) is cheaper to move than lineitem (60): the anchor must
     be lineitem, and part is either broadcast or re-partitioned *)
  Alcotest.(check string) "anchor" "lineitem" decision.Citus.Join_order.anchor;
  (match decision.Citus.Join_order.moves with
   | [ Citus.Join_order.Broadcast { table = "part"; rows = 10 } ]
   | [ Citus.Join_order.Repartition { table = "part"; rows = 10 } ] ->
     ()
   | _ -> Alcotest.fail "unexpected move set")

let test_repartition_with_aggregation () =
  let _, _, s = make () in
  setup_warehouse s;
  let rows =
    (exec s
       "SELECT part.name, sum(lineitem.qty) FROM lineitem JOIN part \
        ON lineitem.part_key = part.part_key GROUP BY part.name ORDER BY part.name LIMIT 3")
      .Engine.Instance.rows
  in
  Alcotest.(check int) "3 rows" 3 (List.length rows)

let test_broadcast_when_too_large_to_ship_fails () =
  let _, _, s = make () in
  (* two dist tables joined on neither dist column: infeasible without
     dual re-partition *)
  ignore (exec s "CREATE TABLE a (k bigint, x bigint)");
  ignore (exec s "SELECT create_distributed_table('a', 'k')");
  ignore (exec s "CREATE TABLE b (k bigint, y bigint)");
  ignore (exec s "SELECT create_distributed_table('b', 'k', 'a')");
  (* colocated but joined on non-dist columns, and force them too big to
     broadcast *)
  Citus.Join_order.broadcast_threshold := 0;
  let cleanup () = Citus.Join_order.broadcast_threshold := 10_000 in
  Fun.protect ~finally:cleanup (fun () ->
      ignore (exec s "INSERT INTO a (k, x) VALUES (1, 1), (2, 2)");
      ignore (exec s "INSERT INTO b (k, y) VALUES (1, 1), (2, 2)");
      match exec s "SELECT count(*) FROM a JOIN b ON a.x = b.y" with
      | exception Engine.Instance.Session_error _ -> ()
      | _ -> Alcotest.fail "should be unsupported")

let test_broadcast_small_table_on_non_dist_join () =
  let _, _, s = make () in
  ignore (exec s "CREATE TABLE big (k bigint, cat bigint)");
  ignore (exec s "SELECT create_distributed_table('big', 'k')");
  ignore (exec s "CREATE TABLE small (id bigint, cat bigint, label text)");
  ignore (exec s "SELECT create_distributed_table('small', 'id')");
  ignore (exec s "BEGIN");
  for i = 1 to 20 do
    ignore (exec s (Printf.sprintf "INSERT INTO big (k, cat) VALUES (%d, %d)" i (i mod 4)))
  done;
  for c = 0 to 3 do
    ignore
      (exec s
         (Printf.sprintf "INSERT INTO small (id, cat, label) VALUES (%d, %d, 'c%d')"
            (c + 1) c c))
  done;
  ignore (exec s "COMMIT");
  (* join on big.cat = small.cat: neither side's dist column on the small
     side; small must be broadcast *)
  check_int s "broadcast join" 20
    "SELECT count(*) FROM big JOIN small ON big.cat = small.cat"

(* --- rebalancer --- *)

let test_move_shard_group () =
  let _, citus, s = make () in
  ignore (exec s "CREATE TABLE t (k bigint PRIMARY KEY, v text)");
  ignore (exec s "SELECT create_distributed_table('t', 'k')");
  ignore (exec s "BEGIN");
  for i = 1 to 50 do
    ignore (exec s (Printf.sprintf "INSERT INTO t (k, v) VALUES (%d, 'v%d')" i i))
  done;
  ignore (exec s "COMMIT");
  let st = Citus.Api.coordinator_state citus in
  let meta = citus.Citus.Api.metadata in
  let shard = List.hd (Citus.Metadata.shards_of meta "t") in
  let from_node = Citus.Metadata.placement meta shard.Citus.Metadata.shard_id in
  let to_node = if from_node = "worker1" then "worker2" else "worker1" in
  let m =
    Citus.Rebalancer.move_shard_group st ~shard_id:shard.Citus.Metadata.shard_id
      ~to_node
  in
  Alcotest.(check string) "moved to" to_node m.Citus.Rebalancer.to_node;
  Alcotest.(check string) "new placement" to_node
    (Citus.Metadata.placement meta shard.Citus.Metadata.shard_id);
  (* data still complete and queries still work *)
  check_int s "all rows" 50 "SELECT count(*) FROM t";
  check_int s "routed lookup still works" 1 "SELECT count(*) FROM t WHERE k = 17"

let test_move_applies_wal_delta () =
  let _, citus, s = make () in
  ignore (exec s "CREATE TABLE t (k bigint PRIMARY KEY, v bigint)");
  ignore (exec s "SELECT create_distributed_table('t', 'k')");
  for i = 1 to 20 do
    ignore (exec s (Printf.sprintf "INSERT INTO t (k, v) VALUES (%d, 0)" i))
  done;
  (* concurrent-ish write after metadata known: the move's snapshot copy
     plus WAL catchup must capture committed writes *)
  ignore (exec s "UPDATE t SET v = 42 WHERE k = 3");
  let st = Citus.Api.coordinator_state citus in
  let meta = citus.Citus.Api.metadata in
  let shard = Citus.Metadata.shard_for_value meta ~table:"t" (Datum.Int 3) in
  let from_node = Citus.Metadata.placement meta shard.Citus.Metadata.shard_id in
  let to_node = if from_node = "worker1" then "worker2" else "worker1" in
  ignore
    (Citus.Rebalancer.move_shard_group st ~shard_id:shard.Citus.Metadata.shard_id
       ~to_node);
  check_int s "update survived the move" 42 "SELECT v FROM t WHERE k = 3";
  ignore (exec s "UPDATE t SET v = 43 WHERE k = 3");
  check_int s "writes to the new placement work" 43 "SELECT v FROM t WHERE k = 3"

let test_move_colocated_together () =
  let _, citus, s = make () in
  ignore (exec s "CREATE TABLE t (k bigint, v bigint)");
  ignore (exec s "SELECT create_distributed_table('t', 'k')");
  ignore (exec s "CREATE TABLE u (k bigint, w bigint)");
  ignore (exec s "SELECT create_distributed_table('u', 'k', 't')");
  ignore (exec s "INSERT INTO t (k, v) VALUES (1, 10)");
  ignore (exec s "INSERT INTO u (k, w) VALUES (1, 20)");
  let st = Citus.Api.coordinator_state citus in
  let meta = citus.Citus.Api.metadata in
  let shard = Citus.Metadata.shard_for_value meta ~table:"t" (Datum.Int 1) in
  let from_node = Citus.Metadata.placement meta shard.Citus.Metadata.shard_id in
  let to_node = if from_node = "worker1" then "worker2" else "worker1" in
  let m =
    Citus.Rebalancer.move_shard_group st ~shard_id:shard.Citus.Metadata.shard_id
      ~to_node
  in
  Alcotest.(check int) "both shards moved" 2
    (List.length m.Citus.Rebalancer.moved_shards);
  (* the co-located join still works after the move *)
  check_int s "join after move" 1
    "SELECT count(*) FROM t JOIN u ON t.k = u.k WHERE t.k = 1"

let test_rebalance_after_add_node () =
  let cluster = Cluster.Topology.create ~workers:3 () in
  (* start with only 2 active workers; worker3 joins later *)
  let citus = Citus.Api.install ~shard_count:8 ~active_workers:2 cluster in
  let s = Citus.Api.connect citus in
  ignore (exec s "CREATE TABLE t (k bigint, v text)");
  ignore (exec s "SELECT create_distributed_table('t', 'k')");
  ignore (exec s "BEGIN");
  for i = 1 to 64 do
    ignore (exec s (Printf.sprintf "INSERT INTO t (k, v) VALUES (%d, 'x')" i))
  done;
  ignore (exec s "COMMIT");
  let st = Citus.Api.coordinator_state citus in
  Alcotest.(check int) "two nodes before" 2
    (List.length (Citus.Rebalancer.distribution st));
  ignore (exec s "SELECT citus_add_node('worker3')");
  let moves = Citus.Rebalancer.rebalance st in
  Alcotest.(check bool) "moved some shards" true (List.length moves > 0);
  let dist = Citus.Rebalancer.distribution st in
  Alcotest.(check int) "three nodes" 3 (List.length dist);
  List.iter
    (fun (_n, count) ->
      Alcotest.(check bool) "roughly even" true (count >= 2 && count <= 3))
    dist;
  check_int s "data intact" 64 "SELECT count(*) FROM t"

let test_rebalance_by_size () =
  let _, citus, s = make ~shard_count:4 () in
  ignore (exec s "CREATE TABLE t (k bigint, v text)");
  ignore (exec s "SELECT create_distributed_table('t', 'k')");
  ignore (exec s "BEGIN");
  for i = 1 to 100 do
    ignore (exec s (Printf.sprintf "INSERT INTO t (k, v) VALUES (%d, 'x')" i))
  done;
  ignore (exec s "COMMIT");
  let st = Citus.Api.coordinator_state citus in
  let moves = Citus.Rebalancer.rebalance ~policy:Citus.Rebalancer.By_size st in
  ignore moves;
  check_int s "data intact after size rebalance" 100 "SELECT count(*) FROM t"

let test_rebalance_udf () =
  let _, _, s = make () in
  ignore (exec s "CREATE TABLE t (k bigint, v text)");
  ignore (exec s "SELECT create_distributed_table('t', 'k')");
  match (exec s "SELECT rebalance_table_shards()").Engine.Instance.rows with
  | [ [| Datum.Int _ |] ] -> ()
  | _ -> Alcotest.fail "udf failed"

let () =
  Alcotest.run "citus_advanced"
    [
      ( "join_order",
        [
          Alcotest.test_case "repartition join" `Quick test_repartition_join_via_sql;
          Alcotest.test_case "decision" `Quick test_join_order_decision;
          Alcotest.test_case "with aggregation" `Quick
            test_repartition_with_aggregation;
          Alcotest.test_case "infeasible rejected" `Quick
            test_broadcast_when_too_large_to_ship_fails;
          Alcotest.test_case "broadcast small" `Quick
            test_broadcast_small_table_on_non_dist_join;
        ] );
      ( "rebalancer",
        [
          Alcotest.test_case "move shard group" `Quick test_move_shard_group;
          Alcotest.test_case "wal delta" `Quick test_move_applies_wal_delta;
          Alcotest.test_case "colocated together" `Quick
            test_move_colocated_together;
          Alcotest.test_case "add node + rebalance" `Quick
            test_rebalance_after_add_node;
          Alcotest.test_case "by size" `Quick test_rebalance_by_size;
          Alcotest.test_case "udf" `Quick test_rebalance_udf;
        ] );
    ]
