(* Unit and property tests for the datum and JSON substrate. *)

let check_datum = Alcotest.testable Datum.pp Datum.equal

let test_compare_numeric () =
  Alcotest.(check int) "int vs int" (-1) (compare (Datum.compare (Int 1) (Int 2)) 0);
  Alcotest.(check bool) "int vs float eq" true (Datum.equal (Int 3) (Float 3.0));
  Alcotest.(check bool) "float vs int lt" true (Datum.compare (Float 2.5) (Int 3) < 0)

let test_null_sorts_last () =
  let sorted = List.sort Datum.compare [ Datum.Null; Int 1; Text "a" ] in
  match List.rev sorted with
  | Datum.Null :: _ -> ()
  | _ -> Alcotest.fail "NULL should sort last"

let test_hash_consistency () =
  (* equal datums must hash equal, notably Int vs integral Float *)
  Alcotest.(check int32) "int/float" (Datum.hash32 (Int 42))
    (Datum.hash32 (Float 42.0));
  Alcotest.(check bool) "different values differ" true
    (Datum.hash32 (Int 1) <> Datum.hash32 (Int 2))

let test_hash_range () =
  (* hash32 must span negative and positive int32 values over a sample *)
  let neg = ref false and pos = ref false in
  for i = 0 to 999 do
    let h = Datum.hash32 (Int i) in
    if Int32.compare h 0l < 0 then neg := true else pos := true
  done;
  Alcotest.(check bool) "covers both signs" true (!neg && !pos)

let test_sql_literal_roundtrip_text () =
  Alcotest.(check string) "quotes escaped" "'it''s'"
    (Datum.to_sql_literal (Text "it's"))

let test_cast_text_int () =
  Alcotest.(check check_datum) "parses" (Datum.Int 42)
    (Datum.cast (Text " 42 ") TInt);
  Alcotest.check_raises "garbage" (Datum.Cast_error "cannot cast xyz to bigint")
    (fun () -> ignore (Datum.cast (Text "xyz") TInt))

let test_cast_null () =
  List.iter
    (fun ty -> Alcotest.(check check_datum) "null" Datum.Null (Datum.cast Null ty))
    [ Datum.TBool; TInt; TFloat; TText; TJson; TTimestamp ]

let test_csv_null_marker () =
  Alcotest.(check check_datum) "backslash-N" Datum.Null
    (Datum.of_csv_field TInt "\\N")

let test_json_parse_basic () =
  let j = Json.parse {|{"a": 1, "b": [true, null, "x"], "c": {"d": 2.5}}|} in
  Alcotest.(check bool) "field a" true
    (Json.equal (Option.get (Json.get_field j "a")) (Json.Num 1.0));
  Alcotest.(check bool) "nested" true
    (Json.equal (Option.get (Json.get_path j [ "c"; "d" ])) (Json.Num 2.5));
  Alcotest.(check (option int)) "array length" (Some 3)
    (Json.array_length (Option.get (Json.get_field j "b")))

let test_json_roundtrip () =
  let src = {|{"k":"v","n":3,"arr":[1,2,{"x":null}],"t":true}|} in
  let j = Json.parse src in
  Alcotest.(check bool) "parse . to_string . parse = parse" true
    (Json.equal j (Json.parse (Json.to_string j)))

let test_json_escapes () =
  let j = Json.parse {|{"s": "line\nbreak \"quoted\" \\ A"}|} in
  match Json.get_field j "s" with
  | Some (Json.Str s) ->
    Alcotest.(check string) "unescaped" "line\nbreak \"quoted\" \\ A" s
  | _ -> Alcotest.fail "expected string"

let test_json_wildcard_path () =
  let j =
    Json.parse
      {|{"payload": {"commits": [{"message": "fix"}, {"message": "feat"}]}}|}
  in
  match Json.get_path j [ "payload"; "commits"; "*"; "message" ] with
  | Some (Json.Arr [ Json.Str "fix"; Json.Str "feat" ]) -> ()
  | _ -> Alcotest.fail "wildcard path failed"

let test_json_parse_errors () =
  List.iter
    (fun bad ->
      match Json.parse bad with
      | exception Json.Parse_error _ -> ()
      | _ -> Alcotest.fail (Printf.sprintf "should reject %S" bad))
    [ "{"; "[1,"; {|{"a" 1}|}; "tru"; ""; "1 2" ]

(* --- property tests --- *)

let datum_gen =
  let open QCheck2.Gen in
  oneof
    [
      return Datum.Null;
      map (fun b -> Datum.Bool b) bool;
      map (fun i -> Datum.Int i) (int_range (-1000000) 1000000);
      map (fun f -> Datum.Float f) (float_range (-1e6) 1e6);
      map (fun s -> Datum.Text s) (string_size ~gen:printable (int_range 0 20));
    ]

let prop_compare_total =
  QCheck2.Test.make ~name:"datum compare is antisymmetric" ~count:500
    QCheck2.Gen.(pair datum_gen datum_gen)
    (fun (a, b) ->
      let c1 = Datum.compare a b and c2 = Datum.compare b a in
      (c1 = 0 && c2 = 0) || (c1 > 0 && c2 < 0) || (c1 < 0 && c2 > 0))

let prop_literal_roundtrip =
  QCheck2.Test.make ~name:"text literal quoting is reversible" ~count:500
    QCheck2.Gen.(string_size ~gen:printable (int_range 0 30))
    (fun s ->
      let lit = Datum.to_sql_literal (Text s) in
      let body = String.sub lit 1 (String.length lit - 2) in
      let buf = Buffer.create (String.length body) in
      let i = ref 0 in
      while !i < String.length body do
        if
          body.[!i] = '\''
          && !i + 1 < String.length body
          && body.[!i + 1] = '\''
        then begin
          Buffer.add_char buf '\'';
          i := !i + 2
        end
        else begin
          Buffer.add_char buf body.[!i];
          incr i
        end
      done;
      String.equal (Buffer.contents buf) s)

let prop_hash_equal_consistent =
  QCheck2.Test.make ~name:"equal datums hash equal" ~count:500
    QCheck2.Gen.(pair datum_gen datum_gen)
    (fun (a, b) ->
      if Datum.equal a b then Datum.hash32 a = Datum.hash32 b else true)

let () =
  Alcotest.run "datum"
    [
      ( "datum",
        [
          Alcotest.test_case "compare numeric" `Quick test_compare_numeric;
          Alcotest.test_case "null sorts last" `Quick test_null_sorts_last;
          Alcotest.test_case "hash consistency" `Quick test_hash_consistency;
          Alcotest.test_case "hash covers int32 range" `Quick test_hash_range;
          Alcotest.test_case "sql literal escaping" `Quick
            test_sql_literal_roundtrip_text;
          Alcotest.test_case "cast text to int" `Quick test_cast_text_int;
          Alcotest.test_case "cast null" `Quick test_cast_null;
          Alcotest.test_case "csv null marker" `Quick test_csv_null_marker;
        ] );
      ( "json",
        [
          Alcotest.test_case "parse basic" `Quick test_json_parse_basic;
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "escapes" `Quick test_json_escapes;
          Alcotest.test_case "wildcard path" `Quick test_json_wildcard_path;
          Alcotest.test_case "parse errors" `Quick test_json_parse_errors;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_compare_total; prop_literal_roundtrip; prop_hash_equal_consistent ]
      );
    ]
