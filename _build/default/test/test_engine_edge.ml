(* Engine edge cases: SQL NULL semantics, error paths, type coercion,
   LIKE corner cases, index maintenance under churn, autovacuum, COPY
   errors, cross-session visibility subtleties. *)

open Engine

let fresh () =
  let inst = Instance.create ~name:"pg" () in
  (inst, Instance.connect inst)

let exec s sql = Instance.exec s sql

let rows s sql = (exec s sql).Instance.rows

let one s sql =
  match rows s sql with
  | [ [| d |] ] -> d
  | _ -> Alcotest.fail ("expected one cell from " ^ sql)

let one_int s sql =
  match one s sql with
  | Datum.Int i -> i
  | d -> Alcotest.fail ("expected int, got " ^ Datum.to_display d)

let expect_error s sql =
  match exec s sql with
  | exception Instance.Session_error _ -> ()
  | exception Executor.Exec_error _ -> ()
  | _ -> Alcotest.fail ("should have failed: " ^ sql)

(* --- NULL semantics --- *)

let setup_nulls s =
  ignore (exec s "CREATE TABLE n (a bigint, b bigint)");
  ignore (exec s "INSERT INTO n VALUES (1, 10), (2, NULL), (NULL, 30), (NULL, NULL)")

let test_null_comparisons () =
  let _, s = fresh () in
  setup_nulls s;
  Alcotest.(check int) "= NULL matches nothing" 0
    (one_int s "SELECT count(*) FROM n WHERE a = NULL");
  Alcotest.(check int) "IS NULL" 2 (one_int s "SELECT count(*) FROM n WHERE a IS NULL");
  Alcotest.(check int) "IS NOT NULL" 2
    (one_int s "SELECT count(*) FROM n WHERE a IS NOT NULL");
  Alcotest.(check int) "<> skips nulls" 1
    (one_int s "SELECT count(*) FROM n WHERE a <> 1")

let test_null_three_valued_logic () =
  let _, s = fresh () in
  setup_nulls s;
  (* NULL OR TRUE = TRUE; NULL AND TRUE = NULL (rejected by WHERE) *)
  Alcotest.(check int) "null or true" 4
    (one_int s "SELECT count(*) FROM n WHERE a = NULL OR TRUE");
  Alcotest.(check int) "null and true" 0
    (one_int s "SELECT count(*) FROM n WHERE a = NULL AND TRUE");
  (* NOT NULL is NULL *)
  Alcotest.(check int) "not null-cmp" 0
    (one_int s "SELECT count(*) FROM n WHERE NOT (a = NULL)")

let test_null_in_aggregates () =
  let _, s = fresh () in
  setup_nulls s;
  Alcotest.(check int) "count(*) counts all" 4 (one_int s "SELECT count(*) FROM n");
  Alcotest.(check int) "count(a) skips nulls" 2 (one_int s "SELECT count(a) FROM n");
  Alcotest.(check int) "sum skips nulls" 3 (one_int s "SELECT sum(a) FROM n");
  (* avg over non-null values only *)
  (match one s "SELECT avg(b) FROM n" with
   | Datum.Float f -> Alcotest.(check (float 0.001)) "avg" 20.0 f
   | _ -> Alcotest.fail "avg type");
  (* min/max ignore nulls *)
  Alcotest.(check int) "min" 1 (one_int s "SELECT min(a) FROM n")

let test_null_in_group_by () =
  let _, s = fresh () in
  setup_nulls s;
  (* NULL forms its own group *)
  Alcotest.(check int) "3 groups" 3
    (List.length (rows s "SELECT a, count(*) FROM n GROUP BY a"))

let test_null_ordering () =
  let _, s = fresh () in
  setup_nulls s;
  (* NULLS LAST on ascending order *)
  match rows s "SELECT a FROM n ORDER BY a ASC" with
  | [ [| Datum.Int 1 |]; [| Datum.Int 2 |]; [| Datum.Null |]; [| Datum.Null |] ]
    -> ()
  | _ -> Alcotest.fail "nulls last failed"

let test_in_list_with_null () =
  let _, s = fresh () in
  setup_nulls s;
  (* x IN (1, NULL): true for 1, NULL (not true) otherwise *)
  Alcotest.(check int) "in with null" 1
    (one_int s "SELECT count(*) FROM n WHERE a IN (1, NULL)");
  (* NOT IN with NULL matches nothing *)
  Alcotest.(check int) "not in with null" 0
    (one_int s "SELECT count(*) FROM n WHERE a NOT IN (1, NULL)")

(* --- errors --- *)

let test_division_by_zero () =
  let _, s = fresh () in
  ignore (exec s "CREATE TABLE t (a bigint)");
  ignore (exec s "INSERT INTO t VALUES (1)");
  expect_error s "SELECT a / 0 FROM t"

let test_unknown_column_and_table () =
  let _, s = fresh () in
  ignore (exec s "CREATE TABLE t (a bigint)");
  expect_error s "SELECT nope FROM t";
  expect_error s "SELECT * FROM missing";
  expect_error s "INSERT INTO missing VALUES (1)"

let test_ambiguous_column () =
  let _, s = fresh () in
  ignore (exec s "CREATE TABLE x (v bigint)");
  ignore (exec s "CREATE TABLE y (v bigint)");
  ignore (exec s "INSERT INTO x VALUES (1)");
  ignore (exec s "INSERT INTO y VALUES (1)");
  expect_error s "SELECT v FROM x, y"

let test_cast_error_aborts_autocommit_txn () =
  let _, s = fresh () in
  ignore (exec s "CREATE TABLE t (a bigint)");
  expect_error s "INSERT INTO t VALUES ('not-a-number')";
  Alcotest.(check int) "nothing inserted" 0 (one_int s "SELECT count(*) FROM t")

let test_error_inside_block_keeps_prior_writes_pending () =
  let _, s = fresh () in
  ignore (exec s "CREATE TABLE t (a bigint)");
  ignore (exec s "BEGIN");
  ignore (exec s "INSERT INTO t VALUES (1)");
  expect_error s "SELECT 1 / 0";
  (* block failed: COMMIT acts as rollback *)
  ignore (exec s "COMMIT");
  Alcotest.(check int) "rolled back" 0 (one_int s "SELECT count(*) FROM t")

(* --- coercion / expressions --- *)

let test_int_float_mixing () =
  let _, s = fresh () in
  (match one s "SELECT 1 + 2.5" with
   | Datum.Float f -> Alcotest.(check (float 0.001)) "promote" 3.5 f
   | _ -> Alcotest.fail "type");
  (* integer division truncates *)
  Alcotest.(check int) "int div" 2 (one_int s "SELECT 7 / 3");
  Alcotest.(check int) "modulo" 1 (one_int s "SELECT 7 % 3")

let test_text_concat () =
  let _, s = fresh () in
  match one s "SELECT 'a' || 'b' || 42" with
  | Datum.Text "ab42" -> ()
  | d -> Alcotest.fail (Datum.to_display d)

let test_case_without_else_is_null () =
  let _, s = fresh () in
  match one s "SELECT CASE WHEN FALSE THEN 1 END" with
  | Datum.Null -> ()
  | d -> Alcotest.fail (Datum.to_display d)

let test_coalesce_nullif () =
  let _, s = fresh () in
  Alcotest.(check int) "coalesce" 5 (one_int s "SELECT coalesce(NULL, NULL, 5, 9)");
  (match one s "SELECT nullif(3, 3)" with
   | Datum.Null -> ()
   | _ -> Alcotest.fail "nullif equal");
  Alcotest.(check int) "nullif different" 3 (one_int s "SELECT nullif(3, 4)")

let test_like_corner_cases () =
  let m pattern str = Expr_eval.like_match ~pattern ~ci:false str in
  Alcotest.(check bool) "empty pattern empty string" true (m "" "");
  Alcotest.(check bool) "empty pattern" false (m "" "x");
  Alcotest.(check bool) "pure percent" true (m "%" "");
  Alcotest.(check bool) "underscore" true (m "a_c" "abc");
  Alcotest.(check bool) "underscore strict" false (m "a_c" "ac");
  Alcotest.(check bool) "multi percent" true (m "%a%b%" "xxaxxbxx");
  Alcotest.(check bool) "anchored" false (m "a%" "ba");
  Alcotest.(check bool) "repeated pattern" true (m "%ab%ab%" "abab")

let test_between_inclusive () =
  let _, s = fresh () in
  ignore (exec s "CREATE TABLE t (a bigint)");
  ignore (exec s "INSERT INTO t VALUES (1), (2), (3)");
  Alcotest.(check int) "inclusive" 3
    (one_int s "SELECT count(*) FROM t WHERE a BETWEEN 1 AND 3")

let test_offset_beyond_rows () =
  let _, s = fresh () in
  ignore (exec s "CREATE TABLE t (a bigint)");
  ignore (exec s "INSERT INTO t VALUES (1), (2)");
  Alcotest.(check int) "empty past end" 0
    (List.length (rows s "SELECT a FROM t ORDER BY a OFFSET 10"));
  Alcotest.(check int) "limit zero" 0
    (List.length (rows s "SELECT a FROM t LIMIT 0"))

let test_multi_key_ordering () =
  let _, s = fresh () in
  ignore (exec s "CREATE TABLE t (a bigint, b bigint)");
  ignore (exec s "INSERT INTO t VALUES (1, 2), (1, 1), (2, 1), (2, 2)");
  match rows s "SELECT a, b FROM t ORDER BY a ASC, b DESC" with
  | [
   [| Datum.Int 1; Datum.Int 2 |];
   [| Datum.Int 1; Datum.Int 1 |];
   [| Datum.Int 2; Datum.Int 2 |];
   [| Datum.Int 2; Datum.Int 1 |];
  ] ->
    ()
  | _ -> Alcotest.fail "mixed-direction ordering failed"

(* --- index maintenance under churn --- *)

let test_secondary_index_sees_updates () =
  let _, s = fresh () in
  ignore (exec s "CREATE TABLE t (k bigint PRIMARY KEY, v bigint)");
  ignore (exec s "CREATE INDEX t_v ON t USING BTREE (v)");
  for i = 1 to 50 do
    ignore (exec s (Printf.sprintf "INSERT INTO t VALUES (%d, %d)" i (i mod 5)))
  done;
  ignore (exec s "UPDATE t SET v = 99 WHERE v = 3");
  Alcotest.(check int) "moved rows found via index" 10
    (one_int s "SELECT count(*) FROM t WHERE v = 99");
  Alcotest.(check int) "old value gone" 0
    (one_int s "SELECT count(*) FROM t WHERE v = 3")

let test_index_correct_after_vacuum () =
  let inst, s = fresh () in
  ignore (exec s "CREATE TABLE t (k bigint PRIMARY KEY, v bigint)");
  ignore (exec s "CREATE INDEX t_v ON t USING BTREE (v)");
  for i = 1 to 30 do
    ignore (exec s (Printf.sprintf "INSERT INTO t VALUES (%d, %d)" i i))
  done;
  ignore (exec s "DELETE FROM t WHERE v <= 20");
  ignore (exec s "VACUUM t");
  (* slots are reused; index lookups must not resurrect old rows *)
  for i = 101 to 110 do
    ignore (exec s (Printf.sprintf "INSERT INTO t VALUES (%d, %d)" i i))
  done;
  Alcotest.(check int) "no ghosts" 0
    (one_int s "SELECT count(*) FROM t WHERE v = 5");
  Alcotest.(check int) "new rows found" 1
    (one_int s "SELECT count(*) FROM t WHERE v = 105");
  Alcotest.(check int) "total" 20 (one_int s "SELECT count(*) FROM t");
  ignore inst

let test_autovacuum_via_maintenance () =
  let inst, s = fresh () in
  ignore (exec s "CREATE TABLE t (k bigint PRIMARY KEY)");
  ignore (exec s "BEGIN");
  for i = 1 to 100 do
    ignore (exec s (Printf.sprintf "INSERT INTO t VALUES (%d)" i))
  done;
  ignore (exec s "COMMIT");
  ignore (exec s "DELETE FROM t WHERE k <= 80");
  let catalog = Instance.catalog inst in
  let heap =
    match (Catalog.find_table catalog "t").Catalog.store with
    | Catalog.Heap_store h -> h
    | _ -> assert false
  in
  Alcotest.(check bool) "dead tuples before" true (Storage.Heap.dead_estimate heap > 50);
  Instance.maintenance_tick inst;
  Alcotest.(check int) "autovacuum reclaimed" 0 (Storage.Heap.dead_estimate heap)

(* --- COPY --- *)

let test_copy_field_count_mismatch () =
  let _, s = fresh () in
  ignore (exec s "CREATE TABLE t (a bigint, b text)");
  (match Instance.copy_in s ~table:"t" ~columns:None [ "1\tx\textra" ] with
   | exception Instance.Session_error _ -> ()
   | _ -> Alcotest.fail "should reject wrong field count");
  (match Instance.copy_in s ~table:"t" ~columns:None [ "oops\tx" ] with
   | exception Instance.Session_error _ -> ()
   | _ -> Alcotest.fail "should reject bad int")

let test_copy_column_subset () =
  let _, s = fresh () in
  ignore (exec s "CREATE TABLE t (a bigint, b text DEFAULT 'd', c bigint)");
  ignore (Instance.copy_in s ~table:"t" ~columns:(Some [ "a"; "c" ]) [ "1\t2" ]);
  match rows s "SELECT a, b, c FROM t" with
  | [ [| Datum.Int 1; Datum.Null; Datum.Int 2 |] ] ->
    (* COPY does not apply defaults (like PostgreSQL): unlisted columns are NULL *)
    ()
  | _ -> Alcotest.fail "copy subset failed"

(* --- visibility subtleties --- *)

let test_own_uncommitted_update_chain () =
  let _, s = fresh () in
  ignore (exec s "CREATE TABLE t (k bigint PRIMARY KEY, v bigint)");
  ignore (exec s "INSERT INTO t VALUES (1, 0)");
  ignore (exec s "BEGIN");
  ignore (exec s "UPDATE t SET v = v + 1 WHERE k = 1");
  ignore (exec s "UPDATE t SET v = v + 1 WHERE k = 1");
  ignore (exec s "UPDATE t SET v = v + 1 WHERE k = 1");
  Alcotest.(check int) "sees own chain" 3 (one_int s "SELECT v FROM t WHERE k = 1");
  Alcotest.(check int) "single visible version" 1
    (one_int s "SELECT count(*) FROM t");
  ignore (exec s "COMMIT");
  Alcotest.(check int) "after commit" 3 (one_int s "SELECT v FROM t WHERE k = 1")

let test_read_committed_sees_new_data_per_statement () =
  let inst, s1 = fresh () in
  let s2 = Instance.connect inst in
  ignore (exec s1 "CREATE TABLE t (k bigint)");
  ignore (exec s2 "BEGIN");
  Alcotest.(check int) "empty" 0 (one_int s2 "SELECT count(*) FROM t");
  ignore (exec s1 "INSERT INTO t VALUES (1)");
  (* read committed: the next statement takes a fresh snapshot *)
  Alcotest.(check int) "sees committed insert" 1
    (one_int s2 "SELECT count(*) FROM t");
  ignore (exec s2 "COMMIT")

let test_delete_then_insert_same_pk_in_txn () =
  let _, s = fresh () in
  ignore (exec s "CREATE TABLE t (k bigint PRIMARY KEY, v text)");
  ignore (exec s "INSERT INTO t VALUES (1, 'old')");
  ignore (exec s "BEGIN");
  ignore (exec s "DELETE FROM t WHERE k = 1");
  ignore (exec s "INSERT INTO t VALUES (1, 'new')");
  ignore (exec s "COMMIT");
  match rows s "SELECT v FROM t WHERE k = 1" with
  | [ [| Datum.Text "new" |] ] -> ()
  | _ -> Alcotest.fail "replace within txn failed"

(* --- function library --- *)

let test_string_functions () =
  let _, s = fresh () in
  (match one s "SELECT substr('postgresql', 1, 8)" with
   | Datum.Text "postgres" -> ()
   | d -> Alcotest.fail (Datum.to_display d));
  (match one s "SELECT substr('abc', 10)" with
   | Datum.Text "" -> ()
   | d -> Alcotest.fail (Datum.to_display d));
  Alcotest.(check int) "strpos hit" 5 (one_int s "SELECT strpos('distributed', 'r')");
  Alcotest.(check int) "strpos miss" 0 (one_int s "SELECT strpos('abc', 'z')");
  (match one s "SELECT upper('mixED') || lower('CaSe')" with
   | Datum.Text "MIXEDcase" -> ()
   | d -> Alcotest.fail (Datum.to_display d));
  Alcotest.(check int) "length" 5 (one_int s "SELECT length('citus')");
  match one s "SELECT md5('x')" with
  | Datum.Text h -> Alcotest.(check int) "md5 hex length" 32 (String.length h)
  | d -> Alcotest.fail (Datum.to_display d)

let test_numeric_functions () =
  let _, s = fresh () in
  Alcotest.(check int) "abs int" 7 (one_int s "SELECT abs(0 - 7)");
  (match one s "SELECT floor(3.7)" with
   | Datum.Float f -> Alcotest.(check (float 0.001)) "floor" 3.0 f
   | d -> Alcotest.fail (Datum.to_display d));
  (match one s "SELECT power(2.0, 10.0)" with
   | Datum.Float f -> Alcotest.(check (float 0.001)) "power" 1024.0 f
   | d -> Alcotest.fail (Datum.to_display d));
  Alcotest.(check int) "greatest" 9 (one_int s "SELECT greatest(3, 9, NULL, 1)");
  Alcotest.(check int) "least" 1 (one_int s "SELECT least(3, 9, NULL, 1)");
  Alcotest.(check int) "mod function" 2 (one_int s "SELECT mod(17, 5)")

let test_json_builders () =
  let _, s = fresh () in
  match one s "SELECT jsonb_build_object('a', 1, 'b', 'x')" with
  | Datum.Json j ->
    Alcotest.(check bool) "field a" true
      (Json.equal (Option.get (Json.get_field j "a")) (Json.Num 1.0));
    Alcotest.(check bool) "field b" true
      (Json.equal (Option.get (Json.get_field j "b")) (Json.Str "x"))
  | d -> Alcotest.fail (Datum.to_display d)

let test_unknown_function_errors () =
  let _, s = fresh () in
  expect_error s "SELECT no_such_function(1)"

let test_strict_functions_propagate_null () =
  let _, s = fresh () in
  (match one s "SELECT length(NULL)" with
   | Datum.Null -> ()
   | d -> Alcotest.fail (Datum.to_display d));
  match one s "SELECT md5(NULL)" with
  | Datum.Null -> ()
  | d -> Alcotest.fail (Datum.to_display d)

(* --- subqueries --- *)

let test_uncorrelated_subquery_evaluated_once () =
  (* InitPlan semantics: the filter subquery must not re-execute per row.
     With 2000 outer rows and a 500-row inner table, per-row re-execution
     would do ~1M row visits; the meter proves it stays linear. *)
  let inst, s = fresh () in
  ignore (exec s "CREATE TABLE big (k bigint)");
  ignore (exec s "CREATE TABLE lookup (k bigint)");
  ignore (exec s "BEGIN");
  for i = 1 to 2000 do
    ignore (exec s (Printf.sprintf "INSERT INTO big VALUES (%d)" i))
  done;
  for i = 1 to 500 do
    ignore (exec s (Printf.sprintf "INSERT INTO lookup VALUES (%d)" (i * 2)))
  done;
  ignore (exec s "COMMIT");
  let before = Meter.read (Instance.meter inst) in
  Alcotest.(check int) "result" 500
    (one_int s "SELECT count(*) FROM big WHERE k IN (SELECT k FROM lookup)");
  let d = Meter.diff ~after:(Meter.read (Instance.meter inst)) ~before in
  Alcotest.(check bool) "linear work, not quadratic" true
    (d.Meter.rows_scanned < 6000)

let test_scalar_subquery_in_filter () =
  let _, s = fresh () in
  ignore (exec s "CREATE TABLE t (v bigint)");
  ignore (exec s "INSERT INTO t VALUES (1), (5), (9)");
  Alcotest.(check int) "above average" 1
    (one_int s
       "SELECT count(*) FROM t WHERE v > (SELECT avg(v) FROM t) + 1")

(* --- json --- *)

let test_json_null_propagation () =
  let _, s = fresh () in
  ignore (exec s "CREATE TABLE t (d jsonb)");
  ignore (exec s {|INSERT INTO t VALUES ('{"a": {"b": 1}}'), (NULL)|});
  Alcotest.(check int) "missing key is sql null" 1
    (one_int s "SELECT count(*) FROM t WHERE d->'missing' IS NULL AND d IS NOT NULL");
  Alcotest.(check int) "chained access" 1
    (one_int s "SELECT count(*) FROM t WHERE (d->'a'->>'b')::bigint = 1")

let test_json_deep_nesting () =
  let _, s = fresh () in
  ignore (exec s "CREATE TABLE t (d jsonb)");
  ignore
    (exec s {|INSERT INTO t VALUES ('{"a": [{"b": [1, 2, {"c": "deep"}]}]}')|});
  match rows s "SELECT d->'a'->0->'b'->2->>'c' FROM t" with
  | [ [| Datum.Text "deep" |] ] -> ()
  | _ -> Alcotest.fail "deep access failed"

let () =
  Alcotest.run "engine_edge"
    [
      ( "nulls",
        [
          Alcotest.test_case "comparisons" `Quick test_null_comparisons;
          Alcotest.test_case "three-valued logic" `Quick
            test_null_three_valued_logic;
          Alcotest.test_case "aggregates" `Quick test_null_in_aggregates;
          Alcotest.test_case "group by" `Quick test_null_in_group_by;
          Alcotest.test_case "ordering" `Quick test_null_ordering;
          Alcotest.test_case "in-list" `Quick test_in_list_with_null;
        ] );
      ( "errors",
        [
          Alcotest.test_case "division by zero" `Quick test_division_by_zero;
          Alcotest.test_case "unknown names" `Quick test_unknown_column_and_table;
          Alcotest.test_case "ambiguous column" `Quick test_ambiguous_column;
          Alcotest.test_case "cast error aborts" `Quick
            test_cast_error_aborts_autocommit_txn;
          Alcotest.test_case "error in block" `Quick
            test_error_inside_block_keeps_prior_writes_pending;
        ] );
      ( "expressions",
        [
          Alcotest.test_case "int/float mixing" `Quick test_int_float_mixing;
          Alcotest.test_case "concat" `Quick test_text_concat;
          Alcotest.test_case "case without else" `Quick
            test_case_without_else_is_null;
          Alcotest.test_case "coalesce/nullif" `Quick test_coalesce_nullif;
          Alcotest.test_case "like corners" `Quick test_like_corner_cases;
          Alcotest.test_case "between inclusive" `Quick test_between_inclusive;
          Alcotest.test_case "offset beyond rows" `Quick test_offset_beyond_rows;
          Alcotest.test_case "multi-key order" `Quick test_multi_key_ordering;
        ] );
      ( "index_churn",
        [
          Alcotest.test_case "updates visible via index" `Quick
            test_secondary_index_sees_updates;
          Alcotest.test_case "correct after vacuum" `Quick
            test_index_correct_after_vacuum;
          Alcotest.test_case "autovacuum" `Quick test_autovacuum_via_maintenance;
        ] );
      ( "copy",
        [
          Alcotest.test_case "field mismatch" `Quick test_copy_field_count_mismatch;
          Alcotest.test_case "column subset" `Quick test_copy_column_subset;
        ] );
      ( "visibility",
        [
          Alcotest.test_case "own update chain" `Quick
            test_own_uncommitted_update_chain;
          Alcotest.test_case "read committed" `Quick
            test_read_committed_sees_new_data_per_statement;
          Alcotest.test_case "delete+insert same pk" `Quick
            test_delete_then_insert_same_pk_in_txn;
        ] );
      ( "functions",
        [
          Alcotest.test_case "strings" `Quick test_string_functions;
          Alcotest.test_case "numerics" `Quick test_numeric_functions;
          Alcotest.test_case "json builders" `Quick test_json_builders;
          Alcotest.test_case "unknown errors" `Quick test_unknown_function_errors;
          Alcotest.test_case "strict null" `Quick
            test_strict_functions_propagate_null;
        ] );
      ( "subqueries",
        [
          Alcotest.test_case "initplan once" `Quick
            test_uncorrelated_subquery_evaluated_once;
          Alcotest.test_case "scalar in filter" `Quick
            test_scalar_subquery_in_filter;
        ] );
      ( "json",
        [
          Alcotest.test_case "null propagation" `Quick test_json_null_propagation;
          Alcotest.test_case "deep nesting" `Quick test_json_deep_nesting;
        ] );
    ]
