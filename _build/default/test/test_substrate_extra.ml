(* Substrate corners: datum typing, WAL filtering, B-tree bounds, GIN
   fallbacks, columnar page accounting, buffer-pool admin. *)

open Storage

(* --- datum --- *)

let test_ty_names_roundtrip () =
  List.iter
    (fun ty ->
      Alcotest.(check bool) "ty_of_name . ty_name = id" true
        (Datum.ty_of_name (Datum.ty_name ty) = ty))
    [ Datum.TBool; TInt; TFloat; TText; TJson; TTimestamp ]

let test_ty_of_name_aliases () =
  List.iter
    (fun (alias, ty) ->
      Alcotest.(check bool) alias true (Datum.ty_of_name alias = ty))
    [
      ("serial", Datum.TInt); ("int4", Datum.TInt); ("numeric", Datum.TFloat);
      ("varchar", Datum.TText); ("json", Datum.TJson); ("date", Datum.TTimestamp);
    ];
  match Datum.ty_of_name "geometry" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unknown type must raise"

let test_timestamp_ordering () =
  Alcotest.(check bool) "timestamps order" true
    (Datum.compare (Timestamp 1.0) (Timestamp 2.0) < 0);
  Alcotest.(check bool) "cast int to timestamp" true
    (Datum.equal (Datum.cast (Int 5) TTimestamp) (Timestamp 5.0))

let test_json_type_order () =
  (* Null < Bool < Num < Str < Arr < Obj *)
  let chain =
    [ Json.Null; Json.Bool true; Json.Num 0.0; Json.Str ""; Json.Arr []; Json.Obj [] ]
  in
  let rec pairs = function
    | a :: (b :: _ as rest) ->
      Alcotest.(check bool) "type rank order" true (Json.compare a b < 0);
      pairs rest
    | _ -> ()
  in
  pairs chain

(* --- txn / WAL --- *)

let test_wal_range_filtering () =
  let w = Txn.Wal.create () in
  let lsns = List.init 5 (fun i -> Txn.Wal.append w (Txn.Wal.Begin i)) in
  let l2 = List.nth lsns 1 and l4 = List.nth lsns 3 in
  Alcotest.(check int) "window" 2
    (List.length (Txn.Wal.records ~from:l2 ~upto:l4 w));
  Alcotest.(check int) "suffix" 2 (List.length (Txn.Wal.records ~from:l4 w));
  Alcotest.(check int) "all" 5 (List.length (Txn.Wal.records w))

let test_snapshot_with_no_active () =
  let m = Txn.Manager.create () in
  let x = Txn.Manager.begin_txn m in
  Txn.Manager.commit m x;
  let s = Txn.Manager.take_snapshot m in
  Alcotest.(check bool) "xmin = xmax when quiet" true
    (s.Txn.Snapshot.xmin = s.Txn.Snapshot.xmax);
  Alcotest.(check (list int)) "no active" [] s.Txn.Snapshot.active

let test_cancel_wait () =
  let l = Txn.Lock.create () in
  let t = Txn.Lock.Row ("t", 1) in
  ignore (Txn.Lock.acquire l ~owner:1 t Txn.Lock.Row_lock);
  ignore (Txn.Lock.acquire l ~owner:2 t Txn.Lock.Row_lock);
  Alcotest.(check int) "one wait edge" 1 (List.length (Txn.Lock.wait_edges l));
  Txn.Lock.cancel_wait l ~owner:2;
  Alcotest.(check int) "cleared" 0 (List.length (Txn.Lock.wait_edges l))

let test_held_by () =
  let l = Txn.Lock.create () in
  ignore (Txn.Lock.acquire l ~owner:1 (Txn.Lock.Table "a") Txn.Lock.Row_exclusive);
  ignore (Txn.Lock.acquire l ~owner:1 (Txn.Lock.Row ("a", 3)) Txn.Lock.Row_lock);
  Alcotest.(check int) "two locks held" 2 (List.length (Txn.Lock.held_by l 1));
  Alcotest.(check int) "none for other" 0 (List.length (Txn.Lock.held_by l 2))

(* --- btree bounds --- *)

let tree_with n =
  let b = Btree.create ~name:"i" ~order:8 () in
  for i = 1 to n do
    Btree.insert b [| Datum.Int i |] i
  done;
  b

let test_btree_bound_combinations () =
  let b = tree_with 20 in
  let count lower upper =
    List.length (Btree.range b ~lower ~upper)
  in
  Alcotest.(check int) "incl-incl" 6
    (count (Btree.Incl [| Datum.Int 5 |]) (Btree.Incl [| Datum.Int 10 |]));
  Alcotest.(check int) "excl-excl" 4
    (count (Btree.Excl [| Datum.Int 5 |]) (Btree.Excl [| Datum.Int 10 |]));
  Alcotest.(check int) "unbounded-lower" 10
    (count Btree.Unbounded (Btree.Incl [| Datum.Int 10 |]));
  Alcotest.(check int) "unbounded-upper" 11
    (count (Btree.Incl [| Datum.Int 10 |]) Btree.Unbounded);
  Alcotest.(check int) "empty range" 0
    (count (Btree.Excl [| Datum.Int 10 |]) (Btree.Excl [| Datum.Int 11 |]))

let test_btree_clear () =
  let b = tree_with 100 in
  Btree.clear b;
  Alcotest.(check int) "no entries" 0 (Btree.entry_count b);
  Alcotest.(check (list int)) "empty lookup" [] (Btree.find_eq b [| Datum.Int 1 |]);
  Btree.insert b [| Datum.Int 1 |] 1;
  Alcotest.(check (list int)) "usable again" [ 1 ] (Btree.find_eq b [| Datum.Int 1 |])

let test_btree_depth_grows () =
  let small = tree_with 5 and big = tree_with 2000 in
  Alcotest.(check int) "small is a leaf" 1 (Btree.depth small);
  Alcotest.(check bool) "big is deeper" true (Btree.depth big >= 3);
  Alcotest.(check bool) "page count grows" true
    (Btree.page_count big > Btree.page_count small)

(* --- gin fallbacks --- *)

let test_gin_underscore_pattern_falls_back () =
  let g = Gin.create ~name:"g" () in
  ignore (Gin.add g ~tid:1 "hello world");
  (* '_' wildcards cannot use trigram candidates *)
  Alcotest.(check bool) "underscore inside" true (Gin.candidates g "he_lo" = None)

let test_gin_multi_word_pattern () =
  let g = Gin.create ~name:"g" () in
  ignore (Gin.add g ~tid:1 "fix the query planner");
  ignore (Gin.add g ~tid:2 "fix the parser");
  match Gin.candidates g "query planner" with
  | Some [ 1 ] -> ()
  | Some l -> Alcotest.fail (Printf.sprintf "%d candidates" (List.length l))
  | None -> Alcotest.fail "long pattern must use the index"

(* --- columnar pages --- *)

let test_columnar_page_accounting () =
  let m = Txn.Manager.create () in
  let c = Columnar.create ~name:"c" ~ncols:4 ~stripe_rows:100 ~values_per_page:50 () in
  let x = Txn.Manager.begin_txn m in
  Columnar.append c ~xid:x
    (List.init 200 (fun i -> [| Datum.Int i; Datum.Int i; Datum.Int i; Datum.Int i |]));
  Txn.Manager.commit m x;
  (* 2 stripes x 100 rows / 50 per page = 2 pages per column per stripe *)
  Alcotest.(check int) "1 col" 4 (Columnar.pages_for_columns c ~columns:[ 0 ]);
  Alcotest.(check int) "all cols" 16
    (Columnar.pages_for_columns c ~columns:[ 0; 1; 2; 3 ]);
  (* the pool sees exactly that many distinct pages on a full scan *)
  let pool = Buffer_pool.create ~capacity:1000 in
  Columnar.scan ~pool c ~status:(Txn.Manager.status m)
    ~snapshot:(Txn.Manager.take_snapshot m) ~my_xid:None ~columns:[ 0 ]
    ~f:(fun _ -> ());
  Alcotest.(check int) "pool misses" 4 (Buffer_pool.stats pool).Buffer_pool.misses

(* --- buffer pool admin --- *)

let test_pool_reset_and_clear () =
  let p = Buffer_pool.create ~capacity:4 in
  ignore (Buffer_pool.access p { Buffer_pool.relation = "t"; page_no = 0 });
  ignore (Buffer_pool.access p { Buffer_pool.relation = "t"; page_no = 0 });
  let s = Buffer_pool.stats p in
  Alcotest.(check int) "one miss one hit" 1 s.Buffer_pool.hits;
  Buffer_pool.reset_stats p;
  Alcotest.(check int) "stats reset" 0 (Buffer_pool.stats p).Buffer_pool.hits;
  Alcotest.(check int) "pages kept" 1 (Buffer_pool.cached_pages p);
  Buffer_pool.clear p;
  Alcotest.(check int) "cold after clear" 0 (Buffer_pool.cached_pages p);
  Alcotest.(check bool) "miss after clear" false
    (Buffer_pool.access p { Buffer_pool.relation = "t"; page_no = 0 })

let test_heap_page_stats () =
  let m = Txn.Manager.create () in
  let h = Heap.create ~name:"t" ~rows_per_page:10 () in
  let x = Txn.Manager.begin_txn m in
  for i = 1 to 25 do
    ignore (Heap.insert h ~xid:x [| Datum.Int i |])
  done;
  Txn.Manager.commit m x;
  Alcotest.(check int) "3 pages" 3 (Heap.page_count h);
  Alcotest.(check int) "25 live" 25 (Heap.live_estimate h);
  Alcotest.(check int) "rows per page" 10 (Heap.rows_per_page h)

let () =
  Alcotest.run "substrate_extra"
    [
      ( "datum",
        [
          Alcotest.test_case "ty roundtrip" `Quick test_ty_names_roundtrip;
          Alcotest.test_case "ty aliases" `Quick test_ty_of_name_aliases;
          Alcotest.test_case "timestamps" `Quick test_timestamp_ordering;
          Alcotest.test_case "json type order" `Quick test_json_type_order;
        ] );
      ( "txn",
        [
          Alcotest.test_case "wal ranges" `Quick test_wal_range_filtering;
          Alcotest.test_case "quiet snapshot" `Quick test_snapshot_with_no_active;
          Alcotest.test_case "cancel wait" `Quick test_cancel_wait;
          Alcotest.test_case "held_by" `Quick test_held_by;
        ] );
      ( "btree",
        [
          Alcotest.test_case "bound combos" `Quick test_btree_bound_combinations;
          Alcotest.test_case "clear" `Quick test_btree_clear;
          Alcotest.test_case "depth" `Quick test_btree_depth_grows;
        ] );
      ( "gin",
        [
          Alcotest.test_case "underscore fallback" `Quick
            test_gin_underscore_pattern_falls_back;
          Alcotest.test_case "multi-word" `Quick test_gin_multi_word_pattern;
        ] );
      ( "columnar",
        [ Alcotest.test_case "page accounting" `Quick test_columnar_page_accounting ] );
      ( "buffer_pool",
        [
          Alcotest.test_case "reset/clear" `Quick test_pool_reset_and_clear;
          Alcotest.test_case "heap page stats" `Quick test_heap_page_stats;
        ] );
    ]
