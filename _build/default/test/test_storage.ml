(* Heap MVCC, buffer pool, B-tree, GIN, columnar tests. *)

open Storage

let mgr () = Txn.Manager.create ()

let status m = Txn.Manager.status m

let row i = [| Datum.Int i; Datum.Text (Printf.sprintf "v%d" i) |]

(* --- heap --- *)

let test_heap_insert_visible_after_commit () =
  let m = mgr () in
  let h = Heap.create ~name:"t" () in
  let x = Txn.Manager.begin_txn m in
  let tid = Heap.insert h ~xid:x (row 1) in
  (* other snapshot before commit: invisible *)
  let snap = Txn.Manager.take_snapshot m in
  Alcotest.(check bool) "invisible to others" true
    (Heap.fetch h ~tid ~status:(status m) ~snapshot:snap ~my_xid:None = None);
  (* own transaction sees its writes *)
  Alcotest.(check bool) "visible to self" true
    (Heap.fetch h ~tid ~status:(status m) ~snapshot:snap ~my_xid:(Some x) <> None);
  Txn.Manager.commit m x;
  let snap2 = Txn.Manager.take_snapshot m in
  Alcotest.(check bool) "visible after commit" true
    (Heap.fetch h ~tid ~status:(status m) ~snapshot:snap2 ~my_xid:None <> None)

let test_heap_aborted_insert_invisible () =
  let m = mgr () in
  let h = Heap.create ~name:"t" () in
  let x = Txn.Manager.begin_txn m in
  let tid = Heap.insert h ~xid:x (row 1) in
  Txn.Manager.abort m x;
  let snap = Txn.Manager.take_snapshot m in
  Alcotest.(check bool) "aborted invisible" true
    (Heap.fetch h ~tid ~status:(status m) ~snapshot:snap ~my_xid:None = None)

let test_heap_delete_mvcc () =
  let m = mgr () in
  let h = Heap.create ~name:"t" () in
  let x1 = Txn.Manager.begin_txn m in
  let tid = Heap.insert h ~xid:x1 (row 1) in
  Txn.Manager.commit m x1;
  (* reader snapshot before the delete commits *)
  let old_snap = Txn.Manager.take_snapshot m in
  let x2 = Txn.Manager.begin_txn m in
  ignore (Heap.delete h ~xid:x2 ~tid);
  Txn.Manager.commit m x2;
  (* old snapshot still sees the row; new one does not *)
  Alcotest.(check bool) "old snapshot sees" true
    (Heap.fetch h ~tid ~status:(status m) ~snapshot:old_snap ~my_xid:None <> None);
  let new_snap = Txn.Manager.take_snapshot m in
  Alcotest.(check bool) "new snapshot does not" true
    (Heap.fetch h ~tid ~status:(status m) ~snapshot:new_snap ~my_xid:None = None)

let test_heap_aborted_delete_ignored () =
  let m = mgr () in
  let h = Heap.create ~name:"t" () in
  let x1 = Txn.Manager.begin_txn m in
  let tid = Heap.insert h ~xid:x1 (row 1) in
  Txn.Manager.commit m x1;
  let x2 = Txn.Manager.begin_txn m in
  ignore (Heap.delete h ~xid:x2 ~tid);
  Txn.Manager.abort m x2;
  let snap = Txn.Manager.take_snapshot m in
  Alcotest.(check bool) "still visible" true
    (Heap.fetch h ~tid ~status:(status m) ~snapshot:snap ~my_xid:None <> None)

let test_heap_scan_counts () =
  let m = mgr () in
  let h = Heap.create ~name:"t" () in
  let x = Txn.Manager.begin_txn m in
  for i = 1 to 100 do ignore (Heap.insert h ~xid:x (row i)) done;
  Txn.Manager.commit m x;
  let snap = Txn.Manager.take_snapshot m in
  let n = ref 0 in
  Heap.scan h ~status:(status m) ~snapshot:snap ~my_xid:None ~f:(fun _ _ -> incr n);
  Alcotest.(check int) "100 rows" 100 !n

let test_heap_vacuum_reclaims_and_reuses () =
  let m = mgr () in
  let h = Heap.create ~name:"t" () in
  let x = Txn.Manager.begin_txn m in
  let tids = List.init 10 (fun i -> Heap.insert h ~xid:x (row i)) in
  Txn.Manager.commit m x;
  let x2 = Txn.Manager.begin_txn m in
  List.iter (fun tid -> ignore (Heap.delete h ~xid:x2 ~tid)) tids;
  Txn.Manager.commit m x2;
  let reclaimed =
    Heap.vacuum h ~oldest:(Txn.Manager.oldest_active_xid m) ~status:(status m)
  in
  Alcotest.(check int) "reclaimed" 10 reclaimed;
  (* next insert reuses a freed slot *)
  let x3 = Txn.Manager.begin_txn m in
  let tid = Heap.insert h ~xid:x3 (row 42) in
  Alcotest.(check bool) "slot reused" true (List.mem tid tids);
  Txn.Manager.commit m x3

let test_heap_vacuum_respects_old_snapshots () =
  let m = mgr () in
  let h = Heap.create ~name:"t" () in
  let x = Txn.Manager.begin_txn m in
  let tid = Heap.insert h ~xid:x (row 1) in
  Txn.Manager.commit m x;
  (* a long-running transaction holds back the horizon *)
  let long_running = Txn.Manager.begin_txn m in
  let x2 = Txn.Manager.begin_txn m in
  ignore (Heap.delete h ~xid:x2 ~tid);
  Txn.Manager.commit m x2;
  let reclaimed =
    Heap.vacuum h ~oldest:(Txn.Manager.oldest_active_xid m) ~status:(status m)
  in
  Alcotest.(check int) "nothing reclaimed" 0 reclaimed;
  Txn.Manager.commit m long_running


(* --- model-based MVCC property --- *)

(* Random interleavings of transactions against the heap must satisfy two
   invariants: (1) a snapshot taken at the start always sees exactly the
   initial rows, whatever commits later (repeatable reads under MVCC);
   (2) a fresh snapshot sees exactly the committed-state model. *)
type mvcc_op = Op_insert of int | Op_delete | Op_commit | Op_abort

let mvcc_op_gen =
  QCheck2.Gen.(
    oneof
      [
        map (fun k -> Op_insert k) (int_range 100 999);
        return Op_delete;
        return Op_commit;
        return Op_abort;
      ])

let prop_mvcc_model =
  QCheck2.Test.make ~name:"heap MVCC matches a committed-state model" ~count:80
    QCheck2.Gen.(list_size (int_range 1 40) mvcc_op_gen)
    (fun ops ->
      let m = Txn.Manager.create () in
      let h = Heap.create ~name:"t" () in
      let status = Txn.Manager.status m in
      (* initial committed rows 0..9 *)
      let x0 = Txn.Manager.begin_txn m in
      let initial_tids =
        List.init 10 (fun i -> (i, Heap.insert h ~xid:x0 [| Datum.Int i |]))
      in
      Txn.Manager.commit m x0;
      let snap0 = Txn.Manager.take_snapshot m in
      (* committed-state model: key -> tid *)
      let committed = Hashtbl.create 32 in
      List.iter (fun (k, tid) -> Hashtbl.replace committed k tid) initial_tids;
      (* one open transaction at a time, with its pending effects *)
      let open_txn = ref None in
      let visible_keys snap my =
        let out = ref [] in
        Heap.scan h ~status ~snapshot:snap ~my_xid:my ~f:(fun _ row ->
            match row.(0) with
            | Datum.Int k -> out := k :: !out
            | _ -> ());
        List.sort_uniq Int.compare !out
      in
      let model_keys () =
        Hashtbl.fold (fun k _ acc -> k :: acc) committed []
        |> List.sort_uniq Int.compare
      in
      let ok = ref true in
      let apply op =
        match (op, !open_txn) with
        | Op_insert k, _ ->
          let xid, pending =
            match !open_txn with
            | Some (x, p) -> (x, p)
            | None ->
              let x = Txn.Manager.begin_txn m in
              let p = ref ([], []) in
              open_txn := Some (x, p);
              (x, p)
          in
          if not (Hashtbl.mem committed k) then begin
            let tid = Heap.insert h ~xid [| Datum.Int k |] in
            let ins, del = !pending in
            pending := ((k, tid) :: ins, del)
          end
        | Op_delete, Some (xid, pending) ->
          (* delete a random committed row not already pending-deleted *)
          let ins, del = !pending in
          let candidates =
            Hashtbl.fold
              (fun k tid acc ->
                if List.mem_assoc k del then acc else (k, tid) :: acc)
              committed []
          in
          (match candidates with
           | (k, tid) :: _ ->
             ignore (Heap.delete h ~xid ~tid);
             pending := (ins, (k, tid) :: del)
           | [] -> ())
        | Op_delete, None -> ()
        | Op_commit, Some (xid, pending) ->
          Txn.Manager.commit m xid;
          let ins, del = !pending in
          List.iter (fun (k, _) -> Hashtbl.remove committed k) del;
          List.iter (fun (k, tid) -> Hashtbl.replace committed k tid) ins;
          open_txn := None
        | Op_abort, Some (xid, _) ->
          Txn.Manager.abort m xid;
          open_txn := None
        | (Op_commit | Op_abort), None -> ()
      in
      List.iter
        (fun op ->
          apply op;
          (* invariant 1: the old snapshot is stable *)
          if visible_keys snap0 None <> List.init 10 Fun.id then ok := false;
          (* invariant 2: a fresh snapshot sees the model *)
          if visible_keys (Txn.Manager.take_snapshot m) None <> model_keys ()
          then ok := false)
        ops;
      !ok)

(* --- buffer pool --- *)

let page rel no = { Buffer_pool.relation = rel; page_no = no }

let test_pool_hit_miss () =
  let p = Buffer_pool.create ~capacity:2 in
  Alcotest.(check bool) "first access misses" false (Buffer_pool.access p (page "t" 0));
  Alcotest.(check bool) "second hits" true (Buffer_pool.access p (page "t" 0));
  ignore (Buffer_pool.access p (page "t" 1));
  ignore (Buffer_pool.access p (page "t" 2));
  (* page 0 evicted (LRU) *)
  Alcotest.(check bool) "evicted" false (Buffer_pool.access p (page "t" 0));
  let s = Buffer_pool.stats p in
  Alcotest.(check int) "evictions" 2 s.Buffer_pool.evictions

let test_pool_lru_order () =
  let p = Buffer_pool.create ~capacity:2 in
  ignore (Buffer_pool.access p (page "t" 0));
  ignore (Buffer_pool.access p (page "t" 1));
  ignore (Buffer_pool.access p (page "t" 0));
  (* touch 0 *)
  ignore (Buffer_pool.access p (page "t" 2));
  (* evicts 1, not 0 *)
  Alcotest.(check bool) "0 still cached" true (Buffer_pool.access p (page "t" 0))

let test_scan_accounting () =
  let m = mgr () in
  let h = Heap.create ~name:"t" ~rows_per_page:10 () in
  let x = Txn.Manager.begin_txn m in
  for i = 1 to 100 do ignore (Heap.insert h ~xid:x (row i)) done;
  Txn.Manager.commit m x;
  let snap = Txn.Manager.take_snapshot m in
  let pool = Buffer_pool.create ~capacity:1000 in
  Heap.scan ~pool h ~status:(status m) ~snapshot:snap ~my_xid:None
    ~f:(fun _ _ -> ());
  let s = Buffer_pool.stats pool in
  Alcotest.(check int) "10 pages missed" 10 s.Buffer_pool.misses;
  (* second scan: all hits *)
  Heap.scan ~pool h ~status:(status m) ~snapshot:snap ~my_xid:None
    ~f:(fun _ _ -> ());
  let s2 = Buffer_pool.stats pool in
  Alcotest.(check int) "no new misses" 10 s2.Buffer_pool.misses

(* --- btree --- *)

let key i = [| Datum.Int i |]

let test_btree_insert_find () =
  let b = Btree.create ~name:"i" () in
  for i = 0 to 999 do Btree.insert b (key i) i done;
  Alcotest.(check (list int)) "find 500" [ 500 ] (Btree.find_eq b (key 500));
  Alcotest.(check (list int)) "missing" [] (Btree.find_eq b (key 5000));
  Alcotest.(check int) "entries" 1000 (Btree.entry_count b);
  Alcotest.(check bool) "multi-level" true (Btree.depth b > 1)

let test_btree_duplicates () =
  let b = Btree.create ~name:"i" () in
  Btree.insert b (key 1) 10;
  Btree.insert b (key 1) 11;
  Btree.insert b (key 1) 12;
  Alcotest.(check (list int)) "all tids" [ 10; 11; 12 ]
    (List.sort Int.compare (Btree.find_eq b (key 1)))

let test_btree_remove () =
  let b = Btree.create ~name:"i" () in
  Btree.insert b (key 1) 10;
  Btree.insert b (key 1) 11;
  Btree.remove b (key 1) 10;
  Alcotest.(check (list int)) "one left" [ 11 ] (Btree.find_eq b (key 1));
  Btree.remove b (key 1) 11;
  Alcotest.(check (list int)) "empty" [] (Btree.find_eq b (key 1))

let test_btree_range () =
  let b = Btree.create ~name:"i" () in
  for i = 0 to 99 do Btree.insert b (key i) i done;
  let results =
    Btree.range b ~lower:(Btree.Incl (key 10)) ~upper:(Btree.Excl (key 20))
  in
  Alcotest.(check int) "10 results" 10 (List.length results);
  let tids = List.map snd results in
  Alcotest.(check (list int)) "in order" (List.init 10 (fun i -> i + 10)) tids

let test_btree_range_order_random_inserts () =
  let b = Btree.create ~name:"i" () in
  let values = List.init 500 (fun i -> (i * 7919) mod 500) in
  List.iter (fun v -> Btree.insert b (key v) v) values;
  let all = Btree.range b ~lower:Btree.Unbounded ~upper:Btree.Unbounded in
  let keys = List.map (fun (k, _) -> k.(0)) all in
  let sorted = List.sort Datum.compare keys in
  Alcotest.(check bool) "sorted" true (keys = sorted);
  Alcotest.(check int) "all present" 500 (List.length all)

let test_btree_composite_prefix () =
  let b = Btree.create ~name:"i" () in
  for w = 1 to 5 do
    for d = 1 to 10 do
      Btree.insert b [| Datum.Int w; Datum.Int d |] ((w * 100) + d)
    done
  done;
  let results = Btree.prefix b [| Datum.Int 3 |] in
  Alcotest.(check int) "10 entries for w=3" 10 (List.length results);
  List.iter
    (fun (k, _) -> Alcotest.(check bool) "prefix matches" true (k.(0) = Datum.Int 3))
    results

let prop_btree_matches_sorted_assoc =
  QCheck2.Test.make ~name:"btree range = sorted reference" ~count:100
    QCheck2.Gen.(list_size (int_range 0 200) (int_range 0 50))
    (fun values ->
      let b = Btree.create ~name:"i" ~order:4 () in
      List.iteri (fun i v -> Btree.insert b (key v) i) values;
      let expected =
        List.mapi (fun i v -> (v, i)) values
        |> List.sort (fun (a, i) (b, j) ->
               if a = b then Int.compare i j else Int.compare a b)
      in
      let actual =
        Btree.range b ~lower:Btree.Unbounded ~upper:Btree.Unbounded
        |> List.map (fun (k, tid) ->
               (match k.(0) with Datum.Int v -> v | _ -> -1), tid)
        |> List.sort (fun (a, i) (b, j) ->
               if a = b then Int.compare i j else Int.compare a b)
      in
      expected = actual)

(* --- GIN --- *)

let test_gin_trigrams () =
  let tgs = Gin.trigrams_of "cat" in
  Alcotest.(check bool) "has ' ca'" true (List.mem " ca" tgs);
  Alcotest.(check bool) "has 'cat'" true (List.mem "cat" tgs);
  Alcotest.(check bool) "has 'at '" true (List.mem "at " tgs)

let test_gin_candidates () =
  let g = Gin.create ~name:"g" () in
  ignore (Gin.add g ~tid:1 "fix postgres bug in planner");
  ignore (Gin.add g ~tid:2 "update readme");
  ignore (Gin.add g ~tid:3 "postgresql rocks");
  (match Gin.candidates g "postgres" with
   | Some tids ->
     Alcotest.(check (list int)) "both postgres rows" [ 1; 3 ]
       (List.sort Int.compare tids)
   | None -> Alcotest.fail "pattern long enough");
  (* short pattern cannot use the index *)
  Alcotest.(check bool) "short pattern" true (Gin.candidates g "ab" = None)

let test_gin_remove () =
  let g = Gin.create ~name:"g" () in
  ignore (Gin.add g ~tid:1 "hello world");
  Gin.remove g ~tid:1 "hello world";
  match Gin.candidates g "hello" with
  | Some [] -> ()
  | Some l -> Alcotest.fail (Printf.sprintf "%d stale" (List.length l))
  | None -> Alcotest.fail "unexpected"

let test_gin_case_insensitive () =
  let g = Gin.create ~name:"g" () in
  ignore (Gin.add g ~tid:1 "PostgreSQL Is Great");
  match Gin.candidates g "postgresql" with
  | Some [ 1 ] -> ()
  | _ -> Alcotest.fail "case-insensitive match failed"

(* --- columnar --- *)

let test_columnar_roundtrip () =
  let m = mgr () in
  let c = Columnar.create ~name:"c" ~ncols:2 ~stripe_rows:10 () in
  let x = Txn.Manager.begin_txn m in
  Columnar.append c ~xid:x (List.init 25 (fun i -> row i));
  Txn.Manager.commit m x;
  let snap = Txn.Manager.take_snapshot m in
  let n = ref 0 in
  Columnar.scan c ~status:(status m) ~snapshot:snap ~my_xid:None
    ~columns:[ 0; 1 ] ~f:(fun _ -> incr n);
  Alcotest.(check int) "25 rows" 25 !n;
  Alcotest.(check int) "3 stripes (2 sealed + pending)" 3 (Columnar.stripe_count c)

let test_columnar_projection () =
  let m = mgr () in
  let c = Columnar.create ~name:"c" ~ncols:2 ~stripe_rows:10 () in
  let x = Txn.Manager.begin_txn m in
  Columnar.append c ~xid:x (List.init 10 (fun i -> row i));
  Txn.Manager.commit m x;
  let snap = Txn.Manager.take_snapshot m in
  Columnar.scan c ~status:(status m) ~snapshot:snap ~my_xid:None ~columns:[ 0 ]
    ~f:(fun r ->
      Alcotest.(check bool) "col 1 not materialized" true (Datum.is_null r.(1)))

let test_columnar_stripe_skipping () =
  let m = mgr () in
  let c = Columnar.create ~name:"c" ~ncols:2 ~stripe_rows:10 () in
  let x = Txn.Manager.begin_txn m in
  Columnar.append c ~xid:x (List.init 30 (fun i -> row i));
  Txn.Manager.commit m x;
  let snap = Txn.Manager.take_snapshot m in
  let seen = ref 0 in
  (* rows 0..29 in stripes of 10; predicate v >= 20 can skip 2 stripes *)
  Columnar.scan c ~status:(status m) ~snapshot:snap ~my_xid:None
    ~stripe_predicate:(fun ~mins:_ ~maxs ->
      match maxs.(0) with
      | Datum.Int mx -> mx >= 20
      | _ -> true)
    ~columns:[ 0 ] ~f:(fun _ -> incr seen);
  Alcotest.(check int) "only last stripe scanned" 10 !seen

let test_columnar_uncommitted_invisible () =
  let m = mgr () in
  let c = Columnar.create ~name:"c" ~ncols:2 ~stripe_rows:5 () in
  let x = Txn.Manager.begin_txn m in
  Columnar.append c ~xid:x (List.init 5 (fun i -> row i));
  let snap = Txn.Manager.take_snapshot m in
  let n = ref 0 in
  Columnar.scan c ~status:(status m) ~snapshot:snap ~my_xid:None ~columns:[ 0 ]
    ~f:(fun _ -> incr n);
  Alcotest.(check int) "invisible" 0 !n;
  Txn.Manager.abort m x

let () =
  Alcotest.run "storage"
    [
      ( "heap",
        [
          Alcotest.test_case "insert visibility" `Quick
            test_heap_insert_visible_after_commit;
          Alcotest.test_case "aborted insert" `Quick
            test_heap_aborted_insert_invisible;
          Alcotest.test_case "delete mvcc" `Quick test_heap_delete_mvcc;
          Alcotest.test_case "aborted delete" `Quick
            test_heap_aborted_delete_ignored;
          Alcotest.test_case "scan" `Quick test_heap_scan_counts;
          Alcotest.test_case "vacuum reclaim/reuse" `Quick
            test_heap_vacuum_reclaims_and_reuses;
          Alcotest.test_case "vacuum horizon" `Quick
            test_heap_vacuum_respects_old_snapshots;
          QCheck_alcotest.to_alcotest prop_mvcc_model;
        ] );
      ( "buffer_pool",
        [
          Alcotest.test_case "hit/miss/evict" `Quick test_pool_hit_miss;
          Alcotest.test_case "lru order" `Quick test_pool_lru_order;
          Alcotest.test_case "scan accounting" `Quick test_scan_accounting;
        ] );
      ( "btree",
        [
          Alcotest.test_case "insert/find" `Quick test_btree_insert_find;
          Alcotest.test_case "duplicates" `Quick test_btree_duplicates;
          Alcotest.test_case "remove" `Quick test_btree_remove;
          Alcotest.test_case "range" `Quick test_btree_range;
          Alcotest.test_case "random order" `Quick
            test_btree_range_order_random_inserts;
          Alcotest.test_case "composite prefix" `Quick test_btree_composite_prefix;
          QCheck_alcotest.to_alcotest prop_btree_matches_sorted_assoc;
        ] );
      ( "gin",
        [
          Alcotest.test_case "trigrams" `Quick test_gin_trigrams;
          Alcotest.test_case "candidates" `Quick test_gin_candidates;
          Alcotest.test_case "remove" `Quick test_gin_remove;
          Alcotest.test_case "case insensitive" `Quick test_gin_case_insensitive;
        ] );
      ( "columnar",
        [
          Alcotest.test_case "roundtrip" `Quick test_columnar_roundtrip;
          Alcotest.test_case "projection" `Quick test_columnar_projection;
          Alcotest.test_case "stripe skipping" `Quick
            test_columnar_stripe_skipping;
          Alcotest.test_case "uncommitted invisible" `Quick
            test_columnar_uncommitted_invisible;
        ] );
    ]
