(* Guard the benchmark harness against bitrot: run the fast experiments
   end-to-end and sanity-check that the reproduced shapes hold. The slow
   figures (7, 8 at full size) are covered by their underlying workload
   tests; the full set runs via `dune exec bench/main.exe`. *)

let test_tables_render () = Tables.run ()

let test_fig9_shapes () =
  let results = Fig9.run () in
  (* (label, same_tps, diff_tps, crossed) per setup 0+1 / 4+1 / 8+1 *)
  match results with
  | [ (_, same0, diff0, cross0); (_, same4, diff4, cross4); (_, same8, diff8, _) ]
    ->
    Alcotest.(check bool) "no cross-node txns on one node" true (cross0 = 0.0);
    Alcotest.(check bool) "no 2PC penalty on one node" true
      (diff0 >= same0 *. 0.95);
    Alcotest.(check bool) "most diff-key txns are multi-node" true (cross4 > 0.5);
    Alcotest.(check bool) "2PC penalty at 4+1" true (diff4 < same4 *. 0.95);
    Alcotest.(check bool) "same-key scales with nodes" true
      (same4 > same0 *. 2.0 && same8 > same4);
    Alcotest.(check bool) "diff-key also scales" true
      (diff4 > diff0 *. 2.0 && diff8 >= diff4 *. 0.95)
  | _ -> Alcotest.fail "expected three setups"

let test_fig6_shapes () =
  let results = Fig6.run () in
  match List.map (fun (_, (nopm, _, _)) -> nopm) results with
  | [ pg; c0; c4; c8 ] ->
    (* the paper's qualitative claims *)
    Alcotest.(check bool) "0+1 slightly below postgres" true
      (c0 < pg && c0 > pg *. 0.5);
    Alcotest.(check bool) "4+1 well above postgres (memory fit)" true
      (c4 > pg *. 4.0);
    Alcotest.(check bool) "8+1 above 4+1 but sublinear" true
      (c8 > c4 && c8 < c4 *. 2.0)
  | _ -> Alcotest.fail "expected four setups"

let test_fig10_shapes () =
  let results = Fig10.run () in
  match List.map (fun (_, (tps, _, _)) -> tps) results with
  | [ pg; c0; c4; c8 ] ->
    Alcotest.(check bool) "0+1 slightly below postgres" true
      (c0 < pg && c0 > pg *. 0.5);
    Alcotest.(check bool) "4+1 far above postgres" true (c4 > pg *. 4.0);
    Alcotest.(check bool) "8+1 above 4+1" true (c8 > c4)
  | _ -> Alcotest.fail "expected four setups"

let test_closed_model_consistency () =
  (* the harness-level wrapper must agree with the raw solver *)
  let db = Workloads.Db.postgres () in
  let u =
    {
      Harness.per_node =
        [ ("coordinator", { Sim.Cost.cpu_s = 1.0; io_s = 2.0 }) ];
      node_meters = [ ("coordinator", Engine.Meter.zero) ];
      cross_rts = 0;
      rows_shipped = 0;
      connections = 0;
    }
  in
  let c = Harness.closed_throughput db u ~n_txns:1000 ~clients:1000 ~think_s:0.0 in
  (* io demand 2ms/txn on one disk: X = 500/s *)
  Alcotest.(check (float 1.0)) "disk-bound tps" 500.0 c.Harness.tps;
  Alcotest.(check bool) "bottleneck is the disk" true
    (c.Harness.bottleneck = "coordinator/disk")

let test_ablation_slow_start_shape () =
  (* fast tasks: 1 connection under slow start; long tasks: full fan-out *)
  let _, c_fast =
    Citus.Adaptive_executor.simulate_timeline
      ~durations:(List.init 16 (fun _ -> 0.0003))
      ~slow_start:0.010 ~max_conns:16
  in
  let m_long, c_long =
    Citus.Adaptive_executor.simulate_timeline
      ~durations:(List.init 16 (fun _ -> 0.2))
      ~slow_start:0.010 ~max_conns:16
  in
  Alcotest.(check int) "fast: one connection" 1 c_fast;
  Alcotest.(check int) "long: sixteen" 16 c_long;
  Alcotest.(check bool) "long: parallel" true (m_long < 0.5)

let () =
  Alcotest.run "bench"
    [
      ( "smoke",
        [
          Alcotest.test_case "tables render" `Quick test_tables_render;
          Alcotest.test_case "fig6 shapes hold" `Slow test_fig6_shapes;
          Alcotest.test_case "fig9 shapes hold" `Slow test_fig9_shapes;
          Alcotest.test_case "fig10 shapes hold" `Slow test_fig10_shapes;
        ] );
      ( "model",
        [
          Alcotest.test_case "closed model" `Quick test_closed_model_consistency;
          Alcotest.test_case "slow start shape" `Quick
            test_ablation_slow_start_shape;
        ] );
    ]
