(* End-to-end single-node engine tests: SQL in, rows out. *)

open Engine

let fresh () =
  let inst = Instance.create ~name:"pg" () in
  (inst, Instance.connect inst)

let exec s sql = Instance.exec s sql

let rows s sql = (exec s sql).Instance.rows

let one_int s sql =
  match rows s sql with
  | [ [| Datum.Int i |] ] -> i
  | r ->
    Alcotest.fail
      (Printf.sprintf "expected one int from %s, got %d rows" sql
         (List.length r))

let check_int s msg expected sql = Alcotest.(check int) msg expected (one_int s sql)

let setup_accounts s =
  ignore (exec s "CREATE TABLE accounts (id bigint PRIMARY KEY, owner text, balance bigint)");
  ignore
    (exec s
       "INSERT INTO accounts VALUES (1, 'alice', 100), (2, 'bob', 200), (3, 'carol', 300)")

(* --- basic CRUD --- *)

let test_create_insert_select () =
  let _, s = fresh () in
  setup_accounts s;
  check_int s "count" 3 "SELECT count(*) FROM accounts";
  (match rows s "SELECT owner FROM accounts WHERE id = 2" with
   | [ [| Datum.Text "bob" |] ] -> ()
   | _ -> Alcotest.fail "lookup failed")

let test_update () =
  let _, s = fresh () in
  setup_accounts s;
  let r = exec s "UPDATE accounts SET balance = balance + 10 WHERE id = 1" in
  Alcotest.(check int) "one row" 1 r.Instance.affected;
  check_int s "updated" 110 "SELECT balance FROM accounts WHERE id = 1"

let test_delete () =
  let _, s = fresh () in
  setup_accounts s;
  ignore (exec s "DELETE FROM accounts WHERE balance > 150");
  check_int s "left" 1 "SELECT count(*) FROM accounts"

let test_insert_defaults_and_nulls () =
  let _, s = fresh () in
  ignore (exec s "CREATE TABLE t (a bigint, b text DEFAULT 'dflt', c bigint)");
  ignore (exec s "INSERT INTO t (a) VALUES (1)");
  match rows s "SELECT a, b, c FROM t" with
  | [ [| Datum.Int 1; Datum.Text "dflt"; Datum.Null |] ] -> ()
  | _ -> Alcotest.fail "defaults/null failed"

let test_pk_violation () =
  let _, s = fresh () in
  setup_accounts s;
  (match exec s "INSERT INTO accounts VALUES (1, 'dup', 0)" with
   | exception Instance.Session_error m ->
     Alcotest.(check bool) "mentions pk" true
       (String.length m > 0)
   | _ -> Alcotest.fail "expected pk violation");
  (* ON CONFLICT DO NOTHING swallows it *)
  let r = exec s "INSERT INTO accounts VALUES (1, 'dup', 0) ON CONFLICT DO NOTHING" in
  Alcotest.(check int) "no rows" 0 r.Instance.affected

let test_not_null () =
  let _, s = fresh () in
  ignore (exec s "CREATE TABLE t (a bigint NOT NULL)");
  match exec s "INSERT INTO t VALUES (NULL)" with
  | exception Instance.Session_error _ -> ()
  | _ -> Alcotest.fail "expected not-null violation"

(* --- expressions / filters --- *)

let test_where_logic () =
  let _, s = fresh () in
  setup_accounts s;
  check_int s "or" 2 "SELECT count(*) FROM accounts WHERE id = 1 OR id = 3";
  check_int s "between" 2 "SELECT count(*) FROM accounts WHERE balance BETWEEN 100 AND 200";
  check_int s "in" 2 "SELECT count(*) FROM accounts WHERE owner IN ('alice', 'bob')";
  check_int s "like" 1 "SELECT count(*) FROM accounts WHERE owner LIKE 'al%'";
  check_int s "null cmp" 0 "SELECT count(*) FROM accounts WHERE balance = NULL"

let test_case_and_arith () =
  let _, s = fresh () in
  setup_accounts s;
  check_int s "case" 1
    "SELECT count(*) FROM accounts WHERE CASE WHEN balance > 250 THEN TRUE ELSE FALSE END";
  check_int s "arith" 200 "SELECT balance * 2 FROM accounts WHERE id = 1"

(* --- aggregates / grouping --- *)

let test_aggregates () =
  let _, s = fresh () in
  setup_accounts s;
  check_int s "sum" 600 "SELECT sum(balance) FROM accounts";
  check_int s "min" 100 "SELECT min(balance) FROM accounts";
  check_int s "max" 300 "SELECT max(balance) FROM accounts";
  (match rows s "SELECT avg(balance) FROM accounts" with
   | [ [| Datum.Float f |] ] -> Alcotest.(check (float 0.001)) "avg" 200.0 f
   | _ -> Alcotest.fail "avg failed")

let test_count_empty () =
  let _, s = fresh () in
  ignore (exec s "CREATE TABLE empty_t (a bigint)");
  check_int s "count empty" 0 "SELECT count(*) FROM empty_t";
  match rows s "SELECT sum(a) FROM empty_t" with
  | [ [| Datum.Null |] ] -> ()
  | _ -> Alcotest.fail "sum of empty should be NULL"

let test_group_by () =
  let _, s = fresh () in
  ignore (exec s "CREATE TABLE orders (cust text, amount bigint)");
  ignore
    (exec s
       "INSERT INTO orders VALUES ('a', 10), ('a', 20), ('b', 5), ('b', 5), ('c', 1)");
  let r =
    rows s
      "SELECT cust, sum(amount), count(*) FROM orders GROUP BY cust ORDER BY cust"
  in
  match r with
  | [
   [| Datum.Text "a"; Datum.Int 30; Datum.Int 2 |];
   [| Datum.Text "b"; Datum.Int 10; Datum.Int 2 |];
   [| Datum.Text "c"; Datum.Int 1; Datum.Int 1 |];
  ] ->
    ()
  | _ -> Alcotest.fail "group by failed"

let test_group_by_ordinal_and_having () =
  let _, s = fresh () in
  ignore (exec s "CREATE TABLE orders (cust text, amount bigint)");
  ignore
    (exec s "INSERT INTO orders VALUES ('a', 10), ('a', 20), ('b', 5)");
  let r =
    rows s
      "SELECT cust, sum(amount) AS total FROM orders GROUP BY 1 HAVING sum(amount) > 10 ORDER BY 1"
  in
  match r with
  | [ [| Datum.Text "a"; Datum.Int 30 |] ] -> ()
  | _ -> Alcotest.fail "ordinal group by / having failed"

let test_distinct_agg () =
  let _, s = fresh () in
  ignore (exec s "CREATE TABLE e (u bigint)");
  ignore (exec s "INSERT INTO e VALUES (1), (1), (2), (3), (3)");
  check_int s "distinct count" 3 "SELECT count(DISTINCT u) FROM e"

let test_distinct_select () =
  let _, s = fresh () in
  ignore (exec s "CREATE TABLE e (u bigint)");
  ignore (exec s "INSERT INTO e VALUES (1), (1), (2)");
  Alcotest.(check int) "distinct rows" 2
    (List.length (rows s "SELECT DISTINCT u FROM e"))

(* --- order / limit --- *)

let test_order_limit_offset () =
  let _, s = fresh () in
  setup_accounts s;
  (match rows s "SELECT id FROM accounts ORDER BY balance DESC LIMIT 1" with
   | [ [| Datum.Int 3 |] ] -> ()
   | _ -> Alcotest.fail "order desc limit");
  match rows s "SELECT id FROM accounts ORDER BY id ASC LIMIT 1 OFFSET 1" with
  | [ [| Datum.Int 2 |] ] -> ()
  | _ -> Alcotest.fail "offset"

(* --- joins --- *)

let setup_join s =
  ignore (exec s "CREATE TABLE dept (id bigint, dname text)");
  ignore (exec s "CREATE TABLE emp (id bigint, dept_id bigint, ename text)");
  ignore (exec s "INSERT INTO dept VALUES (1, 'eng'), (2, 'sales'), (3, 'empty')");
  ignore
    (exec s
       "INSERT INTO emp VALUES (1, 1, 'ann'), (2, 1, 'ben'), (3, 2, 'cat'), (4, NULL, 'dan')")

let test_inner_join () =
  let _, s = fresh () in
  setup_join s;
  check_int s "join rows" 3
    "SELECT count(*) FROM emp JOIN dept ON emp.dept_id = dept.id";
  check_int s "eng employees" 2
    "SELECT count(*) FROM emp JOIN dept ON emp.dept_id = dept.id WHERE dept.dname = 'eng'"

let test_left_join () =
  let _, s = fresh () in
  setup_join s;
  check_int s "left join keeps dan" 4
    "SELECT count(*) FROM emp LEFT JOIN dept ON emp.dept_id = dept.id";
  check_int s "null extended" 1
    "SELECT count(*) FROM emp LEFT JOIN dept ON emp.dept_id = dept.id WHERE dept.dname IS NULL"

let test_cross_join () =
  let _, s = fresh () in
  setup_join s;
  check_int s "cross" 12 "SELECT count(*) FROM emp CROSS JOIN dept"

let test_comma_join_with_where () =
  let _, s = fresh () in
  setup_join s;
  check_int s "comma join" 3
    "SELECT count(*) FROM emp, dept WHERE emp.dept_id = dept.id"

let test_join_aggregate () =
  let _, s = fresh () in
  setup_join s;
  let r =
    rows s
      "SELECT dept.dname, count(*) FROM emp JOIN dept ON emp.dept_id = dept.id \
       GROUP BY dept.dname ORDER BY dept.dname"
  in
  match r with
  | [ [| Datum.Text "eng"; Datum.Int 2 |]; [| Datum.Text "sales"; Datum.Int 1 |] ]
    -> ()
  | _ -> Alcotest.fail "join aggregate failed"

(* --- subqueries --- *)

let test_subquery_in_from () =
  let _, s = fresh () in
  setup_accounts s;
  check_int s "nested" 2
    "SELECT count(*) FROM (SELECT balance FROM accounts WHERE balance > 100) AS rich"

let test_nested_aggregation_venicedb_shape () =
  (* the RQV dashboard query shape: avg of per-device averages *)
  let _, s = fresh () in
  ignore (exec s "CREATE TABLE reports (deviceid bigint, metric bigint)");
  ignore
    (exec s
       "INSERT INTO reports VALUES (1, 10), (1, 20), (2, 100), (2, 200), (3, 0)");
  match
    rows s
      "SELECT avg(device_avg) FROM (SELECT deviceid, avg(metric) AS device_avg \
       FROM reports GROUP BY deviceid) AS subq"
  with
  | [ [| Datum.Float f |] ] -> Alcotest.(check (float 0.001)) "avg of avgs" 55.0 f
  | _ -> Alcotest.fail "nested agg failed"

let test_scalar_subquery () =
  let _, s = fresh () in
  setup_accounts s;
  check_int s "scalar" 1
    "SELECT count(*) FROM accounts WHERE balance = (SELECT max(balance) FROM accounts)"

let test_in_subquery () =
  let _, s = fresh () in
  setup_join s;
  check_int s "in subquery" 3
    "SELECT count(*) FROM emp WHERE dept_id IN (SELECT id FROM dept WHERE id < 3)"

(* --- indexes --- *)

let test_btree_index_used () =
  let inst, s = fresh () in
  ignore (exec s "CREATE TABLE big (k bigint PRIMARY KEY, v text)");
  ignore (exec s "BEGIN");
  for i = 1 to 500 do
    ignore (exec s (Printf.sprintf "INSERT INTO big VALUES (%d, 'v%d')" i i))
  done;
  ignore (exec s "COMMIT");
  let before = Meter.read (Instance.meter inst) in
  check_int s "pk lookup" 1 "SELECT count(*) FROM big WHERE k = 250";
  let after = Meter.read (Instance.meter inst) in
  let d = Meter.diff ~after ~before in
  Alcotest.(check bool) "few rows scanned (index used)" true
    (d.Meter.rows_scanned < 10);
  Alcotest.(check bool) "probed" true (d.Meter.index_probes >= 1)

let test_secondary_index () =
  let inst, s = fresh () in
  ignore (exec s "CREATE TABLE t (a bigint, b bigint)");
  ignore (exec s "BEGIN");
  for i = 1 to 300 do
    ignore (exec s (Printf.sprintf "INSERT INTO t VALUES (%d, %d)" i (i mod 10)))
  done;
  ignore (exec s "COMMIT");
  ignore (exec s "CREATE INDEX t_b ON t USING BTREE (b)");
  let before = Meter.read (Instance.meter inst) in
  check_int s "matches" 30 "SELECT count(*) FROM t WHERE b = 3";
  let after = Meter.read (Instance.meter inst) in
  let d = Meter.diff ~after ~before in
  Alcotest.(check bool) "scan bounded by index" true (d.Meter.rows_scanned <= 40)

let test_gin_index_query () =
  let _, s = fresh () in
  ignore (exec s "CREATE TABLE msgs (id bigint PRIMARY KEY, body text)");
  ignore
    (exec s
       "INSERT INTO msgs VALUES (1, 'fix postgres planner'), (2, 'docs update'), (3, 'POSTGRES rocks')");
  ignore (exec s "CREATE INDEX msgs_trgm ON msgs USING GIN ((body) gin_trgm_ops)");
  check_int s "ilike via gin" 2
    "SELECT count(*) FROM msgs WHERE body ILIKE '%postgres%'"

(* --- JSON --- *)

let test_jsonb_roundtrip () =
  let _, s = fresh () in
  ignore (exec s "CREATE TABLE events (id bigint, data jsonb)");
  ignore
    (exec s
       {|INSERT INTO events VALUES (1, '{"type": "push", "size": 3}'), (2, '{"type": "fork", "size": 1}')|});
  check_int s "json filter" 1
    "SELECT count(*) FROM events WHERE data->>'type' = 'push'";
  check_int s "json int" 3
    "SELECT (data->>'size')::bigint FROM events WHERE id = 1"

let test_jsonb_path_and_array_length () =
  let _, s = fresh () in
  ignore (exec s "CREATE TABLE events (id bigint, data jsonb)");
  ignore
    (exec s
       {|INSERT INTO events VALUES (1, '{"payload": {"commits": [{"message": "fix pg"}, {"message": "feat"}]}}')|});
  check_int s "array length" 2
    "SELECT jsonb_array_length(data->'payload'->'commits') FROM events";
  match
    rows s
      {|SELECT jsonb_path_query_array(data, '$.payload.commits[*].message')::text FROM events|}
  with
  | [ [| Datum.Text t |] ] ->
    Alcotest.(check bool) "contains fix pg" true
      (Expr_eval.like_match ~pattern:"%fix pg%" ~ci:false t)
  | _ -> Alcotest.fail "path query failed"

(* --- transactions --- *)

let test_txn_rollback () =
  let _, s = fresh () in
  setup_accounts s;
  ignore (exec s "BEGIN");
  ignore (exec s "UPDATE accounts SET balance = 0 WHERE id = 1");
  check_int s "own write visible" 0 "SELECT balance FROM accounts WHERE id = 1";
  ignore (exec s "ROLLBACK");
  check_int s "rolled back" 100 "SELECT balance FROM accounts WHERE id = 1"

let test_txn_isolation_between_sessions () =
  let inst, s1 = fresh () in
  setup_accounts s1;
  let s2 = Instance.connect inst in
  ignore (exec s1 "BEGIN");
  ignore (exec s1 "UPDATE accounts SET balance = 0 WHERE id = 1");
  check_int s2 "other session sees old" 100
    "SELECT balance FROM accounts WHERE id = 1";
  ignore (exec s1 "COMMIT");
  check_int s2 "after commit sees new" 0
    "SELECT balance FROM accounts WHERE id = 1"

let test_failed_block_requires_rollback () =
  let _, s = fresh () in
  setup_accounts s;
  ignore (exec s "BEGIN");
  (match exec s "SELECT nonexistent_col FROM accounts" with
   | exception Instance.Session_error _ -> ()
   | _ -> Alcotest.fail "should fail");
  (match exec s "SELECT 1" with
   | exception Instance.Session_error m ->
     Alcotest.(check bool) "aborted message" true
       (Expr_eval.like_match ~pattern:"%aborted%" ~ci:true m)
   | _ -> Alcotest.fail "block should be failed");
  ignore (exec s "ROLLBACK");
  check_int s "usable again" 3 "SELECT count(*) FROM accounts"

let test_write_conflict_blocks () =
  let inst, s1 = fresh () in
  setup_accounts s1;
  let s2 = Instance.connect inst in
  ignore (exec s1 "BEGIN");
  ignore (exec s1 "UPDATE accounts SET balance = 1 WHERE id = 1");
  ignore (exec s2 "BEGIN");
  (match exec s2 "UPDATE accounts SET balance = 2 WHERE id = 1" with
   | exception Executor.Would_block _ -> ()
   | _ -> Alcotest.fail "expected Would_block");
  ignore (exec s1 "COMMIT");
  (* retry now succeeds *)
  ignore (exec s2 "UPDATE accounts SET balance = 2 WHERE id = 1");
  ignore (exec s2 "COMMIT");
  check_int s1 "final value" 2 "SELECT balance FROM accounts WHERE id = 1"

let test_deadlock_detected_by_maintenance () =
  let inst, s1 = fresh () in
  setup_accounts s1;
  let s2 = Instance.connect inst in
  ignore (exec s1 "BEGIN");
  ignore (exec s2 "BEGIN");
  ignore (exec s1 "UPDATE accounts SET balance = 1 WHERE id = 1");
  ignore (exec s2 "UPDATE accounts SET balance = 2 WHERE id = 2");
  (match exec s1 "UPDATE accounts SET balance = 1 WHERE id = 2" with
   | exception Executor.Would_block _ -> ()
   | _ -> Alcotest.fail "s1 should block");
  (match exec s2 "UPDATE accounts SET balance = 2 WHERE id = 1" with
   | exception Executor.Would_block _ -> ()
   | _ -> Alcotest.fail "s2 should block");
  Instance.maintenance_tick inst;
  (* the younger transaction (s2) was aborted; s1 can proceed *)
  ignore (exec s1 "UPDATE accounts SET balance = 1 WHERE id = 2");
  ignore (exec s1 "COMMIT");
  match exec s2 "SELECT 1" with
  | exception Instance.Session_error _ -> ()
  | _ -> Alcotest.fail "s2 should observe its abort"

let test_prepare_transaction_via_sql () =
  let inst, s1 = fresh () in
  setup_accounts s1;
  ignore (exec s1 "BEGIN");
  ignore (exec s1 "UPDATE accounts SET balance = 0 WHERE id = 1");
  ignore (exec s1 "PREPARE TRANSACTION 'gid_1'");
  (* another session cannot see it yet *)
  let s2 = Instance.connect inst in
  check_int s2 "not visible" 100 "SELECT balance FROM accounts WHERE id = 1";
  ignore (exec s2 "COMMIT PREPARED 'gid_1'");
  check_int s2 "visible after commit prepared" 0
    "SELECT balance FROM accounts WHERE id = 1"

let test_prepared_survives_restart () =
  let inst, s1 = fresh () in
  setup_accounts s1;
  ignore (exec s1 "BEGIN");
  ignore (exec s1 "UPDATE accounts SET balance = 0 WHERE id = 1");
  ignore (exec s1 "PREPARE TRANSACTION 'gid_2'");
  Instance.restart inst;
  let s2 = Instance.connect inst in
  Alcotest.(check int) "still prepared" 1
    (List.length (Txn.Manager.prepared_transactions (Instance.txn_manager inst)));
  ignore (exec s2 "COMMIT PREPARED 'gid_2'");
  check_int s2 "applied" 0 "SELECT balance FROM accounts WHERE id = 1"

(* --- COPY --- *)

let test_copy_in () =
  let _, s = fresh () in
  ignore (exec s "CREATE TABLE t (a bigint, b text)");
  let n =
    Instance.copy_in s ~table:"t" ~columns:None
      [ "1\thello"; "2\tworld"; "3\t\\N" ]
  in
  Alcotest.(check int) "copied" 3 n;
  check_int s "rows" 3 "SELECT count(*) FROM t";
  check_int s "null copied" 1 "SELECT count(*) FROM t WHERE b IS NULL"

(* --- vacuum / autovacuum --- *)

let test_vacuum_via_sql () =
  let inst, s = fresh () in
  ignore (exec s "CREATE TABLE t (a bigint PRIMARY KEY)");
  ignore (exec s "INSERT INTO t SELECT 1 WHERE FALSE");
  (* no-op insert *)
  ignore (exec s "BEGIN");
  for i = 1 to 100 do
    ignore (exec s (Printf.sprintf "INSERT INTO t VALUES (%d)" i))
  done;
  ignore (exec s "COMMIT");
  ignore (exec s "DELETE FROM t WHERE a <= 60");
  let r = exec s "VACUUM t" in
  Alcotest.(check int) "reclaimed" 60 r.Instance.affected;
  ignore inst;
  check_int s "survivors" 40 "SELECT count(*) FROM t"

(* --- utility --- *)

let test_truncate () =
  let _, s = fresh () in
  setup_accounts s;
  ignore (exec s "TRUNCATE accounts");
  check_int s "empty" 0 "SELECT count(*) FROM accounts"

let test_alter_add_column () =
  let _, s = fresh () in
  setup_accounts s;
  ignore (exec s "ALTER TABLE accounts ADD COLUMN note text DEFAULT 'x'");
  check_int s "default applied" 3 "SELECT count(*) FROM accounts WHERE note = 'x'"

let test_udf_registration () =
  let inst, s = fresh () in
  Instance.register_udf inst "magic_number" (fun _s _args -> Datum.Int 42);
  check_int s "udf result" 42 "SELECT magic_number()"

let test_params () =
  let _, s = fresh () in
  setup_accounts s;
  let r =
    Instance.exec_params s "SELECT balance FROM accounts WHERE id = $1"
      [ Datum.Int 2 ]
  in
  match r.Instance.rows with
  | [ [| Datum.Int 200 |] ] -> ()
  | _ -> Alcotest.fail "param binding failed"

let test_columnar_table () =
  let _, s = fresh () in
  ignore (exec s "CREATE TABLE facts (k bigint, v bigint) USING COLUMNAR");
  ignore (exec s "INSERT INTO facts VALUES (1, 10), (2, 20), (3, 30)");
  check_int s "columnar sum" 60 "SELECT sum(v) FROM facts";
  match exec s "UPDATE facts SET v = 0" with
  | exception Instance.Session_error _ -> ()
  | _ -> Alcotest.fail "columnar update should fail"

let test_insert_select () =
  let _, s = fresh () in
  setup_accounts s;
  ignore (exec s "CREATE TABLE rich (id bigint, owner text)");
  ignore
    (exec s
       "INSERT INTO rich SELECT id, owner FROM accounts WHERE balance >= 200");
  check_int s "insert..select" 2 "SELECT count(*) FROM rich"

let () =
  Alcotest.run "engine"
    [
      ( "crud",
        [
          Alcotest.test_case "create/insert/select" `Quick test_create_insert_select;
          Alcotest.test_case "update" `Quick test_update;
          Alcotest.test_case "delete" `Quick test_delete;
          Alcotest.test_case "defaults and nulls" `Quick
            test_insert_defaults_and_nulls;
          Alcotest.test_case "pk violation" `Quick test_pk_violation;
          Alcotest.test_case "not null" `Quick test_not_null;
          Alcotest.test_case "insert..select" `Quick test_insert_select;
        ] );
      ( "expressions",
        [
          Alcotest.test_case "where logic" `Quick test_where_logic;
          Alcotest.test_case "case/arith" `Quick test_case_and_arith;
        ] );
      ( "aggregates",
        [
          Alcotest.test_case "simple" `Quick test_aggregates;
          Alcotest.test_case "empty" `Quick test_count_empty;
          Alcotest.test_case "group by" `Quick test_group_by;
          Alcotest.test_case "ordinal + having" `Quick
            test_group_by_ordinal_and_having;
          Alcotest.test_case "distinct agg" `Quick test_distinct_agg;
          Alcotest.test_case "distinct select" `Quick test_distinct_select;
          Alcotest.test_case "order/limit/offset" `Quick test_order_limit_offset;
        ] );
      ( "joins",
        [
          Alcotest.test_case "inner" `Quick test_inner_join;
          Alcotest.test_case "left" `Quick test_left_join;
          Alcotest.test_case "cross" `Quick test_cross_join;
          Alcotest.test_case "comma + where" `Quick test_comma_join_with_where;
          Alcotest.test_case "join aggregate" `Quick test_join_aggregate;
        ] );
      ( "subqueries",
        [
          Alcotest.test_case "from subquery" `Quick test_subquery_in_from;
          Alcotest.test_case "venicedb shape" `Quick
            test_nested_aggregation_venicedb_shape;
          Alcotest.test_case "scalar" `Quick test_scalar_subquery;
          Alcotest.test_case "in subquery" `Quick test_in_subquery;
        ] );
      ( "indexes",
        [
          Alcotest.test_case "pk btree used" `Quick test_btree_index_used;
          Alcotest.test_case "secondary" `Quick test_secondary_index;
          Alcotest.test_case "gin ilike" `Quick test_gin_index_query;
        ] );
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_jsonb_roundtrip;
          Alcotest.test_case "path/array" `Quick test_jsonb_path_and_array_length;
        ] );
      ( "transactions",
        [
          Alcotest.test_case "rollback" `Quick test_txn_rollback;
          Alcotest.test_case "isolation" `Quick test_txn_isolation_between_sessions;
          Alcotest.test_case "failed block" `Quick
            test_failed_block_requires_rollback;
          Alcotest.test_case "write conflict" `Quick test_write_conflict_blocks;
          Alcotest.test_case "deadlock detection" `Quick
            test_deadlock_detected_by_maintenance;
          Alcotest.test_case "prepare transaction" `Quick
            test_prepare_transaction_via_sql;
          Alcotest.test_case "prepared survives restart" `Quick
            test_prepared_survives_restart;
        ] );
      ( "utility",
        [
          Alcotest.test_case "copy" `Quick test_copy_in;
          Alcotest.test_case "vacuum" `Quick test_vacuum_via_sql;
          Alcotest.test_case "truncate" `Quick test_truncate;
          Alcotest.test_case "alter add column" `Quick test_alter_add_column;
          Alcotest.test_case "udf" `Quick test_udf_registration;
          Alcotest.test_case "params" `Quick test_params;
          Alcotest.test_case "columnar" `Quick test_columnar_table;
        ] );
    ]
