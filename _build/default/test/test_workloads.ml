(* Workload generators and drivers, validated on both the plain-PostgreSQL
   baseline and Citus setups — results must agree. *)

let small_tpcc =
  {
    Workloads.Tpcc.warehouses = 4;
    districts_per_warehouse = 2;
    customers_per_district = 5;
    items = 20;
    remote_txn_fraction = 0.2;
  }

let one_int db sql =
  match (Workloads.Db.exec db sql).Engine.Instance.rows with
  | [ [| Datum.Int i |] ] -> i
  | _ -> Alcotest.fail ("no int from " ^ sql)

(* --- TPC-C --- *)

let run_tpcc db =
  Workloads.Tpcc.setup db small_tpcc;
  let rng = Random.State.make [| 3 |] in
  let remote = ref 0 in
  for _ = 1 to 60 do
    let _kind, was_remote =
      Workloads.Tpcc.run_one db db.Workloads.Db.session small_tpcc rng
    in
    if was_remote then incr remote
  done;
  !remote

let test_tpcc_on_postgres () =
  let db = Workloads.Db.postgres () in
  ignore (run_tpcc db);
  Alcotest.(check bool) "orders created" true (Workloads.Db.count db "orders" > 0);
  Alcotest.(check bool) "invariant" true
    (Workloads.Tpcc.orders_match_district_counters db small_tpcc)

let test_tpcc_on_citus_matches_postgres () =
  let pg = Workloads.Db.postgres () in
  let cz = Workloads.Db.citus ~workers:2 ~shard_count:8 () in
  ignore (run_tpcc pg);
  ignore (run_tpcc cz);
  (* same seed, same transaction stream: identical resulting state *)
  List.iter
    (fun table ->
      Alcotest.(check int)
        (table ^ " row counts agree")
        (Workloads.Db.count pg table) (Workloads.Db.count cz table))
    [ "orders"; "order_line"; "new_order"; "customer"; "stock" ];
  Alcotest.(check (float 0.001)) "balances agree"
    (Workloads.Tpcc.total_customer_balance pg)
    (Workloads.Tpcc.total_customer_balance cz);
  Alcotest.(check bool) "citus invariant" true
    (Workloads.Tpcc.orders_match_district_counters cz small_tpcc)

let test_tpcc_with_delegation () =
  let cz = Workloads.Db.citus ~workers:2 ~shard_count:8 () in
  Workloads.Tpcc.setup cz small_tpcc;
  Workloads.Tpcc.enable_delegation cz;
  let rng = Random.State.make [| 3 |] in
  for _ = 1 to 40 do
    ignore (Workloads.Tpcc.run_one cz cz.Workloads.Db.session small_tpcc rng)
  done;
  Alcotest.(check bool) "invariant under delegation" true
    (Workloads.Tpcc.orders_match_district_counters cz small_tpcc)

(* --- YCSB --- *)

let test_ycsb () =
  let cfg = { Workloads.Ycsb.rows = 100; fields = 3; field_length = 8 } in
  let pg = Workloads.Db.postgres () in
  let cz = Workloads.Db.citus ~workers:2 ~shard_count:8 () in
  Workloads.Ycsb.setup pg cfg;
  Workloads.Ycsb.setup cz cfg;
  Alcotest.(check int) "pg rows" 100 (Workloads.Db.count pg "usertable");
  Alcotest.(check int) "citus rows" 100 (Workloads.Db.count cz "usertable");
  let rng1 = Random.State.make [| 5 |] and rng2 = Random.State.make [| 5 |] in
  for _ = 1 to 100 do
    let o1 = Workloads.Ycsb.run_one pg.Workloads.Db.session cfg rng1 in
    let o2 = Workloads.Ycsb.run_one cz.Workloads.Db.session cfg rng2 in
    Alcotest.(check bool) "same op sequence" true (o1 = o2)
  done

let test_ycsb_mix_roughly_even () =
  let cfg = Workloads.Ycsb.default_config in
  let rng = Random.State.make [| 9 |] in
  let reads = ref 0 in
  for _ = 1 to 1000 do
    match Workloads.Ycsb.next_op cfg rng with
    | Workloads.Ycsb.Read, key ->
      Alcotest.(check bool) "key in range" true (key >= 1 && key <= cfg.rows);
      incr reads
    | Workloads.Ycsb.Update, _ -> ()
  done;
  Alcotest.(check bool) "roughly 50/50" true (!reads > 400 && !reads < 600)

let test_delivery_credits_customers () =
  let cz = Workloads.Db.citus ~workers:2 ~shard_count:8 () in
  Workloads.Tpcc.setup cz small_tpcc;
  let s = cz.Workloads.Db.session in
  (* place a couple of orders in warehouse 1, then deliver them *)
  ignore (Workloads.Db.exec_on s "CALL tpcc_new_order(1, 1, 2, 40)");
  ignore (Workloads.Db.exec_on s "CALL tpcc_new_order(1, 2, 3, 42)");
  Alcotest.(check int) "2 undelivered" 2
    (one_int cz "SELECT count(*) FROM new_order WHERE no_w_id = 1");
  let before = Workloads.Tpcc.total_customer_balance cz in
  ignore (Workloads.Db.exec_on s "CALL tpcc_delivery(1)");
  Alcotest.(check int) "delivered" 0
    (one_int cz "SELECT count(*) FROM new_order WHERE no_w_id = 1");
  Alcotest.(check bool) "balances credited" true
    (Workloads.Tpcc.total_customer_balance cz > before)

let test_mx_pgbench_invariant () =
  (* clients on two different coordinators interleave two-update
     transactions; the global invariant must hold *)
  let cfg = { Workloads.Pgbench.rows = 40 } in
  let cz = Workloads.Db.citus ~workers:2 ~shard_count:8 () in
  Workloads.Pgbench.setup cz cfg;
  (match cz.Workloads.Db.citus with
   | Some api -> Citus.Api.enable_metadata_sync api
   | None -> ());
  let api = Option.get cz.Workloads.Db.citus in
  let s1 =
    Citus.Api.connect_via api
      (Cluster.Topology.find_node cz.Workloads.Db.cluster "worker1")
  in
  let s2 =
    Citus.Api.connect_via api
      (Cluster.Topology.find_node cz.Workloads.Db.cluster "worker2")
  in
  let rng = Random.State.make [| 8 |] in
  for i = 1 to 40 do
    let s = if i mod 2 = 0 then s1 else s2 in
    ignore
      (Workloads.Pgbench.run_one cz s cfg Workloads.Pgbench.Different_keys rng)
  done;
  Alcotest.(check bool) "invariant across coordinators" true
    (Workloads.Pgbench.balance_invariant_holds cz)

(* --- gharchive --- *)

let test_gharchive_load_and_dashboard () =
  let cfg =
    { Workloads.Gharchive.events = 200; days = 5; commits_per_event = 2;
      postgres_fraction = 0.2 }
  in
  let pg = Workloads.Db.postgres () in
  let cz = Workloads.Db.citus ~workers:2 ~shard_count:8 () in
  List.iter
    (fun db ->
      Workloads.Gharchive.setup_schema db;
      let n = Workloads.Gharchive.load db cfg in
      Alcotest.(check int) "loaded" 200 n)
    [ pg; cz ];
  let run db = Workloads.Db.exec db Workloads.Gharchive.dashboard_query in
  let rows_pg = (run pg).Engine.Instance.rows in
  let rows_cz = (run cz).Engine.Instance.rows in
  Alcotest.(check bool) "dashboard finds events" true (List.length rows_pg > 0);
  Alcotest.(check int) "same day buckets" (List.length rows_pg)
    (List.length rows_cz);
  List.iter2
    (fun a b ->
      Alcotest.(check bool) "identical rows" true (a = b))
    rows_pg rows_cz

let test_gharchive_transformation () =
  let cfg =
    { Workloads.Gharchive.events = 100; days = 3; commits_per_event = 2;
      postgres_fraction = 0.1 }
  in
  let cz = Workloads.Db.citus ~workers:2 ~shard_count:8 () in
  Workloads.Gharchive.setup_schema cz;
  ignore (Workloads.Gharchive.load cz cfg);
  Workloads.Gharchive.create_rollup_table cz;
  let r = Workloads.Db.exec cz Workloads.Gharchive.transformation_query in
  Alcotest.(check int) "one rollup row per event" 100 r.Engine.Instance.affected;
  Alcotest.(check int) "commits table" 100 (one_int cz "SELECT count(*) FROM commits")

(* --- pgbench (fig 9 workload) --- *)

let test_pgbench_modes () =
  let cfg = { Workloads.Pgbench.rows = 50 } in
  let cz = Workloads.Db.citus ~workers:2 ~shard_count:8 () in
  Workloads.Pgbench.setup cz cfg;
  let rng = Random.State.make [| 2 |] in
  let crossed_same = ref 0 and crossed_diff = ref 0 in
  for _ = 1 to 30 do
    if Workloads.Pgbench.run_one cz cz.Workloads.Db.session cfg
         Workloads.Pgbench.Same_key rng
    then incr crossed_same
  done;
  for _ = 1 to 30 do
    if Workloads.Pgbench.run_one cz cz.Workloads.Db.session cfg
         Workloads.Pgbench.Different_keys rng
    then incr crossed_diff
  done;
  Alcotest.(check int) "same-key never crosses nodes" 0 !crossed_same;
  Alcotest.(check bool) "different keys often cross" true (!crossed_diff > 5);
  Alcotest.(check bool) "invariant" true (Workloads.Pgbench.balance_invariant_holds cz)

(* --- TPC-H --- *)

(* distributed sums add per-shard partials, so float results can differ in
   the last bits from the single-node summation order *)
let datum_approx a b =
  match a, b with
  | Datum.Float x, Datum.Float y ->
    Float.abs (x -. y) <= 1e-6 *. Float.max 1.0 (Float.max (Float.abs x) (Float.abs y))
  | _ -> Datum.equal a b

let rows_approx_equal r1 r2 =
  List.length r1 = List.length r2
  && List.for_all2
       (fun (a : Datum.t array) (b : Datum.t array) ->
         Array.length a = Array.length b
         && Array.for_all2 datum_approx a b)
       r1 r2

let test_tpch_results_match () =
  let cfg = { Workloads.Tpch.lineitem_rows = 400; distribute_part = false } in
  let pg = Workloads.Db.postgres () in
  let cz = Workloads.Db.citus ~workers:2 ~shard_count:8 () in
  Workloads.Tpch.setup pg cfg;
  Workloads.Tpch.setup cz cfg;
  List.iter2
    (fun (name, sql) (_, _) ->
      let rows_pg = (Workloads.Db.exec pg sql).Engine.Instance.rows in
      let rows_cz = (Workloads.Db.exec cz sql).Engine.Instance.rows in
      if not (rows_approx_equal rows_pg rows_cz) then
        Alcotest.fail (Printf.sprintf "%s differs between postgres and citus" name))
    (Workloads.Tpch.queries cfg) (Workloads.Tpch.queries cfg)

let test_tpch_unsupported_rejected_under_citus () =
  let cfg = { Workloads.Tpch.lineitem_rows = 200; distribute_part = false } in
  let cz = Workloads.Db.citus ~workers:2 ~shard_count:8 () in
  Workloads.Tpch.setup cz cfg;
  List.iter
    (fun (name, sql, _reason) ->
      match Workloads.Db.exec cz sql with
      | exception Engine.Instance.Session_error _ -> ()
      | exception Sqlfront.Parser.Parse_error _ -> ()
      | _ -> Alcotest.fail (name ^ " should be unsupported under Citus"))
    Workloads.Tpch.unsupported_queries

let test_tpch_distributed_part_variant () =
  let cfg = { Workloads.Tpch.lineitem_rows = 300; distribute_part = true } in
  let pg = Workloads.Db.postgres () in
  let cz = Workloads.Db.citus ~workers:2 ~shard_count:8 () in
  Workloads.Tpch.setup pg cfg;
  Workloads.Tpch.setup cz cfg;
  (* the part joins now exercise the join-order planner; results must not
     change *)
  List.iter
    (fun name ->
      let _, sql =
        List.find (fun (n, _) -> String.equal n name) (Workloads.Tpch.queries cfg)
      in
      let rows_pg = (Workloads.Db.exec pg sql).Engine.Instance.rows in
      let rows_cz = (Workloads.Db.exec cz sql).Engine.Instance.rows in
      if not (rows_approx_equal rows_pg rows_cz) then
        Alcotest.fail (name ^ " differs"))
    [ "Q14-promo-effect"; "Q19-discounted-revenue" ]

let () =
  Alcotest.run "workloads"
    [
      ( "tpcc",
        [
          Alcotest.test_case "postgres" `Quick test_tpcc_on_postgres;
          Alcotest.test_case "citus matches postgres" `Quick
            test_tpcc_on_citus_matches_postgres;
          Alcotest.test_case "with delegation" `Quick test_tpcc_with_delegation;
          Alcotest.test_case "delivery" `Quick test_delivery_credits_customers;
        ] );
      ( "ycsb",
        [
          Alcotest.test_case "setup + ops" `Quick test_ycsb;
          Alcotest.test_case "mix" `Quick test_ycsb_mix_roughly_even;
        ] );
      ( "gharchive",
        [
          Alcotest.test_case "load + dashboard" `Quick
            test_gharchive_load_and_dashboard;
          Alcotest.test_case "transformation" `Quick test_gharchive_transformation;
        ] );
      ( "pgbench",
        [
          Alcotest.test_case "same vs different keys" `Quick test_pgbench_modes;
          Alcotest.test_case "mx invariant" `Quick test_mx_pgbench_invariant;
        ] );
      ( "tpch",
        [
          Alcotest.test_case "results match" `Quick test_tpch_results_match;
          Alcotest.test_case "unsupported rejected" `Quick
            test_tpch_unsupported_rejected_under_citus;
          Alcotest.test_case "distributed part" `Quick
            test_tpch_distributed_part_variant;
        ] );
    ]
