(* Parser / deparser tests, including the round-trip property the Citus
   planners depend on (they deparse rewritten trees and workers re-parse). *)

open Sqlfront

let roundtrip_stmt src =
  let ast = Parser.parse_statement src in
  let text = Deparse.statement ast in
  let ast2 = Parser.parse_statement text in
  if ast <> ast2 then
    Alcotest.fail
      (Printf.sprintf "round trip changed AST:\n  src: %s\n  deparsed: %s" src
         text)

let test_select_simple () =
  match Parser.parse_statement "SELECT a, b FROM t WHERE a = 1" with
  | Ast.Select_stmt s ->
    Alcotest.(check int) "projections" 2 (List.length s.projections);
    Alcotest.(check bool) "has where" true (s.where <> None)
  | _ -> Alcotest.fail "expected select"

let test_select_star () =
  match Parser.parse_statement "SELECT * FROM t" with
  | Ast.Select_stmt { projections = [ Ast.Star ]; _ } -> ()
  | _ -> Alcotest.fail "expected star projection"

let test_qualified_star () =
  match Parser.parse_statement "SELECT t.* FROM t" with
  | Ast.Select_stmt { projections = [ Ast.Star_of "t" ]; _ } -> ()
  | _ -> Alcotest.fail "expected qualified star"

let test_operator_precedence () =
  (* 1 + 2 * 3 parses as 1 + (2 * 3) *)
  match Parser.parse_expression "1 + 2 * 3" with
  | Ast.Bin (Add, Const (Int 1), Bin (Mul, Const (Int 2), Const (Int 3))) -> ()
  | e -> Alcotest.fail (Deparse.expr e)

let test_and_or_precedence () =
  match Parser.parse_expression "a = 1 OR b = 2 AND c = 3" with
  | Ast.Or (_, Ast.And (_, _)) -> ()
  | e -> Alcotest.fail (Deparse.expr e)

let test_json_operators () =
  match Parser.parse_expression "data->'payload'->>'size'" with
  | Ast.Json_get (Ast.Json_get (Ast.Column (None, "data"), _, false), _, true)
    -> ()
  | e -> Alcotest.fail (Deparse.expr e)

let test_cast_chain () =
  match Parser.parse_expression "(data->>'n')::bigint" with
  | Ast.Cast (Ast.Json_get _, Datum.TInt) -> ()
  | e -> Alcotest.fail (Deparse.expr e)

let test_date_cast_becomes_function () =
  match Parser.parse_expression "(data->>'created_at')::date" with
  | Ast.Func ("sql_date", [ Ast.Json_get _ ]) -> ()
  | e -> Alcotest.fail (Deparse.expr e)

let test_count_star () =
  match Parser.parse_expression "count(*)" with
  | Ast.Agg { agg_name = "count"; agg_arg = None; agg_distinct = false } -> ()
  | e -> Alcotest.fail (Deparse.expr e)

let test_agg_distinct () =
  match Parser.parse_expression "count(DISTINCT user_id)" with
  | Ast.Agg { agg_name = "count"; agg_arg = Some _; agg_distinct = true } -> ()
  | e -> Alcotest.fail (Deparse.expr e)

let test_joins () =
  match
    Parser.parse_statement
      "SELECT * FROM a JOIN b ON a.id = b.id LEFT JOIN c ON b.id = c.id"
  with
  | Ast.Select_stmt
      {
        from =
          [
            Ast.Join
              { kind = Ast.Left_outer; left = Ast.Join { kind = Ast.Inner; _ }; _ };
          ];
        _;
      } ->
    ()
  | _ -> Alcotest.fail "expected nested joins"

let test_subquery_in_from () =
  match
    Parser.parse_statement
      "SELECT x FROM (SELECT a AS x FROM t GROUP BY a) AS sub"
  with
  | Ast.Select_stmt { from = [ Ast.Subselect (_, "sub") ]; _ } -> ()
  | _ -> Alcotest.fail "expected subselect"

let test_insert_values () =
  match
    Parser.parse_statement "INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')"
  with
  | Ast.Insert { columns = Some [ "a"; "b" ]; source = Ast.Values [ _; _ ]; _ }
    -> ()
  | _ -> Alcotest.fail "expected insert values"

let test_insert_select () =
  match
    Parser.parse_statement
      "INSERT INTO rollup (day, total) SELECT sql_date(d), count(*) FROM raw GROUP BY sql_date(d)"
  with
  | Ast.Insert { source = Ast.Query _; _ } -> ()
  | _ -> Alcotest.fail "expected insert..select"

let test_create_table_pk () =
  match
    Parser.parse_statement
      "CREATE TABLE t (id bigint PRIMARY KEY, v text NOT NULL, d jsonb DEFAULT '{}')"
  with
  | Ast.Create_table { primary_key = [ "id" ]; columns; _ } ->
    Alcotest.(check int) "columns" 3 (List.length columns)
  | _ -> Alcotest.fail "expected create table"

let test_create_table_composite_pk () =
  match
    Parser.parse_statement
      "CREATE TABLE t (w bigint, d bigint, v text, PRIMARY KEY (w, d))"
  with
  | Ast.Create_table { primary_key = [ "w"; "d" ]; _ } -> ()
  | _ -> Alcotest.fail "expected composite pk"

let test_create_index_gin_expression () =
  match
    Parser.parse_statement
      "CREATE INDEX idx ON github_events USING GIN ((jsonb_path_text(data, 'payload')) gin_trgm_ops)"
  with
  | Ast.Create_index { using = Ast.Gin_trgm; key_expr = Some _; _ } -> ()
  | _ -> Alcotest.fail "expected gin expression index"

let test_twophase_statements () =
  (match Parser.parse_statement "PREPARE TRANSACTION 'citus_0_12'" with
   | Ast.Prepare_transaction "citus_0_12" -> ()
   | _ -> Alcotest.fail "prepare");
  (match Parser.parse_statement "COMMIT PREPARED 'citus_0_12'" with
   | Ast.Commit_prepared _ -> ()
   | _ -> Alcotest.fail "commit prepared");
  match Parser.parse_statement "ROLLBACK PREPARED 'citus_0_12'" with
  | Ast.Rollback_prepared _ -> ()
  | _ -> Alcotest.fail "rollback prepared"

let test_copy () =
  match Parser.parse_statement "COPY github_events (event_id, data) FROM STDIN" with
  | Ast.Copy_from { table = "github_events"; columns = Some [ _; _ ] } -> ()
  | _ -> Alcotest.fail "expected copy"

let test_call () =
  match Parser.parse_statement "CALL new_order(1, 5, 42)" with
  | Ast.Call { proc = "new_order"; args = [ _; _; _ ] } -> ()
  | _ -> Alcotest.fail "expected call"

let test_case_expr () =
  match Parser.parse_expression "CASE WHEN a = 1 THEN 'one' ELSE 'other' END" with
  | Ast.Case ([ _ ], Some _) -> ()
  | e -> Alcotest.fail (Deparse.expr e)

let test_between_and_in () =
  roundtrip_stmt "SELECT * FROM t WHERE a BETWEEN 1 AND 10 AND b IN (1, 2, 3)";
  match Parser.parse_expression "x NOT IN (1, 2)" with
  | Ast.In_list (_, _, true) -> ()
  | e -> Alcotest.fail (Deparse.expr e)

let test_ilike () =
  match Parser.parse_expression "msg ILIKE '%postgres%'" with
  | Ast.Like { ci = true; negated = false; _ } -> ()
  | e -> Alcotest.fail (Deparse.expr e)

let test_exists_subquery () =
  match
    Parser.parse_expression "EXISTS (SELECT 1 FROM t WHERE t.id = o.id)"
  with
  | Ast.Exists (_, false) -> ()
  | e -> Alcotest.fail (Deparse.expr e)

let test_scalar_subquery () =
  match Parser.parse_expression "(SELECT max(v) FROM t)" with
  | Ast.Scalar_subquery _ -> ()
  | e -> Alcotest.fail (Deparse.expr e)

let test_params () =
  match Parser.parse_statement "SELECT * FROM t WHERE id = $1 AND v > $2" with
  | Ast.Select_stmt { where = Some w; _ } ->
    let count =
      Ast.fold_expr
        (fun acc e -> match e with Ast.Param _ -> acc + 1 | _ -> acc)
        0 w
    in
    Alcotest.(check int) "two params" 2 count
  | _ -> Alcotest.fail "expected select"

let test_cte_desugars_to_subselect () =
  match
    Parser.parse_statement
      "WITH top AS (SELECT a FROM t WHERE a > 5) SELECT count(*) FROM top"
  with
  | Ast.Select_stmt { from = [ Ast.Subselect (inner, "top") ]; _ } ->
    Alcotest.(check bool) "inner where kept" true (inner.Ast.where <> None)
  | _ -> Alcotest.fail "cte not desugared"

let test_cte_multiple_and_alias () =
  match
    Parser.parse_statement
      "WITH x AS (SELECT 1 AS v), y AS (SELECT 2 AS w)        SELECT * FROM x AS xx JOIN y ON xx.v = y.w"
  with
  | Ast.Select_stmt
      {
        from =
          [ Ast.Join { left = Ast.Subselect (_, "xx"); right = Ast.Subselect (_, "y"); _ } ];
        _;
      } ->
    ()
  | _ -> Alcotest.fail "multi-cte failed"

let test_recursive_cte_rejected () =
  match
    Parser.parse_statement
      "WITH RECURSIVE r AS (SELECT 1) SELECT * FROM r"
  with
  | exception Parser.Parse_error m ->
    Alcotest.(check bool) "clear message" true
      (Sqlfront.Deparse.expr (Ast.Const (Datum.Text m)) <> "")
  | _ -> Alcotest.fail "recursive CTE should be rejected"

let test_parse_errors () =
  List.iter
    (fun bad ->
      match Parser.parse_statement bad with
      | exception Parser.Parse_error _ -> ()
      | _ -> Alcotest.fail (Printf.sprintf "should reject %S" bad))
    [
      "SELECT FROM";
      "SELECT * FROM";
      "INSERT t VALUES (1)";
      "UPDATE t SET";
      "SELECT * FROM t WHERE";
      "SELECT * FROM t GROUP";
      "CREATE TABLE t";
      "SELECT 1 2";
    ]

(* --- lexer --- *)

let test_lexer_comments_and_whitespace () =
  match Parser.parse_statement "SELECT 1 -- trailing comment\n -- another\n" with
  | Ast.Select_stmt _ -> ()
  | _ -> Alcotest.fail "comments not skipped"

let test_lexer_quoted_identifier () =
  (* quoted identifiers preserve case and may collide with keywords *)
  match Parser.parse_expression "\"Select\"" with
  | Ast.Column (None, "Select") -> ()
  | e -> Alcotest.fail (Deparse.expr e)

let test_lexer_string_escapes () =
  match Parser.parse_expression "'it''s ''quoted'''" with
  | Ast.Const (Datum.Text "it's 'quoted'") -> ()
  | e -> Alcotest.fail (Deparse.expr e)

let test_lexer_numbers () =
  (match Parser.parse_expression "3.25" with
   | Ast.Const (Datum.Float f) -> Alcotest.(check (float 0.0001)) "float" 3.25 f
   | e -> Alcotest.fail (Deparse.expr e));
  (match Parser.parse_expression "2e3" with
   | Ast.Const (Datum.Float f) -> Alcotest.(check (float 0.1)) "exponent" 2000.0 f
   | e -> Alcotest.fail (Deparse.expr e));
  match Parser.parse_expression "1.5e-2" with
  | Ast.Const (Datum.Float f) -> Alcotest.(check (float 0.0001)) "neg exp" 0.015 f
  | e -> Alcotest.fail (Deparse.expr e)

let test_lexer_errors () =
  List.iter
    (fun bad ->
      match Lexer.tokenize bad with
      | exception Lexer.Lex_error _ -> ()
      | _ -> Alcotest.fail (Printf.sprintf "should reject %S" bad))
    [ "'unterminated"; "\"unterminated"; "SELECT @" ]

let test_operator_tokenization () =
  (* != normalizes to <>; multi-char ops are not split *)
  (match Parser.parse_expression "a != b" with
   | Ast.Cmp (Ast.Ne, _, _) -> ()
   | e -> Alcotest.fail (Deparse.expr e));
  match Parser.parse_expression "a->>'k'" with
  | Ast.Json_get (_, _, true) -> ()
  | e -> Alcotest.fail (Deparse.expr e)

let roundtrip_corpus =
  [
    "SELECT 1";
    "SELECT a, b AS bee FROM t";
    "SELECT DISTINCT a FROM t ORDER BY a DESC LIMIT 10 OFFSET 5";
    "SELECT count(*) FROM t GROUP BY a HAVING count(*) > 5";
    "SELECT * FROM a JOIN b ON a.x = b.x WHERE a.y <> 3";
    "SELECT * FROM a CROSS JOIN b";
    "SELECT avg(v) FROM a JOIN b ON a.key = b.key";
    "SELECT sum(x + y * 2) FROM t WHERE NOT (a OR b)";
    "INSERT INTO t VALUES (1, 2.5, 'x', NULL, TRUE)";
    "INSERT INTO t (a) SELECT b FROM u WHERE b IS NOT NULL";
    "UPDATE t SET v = v + 1, w = 'x' WHERE key = 42";
    "DELETE FROM t WHERE key = 1";
    "CREATE TABLE t (a bigint, b text)";
    "DROP TABLE IF EXISTS t";
    "ALTER TABLE t ADD COLUMN c jsonb";
    "TRUNCATE t, u";
    "BEGIN";
    "COMMIT";
    "ROLLBACK";
    "VACUUM t";
    "CALL p(1, 'x')";
    "SELECT (data->>'created_at')::date FROM e GROUP BY (data->>'created_at')::date";
    "SELECT deviceid, avg(metric) AS device_avg FROM reports \
     WHERE build = 'x' GROUP BY deviceid, day";
    "SELECT CASE WHEN a = 1 THEN 1 ELSE 0 END FROM t";
    "SELECT * FROM t WHERE msg ILIKE '%postgres%'";
    "SELECT x FROM (SELECT a AS x FROM t) AS s WHERE x BETWEEN 1 AND 2";
    "WITH recent AS (SELECT a FROM t WHERE a > 5) SELECT count(*) FROM recent";
    "SELECT * FROM t WHERE NOT EXISTS (SELECT 1 FROM u)";
    "SELECT * FROM t WHERE name NOT ILIKE '%test%'";
    "SELECT CASE WHEN a = 1 THEN CASE WHEN b = 2 THEN 'x' END ELSE 'y' END FROM t";
    "INSERT INTO t VALUES (1) ON CONFLICT DO NOTHING";
    "SELECT a FROM t ORDER BY b DESC, c ASC, a DESC OFFSET 3";
    "SELECT sum(a) FROM t HAVING sum(a) > 100";
  ]

let test_roundtrip_corpus () = List.iter roundtrip_stmt roundtrip_corpus

(* Property: generated random expressions round-trip through
   deparse/parse. *)
let rec expr_gen depth =
  let open QCheck2.Gen in
  let leaf =
    oneof
      [
        map (fun i -> Ast.Const (Datum.Int i)) (int_range (-1000) 1000);
        map (fun s -> Ast.Const (Datum.Text s))
          (string_size ~gen:(char_range 'a' 'z') (int_range 0 8));
        return (Ast.Const Datum.Null);
        map (fun b -> Ast.Const (Datum.Bool b)) bool;
        map (fun c -> Ast.Column (None, "c" ^ string_of_int c)) (int_range 0 5);
        map (fun i -> Ast.Param (i + 1)) (int_range 0 3);
      ]
  in
  if depth = 0 then leaf
  else
    let sub = expr_gen (depth - 1) in
    oneof
      [
        leaf;
        map2 (fun a b -> Ast.And (a, b)) sub sub;
        map2 (fun a b -> Ast.Or (a, b)) sub sub;
        map (fun a -> Ast.Not a) sub;
        map2 (fun a b -> Ast.Cmp (Ast.Le, a, b)) sub sub;
        map2 (fun a b -> Ast.Bin (Ast.Add, a, b)) sub sub;
        map2 (fun a b -> Ast.Bin (Ast.Concat, a, b)) sub sub;
        map (fun a -> Ast.Is_null (a, true)) sub;
        map (fun a -> Ast.Cast (a, Datum.TInt)) sub;
        map2
          (fun a items -> Ast.In_list (a, items, false))
          sub
          (list_size (int_range 1 3) sub);
        map (fun args -> Ast.Func ("coalesce", args)) (list_size (int_range 1 3) sub);
        map (fun a ->
            Ast.Agg { agg_name = "sum"; agg_arg = Some a; agg_distinct = false })
          sub;
      ]

let select_gen =
  let open QCheck2.Gen in
  let col = map (fun c -> Ast.Column (None, "c" ^ string_of_int c)) (int_range 0 3) in
  let lit = map (fun i -> Ast.Const (Datum.Int i)) (int_range 0 99) in
  let filter =
    oneof
      [
        map2 (fun a b -> Ast.Cmp (Ast.Eq, a, b)) col lit;
        map2 (fun a b -> Ast.And (Ast.Cmp (Ast.Lt, a, b), Ast.Is_null (a, false)))
          col lit;
      ]
  in
  let agg =
    oneofl
      [
        Ast.Agg { agg_name = "count"; agg_arg = None; agg_distinct = false };
        Ast.Agg
          {
            agg_name = "sum";
            agg_arg = Some (Ast.Column (None, "c1"));
            agg_distinct = false;
          };
      ]
  in
  let* n_tables = int_range 1 2 in
  let from =
    if n_tables = 1 then [ Ast.Table { name = "t"; alias = None } ]
    else
      [
        Ast.Join
          {
            left = Ast.Table { name = "t"; alias = None };
            right = Ast.Table { name = "u"; alias = Some "uu" };
            kind = Ast.Inner;
            cond = Some (Ast.Cmp (Ast.Eq, Ast.Column (Some "t", "k"),
                                  Ast.Column (Some "uu", "k")));
          };
      ]
  in
  let* where = opt filter in
  let* grouped = bool in
  let* proj_agg = agg in
  let projections =
    if grouped then
      [ Ast.Proj (Ast.Column (None, "c0"), None); Ast.Proj (proj_agg, Some "agg") ]
    else [ Ast.Proj (Ast.Column (None, "c0"), Some "x") ]
  in
  let group_by = if grouped then [ Ast.Column (None, "c0") ] else [] in
  let* limit = opt (map (fun i -> Ast.Const (Datum.Int i)) (int_range 1 10)) in
  let* desc = bool in
  return
    {
      Ast.distinct = false;
      projections;
      from;
      where;
      group_by;
      having = None;
      order_by = [ (Ast.Column (None, "c0"), if desc then Ast.Desc else Ast.Asc) ];
      limit;
      offset = None;
    }

let statement_gen =
  let open QCheck2.Gen in
  oneof
    [
      map (fun s -> Ast.Select_stmt s) select_gen;
      map
        (fun s ->
          Ast.Insert
            {
              table = "t";
              columns = Some [ "c0"; "c1" ];
              source = Ast.Query s;
              on_conflict_do_nothing = false;
            })
        select_gen;
      map2
        (fun v w ->
          Ast.Update
            {
              table = "t";
              sets = [ ("c0", Ast.Const (Datum.Int v)) ];
              where = Some w;
            })
        (int_range 0 9)
        (map (fun i -> Ast.Cmp (Ast.Eq, Ast.Column (None, "k"), Ast.Const (Datum.Int i)))
           (int_range 0 9));
    ]

let prop_statement_roundtrip =
  QCheck2.Test.make ~name:"statement deparse/parse round trip" ~count:200
    ~print:(fun st -> Deparse.statement st)
    statement_gen
    (fun st ->
      match Parser.parse_statement (Deparse.statement st) with
      | ast -> ast = st
      | exception Parser.Parse_error _ -> false)

let prop_expr_roundtrip =
  QCheck2.Test.make ~name:"expr deparse/parse round trip" ~count:300
    ~print:(fun e -> Deparse.expr e)
    (expr_gen 3) (fun e ->
      let text = Deparse.expr e in
      match Parser.parse_expression text with
      | ast -> ast = e
      | exception Parser.Parse_error _ -> false)

let () =
  Alcotest.run "sqlfront"
    [
      ( "parser",
        [
          Alcotest.test_case "select simple" `Quick test_select_simple;
          Alcotest.test_case "select star" `Quick test_select_star;
          Alcotest.test_case "qualified star" `Quick test_qualified_star;
          Alcotest.test_case "operator precedence" `Quick test_operator_precedence;
          Alcotest.test_case "and/or precedence" `Quick test_and_or_precedence;
          Alcotest.test_case "json operators" `Quick test_json_operators;
          Alcotest.test_case "cast chain" `Quick test_cast_chain;
          Alcotest.test_case "date cast" `Quick test_date_cast_becomes_function;
          Alcotest.test_case "count star" `Quick test_count_star;
          Alcotest.test_case "agg distinct" `Quick test_agg_distinct;
          Alcotest.test_case "joins" `Quick test_joins;
          Alcotest.test_case "subquery in from" `Quick test_subquery_in_from;
          Alcotest.test_case "insert values" `Quick test_insert_values;
          Alcotest.test_case "insert select" `Quick test_insert_select;
          Alcotest.test_case "create table pk" `Quick test_create_table_pk;
          Alcotest.test_case "composite pk" `Quick test_create_table_composite_pk;
          Alcotest.test_case "gin expression index" `Quick
            test_create_index_gin_expression;
          Alcotest.test_case "2pc statements" `Quick test_twophase_statements;
          Alcotest.test_case "copy" `Quick test_copy;
          Alcotest.test_case "call" `Quick test_call;
          Alcotest.test_case "case expression" `Quick test_case_expr;
          Alcotest.test_case "between/in" `Quick test_between_and_in;
          Alcotest.test_case "ilike" `Quick test_ilike;
          Alcotest.test_case "exists" `Quick test_exists_subquery;
          Alcotest.test_case "scalar subquery" `Quick test_scalar_subquery;
          Alcotest.test_case "params" `Quick test_params;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
          Alcotest.test_case "cte desugaring" `Quick test_cte_desugars_to_subselect;
          Alcotest.test_case "multiple ctes" `Quick test_cte_multiple_and_alias;
          Alcotest.test_case "recursive cte rejected" `Quick
            test_recursive_cte_rejected;
        ] );
      ( "lexer",
        [
          Alcotest.test_case "comments" `Quick test_lexer_comments_and_whitespace;
          Alcotest.test_case "quoted identifiers" `Quick test_lexer_quoted_identifier;
          Alcotest.test_case "string escapes" `Quick test_lexer_string_escapes;
          Alcotest.test_case "numbers" `Quick test_lexer_numbers;
          Alcotest.test_case "errors" `Quick test_lexer_errors;
          Alcotest.test_case "operators" `Quick test_operator_tokenization;
        ] );
      ( "deparse",
        [
          Alcotest.test_case "round trip corpus" `Quick test_roundtrip_corpus;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_expr_roundtrip;
          QCheck_alcotest.to_alcotest prop_statement_roundtrip;
        ] );
    ]
