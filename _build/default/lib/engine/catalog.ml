type store = Heap_store of Storage.Heap.t | Columnar_store of Storage.Columnar.t

type index_kind =
  | Btree_index of { columns : string list; tree : Storage.Btree.t }
  | Gin_index of { expr : Sqlfront.Ast.expr; gin : Storage.Gin.t }

type index = { idx_name : string; idx_table : string; kind : index_kind }

type table = {
  tbl_name : string;
  mutable columns : Sqlfront.Ast.column_def list;
  store : store;
  mutable indexes : index list;
  primary_key : string list;
}

type t = { tables : (string, table) Hashtbl.t }

exception No_such_table of string

exception Duplicate_table of string

let create () = { tables = Hashtbl.create 32 }

let add_table t ~name ~columns ~primary_key ~columnar =
  if Hashtbl.mem t.tables name then raise (Duplicate_table name);
  let store =
    if columnar then
      Columnar_store
        (Storage.Columnar.create ~name ~ncols:(List.length columns) ())
    else Heap_store (Storage.Heap.create ~name ())
  in
  let table = { tbl_name = name; columns; store; indexes = []; primary_key } in
  Hashtbl.replace t.tables name table;
  table

let drop_table t name =
  if not (Hashtbl.mem t.tables name) then raise (No_such_table name);
  Hashtbl.remove t.tables name

let find_table_opt t name = Hashtbl.find_opt t.tables name

let find_table t name =
  match find_table_opt t name with
  | Some table -> table
  | None -> raise (No_such_table name)

let table_names t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.tables []
  |> List.sort String.compare

let add_index _t table index = table.indexes <- table.indexes @ [ index ]

let column_index table name =
  let rec go i = function
    | [] ->
      invalid_arg
        (Printf.sprintf "table %s has no column %s" table.tbl_name name)
    | (c : Sqlfront.Ast.column_def) :: rest ->
      if String.equal c.col_name name then i else go (i + 1) rest
  in
  go 0 table.columns

let column_tys table =
  Array.of_list
    (List.map (fun (c : Sqlfront.Ast.column_def) -> c.col_ty) table.columns)

let add_column table def = table.columns <- table.columns @ [ def ]
