(** System catalog of one database node: tables, columns, indexes.

    Tables are heap-backed by default or columnar when created
    [USING COLUMNAR]. Index maintenance (B-tree on columns, GIN over an
    expression) is driven from here by the executor's write paths. *)

type store = Heap_store of Storage.Heap.t | Columnar_store of Storage.Columnar.t

type index_kind =
  | Btree_index of { columns : string list; tree : Storage.Btree.t }
  | Gin_index of { expr : Sqlfront.Ast.expr; gin : Storage.Gin.t }

type index = { idx_name : string; idx_table : string; kind : index_kind }

type table = {
  tbl_name : string;
  mutable columns : Sqlfront.Ast.column_def list;
  store : store;
  mutable indexes : index list;
  primary_key : string list;  (** empty = none *)
}

type t

exception No_such_table of string

exception Duplicate_table of string

val create : unit -> t

val add_table :
  t ->
  name:string ->
  columns:Sqlfront.Ast.column_def list ->
  primary_key:string list ->
  columnar:bool ->
  table

val drop_table : t -> string -> unit

val find_table : t -> string -> table
(** Raises {!No_such_table}. *)

val find_table_opt : t -> string -> table option

val table_names : t -> string list

val add_index : t -> table -> index -> unit

val column_index : table -> string -> int
(** Position of a column; raises [Invalid_argument] if absent. *)

val column_tys : table -> Datum.ty array

val add_column : table -> Sqlfront.Ast.column_def -> unit
