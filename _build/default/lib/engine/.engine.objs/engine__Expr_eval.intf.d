lib/engine/expr_eval.mli: Datum Random Sqlfront
