lib/engine/catalog.ml: Array Hashtbl List Printf Sqlfront Storage String
