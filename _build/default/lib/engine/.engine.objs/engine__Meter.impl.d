lib/engine/meter.ml:
