lib/engine/instance.ml: Array Ast Catalog Datum Executor Expr_eval Fun Hashtbl List Meter Option Parser Printf Random Sqlfront Storage String Txn
