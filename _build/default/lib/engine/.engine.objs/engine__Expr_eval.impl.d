lib/engine/expr_eval.ml: Array Ast Buffer Datum Digest Float Hashtbl Json Lazy List Option Printf Random Sqlfront String
