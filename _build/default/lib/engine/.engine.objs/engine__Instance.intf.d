lib/engine/instance.mli: Catalog Datum Executor Meter Sqlfront Storage Txn
