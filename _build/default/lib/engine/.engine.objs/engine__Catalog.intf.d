lib/engine/catalog.mli: Datum Sqlfront Storage
