lib/engine/executor.ml: Array Ast Catalog Datum Expr_eval Fun Hashtbl Int List Meter Option Printf Sqlfront Storage String Txn
