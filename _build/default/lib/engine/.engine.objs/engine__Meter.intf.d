lib/engine/meter.mli:
