lib/engine/executor.mli: Catalog Datum Expr_eval Meter Sqlfront Storage Txn
