open Sqlfront

exception Eval_error of string

type rcol = { rq : string option; rname : string }

type schema = rcol list

type env = {
  rng : Random.State.t;
  now : float;
  subquery : Ast.select -> Datum.t array list;
}

let err fmt = Printf.ksprintf (fun m -> raise (Eval_error m)) fmt

let resolve schema q name =
  let matches i (c : rcol) =
    let name_ok = String.equal c.rname name in
    let qual_ok =
      match q with
      | None -> true
      | Some q -> (match c.rq with Some cq -> String.equal cq q | None -> false)
    in
    if name_ok && qual_ok then Some i else None
  in
  match List.filteri (fun i c -> matches i c <> None) schema with
  | [] ->
    err "column %s%s does not exist"
      (match q with Some q -> q ^ "." | None -> "")
      name
  | [ _ ] ->
    (* recompute the index *)
    let rec find i = function
      | [] -> assert false
      | c :: rest -> if matches i c <> None then i else find (i + 1) rest
    in
    find 0 schema
  | _ :: _ :: _ -> err "column reference %s is ambiguous" name

(* --- numeric helpers --- *)

let as_float = function
  | Datum.Int i -> float_of_int i
  | Datum.Float f -> f
  | Datum.Timestamp f -> f
  | d -> err "expected a number, got %s" (Datum.to_display d)

let arith op a b =
  match a, b with
  | Datum.Null, _ | _, Datum.Null -> Datum.Null
  | _ ->
    (match op, a, b with
     | Ast.Add, Datum.Int x, Datum.Int y -> Datum.Int (x + y)
     | Ast.Sub, Datum.Int x, Datum.Int y -> Datum.Int (x - y)
     | Ast.Mul, Datum.Int x, Datum.Int y -> Datum.Int (x * y)
     | Ast.Div, Datum.Int x, Datum.Int y ->
       if y = 0 then err "division by zero" else Datum.Int (x / y)
     | Ast.Mod, Datum.Int x, Datum.Int y ->
       if y = 0 then err "division by zero" else Datum.Int (x mod y)
     | Ast.Concat, _, _ ->
       Datum.Text (Datum.to_display a ^ Datum.to_display b)
     | Ast.Add, _, _ -> Datum.Float (as_float a +. as_float b)
     | Ast.Sub, _, _ -> Datum.Float (as_float a -. as_float b)
     | Ast.Mul, _, _ -> Datum.Float (as_float a *. as_float b)
     | Ast.Div, _, _ ->
       let d = as_float b in
       if d = 0.0 then err "division by zero" else Datum.Float (as_float a /. d)
     | Ast.Mod, _, _ -> Datum.Float (Float.rem (as_float a) (as_float b)))

let compare_datums op a b =
  match a, b with
  | Datum.Null, _ | _, Datum.Null -> Datum.Null
  | _ ->
    let c = Datum.compare a b in
    let r =
      match op with
      | Ast.Eq -> c = 0
      | Ast.Ne -> c <> 0
      | Ast.Lt -> c < 0
      | Ast.Le -> c <= 0
      | Ast.Gt -> c > 0
      | Ast.Ge -> c >= 0
    in
    Datum.Bool r

(* Kleene three-valued logic *)
let sql_and a b =
  match a, b with
  | Datum.Bool false, _ | _, Datum.Bool false -> Datum.Bool false
  | Datum.Bool true, Datum.Bool true -> Datum.Bool true
  | _ -> Datum.Null

let sql_or a b =
  match a, b with
  | Datum.Bool true, _ | _, Datum.Bool true -> Datum.Bool true
  | Datum.Bool false, Datum.Bool false -> Datum.Bool false
  | _ -> Datum.Null

let sql_not = function
  | Datum.Bool b -> Datum.Bool (not b)
  | Datum.Null -> Datum.Null
  | d -> err "NOT applied to %s" (Datum.to_display d)

let truthy = function Datum.Bool true -> true | _ -> false

(* --- LIKE --- *)

let like_match ~pattern ~ci s =
  let p = if ci then String.lowercase_ascii pattern else pattern in
  let s = if ci then String.lowercase_ascii s else s in
  let np = String.length p and ns = String.length s in
  (* dynamic programming over (pattern index, string index) with
     memoization; patterns are short so this is fine *)
  let memo = Hashtbl.create 64 in
  let rec go pi si =
    match Hashtbl.find_opt memo (pi, si) with
    | Some r -> r
    | None ->
      let r =
        if pi >= np then si >= ns
        else
          match p.[pi] with
          | '%' -> go (pi + 1) si || (si < ns && go pi (si + 1))
          | '_' -> si < ns && go (pi + 1) (si + 1)
          | c -> si < ns && s.[si] = c && go (pi + 1) (si + 1)
      in
      Hashtbl.replace memo (pi, si) r;
      r
  in
  go 0 0

(* --- jsonpath --- *)

let jsonpath_steps path =
  let path =
    if String.length path >= 2 && String.sub path 0 2 = "$." then
      String.sub path 2 (String.length path - 2)
    else if String.length path >= 1 && path.[0] = '$' then
      String.sub path 1 (String.length path - 1)
    else path
  in
  if path = "" then []
  else
    String.split_on_char '.' path
    |> List.concat_map (fun step ->
           (* x[*] / x[3] -> "x"; "*" / "3" *)
           match String.index_opt step '[' with
           | None -> [ step ]
           | Some i ->
             let base = String.sub step 0 i in
             let rest = String.sub step i (String.length step - i) in
             let subscript =
               if rest = "[*]" then "*"
               else
                 let inner = String.sub rest 1 (String.length rest - 2) in
                 inner
             in
             [ base; subscript ])

(* --- scalar functions --- *)

let text_arg = function
  | Datum.Text s -> s
  | Datum.Null -> raise Exit
  | d -> Datum.to_display d

let json_arg = function
  | Datum.Json j -> j
  | Datum.Text s -> Json.parse s
  | Datum.Null -> raise Exit
  | d -> err "expected jsonb, got %s" (Datum.to_display d)

let int_arg = function
  | Datum.Int i -> i
  | Datum.Float f -> int_of_float f
  | Datum.Null -> raise Exit
  | d -> err "expected integer, got %s" (Datum.to_display d)

let sql_function env name (args : Datum.t list) : Datum.t =
  let strict f = try f () with Exit -> Datum.Null in
  match name, args with
  | "coalesce", args ->
    (try List.find (fun d -> not (Datum.is_null d)) args
     with Not_found -> Datum.Null)
  | "nullif", [ a; b ] -> if Datum.equal a b then Datum.Null else a
  | "greatest", args ->
    List.fold_left
      (fun acc d ->
        if Datum.is_null d then acc
        else if Datum.is_null acc || Datum.compare d acc > 0 then d
        else acc)
      Datum.Null args
  | "least", args ->
    List.fold_left
      (fun acc d ->
        if Datum.is_null d then acc
        else if Datum.is_null acc || Datum.compare d acc < 0 then d
        else acc)
      Datum.Null args
  | "md5", [ a ] ->
    strict (fun () -> Datum.Text (Digest.to_hex (Digest.string (text_arg a))))
  | "random", [] -> Datum.Float (Random.State.float env.rng 1.0)
  | "now", [] -> Datum.Timestamp env.now
  | "to_timestamp", [ a ] ->
    strict (fun () -> Datum.Timestamp (as_float a))
  | "length", [ a ] | "char_length", [ a ] ->
    strict (fun () -> Datum.Int (String.length (text_arg a)))
  | "lower", [ a ] ->
    strict (fun () -> Datum.Text (String.lowercase_ascii (text_arg a)))
  | "upper", [ a ] ->
    strict (fun () -> Datum.Text (String.uppercase_ascii (text_arg a)))
  | "substr", [ s; start ] ->
    strict (fun () ->
        let s = text_arg s and start = int_arg start in
        let from = max 0 (start - 1) in
        if from >= String.length s then Datum.Text ""
        else Datum.Text (String.sub s from (String.length s - from)))
  | "substr", [ s; start; len ] ->
    strict (fun () ->
        let s = text_arg s and start = int_arg start and len = int_arg len in
        let from = max 0 (start - 1) in
        let len = min len (String.length s - from) in
        if from >= String.length s || len <= 0 then Datum.Text ""
        else Datum.Text (String.sub s from len))
  | "strpos", [ s; sub ] ->
    strict (fun () ->
        let s = text_arg s and sub = text_arg sub in
        let n = String.length s and m = String.length sub in
        let rec go i =
          if i + m > n then 0
          else if String.sub s i m = sub then i + 1
          else go (i + 1)
        in
        Datum.Int (go 0))
  | "concat", args ->
    Datum.Text
      (String.concat ""
         (List.map
            (fun d -> if Datum.is_null d then "" else Datum.to_display d)
            args))
  | "repeat", [ s; n ] ->
    strict (fun () ->
        let s = text_arg s and n = int_arg n in
        let buf = Buffer.create (String.length s * max 0 n) in
        for _ = 1 to n do Buffer.add_string buf s done;
        Datum.Text (Buffer.contents buf))
  | "abs", [ a ] ->
    strict (fun () ->
        match a with
        | Datum.Int i -> Datum.Int (abs i)
        | d -> Datum.Float (Float.abs (as_float d)))
  | "floor", [ a ] -> strict (fun () -> Datum.Float (Float.floor (as_float a)))
  | "ceil", [ a ] | "ceiling", [ a ] ->
    strict (fun () -> Datum.Float (Float.ceil (as_float a)))
  | "round", [ a ] -> strict (fun () -> Datum.Float (Float.round (as_float a)))
  | "mod", [ a; b ] -> arith Ast.Mod a b
  | "power", [ a; b ] ->
    strict (fun () -> Datum.Float (Float.pow (as_float a) (as_float b)))
  | "sqrt", [ a ] -> strict (fun () -> Datum.Float (sqrt (as_float a)))
  | "sql_date", [ a ] ->
    (* ::date on an ISO-8601 text timestamp: keep YYYY-MM-DD *)
    strict (fun () ->
        let s = text_arg a in
        Datum.Text (if String.length s >= 10 then String.sub s 0 10 else s))
  | "jsonb_array_length", [ a ] ->
    strict (fun () ->
        match Json.array_length (json_arg a) with
        | Some n -> Datum.Int n
        | None -> err "jsonb_array_length on a non-array")
  | "jsonb_path_query_array", [ a; path ] ->
    strict (fun () ->
        let j = json_arg a in
        let steps = jsonpath_steps (text_arg path) in
        match Json.get_path j steps with
        | Some v -> Datum.Json (Json.Arr (match v with Json.Arr l -> l | v -> [ v ]))
        | None -> Datum.Json (Json.Arr []))
  | "jsonb_typeof", [ a ] ->
    strict (fun () ->
        let ty =
          match json_arg a with
          | Json.Null -> "null"
          | Json.Bool _ -> "boolean"
          | Json.Num _ -> "number"
          | Json.Str _ -> "string"
          | Json.Arr _ -> "array"
          | Json.Obj _ -> "object"
        in
        Datum.Text ty)
  | "jsonb_build_object", args ->
    let rec pairs = function
      | [] -> []
      | k :: v :: rest ->
        let key =
          match k with Datum.Text s -> s | d -> Datum.to_display d
        in
        let value =
          match v with
          | Datum.Json j -> j
          | Datum.Null -> Json.Null
          | Datum.Int i -> Json.Num (float_of_int i)
          | Datum.Float f -> Json.Num f
          | Datum.Bool b -> Json.Bool b
          | Datum.Text s -> Json.Str s
          | Datum.Timestamp f -> Json.Num f
        in
        (key, value) :: pairs rest
      | [ _ ] -> err "jsonb_build_object needs an even number of arguments"
    in
    Datum.Json (Json.Obj (pairs args))
  | name, args -> err "unknown function %s/%d" name (List.length args)

(* --- compilation --- *)

let rec compile (schema : schema) (env : env) (e : Ast.expr) :
    Datum.t array -> Datum.t =
  let c e = compile schema env e in
  match e with
  | Ast.Const d -> fun _ -> d
  | Ast.Param i -> fun _ -> err "unbound parameter $%d" i
  | Ast.Column (q, name) ->
    let idx = resolve schema q name in
    fun row -> row.(idx)
  | Ast.And (a, b) ->
    let fa = c a and fb = c b in
    fun row -> sql_and (fa row) (fb row)
  | Ast.Or (a, b) ->
    let fa = c a and fb = c b in
    fun row -> sql_or (fa row) (fb row)
  | Ast.Not a ->
    let fa = c a in
    fun row -> sql_not (fa row)
  | Ast.Cmp (op, a, b) ->
    let fa = c a and fb = c b in
    fun row -> compare_datums op (fa row) (fb row)
  | Ast.Bin (op, a, b) ->
    let fa = c a and fb = c b in
    fun row -> arith op (fa row) (fb row)
  | Ast.Neg a ->
    let fa = c a in
    fun row ->
      (match fa row with
       | Datum.Null -> Datum.Null
       | Datum.Int i -> Datum.Int (-i)
       | d -> Datum.Float (-.as_float d))
  | Ast.Is_null (a, positive) ->
    let fa = c a in
    fun row -> Datum.Bool (Datum.is_null (fa row) = positive)
  | Ast.In_list (a, items, negated) ->
    let fa = c a and fs = List.map c items in
    fun row ->
      let v = fa row in
      if Datum.is_null v then Datum.Null
      else begin
        let found = ref false in
        let saw_null = ref false in
        List.iter
          (fun f ->
            let x = f row in
            if Datum.is_null x then saw_null := true
            else if Datum.equal v x then found := true)
          fs;
        if !found then Datum.Bool (not negated)
        else if !saw_null then Datum.Null
        else Datum.Bool negated
      end
  | Ast.Between (a, lo, hi) ->
    let fa = c a and flo = c lo and fhi = c hi in
    fun row ->
      let v = fa row in
      sql_and
        (compare_datums Ast.Ge v (flo row))
        (compare_datums Ast.Le v (fhi row))
  | Ast.Like { subject; pattern; ci; negated } ->
    let fs = c subject and fp = c pattern in
    fun row ->
      (match fs row, fp row with
       | Datum.Null, _ | _, Datum.Null -> Datum.Null
       | s, p ->
         let m =
           like_match ~pattern:(Datum.to_display p) ~ci (Datum.to_display s)
         in
         Datum.Bool (if negated then not m else m))
  | Ast.Json_get (a, k, as_text) ->
    let fa = c a and fk = c k in
    fun row ->
      (match fa row, fk row with
       | Datum.Null, _ | _, Datum.Null -> Datum.Null
       | j, key ->
         let j =
           match j with
           | Datum.Json j -> j
           | Datum.Text s -> Json.parse s
           | d -> err "-> applied to %s" (Datum.to_display d)
         in
         let child =
           match key with
           | Datum.Int i -> Json.get_index j i
           | Datum.Text k -> Json.get_field j k
           | d -> err "bad json key %s" (Datum.to_display d)
         in
         (match child with
          | None -> Datum.Null
          | Some v ->
            if as_text then
              (match Json.to_text v with
               | Some s -> Datum.Text s
               | None -> Datum.Null)
            else Datum.Json v))
  | Ast.Cast (a, ty) ->
    let fa = c a in
    fun row ->
      (try Datum.cast (fa row) ty
       with Datum.Cast_error m -> raise (Eval_error m))
  | Ast.Case (branches, else_) ->
    let cbranches = List.map (fun (cond, v) -> (c cond, c v)) branches in
    let celse = Option.map c else_ in
    fun row ->
      let rec go = function
        | [] -> (match celse with Some f -> f row | None -> Datum.Null)
        | (fc, fv) :: rest -> if truthy (fc row) then fv row else go rest
      in
      go cbranches
  | Ast.Func (name, args) ->
    let fs = List.map c args in
    fun row -> sql_function env name (List.map (fun f -> f row) fs)
  | Ast.Agg _ ->
    err "aggregate functions are not allowed here"
  | Ast.Exists (sel, negated) ->
    (* uncorrelated subqueries evaluate once per statement (InitPlan) *)
    let rows = lazy (env.subquery sel) in
    fun _row ->
      Datum.Bool
        (if negated then Lazy.force rows = [] else Lazy.force rows <> [])
  | Ast.In_subquery (a, sel, negated) ->
    let fa = c a in
    (* hash the (single-column) result set once *)
    let table =
      lazy
        (let rows = env.subquery sel in
         let seen = Hashtbl.create (List.length rows) in
         let saw_null = ref false in
         List.iter
           (fun (r : Datum.t array) ->
             if Array.length r <> 1 then err "subquery must return one column";
             if Datum.is_null r.(0) then saw_null := true
             else Hashtbl.replace seen (Datum.to_sql_literal r.(0)) ())
           rows;
         (seen, !saw_null))
    in
    fun row ->
      let v = fa row in
      if Datum.is_null v then Datum.Null
      else begin
        let seen, saw_null = Lazy.force table in
        if Hashtbl.mem seen (Datum.to_sql_literal v) then
          Datum.Bool (not negated)
        else if saw_null then Datum.Null
        else Datum.Bool negated
      end
  | Ast.Scalar_subquery sel ->
    let value =
      lazy
        (match env.subquery sel with
         | [] -> Datum.Null
         | [ r ] when Array.length r = 1 -> r.(0)
         | [ _ ] -> err "scalar subquery must return one column"
         | _ -> err "scalar subquery returned more than one row")
    in
    fun _row -> Lazy.force value

let eval_bool f row = truthy (f row)
