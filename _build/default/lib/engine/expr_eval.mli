(** Expression compilation and evaluation.

    [compile] resolves column references against a row schema once and
    returns a closure evaluated per row. SQL three-valued logic is
    implemented here: [Datum.Null] propagates through comparisons and
    arithmetic, and boolean connectives follow Kleene logic; a WHERE clause
    treats NULL as false ({!eval_bool}).

    Aggregates must be rewritten away by the executor before compiling
    ([Agg] nodes raise {!Eval_error}); correlated subqueries are not
    supported (matching the paper's §7 limitation) — subqueries are
    executed once via the [subquery] callback. *)

exception Eval_error of string

(** One column of the row layout an expression is compiled against. *)
type rcol = { rq : string option; rname : string }

type schema = rcol list

type env = {
  rng : Random.State.t;  (** deterministic per-node generator for random() *)
  now : float;
  subquery : Sqlfront.Ast.select -> Datum.t array list;
}

val compile : schema -> env -> Sqlfront.Ast.expr -> Datum.t array -> Datum.t

(** Filter semantics: NULL and false both reject. *)
val eval_bool : (Datum.t array -> Datum.t) -> Datum.t array -> bool

(** [resolve schema q name] is the row position of a column reference.
    Raises {!Eval_error} on unknown or ambiguous references. *)
val resolve : schema -> string option -> string -> int

(** SQL LIKE pattern matching ([%] and [_] wildcards); exposed for tests. *)
val like_match : pattern:string -> ci:bool -> string -> bool

(** Shared implementations for SQL functions that other layers reuse. *)
val sql_function : env -> string -> Datum.t list -> Datum.t

(** Parse a jsonpath like [$.payload.commits[*].message] into path steps. *)
val jsonpath_steps : string -> string list
