lib/cluster/topology.ml: Engine List Printf Sim String
