lib/cluster/connection.ml: Engine List Sqlfront String Topology
