lib/cluster/topology.mli: Engine Sim
