lib/cluster/connection.mli: Engine Sqlfront Topology
