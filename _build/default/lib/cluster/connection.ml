type t = {
  cluster : Topology.t;
  conn_node : Topology.node;
  origin : string option;  (** node name of the connecting side *)
  sess : Engine.Instance.session;
}

let open_ ?origin (cluster : Topology.t) (node : Topology.node) =
  cluster.Topology.net.connections_opened <-
    cluster.Topology.net.connections_opened + 1;
  { cluster; conn_node = node; origin; sess = Engine.Instance.connect node.instance }

let node t = t.conn_node

let session t = t.sess

let count_round_trip t =
  t.cluster.Topology.net.round_trips <- t.cluster.Topology.net.round_trips + 1;
  let cross =
    match t.origin with
    | Some o -> not (String.equal o t.conn_node.Topology.node_name)
    | None -> true
  in
  if cross then
    t.cluster.Topology.net.cross_round_trips <-
      t.cluster.Topology.net.cross_round_trips + 1

let exec t sql =
  count_round_trip t;
  let r = Engine.Instance.exec t.sess sql in
  t.cluster.Topology.net.rows_shipped <-
    t.cluster.Topology.net.rows_shipped + List.length r.Engine.Instance.rows;
  r

let exec_ast t stmt = exec t (Sqlfront.Deparse.statement stmt)

let copy t ~table ~columns lines =
  count_round_trip t;
  t.cluster.Topology.net.rows_shipped <-
    t.cluster.Topology.net.rows_shipped + List.length lines;
  Engine.Instance.copy_in t.sess ~table ~columns lines

let in_transaction t = Engine.Instance.in_transaction t.sess

let backend_xid t = Engine.Instance.current_xid t.sess
