(** Deparser: AST back to SQL text.

    The Citus planners rewrite table names to shard names and then ship
    the query as text to worker sessions, exactly as the real extension
    does. The round trip [Parser.parse_statement (Deparse.statement s) = s]
    is property-tested. *)

val expr : Ast.expr -> string

val select : Ast.select -> string

val statement : Ast.statement -> string
