lib/sqlfront/deparse.ml: Ast Buffer Datum List Printf String
