lib/sqlfront/lexer.ml: Buffer List Printf String
