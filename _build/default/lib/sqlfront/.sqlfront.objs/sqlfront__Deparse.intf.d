lib/sqlfront/deparse.mli: Ast
