lib/sqlfront/lexer.mli:
