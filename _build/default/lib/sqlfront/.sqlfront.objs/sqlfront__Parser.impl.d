lib/sqlfront/parser.ml: Array Ast Datum Lexer List Option Printf String
