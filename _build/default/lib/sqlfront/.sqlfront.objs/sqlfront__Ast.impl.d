lib/sqlfront/ast.ml: Datum List Option Printf
