(** SQL lexer. Produces the token stream consumed by {!Parser}. *)

type token =
  | Ident of string  (** lowercased unless double-quoted *)
  | Keyword of string  (** uppercased; only words in {!keywords} *)
  | Int_lit of int
  | Float_lit of float
  | String_lit of string
  | Param_tok of int  (** [$1] *)
  | Lparen
  | Rparen
  | Comma
  | Semicolon
  | Star
  | Dot
  | Op of string  (** [=], [<>], [<=], [->], [->>], [::], [||], ... *)
  | Eof

exception Lex_error of string

val keywords : string list

val tokenize : string -> token list

val token_to_string : token -> string
