(** Recursive-descent SQL parser.

    [parse_statement] accepts exactly one statement (with an optional
    trailing semicolon); [parse_select] and [parse_expression] expose the
    sub-grammars for tests and for planners that synthesize fragments. *)

exception Parse_error of string

val parse_statement : string -> Ast.statement

val parse_select : string -> Ast.select

val parse_expression : string -> Ast.expr
