(** Virtual wall clock shared by a simulated cluster.

    Nothing in the system reads the real time: the adaptive executor's
    slow-start ramp, the deadlock detector's polling interval, and the
    benchmark harness all consult this clock, which only the harness
    advances. That keeps every run deterministic. *)

type t

val create : unit -> t

val now : t -> float

val advance : t -> float -> unit

val set : t -> float -> unit
