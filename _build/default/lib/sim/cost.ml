type node_spec = { cores : int; iops : float; cpu_unit : float }

(* 20 µs per abstract CPU unit puts a planned single-row statement at
   ~0.5 ms of CPU — the right ballpark for PostgreSQL with parsing,
   planning and executor overhead included. *)
let default_spec = { cores = 16; iops = 7500.0; cpu_unit = 20.0e-6 }

let default_rtt = 0.0005

let connection_setup_cost = 0.005

type node_demand = { cpu_s : float; io_s : float }

let zero_demand = { cpu_s = 0.0; io_s = 0.0 }

let add_demand a b = { cpu_s = a.cpu_s +. b.cpu_s; io_s = a.io_s +. b.io_s }

let demand_of ~spec ~meter ~misses =
  {
    cpu_s = Engine.Meter.total_cpu_units meter *. spec.cpu_unit;
    io_s = float_of_int misses /. spec.iops;
  }

let solo_elapsed ~spec ~parallelism demand =
  let p = float_of_int (max 1 (min parallelism spec.cores)) in
  Float.max (demand.cpu_s /. p) demand.io_s

type center = { demand_s : float; servers : float }

type closed_result = {
  throughput : float;
  response_s : float;
  bottleneck : int option;
}

let closed_throughput ~clients ~think_s ~delay_s ~centers =
  let r0 =
    delay_s +. List.fold_left (fun acc c -> acc +. c.demand_s) 0.0 centers
  in
  let n = float_of_int clients in
  let demand_bound =
    List.mapi (fun i c -> (i, if c.demand_s > 0.0 then c.servers /. c.demand_s else infinity)) centers
  in
  let client_bound = if r0 +. think_s > 0.0 then n /. (r0 +. think_s) else infinity in
  let (bottleneck_i, min_center) =
    List.fold_left
      (fun (bi, bv) (i, v) -> if v < bv then (Some i, v) else (bi, bv))
      (None, infinity) demand_bound
  in
  let x = Float.min client_bound min_center in
  let saturated = min_center < client_bound in
  let response = if saturated then Float.max r0 ((n /. x) -. think_s) else r0 in
  {
    throughput = x;
    response_s = response;
    bottleneck = (if saturated then bottleneck_i else None);
  }
