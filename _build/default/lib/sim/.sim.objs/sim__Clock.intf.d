lib/sim/clock.mli:
