lib/sim/clock.ml:
