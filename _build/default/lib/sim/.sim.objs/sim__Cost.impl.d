lib/sim/cost.ml: Engine Float List
