lib/sim/cost.mli: Engine
