(** Cost model: logical work counters → seconds of resource time.

    This is the substitution for the paper's Azure testbed (16 vcpus, 64 GB,
    7500 IOPS network disks, sub-millisecond round trips). The executor and
    buffer pools count logical work; this module prices it. Absolute values
    are calibrated so that relative effects (memory fit, parallelism,
    round-trip overhead) dominate — matching shapes, not absolute numbers,
    per the reproduction contract. *)

type node_spec = {
  cores : int;  (** parallel CPU capacity *)
  iops : float;  (** page misses served per second *)
  cpu_unit : float;  (** seconds per abstract CPU unit (see {!Engine.Meter}) *)
}

(** The paper's worker VM: 16 vcpus, 7500 IOPS. *)
val default_spec : node_spec

(** Round-trip latency between any two nodes, in seconds. *)
val default_rtt : float

(** Cost of establishing a new connection (process fork + auth), seconds. *)
val connection_setup_cost : float

type node_demand = {
  cpu_s : float;  (** total CPU-seconds consumed on the node *)
  io_s : float;  (** total disk-seconds (misses / iops) *)
}

val demand_of :
  spec:node_spec -> meter:Engine.Meter.snapshot -> misses:int -> node_demand

val zero_demand : node_demand

val add_demand : node_demand -> node_demand -> node_demand

(** Elapsed time for one operation executed alone on a node, with its CPU
    part spread over [parallelism] cores (≤ spec cores) and IO serialized
    against the IOPS budget; CPU and IO overlap. *)
val solo_elapsed : spec:node_spec -> parallelism:int -> node_demand -> float

(** {2 Closed-workload throughput}

    Operational-analysis bounds for a closed system with [clients]
    concurrent clients, each looping: think [think_s], then execute a
    transaction whose resource demands are [demands] (one entry per
    service center, each with a number of servers) plus pure network delay
    [delay_s]:

    X = min(clients / (R0 + think), min over centers (servers / demand))

    where R0 = sum of demands + delay. Reported response time is
    clients/X - think when the system saturates. *)

type center = { demand_s : float; servers : float }

type closed_result = {
  throughput : float;  (** transactions per second *)
  response_s : float;  (** average response time *)
  bottleneck : int option;  (** index of the saturated center, if any *)
}

val closed_throughput :
  clients:int -> think_s:float -> delay_s:float -> centers:center list ->
  closed_result
