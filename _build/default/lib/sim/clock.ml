type t = { mutable now : float }

let create () = { now = 0.0 }

let now t = t.now

let advance t dt = t.now <- t.now +. dt

let set t v = t.now <- v
