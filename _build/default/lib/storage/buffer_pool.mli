(** Buffer pool: an accounting LRU over logical page ids.

    Table data lives in OCaml values; what we model is *which pages are in
    memory*. Every page access goes through [access], which classifies it as
    a hit or a miss and maintains hit/miss counters. The simulation layer
    converts misses into I/O time against the node's IOPS budget — this is
    how "the working set fits in cluster memory at 4+1 but not on one node"
    produces the paper's crossovers. *)

type page_id = { relation : string; page_no : int }

type t

type stats = {
  hits : int;
  misses : int;
  evictions : int;
}

(** [create ~capacity] makes a pool holding at most [capacity] pages. *)
val create : capacity:int -> t

val capacity : t -> int

(** Record an access; faults the page in (possibly evicting LRU) on miss.
    Returns [true] on hit. *)
val access : t -> page_id -> bool

val stats : t -> stats

val reset_stats : t -> unit

(** Drop all cached pages (e.g. simulated restart). Stats are kept. *)
val clear : t -> unit

val cached_pages : t -> int
