lib/storage/gin.ml: Buffer Buffer_pool Char Hashtbl Int List Set String
