lib/storage/btree.ml: Array Buffer_pool Datum List
