lib/storage/gin.mli: Buffer_pool
