lib/storage/columnar.ml: Array Buffer_pool Datum List Txn
