lib/storage/columnar.mli: Buffer_pool Datum Txn
