lib/storage/heap.mli: Buffer_pool Datum Txn
