lib/storage/heap.ml: Array Buffer_pool Datum List Txn
