type page_id = { relation : string; page_no : int }

type stats = { hits : int; misses : int; evictions : int }

(* Doubly-linked LRU list with a hash index for O(1) access. *)
type node = {
  page : page_id;
  mutable prev : node option;
  mutable next : node option;
}

type t = {
  cap : int;
  index : (page_id, node) Hashtbl.t;
  mutable head : node option;  (** most recently used *)
  mutable tail : node option;  (** least recently used *)
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Buffer_pool.create: capacity must be > 0";
  {
    cap = capacity;
    index = Hashtbl.create (min capacity 4096);
    head = None;
    tail = None;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let capacity t = t.cap

let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.head;
  n.prev <- None;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let evict_lru t =
  match t.tail with
  | None -> ()
  | Some n ->
    unlink t n;
    Hashtbl.remove t.index n.page;
    t.evictions <- t.evictions + 1

let access t page =
  match Hashtbl.find_opt t.index page with
  | Some n ->
    t.hits <- t.hits + 1;
    unlink t n;
    push_front t n;
    true
  | None ->
    t.misses <- t.misses + 1;
    if Hashtbl.length t.index >= t.cap then evict_lru t;
    let n = { page; prev = None; next = None } in
    Hashtbl.replace t.index page n;
    push_front t n;
    false

let stats t = { hits = t.hits; misses = t.misses; evictions = t.evictions }

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0;
  t.evictions <- 0

let clear t =
  Hashtbl.reset t.index;
  t.head <- None;
  t.tail <- None

let cached_pages t = Hashtbl.length t.index
