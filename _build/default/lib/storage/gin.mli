(** GIN-style trigram index (pg_trgm's [gin_trgm_ops]).

    Indexes the lowercase character trigrams of a text value per tuple and
    answers substring-containment queries ([ILIKE '%pattern%']): the
    candidate set is the intersection of the posting lists of the pattern's
    trigrams, and the executor rechecks candidates against the heap — the
    same recheck discipline PostgreSQL uses.

    Maintaining the index on writes is deliberately expensive (one posting
    update per trigram), reproducing the write-amplification the paper's
    COPY microbenchmark (Fig. 7a) exercises. *)

type t

val create : name:string -> unit -> t

val name : t -> string

(** Trigrams of a string after pg_trgm-style normalization (lowercase,
    padded with two leading and one trailing space per word). Exposed for
    tests. *)
val trigrams_of : string -> string list

(** Index [text] for tuple [tid]; returns the number of posting-list
    updates performed (for write-cost accounting). Touches one logical
    page per posting list updated when [pool] is given — index write
    amplification is what Figure 7a measures. *)
val add : ?pool:Buffer_pool.t -> t -> tid:int -> string -> int

val remove : t -> tid:int -> string -> unit

(** Candidate tids possibly containing [pattern] as a substring
    (case-insensitive). [None] when the pattern is too short to extract a
    trigram, in which case the caller must fall back to a full scan.
    Touches one logical page per posting list consulted. *)
val candidates : ?pool:Buffer_pool.t -> t -> string -> int list option

(** Number of distinct trigram keys. *)
val key_count : t -> int

val page_count : t -> int

(** Drop all postings. *)
val clear : t -> unit
