type stripe = {
  xmin : int;
  nrows : int;
  columns : Datum.t array array;  (** columns.(c).(r) *)
  mins : Datum.t array;
  maxs : Datum.t array;
}

type t = {
  col_name : string;
  ncols : int;
  stripe_rows : int;
  values_per_page : int;
  mutable stripes : stripe list;  (** newest first *)
  mutable pending : (int * Datum.t array list) option;
      (** open stripe: (xid, rows newest-first) — flushed when full or when
          a different xid writes *)
  mutable total_rows : int;
  mutable page_seq : int;
}

let create ~name ~ncols ?(stripe_rows = 1000) ?(values_per_page = 1024) () =
  {
    col_name = name;
    ncols;
    stripe_rows;
    values_per_page;
    stripes = [];
    pending = None;
    total_rows = 0;
    page_seq = 0;
  }

let name t = t.col_name

let minmax rows c =
  List.fold_left
    (fun (mn, mx) (row : Datum.t array) ->
      let v = row.(c) in
      if Datum.is_null v then (mn, mx)
      else
        let mn = if Datum.is_null mn || Datum.compare v mn < 0 then v else mn in
        let mx = if Datum.is_null mx || Datum.compare v mx > 0 then v else mx in
        (mn, mx))
    (Datum.Null, Datum.Null) rows

let seal t xid rows =
  let rows = List.rev rows in
  let nrows = List.length rows in
  if nrows > 0 then begin
    let columns =
      Array.init t.ncols (fun c ->
          Array.of_list (List.map (fun (r : Datum.t array) -> r.(c)) rows))
    in
    let mins = Array.make t.ncols Datum.Null in
    let maxs = Array.make t.ncols Datum.Null in
    for c = 0 to t.ncols - 1 do
      let mn, mx = minmax rows c in
      mins.(c) <- mn;
      maxs.(c) <- mx
    done;
    t.stripes <- { xmin = xid; nrows; columns; mins; maxs } :: t.stripes
  end

let flush_pending t =
  match t.pending with
  | None -> ()
  | Some (xid, rows) ->
    t.pending <- None;
    seal t xid rows

let append t ~xid rows =
  (match t.pending with
   | Some (pxid, _) when pxid <> xid -> flush_pending t
   | Some _ | None -> ());
  let current = match t.pending with Some (_, r) -> r | None -> [] in
  let rec push acc n = function
    | [] -> (acc, n)
    | row :: rest ->
      if Array.length row <> t.ncols then
        invalid_arg "Columnar.append: row width mismatch";
      let acc = row :: acc in
      let n = n + 1 in
      if n >= t.stripe_rows then begin
        seal t xid acc;
        push [] 0 rest
      end
      else push acc n rest
  in
  let remaining, n = push current (List.length current) rows in
  t.pending <- (if n > 0 then Some (xid, remaining) else None);
  t.total_rows <- t.total_rows + List.length rows

let row_count t = t.total_rows

let stripe_count t =
  List.length t.stripes + (match t.pending with Some _ -> 1 | None -> 0)

let visible_stripe ~status ~snapshot ~my_xid xid =
  (match my_xid with Some m when m = xid -> true | _ -> false)
  || (status xid = Txn.Manager.Committed && Txn.Snapshot.sees snapshot xid)

let touch_stripe pool t stripe_no columns nrows =
  match pool with
  | None -> ()
  | Some pool ->
    let pages_per_col = max 1 ((nrows + t.values_per_page - 1) / t.values_per_page) in
    List.iter
      (fun c ->
        for p = 0 to pages_per_col - 1 do
          ignore
            (Buffer_pool.access pool
               {
                 Buffer_pool.relation = "col:" ^ t.col_name;
                 page_no = (stripe_no * t.ncols * 64) + (c * 64) + p;
               })
        done)
      columns

let scan ?pool ?stripe_predicate t ~status ~snapshot ~my_xid ~columns ~f =
  let scan_rows stripe_no xid nrows get =
    ignore stripe_no;
    ignore xid;
    for r = 0 to nrows - 1 do
      let row = Array.make t.ncols Datum.Null in
      List.iter (fun c -> row.(c) <- get c r) columns;
      f row
    done
  in
  (* stripes are stored newest-first; emit oldest-first *)
  let sealed = List.rev t.stripes in
  List.iteri
    (fun stripe_no s ->
      if visible_stripe ~status ~snapshot ~my_xid s.xmin then begin
        let keep =
          match stripe_predicate with
          | None -> true
          | Some p -> p ~mins:s.mins ~maxs:s.maxs
        in
        if keep then begin
          touch_stripe pool t stripe_no columns s.nrows;
          scan_rows stripe_no s.xmin s.nrows (fun c r -> s.columns.(c).(r))
        end
      end)
    sealed;
  (* open stripe: no min/max yet, never skipped *)
  match t.pending with
  | None -> ()
  | Some (xid, rows) ->
    if visible_stripe ~status ~snapshot ~my_xid xid then begin
      let rows = Array.of_list (List.rev rows) in
      touch_stripe pool t (List.length sealed) columns (Array.length rows);
      scan_rows (List.length sealed) xid (Array.length rows) (fun c r ->
          rows.(r).(c))
    end

let pages_for_columns t ~columns =
  let ncols_projected = List.length columns in
  let per_stripe nrows =
    ncols_projected * max 1 ((nrows + t.values_per_page - 1) / t.values_per_page)
  in
  List.fold_left (fun acc s -> acc + per_stripe s.nrows) 0 t.stripes
  + match t.pending with Some (_, r) -> per_stripe (List.length r) | None -> 0

let clear t =
  t.stripes <- [];
  t.pending <- None;
  t.total_rows <- 0
