type key = Datum.t array

let compare_keys (a : key) (b : key) =
  let la = Array.length a and lb = Array.length b in
  let rec go i =
    if i >= la && i >= lb then 0
    else if i >= la then -1
    else if i >= lb then 1
    else
      let c = Datum.compare a.(i) b.(i) in
      if c <> 0 then c else go (i + 1)
  in
  go 0

type bound = Incl of key | Excl of key | Unbounded

type node = {
  id : int;
  mutable keys : key list;  (** sorted; separators for internal nodes *)
  mutable body : body;
}

and body =
  | Leaf of { mutable postings : int list list; mutable next : node option }
      (** postings.(i) are the tids for keys.(i) *)
  | Internal of { mutable children : node list }
      (** length children = length keys + 1 *)

type t = {
  index_name : string;
  order : int;  (** max keys per node before splitting *)
  mutable root : node;
  mutable next_id : int;
  mutable entries : int;
  mutable nodes : int;
}

let fresh_node t keys body =
  let id = t.next_id in
  t.next_id <- id + 1;
  t.nodes <- t.nodes + 1;
  { id; keys; body }

let create ~name ?(order = 32) () =
  let t =
    {
      index_name = name;
      order;
      root = { id = 0; keys = []; body = Leaf { postings = []; next = None } };
      next_id = 1;
      entries = 0;
      nodes = 1;
    }
  in
  t

let name t = t.index_name

let touch pool t node =
  match pool with
  | None -> ()
  | Some pool ->
    ignore
      (Buffer_pool.access pool
         { Buffer_pool.relation = "idx:" ^ t.index_name; page_no = node.id })

(* Position of the child to follow for [key] in an internal node: the
   number of separators <= key. *)
let child_index keys key =
  let rec go i = function
    | [] -> i
    | k :: rest -> if compare_keys key k < 0 then i else go (i + 1) rest
  in
  go 0 keys

let nth_child children i = List.nth children i

(* Insert into a sorted assoc list of (key, posting). *)
let rec leaf_insert keys postings key tid =
  match keys, postings with
  | [], [] -> ([ key ], [ [ tid ] ], true)
  | k :: krest, p :: prest ->
    let c = compare_keys key k in
    if c = 0 then (keys, (tid :: p) :: prest, false)
    else if c < 0 then (key :: keys, [ tid ] :: postings, true)
    else
      let ks, ps, added = leaf_insert krest prest key tid in
      (k :: ks, p :: ps, added)
  | _ -> assert false

let split_list l n =
  let rec go acc i = function
    | rest when i = 0 -> (List.rev acc, rest)
    | [] -> (List.rev acc, [])
    | x :: rest -> go (x :: acc) (i - 1) rest
  in
  go [] n l

(* Returns Some (separator, right_sibling) if the node split. *)
let rec insert_rec t node key tid =
  match node.body with
  | Leaf leaf ->
    let keys, postings, _added = leaf_insert node.keys leaf.postings key tid in
    node.keys <- keys;
    leaf.postings <- postings;
    if List.length node.keys > t.order then begin
      let half = List.length node.keys / 2 in
      let lkeys, rkeys = split_list node.keys half in
      let lpost, rpost = split_list leaf.postings half in
      let right =
        fresh_node t rkeys (Leaf { postings = rpost; next = leaf.next })
      in
      node.keys <- lkeys;
      leaf.postings <- lpost;
      leaf.next <- Some right;
      Some (List.hd rkeys, right)
    end
    else None
  | Internal internal ->
    let i = child_index node.keys key in
    let child = nth_child internal.children i in
    (match insert_rec t child key tid with
     | None -> None
     | Some (sep, right) ->
       (* splice sep into keys at position i, right after child i *)
       let rec splice_keys j = function
         | [] -> [ sep ]
         | k :: rest -> if j = i then sep :: k :: rest else k :: splice_keys (j + 1) rest
       in
       let rec splice_children j = function
         | [] -> [ right ]
         | c :: rest ->
           if j = i then c :: right :: rest else c :: splice_children (j + 1) rest
       in
       node.keys <- splice_keys 0 node.keys;
       internal.children <- splice_children 0 internal.children;
       if List.length node.keys > t.order then begin
         let half = List.length node.keys / 2 in
         let lkeys, rest = split_list node.keys half in
         (match rest with
          | [] -> assert false
          | sep_up :: rkeys ->
            let lchildren, rchildren =
              split_list internal.children (half + 1)
            in
            let right_node =
              fresh_node t rkeys (Internal { children = rchildren })
            in
            node.keys <- lkeys;
            internal.children <- lchildren;
            Some (sep_up, right_node))
       end
       else None)

let insert t key tid =
  t.entries <- t.entries + 1;
  match insert_rec t t.root key tid with
  | None -> ()
  | Some (sep, right) ->
    let old_root = t.root in
    t.root <-
      fresh_node t [ sep ] (Internal { children = [ old_root; right ] })

(* Find the leaf that would contain [key], touching pages on the way. *)
let rec descend pool t node key =
  touch pool t node;
  match node.body with
  | Leaf _ -> node
  | Internal internal ->
    descend pool t (nth_child internal.children (child_index node.keys key)) key

let find_eq ?pool t key =
  let leaf = descend pool t t.root key in
  match leaf.body with
  | Leaf l ->
    let rec go keys postings =
      match keys, postings with
      | [], [] -> []
      | k :: krest, p :: prest ->
        if compare_keys k key = 0 then p
        else if compare_keys k key > 0 then []
        else go krest prest
      | _ -> assert false
    in
    go leaf.keys l.postings
  | Internal _ -> assert false

let remove t key tid =
  let leaf = descend None t t.root key in
  match leaf.body with
  | Leaf l ->
    let rec go keys postings =
      match keys, postings with
      | [], [] -> ([], [])
      | k :: krest, p :: prest ->
        if compare_keys k key = 0 then begin
          let p' = List.filter (fun x -> x <> tid) p in
          if List.length p' < List.length p then t.entries <- t.entries - 1;
          if p' = [] then (krest, prest) else (k :: krest, p' :: prest)
        end
        else
          let ks, ps = go krest prest in
          (k :: ks, p :: ps)
      | _ -> assert false
    in
    let ks, ps = go leaf.keys l.postings in
    leaf.keys <- ks;
    l.postings <- ps
  | Internal _ -> assert false

let in_lower bound key =
  match bound with
  | Unbounded -> true
  | Incl b -> compare_keys key b >= 0
  | Excl b -> compare_keys key b > 0

let in_upper bound key =
  match bound with
  | Unbounded -> true
  | Incl b -> compare_keys key b <= 0
  | Excl b -> compare_keys key b < 0

let range ?pool t ~lower ~upper =
  let start_key = match lower with Incl k | Excl k -> k | Unbounded -> [||] in
  let leaf =
    match lower with
    | Unbounded ->
      (* leftmost leaf *)
      let rec leftmost node =
        touch pool t node;
        match node.body with
        | Leaf _ -> node
        | Internal i -> leftmost (List.hd i.children)
      in
      leftmost t.root
    | Incl _ | Excl _ -> descend pool t t.root start_key
  in
  let out = ref [] in
  let rec walk node =
    touch pool t node;
    match node.body with
    | Internal _ -> assert false
    | Leaf l ->
      let continue = ref true in
      List.iter2
        (fun k p ->
          if in_upper upper k then begin
            if in_lower lower k then
              List.iter (fun tid -> out := (k, tid) :: !out) (List.rev p)
          end
          else continue := false)
        node.keys l.postings;
      if !continue then
        match l.next with Some next -> walk next | None -> ()
  in
  walk leaf;
  List.rev !out

let prefix ?pool t p =
  let plen = Array.length p in
  let matches k =
    Array.length k >= plen
    &&
    let rec go i = i >= plen || (Datum.compare k.(i) p.(i) = 0 && go (i + 1)) in
    go 0
  in
  let leaf = descend pool t t.root p in
  let out = ref [] in
  let rec walk node =
    touch pool t node;
    match node.body with
    | Internal _ -> assert false
    | Leaf l ->
      let continue = ref true in
      List.iter2
        (fun k post ->
          if matches k then
            List.iter (fun tid -> out := (k, tid) :: !out) (List.rev post)
          else if compare_keys k p > 0 then continue := false)
        node.keys l.postings;
      if !continue then
        match l.next with Some next -> walk next | None -> ()
  in
  walk leaf;
  List.rev !out

let fold ?pool t ~init ~f =
  range ?pool t ~lower:Unbounded ~upper:Unbounded
  |> List.fold_left (fun acc (k, tid) -> f acc k tid) init

let entry_count t = t.entries

let rec depth_of node =
  match node.body with
  | Leaf _ -> 1
  | Internal i -> 1 + depth_of (List.hd i.children)

let depth t = depth_of t.root

let page_count t = t.nodes

let clear t =
  t.root <- { id = 0; keys = []; body = Leaf { postings = []; next = None } };
  t.next_id <- 1;
  t.entries <- 0;
  t.nodes <- 1
