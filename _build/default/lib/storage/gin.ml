module Int_set = Set.Make (Int)

type t = {
  gin_name : string;
  postings : (string, Int_set.t ref) Hashtbl.t;
  mutable page_seq : int;
  page_of_key : (string, int) Hashtbl.t;
}

let create ~name () =
  {
    gin_name = name;
    postings = Hashtbl.create 1024;
    page_seq = 0;
    page_of_key = Hashtbl.create 1024;
  }

let name t = t.gin_name

(* pg_trgm: words are lowercased alphanumeric runs, padded "  w " so a word
   of length n yields n+1 trigrams. *)
let words s =
  let buf = Buffer.create 16 in
  let out = ref [] in
  let flush () =
    if Buffer.length buf > 0 then begin
      out := Buffer.contents buf :: !out;
      Buffer.clear buf
    end
  in
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | '0' .. '9' -> Buffer.add_char buf c
      | 'A' .. 'Z' -> Buffer.add_char buf (Char.lowercase_ascii c)
      | _ -> flush ())
    s;
  flush ();
  List.rev !out

let trigrams_of s =
  let of_word w =
    let padded = "  " ^ w ^ " " in
    let n = String.length padded in
    let rec go i acc =
      if i + 3 > n then List.rev acc else go (i + 1) (String.sub padded i 3 :: acc)
    in
    go 0 []
  in
  List.concat_map of_word (words s) |> List.sort_uniq String.compare

(* Trigrams usable for a substring query: no word-boundary padding, since
   the pattern can match mid-word. *)
let query_trigrams pattern =
  let of_word w =
    let n = String.length w in
    let rec go i acc =
      if i + 3 > n then List.rev acc else go (i + 1) (String.sub w i 3 :: acc)
    in
    go 0 []
  in
  List.concat_map of_word (words pattern) |> List.sort_uniq String.compare

let page_of t key =
  match Hashtbl.find_opt t.page_of_key key with
  | Some p -> p
  | None ->
    let p = t.page_seq in
    t.page_seq <- p + 1;
    Hashtbl.replace t.page_of_key key p;
    p

let add ?pool t ~tid text =
  let tgs = trigrams_of text in
  List.iter
    (fun tg ->
      (match pool with
       | Some pool ->
         ignore
           (Buffer_pool.access pool
              { Buffer_pool.relation = "gin:" ^ t.gin_name;
                page_no = page_of t tg })
       | None -> ());
      match Hashtbl.find_opt t.postings tg with
      | Some set -> set := Int_set.add tid !set
      | None -> Hashtbl.replace t.postings tg (ref (Int_set.singleton tid)))
    tgs;
  List.length tgs

let remove t ~tid text =
  List.iter
    (fun tg ->
      match Hashtbl.find_opt t.postings tg with
      | Some set ->
        set := Int_set.remove tid !set;
        if Int_set.is_empty !set then Hashtbl.remove t.postings tg
      | None -> ())
    (trigrams_of text)

let touch pool t key =
  match pool with
  | None -> ()
  | Some pool ->
    ignore
      (Buffer_pool.access pool
         { Buffer_pool.relation = "gin:" ^ t.gin_name; page_no = page_of t key })

let candidates ?pool t pattern =
  match query_trigrams pattern with
  | [] -> None
  | tgs ->
    let posting tg =
      touch pool t tg;
      match Hashtbl.find_opt t.postings tg with
      | Some set -> !set
      | None -> Int_set.empty
    in
    let sets = List.map posting tgs in
    (match sets with
     | [] -> None
     | first :: rest ->
       let inter = List.fold_left Int_set.inter first rest in
       Some (Int_set.elements inter))

let key_count t = Hashtbl.length t.postings

let page_count t = Hashtbl.length t.postings

let clear t =
  Hashtbl.reset t.postings;
  Hashtbl.reset t.page_of_key;
  t.page_seq <- 0
