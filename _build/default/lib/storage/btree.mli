(** B+tree secondary index over composite datum keys.

    Keys are datum arrays compared lexicographically (a shorter key that is
    a prefix of a longer one sorts first, which is what makes prefix scans
    work). Values are heap tuple ids; duplicates are kept in per-key
    posting lists, so the index is MVCC-agnostic — visibility is checked
    against the heap by the executor, as PostgreSQL does.

    Deletion is lazy (no node merging); vacuumed tids are removed from
    posting lists and empty keys dropped from leaves. Node visits are
    reported to an optional buffer pool, one logical page per node. *)

type key = Datum.t array

val compare_keys : key -> key -> int

type t

type bound = Incl of key | Excl of key | Unbounded

val create : name:string -> ?order:int -> unit -> t

val name : t -> string

val insert : t -> key -> int -> unit

(** [remove t key tid] removes one (key, tid) pairing; no-op if absent. *)
val remove : t -> key -> int -> unit

(** Tuple ids with exactly this key. *)
val find_eq : ?pool:Buffer_pool.t -> t -> key -> int list

(** Entries in key order within the bounds. *)
val range :
  ?pool:Buffer_pool.t -> t -> lower:bound -> upper:bound -> (key * int) list

(** Entries whose key starts with [prefix], in key order. *)
val prefix : ?pool:Buffer_pool.t -> t -> key -> (key * int) list

(** Fold over all entries in key order (index-only scans). *)
val fold :
  ?pool:Buffer_pool.t -> t -> init:'a -> f:('a -> key -> int -> 'a) -> 'a

val entry_count : t -> int

val depth : t -> int

val page_count : t -> int

(** Drop all entries. *)
val clear : t -> unit
