(** Columnar storage (the [columnar] access method of Citus).

    Append-only stripes of a fixed row count hold each column contiguously
    with per-column min/max metadata, enabling two effects the data
    warehousing pattern depends on (§2.4): scans read only the projected
    columns (fewer logical pages), and stripes whose min/max cannot satisfy
    a predicate are skipped entirely.

    Stripes are visible when their writing transaction is visible — the
    update/delete-free MVCC model of real Citus columnar. *)

type t

val create :
  name:string -> ncols:int -> ?stripe_rows:int -> ?values_per_page:int ->
  unit -> t
(** [values_per_page] defaults to 1024: column values pack densely and
    compress, so one logical page holds far more values than a heap page
    holds rows. *)

val name : t -> string

(** Append rows written by [xid] (grouped into stripes internally). *)
val append : t -> xid:int -> Datum.t array list -> unit

val row_count : t -> int

val stripe_count : t -> int

(** [scan t ~columns ~f] calls [f] for each visible row with a full-width
    row in which only [columns] are populated (others [Null]).
    [stripe_predicate ~mins ~maxs] may rule out a whole stripe from its
    per-column min/max (arrays indexed by column; [Null] when the stripe
    has no non-null value for that column). Page accounting charges
    [rows/values_per_page] logical pages per (stripe, projected column). *)
val scan :
  ?pool:Buffer_pool.t ->
  ?stripe_predicate:(mins:Datum.t array -> maxs:Datum.t array -> bool) ->
  t ->
  status:(int -> Txn.Manager.status) ->
  snapshot:Txn.Snapshot.t ->
  my_xid:int option ->
  columns:int list ->
  f:(Datum.t array -> unit) ->
  unit

(** Logical pages a full scan of [columns] would touch; the planner's cost
    input. *)
val pages_for_columns : t -> columns:int list -> int

(** Remove all stripes (TRUNCATE). *)
val clear : t -> unit
