(** The workload-pattern / capability model of §2 (Tables 1 and 2).

    Each capability is tied to the part of this library that implements it,
    so the benchmark harness regenerates Table 2 from code rather than
    from a hand-written matrix. *)

type workload =
  | Multi_tenant
  | Real_time_analytics
  | High_performance_crud
  | Data_warehousing

val workloads : workload list

val workload_name : workload -> string

val workload_abbrev : workload -> string

type capability =
  | Distributed_tables
  | Colocated_distributed_tables
  | Reference_tables
  | Local_tables
  | Distributed_transactions
  | Distributed_schema_changes
  | Query_routing
  | Parallel_distributed_select
  | Parallel_distributed_dml
  | Colocated_distributed_joins
  | Non_colocated_distributed_joins
  | Columnar_storage
  | Parallel_bulk_loading
  | Connection_scaling

val capabilities : capability list

val capability_name : capability -> string

(** Module path in this repository that implements the capability. *)
val implemented_by : capability -> string

type requirement = Required | Some_workloads | Not_required

(** Table 2 cell: does this workload pattern require this capability? *)
val requires : workload -> capability -> requirement

(** Table 1 row: (typical latency, typical throughput/s, typical data size). *)
val scale_requirements : workload -> string * string * string

(** Table 3: benchmark used for the workload pattern. *)
val benchmark_for : workload -> string
