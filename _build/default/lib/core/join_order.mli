(** The logical join-order planner (§3.5, planner D in Figure 4).

    Handles SELECTs whose distributed tables are {e not} co-located (or not
    joined on their distribution columns). The planner evaluates each
    distributed table as the {b anchor}: every other distributed table must
    either

    - already be co-located with the anchor and joined on the distribution
      column (free),
    - join the anchor on the {e anchor's} distribution column, making a
      {b re-partition join} possible (its filtered rows are hash-partitioned
      into the anchor's shard ranges and shipped as per-group fragment
      relations), or
    - be small enough to {b broadcast} to every node holding anchor shards.

    Among feasible anchors the one minimizing estimated network traffic
    (rows shipped) wins — re-partition ships the rows once, broadcast ships
    them once per node. The rewritten query then executes exactly like a
    co-located pushdown: per-group tasks plus a coordinator merge.

    Dual re-partition (both join sides moved) and subqueries under
    non-co-located joins are unsupported, mirroring the paper's stated
    data-warehouse limitations (§2.4, §7). *)

exception Unsupported of string

type move =
  | Broadcast of { table : string; rows : int }
  | Repartition of { table : string; rows : int }

(** Chosen anchor and the relation moves, for tests/EXPLAIN. *)
type decision = { anchor : string; moves : move list; est_shipped : int }

(** Planning decision only (row estimates run, no data moves) — used by
    EXPLAIN. Raises {!Unsupported} like {!execute}. *)
val decide :
  State.t -> Engine.Instance.session -> Sqlfront.Ast.select -> decision

(** Plan and execute a non-co-located SELECT; returns the result, the
    decision taken, and the adaptive-executor report of the final tasks. *)
val execute :
  State.t ->
  Engine.Instance.session ->
  Sqlfront.Ast.select ->
  Engine.Instance.result * decision * Adaptive_executor.report

(** Default broadcast threshold (rows); tables at or below it may be
    broadcast even without a usable re-partition key. *)
val broadcast_threshold : int ref
