(** Executes distributed plans (§3.6).

    Single-task plans (fast path / router) delegate entirely to one worker.
    Multi-shard SELECTs run their tasks through the adaptive executor,
    materialize the collected rows into a transient local relation, and run
    the merge ("master") query over it — the CustomScan + merge-step
    structure of Figure 5. *)

(** Result plus the adaptive executor's timing report. *)
val execute :
  State.t ->
  Engine.Instance.session ->
  Plan.t ->
  Engine.Instance.result * Adaptive_executor.report
