(** Distributed schema changes (§3.8).

    DDL on a Citus table is applied to the coordinator's local schema copy
    first (keeping future shards consistent) and then propagated to every
    shard through the adaptive executor inside the same distributed
    transaction, so a multi-node DDL commits atomically via 2PC. *)

(** Utility hook for {!Engine.Instance.set_utility_hook}: [None] when the
    statement touches no Citus table. *)
val utility_hook :
  State.t ->
  Engine.Instance.session ->
  Sqlfront.Ast.statement ->
  Engine.Instance.result option
