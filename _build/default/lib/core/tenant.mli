(** Tenant isolation (§2.1).

    "Customers may need control over tenant placement to avoid issues with
    noisy neighbors. For this, Citus provides features ... to isolate a
    tenant onto its own server."

    [isolate_tenant] splits the shard group containing a tenant value into
    up to three groups — the hash values below the tenant, exactly the
    tenant's hash, and the values above — across {e every} table of the
    colocation group, so co-location is preserved. The resulting
    single-tenant shard group can then be moved to a dedicated node with
    {!Rebalancer.move_shard_group}. *)

(** [isolate_tenant st ~table ~value] returns the shard ids of the new
    tenant-only shards, one per table of the colocation group (the first
    belongs to [table]). Raises on reference tables. *)
val isolate_tenant :
  State.t -> table:string -> value:Datum.t -> int list

(** Convenience: isolate and immediately move the tenant's shard group to
    [to_node]. *)
val isolate_tenant_to_node :
  State.t -> table:string -> value:Datum.t -> to_node:string ->
  Rebalancer.move
