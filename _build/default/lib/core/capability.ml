type workload =
  | Multi_tenant
  | Real_time_analytics
  | High_performance_crud
  | Data_warehousing

let workloads =
  [ Multi_tenant; Real_time_analytics; High_performance_crud; Data_warehousing ]

let workload_name = function
  | Multi_tenant -> "Multi-tenant / SaaS"
  | Real_time_analytics -> "Real-time analytics"
  | High_performance_crud -> "High-performance CRUD"
  | Data_warehousing -> "Data warehousing"

let workload_abbrev = function
  | Multi_tenant -> "MT"
  | Real_time_analytics -> "RA"
  | High_performance_crud -> "HC"
  | Data_warehousing -> "DW"

type capability =
  | Distributed_tables
  | Colocated_distributed_tables
  | Reference_tables
  | Local_tables
  | Distributed_transactions
  | Distributed_schema_changes
  | Query_routing
  | Parallel_distributed_select
  | Parallel_distributed_dml
  | Colocated_distributed_joins
  | Non_colocated_distributed_joins
  | Columnar_storage
  | Parallel_bulk_loading
  | Connection_scaling

let capabilities =
  [
    Distributed_tables;
    Colocated_distributed_tables;
    Reference_tables;
    Local_tables;
    Distributed_transactions;
    Distributed_schema_changes;
    Query_routing;
    Parallel_distributed_select;
    Parallel_distributed_dml;
    Colocated_distributed_joins;
    Non_colocated_distributed_joins;
    Columnar_storage;
    Parallel_bulk_loading;
    Connection_scaling;
  ]

let capability_name = function
  | Distributed_tables -> "Distributed tables"
  | Colocated_distributed_tables -> "Co-located distributed tables"
  | Reference_tables -> "Reference tables"
  | Local_tables -> "Local tables"
  | Distributed_transactions -> "Distributed transactions"
  | Distributed_schema_changes -> "Distributed schema changes"
  | Query_routing -> "Query routing"
  | Parallel_distributed_select -> "Parallel, distributed SELECT"
  | Parallel_distributed_dml -> "Parallel, distributed DML"
  | Colocated_distributed_joins -> "Co-located distributed joins"
  | Non_colocated_distributed_joins -> "Non-co-located distributed joins"
  | Columnar_storage -> "Columnar storage"
  | Parallel_bulk_loading -> "Parallel bulk loading"
  | Connection_scaling -> "Connection scaling"

let implemented_by = function
  | Distributed_tables -> "Citus.Metadata / Citus.Api.create_distributed_table"
  | Colocated_distributed_tables -> "Citus.Metadata (colocation groups)"
  | Reference_tables -> "Citus.Api.create_reference_table"
  | Local_tables -> "Engine.Instance (tables not in Citus metadata)"
  | Distributed_transactions -> "Citus.Twopc"
  | Distributed_schema_changes -> "Citus.Ddl (utility hook propagation)"
  | Query_routing -> "Citus.Planner (fast path + router)"
  | Parallel_distributed_select -> "Citus.Planner (logical pushdown)"
  | Parallel_distributed_dml -> "Citus.Insert_select / Citus.Planner"
  | Colocated_distributed_joins -> "Citus.Planner (co-location check)"
  | Non_colocated_distributed_joins -> "Citus.Join_order (re-partition/broadcast)"
  | Columnar_storage -> "Storage.Columnar (USING COLUMNAR)"
  | Parallel_bulk_loading -> "Citus.Copy_scaling"
  | Connection_scaling -> "Citus.Api.enable_metadata_sync (multi-coordinator)"

type requirement = Required | Some_workloads | Not_required

(* Table 2 of the paper, verbatim. *)
let requires w c =
  let yes = Required and some = Some_workloads and no = Not_required in
  match c with
  | Distributed_tables | Colocated_distributed_tables | Reference_tables
  | Distributed_transactions | Distributed_schema_changes ->
    yes
  | Local_tables ->
    (match w with
     | Multi_tenant | Real_time_analytics -> some
     | High_performance_crud | Data_warehousing -> no)
  | Query_routing -> (match w with Data_warehousing -> no | _ -> yes)
  | Parallel_distributed_select ->
    (match w with
     | Real_time_analytics | Data_warehousing -> yes
     | Multi_tenant | High_performance_crud -> no)
  | Parallel_distributed_dml ->
    (match w with Real_time_analytics -> yes | _ -> no)
  | Colocated_distributed_joins ->
    (match w with High_performance_crud -> no | _ -> yes)
  | Non_colocated_distributed_joins ->
    (match w with Data_warehousing -> yes | _ -> no)
  | Columnar_storage ->
    (match w with
     | Real_time_analytics -> some
     | Data_warehousing -> yes
     | Multi_tenant | High_performance_crud -> no)
  | Parallel_bulk_loading ->
    (match w with
     | Real_time_analytics | Data_warehousing -> yes
     | Multi_tenant | High_performance_crud -> no)
  | Connection_scaling ->
    (match w with High_performance_crud -> yes | _ -> no)

(* Table 1 of the paper. *)
let scale_requirements = function
  | Multi_tenant -> ("10ms", "10k/s", "1TB")
  | Real_time_analytics -> ("100ms", "1k/s", "10TB")
  | High_performance_crud -> ("1ms", "100k/s", "1TB")
  | Data_warehousing -> ("10s+", "10/s", "10TB")

(* Table 3 of the paper. *)
let benchmark_for = function
  | Multi_tenant -> "HammerDB TPC-C-based"
  | Real_time_analytics -> "Custom microbenchmarks"
  | High_performance_crud -> "YCSB"
  | Data_warehousing -> "Queries from TPC-H"
