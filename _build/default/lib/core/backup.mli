(** Cluster-consistent restore points (§3.9).

    Backups are per-server WAL archives; what makes them consistent
    cluster-wide is a named restore point written into every node's WAL
    while 2PC commit-record writes are blocked — so no multi-node
    transaction can be "half included". Restoring all servers to the same
    restore point then yields a cluster in which every multi-node
    transaction is either fully committed, fully aborted, or completable
    by 2PC recovery on startup. *)

(** [create_restore_point t name] blocks writes to the commit-records
    table, writes the named restore point into the WAL of every reachable
    node, and releases the block. Raises {!State.Network_error} if a node
    is unreachable (a restore point must cover the whole cluster). *)
val create_restore_point : State.t -> string -> unit

(** The WAL position of a restore point on every node, or [None] for nodes
    that do not have it. *)
val restore_point_positions : State.t -> string -> (string * int option) list

(** A restore point is consistent when every node has it. *)
val restore_point_is_consistent : State.t -> string -> bool
