(** Distributed deadlock detection (§3.7.3).

    The coordinator's maintenance daemon polls every node for its wait-for
    edges, merges worker transactions that belong to the same distributed
    transaction (via the shared registry), and searches the resulting graph
    for a cycle. If one exists, the youngest distributed transaction in the
    cycle is cancelled: its worker transactions and coordinator transaction
    are aborted, and its session observes the abort on its next statement. *)

type vertex =
  | Dist_txn of string * int  (** (coordinator node, coordinator xid) *)
  | Local_txn of string * int  (** (node, xid) with no distributed owner *)

val vertex_to_string : vertex -> string

(** Collect the cluster-wide wait-for graph (one polling round trip per
    node), merged by distributed transaction. *)
val gather_edges : State.t -> (vertex * vertex) list

(** Find a cycle in an edge list (exposed for tests). *)
val find_cycle : (vertex * vertex) list -> vertex list option

(** One detector pass: returns the cancelled victim, if any. Only cancels
    distributed transactions (purely local cycles are left to the local
    detectors). *)
val detect_and_cancel : State.t -> vertex option
