open Sqlfront

type report = {
  makespan : float;
  connections_used : (string * int) list;
  round_trips : int;
  serial_time : float;
}

let is_write (stmt : Ast.statement) =
  match stmt with
  | Ast.Insert _ | Ast.Update _ | Ast.Delete _ | Ast.Create_index _
  | Ast.Truncate _ | Ast.Alter_table_add_column _ | Ast.Drop_table _
  | Ast.Copy_from _ ->
    true
  | _ -> false

(* Greedy list scheduling of task durations over connections that open at
   k * slow_start (slow start, §3.6.1). Effective connections = those that
   received at least one task. *)
let simulate_timeline ~durations ~slow_start ~max_conns =
  match durations with
  | [] -> (0.0, 0)
  | _ ->
    let n_conns = max 1 (min max_conns (List.length durations)) in
    let next_free =
      Array.init n_conns (fun k -> float_of_int k *. slow_start)
    in
    let used = Array.make n_conns false in
    List.iter
      (fun d ->
        (* earliest-available connection *)
        let best = ref 0 in
        for k = 1 to n_conns - 1 do
          if next_free.(k) < next_free.(!best) then best := k
        done;
        used.(!best) <- true;
        next_free.(!best) <- next_free.(!best) +. d)
      durations;
    (* only connections that ran a task count towards the makespan: an
       unused ramp slot is never actually opened *)
    let makespan = ref 0.0 and effective = ref 0 in
    Array.iteri
      (fun k u ->
        if u then begin
          incr effective;
          if next_free.(k) > !makespan then makespan := next_free.(k)
        end)
      used;
    (!makespan, !effective)

(* Measure the resource demand of running [f] on [node]: meter + buffer
   pool diffs converted to solo elapsed seconds. *)
let measured (node : Cluster.Topology.node) f =
  let inst = node.Cluster.Topology.instance in
  let meter_before = Engine.Meter.read (Engine.Instance.meter inst) in
  let pool_stats_before = Storage.Buffer_pool.stats (Engine.Instance.buffer_pool inst) in
  let result = f () in
  let meter_after = Engine.Meter.read (Engine.Instance.meter inst) in
  let pool_stats_after = Storage.Buffer_pool.stats (Engine.Instance.buffer_pool inst) in
  let meter = Engine.Meter.diff ~after:meter_after ~before:meter_before in
  let misses =
    pool_stats_after.Storage.Buffer_pool.misses
    - pool_stats_before.Storage.Buffer_pool.misses
  in
  let demand =
    Sim.Cost.demand_of ~spec:node.Cluster.Topology.spec ~meter ~misses
  in
  let duration =
    Sim.Cost.solo_elapsed ~spec:node.Cluster.Topology.spec ~parallelism:1 demand
  in
  (result, duration)

let register_backend st_state (t : State.t) conn coord_session =
  match Cluster.Connection.backend_xid conn with
  | Some worker_xid ->
    let node = (Cluster.Connection.node conn).Cluster.Topology.node_name in
    let coord_node =
      Engine.Instance.name (Engine.Instance.session_instance coord_session)
    in
    (match Engine.Instance.current_xid coord_session with
     | Some coord_xid ->
       Hashtbl.replace t.State.registry (node, worker_xid)
         (coord_node, coord_xid);
       st_state.State.dist_xids <-
         (node, worker_xid) :: st_state.State.dist_xids
     | None -> ())
  | None -> ()

(* Pick / open the connection for a task. *)
let connection_for (t : State.t) st ~in_txn ~assigned (task : Plan.task) =
  let node = Cluster.Topology.find_node t.State.cluster task.Plan.task_node in
  let node_name = node.Cluster.Topology.node_name in
  let affinity_key = (0, task.Plan.task_group) in
  let affinity_match =
    if task.Plan.task_group >= 0 then
      List.assoc_opt affinity_key st.State.affinity
      |> Option.map (fun c -> (c, true))
    else None
  in
  match affinity_match with
  | Some (conn, _)
    when (Cluster.Connection.node conn).Cluster.Topology.node_name
         = node_name ->
    conn
  | _ ->
    let pool = State.pool_of st node_name in
    (* least-loaded existing connection, else try to open one *)
    let load c =
      List.length (List.filter (fun c' -> c' == c) assigned)
    in
    let pick_existing () =
      match pool with
      | [] -> None
      | first :: rest ->
        Some
          (List.fold_left
             (fun best c -> if load c < load best then c else best)
             first rest)
    in
    let conn =
      match pick_existing () with
      | Some c when load c = 0 -> c
      | maybe_busy ->
        (match State.checkout t st node with
         | Some fresh -> fresh
         | None ->
           (match maybe_busy with
            | Some c -> c
            | None ->
              (* must have at least one connection *)
              Option.get (State.checkout t st ~force:true node)))
    in
    if in_txn && task.Plan.task_group >= 0 then
      st.State.affinity <- (affinity_key, conn) :: st.State.affinity;
    conn

let execute (t : State.t) coord_session (tasks : Plan.task list) =
  let st = State.session_state t coord_session in
  let explicit = Engine.Instance.in_transaction coord_session in
  let net_before = Cluster.Topology.net_snapshot t.State.cluster in
  let assigned : Cluster.Connection.t list ref = ref [] in
  let node_durations : (string, float list ref) Hashtbl.t = Hashtbl.create 8 in
  let results =
    List.map
      (fun (task : Plan.task) ->
        let needs_txn_block = explicit || is_write task.Plan.task_stmt in
        let conn = connection_for t st ~in_txn:needs_txn_block ~assigned:!assigned task in
        assigned := conn :: !assigned;
        let node = Cluster.Connection.node conn in
        if needs_txn_block && not (List.memq conn st.State.txn_conns) then begin
          ignore (State.exec_on t conn "BEGIN");
          st.State.txn_conns <- conn :: st.State.txn_conns;
          register_backend st t conn coord_session
        end;
        let result, duration =
          measured node (fun () -> State.exec_ast_on t conn task.Plan.task_stmt)
        in
        let durs =
          match Hashtbl.find_opt node_durations task.Plan.task_node with
          | Some r -> r
          | None ->
            let r = ref [] in
            Hashtbl.replace node_durations task.Plan.task_node r;
            r
        in
        durs := duration :: !durs;
        result)
      tasks
  in
  let net_after = Cluster.Topology.net_snapshot t.State.cluster in
  let net = Cluster.Topology.net_diff ~after:net_after ~before:net_before in
  let per_node =
    Hashtbl.fold (fun node durs acc -> (node, List.rev !durs) :: acc)
      node_durations []
  in
  let timelines =
    List.map
      (fun (node, durations) ->
        let makespan, conns =
          simulate_timeline ~durations
            ~slow_start:t.State.config.State.slow_start_interval
            ~max_conns:
              (min t.State.config.State.pool_size_per_node
                 t.State.config.State.shared_connection_limit)
        in
        (node, makespan, conns, List.fold_left ( +. ) 0.0 durations))
      per_node
  in
  let report =
    {
      makespan =
        List.fold_left (fun acc (_, m, _, _) -> Float.max acc m) 0.0 timelines;
      connections_used = List.map (fun (n, _, c, _) -> (n, c)) timelines;
      round_trips = net.Cluster.Topology.round_trips;
      serial_time =
        List.fold_left (fun acc (_, _, _, s) -> acc +. s) 0.0 timelines;
    }
  in
  (results, report)
