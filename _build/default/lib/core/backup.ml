let create_restore_point (t : State.t) name =
  (* block in-flight 2PC: an Access_exclusive lock on the commit-records
     table conflicts with the pre-commit inserts, so no distributed
     transaction can slip its commit record in while the points are
     written (§3.9) *)
  let local = t.State.local.Cluster.Topology.instance in
  let mgr = Engine.Instance.txn_manager local in
  let lock_xid = Txn.Manager.begin_txn mgr in
  (match
     Txn.Lock.acquire (Txn.Manager.locks mgr) ~owner:lock_xid
       (Txn.Lock.Table Twopc.commit_records_table)
       Txn.Lock.Access_exclusive
   with
   | Txn.Lock.Granted -> ()
   | Txn.Lock.Blocked _ ->
     Txn.Manager.abort mgr lock_xid;
     invalid_arg "commit records table is busy; retry the restore point");
  Fun.protect
    ~finally:(fun () ->
      if Txn.Manager.is_active mgr lock_xid then Txn.Manager.commit mgr lock_xid)
    (fun () ->
      List.iter
        (fun (node : Cluster.Topology.node) ->
          let name_n = node.Cluster.Topology.node_name in
          if not (State.reachable t name_n) then
            raise
              (State.Network_error
                 (Printf.sprintf
                    "cannot create restore point %s: node %s is unreachable"
                    name name_n));
          (* writing the record on a remote node costs a round trip *)
          if not (String.equal name_n t.State.local.Cluster.Topology.node_name)
          then begin
            t.State.cluster.Cluster.Topology.net.Cluster.Topology.round_trips <-
              t.State.cluster.Cluster.Topology.net.Cluster.Topology.round_trips + 1;
            t.State.cluster.Cluster.Topology.net.Cluster.Topology.cross_round_trips <-
              t.State.cluster.Cluster.Topology.net.Cluster.Topology
                .cross_round_trips + 1
          end;
          Engine.Instance.create_restore_point node.Cluster.Topology.instance
            name)
        (Cluster.Topology.all_nodes t.State.cluster))

let restore_point_positions (t : State.t) name =
  List.map
    (fun (node : Cluster.Topology.node) ->
      let wal =
        Txn.Manager.wal (Engine.Instance.txn_manager node.Cluster.Topology.instance)
      in
      (node.Cluster.Topology.node_name, Txn.Wal.find_restore_point wal name))
    (Cluster.Topology.all_nodes t.State.cluster)

let restore_point_is_consistent (t : State.t) name =
  List.for_all (fun (_, pos) -> pos <> None) (restore_point_positions t name)
