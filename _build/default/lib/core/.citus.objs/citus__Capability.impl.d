lib/core/capability.ml:
