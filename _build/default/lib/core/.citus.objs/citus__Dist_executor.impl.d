lib/core/dist_executor.ml: Adaptive_executor Array Cluster Datum Engine Fun List Option Plan Planner Printf Sqlfront State Storage String Txn
