lib/core/tenant.ml: Array Cluster Datum Engine Int32 List Metadata Option Printf Rebalancer Sqlfront State String
