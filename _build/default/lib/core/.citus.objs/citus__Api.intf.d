lib/core/api.mli: Cluster Engine Hashtbl Metadata State
