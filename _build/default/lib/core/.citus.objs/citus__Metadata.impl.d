lib/core/metadata.ml: Array Datum Hashtbl Int Int32 Int64 List Printf String
