lib/core/state.ml: Cluster Engine Hashtbl List Metadata Option Printf Sqlfront String
