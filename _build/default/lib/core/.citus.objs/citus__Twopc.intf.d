lib/core/twopc.mli: Engine State
