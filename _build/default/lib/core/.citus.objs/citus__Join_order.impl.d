lib/core/join_order.ml: Array Ast Cluster Datum Dist_executor Engine Fun Hashtbl Int32 List Metadata Option Plan Planner Printf Sqlfront State String
