lib/core/copy_scaling.mli: Engine State
