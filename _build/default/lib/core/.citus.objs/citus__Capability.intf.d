lib/core/capability.mli:
