lib/core/deadlock.ml: Cluster Engine Hashtbl List Printf State String Txn
