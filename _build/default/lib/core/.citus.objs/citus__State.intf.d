lib/core/state.mli: Cluster Engine Hashtbl Metadata Sqlfront
