lib/core/planner.mli: Engine Metadata Plan Sqlfront
