lib/core/adaptive_executor.ml: Array Ast Cluster Engine Float Hashtbl List Option Plan Sim Sqlfront State Storage
