lib/core/tenant.mli: Datum Rebalancer State
