lib/core/deadlock.mli: State
