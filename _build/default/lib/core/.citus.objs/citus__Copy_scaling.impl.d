lib/core/copy_scaling.ml: Array Cluster Datum Engine Hashtbl List Metadata Option Printf Sqlfront State String
