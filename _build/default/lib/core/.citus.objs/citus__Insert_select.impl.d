lib/core/insert_select.ml: Adaptive_executor Array Ast Cluster Datum Dist_executor Engine Hashtbl List Metadata Plan Planner Printf Sqlfront State String
