lib/core/explain.ml: Buffer Cluster Engine Join_order List Plan Planner Printf Sqlfront State String
