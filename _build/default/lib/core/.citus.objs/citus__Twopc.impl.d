lib/core/twopc.ml: Cluster Datum Engine Hashtbl List Printf Sqlfront State Txn
