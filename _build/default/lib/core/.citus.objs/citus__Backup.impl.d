lib/core/backup.ml: Cluster Engine Fun List Printf State String Twopc Txn
