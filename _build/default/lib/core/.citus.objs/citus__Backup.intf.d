lib/core/backup.mli: State
