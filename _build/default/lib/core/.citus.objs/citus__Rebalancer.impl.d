lib/core/rebalancer.ml: Cluster Engine Hashtbl Int List Metadata Option Printf Sqlfront State Storage String Txn
