lib/core/adaptive_executor.mli: Engine Plan State
