lib/core/metadata.mli: Datum
