lib/core/plan.ml: List Sqlfront
