lib/core/explain.mli: State
