lib/core/dist_executor.mli: Adaptive_executor Engine Plan State
