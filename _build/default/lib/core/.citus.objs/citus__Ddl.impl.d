lib/core/ddl.ml: Adaptive_executor Ast Engine List Metadata Plan Planner Printf Sqlfront State
