lib/core/insert_select.mli: Engine Sqlfront State
