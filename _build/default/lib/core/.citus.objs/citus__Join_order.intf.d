lib/core/join_order.mli: Adaptive_executor Engine Sqlfront State
