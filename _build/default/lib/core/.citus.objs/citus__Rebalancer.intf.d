lib/core/rebalancer.mli: Metadata State
