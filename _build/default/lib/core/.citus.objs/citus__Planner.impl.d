lib/core/planner.ml: Ast Datum Engine Hashtbl Int List Metadata Option Plan Printf Random Sqlfront String
