lib/core/ddl.mli: Engine Sqlfront State
