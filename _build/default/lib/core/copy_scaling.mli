(** COPY on Citus tables (§3.8).

    The coordinator parses the incoming stream (the single-core cost that
    caps Figure 7a), routes each row to its shard by hashing the
    distribution column, and streams per-shard batches to the workers —
    so the insert and index-maintenance work parallelizes across shards
    and nodes even for a single COPY session. Reference tables receive the
    whole batch on every replica. *)

(** Hook installed into {!Engine.Instance.set_copy_hook}: [None] when the
    table is not a Citus table. *)
val copy_hook :
  State.t ->
  Engine.Instance.session ->
  table:string ->
  columns:string list option ->
  string list ->
  int option
