(** Distributed INSERT..SELECT — the three strategies of §3.8.

    + {b co-located}: source and destination share a colocation group and
      the SELECT maps a source distribution column onto the destination's;
      each shard group runs [INSERT INTO dest_shard SELECT ... FROM
      src_shards] locally, fully in parallel;
    + {b re-partition}: the SELECT is pushdownable but rows land on other
      shards; task results are hash-partitioned by the destination
      distribution column and inserted per destination shard;
    + {b pull}: the SELECT needs a coordinator merge step; it runs as a
      distributed SELECT and the result is routed like a COPY. *)

type strategy = Colocated | Repartition | Pull

val strategy_name : strategy -> string

(** Execute [INSERT INTO table (columns) SELECT ...]; returns the result
    and which strategy ran. *)
val execute :
  State.t ->
  Engine.Instance.session ->
  table:string ->
  columns:string list option ->
  select:Sqlfront.Ast.select ->
  on_conflict_do_nothing:bool ->
  Engine.Instance.result * strategy
