lib/txn/snapshot.mli: Format
