lib/txn/snapshot.ml: Format List String
