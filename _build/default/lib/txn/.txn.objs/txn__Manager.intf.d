lib/txn/manager.mli: Lock Snapshot Wal
