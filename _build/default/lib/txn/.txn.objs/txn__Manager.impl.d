lib/txn/manager.ml: Hashtbl Int List Lock Printf Snapshot Wal
