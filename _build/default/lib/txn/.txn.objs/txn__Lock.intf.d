lib/txn/lock.mli:
