lib/txn/wal.mli: Datum
