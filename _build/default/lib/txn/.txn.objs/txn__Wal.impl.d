lib/txn/wal.ml: Datum List Option String
