(** MVCC snapshots, as in PostgreSQL.

    A snapshot captures which transactions were in progress at the moment it
    was taken. Combined with the commit log it decides tuple visibility. *)

type xid = int

type t = {
  xmin : xid;  (** all xids below this are finished *)
  xmax : xid;  (** first xid not yet assigned when the snapshot was taken *)
  active : xid list;  (** xids in [xmin, xmax) that were still running *)
}

(** [sees t xid] is true when transaction [xid]'s effects are potentially
    visible to this snapshot (it finished before the snapshot was taken).
    The caller still has to check the commit log: an aborted transaction is
    "seen" here but its tuples are dead. *)
val sees : t -> xid -> bool

val pp : Format.formatter -> t -> unit
