(** The distributed-transaction microbenchmark of §4.1.1 (Figure 9).

    Two co-located tables distributed by key; the transaction updates one
    row in each. With the same key both updates hit one node (single-node
    commit); with independent random keys the rows usually land on
    different nodes and commit runs 2PC. *)

type config = { rows : int }

val default_config : config

val setup : Db.t -> config -> unit

type mode = Same_key | Different_keys

(** One two-update transaction; returns whether it crossed nodes (always
    false on plain PostgreSQL). *)
val run_one :
  Db.t -> Engine.Instance.session -> config -> mode -> Random.State.t -> bool

(** Invariant: the sum over both tables of [v] is zero. *)
val balance_invariant_holds : Db.t -> bool
