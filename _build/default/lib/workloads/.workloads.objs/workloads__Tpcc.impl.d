lib/workloads/tpcc.ml: Citus Datum Db Engine List Printf Random
