lib/workloads/ycsb.mli: Db Engine Random
