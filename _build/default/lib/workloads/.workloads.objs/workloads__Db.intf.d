lib/workloads/db.mli: Citus Cluster Datum Engine
