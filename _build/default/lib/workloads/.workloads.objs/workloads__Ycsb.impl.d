lib/workloads/ycsb.ml: Char Db Engine List Printf Random String
