lib/workloads/gharchive.ml: Array Db Engine Json List Printf Random String
