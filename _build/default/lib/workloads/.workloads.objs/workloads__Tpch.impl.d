lib/workloads/tpch.ml: Array Db Engine List Printf Random
