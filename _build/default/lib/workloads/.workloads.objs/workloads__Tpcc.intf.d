lib/workloads/tpcc.mli: Db Engine Random
