lib/workloads/db.ml: Citus Cluster Datum Engine List Printf
