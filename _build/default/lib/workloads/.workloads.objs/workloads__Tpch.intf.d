lib/workloads/tpch.mli: Db
