lib/workloads/pgbench.mli: Db Engine Random
