lib/workloads/gharchive.mli: Db
