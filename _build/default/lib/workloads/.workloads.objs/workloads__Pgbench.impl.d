lib/workloads/pgbench.ml: Citus Datum Db Engine List Printf Random String
