type t = {
  cluster : Cluster.Topology.t;
  citus : Citus.Api.t option;
  session : Engine.Instance.session;
  label : string;
}

let postgres ?(buffer_pages = 100_000) () =
  let cluster = Cluster.Topology.create ~buffer_pages ~workers:0 () in
  let session =
    Engine.Instance.connect
      cluster.Cluster.Topology.coordinator.Cluster.Topology.instance
  in
  { cluster; citus = None; session; label = "postgres" }

let citus ?(buffer_pages = 100_000) ?(shard_count = 32) ~workers () =
  let cluster = Cluster.Topology.create ~buffer_pages ~workers () in
  let api = Citus.Api.install ~shard_count cluster in
  let session = Citus.Api.connect api in
  let label =
    if workers = 0 then "citus-0+1" else Printf.sprintf "citus-%d+1" workers
  in
  { cluster; citus = Some api; session; label }

let connect t =
  Engine.Instance.connect
    t.cluster.Cluster.Topology.coordinator.Cluster.Topology.instance

let exec t sql = Engine.Instance.exec t.session sql

let exec_on s sql = Engine.Instance.exec s sql

let distribute t ~table ~column ?colocate_with () =
  match t.citus with
  | None -> ()
  | Some api ->
    Citus.Api.create_distributed_table api ~table ~column ?colocate_with ()

let reference t ~table =
  match t.citus with
  | None -> ()
  | Some api -> Citus.Api.create_reference_table api ~table

let register_procedure t name f =
  List.iter
    (fun (node : Cluster.Topology.node) ->
      Engine.Instance.register_udf node.Cluster.Topology.instance name f)
    (Cluster.Topology.all_nodes t.cluster)

let count t table =
  match (exec t (Printf.sprintf "SELECT count(*) FROM %s" table)).Engine.Instance.rows with
  | [ [| Datum.Int n |] ] -> n
  | _ -> 0
