(** YCSB-style high-performance CRUD workload (§4.3).

    One [usertable] keyed by an integer, ten text payload fields. Workload
    A is a 50/50 read/update mix with uniform key selection, each operation
    a single-key statement — the fast-path planner's home turf. *)

type config = { rows : int; fields : int; field_length : int }

val default_config : config

val setup : Db.t -> config -> unit

type op = Read | Update

(** One workload-A operation on a session. *)
val run_one : Engine.Instance.session -> config -> Random.State.t -> op

(** Key drawn by the last [run_one] is uniform in [1, rows]; exposed for
    tests via a pure generator. *)
val next_op : config -> Random.State.t -> op * int
