(** Benchmark database handles: the four setups of §4.

    - [postgres]: one plain MiniPG node, no extension — the paper's
      baseline;
    - [citus ~workers:0]: a single node with Citus sharding locally
      ("Citus 0+1");
    - [citus ~workers:4] / [~workers:8]: coordinator + workers.

    [buffer_pages] is per node: the scaled-down stand-in for 64 GB of RAM
    that produces the fits-in-memory crossovers. *)

type t = {
  cluster : Cluster.Topology.t;
  citus : Citus.Api.t option;
  session : Engine.Instance.session;
  label : string;
}

val postgres : ?buffer_pages:int -> unit -> t

val citus : ?buffer_pages:int -> ?shard_count:int -> workers:int -> unit -> t

(** Fresh session on the same setup (driver "connections"). *)
val connect : t -> Engine.Instance.session

val exec : t -> string -> Engine.Instance.result

val exec_on : Engine.Instance.session -> string -> Engine.Instance.result

(** Distribute / reference a table when running under Citus; no-op on the
    plain-PostgreSQL baseline. *)
val distribute : t -> table:string -> column:string -> ?colocate_with:string -> unit -> unit

val reference : t -> table:string -> unit

(** Register a stored procedure on every node (workers need it when calls
    are delegated). *)
val register_procedure :
  t -> string -> (Engine.Instance.session -> Datum.t list -> Datum.t) -> unit

(** Total row count convenience. *)
val count : t -> string -> int
