type config = { lineitem_rows : int; distribute_part : bool }

let default_config = { lineitem_rows = 2000; distribute_part = false }

let nations =
  [| "FRANCE"; "GERMANY"; "JAPAN"; "BRAZIL"; "KENYA"; "PERU"; "CHINA"; "INDIA" |]

let regions = [| "EUROPE"; "ASIA"; "AMERICA"; "AFRICA" |]

let segments = [| "BUILDING"; "AUTOMOBILE"; "MACHINERY"; "HOUSEHOLD"; "FURNITURE" |]

let ship_modes = [| "MAIL"; "SHIP"; "RAIL"; "TRUCK"; "AIR" |]

let part_types = [| "PROMO BRASS"; "STANDARD COPPER"; "ECONOMY TIN"; "PROMO STEEL" |]

let setup_schema db cfg =
  let ddl =
    [
      "CREATE TABLE region (r_regionkey bigint PRIMARY KEY, r_name text)";
      "CREATE TABLE nation (n_nationkey bigint PRIMARY KEY, n_name text, n_regionkey bigint)";
      "CREATE TABLE supplier (s_suppkey bigint PRIMARY KEY, s_name text, s_nationkey bigint)";
      "CREATE TABLE customer (c_custkey bigint PRIMARY KEY, c_name text, \
       c_mktsegment text, c_nationkey bigint)";
      "CREATE TABLE part (p_partkey bigint PRIMARY KEY, p_name text, p_type text, p_size bigint)";
      "CREATE TABLE orders (o_orderkey bigint PRIMARY KEY, o_custkey bigint, \
       o_orderstatus text, o_totalprice double precision, o_orderdate bigint, \
       o_orderpriority text)";
      "CREATE TABLE lineitem (l_orderkey bigint, l_linenumber bigint, \
       l_partkey bigint, l_suppkey bigint, l_quantity bigint, \
       l_extendedprice double precision, l_discount double precision, \
       l_tax double precision, l_returnflag text, l_linestatus text, \
       l_shipdate bigint, l_shipmode text, \
       PRIMARY KEY (l_orderkey, l_linenumber))";
    ]
  in
  List.iter (fun sql -> ignore (Db.exec db sql)) ddl;
  Db.reference db ~table:"region";
  Db.reference db ~table:"nation";
  Db.reference db ~table:"supplier";
  Db.reference db ~table:"customer";
  if cfg.distribute_part then
    Db.distribute db ~table:"part" ~column:"p_partkey" ()
  else Db.reference db ~table:"part";
  Db.distribute db ~table:"orders" ~column:"o_orderkey" ();
  Db.distribute db ~table:"lineitem" ~column:"l_orderkey" ~colocate_with:"orders" ()

let load db cfg =
  let rng = Random.State.make [| 19 |] in
  let s = db.Db.session in
  let copy table lines =
    let rec batches = function
      | [] -> ()
      | lines ->
        let batch = List.filteri (fun i _ -> i < 500) lines in
        let rest = List.filteri (fun i _ -> i >= 500) lines in
        ignore (Engine.Instance.copy_in s ~table ~columns:None batch);
        batches rest
    in
    batches lines
  in
  let n_orders = max 1 (cfg.lineitem_rows / 4) in
  let n_parts = max 1 (cfg.lineitem_rows / 20) in
  let n_customers = max 1 (cfg.lineitem_rows / 30) in
  let n_suppliers = max 1 (cfg.lineitem_rows / 100) in
  copy "region"
    (List.init (Array.length regions) (fun i ->
         Printf.sprintf "%d\t%s" i regions.(i)));
  copy "nation"
    (List.init (Array.length nations) (fun i ->
         Printf.sprintf "%d\t%s\t%d" i nations.(i) (i mod Array.length regions)));
  copy "supplier"
    (List.init n_suppliers (fun i ->
         Printf.sprintf "%d\tsupp%d\t%d" (i + 1) (i + 1)
           (Random.State.int rng (Array.length nations))));
  copy "customer"
    (List.init n_customers (fun i ->
         Printf.sprintf "%d\tcust%d\t%s\t%d" (i + 1) (i + 1)
           segments.(Random.State.int rng (Array.length segments))
           (Random.State.int rng (Array.length nations))));
  copy "part"
    (List.init n_parts (fun i ->
         Printf.sprintf "%d\tpart%d\t%s\t%d" (i + 1) (i + 1)
           part_types.(Random.State.int rng (Array.length part_types))
           (1 + Random.State.int rng 50)));
  copy "orders"
    (List.init n_orders (fun i ->
         Printf.sprintf "%d\t%d\t%s\t%f\t%d\t%s" (i + 1)
           (1 + Random.State.int rng n_customers)
           (if Random.State.bool rng then "O" else "F")
           (1000.0 +. Random.State.float rng 100000.0)
           (Random.State.int rng 2400)
           (if Random.State.int rng 5 = 0 then "1-URGENT" else "3-MEDIUM")));
  copy "lineitem"
    (List.init cfg.lineitem_rows (fun i ->
         let orderkey = 1 + (i mod n_orders) in
         Printf.sprintf "%d\t%d\t%d\t%d\t%d\t%f\t%f\t%f\t%s\t%s\t%d\t%s" orderkey
           (1 + (i / n_orders))
           (1 + Random.State.int rng n_parts)
           (1 + Random.State.int rng n_suppliers)
           (1 + Random.State.int rng 50)
           (100.0 +. Random.State.float rng 10000.0)
           (Random.State.float rng 0.1)
           (Random.State.float rng 0.08)
           (if Random.State.int rng 4 = 0 then "R" else "N")
           (if Random.State.bool rng then "O" else "F")
           (Random.State.int rng 2555)
           ship_modes.(Random.State.int rng (Array.length ship_modes))))

let setup db cfg =
  setup_schema db cfg;
  load db cfg

let queries cfg =
  let base =
    [
      ( "Q1-pricing-summary",
        "SELECT l_returnflag, l_linestatus, sum(l_quantity), \
         sum(l_extendedprice), sum(l_extendedprice * (1 - l_discount)), \
         avg(l_quantity), avg(l_extendedprice), avg(l_discount), count(*) \
         FROM lineitem WHERE l_shipdate <= 2520 \
         GROUP BY l_returnflag, l_linestatus \
         ORDER BY l_returnflag, l_linestatus" );
      ( "Q3-shipping-priority",
        "SELECT lineitem.l_orderkey, \
         sum(lineitem.l_extendedprice * (1 - lineitem.l_discount)) AS revenue, \
         orders.o_orderdate \
         FROM customer JOIN orders ON customer.c_custkey = orders.o_custkey \
         JOIN lineitem ON lineitem.l_orderkey = orders.o_orderkey \
         WHERE customer.c_mktsegment = 'BUILDING' AND orders.o_orderdate < 1200 \
         AND lineitem.l_shipdate > 1200 \
         GROUP BY lineitem.l_orderkey, orders.o_orderdate \
         ORDER BY revenue DESC, lineitem.l_orderkey ASC LIMIT 10" );
      ( "Q5-local-supplier-volume",
        "SELECT nation.n_name, \
         sum(lineitem.l_extendedprice * (1 - lineitem.l_discount)) AS revenue \
         FROM orders JOIN lineitem ON lineitem.l_orderkey = orders.o_orderkey \
         JOIN customer ON customer.c_custkey = orders.o_custkey \
         JOIN supplier ON supplier.s_suppkey = lineitem.l_suppkey \
         JOIN nation ON nation.n_nationkey = supplier.s_nationkey \
         JOIN region ON region.r_regionkey = nation.n_regionkey \
         WHERE region.r_name = 'EUROPE' AND orders.o_orderdate >= 400 \
         AND orders.o_orderdate < 1400 \
         GROUP BY nation.n_name ORDER BY revenue DESC" );
      ( "Q6-revenue-forecast",
        "SELECT sum(l_extendedprice * l_discount) FROM lineitem \
         WHERE l_shipdate >= 400 AND l_shipdate < 800 \
         AND l_discount BETWEEN 0.02 AND 0.09 AND l_quantity < 24" );
      ( "Q7-volume-shipping",
        "SELECT nation.n_name, sum(lineitem.l_extendedprice) \
         FROM lineitem JOIN supplier ON supplier.s_suppkey = lineitem.l_suppkey \
         JOIN nation ON nation.n_nationkey = supplier.s_nationkey \
         WHERE lineitem.l_shipdate BETWEEN 800 AND 1600 \
         GROUP BY nation.n_name ORDER BY nation.n_name" );
      ( "Q10-returned-items",
        "SELECT customer.c_custkey, customer.c_name, \
         sum(lineitem.l_extendedprice * (1 - lineitem.l_discount)) AS revenue \
         FROM customer JOIN orders ON customer.c_custkey = orders.o_custkey \
         JOIN lineitem ON lineitem.l_orderkey = orders.o_orderkey \
         WHERE lineitem.l_returnflag = 'R' AND orders.o_orderdate >= 600 \
         AND orders.o_orderdate < 1000 \
         GROUP BY customer.c_custkey, customer.c_name \
         ORDER BY revenue DESC, customer.c_custkey ASC LIMIT 20" );
      ( "Q12-shipmode-priority",
        "SELECT lineitem.l_shipmode, \
         sum(CASE WHEN orders.o_orderpriority = '1-URGENT' THEN 1 ELSE 0 END) AS high, \
         sum(CASE WHEN orders.o_orderpriority = '1-URGENT' THEN 0 ELSE 1 END) AS low \
         FROM orders JOIN lineitem ON lineitem.l_orderkey = orders.o_orderkey \
         WHERE lineitem.l_shipmode IN ('MAIL', 'SHIP') \
         AND lineitem.l_shipdate BETWEEN 1000 AND 1365 \
         GROUP BY lineitem.l_shipmode ORDER BY lineitem.l_shipmode" );
      ( "Q14-promo-effect",
        "SELECT 100.0 * sum(CASE WHEN part.p_type LIKE 'PROMO%' \
         THEN lineitem.l_extendedprice * (1 - lineitem.l_discount) ELSE 0.0 END) / \
         sum(lineitem.l_extendedprice * (1 - lineitem.l_discount)) \
         FROM lineitem JOIN part ON part.p_partkey = lineitem.l_partkey \
         WHERE lineitem.l_shipdate >= 1200 AND lineitem.l_shipdate < 1260" );
      ( "Q18-large-volume",
        "SELECT orders.o_orderkey, orders.o_totalprice, sum(lineitem.l_quantity) \
         FROM orders JOIN lineitem ON lineitem.l_orderkey = orders.o_orderkey \
         GROUP BY orders.o_orderkey, orders.o_totalprice \
         ORDER BY orders.o_totalprice DESC, orders.o_orderkey ASC LIMIT 10" );
      ( "Q19-discounted-revenue",
        "SELECT sum(lineitem.l_extendedprice * (1 - lineitem.l_discount)) \
         FROM lineitem JOIN part ON part.p_partkey = lineitem.l_partkey \
         WHERE part.p_size BETWEEN 1 AND 15 AND lineitem.l_quantity < 30 \
         AND lineitem.l_shipmode IN ('AIR', 'TRUCK')" );
      ( "Q9-product-type-profit",
        "SELECT nation.n_name, part.p_type, \
         sum(lineitem.l_extendedprice * (1 - lineitem.l_discount)) AS profit \
         FROM lineitem JOIN part ON part.p_partkey = lineitem.l_partkey \
         JOIN supplier ON supplier.s_suppkey = lineitem.l_suppkey \
         JOIN nation ON nation.n_nationkey = supplier.s_nationkey \
         WHERE part.p_type LIKE 'PROMO%' \
         GROUP BY nation.n_name, part.p_type \
         ORDER BY nation.n_name, part.p_type" );
      ( "Q11-important-stock",
        "SELECT part.p_type, count(*), avg(part.p_size) \
         FROM part WHERE part.p_size > 10 \
         GROUP BY part.p_type HAVING count(*) > 2 ORDER BY part.p_type" );
      ( "Q16-urgent-part-types",
        "SELECT part.p_type, count(*) \
         FROM lineitem JOIN part ON part.p_partkey = lineitem.l_partkey \
         JOIN orders ON orders.o_orderkey = lineitem.l_orderkey \
         WHERE orders.o_orderpriority = '1-URGENT' \
         GROUP BY part.p_type ORDER BY part.p_type" );
      ( "Q20-promo-suppliers",
        "SELECT supplier.s_name, sum(lineitem.l_quantity) \
         FROM lineitem JOIN supplier ON supplier.s_suppkey = lineitem.l_suppkey \
         WHERE lineitem.l_partkey IN \
         (SELECT p_partkey FROM part WHERE p_type LIKE 'PROMO%') \
         GROUP BY supplier.s_name ORDER BY supplier.s_name" );
      ( "Q22-acquisition-candidates",
        "SELECT customer.c_mktsegment, count(*), avg(orders.o_totalprice) \
         FROM customer JOIN orders ON customer.c_custkey = orders.o_custkey \
         WHERE orders.o_totalprice > 50000.0 \
         GROUP BY customer.c_mktsegment ORDER BY customer.c_mktsegment" );
      ( "Q-top-days",
        "SELECT lineitem.l_shipdate, count(*), sum(lineitem.l_quantity) \
         FROM lineitem WHERE lineitem.l_returnflag = 'N' \
         GROUP BY lineitem.l_shipdate \
         ORDER BY count(*) DESC, lineitem.l_shipdate ASC LIMIT 5" );
      ( "Q-order-status-mix",
        "SELECT orders.o_orderstatus, count(*), avg(orders.o_totalprice) \
         FROM orders GROUP BY orders.o_orderstatus ORDER BY orders.o_orderstatus" );
    ]
  in
  ignore cfg;
  base

(* The paper ran the 18 of 22 TPC-H queries Citus supported; these shapes
   are the ones this reproduction cannot distribute, with the reason. *)
let unsupported_queries =
  [
    ( "Q15-top-supplier (revenue CTE)",
      "WITH revenue AS (SELECT l_suppkey, sum(l_extendedprice) AS total \
       FROM lineitem GROUP BY l_suppkey) \
       SELECT supplier.s_name, revenue.total FROM supplier \
       JOIN revenue ON revenue.l_suppkey = supplier.s_suppkey \
       ORDER BY revenue.total DESC LIMIT 1",
      "subquery grouped off the distribution column needs a merge step" );
    ( "Q17-small-quantity (correlated scalar subquery)",
      "SELECT sum(l1.l_extendedprice) FROM lineitem AS l1 \
       WHERE l1.l_quantity < (SELECT avg(l2.l_quantity) FROM lineitem AS l2 \
       WHERE l2.l_partkey = l1.l_partkey)",
      "correlated subqueries on distributed tables are unsupported" );
    ( "Q21-waiting-suppliers (EXISTS over distributed self-join)",
      "SELECT count(*) FROM lineitem AS l1 WHERE EXISTS \
       (SELECT 1 FROM lineitem AS l2 WHERE l2.l_orderkey = l1.l_orderkey \
        AND l2.l_suppkey <> l1.l_suppkey)",
      "subqueries on distributed tables inside expressions are unsupported" );
    ( "Q13-customer-distribution (LEFT JOIN from a reference table)",
      "SELECT c_count, count(*) FROM (SELECT customer.c_custkey, \
       count(orders.o_orderkey) AS c_count FROM customer \
       LEFT JOIN orders ON customer.c_custkey = orders.o_custkey \
       GROUP BY customer.c_custkey) AS sub GROUP BY c_count ORDER BY c_count",
      "outer joins that preserve the reference side across all shards need \
       a merge step in the subquery" );
  ]

let run_all db cfg =
  List.map
    (fun (name, sql) ->
      let r = Db.exec db sql in
      (name, List.length r.Engine.Instance.rows))
    (queries cfg)
