(** TPC-H-derived data-warehouse workload (§4.4).

    Following the paper's setup, [lineitem] and [orders] are distributed
    and co-located on the order key and the smaller tables become
    reference tables. Dates are day numbers (integers) to stay inside the
    engine's type system. The query set is a TPC-H-shaped subset adapted
    to the supported dialect — mirroring the paper, which ran the 18 of 22
    queries Citus supported.

    With [distribute_part = true], [part] is distributed by part key
    instead, so part–lineitem joins are non-co-located and exercise the
    join-order planner (re-partition / broadcast) — the ablation used in
    the benchmarks. *)

type config = {
  lineitem_rows : int;
  distribute_part : bool;
}

val default_config : config

val setup : Db.t -> config -> unit

(** (name, SQL) pairs of the query set. *)
val queries : config -> (string * string) list

(** Queries the distributed planner cannot handle, with reasons —
    mirroring the paper's "4 of the 22 queries in TPC-H are not yet
    supported" (§4.4). *)
val unsupported_queries : (string * string * string) list

(** Run the full set once (single session, as in Figure 8); returns the
    per-query row counts for sanity checking. *)
val run_all : Db.t -> config -> (string * int) list
