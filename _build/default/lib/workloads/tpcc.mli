(** TPC-C-derived multi-tenant workload (HammerDB style, §4.1).

    Warehouses are the tenants: every table carries a warehouse id, all
    tables are distributed and co-located on it, and [item] is a reference
    table. A configurable fraction of transactions touches a second
    warehouse, which under Citus usually means a second node — the source
    of the paper's sublinear 4→8 scaling. Transaction logic runs as stored
    procedures so Citus can delegate the call to the warehouse's node. *)

type config = {
  warehouses : int;
  districts_per_warehouse : int;
  customers_per_district : int;
  items : int;
  remote_txn_fraction : float;  (** ~0.07 in the paper's workload *)
}

val default_config : config

(** Create schema, distribute (when under Citus), bulk-load, and register
    the [tpcc_new_order] / [tpcc_payment] procedures on every node. *)
val setup : Db.t -> config -> unit

(** Enable procedure delegation (requires a Citus handle; no-op
    otherwise). Mirrors §4.1's configuration. *)
val enable_delegation : Db.t -> unit

type txn_kind = New_order | Payment | Delivery | Order_status | Stock_level

(** Run one transaction of the standard mix on a session; returns the kind
    and whether it touched more than one warehouse. *)
val run_one :
  Db.t -> Engine.Instance.session -> config -> Random.State.t ->
  txn_kind * bool

(** Sum of all customer balances (consistency invariant for tests). *)
val total_customer_balance : Db.t -> float

(** Next order ids are dense per district (invariant for tests). *)
val orders_match_district_counters : Db.t -> config -> bool
