type config = {
  events : int;
  days : int;
  commits_per_event : int;
  postgres_fraction : float;
}

let default_config =
  { events = 500; days = 7; commits_per_event = 3; postgres_fraction = 0.1 }

let words =
  [|
    "fix"; "bug"; "in"; "planner"; "add"; "support"; "for"; "index"; "update";
    "docs"; "remove"; "dead"; "code"; "refactor"; "tests"; "improve"; "error";
    "message"; "handle"; "edge"; "case"; "cleanup"; "optimize"; "query";
    "rewrite"; "parser"; "merge"; "branch"; "release"; "version";
  |]

let message rng mentions_postgres =
  let n = 3 + Random.State.int rng 5 in
  let parts =
    List.init n (fun _ -> words.(Random.State.int rng (Array.length words)))
  in
  let parts =
    if mentions_postgres then
      let k = Random.State.int rng (List.length parts) in
      List.mapi (fun i w -> if i = k then "postgres" else w) parts
    else parts
  in
  String.concat " " parts

let hex rng n =
  String.init n (fun _ -> "0123456789abcdef".[Random.State.int rng 16])

let event_json rng cfg i =
  let day = 1 + (i * cfg.days / max 1 cfg.events) in
  let created = Printf.sprintf "2020-02-%02dT%02d:00:00Z" day (i mod 24) in
  let mentions = Random.State.float rng 1.0 < cfg.postgres_fraction in
  let commits =
    List.init cfg.commits_per_event (fun k ->
        Json.Obj
          [
            ("sha", Json.Str (hex rng 12));
            ("author", Json.Str (Printf.sprintf "dev%d" (Random.State.int rng 50)));
            ("message", Json.Str (message rng (mentions && k = 0)));
          ])
  in
  Json.Obj
    [
      ("type", Json.Str "PushEvent");
      ("created_at", Json.Str created);
      ("actor", Json.Str (Printf.sprintf "user%d" (Random.State.int rng 100)));
      ("repo", Json.Str (Printf.sprintf "org/repo%d" (Random.State.int rng 40)));
      ( "payload",
        Json.Obj
          [
            ("push_id", Json.Num (float_of_int i));
            ("size", Json.Num (float_of_int cfg.commits_per_event));
            ("commits", Json.Arr commits);
          ] );
    ]

let setup_schema db =
  ignore
    (Db.exec db
       "CREATE TABLE github_events (event_id text PRIMARY KEY, data jsonb)");
  Db.distribute db ~table:"github_events" ~column:"event_id" ();
  (* pg_trgm GIN index over the commit messages inside the JSON (§4.2) *)
  ignore
    (Db.exec db
       "CREATE INDEX text_search_idx ON github_events USING GIN \
        ((jsonb_path_query_array(data, '$.payload.commits[*].message')::text) \
        gin_trgm_ops)")

let generate_lines ?(seed = 11) cfg =
  let rng = Random.State.make [| seed |] in
  List.init cfg.events (fun i ->
      let id = hex rng 32 in
      let json = Json.to_string (event_json rng cfg i) in
      id ^ "\t" ^ json)

let load db ?seed cfg =
  let lines = generate_lines ?seed cfg in
  let rec batches total = function
    | [] -> total
    | lines ->
      let batch = List.filteri (fun i _ -> i < 200) lines in
      let rest = List.filteri (fun i _ -> i >= 200) lines in
      let n =
        Engine.Instance.copy_in db.Db.session ~table:"github_events"
          ~columns:None batch
      in
      batches (total + n) rest
  in
  batches 0 lines

let dashboard_query =
  "SELECT (data->>'created_at')::date, \
   sum(jsonb_array_length(data->'payload'->'commits')) \
   FROM github_events \
   WHERE jsonb_path_query_array(data, '$.payload.commits[*].message')::text \
   ILIKE '%postgres%' GROUP BY 1 ORDER BY 1 ASC"

let create_rollup_table db =
  ignore
    (Db.exec db
       "CREATE TABLE commits (event_id text PRIMARY KEY, day text, \
        first_message text, n_commits bigint)");
  Db.distribute db ~table:"commits" ~column:"event_id"
    ~colocate_with:"github_events" ()

let transformation_query =
  "INSERT INTO commits (event_id, day, first_message, n_commits) \
   SELECT event_id, (data->>'created_at')::date, \
   data->'payload'->'commits'->0->>'message', \
   jsonb_array_length(data->'payload'->'commits') \
   FROM github_events"
