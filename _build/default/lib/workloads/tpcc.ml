type config = {
  warehouses : int;
  districts_per_warehouse : int;
  customers_per_district : int;
  items : int;
  remote_txn_fraction : float;
}

let default_config =
  {
    warehouses = 8;
    districts_per_warehouse = 4;
    customers_per_district = 20;
    items = 100;
    remote_txn_fraction = 0.07;
  }

let exec = Db.exec_on

let setup_schema db =
  let ddl =
    [
      "CREATE TABLE warehouse (w_id bigint PRIMARY KEY, w_name text, w_ytd double precision)";
      "CREATE TABLE district (d_w_id bigint, d_id bigint, d_name text, \
       d_ytd double precision, d_next_o_id bigint, PRIMARY KEY (d_w_id, d_id))";
      "CREATE TABLE customer (c_w_id bigint, c_d_id bigint, c_id bigint, \
       c_name text, c_balance double precision, PRIMARY KEY (c_w_id, c_d_id, c_id))";
      "CREATE TABLE stock (s_w_id bigint, s_i_id bigint, s_quantity bigint, \
       PRIMARY KEY (s_w_id, s_i_id))";
      "CREATE TABLE orders (o_w_id bigint, o_d_id bigint, o_id bigint, \
       o_c_id bigint, o_entry_d double precision, PRIMARY KEY (o_w_id, o_d_id, o_id))";
      "CREATE TABLE new_order (no_w_id bigint, no_d_id bigint, no_o_id bigint, \
       PRIMARY KEY (no_w_id, no_d_id, no_o_id))";
      "CREATE TABLE order_line (ol_w_id bigint, ol_d_id bigint, ol_o_id bigint, \
       ol_number bigint, ol_i_id bigint, ol_supply_w_id bigint, ol_quantity bigint, \
       ol_amount double precision, PRIMARY KEY (ol_w_id, ol_d_id, ol_o_id, ol_number))";
      "CREATE TABLE item (i_id bigint PRIMARY KEY, i_name text, i_price double precision)";
    ]
  in
  List.iter (fun sql -> ignore (Db.exec db sql)) ddl;
  (* items is shared across tenants: reference table; the rest co-locate on
     the warehouse id *)
  Db.reference db ~table:"item";
  Db.distribute db ~table:"warehouse" ~column:"w_id" ();
  Db.distribute db ~table:"district" ~column:"d_w_id" ~colocate_with:"warehouse" ();
  Db.distribute db ~table:"customer" ~column:"c_w_id" ~colocate_with:"warehouse" ();
  Db.distribute db ~table:"stock" ~column:"s_w_id" ~colocate_with:"warehouse" ();
  Db.distribute db ~table:"orders" ~column:"o_w_id" ~colocate_with:"warehouse" ();
  Db.distribute db ~table:"new_order" ~column:"no_w_id" ~colocate_with:"warehouse" ();
  Db.distribute db ~table:"order_line" ~column:"ol_w_id" ~colocate_with:"warehouse" ()

let load db cfg =
  let s = db.Db.session in
  let copy table lines =
    ignore (Engine.Instance.copy_in s ~table ~columns:None lines)
  in
  copy "item"
    (List.init cfg.items (fun i ->
         Printf.sprintf "%d\titem%d\t%.2f" (i + 1) (i + 1)
           (1.0 +. float_of_int (i mod 90))));
  copy "warehouse"
    (List.init cfg.warehouses (fun w ->
         Printf.sprintf "%d\twh%d\t0" (w + 1) (w + 1)));
  let districts =
    List.concat
      (List.init cfg.warehouses (fun w ->
           List.init cfg.districts_per_warehouse (fun d ->
               Printf.sprintf "%d\t%d\td%d\t0\t1" (w + 1) (d + 1) (d + 1))))
  in
  copy "district" districts;
  let customers =
    List.concat
      (List.init cfg.warehouses (fun w ->
           List.concat
             (List.init cfg.districts_per_warehouse (fun d ->
                  List.init cfg.customers_per_district (fun c ->
                      Printf.sprintf "%d\t%d\t%d\tcust%d\t0" (w + 1) (d + 1)
                        (c + 1) (c + 1))))))
  in
  copy "customer" customers;
  let stock =
    List.concat
      (List.init cfg.warehouses (fun w ->
           List.init cfg.items (fun i ->
               Printf.sprintf "%d\t%d\t%d" (w + 1) (i + 1) (50 + (i mod 50)))))
  in
  copy "stock" stock

(* --- stored procedures --- *)

let int_arg = function
  | Datum.Int i -> i
  | d -> failwith ("expected int argument, got " ^ Datum.to_display d)

let one_int s sql =
  match (exec s sql).Engine.Instance.rows with
  | [ [| Datum.Int i |] ] -> i
  | _ -> failwith ("no row from " ^ sql)

let one_float s sql =
  match (exec s sql).Engine.Instance.rows with
  | [ [| Datum.Float f |] ] -> f
  | [ [| Datum.Int i |] ] -> float_of_int i
  | _ -> failwith ("no row from " ^ sql)

(* NEW-ORDER: read the district counter, insert the order, its order lines
   and the new_order entry, update stock (possibly on remote warehouses).
   The item list is derived deterministically from [seed]. *)
let new_order_proc cfg session args =
  match List.map int_arg args with
  | [ w_id; d_id; c_id; seed ] ->
    let rng = Random.State.make [| seed |] in
    let in_block = Engine.Instance.in_transaction session in
    if not in_block then ignore (exec session "BEGIN");
    (try
       let o_id =
         one_int session
           (Printf.sprintf
              "SELECT d_next_o_id FROM district WHERE d_w_id = %d AND d_id = %d"
              w_id d_id)
       in
       ignore
         (exec session
            (Printf.sprintf
               "UPDATE district SET d_next_o_id = d_next_o_id + 1 WHERE \
                d_w_id = %d AND d_id = %d"
               w_id d_id));
       ignore
         (exec session
            (Printf.sprintf
               "INSERT INTO orders (o_w_id, o_d_id, o_id, o_c_id, o_entry_d) \
                VALUES (%d, %d, %d, %d, 0)"
               w_id d_id o_id c_id));
       ignore
         (exec session
            (Printf.sprintf
               "INSERT INTO new_order (no_w_id, no_d_id, no_o_id) VALUES (%d, %d, %d)"
               w_id d_id o_id));
       let n_lines = 8 + Random.State.int rng 7 in
       for line = 1 to n_lines do
         let i_id = 1 + Random.State.int rng cfg.items in
         let qty = 1 + Random.State.int rng 10 in
         (* the seed's low bit says whether this transaction is remote:
            if so, its first line is supplied by the next warehouse *)
         let supply_w =
           if seed land 1 = 1 && line = 1 && cfg.warehouses > 1 then
             1 + (w_id mod cfg.warehouses)
           else w_id
         in
         let price =
           one_float session
             (Printf.sprintf "SELECT i_price FROM item WHERE i_id = %d" i_id)
         in
         ignore
           (exec session
              (Printf.sprintf
                 "UPDATE stock SET s_quantity = s_quantity - %d WHERE \
                  s_w_id = %d AND s_i_id = %d"
                 qty supply_w i_id));
         ignore
           (exec session
              (Printf.sprintf
                 "INSERT INTO order_line (ol_w_id, ol_d_id, ol_o_id, ol_number, \
                  ol_i_id, ol_supply_w_id, ol_quantity, ol_amount) VALUES \
                  (%d, %d, %d, %d, %d, %d, %d, %f)"
                 w_id d_id o_id line i_id supply_w qty
                 (float_of_int qty *. price)))
       done;
       if not in_block then ignore (exec session "COMMIT")
     with e ->
       if not in_block then ignore (exec session "ROLLBACK");
       raise e);
    Datum.Null
  | _ -> failwith "tpcc_new_order(w_id, d_id, c_id, seed)"

(* PAYMENT: warehouse + district ytd, customer balance; the customer may
   belong to a different (remote) warehouse. *)
let payment_proc _cfg session args =
  match args with
  | [ w; d; cw; cd; c; amount ] ->
    let w_id = int_arg w and d_id = int_arg d in
    let c_w_id = int_arg cw and c_d_id = int_arg cd and c_id = int_arg c in
    let amount = match amount with Datum.Float f -> f | d -> float_of_int (int_arg d) in
    let in_block = Engine.Instance.in_transaction session in
    if not in_block then ignore (exec session "BEGIN");
    (try
       ignore
         (exec session
            (Printf.sprintf
               "UPDATE warehouse SET w_ytd = w_ytd + %f WHERE w_id = %d" amount w_id));
       ignore
         (exec session
            (Printf.sprintf
               "UPDATE district SET d_ytd = d_ytd + %f WHERE d_w_id = %d AND d_id = %d"
               amount w_id d_id));
       ignore
         (exec session
            (Printf.sprintf
               "UPDATE customer SET c_balance = c_balance - %f WHERE \
                c_w_id = %d AND c_d_id = %d AND c_id = %d"
               amount c_w_id c_d_id c_id));
       if not in_block then ignore (exec session "COMMIT")
     with e ->
       if not in_block then ignore (exec session "ROLLBACK");
       raise e);
    Datum.Null
  | _ -> failwith "tpcc_payment(w, d, c_w, c_d, c, amount)"

(* DELIVERY: per district, take the oldest undelivered order, remove its
   new_order entry, and credit the customer with the order's total. *)
let delivery_proc cfg session args =
  match List.map int_arg args with
  | [ w_id ] ->
    let in_block = Engine.Instance.in_transaction session in
    if not in_block then ignore (exec session "BEGIN");
    (try
       for d_id = 1 to cfg.districts_per_warehouse do
         let oldest =
           (exec session
              (Printf.sprintf
                 "SELECT min(no_o_id) FROM new_order WHERE no_w_id = %d AND no_d_id = %d"
                 w_id d_id))
             .Engine.Instance.rows
         in
         match oldest with
         | [ [| Datum.Int o_id |] ] ->
           ignore
             (exec session
                (Printf.sprintf
                   "DELETE FROM new_order WHERE no_w_id = %d AND no_d_id = %d                     AND no_o_id = %d"
                   w_id d_id o_id));
           let c_id =
             one_int session
               (Printf.sprintf
                  "SELECT o_c_id FROM orders WHERE o_w_id = %d AND o_d_id = %d                    AND o_id = %d"
                  w_id d_id o_id)
           in
           let total =
             one_float session
               (Printf.sprintf
                  "SELECT sum(ol_amount) FROM order_line WHERE ol_w_id = %d                    AND ol_d_id = %d AND ol_o_id = %d"
                  w_id d_id o_id)
           in
           ignore
             (exec session
                (Printf.sprintf
                   "UPDATE customer SET c_balance = c_balance + %f WHERE                     c_w_id = %d AND c_d_id = %d AND c_id = %d"
                   total w_id d_id c_id))
         | _ -> () (* district has no undelivered orders *)
       done;
       if not in_block then ignore (exec session "COMMIT")
     with e ->
       if not in_block then ignore (exec session "ROLLBACK");
       raise e);
    Datum.Null
  | _ -> failwith "tpcc_delivery(w_id)"

let register_procs db cfg =
  Db.register_procedure db "tpcc_new_order" (fun session args ->
      new_order_proc cfg session args);
  Db.register_procedure db "tpcc_payment" (fun session args ->
      payment_proc cfg session args);
  Db.register_procedure db "tpcc_delivery" (fun session args ->
      delivery_proc cfg session args)

let setup db cfg =
  setup_schema db;
  load db cfg;
  register_procs db cfg

let enable_delegation db =
  match db.Db.citus with
  | None -> ()
  | Some api ->
    Citus.Api.enable_metadata_sync api;
    Citus.Api.create_distributed_function api ~proc:"tpcc_new_order"
      ~arg_position:1 ~table:"warehouse";
    Citus.Api.create_distributed_function api ~proc:"tpcc_payment"
      ~arg_position:1 ~table:"warehouse";
    Citus.Api.create_distributed_function api ~proc:"tpcc_delivery"
      ~arg_position:1 ~table:"warehouse"

type txn_kind = New_order | Payment | Delivery | Order_status | Stock_level

let run_one db session cfg rng =
  let w_id = 1 + Random.State.int rng cfg.warehouses in
  let d_id = 1 + Random.State.int rng cfg.districts_per_warehouse in
  let c_id = 1 + Random.State.int rng cfg.customers_per_district in
  let remote =
    cfg.warehouses > 1 && Random.State.float rng 1.0 < cfg.remote_txn_fraction
  in
  let other_w =
    if remote then 1 + ((w_id + Random.State.int rng (cfg.warehouses - 1)) mod cfg.warehouses)
    else w_id
  in
  let pick = Random.State.float rng 1.0 in
  ignore db;
  if pick < 0.45 then begin
    (* a remote new-order touches a remote stock row via its seed *)
    let seed = (Random.State.int rng 1_000_000 * 2) + (if remote then 1 else 0) in
    ignore
      (exec session
         (Printf.sprintf "CALL tpcc_new_order(%d, %d, %d, %d)" w_id d_id c_id seed));
    (New_order, remote)
  end
  else if pick < 0.88 then begin
    let amount = 1.0 +. Random.State.float rng 100.0 in
    ignore
      (exec session
         (Printf.sprintf "CALL tpcc_payment(%d, %d, %d, %d, %d, %f)" w_id d_id
            other_w d_id c_id amount));
    (Payment, remote)
  end
  else if pick < 0.92 then begin
    ignore (exec session (Printf.sprintf "CALL tpcc_delivery(%d)" w_id));
    (Delivery, false)
  end
  else if pick < 0.96 then begin
    ignore
      (exec session
         (Printf.sprintf
            "SELECT count(*) FROM orders WHERE o_w_id = %d AND o_d_id = %d AND o_c_id = %d"
            w_id d_id c_id));
    (Order_status, false)
  end
  else begin
    ignore
      (exec session
         (Printf.sprintf
            "SELECT count(*) FROM stock WHERE s_w_id = %d AND s_quantity < 25"
            w_id));
    (Stock_level, false)
  end

let total_customer_balance db =
  match (Db.exec db "SELECT sum(c_balance) FROM customer").Engine.Instance.rows with
  | [ [| Datum.Float f |] ] -> f
  | [ [| Datum.Int i |] ] -> float_of_int i
  | [ [| Datum.Null |] ] -> 0.0
  | _ -> nan

let orders_match_district_counters db cfg =
  let orders = Db.count db "orders" in
  let counters =
    match
      (Db.exec db "SELECT sum(d_next_o_id) FROM district").Engine.Instance.rows
    with
    | [ [| Datum.Int n |] ] -> n
    | _ -> -1
  in
  (* every district started at 1: sum(d_next_o_id) - #districts = #orders *)
  counters - (cfg.warehouses * cfg.districts_per_warehouse) = orders
