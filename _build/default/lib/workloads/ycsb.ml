type config = { rows : int; fields : int; field_length : int }

let default_config = { rows = 1000; fields = 10; field_length = 20 }

let field_names cfg = List.init cfg.fields (fun i -> Printf.sprintf "field%d" i)

let payload cfg rng =
  String.init cfg.field_length (fun _ ->
      Char.chr (Char.code 'a' + Random.State.int rng 26))

let setup db cfg =
  let cols =
    String.concat ", "
      (List.map (fun f -> f ^ " text") (field_names cfg))
  in
  ignore
    (Db.exec db
       (Printf.sprintf "CREATE TABLE usertable (ycsb_key bigint PRIMARY KEY, %s)"
          cols));
  Db.distribute db ~table:"usertable" ~column:"ycsb_key" ();
  let rng = Random.State.make [| 7 |] in
  let lines =
    List.init cfg.rows (fun i ->
        String.concat "\t"
          (string_of_int (i + 1)
           :: List.init cfg.fields (fun _ -> payload cfg rng)))
  in
  (* load in batches to bound statement sizes *)
  let rec batches = function
    | [] -> ()
    | lines ->
      let batch = List.filteri (fun i _ -> i < 500) lines in
      let rest = List.filteri (fun i _ -> i >= 500) lines in
      ignore (Engine.Instance.copy_in db.Db.session ~table:"usertable" ~columns:None batch);
      batches rest
  in
  batches lines

type op = Read | Update

let next_op cfg rng =
  let key = 1 + Random.State.int rng cfg.rows in
  ((if Random.State.bool rng then Read else Update), key)

let run_one session cfg rng =
  let op, key = next_op cfg rng in
  (match op with
   | Read ->
     ignore
       (Db.exec_on session
          (Printf.sprintf "SELECT * FROM usertable WHERE ycsb_key = %d" key))
   | Update ->
     let f = Random.State.int rng cfg.fields in
     ignore
       (Db.exec_on session
          (Printf.sprintf "UPDATE usertable SET field%d = '%s' WHERE ycsb_key = %d"
             f (payload cfg rng) key)));
  op
