(** Synthetic GitHub-Archive events for the real-time analytics
    microbenchmarks (§4.2).

    The real benchmark loads a month of gharchive.org JSON; this generator
    produces push events with the same structural features the benchmark
    exercises: a random hex event id, a nested JSON payload with a commits
    array, ISO-8601 creation dates spread over a date range, and commit
    messages that occasionally contain the word "postgres" so the trigram
    index has something to find. *)

type config = {
  events : int;
  days : int;  (** created_at spread over this many days *)
  commits_per_event : int;
  postgres_fraction : float;  (** events whose messages mention postgres *)
}

val default_config : config

(** Create the [github_events] table (distributed by event id under Citus)
    and the GIN trigram index on the commit messages, as in §4.2. *)
val setup_schema : Db.t -> unit

(** COPY lines (event_id <TAB> json) for [config] events, deterministic in
    [seed]. *)
val generate_lines : ?seed:int -> config -> string list

(** Load generated lines via COPY; returns rows loaded. *)
val load : Db.t -> ?seed:int -> config -> int

(** The paper's dashboard query: commits mentioning postgres per day. *)
val dashboard_query : string

(** The paper's transformation: extract per-event commit info into a
    co-located [commits] rollup table. Returns the INSERT..SELECT text. *)
val create_rollup_table : Db.t -> unit

val transformation_query : string
