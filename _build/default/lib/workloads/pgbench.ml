type config = { rows : int }

let default_config = { rows = 200 }

let setup db cfg =
  ignore (Db.exec db "CREATE TABLE a1 (key bigint PRIMARY KEY, v bigint)");
  ignore (Db.exec db "CREATE TABLE a2 (key bigint PRIMARY KEY, v bigint)");
  Db.distribute db ~table:"a1" ~column:"key" ();
  Db.distribute db ~table:"a2" ~column:"key" ~colocate_with:"a1" ();
  let lines = List.init cfg.rows (fun i -> Printf.sprintf "%d\t0" (i + 1)) in
  ignore (Engine.Instance.copy_in db.Db.session ~table:"a1" ~columns:None lines);
  ignore (Engine.Instance.copy_in db.Db.session ~table:"a2" ~columns:None lines)

type mode = Same_key | Different_keys

let node_of db table key =
  match db.Db.citus with
  | None -> "local"
  | Some api ->
    let meta = api.Citus.Api.metadata in
    Citus.Metadata.placement meta
      (Citus.Metadata.shard_for_value meta ~table (Datum.Int key))
        .Citus.Metadata.shard_id

let run_one db session cfg mode rng =
  let d = 1 + Random.State.int rng 10 in
  let k1 = 1 + Random.State.int rng cfg.rows in
  let k2 =
    match mode with
    | Same_key -> k1
    | Different_keys -> 1 + Random.State.int rng cfg.rows
  in
  ignore (Db.exec_on session "BEGIN");
  ignore
    (Db.exec_on session
       (Printf.sprintf "UPDATE a1 SET v = v + %d WHERE key = %d" d k1));
  ignore
    (Db.exec_on session
       (Printf.sprintf "UPDATE a2 SET v = v - %d WHERE key = %d" d k2));
  ignore (Db.exec_on session "COMMIT");
  not (String.equal (node_of db "a1" k1) (node_of db "a2" k2))

let balance_invariant_holds db =
  let total table =
    match
      (Db.exec db (Printf.sprintf "SELECT sum(v) FROM %s" table))
        .Engine.Instance.rows
    with
    | [ [| Datum.Int n |] ] -> n
    | [ [| Datum.Null |] ] -> 0
    | _ -> max_int
  in
  total "a1" + total "a2" = 0
