(** SQL values and their PostgreSQL-like semantics.

    A [Datum.t] is the runtime representation of a single SQL value. The
    engine stores rows as [Datum.t array]. Comparison, arithmetic and
    casting follow PostgreSQL conventions closely enough for the workloads
    in this repository (notably: [Null] never compares equal to anything in
    SQL expressions; the three-valued logic lives in the expression
    evaluator, not here). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Text of string
  | Json of Json.t
  | Timestamp of float  (** seconds since epoch *)

type ty = TBool | TInt | TFloat | TText | TJson | TTimestamp
  (** Declared column types. *)

val ty_name : ty -> string

(** [ty_of_name s] parses a SQL type name ("int", "bigint", "text",
    "jsonb", ...). Raises [Invalid_argument] on unknown names. *)
val ty_of_name : string -> ty

val type_of : t -> ty option
  (** [None] for [Null]. *)

(** Total order over non-null datums of the same type; numeric types
    compare cross-type ([Int] vs [Float]). Datums of incomparable types
    order by a fixed type rank so sorting is total. [Null] sorts last
    (PostgreSQL's default NULLS LAST). *)
val compare : t -> t -> int

val equal : t -> t -> bool
  (** Structural equality via [compare]; [Null] equals [Null] here (this is
      identity, not SQL [=], which the evaluator handles). *)

(** 32-bit FNV-1a hash of a canonical encoding. Used for hash partitioning:
    the result is in the full int32 range [-2^31, 2^31-1], matching the
    shard-range convention of the paper (§3.3.1). *)
val hash32 : t -> int32

val is_null : t -> bool

(** Rendering used for CSV/COPY output and for embedding literals when
    deparsing a query to SQL text. [to_sql_literal] quotes and escapes;
    [to_display] is the bare textual form. *)
val to_display : t -> string

val to_sql_literal : t -> string

(** [cast v ty] coerces a value to a declared type, following PostgreSQL
    assignment-cast rules (text→int parses, int→float widens, ...).
    Raises [Cast_error] when impossible. [Null] casts to any type. *)
val cast : t -> ty -> t

exception Cast_error of string

(** [of_csv_field ty s] parses one COPY field into a typed datum.
    The empty marker [\N] yields [Null]. *)
val of_csv_field : ty -> string -> t

val pp : Format.formatter -> t -> unit
