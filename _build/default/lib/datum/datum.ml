type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Text of string
  | Json of Json.t
  | Timestamp of float

type ty = TBool | TInt | TFloat | TText | TJson | TTimestamp

exception Cast_error of string

let ty_name = function
  | TBool -> "boolean"
  | TInt -> "bigint"
  | TFloat -> "double precision"
  | TText -> "text"
  | TJson -> "jsonb"
  | TTimestamp -> "timestamptz"

let ty_of_name s =
  match String.lowercase_ascii s with
  | "bool" | "boolean" -> TBool
  | "int" | "integer" | "bigint" | "smallint" | "int4" | "int8" | "serial"
  | "bigserial" -> TInt
  | "float" | "double" | "double precision" | "real" | "numeric" | "decimal"
  | "float8" | "float4" -> TFloat
  | "text" | "varchar" | "char" | "character varying" | "string" -> TText
  | "json" | "jsonb" -> TJson
  | "timestamp" | "timestamptz" | "date" | "timestamp with time zone"
  | "timestamp without time zone" -> TTimestamp
  | other -> invalid_arg (Printf.sprintf "unknown SQL type %S" other)

let type_of = function
  | Null -> None
  | Bool _ -> Some TBool
  | Int _ -> Some TInt
  | Float _ -> Some TFloat
  | Text _ -> Some TText
  | Json _ -> Some TJson
  | Timestamp _ -> Some TTimestamp

let type_rank = function
  | Bool _ -> 0
  | Int _ | Float _ -> 1
  | Text _ -> 2
  | Json _ -> 3
  | Timestamp _ -> 4
  | Null -> 5 (* NULLS LAST *)

let compare a b =
  match a, b with
  | Null, Null -> 0
  | Bool x, Bool y -> Bool.compare x y
  | Int x, Int y -> Int.compare x y
  | Float x, Float y -> Float.compare x y
  | Int x, Float y -> Float.compare (float_of_int x) y
  | Float x, Int y -> Float.compare x (float_of_int y)
  | Text x, Text y -> String.compare x y
  | Json x, Json y -> Json.compare x y
  | Timestamp x, Timestamp y -> Float.compare x y
  | _ -> Int.compare (type_rank a) (type_rank b)

let equal a b = compare a b = 0

let is_null = function Null -> true | _ -> false

(* Canonical byte encoding fed to the hash. Numeric types that compare
   equal must hash equal, so integral floats encode like ints. *)
let canonical_bytes = function
  | Null -> "\x00"
  | Bool false -> "\x01f"
  | Bool true -> "\x01t"
  | Int i -> Printf.sprintf "\x02%d" i
  | Float f ->
    if Float.is_integer f && Float.abs f < 1e18 then
      Printf.sprintf "\x02%.0f" f
    else Printf.sprintf "\x03%h" f
  | Text s -> "\x04" ^ s
  | Json j -> "\x05" ^ Json.to_string j
  | Timestamp f -> Printf.sprintf "\x06%h" f

(* murmur3's fmix32 finalizer: FNV alone leaves the high bits poorly
   mixed for short inputs, which would skew hash-range sharding. *)
let fmix32 h =
  let h = Int32.logxor h (Int32.shift_right_logical h 16) in
  let h = Int32.mul h 0x85ebca6bl in
  let h = Int32.logxor h (Int32.shift_right_logical h 13) in
  let h = Int32.mul h 0xc2b2ae35l in
  Int32.logxor h (Int32.shift_right_logical h 16)

let hash32 d =
  let s = canonical_bytes d in
  let fnv_prime = 0x01000193l in
  let h = ref 0x811c9dc5l in
  String.iter
    (fun c ->
      h := Int32.logxor !h (Int32.of_int (Char.code c));
      h := Int32.mul !h fnv_prime)
    s;
  fmix32 !h

let float_display f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%g" f

let to_display = function
  | Null -> ""
  | Bool true -> "t"
  | Bool false -> "f"
  | Int i -> string_of_int i
  | Float f -> float_display f
  | Text s -> s
  | Json j -> Json.to_string j
  | Timestamp f -> Printf.sprintf "@%s" (float_display f)

let quote_text s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '\'';
  String.iter
    (fun c ->
      if c = '\'' then Buffer.add_string buf "''" else Buffer.add_char buf c)
    s;
  Buffer.add_char buf '\'';
  Buffer.contents buf

let to_sql_literal = function
  | Null -> "NULL"
  | Bool true -> "TRUE"
  | Bool false -> "FALSE"
  | Int i -> string_of_int i
  | Float f ->
    if Float.is_integer f && Float.abs f < 1e15 then
      (* keep a decimal point so it re-parses as a float literal *)
      Printf.sprintf "%.1f" f
    else Printf.sprintf "%.17g" f
  | Text s -> quote_text s
  | Json j -> quote_text (Json.to_string j) ^ "::jsonb"
  | Timestamp f -> Printf.sprintf "to_timestamp(%s)" (float_display f)

let cast_error v ty =
  raise
    (Cast_error
       (Printf.sprintf "cannot cast %s to %s" (to_display v) (ty_name ty)))

let rec cast v ty =
  match v, ty with
  | Null, _ -> Null
  | Bool _, TBool | Int _, TInt | Float _, TFloat | Text _, TText
  | Json _, TJson | Timestamp _, TTimestamp -> v
  | Int i, TFloat -> Float (float_of_int i)
  | Float f, TInt -> Int (int_of_float (Float.round f))
  | Int i, TBool -> Bool (i <> 0)
  | Bool b, TInt -> Int (if b then 1 else 0)
  | Int i, TTimestamp -> Timestamp (float_of_int i)
  | Float f, TTimestamp -> Timestamp f
  | Timestamp f, TFloat -> Float f
  | Timestamp f, TInt -> Int (int_of_float f)
  | (Bool _ | Int _ | Float _ | Json _ | Timestamp _), TText ->
    Text (to_display v)
  | Text s, TInt ->
    (match int_of_string_opt (String.trim s) with
     | Some i -> Int i
     | None -> cast_error v ty)
  | Text s, TFloat ->
    (match float_of_string_opt (String.trim s) with
     | Some f -> Float f
     | None -> cast_error v ty)
  | Text s, TBool ->
    (match String.lowercase_ascii (String.trim s) with
     | "t" | "true" | "yes" | "on" | "1" -> Bool true
     | "f" | "false" | "no" | "off" | "0" -> Bool false
     | _ -> cast_error v ty)
  | Text s, TJson ->
    (try Json (Json.parse s) with Json.Parse_error m -> raise (Cast_error m))
  | Text s, TTimestamp ->
    (match float_of_string_opt (String.trim s) with
     | Some f -> Timestamp f
     | None -> cast_error v ty)
  | Json j, ty ->
    (match j with
     | Json.Num f when ty = TInt -> Int (int_of_float f)
     | Json.Num f when ty = TFloat -> Float f
     | Json.Bool b when ty = TBool -> Bool b
     | Json.Str s when ty <> TJson -> cast (Text s) ty
     | _ -> cast_error v ty)
  | (Bool _ | Int _ | Float _ | Timestamp _), _ -> cast_error v ty

let of_csv_field ty s =
  if s = "\\N" then Null
  else
    match ty with
    | TBool -> cast (Text s) TBool
    | TInt -> cast (Text s) TInt
    | TFloat -> cast (Text s) TFloat
    | TText -> Text s
    | TJson -> cast (Text s) TJson
    | TTimestamp -> cast (Text s) TTimestamp

let pp fmt v = Format.pp_print_string fmt (to_display v)
