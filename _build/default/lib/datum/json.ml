type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

let rec equal a b =
  match a, b with
  | Null, Null -> true
  | Bool x, Bool y -> x = y
  | Num x, Num y -> x = y
  | Str x, Str y -> String.equal x y
  | Arr x, Arr y -> List.length x = List.length y && List.for_all2 equal x y
  | Obj x, Obj y ->
    List.length x = List.length y
    && List.for_all2 (fun (k1, v1) (k2, v2) -> String.equal k1 k2 && equal v1 v2) x y
  | (Null | Bool _ | Num _ | Str _ | Arr _ | Obj _), _ -> false

let type_rank = function
  | Null -> 0
  | Bool _ -> 1
  | Num _ -> 2
  | Str _ -> 3
  | Arr _ -> 4
  | Obj _ -> 5

let rec compare a b =
  match a, b with
  | Null, Null -> 0
  | Bool x, Bool y -> Bool.compare x y
  | Num x, Num y -> Float.compare x y
  | Str x, Str y -> String.compare x y
  | Arr x, Arr y -> compare_lists x y
  | Obj x, Obj y ->
    compare_lists
      (List.concat_map (fun (k, v) -> [ Str k; v ]) x)
      (List.concat_map (fun (k, v) -> [ Str k; v ]) y)
  | _ -> Int.compare (type_rank a) (type_rank b)

and compare_lists x y =
  match x, y with
  | [], [] -> 0
  | [], _ :: _ -> -1
  | _ :: _, [] -> 1
  | xh :: xt, yh :: yt ->
    let c = compare xh yh in
    if c <> 0 then c else compare_lists xt yt

(* --- Parser: hand-rolled recursive descent over a string with an index. *)

type parser_state = { src : string; mutable pos : int }

let fail st msg =
  raise (Parse_error (Printf.sprintf "%s at offset %d" msg st.pos))

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') -> advance st; skip_ws st
  | _ -> ()

let expect st c =
  match peek st with
  | Some d when d = c -> advance st
  | _ -> fail st (Printf.sprintf "expected '%c'" c)

let parse_literal st word value =
  let n = String.length word in
  if st.pos + n <= String.length st.src && String.sub st.src st.pos n = word then begin
    st.pos <- st.pos + n;
    value
  end
  else fail st (Printf.sprintf "expected '%s'" word)

let parse_string_body st =
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' -> advance st; Buffer.contents buf
    | Some '\\' ->
      advance st;
      (match peek st with
       | None -> fail st "unterminated escape"
       | Some c ->
         advance st;
         (match c with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'n' -> Buffer.add_char buf '\n'
          | 'r' -> Buffer.add_char buf '\r'
          | 't' -> Buffer.add_char buf '\t'
          | 'u' ->
            if st.pos + 4 > String.length st.src then fail st "bad \\u escape";
            let hex = String.sub st.src st.pos 4 in
            st.pos <- st.pos + 4;
            let code =
              try int_of_string ("0x" ^ hex)
              with Failure _ -> fail st "bad \\u escape"
            in
            (* Encode the code point as UTF-8; surrogate pairs are not
               recombined, which is sufficient for our synthetic data. *)
            if code < 0x80 then Buffer.add_char buf (Char.chr code)
            else if code < 0x800 then begin
              Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end
            else begin
              Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
              Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end
          | _ -> fail st "bad escape");
         loop ())
    | Some c -> advance st; Buffer.add_char buf c; loop ()
  in
  loop ()

let parse_number st =
  let start = st.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  let rec loop () =
    match peek st with
    | Some c when is_num_char c -> advance st; loop ()
    | _ -> ()
  in
  loop ();
  let text = String.sub st.src start (st.pos - start) in
  match float_of_string_opt text with
  | Some f -> Num f
  | None -> fail st "bad number"

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some '{' -> parse_object st
  | Some '[' -> parse_array st
  | Some '"' -> advance st; Str (parse_string_body st)
  | Some 't' -> parse_literal st "true" (Bool true)
  | Some 'f' -> parse_literal st "false" (Bool false)
  | Some 'n' -> parse_literal st "null" Null
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> fail st (Printf.sprintf "unexpected character '%c'" c)

and parse_object st =
  expect st '{';
  skip_ws st;
  if peek st = Some '}' then begin advance st; Obj [] end
  else begin
    let rec members acc =
      skip_ws st;
      expect st '"';
      let key = parse_string_body st in
      skip_ws st;
      expect st ':';
      let value = parse_value st in
      skip_ws st;
      match peek st with
      | Some ',' -> advance st; members ((key, value) :: acc)
      | Some '}' -> advance st; Obj (List.rev ((key, value) :: acc))
      | _ -> fail st "expected ',' or '}'"
    in
    members []
  end

and parse_array st =
  expect st '[';
  skip_ws st;
  if peek st = Some ']' then begin advance st; Arr [] end
  else begin
    let rec elements acc =
      let value = parse_value st in
      skip_ws st;
      match peek st with
      | Some ',' -> advance st; elements (value :: acc)
      | Some ']' -> advance st; Arr (List.rev (value :: acc))
      | _ -> fail st "expected ',' or ']'"
    in
    elements []
  end

let parse s =
  let st = { src = s; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length s then fail st "trailing garbage";
  v

(* --- Printing *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let number_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%g" f

let to_string v =
  let buf = Buffer.create 64 in
  let rec emit = function
    | Null -> Buffer.add_string buf "null"
    | Bool true -> Buffer.add_string buf "true"
    | Bool false -> Buffer.add_string buf "false"
    | Num f -> Buffer.add_string buf (number_to_string f)
    | Str s -> escape_string buf s
    | Arr items ->
      Buffer.add_char buf '[';
      List.iteri (fun i x -> if i > 0 then Buffer.add_char buf ','; emit x) items;
      Buffer.add_char buf ']'
    | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, x) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_string buf k;
          Buffer.add_char buf ':';
          emit x)
        fields;
      Buffer.add_char buf '}'
  in
  emit v;
  Buffer.contents buf

(* --- Accessors *)

let get_field j k =
  match j with
  | Obj fields -> List.assoc_opt k fields
  | Null | Bool _ | Num _ | Str _ | Arr _ -> None

let get_index j i =
  match j with
  | Arr items -> List.nth_opt items i
  | Null | Bool _ | Num _ | Str _ | Obj _ -> None

let rec get_path j path =
  match path with
  | [] -> Some j
  | "*" :: rest ->
    (* Wildcard over array elements, collecting the per-element results. *)
    (match j with
     | Arr items ->
       let collected = List.filter_map (fun item -> get_path item rest) items in
       Some (Arr collected)
     | Null | Bool _ | Num _ | Str _ | Obj _ -> None)
  | step :: rest ->
    let child =
      match int_of_string_opt step with
      | Some i when (match j with Arr _ -> true | _ -> false) -> get_index j i
      | Some _ | None -> get_field j step
    in
    (match child with None -> None | Some c -> get_path c rest)

let array_length = function
  | Arr items -> Some (List.length items)
  | Null | Bool _ | Num _ | Str _ | Obj _ -> None

let to_text = function
  | Null -> None
  | Str s -> Some s
  | v -> Some (to_string v)

let is_null = function Null -> true | _ -> false

let pp fmt v = Format.pp_print_string fmt (to_string v)
