lib/datum/datum.ml: Bool Buffer Char Float Format Int Int32 Json Printf String
