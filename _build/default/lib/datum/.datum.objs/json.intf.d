lib/datum/json.mli: Format
