lib/datum/json.ml: Bool Buffer Char Float Format Int List Printf String
