lib/datum/datum.mli: Format Json
