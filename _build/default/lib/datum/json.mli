(** Minimal JSON values with PostgreSQL-JSONB-like accessors.

    This module stands in for PostgreSQL's [jsonb] type. It provides a
    parser, a canonical printer, and the accessors the Citus layer and the
    real-time-analytics workload rely on ([->], [->>], [jsonb_path]-style
    traversal, array length). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val equal : t -> t -> bool

(** Total order used for SQL comparison of JSON values: type rank first
    (Null < Bool < Num < Str < Arr < Obj), then structural comparison. *)
val compare : t -> t -> int

(** [parse s] parses a JSON document. Raises [Parse_error] with a
    position-annotated message on malformed input. *)
val parse : string -> t

exception Parse_error of string

(** Canonical serialization: object keys in insertion order, minimal
    whitespace, numbers printed without trailing [.0] when integral. *)
val to_string : t -> string

(** [get_field j k] is the value of key [k] if [j] is an object ([->]). *)
val get_field : t -> string -> t option

(** [get_index j i] is element [i] if [j] is an array ([->]). *)
val get_index : t -> int -> t option

(** [get_path j path] walks nested objects/arrays; path elements that parse
    as integers index arrays. Mirrors [#>] / [jsonb_path_query] for simple
    paths. [ "payload"; "commits"; "*"; "message" ] collects a wildcard
    step over array elements into an array, like [$.payload.commits[*].message]. *)
val get_path : t -> string list -> t option

(** [array_length j] is [Some n] when [j] is an array ([jsonb_array_length]). *)
val array_length : t -> int option

(** Text extraction ([->>]): strings unquoted, other values serialized,
    JSON null becomes [None]. *)
val to_text : t -> string option

val is_null : t -> bool

val pp : Format.formatter -> t -> unit
